(* Resource governance: budgets trip with the right structured breach
   and sane partial progress, cancellation works, and — crucially — a
   breach never corrupts the manager: re-running without limits
   afterwards gives exactly the verdict an undisturbed run gives. *)

let prop name ?(count = 60) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let exhausted_info f =
  match f () with
  | _ -> Alcotest.fail "expected Bdd.Limits.Exhausted"
  | exception Bdd.Limits.Exhausted info -> info

(* ------------------------------------------------------------------ *)
(* Unit tests on the mutex model.                                      *)

let starvation (mx : Models.mutex) =
  Ctl.AG (Ctl.Imp (mx.Models.t1, Ctl.AF mx.Models.c1))

let test_deadline () =
  let mx = Models.mutex () in
  let m = mx.Models.m in
  let limits = Bdd.Limits.create ~timeout:1e-6 () in
  (* The budget is a microsecond; by the first poll it has passed. *)
  Unix.sleepf 0.002;
  let info =
    exhausted_info (fun () -> Ctl.Check.holds ~limits m (starvation mx))
  in
  (match info.Bdd.Limits.breach with
  | Bdd.Limits.Deadline { timeout; elapsed } ->
    Alcotest.(check (float 1e-9)) "requested timeout" 1e-6 timeout;
    Alcotest.(check bool) "elapsed past timeout" true (elapsed >= 1e-6)
  | b ->
    Alcotest.failf "wrong breach: %a" Bdd.Limits.pp_breach b);
  Alcotest.(check bool)
    "snapshot has live nodes" true
    (info.Bdd.Limits.stats.Bdd.live_nodes > 0);
  Alcotest.(check bool)
    "some progress recorded" true
    (info.Bdd.Limits.progress.Bdd.Limits.iterations >= 1)

let test_step_budget () =
  let mx = Models.mutex () in
  let m = mx.Models.m in
  let limits = Bdd.Limits.create ~step_budget:2 () in
  let info =
    exhausted_info (fun () -> Ctl.Check.holds ~limits m (starvation mx))
  in
  (match info.Bdd.Limits.breach with
  | Bdd.Limits.Step_budget { budget; steps } ->
    Alcotest.(check int) "budget" 2 budget;
    Alcotest.(check bool) "steps exceed budget" true (steps > 2)
  | b -> Alcotest.failf "wrong breach: %a" Bdd.Limits.pp_breach b);
  Alcotest.(check int)
    "progress agrees with the breach"
    (match info.Bdd.Limits.breach with
    | Bdd.Limits.Step_budget { steps; _ } -> steps
    | _ -> assert false)
    info.Bdd.Limits.progress.Bdd.Limits.steps

let test_node_budget () =
  let mx = Models.mutex () in
  let m = mx.Models.m in
  let limits = Bdd.Limits.create ~node_budget:1 () in
  let info =
    exhausted_info (fun () ->
        Bdd.Limits.with_attached m.Kripke.man limits (fun () ->
            Ctl.Check.holds ~limits m (starvation mx)))
  in
  match info.Bdd.Limits.breach with
  | Bdd.Limits.Node_budget { budget; live } ->
    Alcotest.(check int) "budget" 1 budget;
    Alcotest.(check bool) "live count exceeds it" true (live > 1)
  | b -> Alcotest.failf "wrong breach: %a" Bdd.Limits.pp_breach b

let test_cancel () =
  let mx = Models.mutex () in
  let m = mx.Models.m in
  let limits = Bdd.Limits.unlimited () in
  Alcotest.(check bool) "not yet cancelled" false (Bdd.Limits.cancelled limits);
  Bdd.Limits.note_witness limits [ [| true |]; [| false |] ];
  Bdd.Limits.cancel limits;
  Alcotest.(check bool) "cancelled" true (Bdd.Limits.cancelled limits);
  let info =
    exhausted_info (fun () -> Ctl.Check.holds ~limits m (starvation mx))
  in
  (match info.Bdd.Limits.breach with
  | Bdd.Limits.Interrupted -> ()
  | b -> Alcotest.failf "wrong breach: %a" Bdd.Limits.pp_breach b);
  Alcotest.(check int)
    "witness prefix preserved" 2
    (List.length info.Bdd.Limits.progress.Bdd.Limits.witness_prefix)

let test_create_validation () =
  (match Bdd.Limits.create ~timeout:0.0 () with
  | _ -> Alcotest.fail "timeout 0 accepted"
  | exception Invalid_argument _ -> ());
  (match Bdd.Limits.create ~node_budget:0 () with
  | _ -> Alcotest.fail "node budget 0 accepted"
  | exception Invalid_argument _ -> ());
  match Bdd.Limits.create ~step_budget:(-3) () with
  | _ -> Alcotest.fail "negative step budget accepted"
  | exception Invalid_argument _ -> ()

let test_attach_restore () =
  let mx = Models.mutex () in
  let bman = mx.Models.m.Kripke.man in
  let outer = Bdd.Limits.unlimited () in
  let inner = Bdd.Limits.unlimited () in
  let is_attached l =
    match Bdd.Limits.attached bman with Some l' -> l' == l | None -> false
  in
  Bdd.Limits.attach bman outer;
  Bdd.Limits.with_attached bman inner (fun () ->
      Alcotest.(check bool) "inner attached" true (is_attached inner));
  Alcotest.(check bool) "outer restored" true (is_attached outer);
  (* restored across an exception too *)
  (try
     Bdd.Limits.with_attached bman inner (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool)
    "outer restored after raise" true (is_attached outer);
  Bdd.Limits.detach bman;
  Alcotest.(check bool) "detached" true (Bdd.Limits.attached bman = None)

(* ------------------------------------------------------------------ *)
(* Property: a breach never corrupts the manager.                      *)

let with_formula () =
  QCheck2.Gen.pair (Models.random_model_gen ~nfair:2 ()) Models.formula_gen

let prop_breach_preserves_verdict =
  prop "verdict is identical before and after a step-budget breach"
    (with_formula ())
    (fun (rm, f) ->
      let m = rm.Models.sym in
      let before_plain = Ctl.Check.sat m f in
      let before_fair = Ctl.Fair.sat m f in
      (* Trip a budget mid-computation (or finish: tiny formulas may
         need a single iteration; either way the state must be clean
         afterwards). *)
      let limits = Bdd.Limits.create ~step_budget:1 () in
      (try
         ignore
           (Bdd.Limits.with_attached m.Kripke.man limits (fun () ->
                Ctl.Fair.sat ~limits m f))
       with Bdd.Limits.Exhausted _ -> ());
      let after_plain = Ctl.Check.sat m f in
      let after_fair = Ctl.Fair.sat m f in
      Bdd.equal before_plain after_plain && Bdd.equal before_fair after_fair)

let prop_generous_limits_change_nothing =
  prop "generous limits leave every verdict unchanged"
    (with_formula ())
    (fun (rm, f) ->
      let m = rm.Models.sym in
      let unlimited = Ctl.Fair.sat m f in
      let limits = Bdd.Limits.create ~timeout:3600.0 ~step_budget:max_int () in
      let governed =
        Bdd.Limits.with_attached m.Kripke.man limits (fun () ->
            Ctl.Fair.sat ~limits m f)
      in
      Bdd.equal unlimited governed)

let suite =
  [
    Alcotest.test_case "deadline breach" `Quick test_deadline;
    Alcotest.test_case "step-budget breach" `Quick test_step_budget;
    Alcotest.test_case "node-budget breach" `Quick test_node_budget;
    Alcotest.test_case "cancellation" `Quick test_cancel;
    Alcotest.test_case "create validates budgets" `Quick
      test_create_validation;
    Alcotest.test_case "attach/with_attached restore" `Quick
      test_attach_restore;
    prop_breach_preserves_verdict;
    prop_generous_limits_change_nothing;
  ]
