(* Smoke test for the --reorder contract, run via
   `dune build @reorder-smoke`: reordering must never change what the
   checker says, only how many nodes it takes to say it.  Each model
   is checked under --reorder none and --reorder auto --stats and the
   verdict/trace lines ("-- ..." and "state ...") must be
   byte-identical; only the stats block (which reports node counts and
   reorder activity) may differ.

   Models: the arbiter (the E13 workload — its declaration order is
   deliberately adversarial, so auto reordering must also shrink the
   peak substantially) and the 26-bit counter under a step budget (the
   governed-breach path: reordering must not perturb UNDETERMINED
   reporting either; the budget keeps the deep fixpoint, and hence the
   alias, fast).  counter26 runs without --stats: the model-stats line
   computes the full reachable fixpoint, which needs ~2^26 iterations
   there — with no stats block the whole output must be
   byte-identical. *)

let exe = Filename.concat (Filename.concat ".." "bin") "smv_check.exe"

let run args =
  let cmd = Filename.quote_command exe args ^ " 2>&1" in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n
  in
  (code, Buffer.contents buf)

let failures = ref 0

let expect what cond =
  if cond then Printf.printf "ok: %s\n%!" what
  else begin
    incr failures;
    Printf.printf "FAIL: %s\n%!" what
  end

let model name =
  Filename.concat (Filename.concat (Filename.concat ".." "examples") "models")
    name

(* The order-independent slice of a run's output: verdicts, traces and
   governance reports — everything except the stats block. *)
let verdict_lines out =
  String.split_on_char '\n' out
  |> List.filter (fun l ->
         (String.length l >= 2 && String.sub l 0 2 = "--")
         || (String.length l >= 5 && String.sub l 0 5 = "state"))
  |> String.concat "\n"

let peak_nodes out =
  String.split_on_char '\n' out
  |> List.find_map (fun l ->
         try Scanf.sscanf l "BDD manager: %d live nodes (peak %d"
               (fun _ peak -> Some peak)
         with Scanf.Scan_failure _ | End_of_file | Failure _ -> None)

let check ?(stats = false) name args =
  let args = if stats then args @ [ "--stats" ] else args in
  let none_code, none_out = run (args @ [ "--reorder"; "none" ]) in
  let auto_code, auto_out = run (args @ [ "--reorder"; "auto" ]) in
  expect (name ^ ": exit codes agree") (none_code = auto_code);
  let nv, av =
    if stats then (verdict_lines none_out, verdict_lines auto_out)
    else (none_out, auto_out)
  in
  expect
    (name
    ^
    if stats then ": verdicts and traces byte-identical"
    else ": output byte-identical")
    (nv = av);
  if nv <> av then
    Printf.printf "--- reorder none ---\n%s\n--- reorder auto ---\n%s\n%!" nv av;
  (none_out, auto_out)

let () =
  let none_out, auto_out = check ~stats:true "arbiter" [ model "arbiter.smv" ] in
  (match (peak_nodes none_out, peak_nodes auto_out) with
  | Some p_none, Some p_auto ->
    expect
      (Printf.sprintf "arbiter: peak halved under --reorder auto (%d -> %d)"
         p_none p_auto)
      (2 * p_auto <= p_none)
  | _ -> expect "arbiter: peak node counts parsed" false);
  (* counter26's first spec needs ~2^26 backward steps; the budget trips
     it into UNDETERMINED quickly in both runs. *)
  ignore (check "counter26" [ model "counter26.smv"; "--step-limit"; "64" ]);
  if !failures > 0 then begin
    Printf.printf "%d deviation(s) from the --reorder contract\n%!" !failures;
    exit 1
  end
