(* Tests for the packed node store behind [Bdd] (PR 8).

   [Test_bdd] checks the algebra against truth tables; this module
   stresses the representation underneath it: the int-indexed columns,
   the open-addressing unique subtables (growth, rehash, tombstones),
   free-list recycling across [gc], the zombie discipline that keeps
   held handles readable across reordering, [transfer] between stores
   with different orders, and the live-heap footprint the store was
   rebuilt to shrink. *)

(* -------------------------------------------------------------------- *)
(* Random boolean expressions (self-contained; fresh manager per case). *)

type expr =
  | Evar of int
  | Enot of expr
  | Eand of expr * expr
  | Eor of expr * expr

let nvars = 6

let expr_gen =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then map (fun v -> Evar v) (int_bound (nvars - 1))
         else
           let sub = self (n / 2) in
           oneof
             [ map (fun v -> Evar v) (int_bound (nvars - 1));
               map (fun e -> Enot e) (self (n - 1));
               map2 (fun a b -> Eand (a, b)) sub sub;
               map2 (fun a b -> Eor (a, b)) sub sub ])

let rec eval_expr env = function
  | Evar v -> env v
  | Enot e -> not (eval_expr env e)
  | Eand (a, b) -> eval_expr env a && eval_expr env b
  | Eor (a, b) -> eval_expr env a || eval_expr env b

let rec build man = function
  | Evar v -> Bdd.var man v
  | Enot e -> Bdd.not_ man (build man e)
  | Eand (a, b) -> Bdd.and_ man (build man a) (build man b)
  | Eor (a, b) -> Bdd.or_ man (build man a) (build man b)

let env_of_bits bits v = bits land (1 lsl v) <> 0

let agrees man f e =
  let ok = ref true in
  for bits = 0 to (1 lsl nvars) - 1 do
    if Bdd.eval man f (env_of_bits bits) <> eval_expr (env_of_bits bits) e
    then ok := false
  done;
  !ok

(* Signed cubes: a list of (var, polarity).  Duplicates are fine —
   conjunction is idempotent — and [Bdd.cube] only takes positive
   literals, so build both orders by folding. *)
let cube_gen =
  let open QCheck2.Gen in
  list_size (int_range 1 12)
    (pair (int_bound 199) bool)

let build_cube man lits =
  List.fold_left
    (fun acc (v, pos) ->
      Bdd.and_ man acc (if pos then Bdd.var man v else Bdd.nvar man v))
    (Bdd.one man) lits

let prop ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* -------------------------------------------------------------------- *)
(* Properties.                                                          *)

(* Find-or-insert stays canonical while the subtables grow and rehash:
   building the same cube twice — in list order and reversed, before
   and after thousands of unrelated insertions — must return the
   physically same handle. *)
let prop_canonical_growth =
  prop "canonicity survives subtable growth and rehash"
    QCheck2.Gen.(pair cube_gen (list_size (int_range 1 40) cube_gen))
    (fun (probe, noise) ->
      let man = Bdd.create ~unique_size:64 () in
      let a = build_cube man probe in
      (* Force growth/rehash of many subtables. *)
      List.iter (fun c -> ignore (build_cube man c)) noise;
      let b = build_cube man (List.rev probe) in
      Bdd.equal a b && Bdd.id a = Bdd.id b)

(* gc sweeps to the roots, recycles slots through the free list, and a
   rebuilt survivor is the survivor: ids of rooted diagrams are stable
   across collection, and rebuilding one finds the retained node
   rather than allocating a fresh one. *)
let prop_gc_recycles =
  prop "gc keeps rooted handles and recycles swept slots"
    QCheck2.Gen.(pair (list_size (int_range 1 8) expr_gen)
                   (list_size (int_range 1 8) expr_gen))
    (fun (kept, dropped) ->
      let man = Bdd.create ~unique_size:64 () in
      let roots = List.map (fun e -> (build man e, e)) kept in
      List.iter (fun e -> ignore (build man e)) dropped;
      let handle = Bdd.add_root man (fun () -> List.map fst roots) in
      ignore (Bdd.gc man);
      let ok_semantics =
        List.for_all (fun (f, e) -> agrees man f e) roots
      in
      (* Swept slots must be reusable: pile fresh garbage into the
         store and make sure the rooted survivors are untouched. *)
      List.iter (fun e -> ignore (build man e)) dropped;
      let ok_rebuild =
        List.for_all (fun (f, e) -> Bdd.id (build man e) = Bdd.id f) roots
      in
      Bdd.remove_root man handle;
      ok_semantics && ok_rebuild)

(* Held handles stay evaluable across reordering even when unrooted:
   sifting may detach a parentless node from the unique table, but its
   columns must stay readable until the next gc (the zombie
   discipline), because the boxed store gave clients exactly that. *)
let prop_held_across_reorder =
  prop ~count:100 "unrooted held handles survive reordering readable"
    QCheck2.Gen.(pair (list_size (int_range 1 6) expr_gen)
                   (list_size (int_range 1 20) (int_bound 1000)))
    (fun (exprs, swaps) ->
      let man = Bdd.create ~unique_size:64 () in
      let held = List.map (fun e -> (build man e, e)) exprs in
      let levels = Bdd.Reorder.nvars man in
      if levels >= 2 then
        List.iter
          (fun s -> Bdd.Reorder.swap man (s mod (levels - 1)))
          swaps;
      List.for_all (fun (f, e) -> agrees man f e) held)

(* transfer rebuilds a diagram in a store with a different variable
   order: semantics must carry over and the result must be canonical
   in the destination (transferring twice yields one handle). *)
let prop_transfer =
  prop ~count:150 "transfer across differently-ordered stores"
    expr_gen
    (fun e ->
      let src = Bdd.create ~unique_size:64 () in
      let dst = Bdd.create ~unique_size:64 () in
      Bdd.Reorder.set_order dst
        (Array.init nvars (fun i -> nvars - 1 - i));
      let f = build src e in
      let g = Bdd.transfer ~src ~dst f in
      let g' = Bdd.transfer ~src ~dst f in
      Bdd.id g = Bdd.id g'
      &&
      let ok = ref true in
      for bits = 0 to (1 lsl nvars) - 1 do
        if Bdd.eval dst g (env_of_bits bits)
           <> eval_expr (env_of_bits bits) e
        then ok := false
      done;
      !ok)

(* -------------------------------------------------------------------- *)
(* Unit tests.                                                          *)

let test_unique_size_honored () =
  let big = Bdd.create ~unique_size:(1 lsl 16) () in
  let s = Bdd.stats big in
  Alcotest.(check bool)
    "store preallocated to the hint" true
    (s.Bdd.store_capacity >= 1 lsl 16);
  let small = Bdd.create ~unique_size:8 () in
  let s = Bdd.stats small in
  Alcotest.(check bool)
    "tiny hint clamped to the floor" true
    (s.Bdd.store_capacity >= 8 && s.Bdd.store_capacity <= 4096)

let test_stats_instrumentation () =
  let man = Bdd.create () in
  let f =
    Bdd.conj man (List.init 12 (fun i -> Bdd.var man i))
  in
  ignore (Bdd.or_ man f (Bdd.nvar man 0));
  let s = Bdd.stats man in
  Alcotest.(check bool) "lookups counted" true (s.Bdd.unique_lookups > 0);
  Alcotest.(check bool) "probes >= lookups" true
    (s.Bdd.unique_probes >= s.Bdd.unique_lookups);
  Alcotest.(check bool) "cache stores counted" true (s.Bdd.cache_stores > 0);
  Alcotest.(check bool) "store capacity covers live" true
    (s.Bdd.store_capacity >= s.Bdd.live_nodes);
  Alcotest.(check bool) "unique capacity covers live" true
    (s.Bdd.unique_capacity >= s.Bdd.live_nodes)

(* Footprint regression: the number E16 measures (bench/exp_nodestore).
   Build 20k random 10-literal cubes over 1000 variables, everything
   rooted, collecting every 2000 cubes so the free list recycles the
   chains' transient intermediates instead of growing the columns past
   them.  The boxed seed measured 17.5 live heap words per node on
   this workload (BENCH_nodestore.json); the packed store measures
   ~7.8.  The bound leaves slack for GC jitter while still refusing
   any drift back toward one-object-per-node costs. *)
let test_footprint () =
  Gc.full_major ();
  let w0 = (Gc.stat ()).Gc.live_words in
  let man = Bdd.create () in
  let st = Random.State.make [| 16 |] in
  let cubes = 20_000 and width = 10 and vars = 1000 in
  let held = Array.make cubes (Bdd.one man) in
  let root = Bdd.add_root man (fun () -> Array.to_list held) in
  for i = 0 to cubes - 1 do
    let cube = ref (Bdd.one man) in
    for _ = 1 to width do
      let v = Random.State.int st vars in
      let lit =
        if Random.State.bool st then Bdd.var man v else Bdd.nvar man v
      in
      cube := Bdd.and_ man !cube lit
    done;
    held.(i) <- !cube;
    if i mod 2000 = 1999 then ignore (Bdd.gc man)
  done;
  ignore (Bdd.gc man);
  Bdd.clear_caches man;
  Gc.full_major ();
  let w1 = (Gc.stat ()).Gc.live_words in
  let live = Bdd.live_nodes man in
  let wpn = float_of_int (w1 - w0) /. float_of_int (max 1 live) in
  Bdd.remove_root man root;
  ignore (Sys.opaque_identity held);
  Alcotest.(check bool) "workload is node-heavy" true (live > 100_000);
  if wpn >= 12.0 then
    Alcotest.failf
      "live heap words per node regressed: %.2f (packed store baseline \
       ~7.8, boxed seed was ~17.5)"
      wpn

let suite =
  [
    prop_canonical_growth;
    prop_gc_recycles;
    prop_held_across_reorder;
    prop_transfer;
    Alcotest.test_case "unique_size honored" `Quick test_unique_size_honored;
    Alcotest.test_case "store instrumentation" `Quick
      test_stats_instrumentation;
    Alcotest.test_case "footprint words per node" `Slow test_footprint;
  ]
