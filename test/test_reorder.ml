(* Dynamic variable reordering: adjacent swaps, sifting sweeps,
   explicit orders and pair groups must all preserve every external
   handle's boolean function — the handles themselves survive because
   swaps mutate nodes in place — while only the diagram shapes (and
   hence sizes) change.

   Property tests mirror test_bdd's scheme: random expressions over a
   small universe, compared against truth-table evaluation after the
   order has been scrambled.  Each test builds a fresh manager because
   reordering is manager-global mutable state. *)

type expr =
  | Evar of int
  | Enot of expr
  | Eand of expr * expr
  | Eor of expr * expr
  | Exor of expr * expr
  | Etrue
  | Efalse

let nvars = 5

let expr_gen =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [ map (fun v -> Evar v) (int_bound (nvars - 1));
               return Etrue; return Efalse ]
         else
           let sub = self (n / 2) in
           oneof
             [ map (fun v -> Evar v) (int_bound (nvars - 1));
               map (fun e -> Enot e) (self (n - 1));
               map2 (fun a b -> Eand (a, b)) sub sub;
               map2 (fun a b -> Eor (a, b)) sub sub;
               map2 (fun a b -> Exor (a, b)) sub sub ])

let rec eval_expr env = function
  | Evar v -> env v
  | Enot e -> not (eval_expr env e)
  | Eand (a, b) -> eval_expr env a && eval_expr env b
  | Eor (a, b) -> eval_expr env a || eval_expr env b
  | Exor (a, b) -> eval_expr env a <> eval_expr env b
  | Etrue -> true
  | Efalse -> false

let rec bdd_of_expr man = function
  | Evar v -> Bdd.var man v
  | Enot e -> Bdd.not_ man (bdd_of_expr man e)
  | Eand (a, b) -> Bdd.and_ man (bdd_of_expr man a) (bdd_of_expr man b)
  | Eor (a, b) -> Bdd.or_ man (bdd_of_expr man a) (bdd_of_expr man b)
  | Exor (a, b) -> Bdd.xor man (bdd_of_expr man a) (bdd_of_expr man b)
  | Etrue -> Bdd.one man
  | Efalse -> Bdd.zero man

let env_of_bits bits v = bits land (1 lsl v) <> 0

(* [f] denotes the same function as [e] on the whole universe. *)
let agrees man f e =
  let ok = ref true in
  for bits = 0 to (1 lsl nvars) - 1 do
    let env = env_of_bits bits in
    if Bdd.eval man f env <> eval_expr env e then ok := false
  done;
  !ok

(* Fresh manager with all [nvars] variables forced into existence, so
   every order below is a permutation of the same level set. *)
let fresh () =
  let man = Bdd.create () in
  for v = 0 to nvars - 1 do
    ignore (Bdd.var man v)
  done;
  man

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:200 gen f)

(* -------------------------------------------------------------------- *)
(* Properties: scrambled orders preserve semantics and identity.        *)

let swaps_gen =
  QCheck2.Gen.(
    pair expr_gen (list_size (int_bound 12) (int_bound (nvars - 2))))

let prop_swaps_preserve_eval =
  prop "random swap sequences preserve eval" swaps_gen (fun (e, levels) ->
      let man = fresh () in
      let f = bdd_of_expr man e in
      let id0 = Bdd.id f in
      List.for_all
        (fun l ->
          Bdd.Reorder.swap man l;
          Bdd.id f = id0 && agrees man f e)
        levels
      || QCheck2.Test.fail_report "swap changed the function or the handle")

let prop_sift_preserves_eval =
  prop "sifting preserves eval and sat counts" expr_gen (fun e ->
      let man = fresh () in
      let f = bdd_of_expr man e in
      let count0 = Bdd.sat_count man f nvars in
      let id0 = Bdd.id f in
      Bdd.reorder man;
      Bdd.id f = id0 && agrees man f e && Bdd.sat_count man f nvars = count0)

let order_gen =
  (* A permutation of 0..nvars-1 drawn from random transpositions. *)
  QCheck2.Gen.(
    pair expr_gen
      (list_size (int_bound 8)
         (pair (int_bound (nvars - 1)) (int_bound (nvars - 1)))))

let permutation_of_swaps swaps =
  let ord = Array.init nvars (fun i -> i) in
  List.iter
    (fun (i, j) ->
      let t = ord.(i) in
      ord.(i) <- ord.(j);
      ord.(j) <- t)
    swaps;
  ord

let prop_set_order_preserves_eval =
  prop "set_order installs the order and preserves eval" order_gen
    (fun (e, swaps) ->
      let ord = permutation_of_swaps swaps in
      let man = fresh () in
      let f = bdd_of_expr man e in
      Bdd.Reorder.set_order man ord;
      Bdd.Reorder.order man = ord && agrees man f e)

let prop_transfer_across_orders =
  prop "transfer between differently ordered managers" order_gen
    (fun (e, swaps) ->
      let src = fresh () in
      let f = bdd_of_expr src e in
      (* Destination pre-ordered by an arbitrary permutation: transfer
         maps by variable id, so the copy must denote the same
         function under the destination's unrelated order. *)
      let dst = Bdd.create () in
      Bdd.Reorder.set_order dst (permutation_of_swaps swaps);
      let g = Bdd.with_root src (fun () -> [ f ]) (fun () ->
          Bdd.transfer ~src ~dst f) in
      agrees dst g e
      && Bdd.sat_count dst g nvars = Bdd.sat_count src f nvars
      (* ... and transferring back round-trips to the original node. *)
      && Bdd.equal f (Bdd.transfer ~src:dst ~dst:src g))

(* -------------------------------------------------------------------- *)
(* Unit tests: the swap primitive and explicit orders.                  *)

let test_swap_moves_levels () =
  let man = fresh () in
  Bdd.Reorder.swap man 0;
  Alcotest.(check int) "var 1 now on top" 1 (Bdd.Reorder.var_at_level man 0);
  Alcotest.(check int) "var 0 below it" 0 (Bdd.Reorder.var_at_level man 1);
  Bdd.Reorder.swap man 0;
  Alcotest.(check bool) "double swap restores the order" true
    (Bdd.Reorder.order man = Array.init nvars (fun i -> i))

let test_swap_canonical_after () =
  (* Hash-consing must stay canonical across a swap: rebuilding a
     function after the exchange yields the same node. *)
  let man = fresh () in
  let f = Bdd.and_ man (Bdd.var man 0) (Bdd.var man 1) in
  Bdd.Reorder.swap man 0;
  let g = Bdd.and_ man (Bdd.var man 0) (Bdd.var man 1) in
  Alcotest.(check bool) "rebuilt function is the same node" true
    (Bdd.equal f g)

let test_set_order_validates () =
  let man = fresh () in
  Alcotest.check_raises "not a permutation" (Invalid_argument
    "Bdd.Reorder.set_order: not a permutation") (fun () ->
      Bdd.Reorder.set_order man [| 0; 0; 1; 2; 3 |]);
  Alcotest.check_raises "too short" (Invalid_argument
    "Bdd.Reorder.set_order: order shorter than variable count") (fun () ->
      Bdd.Reorder.set_order man [| 1; 0 |])

let test_set_order_extends () =
  (* A longer order on an empty manager pre-creates the variables. *)
  let man = Bdd.create () in
  Bdd.Reorder.set_order man [| 2; 0; 1 |];
  Alcotest.(check int) "three levels" 3 (Bdd.Reorder.nvars man);
  Alcotest.(check int) "var 2 on top" 2 (Bdd.Reorder.var_at_level man 0);
  Alcotest.(check int) "level of var 1" 2 (Bdd.Reorder.level_of_var man 1)

(* -------------------------------------------------------------------- *)
(* Pair-grouped sifting.                                                *)

(* The copier ∧ (x_i <-> y_i) with all x above all y is the textbook
   exponential order; sifting with (x_i, y_i) declared as pairs must
   keep each pair adjacent and still shrink the diagram. *)
let copier man n =
  let acc = ref (Bdd.one man) in
  for i = 0 to n - 1 do
    acc := Bdd.and_ man !acc (Bdd.iff man (Bdd.var man i) (Bdd.var man (n + i)))
  done;
  !acc

let test_pairs_stay_adjacent () =
  let man = Bdd.create () in
  let n = 6 in
  Bdd.Reorder.set_pairs man (List.init n (fun i -> (i, n + i)));
  let f = copier man n in
  let big = Bdd.size man f in
  Bdd.with_root man (fun () -> [ f ]) (fun () -> Bdd.reorder man);
  List.iter
    (fun i ->
      let la = Bdd.Reorder.level_of_var man i
      and lb = Bdd.Reorder.level_of_var man (n + i) in
      Alcotest.(check int)
        (Printf.sprintf "pair (%d,%d) adjacent" i (n + i))
        1 (abs (la - lb)))
    (List.init n (fun i -> i));
  Alcotest.(check bool)
    (Printf.sprintf "copier shrank (%d -> %d)" big (Bdd.size man f))
    true
    (Bdd.size man f < big / 2);
  Alcotest.(check bool) "function preserved" true
    (let ok = ref true in
     for bits = 0 to (1 lsl (2 * n)) - 1 do
       let env v = bits land (1 lsl v) <> 0 in
       let expected = ref true in
       for i = 0 to n - 1 do
         if env i <> env (n + i) then expected := false
       done;
       if Bdd.eval man f env <> !expected then ok := false
     done;
     !ok)

let test_set_pairs_validates () =
  let man = Bdd.create () in
  Alcotest.check_raises "self pairing" (Invalid_argument
    "Bdd.Reorder.set_pairs: bad pair") (fun () ->
      Bdd.Reorder.set_pairs man [ (3, 3) ]);
  Alcotest.check_raises "double pairing" (Invalid_argument
    "Bdd.Reorder.set_pairs: variable in two pairs") (fun () ->
      Bdd.Reorder.set_pairs man [ (0, 1); (1, 2) ])

(* -------------------------------------------------------------------- *)
(* Automatic triggering and checkpoints.                                *)

let test_auto_trigger_gating () =
  let man = Bdd.create () in
  Bdd.Reorder.set_auto man (Some 8);
  let f = copier man 4 in
  Alcotest.(check bool) "growth marked a reorder pending" true
    (Bdd.Reorder.pending man);
  (* A checkpoint outside any with_checkpoints region must not sift:
     the caller has not promised its intermediates are rooted. *)
  Bdd.Reorder.checkpoint man;
  Alcotest.(check bool) "checkpoint outside region is inert" true
    (Bdd.Reorder.pending man && (Bdd.stats man).Bdd.reorders = 0);
  Bdd.with_root man (fun () -> [ f ]) (fun () ->
      Bdd.Reorder.with_checkpoints man (fun () -> Bdd.Reorder.checkpoint man));
  Alcotest.(check int) "checkpoint inside region sifts" 1
    (Bdd.stats man).Bdd.reorders;
  Alcotest.(check bool) "no longer pending" false (Bdd.Reorder.pending man);
  Alcotest.(check bool) "threshold backed off" true
    (match Bdd.Reorder.auto_threshold man with
     | Some n -> n >= 8
     | None -> false);
  Bdd.Reorder.set_auto man None;
  Alcotest.(check bool) "disarmed" true
    (Bdd.Reorder.auto_threshold man = None);
  Alcotest.check_raises "non-positive threshold rejected" (Invalid_argument
    "Bdd.Reorder.set_auto: non-positive threshold") (fun () ->
      Bdd.Reorder.set_auto man (Some 0))

(* -------------------------------------------------------------------- *)
(* Interactions: limits, fault injection, validated traces.             *)

let test_limits_abort_mid_sift () =
  let man = Bdd.create () in
  let f = copier man 6 in
  Bdd.with_root man (fun () -> [ f ]) (fun () ->
      let limits = Bdd.Limits.unlimited () in
      Bdd.Limits.cancel limits;
      (match
         Bdd.Limits.with_attached man limits (fun () -> Bdd.reorder man)
       with
      | () -> Alcotest.fail "cancelled reorder did not abort"
      | exception Bdd.Limits.Exhausted info ->
        Alcotest.(check bool) "interrupted breach" true
          (info.Bdd.Limits.breach = Bdd.Limits.Interrupted));
      (* The aborted sweep must leave a canonical manager: the function
         is intact and rebuilding it reproduces the very same node. *)
      Alcotest.(check bool) "function intact after abort" true
        (Bdd.equal f (copier man 6));
      ignore (Bdd.gc man);
      Alcotest.(check bool) "gc after abort" true (Bdd.live_nodes man > 0))

let test_reorder_fault_site () =
  let man = Bdd.create () in
  let f = copier man 4 in
  Bdd.Fault.arm man ~site:Bdd.Fault.Reorder ~after:1;
  Bdd.with_root man (fun () -> [ f ]) (fun () ->
      match Bdd.reorder man with
      | () -> Alcotest.fail "armed reorder fault did not fire"
      | exception Out_of_memory -> ());
  Alcotest.(check int) "fault fired once" 1 (Bdd.Fault.fired man);
  Alcotest.(check bool) "fault disarmed itself" true (Bdd.Fault.armed man = None);
  (* One-shot: the retry runs clean. *)
  Bdd.with_root man (fun () -> [ f ]) (fun () -> Bdd.reorder man);
  Alcotest.(check bool) "retry sifts clean" true
    (Bdd.equal f (copier man 4))

let test_sift_preserves_validated_trace () =
  (* The full pipeline: model-check a false spec, explain it, sift the
     model's manager, and demand the explained trace still validates
     and the verdict has not moved — external handles (the model's
     rooted init / trans / labels) survive the sweep. *)
  let mx = Models.mutex () in
  let m = mx.Models.m in
  let f = Ctl.AG (Ctl.Imp (mx.Models.t1, Ctl.AF mx.Models.c1)) in
  Alcotest.(check bool) "spec is false" false (Ctl.Fair.holds m f);
  let tr =
    match Counterex.Explain.counterexample m f with
    | Some tr -> tr
    | None -> Alcotest.fail "no counterexample"
  in
  Bdd.reorder m.Kripke.man;
  Alcotest.(check bool) "trace validates after sift" true
    (Counterex.Validate.path_ok m tr = Ok ()
    && Counterex.Validate.starts_at m m.Kripke.init tr = Ok ());
  Alcotest.(check bool) "verdict unchanged after sift" false
    (Ctl.Fair.holds m f);
  let tr2 =
    match Counterex.Explain.counterexample m f with
    | Some tr2 -> tr2
    | None -> Alcotest.fail "no counterexample after sift"
  in
  Alcotest.(check bool) "re-explained trace validates" true
    (Counterex.Validate.path_ok m tr2 = Ok ())

let suite =
  [
    prop_swaps_preserve_eval;
    prop_sift_preserves_eval;
    prop_set_order_preserves_eval;
    prop_transfer_across_orders;
    Alcotest.test_case "swap exchanges adjacent levels" `Quick
      test_swap_moves_levels;
    Alcotest.test_case "hash-consing canonical after swap" `Quick
      test_swap_canonical_after;
    Alcotest.test_case "set_order validates input" `Quick
      test_set_order_validates;
    Alcotest.test_case "set_order pre-creates variables" `Quick
      test_set_order_extends;
    Alcotest.test_case "paired sifting keeps pairs adjacent" `Quick
      test_pairs_stay_adjacent;
    Alcotest.test_case "set_pairs validates input" `Quick
      test_set_pairs_validates;
    Alcotest.test_case "auto trigger fires only at checkpoints" `Quick
      test_auto_trigger_gating;
    Alcotest.test_case "limits abort a sweep consistently" `Quick
      test_limits_abort_mid_sift;
    Alcotest.test_case "reorder fault site fires one-shot" `Quick
      test_reorder_fault_site;
    Alcotest.test_case "sifting preserves validated traces" `Quick
      test_sift_preserves_validated_trace;
  ]
