(* Resource management must be invisible to verification: dropping the
   operation caches (explicitly or by size-triggered eviction) and
   collecting garbage nodes must never change a satisfaction set.  The
   properties run the checker twice on the same manager — once
   undisturbed, once with caches bounded or cleared — and require
   physically equal answers (canonicity makes Bdd.equal id equality). *)

let prop name ?(count = 75) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let with_formula () =
  QCheck2.Gen.pair (Models.random_model_gen ~nfair:2 ()) Models.formula_gen

let prop_clear_caches_preserves_sat =
  prop "clearing caches mid-run preserves Check.sat and Fair.sat"
    (with_formula ())
    (fun (rm, f) ->
      let m = rm.Models.sym in
      let plain = Ctl.Check.sat m f in
      let fair = Ctl.Fair.sat m f in
      Bdd.clear_caches m.Kripke.man;
      let plain' = Ctl.Check.sat m f in
      Bdd.clear_caches m.Kripke.man;
      let fair' = Ctl.Fair.sat m f in
      Bdd.equal plain plain' && Bdd.equal fair fair')

let prop_eviction_preserves_sat =
  prop "a tiny cache limit (constant eviction) preserves sat sets"
    (with_formula ())
    (fun (rm, f) ->
      let m = rm.Models.sym in
      let plain = Ctl.Check.sat m f in
      let fair = Ctl.Fair.sat m f in
      (* 16 entries evicts continuously inside every fixpoint sweep. *)
      Bdd.set_cache_limit m.Kripke.man (Some 16);
      let plain' = Ctl.Check.sat m f in
      let fair' = Ctl.Fair.sat m f in
      Bdd.set_cache_limit m.Kripke.man None;
      Bdd.equal plain plain' && Bdd.equal fair fair')

let prop_gc_preserves_rooted_sat =
  prop "gc between runs preserves a rooted sat set"
    (with_formula ())
    (fun (rm, f) ->
      let m = rm.Models.sym in
      let bman = m.Kripke.man in
      let saved = Ctl.Fair.sat m f in
      Bdd.with_root bman
        (fun () -> [ saved ])
        (fun () ->
          ignore (Bdd.gc bman : int);
          Bdd.equal saved (Ctl.Fair.sat m f)))

(* The end-to-end GC story on a real model: check a specification, keep
   its satisfaction set rooted, produce garbage, collect, and verify
   the answer is bit-for-bit stable. *)
let test_gc_mutex () =
  let { Models.m; t1; c1; t2; c2 } = Models.mutex () in
  let bman = m.Kripke.man in
  let starvation = Ctl.AG (Ctl.Imp (t1, Ctl.AF c1)) in
  let saved = Ctl.Fair.sat m starvation in
  let root = Bdd.add_root bman (fun () -> [ saved ]) in
  (* Garbage: another specification's satisfaction set plus a scratch
     diagram, both dropped on the floor. *)
  ignore (Ctl.Check.sat m (Ctl.EU (t2, Ctl.And (c2, Ctl.EX t1))) : Bdd.t);
  ignore (Bdd.xor bman m.Kripke.trans m.Kripke.space : Bdd.t);
  let collected = Bdd.gc bman in
  Alcotest.(check bool) "gc collected the dropped diagrams" true
    (collected > 0);
  let again = Ctl.Fair.sat m starvation in
  Alcotest.(check bool) "rooted sat set survives and stays canonical" true
    (Bdd.equal saved again);
  Bdd.remove_root bman root;
  (* The model's own roots (registered by Kripke.make) keep checking
     sound after further collections. *)
  ignore (Bdd.gc bman : int);
  Alcotest.(check bool) "verdict stable after sweeping the saved set" true
    (Bdd.equal again (Ctl.Fair.sat m starvation)
    = Bdd.equal saved (Ctl.Fair.sat m starvation))

let test_fixpoint_counters () =
  let { Models.m; t1; c1; _ } = Models.mutex () in
  Ctl.Check.reset_fixpoint_stats ();
  Ctl.Fair.reset_fixpoint_stats ();
  ignore (Ctl.Fair.sat m (Ctl.AG (Ctl.Imp (t1, Ctl.AF c1))) : Bdd.t);
  let c = Ctl.Check.fixpoint_stats () in
  let f = Ctl.Fair.fixpoint_stats () in
  Alcotest.(check bool) "EU iterations counted" true
    (c.Ctl.Check.eu_iterations > 0);
  Alcotest.(check bool) "fair outer iterations counted" true
    (f.Ctl.Fair.outer_iterations > 0);
  Ctl.Check.reset_fixpoint_stats ();
  Alcotest.(check int) "reset zeroes the EU counter" 0
    (Ctl.Check.fixpoint_stats ()).Ctl.Check.eu_iterations

let suite =
  [
    prop_clear_caches_preserves_sat;
    prop_eviction_preserves_sat;
    prop_gc_preserves_rooted_sat;
    Alcotest.test_case "gc on the mutex model" `Quick test_gc_mutex;
    Alcotest.test_case "fixpoint counters" `Quick test_fixpoint_counters;
  ]
