(* Tests for the symbolic Kripke structure layer: variable encoding,
   images, reachability, state decoding, builder and traces. *)

let counter3 = lazy (Models.counter 3)

let test_counter_reachable () =
  let m = Lazy.force counter3 in
  Alcotest.(check (float 1e-9)) "all 8 states reachable" 8.0
    (Kripke.count_states m (Kripke.reachable m))

let test_counter_deterministic () =
  let m = Lazy.force counter3 in
  match Kripke.pick_state m m.Kripke.init with
  | None -> Alcotest.fail "no initial state"
  | Some st ->
    let succ = Kripke.post m (Kripke.state_to_bdd m st) in
    Alcotest.(check (float 1e-9)) "one successor" 1.0
      (Kripke.count_states m succ);
    (* 000 -> 100 (b0 flips) *)
    (match Kripke.pick_state m succ with
    | None -> Alcotest.fail "no successor"
    | Some st' ->
      Alcotest.(check bool) "b0 set" true st'.(0);
      Alcotest.(check bool) "b1 clear" false st'.(1))

let test_counter_no_deadlock () =
  let m = Lazy.force counter3 in
  Alcotest.(check bool) "total" true (Bdd.is_zero (Kripke.deadlocks m))

let test_pre_post_duality () =
  let m = Lazy.force counter3 in
  (* For a deterministic total relation, pre(post(S)) >= S. *)
  let s = Kripke.label m "b1" in
  let s = Bdd.and_ m.Kripke.man s m.Kripke.space in
  Alcotest.(check bool) "S <= pre(post S)" true
    (Bdd.subset m.Kripke.man s (Kripke.pre m (Kripke.post m s)))

let test_value_decoding () =
  let { Models.m; _ } = Models.mutex () in
  match Kripke.pick_state m m.Kripke.init with
  | None -> Alcotest.fail "no initial state"
  | Some st ->
    let p1 = Kripke.var_by_name m "p1" in
    Alcotest.(check string) "p1 starts idle" "idle"
      (match Kripke.value_of_state p1 st with
      | Kripke.S s -> s
      | Kripke.B _ | Kripke.I _ -> "?");
    let turn = Kripke.var_by_name m "turn" in
    Alcotest.(check bool) "turn starts false" false
      (match Kripke.value_of_state turn st with
      | Kripke.B b -> b
      | Kripke.S _ | Kripke.I _ -> true)

let test_var_by_name_missing () =
  let m = Lazy.force counter3 in
  Alcotest.check_raises "unknown var" Not_found (fun () ->
      ignore (Kripke.var_by_name m "nope"))

let test_states_in_roundtrip () =
  let m = Lazy.force counter3 in
  let all = Kripke.states_in m m.Kripke.space in
  Alcotest.(check int) "8 states listed" 8 (List.length all);
  List.iter
    (fun st ->
      let back = Kripke.state_to_bdd m st in
      Alcotest.(check bool) "member of own singleton" true
        (Kripke.eval_in_state m back st))
    all

let test_pick_state_respects_space () =
  (* An enum of 3 values has an invalid 4th encoding; pick_state must
     never produce it. *)
  let b = Kripke.Builder.create () in
  let x = Kripke.Builder.enum_var b "x" [ "a"; "b"; "c" ] in
  Kripke.Builder.add_trans b (Kripke.Builder.unchanged b x);
  let m = Kripke.Builder.build b in
  match Kripke.pick_state m m.Kripke.space with
  | None -> Alcotest.fail "space empty"
  | Some st -> ignore (Kripke.value_of_state x st) (* must not raise *)

let test_pick_state_single () =
  (* Picking from a set with don't-care bits must yield one genuine
     state of the set, not a partial cube. *)
  let m = Lazy.force counter3 in
  let set = Kripke.label m "b1" in
  match Kripke.pick_state m set with
  | None -> Alcotest.fail "set is non-empty"
  | Some st ->
    Alcotest.(check int) "one bit per state bit" m.Kripke.nbits
      (Array.length st);
    Alcotest.(check bool) "picked state is in the set" true
      (Kripke.eval_in_state m set st);
    Alcotest.(check (float 1e-9)) "decodes to a single state" 1.0
      (Kripke.count_states m (Kripke.state_to_bdd m st))

let test_pick_state_rejects_next_vars () =
  (* BDD variable 1 is the next-state copy of bit 0; a "state set"
     constraining it cannot be decoded into a state. *)
  let m = Lazy.force counter3 in
  let bad = Bdd.var m.Kripke.man 1 in
  Alcotest.check_raises "next-copy constraint rejected"
    (Invalid_argument "Kripke.pick_state: set constrains next-state variables")
    (fun () -> ignore (Kripke.pick_state m bad))

let test_model_roots_survive_gc () =
  (* [Kripke.make] registers the model's BDDs as GC roots, so an
     explicit collection must not disturb reachability analysis. *)
  let m = Models.counter 3 in
  let before = Kripke.count_states m (Kripke.reachable m) in
  ignore (Bdd.gc m.Kripke.man : int);
  Alcotest.(check bool) "model roots registered" true
    (Kripke.roots m <> []);
  Alcotest.(check (float 1e-9)) "reachable unchanged after gc" before
    (Kripke.count_states m (Kripke.reachable m))

let test_enum_space_count () =
  let b = Kripke.Builder.create () in
  let x = Kripke.Builder.enum_var b "x" [ "a"; "b"; "c" ] in
  Kripke.Builder.add_trans b (Kripke.Builder.unchanged b x);
  let m = Kripke.Builder.build b in
  Alcotest.(check (float 1e-9)) "3 valid states" 3.0
    (Kripke.count_states m m.Kripke.space)

let test_totalize () =
  let b = Kripke.Builder.create () in
  let x = Kripke.Builder.bool_var b "x" in
  (* Only transition: x=false -> x=true; the x=true state deadlocks. *)
  let bman = Kripke.Builder.man b in
  Kripke.Builder.add_trans b
    (Bdd.and_ bman (Bdd.not_ bman (Kripke.Builder.v b x)) (Kripke.Builder.v' b x));
  Kripke.Builder.add_init b (Bdd.not_ bman (Kripke.Builder.v b x));
  let m = Kripke.Builder.build b in
  Alcotest.(check bool) "has deadlock" false (Bdd.is_zero (Kripke.deadlocks m));
  let m' = Kripke.Builder.totalize m in
  Alcotest.(check bool) "totalized" true (Bdd.is_zero (Kripke.deadlocks m'))

let test_builder_duplicate_var () =
  let b = Kripke.Builder.create () in
  let _ = Kripke.Builder.bool_var b "x" in
  Alcotest.check_raises "duplicate" (Invalid_argument "Builder: duplicate variable x")
    (fun () -> ignore (Kripke.Builder.bool_var b "x"))

let test_builder_bad_enum () =
  let b = Kripke.Builder.create () in
  Alcotest.check_raises "empty enum"
    (Invalid_argument "Builder.enum_var: empty enumeration") (fun () ->
      ignore (Kripke.Builder.enum_var b "x" []));
  Alcotest.check_raises "dup consts"
    (Invalid_argument "Builder.enum_var: duplicate constants") (fun () ->
      ignore (Kripke.Builder.enum_var b "y" [ "a"; "a" ]))

let test_builder_value_errors () =
  let b = Kripke.Builder.create () in
  let x = Kripke.Builder.enum_var b "x" [ "a"; "b" ] in
  Alcotest.check_raises "wrong type"
    (Invalid_argument "Builder: type mismatch for x") (fun () ->
      ignore (Kripke.Builder.is b x (Kripke.I 0)));
  Alcotest.check_raises "unknown constant"
    (Invalid_argument "Builder: value z not in domain of x") (fun () ->
      ignore (Kripke.Builder.is b x (Kripke.S "z")))

(* ------------------------------------------------------------------ *)
(* Trace structure.                                                    *)

let st bits = Array.of_list bits

let test_trace_basics () =
  let a = st [ false ] and b = st [ true ] in
  let tr = Kripke.Trace.lasso ~prefix:[ a ] ~cycle:[ b ] in
  Alcotest.(check int) "length" 2 (Kripke.Trace.length tr);
  Alcotest.(check bool) "lasso" true (Kripke.Trace.is_lasso tr);
  Alcotest.(check bool) "nth 0" true (Kripke.Trace.nth tr 0 == a || Kripke.Trace.nth tr 0 = a);
  Alcotest.(check bool) "nth unrolls" true (Kripke.Trace.nth tr 5 = b)

let test_trace_nth_finite () =
  let a = st [ false ] and b = st [ true ] in
  let tr = Kripke.Trace.finite [ a; b ] in
  Alcotest.(check bool) "last repeats" true (Kripke.Trace.nth tr 10 = b)

let test_trace_append () =
  let a = st [ false ] and b = st [ true ] in
  let t1 = Kripke.Trace.finite [ a; b ] in
  let t2 = Kripke.Trace.lasso ~prefix:[ b ] ~cycle:[ a ] in
  let tr = Kripke.Trace.append t1 t2 in
  Alcotest.(check int) "junction not duplicated" 3 (Kripke.Trace.length tr);
  Alcotest.(check bool) "cycle kept" true (Kripke.Trace.is_lasso tr)

let test_trace_append_mismatch () =
  let a = st [ false ] and b = st [ true ] in
  let t1 = Kripke.Trace.finite [ a ] in
  let t2 = Kripke.Trace.finite [ b ] in
  Alcotest.check_raises "junction mismatch"
    (Invalid_argument "Trace.append: traces do not share the junction state")
    (fun () -> ignore (Kripke.Trace.append t1 t2))

let test_trace_pp () =
  let m = Lazy.force counter3 in
  let states = Kripke.states_in m m.Kripke.space in
  match states with
  | s0 :: s1 :: _ ->
    let tr = Kripke.Trace.lasso ~prefix:[ s0 ] ~cycle:[ s1 ] in
    let out = Format.asprintf "%a" (Kripke.Trace.pp m) tr in
    Alcotest.(check bool) "mentions loop" true
      (Astring.String.is_infix ~affix:"loop starts here" out);
    Alcotest.(check bool) "mentions state 1.1" true
      (Astring.String.is_infix ~affix:"state 1.1" out)
  | _ -> Alcotest.fail "counter has states"

let suite =
  [
    Alcotest.test_case "counter reachable" `Quick test_counter_reachable;
    Alcotest.test_case "counter deterministic" `Quick test_counter_deterministic;
    Alcotest.test_case "counter total" `Quick test_counter_no_deadlock;
    Alcotest.test_case "pre/post duality" `Quick test_pre_post_duality;
    Alcotest.test_case "value decoding" `Quick test_value_decoding;
    Alcotest.test_case "var_by_name missing" `Quick test_var_by_name_missing;
    Alcotest.test_case "states_in roundtrip" `Quick test_states_in_roundtrip;
    Alcotest.test_case "pick_state respects space" `Quick test_pick_state_respects_space;
    Alcotest.test_case "pick_state single state" `Quick test_pick_state_single;
    Alcotest.test_case "pick_state rejects next vars" `Quick
      test_pick_state_rejects_next_vars;
    Alcotest.test_case "model roots survive gc" `Quick
      test_model_roots_survive_gc;
    Alcotest.test_case "enum space count" `Quick test_enum_space_count;
    Alcotest.test_case "totalize" `Quick test_totalize;
    Alcotest.test_case "builder duplicate var" `Quick test_builder_duplicate_var;
    Alcotest.test_case "builder bad enum" `Quick test_builder_bad_enum;
    Alcotest.test_case "builder value errors" `Quick test_builder_value_errors;
    Alcotest.test_case "trace basics" `Quick test_trace_basics;
    Alcotest.test_case "trace nth finite" `Quick test_trace_nth_finite;
    Alcotest.test_case "trace append" `Quick test_trace_append;
    Alcotest.test_case "trace append mismatch" `Quick test_trace_append_mismatch;
    Alcotest.test_case "trace pretty printing" `Quick test_trace_pp;
  ]

(* Golden test: exact SMV-style trace rendering. *)
let test_trace_golden () =
  let { Models.m; _ } = Models.mutex () in
  let states = Kripke.states_in m m.Kripke.init in
  match states with
  | init :: _ ->
    (* take two steps deterministically *)
    let next st =
      match Kripke.pick_successor m st m.Kripke.space with
      | Some s -> s
      | None -> Alcotest.fail "deadlock"
    in
    let s2 = next init in
    let tr = Kripke.Trace.lasso ~prefix:[ init ] ~cycle:[ s2 ] in
    let out = Format.asprintf "%a" (Kripke.Trace.pp m) tr in
    let lines =
      String.split_on_char '\n' out
      |> List.map String.trim
      |> List.filter (fun l -> l <> "")
    in
    (* first state lists every variable; the second is the (identical)
       idle self-loop, so its diff is empty; the loop marker precedes
       it *)
    Alcotest.(check (list string)) "golden rendering"
      [ "state 1.1:"; "p1 = idle"; "p2 = idle"; "turn = 0"; "mover = 0";
        "-- loop starts here --"; "state 1.2:" ]
      lines
  | [] -> Alcotest.fail "no initial state"

let suite = suite @ [ Alcotest.test_case "trace golden rendering" `Quick test_trace_golden ]
