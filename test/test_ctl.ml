(* Tests for CTL syntax, parsing, and the symbolic checkers, including
   the cross-validation property: symbolic checker vs the explicit EMC
   oracle on random models. *)

let prop name ?(count = 200) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* ------------------------------------------------------------------ *)
(* Syntax: ENF, printing, parsing.                                     *)

let test_enf_ag () =
  let f = Ctl.AG (Ctl.atom "p") in
  (match Ctl.enf f with
  | Ctl.Not (Ctl.EU (Ctl.True, Ctl.Not (Ctl.Atom "p"))) -> ()
  | g -> Alcotest.failf "unexpected ENF: %s" (Ctl.to_string g))

let test_enf_au () =
  match Ctl.enf (Ctl.AU (Ctl.atom "p", Ctl.atom "q")) with
  | Ctl.And (Ctl.Not (Ctl.EU _), Ctl.Not (Ctl.EG _)) -> ()
  | g -> Alcotest.failf "unexpected ENF: %s" (Ctl.to_string g)

let test_push_neg_removes_double () =
  let f = Ctl.Not (Ctl.Not (Ctl.atom "p")) in
  (match Ctl.push_neg f with
  | Ctl.Atom "p" -> ()
  | g -> Alcotest.failf "unexpected: %s" (Ctl.to_string g))

let test_push_neg_demorgan () =
  let f = Ctl.Not (Ctl.And (Ctl.atom "p", Ctl.atom "q")) in
  (match Ctl.push_neg f with
  | Ctl.Or (Ctl.Not (Ctl.Atom "p"), Ctl.Not (Ctl.Atom "q")) -> ()
  | g -> Alcotest.failf "unexpected: %s" (Ctl.to_string g))

let test_atoms () =
  let f = Ctl.Parse.formula "AG (req -> AF ack) & EX req" in
  Alcotest.(check (list string)) "atoms" [ "ack"; "req" ] (Ctl.atoms f)

let test_parse_basic () =
  let f = Ctl.Parse.formula "AG (tr1 -> AF ta1)" in
  (match f with
  | Ctl.AG (Ctl.Imp (Ctl.Atom "tr1", Ctl.AF (Ctl.Atom "ta1"))) -> ()
  | g -> Alcotest.failf "unexpected parse: %s" (Ctl.to_string g))

let test_parse_until () =
  match Ctl.Parse.formula "E [p U q] | A [q U p]" with
  | Ctl.Or (Ctl.EU (Ctl.Atom "p", Ctl.Atom "q"), Ctl.AU (Ctl.Atom "q", Ctl.Atom "p")) -> ()
  | g -> Alcotest.failf "unexpected parse: %s" (Ctl.to_string g)

let test_parse_precedence () =
  (* & binds tighter than |, -> is right associative and loosest. *)
  match Ctl.Parse.formula "p & q | r -> p" with
  | Ctl.Imp (Ctl.Or (Ctl.And (Ctl.Atom "p", Ctl.Atom "q"), Ctl.Atom "r"), Ctl.Atom "p") -> ()
  | g -> Alcotest.failf "unexpected parse: %s" (Ctl.to_string g)

let test_parse_errors () =
  List.iter
    (fun input ->
      match Ctl.Parse.formula_opt input with
      | Ok f -> Alcotest.failf "%S parsed as %s" input (Ctl.to_string f)
      | Error _ -> ())
    [ ""; "p &"; "E p U q"; "(p"; "p )"; "AG"; "E [p U]"; "p q"; "#" ]

let test_parse_signal_names () =
  match Ctl.Parse.formula "AG (ur-1 -> AF ua.1)" with
  | Ctl.AG (Ctl.Imp (Ctl.Atom "ur-1", Ctl.AF (Ctl.Atom "ua.1"))) -> ()
  | g -> Alcotest.failf "unexpected parse: %s" (Ctl.to_string g)

let prop_pp_parse_roundtrip =
  prop "pp then parse is the identity" Models.formula_gen (fun f ->
      let printed = Ctl.to_string f in
      match Ctl.Parse.formula_opt printed with
      | Error msg -> QCheck2.Test.fail_reportf "%s on %s" msg printed
      | Ok g -> g = f)

(* ------------------------------------------------------------------ *)
(* Checker unit tests on known models.                                 *)

let mux = lazy (Models.mutex ())

let check_holds ?(fair = false) name expected formula =
  let { Models.m; _ } = Lazy.force mux in
  let holds = if fair then Ctl.Fair.holds m formula else Ctl.Check.holds m formula in
  Alcotest.(check bool) name expected holds

let test_mutex_safety () =
  let { Models.c1; c2; _ } = Lazy.force mux in
  check_holds "mutual exclusion" true (Ctl.AG (Ctl.neg Ctl.(c1 &&& c2)));
  check_holds ~fair:true "mutual exclusion (fair)" true
    (Ctl.AG (Ctl.neg Ctl.(c1 &&& c2)))

let test_mutex_possibility () =
  let { Models.c1; c2; _ } = Lazy.force mux in
  check_holds "c1 possible" true (Ctl.EF c1);
  check_holds "c2 possible" true (Ctl.EF c2);
  check_holds ~fair:true "c1 possible (fair)" true (Ctl.EF c1)

let test_mutex_liveness_unfair () =
  (* Without fairness the scheduler may ignore process 1 forever. *)
  let { Models.t1; c1; _ } = Lazy.force mux in
  check_holds "liveness fails unfair" false Ctl.(AG (t1 ==> AF c1))

let test_mutex_liveness_fair_still_fails () =
  (* Even under the scheduling fairness constraints process 1 starves
     when process 2 never requests: turn stays with process 2. *)
  let { Models.t1; c1; _ } = Lazy.force mux in
  check_holds ~fair:true "starvation scenario" false Ctl.(AG (t1 ==> AF c1))

let test_mutex_ag_ef () =
  (* Reset property: from anywhere, the system can reach a state where
     process 1 is critical (under fair scheduling). *)
  let { Models.c1; _ } = Lazy.force mux in
  check_holds ~fair:true "AG EF c1" true (Ctl.AG (Ctl.EF c1))

let test_unknown_atom () =
  let { Models.m; _ } = Lazy.force mux in
  Alcotest.check_raises "unknown atom" (Ctl.Check.Unknown_atom "nope")
    (fun () -> ignore (Ctl.Check.sat m (Ctl.atom "nope")))

let test_counter_next () =
  let m = Models.counter 3 in
  (* After three steps from 000 the counter reads 110 (value 3):
     AX AX AX (b0 & b1 & !b2) starting state is deterministic. *)
  let f = Ctl.(AX (AX (AX (atom "b0" &&& atom "b1" &&& neg (atom "b2"))))) in
  Alcotest.(check bool) "three increments" true (Ctl.Check.holds m f);
  let wrong = Ctl.(AX (AX (AX (atom "b2")))) in
  Alcotest.(check bool) "not yet 4" false (Ctl.Check.holds m wrong)

let test_counter_inevitable_wrap () =
  let m = Models.counter 3 in
  let all_set = Ctl.(atom "b0" &&& atom "b1" &&& atom "b2") in
  Alcotest.(check bool) "AF 111" true (Ctl.Check.holds m (Ctl.AF all_set));
  Alcotest.(check bool) "AG AF 111" true
    (Ctl.Check.holds m (Ctl.AG (Ctl.AF all_set)))

(* ------------------------------------------------------------------ *)
(* Cross-validation against the explicit oracle.                       *)

let rm_and_formula ~nfair =
  QCheck2.Gen.pair (Models.random_model_gen ~nfair ()) Models.formula_gen

let prop_symbolic_vs_explicit =
  prop "symbolic CTL = explicit CTL (no fairness)" ~count:300
    (rm_and_formula ~nfair:0)
    (fun (rm, f) ->
      let symbolic = Ctl.Check.sat rm.Models.sym f in
      let explicit = Explicit.Ectl.sat rm.Models.graph ~atom:rm.Models.atom_mask f in
      Models.sets_agree rm symbolic explicit)

let prop_symbolic_vs_explicit_fair =
  prop "fair symbolic CTL = fair explicit CTL" ~count:300
    (rm_and_formula ~nfair:2)
    (fun (rm, f) ->
      let symbolic = Ctl.Fair.sat rm.Models.sym f in
      let explicit =
        Explicit.Ectl.sat_fair rm.Models.graph ~atom:rm.Models.atom_mask f
      in
      Models.sets_agree rm symbolic explicit)

let prop_fair_states_vs_explicit =
  prop "fair state sets agree" ~count:200
    (Models.random_model_gen ~nfair:3 ())
    (fun rm ->
      let symbolic = Ctl.Fair.fair_states rm.Models.sym in
      let explicit = Explicit.Ectl.fair_states rm.Models.graph in
      Models.sets_agree rm symbolic explicit)

let prop_rings_last_is_eu =
  prop "last onion ring equals the EU set" ~count:100
    (QCheck2.Gen.pair (Models.random_model_gen ()) (QCheck2.Gen.pair Models.formula_gen Models.formula_gen))
    (fun (rm, (af, ag)) ->
      let m = rm.Models.sym in
      let f = Ctl.Check.sat m af and g = Ctl.Check.sat m ag in
      let rings = Ctl.Check.eu_rings m f g in
      let eu = Ctl.Check.eu m f g in
      Bdd.equal rings.(Array.length rings - 1) eu)

let prop_rings_monotone =
  prop "onion rings increase" ~count:100
    (QCheck2.Gen.pair (Models.random_model_gen ()) Models.formula_gen)
    (fun (rm, af) ->
      let m = rm.Models.sym in
      let f = Ctl.Check.sat m af in
      let g = Ctl.Check.sat m (Ctl.EX af) in
      let rings = Ctl.Check.eu_rings m f g in
      let ok = ref true in
      for i = 0 to Array.length rings - 2 do
        if not (Bdd.subset m.Kripke.man rings.(i) rings.(i + 1)) then ok := false
      done;
      !ok)

let prop_fair_eg_subset_eg =
  prop "fair EG is a subset of EG" ~count:150
    (QCheck2.Gen.pair (Models.random_model_gen ~nfair:2 ()) Models.formula_gen)
    (fun (rm, af) ->
      let m = rm.Models.sym in
      let f = Ctl.Check.sat m af in
      Bdd.subset m.Kripke.man (Ctl.Fair.eg m f) (Ctl.Check.eg m f))

let suite =
  [
    Alcotest.test_case "enf AG" `Quick test_enf_ag;
    Alcotest.test_case "enf AU" `Quick test_enf_au;
    Alcotest.test_case "push_neg double negation" `Quick test_push_neg_removes_double;
    Alcotest.test_case "push_neg de morgan" `Quick test_push_neg_demorgan;
    Alcotest.test_case "atoms" `Quick test_atoms;
    Alcotest.test_case "parse basic" `Quick test_parse_basic;
    Alcotest.test_case "parse until" `Quick test_parse_until;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse signal names" `Quick test_parse_signal_names;
    prop_pp_parse_roundtrip;
    Alcotest.test_case "mutex safety" `Quick test_mutex_safety;
    Alcotest.test_case "mutex possibility" `Quick test_mutex_possibility;
    Alcotest.test_case "mutex liveness unfair" `Quick test_mutex_liveness_unfair;
    Alcotest.test_case "mutex starvation (fair)" `Quick test_mutex_liveness_fair_still_fails;
    Alcotest.test_case "mutex AG EF" `Quick test_mutex_ag_ef;
    Alcotest.test_case "unknown atom" `Quick test_unknown_atom;
    Alcotest.test_case "counter AX chain" `Quick test_counter_next;
    Alcotest.test_case "counter AF wrap" `Quick test_counter_inevitable_wrap;
    prop_symbolic_vs_explicit;
    prop_symbolic_vs_explicit_fair;
    prop_fair_states_vs_explicit;
    prop_rings_last_is_eu;
    prop_rings_monotone;
    prop_fair_eg_subset_eg;
  ]

(* ------------------------------------------------------------------ *)
(* Fixpoint algebra: idempotence and unfolding laws.                   *)

let prop_ef_idempotent =
  prop "EF (EF f) = EF f" ~count:150
    (rm_and_formula ~nfair:0)
    (fun (rm, f) ->
      let m = rm.Models.sym in
      Bdd.equal
        (Ctl.Check.sat m (Ctl.EF (Ctl.EF f)))
        (Ctl.Check.sat m (Ctl.EF f)))

let prop_eg_idempotent =
  prop "EG (EG f) = EG f" ~count:150
    (rm_and_formula ~nfair:0)
    (fun (rm, f) ->
      let m = rm.Models.sym in
      Bdd.equal
        (Ctl.Check.sat m (Ctl.EG (Ctl.EG f)))
        (Ctl.Check.sat m (Ctl.EG f)))

let prop_eu_unfolding =
  prop "E[f U g] = g \\/ (f /\\ EX E[f U g])" ~count:150
    (QCheck2.Gen.pair (Models.random_model_gen ())
       (QCheck2.Gen.pair Models.formula_gen Models.formula_gen))
    (fun (rm, (f, g)) ->
      let m = rm.Models.sym in
      let eu = Ctl.Check.sat m (Ctl.EU (f, g)) in
      let unfolded =
        Ctl.Check.sat m Ctl.(Or (g, And (f, EX (Pred eu))))
      in
      Bdd.equal eu unfolded)

let prop_eg_unfolding =
  prop "EG f = f /\\ EX EG f" ~count:150
    (rm_and_formula ~nfair:0)
    (fun (rm, f) ->
      let m = rm.Models.sym in
      let eg = Ctl.Check.sat m (Ctl.EG f) in
      Bdd.equal eg (Ctl.Check.sat m Ctl.(And (f, EX (Pred eg)))))

let prop_fair_eg_unfolding =
  (* the fair gfp is a fixpoint of its own functional *)
  prop "fair EG f is a fixpoint" ~count:100
    (rm_and_formula ~nfair:2)
    (fun (rm, af) ->
      let m = rm.Models.sym in
      let f = Ctl.Fair.sat m af in
      let z = Ctl.Fair.eg m f in
      let step =
        List.fold_left
          (fun acc h ->
            let reach = Ctl.Check.eu m f (Bdd.and_ m.Kripke.man z h) in
            Bdd.and_ m.Kripke.man acc (Ctl.Check.ex m reach))
          f
          (Ctl.Fair.constraints m)
      in
      Bdd.equal z (Bdd.and_ m.Kripke.man z step))

let prop_fair_semantics_vacuous_without_fair_path =
  (* States with no fair successor path satisfy no fair EX. *)
  prop "fair EX f implies a fair continuation" ~count:100
    (rm_and_formula ~nfair:2)
    (fun (rm, af) ->
      let m = rm.Models.sym in
      let f = Ctl.Fair.sat m af in
      Bdd.subset m.Kripke.man (Ctl.Fair.ex m f)
        (Ctl.Check.ex m (Ctl.Fair.fair_states m)))

let suite =
  suite
  @ [
      prop_ef_idempotent;
      prop_eg_idempotent;
      prop_eu_unfolding;
      prop_eg_unfolding;
      prop_fair_eg_unfolding;
      prop_fair_semantics_vacuous_without_fair_path;
    ]
