let () =
  Alcotest.run "counterexamples"
    [
      ("bdd", Test_bdd.suite);
      ("store", Test_store.suite);
      ("kripke", Test_kripke.suite);
      ("ctl", Test_ctl.suite);
      ("explicit", Test_explicit.suite);
      ("witness", Test_witness.suite);
      ("stats", Test_stats.suite);
      ("ctlstar", Test_ctlstar.suite);
      ("automata", Test_automata.suite);
      ("smv", Test_smv.suite);
      ("circuit", Test_circuit.suite);
      ("partition", Test_partition.suite);
      ("examples", Test_examples.suite);
      ("limits", Test_limits.suite);
      ("parallel", Test_parallel.suite);
      ("frontend_fuzz", Test_frontend_fuzz.suite);
      ("validate", Test_validate.suite);
      ("reorder", Test_reorder.suite);
      ("robust", Test_robust.suite);
      ("chaos", Test_chaos.suite);
      ("faircycle", Test_faircycle.suite);
      ("server", Test_server.suite);
      ("snapshot", Test_snapshot.suite);
      ("cli", Test_cli.suite);
    ]
