(* Chaos suite: run real checking workloads with armed fault hooks and
   assert the recovery engine's contract —

     (a) the manager still satisfies its integrity invariants after a
         recovered fault (canonical hash-consing, clean gc, working
         operations);
     (b) the verdict obtained through recovery equals the fault-free
         verdict;
     (c) an injected fault never escapes as an uncaught exception when
         a ladder is standing (and surfaces only as the documented
         Out_of_memory / Exhausted when none is).

   The workloads are the tier-1 models: the mutex (fair CTL with
   traces) and the engineered counter (deep EF fixpoints). *)

(* Fault-free ground truth for a model+spec, computed on a fresh
   manager-independent copy of the structure (the shared test builders
   reconstruct from scratch each call). *)
let verdict m ~fair f = if fair then Ctl.Fair.holds m f else Ctl.Check.holds m f

(* Check one spec through the ladder with a fault armed, mirroring how
   smv_check drives it (gc rung, explicit rung gated on size). *)
let check_with_ladder m ~fair ~retries f =
  Robust.Ladder.run ~retries
    ~cancelled:(fun () -> false)
    ~fits_explicit:(fun () -> Robust.Fallback.fits m)
    ~live_nodes:(fun () -> Bdd.live_nodes m.Kripke.man)
    (fun ~attempt:_ strategy ->
      match strategy with
      | Robust.Ladder.Explicit_state ->
        let fb = Robust.Fallback.build m in
        Robust.Fallback.holds fb ~fair f
      | Robust.Ladder.Gc_retry ->
        ignore (Bdd.gc m.Kripke.man);
        verdict m ~fair f
      | Robust.Ladder.Reorder ->
        Bdd.reorder m.Kripke.man;
        verdict m ~fair f
      | Robust.Ladder.Direct | Robust.Ladder.Degraded
      | Robust.Ladder.Main_domain ->
        verdict m ~fair f)

(* Manager integrity after recovery: hash-consing still canonical (the
   same function built twice is the same node), negation involutive,
   gc completes and the manager keeps answering correctly. *)
let assert_manager_integrity man =
  (* gc first: sweeping after a half-finished, faulted computation must
     leave a consistent table (unrooted intermediates may go — holding
     them across an explicit gc would be caller error). *)
  ignore (Bdd.gc man);
  let x = Bdd.var man 0 and y = Bdd.var man 2 in
  let a = Bdd.and_ man x y and b = Bdd.and_ man y x in
  Alcotest.(check bool) "hash-consing canonical" true (Bdd.equal a b);
  Alcotest.(check bool) "negation involutive" true
    (Bdd.equal x (Bdd.not_ man (Bdd.not_ man x)));
  Alcotest.(check bool) "manager alive" true (Bdd.live_nodes man > 0)

let sites =
  [
    Bdd.Fault.Mk;
    Bdd.Fault.Cache_probe;
    Bdd.Fault.Gc;
    Bdd.Fault.Step;
    Bdd.Fault.Reorder;
  ]

(* Sweep injection points: for each site and a spread of trigger
   counts, the recovered verdict must equal the clean one and the
   manager must stay sound.  Counts are small enough that most arm
   points actually fire mid-check. *)
let test_mutex_all_sites () =
  let mx = Models.mutex () in
  let specs =
    [
      Ctl.AG (Ctl.neg (Ctl.And (mx.Models.c1, mx.Models.c2)));
      Ctl.AG (Ctl.Imp (mx.Models.t1, Ctl.AF mx.Models.c1));
      Ctl.EF mx.Models.c2;
    ]
  in
  let clean = List.map (verdict mx.Models.m ~fair:true) specs in
  List.iter
    (fun site ->
      List.iter
        (fun after ->
          List.iteri
            (fun i f ->
              let man = mx.Models.m.Kripke.man in
              Bdd.Fault.arm man ~site ~after;
              (match check_with_ladder mx.Models.m ~fair:true ~retries:2 f with
              | Ok (got, _) ->
                Alcotest.(check bool)
                  (Printf.sprintf "spec %d verdict (site %s, after %d)" i
                     (Bdd.Fault.site_to_string site)
                     after)
                  (List.nth clean i) got
              | Error (failure, _) ->
                Alcotest.failf "ladder exhausted on site %s: %s"
                  (Bdd.Fault.site_to_string site)
                  (Robust.Ladder.failure_name failure)
              | exception e ->
                Alcotest.failf "fault escaped the ladder (site %s): %s"
                  (Bdd.Fault.site_to_string site)
                  (Printexc.to_string e));
              Bdd.Fault.disarm man;
              assert_manager_integrity man)
            specs)
        [ 1; 5; 50 ])
    sites

(* The counter workload: deep fixpoints, no fairness.  The mk site
   with a larger count fires deep inside the EF iteration. *)
let test_counter_deep_fault () =
  let m = Models.counter 8 in
  let all_ones =
    List.init 8 (fun i -> Ctl.atom (Printf.sprintf "b%d" i))
    |> List.fold_left (fun acc a -> Ctl.And (acc, a)) Ctl.True
  in
  let f = Ctl.EF all_ones in
  let clean = verdict m ~fair:false f in
  Alcotest.(check bool) "counter reaches all-ones" true clean;
  List.iter
    (fun (site, after) ->
      let man = m.Kripke.man in
      Bdd.Fault.arm man ~site ~after;
      (match check_with_ladder m ~fair:false ~retries:2 f with
      | Ok (got, log) ->
        Alcotest.(check bool) "recovered verdict" clean got;
        Alcotest.(check bool) "at least one attempt" true
          (List.length log >= 1)
      | Error (failure, _) ->
        Alcotest.failf "ladder exhausted: %s"
          (Robust.Ladder.failure_name failure)
      | exception e ->
        Alcotest.failf "fault escaped: %s" (Printexc.to_string e));
      Bdd.Fault.disarm man;
      assert_manager_integrity man)
    [
      (Bdd.Fault.Mk, 200);
      (Bdd.Fault.Cache_probe, 100);
      (Bdd.Fault.Step, 3);
      (Bdd.Fault.Gc, 1);
    ]

(* Without a ladder, the fault must surface only as the documented
   exception — Out_of_memory for the memory-shaped sites — and leave
   the manager recoverable. *)
let test_fault_without_ladder_is_contained () =
  let m = Models.counter 6 in
  let f = Ctl.EF (Ctl.atom "b5") in
  let man = m.Kripke.man in
  Bdd.Fault.arm man ~site:Bdd.Fault.Mk ~after:50;
  (match verdict m ~fair:false f with
  | (_ : bool) -> Alcotest.fail "armed fault never fired"
  | exception Out_of_memory -> ()
  | exception e ->
    Alcotest.failf "wrong escape exception: %s" (Printexc.to_string e));
  Bdd.Fault.disarm man;
  (* The failed check left partial intermediates; the manager must
     still be fully functional. *)
  assert_manager_integrity man;
  Alcotest.(check bool) "clean re-run succeeds" true
    (verdict m ~fair:false f)

(* Recovered traces certify: arm a fault, recover through the ladder,
   build the counterexample, certify it — the full --retries + --certify
   pipeline in miniature. *)
let test_recovered_trace_certifies () =
  let mx = Models.mutex () in
  let m = mx.Models.m in
  (* False spec: process 2 trying does not guarantee process 1 enters. *)
  let f = Ctl.AG (Ctl.Imp (mx.Models.t1, Ctl.AF mx.Models.c1)) in
  Alcotest.(check bool) "spec is false" false (verdict m ~fair:true f);
  Bdd.Fault.arm m.Kripke.man ~site:Bdd.Fault.Cache_probe ~after:20;
  (match check_with_ladder m ~fair:true ~retries:2 f with
  | Ok (false, _) -> ()
  | Ok (true, _) -> Alcotest.fail "recovered verdict flipped"
  | Error (failure, _) ->
    Alcotest.failf "ladder exhausted: %s" (Robust.Ladder.failure_name failure));
  Bdd.Fault.disarm m.Kripke.man;
  match Counterex.Explain.counterexample m f with
  | None -> Alcotest.fail "no counterexample after recovery"
  | Some tr -> (
    match Robust.Certify.counterexample m f tr with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "recovered trace failed certification: %s" msg)

let suite =
  [
    Alcotest.test_case "mutex: all sites, verdicts stable" `Quick
      test_mutex_all_sites;
    Alcotest.test_case "counter: deep-fixpoint faults recover" `Quick
      test_counter_deep_fault;
    Alcotest.test_case "unladdered fault is contained" `Quick
      test_fault_without_ladder_is_contained;
    Alcotest.test_case "recovered trace certifies" `Quick
      test_recovered_trace_certifies;
  ]
