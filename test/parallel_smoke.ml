(* Smoke test for the --jobs determinism contract, run via
   `dune build @parallel-smoke`: a parallel run must be byte-identical
   to a sequential one — same verdicts, same traces, same exit code —
   on a plain model (mutex) and a fairness-constrained one
   (philosophers).  Any deviation fails the alias. *)

let exe = Filename.concat (Filename.concat ".." "bin") "smv_check.exe"

let run args =
  let cmd = Filename.quote_command exe args ^ " 2>&1" in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n
  in
  (code, Buffer.contents buf)

let failures = ref 0

let expect what cond =
  if cond then Printf.printf "ok: %s\n%!" what
  else begin
    incr failures;
    Printf.printf "FAIL: %s\n%!" what
  end

let model name =
  Filename.concat (Filename.concat (Filename.concat ".." "examples") "models")
    name

let check name args =
  let seq_code, seq_out = run args in
  let par_code, par_out = run (args @ [ "--jobs"; "4" ]) in
  expect (name ^ ": exit codes agree") (seq_code = par_code);
  expect (name ^ ": output byte-identical") (seq_out = par_out);
  if seq_out <> par_out then begin
    Printf.printf "--- sequential ---\n%s--- --jobs 4 ---\n%s%!" seq_out
      par_out
  end

let () =
  check "mutex" [ model "mutex.smv" ];
  check "philosophers" [ model "philosophers.smv" ];
  if !failures > 0 then begin
    Printf.printf "%d deviation(s) from the --jobs determinism contract\n%!"
      !failures;
    exit 1
  end
