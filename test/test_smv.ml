(* Tests for the SMV frontend: lexer, parser, compiler, end-to-end
   model checking of SMV sources. *)

let compile src = Smv.load_string src

let toggle_src =
  "MODULE main\n\
   VAR x : boolean;\n\
   ASSIGN\n\
   init(x) := FALSE;\n\
   next(x) := !x;\n\
   SPEC AG (x -> AX !x)\n\
   SPEC AF x\n"

(* ------------------------------------------------------------------ *)
(* Lexer.                                                              *)

let test_lexer_comments () =
  let toks = Smv.Lexer.tokenize "x -- a comment\n& y" in
  match List.map fst toks with
  | [ Smv.Lexer.IDENT "x"; Smv.Lexer.AND; Smv.Lexer.IDENT "y"; Smv.Lexer.EOF ]
    ->
    ()
  | _ -> Alcotest.fail "comment not skipped"

let test_lexer_positions () =
  let toks = Smv.Lexer.tokenize "x\n  := 3" in
  match toks with
  | [ (Smv.Lexer.IDENT "x", p1); (Smv.Lexer.BECOMES, p2); (Smv.Lexer.INT 3, p3);
      (Smv.Lexer.EOF, _) ] ->
    Alcotest.(check int) "x line" 1 p1.Smv.Ast.line;
    Alcotest.(check int) ":= line" 2 p2.Smv.Ast.line;
    Alcotest.(check int) ":= col" 3 p2.Smv.Ast.col;
    Alcotest.(check int) "3 col" 6 p3.Smv.Ast.col
  | _ -> Alcotest.fail "unexpected tokens"

let test_lexer_operators () =
  let toks = Smv.Lexer.tokenize "<-> -> <= >= != .. := mod + -" in
  let expected =
    [ Smv.Lexer.IFF; Smv.Lexer.IMP; Smv.Lexer.LE; Smv.Lexer.GE; Smv.Lexer.NEQ;
      Smv.Lexer.DOTDOT; Smv.Lexer.BECOMES; Smv.Lexer.KW_mod; Smv.Lexer.PLUS;
      Smv.Lexer.MINUS; Smv.Lexer.EOF ]
  in
  Alcotest.(check bool) "operator tokens" true
    (List.map fst toks = expected)

let test_lexer_error () =
  match Smv.Lexer.tokenize "a $ b" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception Smv.Lexer.Error (_, pos) ->
    Alcotest.(check int) "error column" 3 pos.Smv.Ast.col

(* ------------------------------------------------------------------ *)
(* Parser.                                                             *)

let test_parse_program () =
  match (Smv.Parser.program toggle_src).Smv.Ast.modules with
  | [ m ] ->
    Alcotest.(check string) "module name" "main" m.Smv.Ast.mod_name;
    Alcotest.(check (list string)) "no params" [] m.Smv.Ast.params;
    Alcotest.(check int) "decl count" 4 (List.length m.Smv.Ast.decls)
  | _ -> Alcotest.fail "expected a single module" 

let test_parse_case_and_set () =
  let e =
    Smv.Parser.expression
      "case s = idle : {idle, busy}; TRUE : s; esac"
  in
  match e.Smv.Ast.desc with
  | Smv.Ast.Ecase [ (_, { Smv.Ast.desc = Smv.Ast.Eset [ _; _ ]; _ }); (_, _) ]
    ->
    ()
  | _ -> Alcotest.fail "unexpected case parse"

let test_parse_arith_precedence () =
  (* n + 1 = 2 parses as (n + 1) = 2. *)
  match (Smv.Parser.expression "n + 1 = 2").Smv.Ast.desc with
  | Smv.Ast.Eeq ({ desc = Smv.Ast.Eadd _; _ }, { desc = Smv.Ast.Eint 2; _ }) ->
    ()
  | _ -> Alcotest.fail "unexpected arithmetic parse"

let test_parse_errors () =
  List.iter
    (fun src ->
      match Smv.Parser.program src with
      | _ -> Alcotest.failf "%S should not parse" src
      | exception (Smv.Parser.Error _ | Smv.Lexer.Error _) -> ())
    [
      "VAR x : boolean;";              (* missing MODULE *)
      "MODULE main VAR x boolean;";    (* missing colon *)
      "MODULE main ASSIGN init(x) := ;"; (* missing expr *)
      "MODULE main SPEC case esac";    (* empty case *)
      "MODULE main VAR x : 5..;";      (* missing range end *)
    ]

(* ------------------------------------------------------------------ *)
(* Compiler semantics.                                                 *)

let test_toggle_specs () =
  let c = compile toggle_src in
  Alcotest.(check int) "two specs" 2 (List.length c.Smv.Compile.specs);
  List.iter
    (fun (name, spec) ->
      Alcotest.(check bool) name true (Ctl.Fair.holds c.Smv.Compile.model spec))
    c.Smv.Compile.specs

let test_counter_mod () =
  let c =
    compile
      "MODULE main\n\
       VAR n : 0..5;\n\
       ASSIGN init(n) := 0; next(n) := (n + 1) mod 6;\n\
       SPEC AG (n = 5 -> AX n = 0)\n\
       SPEC AG AF n = 3\n\
       SPEC EF n = 5\n"
  in
  let m = c.Smv.Compile.model in
  Alcotest.(check (float 1e-9)) "six reachable states" 6.0
    (Kripke.count_states m (Kripke.reachable m));
  List.iter
    (fun (name, spec) ->
      Alcotest.(check bool) name true (Ctl.Check.holds m spec))
    c.Smv.Compile.specs

let test_nondeterministic_set () =
  let c =
    compile
      "MODULE main\n\
       VAR x : boolean;\n\
       ASSIGN init(x) := FALSE; next(x) := {TRUE, FALSE};\n\
       SPEC EX x\nSPEC EX !x\nSPEC AF x\n"
  in
  let m = c.Smv.Compile.model in
  let holds name = Ctl.Check.holds m (List.assoc name c.Smv.Compile.specs) in
  Alcotest.(check bool) "EX x" true (holds "(EX x)");
  Alcotest.(check bool) "EX !x" true (holds "(EX !x)");
  Alcotest.(check bool) "AF x can fail" false (holds "(AF x)")

let test_enum_case () =
  let c =
    compile
      "MODULE main\n\
       VAR s : {idle, busy, done};\n\
       ASSIGN\n\
       init(s) := idle;\n\
       next(s) := case\n\
           s = idle : {idle, busy};\n\
           s = busy : done;\n\
           TRUE : idle;\n\
         esac;\n\
       SPEC AG (s = busy -> AX s = done)\n\
       SPEC EF s = done\n\
       SPEC AG (s = done -> AX s = idle)\n"
  in
  let m = c.Smv.Compile.model in
  List.iter
    (fun (name, spec) ->
      Alcotest.(check bool) name true (Ctl.Check.holds m spec))
    c.Smv.Compile.specs

let test_trans_with_next () =
  let c =
    compile
      "MODULE main\n\
       VAR x : boolean;\n\
       INIT !x\n\
       TRANS next(x) <-> !x\n\
       SPEC AG (x -> AX !x)\n"
  in
  let m = c.Smv.Compile.model in
  Alcotest.(check bool) "toggle via TRANS" true
    (Ctl.Check.holds m (snd (List.hd c.Smv.Compile.specs)))

let test_invar () =
  let c =
    compile
      "MODULE main\n\
       VAR a : boolean; b : boolean;\n\
       INVAR a <-> !b\n\
       SPEC AG (a | b)\nSPEC AG !(a & b)\n"
  in
  let m = c.Smv.Compile.model in
  List.iter
    (fun (name, spec) ->
      Alcotest.(check bool) name true (Ctl.Check.holds m spec))
    c.Smv.Compile.specs;
  Alcotest.(check (float 1e-9)) "two valid states" 2.0
    (Kripke.count_states m m.Kripke.space)

let test_current_assignment () =
  let c =
    compile
      "MODULE main\n\
       VAR x : boolean; y : boolean;\n\
       ASSIGN\n\
       y := !x;\n\
       init(x) := FALSE;\n\
       next(x) := !x;\n\
       SPEC AG (y <-> !x)\n"
  in
  Alcotest.(check bool) "defined variable tracks" true
    (Ctl.Check.holds c.Smv.Compile.model (snd (List.hd c.Smv.Compile.specs)))

let test_fairness_section () =
  (* x drifts nondeterministically; fairness forces x infinitely often,
     so AG AF x holds under fair semantics but not plain. *)
  let c =
    compile
      "MODULE main\n\
       VAR x : boolean;\n\
       ASSIGN next(x) := {TRUE, FALSE};\n\
       FAIRNESS x\n\
       SPEC AG AF x\n"
  in
  let m = c.Smv.Compile.model in
  let spec = snd (List.hd c.Smv.Compile.specs) in
  Alcotest.(check bool) "fails without fairness" false (Ctl.Check.holds m spec);
  Alcotest.(check bool) "holds with fairness" true (Ctl.Fair.holds m spec)

let test_mutex_smv_counterexample () =
  (* The full pipeline: a starvation bug found from SMV source, with a
     validated lasso counterexample. *)
  let c =
    compile
      "MODULE main\n\
       VAR p1 : {idle, try, crit}; p2 : {idle, try, crit}; turn : boolean;\n\
       ASSIGN\n\
       init(p1) := idle; init(p2) := idle; init(turn) := FALSE;\n\
       next(turn) := case\n\
           p1 = crit & next(p1) = idle : TRUE;\n\
           p2 = crit & next(p2) = idle : FALSE;\n\
           TRUE : turn;\n\
         esac;\n\
       SPEC AG !(p1 = crit & p2 = crit)\n"
  in
  (* next(p1)/next(p2) unassigned: they evolve freely; but next(turn)
     uses next(p1), which is only legal in TRANS — so this source must
     be rejected. *)
  ignore c;
  Alcotest.fail "expected a compile error"

let test_mutex_smv_counterexample_fixed () =
  let src =
    "MODULE main\n\
     VAR p : {idle, try, crit}; q : {idle, try, crit}; turn : boolean;\n\
     ASSIGN\n\
     init(p) := idle; init(q) := idle; init(turn) := FALSE;\n\
     next(p) := case\n\
         p = idle : {idle, try};\n\
         p = try & !turn : crit;\n\
         p = try : try;\n\
         TRUE : idle;\n\
       esac;\n\
     next(q) := case\n\
         q = idle : {idle, try};\n\
         q = try & turn : crit;\n\
         q = try : try;\n\
         TRUE : idle;\n\
       esac;\n\
     next(turn) := case\n\
         p = crit : TRUE;\n\
         q = crit : FALSE;\n\
         TRUE : turn;\n\
       esac;\n\
     SPEC AG !(p = crit & q = crit)\n\
     SPEC AG (p = try -> AF p = crit)\n"
  in
  let c = compile src in
  let m = c.Smv.Compile.model in
  (match c.Smv.Compile.specs with
  | [ (_, safety); (_, liveness) ] ->
    Alcotest.(check bool) "safety holds" true (Ctl.Check.holds m safety);
    Alcotest.(check bool) "liveness fails" false (Ctl.Check.holds m liveness);
    (match Counterex.Explain.counterexample m liveness with
    | None -> Alcotest.fail "expected counterexample"
    | Some tr ->
      Alcotest.(check bool) "counterexample validates" true
        (Counterex.Validate.path_ok m tr = Ok ()
        && Counterex.Validate.starts_at m m.Kripke.init tr = Ok ()))
  | _ -> Alcotest.fail "two specs expected")

let expect_compile_error src fragment =
  match compile src with
  | _ -> Alcotest.failf "expected error mentioning %S" fragment
  | exception Smv.Compile.Error (msg, _) ->
    if not (Astring.String.is_infix ~affix:fragment msg) then
      Alcotest.failf "error %S does not mention %S" msg fragment

let test_compile_errors () =
  expect_compile_error "MODULE main\nASSIGN init(x) := TRUE;\n"
    "undeclared variable";
  expect_compile_error
    "MODULE main\nVAR x : boolean;\nASSIGN init(x) := TRUE; init(x) := FALSE;\n"
    "conflicting assignments";
  expect_compile_error
    "MODULE main\nVAR x : boolean;\nASSIGN next(x) := x; x := TRUE;\n"
    "conflicting assignments";
  expect_compile_error "MODULE main\nVAR x : boolean;\nINIT next(x)\n"
    "only allowed in TRANS";
  expect_compile_error "MODULE main\nVAR x : boolean;\nINIT x = 3\n"
    "cannot compare";
  expect_compile_error "MODULE main\nVAR n : 0..3;\nINIT n\n"
    "expected a boolean";
  expect_compile_error
    "MODULE main\nVAR n : 0..3;\nASSIGN next(n) := n + 7;\n"
    "outside the domain";
  expect_compile_error "MODULE main\nVAR x : boolean;\nINIT {TRUE, FALSE}\n"
    "set";
  expect_compile_error "MODULE main\nVAR x : boolean;\nINIT AG x\n"
    "temporal";
  expect_compile_error
    "MODULE main\nVAR s : {a, b}; t : {b, c};\nVAR b : boolean;\nINIT s = a\n"
    "collides";
  expect_compile_error "MODULE main\nVAR n : 0..3;\nINIT n mod 0 = 1\n"
    "modulo by zero"

let test_compile_expr_extra_spec () =
  let c = compile toggle_src in
  let f = Smv.Compile.compile_expr c "EF x" in
  Alcotest.(check bool) "extra spec checks" true
    (Ctl.Check.holds c.Smv.Compile.model f)

let test_load_file () =
  let path = Filename.temp_file "model" ".smv" in
  let oc = open_out path in
  output_string oc toggle_src;
  close_out oc;
  let c = Smv.load_file path in
  Sys.remove path;
  Alcotest.(check int) "specs from file" 2 (List.length c.Smv.Compile.specs)

let suite =
  [
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
    Alcotest.test_case "lexer operators" `Quick test_lexer_operators;
    Alcotest.test_case "lexer error" `Quick test_lexer_error;
    Alcotest.test_case "parse program" `Quick test_parse_program;
    Alcotest.test_case "parse case and set" `Quick test_parse_case_and_set;
    Alcotest.test_case "parse arithmetic" `Quick test_parse_arith_precedence;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "toggle specs" `Quick test_toggle_specs;
    Alcotest.test_case "counter with mod" `Quick test_counter_mod;
    Alcotest.test_case "nondeterministic set" `Quick test_nondeterministic_set;
    Alcotest.test_case "enum case" `Quick test_enum_case;
    Alcotest.test_case "TRANS with next" `Quick test_trans_with_next;
    Alcotest.test_case "INVAR" `Quick test_invar;
    Alcotest.test_case "invariant assignment" `Quick test_current_assignment;
    Alcotest.test_case "FAIRNESS section" `Quick test_fairness_section;
    Alcotest.test_case "next() outside TRANS rejected" `Quick
      (fun () ->
        match test_mutex_smv_counterexample () with
        | () -> ()
        | exception Smv.Compile.Error (msg, _) ->
          Alcotest.(check bool) "mentions TRANS" true
            (Astring.String.is_infix ~affix:"TRANS" msg));
    Alcotest.test_case "mutex end to end" `Quick test_mutex_smv_counterexample_fixed;
    Alcotest.test_case "compile errors" `Quick test_compile_errors;
    Alcotest.test_case "compile_expr" `Quick test_compile_expr_extra_spec;
    Alcotest.test_case "load_file" `Quick test_load_file;
  ]

(* ------------------------------------------------------------------ *)
(* DEFINE and set membership.                                          *)

let test_define () =
  let c =
    compile
      "MODULE main\n\
       VAR s : {idle, busy, done_};\n\
       DEFINE active := s = busy | s = done_;\n\
       ASSIGN init(s) := idle;\n\
       next(s) := case s = idle : busy; s = busy : done_; TRUE : idle; esac;\n\
       SPEC AG (s = busy -> active)\n\
       SPEC EF active\n\
       SPEC AG (active -> AF !active)\n"
  in
  let m = c.Smv.Compile.model in
  List.iter
    (fun (name, spec) ->
      Alcotest.(check bool) name true (Ctl.Check.holds m spec))
    c.Smv.Compile.specs

let test_define_nested_and_next () =
  (* Defines may use other defines, and next(define) primes the body. *)
  let c =
    compile
      "MODULE main\n\
       VAR x : boolean;\n\
       DEFINE nx := !x; nnx := !nx;\n\
       INIT !x\n\
       TRANS next(nnx) <-> nx\n\
       SPEC AG (x -> AX !x)\nSPEC AG (!x -> AX x)\n"
  in
  let m = c.Smv.Compile.model in
  List.iter
    (fun (name, spec) ->
      Alcotest.(check bool) name true (Ctl.Check.holds m spec))
    c.Smv.Compile.specs

let test_define_errors () =
  expect_compile_error
    "MODULE main\nVAR x : boolean;\nDEFINE x := TRUE;\n"
    "collides";
  expect_compile_error
    "MODULE main\nVAR y : boolean;\nDEFINE a := b; b := a;\nINIT a\n"
    "cyclic DEFINE";
  expect_compile_error
    "MODULE main\nVAR x : boolean;\nDEFINE d := x;\nASSIGN next(d) := x;\n"
    "cannot assign to DEFINE"

let test_in_operator () =
  let c =
    compile
      "MODULE main\n\
       VAR s : {a, b, c, d};\n\
       ASSIGN init(s) := a;\n\
       next(s) := case s = a : b; s = b : c; s = c : d; TRUE : a; esac;\n\
       SPEC AG (s in {a, b} -> AX s in {b, c})\n\
       SPEC EF s in {d}\n\
       SPEC AG (s in {a, b, c, d})\n"
  in
  let m = c.Smv.Compile.model in
  List.iter
    (fun (name, spec) ->
      Alcotest.(check bool) name true (Ctl.Check.holds m spec))
    c.Smv.Compile.specs

let test_in_int_ranges () =
  let c =
    compile
      "MODULE main\n\
       VAR n : 0..4;\n\
       ASSIGN init(n) := 0; next(n) := (n + 1) mod 5;\n\
       SPEC AG (n in {0, 2, 4} | n in {1, 3})\n"
  in
  Alcotest.(check bool) "in over ints" true
    (Ctl.Check.holds c.Smv.Compile.model (snd (List.hd c.Smv.Compile.specs)))

let test_define_in_compile_expr () =
  let c =
    compile
      "MODULE main\nVAR x : boolean;\nDEFINE d := !x;\nASSIGN next(x) := !x; init(x) := FALSE;\n"
  in
  let f = Smv.Compile.compile_expr c "AG (d <-> !x)" in
  Alcotest.(check bool) "define usable in extra specs" true
    (Ctl.Check.holds c.Smv.Compile.model f)

let extra_suite =
  [
    Alcotest.test_case "DEFINE" `Quick test_define;
    Alcotest.test_case "DEFINE nested + next" `Quick test_define_nested_and_next;
    Alcotest.test_case "DEFINE errors" `Quick test_define_errors;
    Alcotest.test_case "in operator" `Quick test_in_operator;
    Alcotest.test_case "in over integers" `Quick test_in_int_ranges;
    Alcotest.test_case "DEFINE in compile_expr" `Quick test_define_in_compile_expr;
  ]

let suite = suite @ extra_suite

(* ------------------------------------------------------------------ *)
(* Module instantiation (flattening).                                   *)

let test_module_counter_instances () =
  let c =
    compile
      "MODULE counter(tick)\n\
       VAR n : 0..3;\n\
       ASSIGN init(n) := 0;\n\
       next(n) := case tick : (n + 1) mod 4; TRUE : n; esac;\n\
       DEFINE full := n = 3;\n\
       SPEC AG (full -> n = 3)\n\
       \n\
       MODULE main\n\
       VAR go : boolean;\n\
       c1 : counter(go);\n\
       c2 : counter(!go);\n\
       ASSIGN next(go) := {TRUE, FALSE};\n\
       SPEC AG (c1.n = 3 -> c1.full)\n\
       SPEC EF (c1.full & c2.full)\n"
  in
  let m = c.Smv.Compile.model in
  (* both instances contribute their variables *)
  ignore (Kripke.var_by_name m "c1.n");
  ignore (Kripke.var_by_name m "c2.n");
  (* the submodule SPEC is instantiated twice, plus two in main *)
  Alcotest.(check int) "spec count" 4 (List.length c.Smv.Compile.specs);
  List.iter
    (fun (name, spec) ->
      Alcotest.(check bool) name true (Ctl.Fair.holds m spec))
    c.Smv.Compile.specs

let test_module_parameter_is_expression () =
  (* Parameters are expressions evaluated in the parent namespace. *)
  let c =
    compile
      "MODULE latch(set)\n\
       VAR q : boolean;\n\
       ASSIGN init(q) := FALSE;\n\
       next(q) := case set : TRUE; TRUE : q; esac;\n\
       \n\
       MODULE main\n\
       VAR a : boolean; b : boolean;\n\
       l : latch(a & b);\n\
       ASSIGN next(a) := {TRUE, FALSE}; next(b) := {TRUE, FALSE};\n\
       SPEC AG ((a & b) -> AX l.q)\n\
       SPEC AG (l.q -> AG l.q)\n"
  in
  List.iter
    (fun (name, spec) ->
      Alcotest.(check bool) name true
        (Ctl.Check.holds c.Smv.Compile.model spec))
    c.Smv.Compile.specs

let test_module_nested () =
  let c =
    compile
      "MODULE bit\nVAR b : boolean;\nASSIGN next(b) := !b; init(b) := FALSE;\n\
       MODULE pair\nVAR x : bit; y : bit;\n\
       MODULE main\nVAR p : pair;\n\
       SPEC AG (p.x.b <-> p.y.b)\n"
  in
  Alcotest.(check bool) "nested instance spec" true
    (Ctl.Check.holds c.Smv.Compile.model (snd (List.hd c.Smv.Compile.specs)))

let test_module_parent_assigns_child () =
  (* The parent may constrain a child's variable. *)
  let c =
    compile
      "MODULE cell\nVAR v : boolean;\n\
       MODULE main\nVAR c : cell;\n\
       ASSIGN init(c.v) := TRUE; next(c.v) := c.v;\n\
       SPEC AG c.v\n"
  in
  Alcotest.(check bool) "parent assignment" true
    (Ctl.Check.holds c.Smv.Compile.model (snd (List.hd c.Smv.Compile.specs)))

let expect_flatten_error src fragment =
  match compile src with
  | _ -> Alcotest.failf "expected flatten error mentioning %S" fragment
  | exception Smv.Flatten.Error (msg, _) ->
    if not (Astring.String.is_infix ~affix:fragment msg) then
      Alcotest.failf "error %S does not mention %S" msg fragment

let test_module_errors () =
  expect_flatten_error "MODULE main\nVAR x : nosuch;\n" "unknown module";
  expect_flatten_error
    "MODULE a\nVAR x : a;\nMODULE main\nVAR y : a;\n"
    "recursive instantiation";
  expect_flatten_error
    "MODULE a(p)\nVAR x : boolean;\nMODULE main\nVAR y : a;\n"
    "expects 1 parameter";
  expect_flatten_error "MODULE other\nVAR x : boolean;\n" "no module main";
  expect_flatten_error
    "MODULE main\nVAR x : boolean;\nMODULE main\nVAR y : boolean;\n"
    "duplicate module";
  expect_flatten_error "MODULE main(p)\nVAR x : boolean;\n"
    "main takes no parameters";
  expect_flatten_error
    "MODULE a(p)\nASSIGN next(p) := TRUE;\nVAR z : boolean;\n\
     MODULE main\nVAR q : boolean; i : a(q);\n"
    "cannot assign to formal parameter"

let module_suite =
  [
    Alcotest.test_case "module instances" `Quick test_module_counter_instances;
    Alcotest.test_case "module parameter expressions" `Quick test_module_parameter_is_expression;
    Alcotest.test_case "nested modules" `Quick test_module_nested;
    Alcotest.test_case "parent assigns child" `Quick test_module_parent_assigns_child;
    Alcotest.test_case "module errors" `Quick test_module_errors;
  ]

let suite = suite @ module_suite

(* ------------------------------------------------------------------ *)
(* Asynchronous processes.                                             *)

let inverter_ring =
  "MODULE inverter(input)\n\
   VAR out : boolean;\n\
   ASSIGN init(out) := FALSE; next(out) := !input;\n\
   FAIRNESS running\n\
   \n\
   MODULE main\n\
   VAR g1 : process inverter(g3.out);\n\
   g2 : process inverter(g1.out);\n\
   g3 : process inverter(g2.out);\n\
   SPEC AG (AF g1.out & AF !g1.out)\n"

let test_process_ring_oscillates () =
  (* The NuSMV ring-oscillator demo: an odd inverter ring oscillates
     forever when every gate eventually responds. *)
  let c = compile inverter_ring in
  let m = c.Smv.Compile.model in
  Alcotest.(check bool) "oscillates under gate fairness" true
    (Ctl.Fair.holds m (snd (List.hd c.Smv.Compile.specs)));
  (* Without the FAIRNESS running constraints one gate can hog the
     scheduler: recompile without fairness. *)
  let unfair =
    compile
      (Str.global_replace (Str.regexp_string "FAIRNESS running") ""
         inverter_ring)
  in
  Alcotest.(check bool) "may stall without fairness" false
    (Ctl.Check.holds unfair.Smv.Compile.model
       (snd (List.hd unfair.Smv.Compile.specs)))

let test_process_interleaving_freezes_others () =
  (* Two counters as processes: in any single step at most one of them
     moves. *)
  let c =
    compile
      "MODULE cnt\n\
       VAR n : 0..3;\n\
       ASSIGN init(n) := 0; next(n) := (n + 1) mod 4;\n\
       \n\
       MODULE main\n\
       VAR a : process cnt; b : process cnt;\n\
       SPEC AG ((a.n = 0 & b.n = 0) -> AX !(a.n = 1 & b.n = 1))\n\
       SPEC EF (a.n = 2 & b.n = 3)\n"
  in
  let m = c.Smv.Compile.model in
  List.iter
    (fun (name, spec) ->
      Alcotest.(check bool) name true (Ctl.Fair.holds m spec))
    c.Smv.Compile.specs

let test_process_selector_visible () =
  let c =
    compile
      "MODULE t\nVAR x : boolean;\nASSIGN next(x) := !x;\n\
       MODULE main\nVAR p : process t;\nSPEC EF p.x\n"
  in
  let m = c.Smv.Compile.model in
  (* the scheduler variable exists and ranges over the units *)
  let v = Kripke.var_by_name m "_process" in
  (match v.Kripke.vtype with
  | Kripke.Enum [ "main"; "p" ] -> ()
  | _ -> Alcotest.fail "unexpected selector domain");
  Alcotest.(check bool) "progress possible" true
    (Ctl.Check.holds m (snd (List.hd c.Smv.Compile.specs)))

let test_process_running_in_spec () =
  let c =
    compile
      "MODULE t\nVAR x : boolean;\nASSIGN next(x) := !x;\n\
       MODULE main\nVAR p : process t;\n\
       SPEC AG (p.running -> p.running)\nSPEC EF p.running\nSPEC EF running\n"
  in
  List.iter
    (fun (name, spec) ->
      Alcotest.(check bool) name true
        (Ctl.Check.holds c.Smv.Compile.model spec))
    c.Smv.Compile.specs

let test_process_owned_variable_frozen () =
  (* While process q runs, p's counter cannot change. *)
  let c =
    compile
      "MODULE cnt\nVAR n : 0..1;\nASSIGN next(n) := (n + 1) mod 2;\n\
       MODULE main\nVAR p : process cnt; q : process cnt;\n\
       SPEC AG ((p.n = 0 & q.running) -> AX (q.running -> p.n = 0))\n"
  in
  ignore c;
  (* The frozen-variable property is directly expressed on steps: when
     q is selected, after the step p.n is unchanged. *)
  let c2 =
    compile
      "MODULE cnt\nVAR n : 0..1;\nASSIGN next(n) := (n + 1) mod 2;\n\
       MODULE main\nVAR p : process cnt; q : process cnt;\n\
       TRANS running | p.running | q.running\n"
  in
  let m = c2.Smv.Compile.model in
  let p_zero = Smv.Compile.compile_expr c2 "p.n = 0" in
  let q_runs = Smv.Compile.compile_expr c2 "q.running" in
  let set f = Ctl.Check.sat m f in
  (* from any state where q runs and p.n = 0, every successor has
     p.n = 0 *)
  let bad =
    Bdd.and_ m.Kripke.man
      (Bdd.and_ m.Kripke.man (set p_zero) (set q_runs))
      (Kripke.pre m (Bdd.diff m.Kripke.man m.Kripke.space (set p_zero)))
  in
  Alcotest.(check bool) "p.n frozen while q runs" true (Bdd.is_zero bad)

let process_suite =
  [
    Alcotest.test_case "process ring oscillates" `Quick test_process_ring_oscillates;
    Alcotest.test_case "process interleaving" `Quick test_process_interleaving_freezes_others;
    Alcotest.test_case "process selector variable" `Quick test_process_selector_visible;
    Alcotest.test_case "running in specs" `Quick test_process_running_in_spec;
    Alcotest.test_case "owned variables frozen" `Quick test_process_owned_variable_frozen;
  ]

let suite = suite @ process_suite

(* ------------------------------------------------------------------ *)
(* Printer / parser roundtrip on random expressions.                   *)

let rec strip (e : Smv.Ast.expr) : Smv.Ast.desc =
  match e.Smv.Ast.desc with
  | (Smv.Ast.Etrue | Smv.Ast.Efalse | Smv.Ast.Eint _ | Smv.Ast.Eident _) as d
    ->
    d
  | Smv.Ast.Enext a -> Smv.Ast.Enext (restamp a)
  | Smv.Ast.Enot a -> Smv.Ast.Enot (restamp a)
  | Smv.Ast.Eand (a, b) -> Smv.Ast.Eand (restamp a, restamp b)
  | Smv.Ast.Eor (a, b) -> Smv.Ast.Eor (restamp a, restamp b)
  | Smv.Ast.Eimp (a, b) -> Smv.Ast.Eimp (restamp a, restamp b)
  | Smv.Ast.Eiff (a, b) -> Smv.Ast.Eiff (restamp a, restamp b)
  | Smv.Ast.Eeq (a, b) -> Smv.Ast.Eeq (restamp a, restamp b)
  | Smv.Ast.Eneq (a, b) -> Smv.Ast.Eneq (restamp a, restamp b)
  | Smv.Ast.Elt (a, b) -> Smv.Ast.Elt (restamp a, restamp b)
  | Smv.Ast.Ele (a, b) -> Smv.Ast.Ele (restamp a, restamp b)
  | Smv.Ast.Egt (a, b) -> Smv.Ast.Egt (restamp a, restamp b)
  | Smv.Ast.Ege (a, b) -> Smv.Ast.Ege (restamp a, restamp b)
  | Smv.Ast.Eadd (a, b) -> Smv.Ast.Eadd (restamp a, restamp b)
  | Smv.Ast.Esub (a, b) -> Smv.Ast.Esub (restamp a, restamp b)
  | Smv.Ast.Emod (a, b) -> Smv.Ast.Emod (restamp a, restamp b)
  | Smv.Ast.Ein (a, b) -> Smv.Ast.Ein (restamp a, restamp b)
  | Smv.Ast.Eset es -> Smv.Ast.Eset (List.map restamp es)
  | Smv.Ast.Ecase bs ->
    Smv.Ast.Ecase (List.map (fun (g, v) -> (restamp g, restamp v)) bs)
  | Smv.Ast.Eex a -> Smv.Ast.Eex (restamp a)
  | Smv.Ast.Eef a -> Smv.Ast.Eef (restamp a)
  | Smv.Ast.Eeg a -> Smv.Ast.Eeg (restamp a)
  | Smv.Ast.Eax a -> Smv.Ast.Eax (restamp a)
  | Smv.Ast.Eaf a -> Smv.Ast.Eaf (restamp a)
  | Smv.Ast.Eag a -> Smv.Ast.Eag (restamp a)
  | Smv.Ast.Eeu (a, b) -> Smv.Ast.Eeu (restamp a, restamp b)
  | Smv.Ast.Eau (a, b) -> Smv.Ast.Eau (restamp a, restamp b)

and restamp e = { Smv.Ast.desc = strip e; pos = { line = 0; col = 0 } }

(* Random SMV expressions (no next/temporal nesting subtleties: keep
   them to positions where the printer emits valid syntax). *)
let smv_expr_gen =
  let open QCheck2.Gen in
  let ident = oneofl [ "x"; "y"; "n" ] in
  sized @@ fix (fun self depth ->
      if depth <= 0 then
        oneof
          [ map (fun s -> Smv.Ast.Eident s) ident;
            map (fun n -> Smv.Ast.Eint n) (int_bound 9);
            return Smv.Ast.Etrue; return Smv.Ast.Efalse ]
        |> map (fun desc -> { Smv.Ast.desc; pos = { line = 0; col = 0 } })
      else
        let sub = self (depth / 2) in
        let mk2 ctor = map2 (fun a b ->
            { Smv.Ast.desc = ctor a b; pos = { Smv.Ast.line = 0; col = 0 } }) sub sub in
        oneof
          [ mk2 (fun a b -> Smv.Ast.Eand (a, b));
            mk2 (fun a b -> Smv.Ast.Eor (a, b));
            mk2 (fun a b -> Smv.Ast.Eimp (a, b));
            mk2 (fun a b -> Smv.Ast.Eiff (a, b));
            mk2 (fun a b -> Smv.Ast.Eeq (a, b));
            mk2 (fun a b -> Smv.Ast.Elt (a, b));
            mk2 (fun a b -> Smv.Ast.Eadd (a, b));
            mk2 (fun a b -> Smv.Ast.Emod (a, b));
            map (fun a -> { Smv.Ast.desc = Smv.Ast.Enot a; pos = { Smv.Ast.line = 0; col = 0 } }) sub;
            map (fun a -> { Smv.Ast.desc = Smv.Ast.Eag a; pos = { Smv.Ast.line = 0; col = 0 } }) sub;
            mk2 (fun a b -> Smv.Ast.Eeu (a, b)) ])

let prop_smv_pp_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"SMV expression pp/parse roundtrip" ~count:300
       smv_expr_gen
       (fun e ->
         let printed = Smv.Ast.expr_to_string e in
         match Smv.Parser.expression printed with
         | parsed -> strip (restamp parsed) = strip (restamp e)
         | exception (Smv.Parser.Error _ | Smv.Lexer.Error _) ->
           QCheck2.Test.fail_reportf "did not re-parse: %s" printed))

let suite = suite @ [ prop_smv_pp_roundtrip ]
