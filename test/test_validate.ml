(* Unit tests for the independent trace validator (Counterex.Validate)
   and the recursive trace certifier built on it (Robust.Certify).

   The validator is the foundation of --certify and of recovered-
   verdict certification, so every error constructor is driven here
   from a hand-built bad trace; the closing properties check that
   traces the generators actually produce always certify. *)

let prop name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* The deterministic 3-bit counter: state k steps to k+1 mod 8, every
   boolean assignment is a legal state, so bad traces are easy to
   fabricate bit by bit. *)
let counter = lazy (Models.counter 3)

let enc k = [| k land 1 <> 0; k land 2 <> 0; k land 4 <> 0 |]

let err_name = function
  | Counterex.Validate.Empty_trace -> "Empty_trace"
  | Counterex.Validate.Broken_transition _ -> "Broken_transition"
  | Counterex.Validate.Broken_loop -> "Broken_loop"
  | Counterex.Validate.State_outside _ -> "State_outside"
  | Counterex.Validate.Missing_fairness _ -> "Missing_fairness"

let expect_error what expected = function
  | Ok () -> Alcotest.failf "%s: expected %s, trace validated" what expected
  | Error e ->
    Alcotest.(check string) what expected (err_name e)

let test_empty_trace () =
  let m = Lazy.force counter in
  expect_error "path_ok on the empty trace" "Empty_trace"
    (Counterex.Validate.path_ok m (Kripke.Trace.finite []));
  expect_error "eu_witness on the empty trace" "Empty_trace"
    (Counterex.Validate.eu_witness m ~f:m.Kripke.space ~g:m.Kripke.space
       (Kripke.Trace.finite []))

let test_broken_transition () =
  let m = Lazy.force counter in
  (* 0 -> 0 is not a counter step (bit 0 always flips). *)
  expect_error "stuttering step" "Broken_transition"
    (Counterex.Validate.path_ok m (Kripke.Trace.finite [ enc 0; enc 0 ]));
  (* 0 -> 1 -> 5 skips states. *)
  expect_error "skipped state" "Broken_transition"
    (Counterex.Validate.path_ok m
       (Kripke.Trace.finite [ enc 0; enc 1; enc 5 ]))

let test_broken_loop () =
  let m = Lazy.force counter in
  (* 0 -> 1 is a step, but 1 -> 0 is not (1 steps to 2), so the lasso's
     closing edge is broken. *)
  expect_error "unclosed lasso" "Broken_loop"
    (Counterex.Validate.path_ok m
       (Kripke.Trace.lasso ~prefix:[] ~cycle:[ enc 0; enc 1 ]))

let test_state_outside () =
  let m = Lazy.force counter in
  (* A state violating an operand requirement: eu_witness with an
     impossible f. *)
  let zero = Bdd.zero m.Kripke.man in
  expect_error "eu with unsatisfiable f" "State_outside"
    (Counterex.Validate.eu_witness m ~f:zero ~g:m.Kripke.space
       (Kripke.Trace.finite [ enc 0; enc 1 ]));
  (* And via the state space itself: the mutex encodes 3-valued enums
     in 2 bits, so the all-ones assignment is not a legal state. *)
  let mx = (Models.mutex ()).Models.m in
  let bogus = Array.make mx.Kripke.nbits true in
  expect_error "state outside the enum space" "State_outside"
    (Counterex.Validate.path_ok mx (Kripke.Trace.finite [ bogus ]))

let test_missing_fairness () =
  let mx = (Models.mutex ()).Models.m in
  (* The initial state self-loops (both processes may stay idle), but a
     cycle sitting there forever never schedules process 2: fairness
     constraint "mover" is missed. *)
  match Kripke.pick_state mx mx.Kripke.init with
  | None -> Alcotest.fail "mutex has no initial state"
  | Some s0 ->
    expect_error "idle self-loop misses scheduling fairness"
      "Missing_fairness"
      (Counterex.Validate.eg_witness mx ~f:mx.Kripke.space
         (Kripke.Trace.lasso ~prefix:[] ~cycle:[ s0 ]))

let test_valid_traces_pass () =
  let m = Lazy.force counter in
  let ok what = function
    | Ok () -> ()
    | Error e ->
      Alcotest.failf "%s: %a" what Counterex.Validate.pp_error e
  in
  ok "counter path"
    (Counterex.Validate.path_ok m
       (Kripke.Trace.finite [ enc 0; enc 1; enc 2; enc 3 ]));
  (* The full 8-state cycle is a legal lasso. *)
  ok "counter cycle"
    (Counterex.Validate.path_ok m
       (Kripke.Trace.lasso ~prefix:[] ~cycle:(List.init 8 enc)));
  ok "starts at init"
    (Counterex.Validate.starts_at m m.Kripke.init
       (Kripke.Trace.finite [ enc 0 ]))

(* ------------------------------------------------------------------ *)
(* Certification of generator-produced traces.                         *)

let with_formula ?(nfair = 1) () =
  QCheck2.Gen.pair (Models.random_model_gen ~nfair ()) Models.formula_gen

(* Whatever trace the explainer emits for a specification's verdict
   must certify: counterexamples against the formula, witnesses for
   it.  This is exactly the check --certify performs in the CLI. *)
let prop_explained_traces_certify =
  prop "explained traces always certify" ~count:200 (with_formula ())
    (fun (rm, f) ->
      let m = rm.Models.sym in
      let holds = Ctl.Fair.holds m f in
      if holds then
        let rec existential = function
          | Ctl.EX _ | Ctl.EF _ | Ctl.EG _ | Ctl.EU _ -> true
          | Ctl.Not g -> not (existential g)
          | _ -> false
        in
        (not (existential f))
        ||
        match Counterex.Explain.witness m f with
        | None | (exception Counterex.Explain.Cannot_explain _) -> true
        | Some tr -> (
          match Robust.Certify.witness m f tr with
          | Ok () -> true
          | Error msg ->
            QCheck2.Test.fail_reportf "witness failed certification: %s" msg)
      else
        match Counterex.Explain.counterexample m f with
        | None | (exception Counterex.Explain.Cannot_explain _) -> true
        | Some tr -> (
          match Robust.Certify.counterexample m f tr with
          | Ok () -> true
          | Error msg ->
            QCheck2.Test.fail_reportf
              "counterexample failed certification: %s" msg))

(* Certification is not vacuous: a trace for the wrong verdict is
   rejected.  (The counter's EF witness must end at all-ones; a
   truncated one fails.) *)
let test_certify_rejects_bogus () =
  let m = Lazy.force counter in
  let all_ones =
    Ctl.And (Ctl.atom "b0", Ctl.And (Ctl.atom "b1", Ctl.atom "b2"))
  in
  let f = Ctl.EU (Ctl.True, all_ones) in
  (match Counterex.Explain.witness m f with
  | Some tr -> (
    (match Robust.Certify.witness m f tr with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "genuine witness rejected: %s" msg);
    (* Chop the final state off: the EU junction disappears. *)
    let truncated =
      Kripke.Trace.finite
        (List.filteri
           (fun i _ -> i < Kripke.Trace.length tr - 1)
           (Kripke.Trace.states tr))
    in
    match Robust.Certify.witness m f truncated with
    | Ok () -> Alcotest.fail "truncated witness certified"
    | Error _ -> ())
  | None -> Alcotest.fail "no witness for the counter EU")

let suite =
  [
    Alcotest.test_case "Empty_trace" `Quick test_empty_trace;
    Alcotest.test_case "Broken_transition" `Quick test_broken_transition;
    Alcotest.test_case "Broken_loop" `Quick test_broken_loop;
    Alcotest.test_case "State_outside" `Quick test_state_outside;
    Alcotest.test_case "Missing_fairness" `Quick test_missing_fairness;
    Alcotest.test_case "valid traces pass" `Quick test_valid_traces_pass;
    Alcotest.test_case "bogus traces rejected" `Quick
      test_certify_rejects_bogus;
    prop_explained_traces_certify;
  ]
