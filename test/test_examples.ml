(* End-to-end checks of the shipped example models: every SPEC verdict
   is pinned, and failed specifications produce validated
   counterexamples. *)

let load name = Smv.load_file (Filename.concat "../examples/models" name)

let check_verdicts name expected =
  let c = load name in
  let m = c.Smv.Compile.model in
  Alcotest.(check int)
    (name ^ " spec count")
    (List.length expected)
    (List.length c.Smv.Compile.specs);
  List.iter2
    (fun (spec_name, spec) want ->
      Alcotest.(check bool)
        (name ^ ": " ^ spec_name)
        want (Ctl.Fair.holds m spec);
      if not want then begin
        match Counterex.Explain.counterexample m spec with
        | Some tr ->
          Alcotest.(check bool)
            (name ^ ": counterexample validates")
            true
            (Counterex.Validate.path_ok m tr = Ok ()
            && Counterex.Validate.starts_at m m.Kripke.init tr = Ok ())
        | None -> Alcotest.fail "expected counterexample"
      end)
    c.Smv.Compile.specs expected

let test_mutex_model () =
  check_verdicts "mutex.smv" [ true; false; true ]

let test_philosophers_model () =
  check_verdicts "philosophers.smv" [ true; true; true; true; false ]

let test_philosophers_deadlock_trace () =
  (* The hunger-liveness counterexample must end in (or cycle through)
     the all-left deadlock or an equivalent starvation loop where p0
     never eats. *)
  let c = load "philosophers.smv" in
  let m = c.Smv.Compile.model in
  let spec = Smv.Compile.compile_expr c "AG (p0.st = hungry -> AF p0.st = eat)" in
  match Counterex.Explain.counterexample m spec with
  | None -> Alcotest.fail "expected counterexample"
  | Some tr ->
    let eats = Smv.Compile.compile_expr c "p0.st = eat" in
    let eat_set = Ctl.Fair.sat m eats in
    List.iter
      (fun st ->
        Alcotest.(check bool) "p0 never eats on the cycle" false
          (Kripke.eval_in_state m eat_set st))
      tr.Kripke.Trace.cycle

let test_cache_model () =
  check_verdicts "cache.smv" [ true; true; true; true; true; false ]

let test_cache_coherence_invariant () =
  (* Strengthened invariant via an extra spec: an owned line is
     exclusive. *)
  let c = load "cache.smv" in
  let f =
    Smv.Compile.compile_expr c
      "AG (c0 = owned -> c1 = invalid) & AG (c1 = owned -> c0 = invalid)"
  in
  Alcotest.(check bool) "exclusive ownership" true
    (Ctl.Fair.holds c.Smv.Compile.model f)

let suite =
  [
    Alcotest.test_case "mutex.smv verdicts" `Quick test_mutex_model;
    Alcotest.test_case "philosophers.smv verdicts" `Quick test_philosophers_model;
    Alcotest.test_case "philosophers deadlock trace" `Quick test_philosophers_deadlock_trace;
    Alcotest.test_case "cache.smv verdicts" `Quick test_cache_model;
    Alcotest.test_case "cache coherence invariant" `Quick test_cache_coherence_invariant;
  ]

let test_ring_model () = check_verdicts "ring.smv" [ true; true; true; false ]

let suite = suite @ [ Alcotest.test_case "ring.smv verdicts" `Quick test_ring_model ]
