(* End-to-end smoke test for --serve, run via `dune build @serve-smoke`
   (wired into the default `dune runtest`):

   - byte-identity: N concurrent check requests answer with exactly the
     verdict/trace text and exit code of N one-shot CLI runs;
   - warm reuse: the second request for a model reports warm = true and
     reach_reused = true, and allocates almost no new BDD nodes;
   - chaos isolation: a request with an injected fault is answered
     UNDETERMINED, matches the one-shot CLI's --inject output byte for
     byte, and perturbs neither concurrent requests nor later warm
     checks of the same model — and the server survives;
   - protocol robustness: garbage frames get error replies, the
     connection stays usable;
   - drain: SIGINT while a request is in flight still yields that
     request's reply and a clean exit 0;
   - socket mode: the same loop served over a Unix-domain socket.

   The test links the server library for its Frame/Json modules — the
   same code the server uses, which is fine because what is under test
   here is the *process* behaviour, not the codec. *)

module Json = Server.Json
module Frame = Server.Frame

let exe = Filename.concat (Filename.concat ".." "bin") "smv_check.exe"

let model_path name =
  Filename.concat (Filename.concat (Filename.concat ".." "examples") "models")
    name

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let failures = ref 0

let expect what cond =
  if cond then Printf.printf "ok: %s\n%!" what
  else begin
    incr failures;
    Printf.printf "FAIL: %s\n%!" what
  end

(* Run the one-shot CLI, capturing stdout only (stderr untouched: the
   server's output field carries stdout bytes). *)
let run_cli args =
  let cmd = Filename.quote_command exe args in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n
  in
  (code, Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* A server subprocess over stdio pipes *)

type server = {
  pid : int;
  to_server : Unix.file_descr;
  from_server : Unix.file_descr;
}

let spawn_server args =
  let stdin_r, stdin_w = Unix.pipe ~cloexec:false () in
  let stdout_r, stdout_w = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process exe
      (Array.of_list ((exe :: "--serve" :: args)))
      stdin_r stdout_w Unix.stderr
  in
  Unix.close stdin_r;
  Unix.close stdout_w;
  { pid; to_server = stdin_w; from_server = stdout_r }

let send srv obj = Frame.write srv.to_server (Json.to_string obj)

let recv srv =
  match Frame.read srv.from_server with
  | None -> None
  | Some payload -> (
    match Json.of_string payload with
    | Ok v -> Some v
    | Error e -> failwith ("server sent bad JSON: " ^ e))

let wait_exit srv =
  (try Unix.close srv.to_server with Unix.Unix_error _ -> ());
  (try Unix.close srv.from_server with Unix.Unix_error _ -> ());
  match Unix.waitpid [] srv.pid with
  | _, Unix.WEXITED n -> n
  | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) -> 128 + n

let str k v = Option.bind (Json.member k v) Json.to_str
let num k v = Option.bind (Json.member k v) Json.to_num
let boolean k v = Option.bind (Json.member k v) Json.to_bool

let check_req ?(options = []) ~id model_src =
  Json.Obj
    ([
       ("op", Json.Str "check");
       ("id", Json.Str id);
       ("model", Json.Str model_src);
     ]
    @ if options = [] then [] else [ ("options", Json.Obj options) ])

(* Read replies until every id in [ids] has answered (replies arrive
   in completion order, not request order). *)
let collect_replies srv ids =
  let pending = Hashtbl.create 8 in
  List.iter (fun id -> Hashtbl.replace pending id ()) ids;
  let replies = Hashtbl.create 8 in
  let rec go () =
    if Hashtbl.length pending > 0 then
      match recv srv with
      | None -> failwith "server closed the stream with replies pending"
      | Some v ->
        (match str "id" v with
        | Some id when Hashtbl.mem pending id ->
          Hashtbl.remove pending id;
          Hashtbl.replace replies id v
        | _ -> ());
        go ()
  in
  go ();
  fun id -> Hashtbl.find replies id

(* ------------------------------------------------------------------ *)
(* 1. Byte-identity of concurrent requests + warm reuse *)

let test_identity_and_warmth () =
  let models = [ "mutex.smv"; "philosophers.smv"; "ring.smv" ] in
  let oneshot =
    List.map (fun m -> (m, run_cli [ model_path m ])) models
  in
  let srv = spawn_server [ "--jobs"; "2" ] in
  (* Two requests per model: the first is cold, the second warm.  All
     six are in flight together, exercising concurrent scheduling. *)
  let reqs =
    List.concat_map
      (fun m ->
        let src = read_file (model_path m) in
        [
          (m ^ ":cold", check_req ~id:(m ^ ":cold") src
             ~options:[ ("stats", Json.Bool true) ]);
          (m ^ ":warm", check_req ~id:(m ^ ":warm") src
             ~options:[ ("stats", Json.Bool true) ]);
        ])
      models
  in
  List.iter (fun (_, r) -> send srv r) reqs;
  let reply = collect_replies srv (List.map fst reqs) in
  List.iter
    (fun m ->
      let code, out = List.assoc m oneshot in
      List.iter
        (fun phase ->
          let v = reply (m ^ ":" ^ phase) in
          expect
            (Printf.sprintf "%s (%s): status ok" m phase)
            (str "status" v = Some "ok");
          expect
            (Printf.sprintf "%s (%s): output byte-identical to one-shot" m
               phase)
            (str "output" v = Some out);
          expect
            (Printf.sprintf "%s (%s): exit code matches one-shot" m phase)
            (num "exit_code" v = Some (float_of_int code)))
        [ "cold"; "warm" ];
      let cold = reply (m ^ ":cold") and warm = reply (m ^ ":warm") in
      expect (m ^ ": first request is cold") (boolean "warm" cold = Some false);
      expect (m ^ ": second request is warm") (boolean "warm" warm = Some true);
      expect
        (m ^ ": warm request reuses the memoised reachable set")
        (boolean "reach_reused" warm = Some true);
      let allocated v =
        Option.bind (Json.member "stats" v) (fun s ->
            Option.bind (Json.member "total_nodes" s) Json.to_num)
      in
      match (allocated cold, allocated warm) with
      | Some c, Some w ->
        expect
          (Printf.sprintf
             "%s: warm request allocates fewer nodes (%.0f < %.0f)" m w c)
          (w < c)
      | _ -> expect (m ^ ": per-request stats present") false)
    models;
  send srv (Json.Obj [ ("op", Json.Str "shutdown") ]);
  expect "server exits 0 after shutdown op" (wait_exit srv = 0)

(* ------------------------------------------------------------------ *)
(* 2. Chaos isolation *)

let test_chaos_isolation () =
  let mutex = read_file (model_path "mutex.smv") in
  let phil = read_file (model_path "philosophers.smv") in
  let cli_clean_code, cli_clean_out = run_cli [ model_path "mutex.smv" ] in
  let cli_fault_code, cli_fault_out =
    run_cli [ "--inject"; "step:1"; model_path "mutex.smv" ]
  in
  let _, cli_phil_out = run_cli [ model_path "philosophers.smv" ] in
  let srv = spawn_server [ "--jobs"; "2" ] in
  send srv
    (check_req ~id:"faulty" mutex
       ~options:[ ("inject", Json.Str "step:1") ]);
  send srv (check_req ~id:"bystander" phil);
  let reply = collect_replies srv [ "faulty"; "bystander" ] in
  let faulty = reply "faulty" in
  expect "fault request answered, not crashed"
    (str "status" faulty = Some "ok");
  expect "fault request is UNDETERMINED (exit 2)"
    (num "exit_code" faulty = Some (float_of_int cli_fault_code));
  expect "fault request output matches one-shot --inject run"
    (str "output" faulty = Some cli_fault_out);
  expect "concurrent clean request unperturbed"
    (str "output" (reply "bystander") = Some cli_phil_out);
  (* The faulted entry stays clean: a follow-up warm check of the same
     model must match a fault-free one-shot run exactly. *)
  send srv (check_req ~id:"after" mutex);
  let reply2 = collect_replies srv [ "after" ] in
  let after = reply2 "after" in
  expect "warm check after a fault is byte-identical to clean one-shot"
    (str "output" after = Some cli_clean_out
    && num "exit_code" after = Some (float_of_int cli_clean_code));
  expect "and it is warm" (boolean "warm" after = Some true);
  (* Server is still alive and polite. *)
  send srv (Json.Obj [ ("op", Json.Str "ping") ]);
  (match recv srv with
  | Some v -> expect "server still answers ping" (str "op" v = Some "pong")
  | None -> expect "server still answers ping" false);
  send srv (Json.Obj [ ("op", Json.Str "shutdown") ]);
  expect "server exits 0 after chaos" (wait_exit srv = 0)

(* ------------------------------------------------------------------ *)
(* 3. Protocol robustness *)

let test_protocol_errors () =
  let srv = spawn_server [] in
  Frame.write srv.to_server "this is not json";
  (match recv srv with
  | Some v ->
    expect "garbage frame gets an error reply"
      (str "status" v = Some "error")
  | None -> expect "garbage frame gets an error reply" false);
  send srv (Json.Obj [ ("op", Json.Str "launch-missiles") ]);
  (match recv srv with
  | Some v ->
    expect "unknown op gets an error reply" (str "status" v = Some "error")
  | None -> expect "unknown op gets an error reply" false);
  (* A check with an invalid model: an error reply carrying the id. *)
  send srv (check_req ~id:"bad" "MODULE main\nVAR oops");
  (match recv srv with
  | Some v ->
    expect "compile error becomes an error reply with the id"
      (str "status" v = Some "error" && str "id" v = Some "bad")
  | None -> expect "compile error becomes an error reply with the id" false);
  (* Still fully functional afterwards. *)
  send srv (check_req ~id:"ok" (read_file (model_path "mutex.smv")));
  (match recv srv with
  | Some v ->
    expect "connection survives all of the above"
      (str "status" v = Some "ok")
  | None -> expect "connection survives all of the above" false);
  send srv (Json.Obj [ ("op", Json.Str "shutdown") ]);
  expect "server exits 0" (wait_exit srv = 0)

(* ------------------------------------------------------------------ *)
(* 4. SIGINT drains in-flight work *)

let test_sigint_drain () =
  let srv = spawn_server [] in
  send srv (check_req ~id:"inflight" (read_file (model_path "ring.smv")));
  (* Let the worker pick the request up, then interrupt the server. *)
  Unix.sleepf 0.15;
  Unix.kill srv.pid Sys.sigint;
  let rec drain got =
    match recv srv with
    | Some v -> drain (if str "id" v = Some "inflight" then Some v else got)
    | None -> got
    | exception _ -> got
  in
  (match drain None with
  | Some v ->
    expect "in-flight request still answered after SIGINT"
      (str "status" v = Some "ok")
  | None -> expect "in-flight request still answered after SIGINT" false);
  expect "SIGINT drains to exit 0" (wait_exit srv = 0)

(* ------------------------------------------------------------------ *)
(* 5. Socket mode *)

let test_socket_mode () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve_smoke_%d.sock" (Unix.getpid ()))
  in
  let null_in = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let null_out = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process exe
      [| exe; "--serve"; "--socket"; path |]
      null_in null_out Unix.stderr
  in
  Unix.close null_in;
  Unix.close null_out;
  (* Wait for the socket to appear. *)
  let rec connect tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error _ ->
      Unix.close fd;
      if tries = 0 then failwith "socket never came up"
      else begin
        Unix.sleepf 0.1;
        connect (tries - 1)
      end
  in
  let fd = connect 50 in
  let srv = { pid; to_server = fd; from_server = fd } in
  let _, cli_out = run_cli [ model_path "mutex.smv" ] in
  send srv (check_req ~id:"s1" (read_file (model_path "mutex.smv")));
  (match recv srv with
  | Some v ->
    expect "socket check answers with identical output"
      (str "output" v = Some cli_out)
  | None -> expect "socket check answers with identical output" false);
  send srv (Json.Obj [ ("op", Json.Str "shutdown") ]);
  (match recv srv with
  | Some v ->
    expect "socket shutdown acknowledged" (str "op" v = Some "shutdown")
  | None -> expect "socket shutdown acknowledged" false);
  expect "socket server exits 0" (wait_exit srv = 0);
  expect "socket file removed on exit" (not (Sys.file_exists path))

let () =
  (* A stuck server must fail the alias, not hang CI. *)
  ignore (Unix.alarm 300);
  test_identity_and_warmth ();
  test_chaos_isolation ();
  test_protocol_errors ();
  test_sigint_drain ();
  test_socket_mode ();
  if !failures > 0 then begin
    Printf.printf "%d deviation(s) from the --serve contract\n%!" !failures;
    exit 1
  end
