(* Tests for the explicit-state substrate: graph structure, SCCs,
   explicit CTL, minimal witnesses, and the symbolic/explicit bridge. *)

let mask = Explicit.Egraph.mask_of_list

(* A two-component graph: {0,1} cycle -> {2} sink self-loop. *)
let chain () =
  Explicit.Egraph.make ~nstates:3
    ~edges:[ (0, 1); (1, 0); (1, 2); (2, 2) ]
    ~init:[ 0 ] ()

let test_make_validates () =
  Alcotest.check_raises "state out of range"
    (Invalid_argument "Egraph.make: state 5 out of range") (fun () ->
      ignore (Explicit.Egraph.make ~nstates:2 ~edges:[ (0, 5) ] ~init:[] ()));
  Alcotest.check_raises "bad mask"
    (Invalid_argument "Egraph.make: fairness mask of wrong length") (fun () ->
      ignore
        (Explicit.Egraph.make ~nstates:2 ~edges:[] ~init:[]
           ~fairness:[ [| true |] ] ()))

let test_complete () =
  Alcotest.(check bool) "chain complete" true (Explicit.Egraph.complete (chain ()));
  let g = Explicit.Egraph.make ~nstates:2 ~edges:[ (0, 1) ] ~init:[] () in
  Alcotest.(check bool) "sink graph incomplete" false (Explicit.Egraph.complete g)

let test_sccs () =
  let comp = Explicit.Egraph.sccs (chain ()) in
  Alcotest.(check bool) "0 and 1 together" true (comp.(0) = comp.(1));
  Alcotest.(check bool) "2 separate" true (comp.(2) <> comp.(0));
  (* Reverse topological: the sink component has the smaller id. *)
  Alcotest.(check bool) "sink emitted first" true (comp.(2) < comp.(0))

let test_sccs_line () =
  let g = Explicit.Egraph.make ~nstates:3 ~edges:[ (0, 1); (1, 2) ] ~init:[] () in
  let comp = Explicit.Egraph.sccs g in
  Alcotest.(check bool) "all distinct" true
    (comp.(0) <> comp.(1) && comp.(1) <> comp.(2) && comp.(0) <> comp.(2))

let test_bfs_path () =
  let g = chain () in
  (match Explicit.Egraph.bfs_path g ~from:0 ~target:(mask ~nstates:3 [ 2 ]) with
  | Some [ 0; 1; 2 ] -> ()
  | Some p ->
    Alcotest.failf "unexpected path [%s]"
      (String.concat ";" (List.map string_of_int p))
  | None -> Alcotest.fail "no path");
  Alcotest.(check bool) "self target" true
    (Explicit.Egraph.bfs_path g ~from:2 ~target:(mask ~nstates:3 [ 2 ]) = Some [ 2 ]);
  Alcotest.(check bool) "unreachable" true
    (Explicit.Egraph.bfs_path g ~from:2 ~target:(mask ~nstates:3 [ 0 ]) = None)

(* Explicit CTL on the chain. *)
let test_ectl_basics () =
  let g = chain () in
  let p = mask ~nstates:3 [ 2 ] in
  let ex = Explicit.Ectl.ex g p in
  Alcotest.(check (list bool)) "EX {2}" [ false; true; true ] (Array.to_list ex);
  let eu = Explicit.Ectl.eu g (mask ~nstates:3 [ 0; 1 ]) p in
  Alcotest.(check (list bool)) "E[{0,1} U {2}]" [ true; true; true ]
    (Array.to_list eu);
  let eg = Explicit.Ectl.eg g (mask ~nstates:3 [ 0; 1 ]) in
  Alcotest.(check (list bool)) "EG {0,1}" [ true; true; false ]
    (Array.to_list eg)

let test_ectl_fair_eg () =
  (* Fairness {2}: only runs ending in the sink are fair. *)
  let g =
    Explicit.Egraph.make ~nstates:3
      ~edges:[ (0, 1); (1, 0); (1, 2); (2, 2) ]
      ~init:[ 0 ]
      ~fairness:[ mask ~nstates:3 [ 2 ] ]
      ()
  in
  let fair = Explicit.Ectl.fair_states g in
  Alcotest.(check (list bool)) "all fair (can reach sink)" [ true; true; true ]
    (Array.to_list fair);
  (* EG of {0,1} under the constraint is empty: staying in {0,1} never
     visits 2. *)
  let feg = Explicit.Ectl.fair_eg g (mask ~nstates:3 [ 0; 1 ]) in
  Alcotest.(check (list bool)) "fair EG {0,1} empty" [ false; false; false ]
    (Array.to_list feg)

let test_ectl_trivial_scc_not_eg () =
  (* A state with no self loop on a path is not in EG true of itself
     only graphs: line graph has no infinite path. *)
  let g = Explicit.Egraph.make ~nstates:2 ~edges:[ (0, 1) ] ~init:[ 0 ] () in
  let eg = Explicit.Ectl.eg g [| true; true |] in
  Alcotest.(check (list bool)) "no infinite path" [ false; false ]
    (Array.to_list eg)

(* Minimal witness: Hamiltonian-style instance (Theorem 1).  A directed
   4-cycle with a distinct constraint per state: the minimal witness is
   the Hamiltonian cycle, total length 4 (empty prefix). *)
let test_minwit_hamiltonian () =
  let n = 4 in
  let g =
    Explicit.Egraph.make ~nstates:n
      ~edges:(List.init n (fun i -> (i, (i + 1) mod n)))
      ~init:[ 0 ]
      ~fairness:(List.init n (fun i -> mask ~nstates:n [ i ]))
      ()
  in
  match Explicit.Minwit.minimal g ~start:0 with
  | None -> Alcotest.fail "expected witness"
  | Some (prefix, cycle) ->
    Alcotest.(check int) "empty prefix" 0 (List.length prefix);
    Alcotest.(check int) "Hamiltonian cycle" n (List.length cycle)

let test_minwit_with_prefix () =
  (* 0 -> 1 <-> 2, constraint {2}: prefix [0], cycle [1;2] (or [2;1]
     anchored at 2 with prefix [0;1]) — total 3 either way. *)
  let g =
    Explicit.Egraph.make ~nstates:3
      ~edges:[ (0, 1); (1, 2); (2, 1) ]
      ~init:[ 0 ]
      ~fairness:[ mask ~nstates:3 [ 2 ] ]
      ()
  in
  match Explicit.Minwit.minimal_length g ~start:0 with
  | Some 3 -> ()
  | Some k -> Alcotest.failf "expected 3, got %d" k
  | None -> Alcotest.fail "expected witness"

let test_minwit_unreachable () =
  let g =
    Explicit.Egraph.make ~nstates:2 ~edges:[ (0, 0); (1, 1) ] ~init:[ 0 ]
      ~fairness:[ mask ~nstates:2 [ 1 ] ]
      ()
  in
  Alcotest.(check bool) "no fair cycle from 0" true
    (Explicit.Minwit.minimal g ~start:0 = None)

let test_minwit_choice_of_anchor () =
  (* Two cycles: a long near one (through 1..4) and a short far one
     (5,6); constraints force the far one: minimal = prefix to 5 +
     2-cycle. *)
  let edges =
    [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 1); (0, 5); (5, 6); (6, 5) ]
  in
  let g =
    Explicit.Egraph.make ~nstates:7 ~edges ~init:[ 0 ]
      ~fairness:[ mask ~nstates:7 [ 5; 6 ] ]
      ()
  in
  match Explicit.Minwit.minimal_length g ~start:0 with
  | Some 3 -> () (* prefix [0], cycle [5;6] *)
  | Some k -> Alcotest.failf "expected 3, got %d" k
  | None -> Alcotest.fail "expected witness"

(* Bridge roundtrip: explicit -> symbolic -> explicit preserves the
   graph. *)
let prop_bridge_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"bridge roundtrip preserves the graph" ~count:100
       (Models.random_model_gen ~nfair:2 ())
       (fun rm ->
         let g = rm.Models.graph in
         let g', states, _mask_of = Explicit.Bridge.of_kripke rm.Models.sym in
         (* Node i of g encodes to some state; find its index in g'. *)
         let n = g.Explicit.Egraph.nstates in
         if g'.Explicit.Egraph.nstates <> n then false
         else begin
           let to_g' = Array.make n (-1) in
           Array.iteri
             (fun j st ->
               (* which original node does state st encode? *)
               let rec find i =
                 if i >= n then -1
                 else if rm.Models.encode i = st then i
                 else find (i + 1)
               in
               let i = find 0 in
               if i >= 0 then to_g'.(i) <- j)
             states;
           Array.for_all (fun j -> j >= 0) to_g'
           && List.for_all
                (fun i ->
                  let expected =
                    Array.to_list g.Explicit.Egraph.succ.(i)
                    |> List.map (fun w -> to_g'.(w))
                    |> List.sort compare
                  in
                  let actual =
                    Array.to_list g'.Explicit.Egraph.succ.(to_g'.(i))
                    |> List.sort compare
                  in
                  expected = actual)
                (List.init n Fun.id)
         end))

let test_of_kripke_too_large () =
  let m = Models.counter 10 in
  match Explicit.Bridge.of_kripke ~max_states:100 m with
  | _ -> Alcotest.fail "expected Too_large"
  | exception Explicit.Bridge.Too_large _ -> ()

let suite =
  [
    Alcotest.test_case "make validates" `Quick test_make_validates;
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "sccs chain" `Quick test_sccs;
    Alcotest.test_case "sccs line" `Quick test_sccs_line;
    Alcotest.test_case "bfs path" `Quick test_bfs_path;
    Alcotest.test_case "explicit CTL basics" `Quick test_ectl_basics;
    Alcotest.test_case "explicit fair EG" `Quick test_ectl_fair_eg;
    Alcotest.test_case "no infinite path on a line" `Quick test_ectl_trivial_scc_not_eg;
    Alcotest.test_case "minimal witness: Hamiltonian" `Quick test_minwit_hamiltonian;
    Alcotest.test_case "minimal witness: with prefix" `Quick test_minwit_with_prefix;
    Alcotest.test_case "minimal witness: unreachable" `Quick test_minwit_unreachable;
    Alcotest.test_case "minimal witness: anchor choice" `Quick test_minwit_choice_of_anchor;
    prop_bridge_roundtrip;
    Alcotest.test_case "of_kripke size bound" `Quick test_of_kripke_too_large;
  ]

(* ------------------------------------------------------------------ *)
(* Explicit witness construction (the EMC baseline of Section 6).      *)

(* Validate an explicit lasso against the graph. *)
let explicit_lasso_ok (g : Explicit.Egraph.t) ~f (prefix, cycle) =
  let has_edge a b = Array.exists (fun w -> w = b) g.Explicit.Egraph.succ.(a) in
  let rec path_ok = function
    | a :: (b :: _ as rest) -> has_edge a b && path_ok rest
    | [ _ ] | [] -> true
  in
  let states = prefix @ cycle in
  cycle <> []
  && path_ok states
  && has_edge (List.nth cycle (List.length cycle - 1)) (List.hd cycle)
  && List.for_all (fun v -> f.(v)) states
  && List.for_all
       (fun h -> List.exists (fun v -> h.(v)) cycle)
       g.Explicit.Egraph.fairness

let prop_explicit_fair_eg_witness =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"explicit fair EG witnesses validate" ~count:200
       (Models.random_model_gen ~nfair:2 ())
       (fun rm ->
         let g = rm.Models.graph in
         let n = g.Explicit.Egraph.nstates in
         let f = rm.Models.atom_mask "p" in
         let feg = Explicit.Ectl.fair_eg g f in
         List.for_all
           (fun v ->
             match Explicit.Ewitness.fair_eg g ~f ~start:v with
             | Some w ->
               feg.(v)
               && explicit_lasso_ok g ~f w
               && (match w with
                  | [], c :: _ -> c = v
                  | p :: _, _ -> p = v
                  | [], [] -> false)
             | None -> not feg.(v))
           (List.init n Fun.id)))

let prop_explicit_eu_witness =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"explicit EU witnesses validate and are shortest"
       ~count:200
       (Models.random_model_gen ())
       (fun rm ->
         let g = rm.Models.graph in
         let n = g.Explicit.Egraph.nstates in
         let f = rm.Models.atom_mask "p" and tgt = rm.Models.atom_mask "q" in
         let eu_set = Explicit.Ectl.eu g f tgt in
         List.for_all
           (fun v ->
             match Explicit.Ewitness.eu g ~f ~g:tgt ~start:v with
             | Some path ->
               eu_set.(v)
               && List.hd path = v
               && tgt.(List.nth path (List.length path - 1))
               && List.for_all
                    (fun s -> f.(s))
                    (List.filteri
                       (fun i _ -> i < List.length path - 1)
                       path)
             | None -> not eu_set.(v))
           (List.init n Fun.id)))

(* The explicit and symbolic witness engines agree on existence for
   every state. *)
let prop_witness_existence_agrees =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"explicit and symbolic fair-EG witnesses agree on existence"
       ~count:100
       (Models.random_model_gen ~max_states:6 ~nfair:2 ())
       (fun rm ->
         let g = rm.Models.graph in
         let m = rm.Models.sym in
         let n = g.Explicit.Egraph.nstates in
         let top = Array.make n true in
         List.for_all
           (fun v ->
             let explicit =
               Explicit.Ewitness.fair_eg g ~f:top ~start:v <> None
             in
             let symbolic =
               match
                 Counterex.Witness.eg m ~f:m.Kripke.space
                   ~start:(rm.Models.encode v)
               with
               | _ -> true
               | exception Counterex.Witness.No_witness _ -> false
             in
             explicit = symbolic)
           (List.init n Fun.id)))

let test_ewitness_ex () =
  let g = chain () in
  (match Explicit.Ewitness.ex g ~f:(mask ~nstates:3 [ 2 ]) ~start:1 with
  | Some [ 1; 2 ] -> ()
  | Some _ | None -> Alcotest.fail "expected [1;2]");
  Alcotest.(check bool) "no EX witness" true
    (Explicit.Ewitness.ex g ~f:(mask ~nstates:3 [ 0 ]) ~start:2 = None)

let test_ewitness_self_loop_cycle () =
  (* Fair SCC that is a single self-looping state. *)
  let g =
    Explicit.Egraph.make ~nstates:2 ~edges:[ (0, 1); (1, 1) ] ~init:[ 0 ]
      ~fairness:[ mask ~nstates:2 [ 1 ] ]
      ()
  in
  match Explicit.Ewitness.fair_eg g ~f:[| true; true |] ~start:0 with
  | Some ([ 0 ], [ 1 ]) -> ()
  | Some (p, c) ->
    Alcotest.failf "unexpected witness ([%s],[%s])"
      (String.concat ";" (List.map string_of_int p))
      (String.concat ";" (List.map string_of_int c))
  | None -> Alcotest.fail "expected witness"

let ewitness_suite =
  [
    Alcotest.test_case "ewitness EX" `Quick test_ewitness_ex;
    Alcotest.test_case "ewitness self-loop cycle" `Quick test_ewitness_self_loop_cycle;
    prop_explicit_fair_eg_witness;
    prop_explicit_eu_witness;
    prop_witness_existence_agrees;
  ]

let suite = suite @ ewitness_suite
