(* Smoke test for the recovery CLI contract, run via
   `dune build @chaos-smoke`: deterministic fault injection
   (--inject) against real models, asserting that

     - recovered runs reproduce the fault-free verdicts (exit code and
       verdict lines), with the recovery annotated;
     - a budget-starved spec that flat-fails on the plain path is
       decided (and its trace certified) under --retries;
     - a crashed worker domain's spec is re-checked on the main domain;
     - injected faults never escape as crashes (exit codes stay within
       the documented 0..3 contract).

   Any deviation fails the alias. *)

let exe = Filename.concat (Filename.concat ".." "bin") "smv_check.exe"

let run args =
  let cmd = Filename.quote_command exe args ^ " 2>&1" in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n
  in
  (code, Buffer.contents buf)

let failures = ref 0

let expect what cond =
  if cond then Printf.printf "ok: %s\n%!" what
  else begin
    incr failures;
    Printf.printf "FAIL: %s\n%!" what
  end

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  nl = 0 || go 0

(* Just the verdict lines, recovery annotations stripped: the
   fault-free/faulted comparison is on verdicts, not on how they were
   obtained. *)
let strip_recovery line =
  let marker = " (recovered:" in
  let ml = String.length marker and n = String.length line in
  let rec find i =
    if i + ml > n then None
    else if String.sub line i ml = marker then Some i
    else find (i + 1)
  in
  match find 0 with Some i -> String.sub line 0 i | None -> line

let verdicts out =
  String.split_on_char '\n' out
  |> List.filter (contains ~needle:"-- specification")
  |> List.map strip_recovery

let model name =
  Filename.concat (Filename.concat (Filename.concat ".." "examples") "models")
    name

let () =
  (* 1. The acceptance scenario: counter12 flat-fails under a tiny step
     budget on the plain path... *)
  let code, out = run [ model "counter12.smv"; "--step-limit"; "3"; "-q" ] in
  expect "starved counter12 exits 2 without retries" (code = 2);
  expect "starved counter12 is UNDETERMINED without retries"
    (contains ~needle:"UNDETERMINED (step budget" out);
  (* ... and completes, correctly and certified, with --retries 2. *)
  let code, out =
    run [ model "counter12.smv"; "--step-limit"; "3"; "--retries"; "2"; "-q" ]
  in
  expect "recovered counter12 exits 0" (code = 0);
  expect "recovered counter12 decides the starved spec true"
    (contains ~needle:"b11)) is true" out);
  expect "recovery is annotated"
    (contains ~needle:"(recovered: attempt" out);
  expect "recovered trace is certified"
    (contains ~needle:"certificate: trace independently validated" out);
  expect "nothing left undetermined" (not (contains ~needle:"UNDETERMINED" out));

  (* 2. Verdict equality under injection: every site, verdicts match
     the fault-free run on the mutex workload. *)
  let _, clean = run [ model "mutex.smv"; "-q" ] in
  let clean_verdicts = verdicts clean in
  expect "fault-free mutex run has 3 verdicts"
    (List.length clean_verdicts = 3);
  List.iter
    (fun site ->
      let inject = site ^ ":20" in
      let code, out =
        run [ model "mutex.smv"; "--inject"; inject; "--retries"; "2"; "-q" ]
      in
      expect
        (Printf.sprintf "inject %s: exit within contract" inject)
        (code >= 0 && code <= 3);
      expect
        (Printf.sprintf "inject %s: no crash diagnostic" inject)
        (not (contains ~needle:"internal error" out));
      expect
        (Printf.sprintf "inject %s: verdicts equal fault-free run" inject)
        (verdicts out = clean_verdicts))
    [ "mk"; "probe"; "gc" ];

  (* The step site needs step-governed fixpoints to tick; the deadline
     it synthesizes must be recovered like a real breach. *)
  let code, out =
    run
      [ model "mutex.smv"; "--inject"; "step:2"; "--step-limit"; "10000";
        "--retries"; "2"; "-q" ]
  in
  expect "inject step: exit within contract" (code >= 0 && code <= 3);
  expect "inject step: verdicts equal fault-free run"
    (verdicts out = clean_verdicts);

  (* 3. Without a ladder the injected fault is contained: UNDETERMINED
     verdicts, exit 2, no crash. *)
  let code, out = run [ model "mutex.smv"; "--inject"; "mk:20"; "-q" ] in
  expect "unladdered fault exits 2" (code = 2);
  expect "unladdered fault reported as UNDETERMINED"
    (contains ~needle:"UNDETERMINED (internal error: Out of memory)" out);

  (* 4. Worker-crash recovery: with --jobs 2, kill the domain that
     picks up the first task; with retries its spec is re-checked on
     the main domain and the run's verdicts are unchanged. *)
  let code, out =
    run
      [ model "mutex.smv"; "--jobs"; "2"; "--inject"; "worker:1";
        "--retries"; "1"; "-q" ]
  in
  expect "worker crash recovered: exit matches fault-free" (code = 1);
  expect "worker crash recovered: verdicts equal fault-free run"
    (verdicts out = clean_verdicts);
  expect "worker crash recovery annotated"
    (contains ~needle:"(recovered: attempt 2 via main-domain)" out);
  let code, out =
    run [ model "mutex.smv"; "--jobs"; "2"; "--inject"; "worker:1"; "-q" ]
  in
  expect "worker crash without retries exits 2" (code = 2);
  expect "worker crash without retries is UNDETERMINED"
    (contains ~needle:"UNDETERMINED (worker failed" out);

  (* 5. The counter26 workload (E7's governed star): an injected deep
     fault plus recovery must still respect the budget contract. *)
  let code, out =
    run
      [ model "counter26.smv"; "--step-limit"; "3"; "--inject"; "mk:1000";
        "--retries"; "2"; "-q" ]
  in
  expect "counter26 chaos run exits 2 (budget still wins)" (code = 2);
  (* The ladder may end on the step breach or on the injected fault
     itself (its countdown spans attempts) — either way the spec is
     UNDETERMINED, never a crash. *)
  expect "counter26 chaos run stays governed"
    (contains ~needle:"UNDETERMINED (step budget" out
    || contains ~needle:"UNDETERMINED (internal error: Out of memory" out);
  expect "counter26 trivial spec still decided"
    (contains ~needle:"(AG (b0 | !b0)) is true" out);

  if !failures > 0 then begin
    Printf.printf "%d chaos-smoke failure(s)\n%!" !failures;
    exit 1
  end;
  print_endline "chaos-smoke: all checks passed"
