(* End-to-end contract for crash-only serving, run via
   `dune build @supervise-smoke` (wired into the default runtest):

   - supervised crash/restart: a server under --supervise with a
     --state-dir and an injected child-crash:K fault loses its child
     mid-flood; the supervisor restarts it, the replacement rehydrates
     the snapshotted model, and the first post-restart check on it is
     warm — reach_reused, and 0 new BDD nodes on an unchanged request;
   - byte-identity across the crash: every reply, before and after the
     kill, matches the one-shot CLI byte for byte (the never-crashed
     oracle);
   - counters: the post-restart status reply reports the restore and
     the restart;
   - graceful end: shutdown drains through the supervisor to exit 0
     and removes the socket;
   - corrupt snapshots: a truncated file and a bit-flipped file in the
     state dir are quarantined (renamed, counted) while the server
     falls back to a cold compile and still exits 0;
   - circuit breaker: a deterministic crash loop (child-crash:1) trips
     the breaker and the supervisor gives up with exit 3. *)

module Json = Server.Json
module Frame = Server.Frame

let exe = Filename.concat (Filename.concat ".." "bin") "smv_check.exe"

let model_path name =
  Filename.concat (Filename.concat (Filename.concat ".." "examples") "models")
    name

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let failures = ref 0

let expect what cond =
  if cond then Printf.printf "ok: %s\n%!" what
  else begin
    incr failures;
    Printf.printf "FAIL: %s\n%!" what
  end

let run_cli args =
  let cmd = Filename.quote_command exe args in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n
  in
  (code, Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Spawning and talking to a server over its Unix socket *)

let fresh_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "supervise_smoke_%s_%d" tag (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let rm_rf dir =
  (match Sys.readdir dir with
  | files ->
    Array.iter
      (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
      files
  | exception Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

(* Tight supervision windows so a smoke run never waits out production
   backoffs; individual tests override further via [extra_env]. *)
let spawn ?(env = []) args =
  let null_in = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let null_out = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let environment =
    Array.append (Unix.environment ())
      (Array.of_list (List.map (fun (k, v) -> k ^ "=" ^ v) env))
  in
  let pid =
    Unix.create_process_env exe
      (Array.of_list (exe :: "--serve" :: args))
      environment null_in null_out Unix.stderr
  in
  Unix.close null_in;
  Unix.close null_out;
  pid

let connect path =
  let rec go tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error _ ->
      Unix.close fd;
      if tries = 0 then failwith "socket never came up"
      else begin
        Unix.sleepf 0.1;
        go (tries - 1)
      end
  in
  go 100

let send fd obj = Frame.write fd (Json.to_string obj)

let recv fd =
  match Frame.read fd with
  | None -> None
  | Some payload -> (
    match Json.of_string payload with
    | Ok v -> Some v
    | Error e -> failwith ("server sent bad JSON: " ^ e))

(* A recv that treats a killed peer (reset mid-frame) as end of
   stream: exactly what a client sees when the child is SIGKILLed. *)
let recv_or_eof fd =
  match recv fd with
  | v -> v
  | exception (Frame.Closed | Unix.Unix_error _) -> None

let str k v = Option.bind (Json.member k v) Json.to_str
let num k v = Option.bind (Json.member k v) Json.to_num
let boolean k v = Option.bind (Json.member k v) Json.to_bool

let counter k v =
  Option.bind (Json.member "counters" v) (fun c ->
      Option.bind (Json.member k c) Json.to_num)

let check_req ?(options = []) ~id model_src =
  Json.Obj
    ([
       ("op", Json.Str "check");
       ("id", Json.Str id);
       ("model", Json.Str model_src);
     ]
    @ if options = [] then [] else [ ("options", Json.Obj options) ])

let wait_exit pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED n -> n
  | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) -> 128 + n

let warm_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n -> Filename.check_suffix n ".warm")

let rec await_warm_file dir tries =
  if warm_files dir <> [] then true
  else if tries = 0 then false
  else begin
    Unix.sleepf 0.25;
    await_warm_file dir (tries - 1)
  end

(* ------------------------------------------------------------------ *)
(* 1. Crash, restart, rehydrate, byte-identical and warm *)

let test_crash_restart_rehydrate () =
  let state = fresh_dir "state" in
  let sock = Filename.concat (fresh_dir "sock") "smv.sock" in
  let mutex = read_file (model_path "mutex.smv") in
  let ring = read_file (model_path "ring.smv") in
  let cli_mutex_code, cli_mutex_out = run_cli [ model_path "mutex.smv" ] in
  let _, cli_ring_out = run_cli [ model_path "ring.smv" ] in
  (* The third check reply kills the child: one warming request, then
     a two-request flood whose second reply is the last thing the
     child ever sends. *)
  let pid =
    spawn
      ~env:
        [
          ("SMV_SUPERVISE_BACKOFF0_MS", "20");
          ("SMV_SUPERVISE_BACKOFF_MAX_MS", "100");
          ("SMV_SUPERVISE_MAX_CRASHES", "50");
        ]
      [
        "--socket"; sock; "--supervise"; "--state-dir"; state;
        "--inject"; "child-crash:3";
      ]
  in
  let fd = connect sock in
  let stats_on = [ ("stats", Json.Bool true) ] in
  send fd (check_req ~id:"warmup" mutex ~options:stats_on);
  (match recv_or_eof fd with
  | Some v ->
    expect "pre-crash check answers ok" (str "status" v = Some "ok");
    expect "pre-crash output matches one-shot CLI"
      (str "output" v = Some cli_mutex_out)
  | None -> expect "pre-crash check answers ok" false);
  (* The idle-pressure persistence tick must write the warm file
     before we let the child die. *)
  expect "snapshot written on the idle watchdog tick"
    (await_warm_file state 60);
  (* Flood: two requests in flight together; the child crashes right
     after the last reply, so both still answer. *)
  send fd (check_req ~id:"flood1" mutex ~options:stats_on);
  send fd (check_req ~id:"flood2" ring ~options:stats_on);
  let flood_replies =
    List.filter_map (fun _ -> recv_or_eof fd) [ (); () ]
  in
  expect "both flood replies delivered before the crash"
    (List.length flood_replies = 2);
  List.iter
    (fun v ->
      match str "id" v with
      | Some "flood1" ->
        expect "flood mutex reply byte-identical"
          (str "output" v = Some cli_mutex_out)
      | Some "flood2" ->
        expect "flood ring reply byte-identical"
          (str "output" v = Some cli_ring_out)
      | _ -> expect "flood reply has a known id" false)
    flood_replies;
  (* The child is now dead (SIGKILL from the fault site); this
     connection is gone with it. *)
  expect "crashed child tears the connection" (recv_or_eof fd = None);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (* The parent still holds the listening socket: reconnect and land
     on the restarted child.  The first check on the snapshotted model
     must be warm from rehydration — reused reachable set, zero new
     nodes — and byte-identical to the never-crashed run. *)
  let fd2 = connect sock in
  send fd2 (check_req ~id:"after" mutex ~options:stats_on);
  (match recv_or_eof fd2 with
  | Some v ->
    expect "post-restart check answers ok" (str "status" v = Some "ok");
    expect "post-restart check is warm from rehydration"
      (boolean "warm" v = Some true);
    expect "post-restart check reuses the reachable set"
      (boolean "reach_reused" v = Some true);
    expect "post-restart output byte-identical to never-crashed run"
      (str "output" v = Some cli_mutex_out);
    expect "post-restart exit code matches"
      (num "exit_code" v = Some (float_of_int cli_mutex_code));
    (match
       Option.bind (Json.member "stats" v) (fun s ->
           Option.bind (Json.member "total_nodes" s) Json.to_num)
     with
    | Some n ->
      expect
        (Printf.sprintf "0 new nodes on the unchanged request (got %.0f)" n)
        (n = 0.)
    | None -> expect "post-restart stats present" false)
  | None -> expect "post-restart check answers ok" false);
  send fd2 (Json.Obj [ ("op", Json.Str "status") ]);
  (match recv_or_eof fd2 with
  | Some v ->
    expect "status: restart counted" (counter "restarts" v = Some 1.);
    (* The mutex snapshot is certainly there; ring's may or may not
       have made it to a tick before the kill. *)
    expect "status: rehydrated entry counted"
      (match counter "restores" v with Some n -> n >= 1. | None -> false);
    expect "status: nothing quarantined" (counter "quarantines" v = Some 0.)
  | None -> expect "status reply after restart" false);
  send fd2 (Json.Obj [ ("op", Json.Str "shutdown") ]);
  ignore (recv_or_eof fd2);
  (try Unix.close fd2 with Unix.Unix_error _ -> ());
  expect "graceful shutdown drains through the supervisor to exit 0"
    (wait_exit pid = 0);
  expect "socket removed after supervised shutdown"
    (not (Sys.file_exists sock));
  rm_rf state;
  rm_rf (Filename.dirname sock)

(* ------------------------------------------------------------------ *)
(* 2. Corrupt snapshots: quarantined, never fatal *)

let flip_byte path i =
  let s = read_file path in
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  let oc = open_out_bin path in
  output_string oc (Bytes.to_string b);
  close_out oc

let truncate_file path n =
  let s = read_file path in
  let oc = open_out_bin path in
  output_string oc (String.sub s 0 (min n (String.length s)));
  close_out oc

let test_corrupt_snapshots_quarantined () =
  let state = fresh_dir "corrupt" in
  let sock = Filename.concat (fresh_dir "csock") "smv.sock" in
  let mutex = read_file (model_path "mutex.smv") in
  let ring = read_file (model_path "ring.smv") in
  let _, cli_mutex_out = run_cli [ model_path "mutex.smv" ] in
  (* A clean run first: graceful shutdown flushes both models to the
     state dir. *)
  let pid = spawn [ "--socket"; sock; "--state-dir"; state ] in
  let fd = connect sock in
  send fd (check_req ~id:"a" mutex);
  ignore (recv fd);
  send fd (check_req ~id:"b" ring);
  ignore (recv fd);
  send fd (Json.Obj [ ("op", Json.Str "shutdown") ]);
  ignore (recv_or_eof fd);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  expect "seed server exits 0" (wait_exit pid = 0);
  (match warm_files state with
  | [ a; b ] ->
    (* One truncated mid-payload, one with a flipped checksum byte
       (bytes 8..23 are the digest). *)
    truncate_file (Filename.concat state a) 40;
    flip_byte (Filename.concat state b) 12
  | files ->
    expect
      (Printf.sprintf "graceful shutdown flushed 2 warm files (got %d)"
         (List.length files))
      false);
  (* Restart over the sabotaged state dir: both files must be
     quarantined, the server must come up cold and still serve. *)
  let pid2 = spawn [ "--socket"; sock; "--state-dir"; state ] in
  let fd2 = connect sock in
  send fd2 (Json.Obj [ ("op", Json.Str "status") ]);
  (match recv_or_eof fd2 with
  | Some v ->
    expect "both corrupt files quarantined"
      (counter "quarantines" v = Some 2.);
    expect "nothing restored from corrupt files"
      (counter "restores" v = Some 0.)
  | None -> expect "status over sabotaged state dir" false);
  let quarantined =
    Sys.readdir state |> Array.to_list
    |> List.filter (fun n -> Filename.check_suffix n ".quarantined")
  in
  expect "corrupt files renamed *.quarantined"
    (List.length quarantined = 2);
  expect "no warm files left behind" (warm_files state = []);
  send fd2 (check_req ~id:"cold" mutex);
  (match recv_or_eof fd2 with
  | Some v ->
    expect "cold fallback still answers" (str "status" v = Some "ok");
    expect "cold fallback is not warm" (boolean "warm" v = Some false);
    expect "cold fallback output byte-identical"
      (str "output" v = Some cli_mutex_out)
  | None -> expect "cold fallback still answers" false);
  send fd2 (Json.Obj [ ("op", Json.Str "shutdown") ]);
  ignore (recv_or_eof fd2);
  (try Unix.close fd2 with Unix.Unix_error _ -> ());
  expect "server over sabotaged state dir still exits 0"
    (wait_exit pid2 = 0);
  rm_rf state;
  rm_rf (Filename.dirname sock)

(* ------------------------------------------------------------------ *)
(* 3. Circuit breaker: a deterministic crash loop ends in exit 3 *)

let test_circuit_breaker () =
  let sock = Filename.concat (fresh_dir "bsock") "smv.sock" in
  let mutex = read_file (model_path "mutex.smv") in
  let pid =
    spawn
      ~env:
        [
          ("SMV_SUPERVISE_BACKOFF0_MS", "10");
          ("SMV_SUPERVISE_BACKOFF_MAX_MS", "20");
          ("SMV_SUPERVISE_MAX_CRASHES", "2");
        ]
      [ "--socket"; sock; "--supervise"; "--inject"; "child-crash:1" ]
  in
  (* Every generation dies after its first reply: two crashes trip the
     breaker.  Each iteration needs a fresh connection — the old one
     died with its child. *)
  let crash_once () =
    let fd = connect sock in
    send fd (check_req ~id:"boom" mutex);
    ignore (recv_or_eof fd);
    ignore (recv_or_eof fd);
    (* the teardown *)
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  crash_once ();
  crash_once ();
  expect "crash loop trips the circuit breaker: exit 3" (wait_exit pid = 3);
  expect "breaker cleanup removes the socket" (not (Sys.file_exists sock));
  rm_rf (Filename.dirname sock)

let () =
  (* A stuck supervisor must fail the alias, not hang CI. *)
  ignore (Unix.alarm 300);
  test_crash_restart_rehydrate ();
  test_corrupt_snapshots_quarantined ();
  test_circuit_breaker ();
  if !failures > 0 then begin
    Printf.printf "%d deviation(s) from the crash-only contract\n%!"
      !failures;
    exit 1
  end
