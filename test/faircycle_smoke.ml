(* Smoke test for the --fair-engine contract, run via
   `dune build @fair-smoke`: the lock-step fair-cycle engine must be a
   pure performance choice — on every committed example model a
   `--fair-engine lockstep` run must be byte-identical (stdout+stderr
   and exit code) to a `--fair-engine el` run, which in turn must be
   byte-identical to a run with no flag at all (the default is the
   classical Emerson-Lei engine, so PR-over-PR default output cannot
   drift).  Every run passes --certify, so each lock-step witness and
   counterexample is also independently re-validated before it counts.

   The fairness-heavy models (philosophers, ring) exercise the
   lock-step SCC decomposition proper; the fairness-free ones cover
   the degenerate single-[true]-constraint path; counter26 runs under
   a step budget so the governed UNDETERMINED path is engine-stable
   too.  A final check pins the --stats seam: the lock-step counters
   line appears exactly when the lock-step engine was selected. *)

let exe = Filename.concat (Filename.concat ".." "bin") "smv_check.exe"

let run args =
  let cmd = Filename.quote_command exe args ^ " 2>&1" in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n
  in
  (code, Buffer.contents buf)

let failures = ref 0

let expect what cond =
  if cond then Printf.printf "ok: %s\n%!" what
  else begin
    incr failures;
    Printf.printf "FAIL: %s\n%!" what
  end

let model name =
  Filename.concat (Filename.concat (Filename.concat ".." "examples") "models")
    name

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Every unbudgeted model must be byte-identical across engines.
   counter26 runs under a step budget, where the two engines
   legitimately spend their per-spec steps on different fixpoints —
   there only the exit code and the governed-breach shape are
   engine-stable, not the UNDETERMINED fine print. *)
let workloads =
  [
    ("arbiter", `Identical, [ model "arbiter.smv" ]);
    ("cache", `Identical, [ model "cache.smv" ]);
    ("counter12", `Identical, [ model "counter12.smv" ]);
    ("counter26", `Governed, [ model "counter26.smv"; "--step-limit"; "64" ]);
    ("mutex", `Identical, [ model "mutex.smv" ]);
    ("philosophers", `Identical, [ model "philosophers.smv" ]);
    ("ring", `Identical, [ model "ring.smv" ]);
  ]

let check (name, gate, args) =
  let args = args @ [ "--certify" ] in
  let def_code, def_out = run args in
  let el_code, el_out = run (args @ [ "--fair-engine"; "el" ]) in
  let ls_code, ls_out = run (args @ [ "--fair-engine"; "lockstep" ]) in
  expect (name ^ ": default run is the el run")
    (def_code = el_code && def_out = el_out);
  expect (name ^ ": exit codes agree (el vs lockstep)") (el_code = ls_code);
  (match gate with
  | `Identical ->
    expect (name ^ ": output byte-identical (el vs lockstep)")
      (el_out = ls_out);
    if el_out <> ls_out then
      Printf.printf "--- el ---\n%s\n--- lockstep ---\n%s\n%!" el_out ls_out
  | `Governed ->
    expect (name ^ ": breach reported under both engines")
      (contains_substring el_out "UNDETERMINED"
      && contains_substring ls_out "UNDETERMINED"));
  expect (name ^ ": no certification failure")
    (not (contains_substring ls_out "CERTIFICATION FAILED"))

let () =
  List.iter check workloads;
  (* The --stats seam: the lock-step counters line is printed exactly
     when the lock-step engine ran, so default --stats output stays
     byte-stable across PRs. *)
  let _, ls_stats =
    run [ model "philosophers.smv"; "--stats"; "--fair-engine"; "lockstep" ]
  in
  let _, el_stats = run [ model "philosophers.smv"; "--stats" ] in
  expect "stats: lock-step line present under --fair-engine lockstep"
    (contains_substring ls_stats "lock-step:");
  expect "stats: no lock-step line in a default run"
    (not (contains_substring el_stats "lock-step:"));
  if !failures > 0 then begin
    Printf.printf "%d deviation(s) from the --fair-engine contract\n%!"
      !failures;
    exit 1
  end
