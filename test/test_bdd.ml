(* Unit and property tests for the ROBDD package.

   Property tests compare every BDD operation against a brute-force
   truth-table evaluation of randomly generated boolean expressions over
   a small variable universe, which exercises canonicity (equivalent
   expressions must produce physically equal diagrams). *)

let man = Bdd.create ()

(* -------------------------------------------------------------------- *)
(* Random boolean expressions and their two interpretations.            *)

type expr =
  | Evar of int
  | Enot of expr
  | Eand of expr * expr
  | Eor of expr * expr
  | Exor of expr * expr
  | Etrue
  | Efalse

let nvars = 5

let expr_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [ map (fun v -> Evar v) (int_bound (nvars - 1));
            return Etrue; return Efalse ]
      else
        let sub = self (n / 2) in
        oneof
          [ map (fun v -> Evar v) (int_bound (nvars - 1));
            map (fun e -> Enot e) (self (n - 1));
            map2 (fun a b -> Eand (a, b)) sub sub;
            map2 (fun a b -> Eor (a, b)) sub sub;
            map2 (fun a b -> Exor (a, b)) sub sub ])

let rec eval_expr env = function
  | Evar v -> env v
  | Enot e -> not (eval_expr env e)
  | Eand (a, b) -> eval_expr env a && eval_expr env b
  | Eor (a, b) -> eval_expr env a || eval_expr env b
  | Exor (a, b) -> eval_expr env a <> eval_expr env b
  | Etrue -> true
  | Efalse -> false

let rec bdd_of_expr = function
  | Evar v -> Bdd.var man v
  | Enot e -> Bdd.not_ man (bdd_of_expr e)
  | Eand (a, b) -> Bdd.and_ man (bdd_of_expr a) (bdd_of_expr b)
  | Eor (a, b) -> Bdd.or_ man (bdd_of_expr a) (bdd_of_expr b)
  | Exor (a, b) -> Bdd.xor man (bdd_of_expr a) (bdd_of_expr b)
  | Etrue -> Bdd.one man
  | Efalse -> Bdd.zero man

let env_of_bits bits v = bits land (1 lsl v) <> 0

(* Check two boolean functions agree on the whole universe. *)
let agree f g =
  let ok = ref true in
  for bits = 0 to (1 lsl nvars) - 1 do
    if f (env_of_bits bits) <> g (env_of_bits bits) then ok := false
  done;
  !ok

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:300 gen f)

(* -------------------------------------------------------------------- *)
(* Unit tests.                                                          *)

let test_constants () =
  Alcotest.(check bool) "zero is zero" true (Bdd.is_zero (Bdd.zero man));
  Alcotest.(check bool) "one is one" true (Bdd.is_one (Bdd.one man));
  Alcotest.(check bool) "zero <> one" false
    (Bdd.equal (Bdd.zero man) (Bdd.one man));
  Alcotest.(check int) "id zero" 0 (Bdd.id (Bdd.zero man));
  Alcotest.(check int) "id one" 1 (Bdd.id (Bdd.one man))

let test_var_eval () =
  let x = Bdd.var man 3 in
  Alcotest.(check bool) "x under x=true" true (Bdd.eval man x (fun v -> v = 3));
  Alcotest.(check bool) "x under x=false" false (Bdd.eval man x (fun _ -> false));
  let nx = Bdd.nvar man 3 in
  Alcotest.(check bool) "~x under x=false" true (Bdd.eval man nx (fun _ -> false))

let test_var_negative () =
  Alcotest.check_raises "negative var" (Invalid_argument "Bdd.var: negative variable")
    (fun () -> ignore (Bdd.var man (-1)))

let test_hash_consing () =
  let a = Bdd.and_ man (Bdd.var man 0) (Bdd.var man 1) in
  let b = Bdd.not_ man (Bdd.or_ man (Bdd.nvar man 0) (Bdd.nvar man 1)) in
  Alcotest.(check bool) "de morgan gives identical node" true (Bdd.equal a b);
  Alcotest.(check int) "same id" (Bdd.id a) (Bdd.id b)

let test_topvar_structure () =
  let f = Bdd.and_ man (Bdd.var man 2) (Bdd.var man 5) in
  Alcotest.(check int) "root is smallest var" 2 (Bdd.topvar man f);
  Alcotest.(check bool) "low is zero" true (Bdd.is_zero (Bdd.low man f));
  Alcotest.(check int) "high root" 5 (Bdd.topvar man (Bdd.high man f))

let test_topvar_constant () =
  Alcotest.check_raises "topvar of constant"
    (Invalid_argument "Bdd.topvar: constant") (fun () ->
      ignore (Bdd.topvar man (Bdd.one man)))

let test_cube () =
  let c = Bdd.cube man [ 4; 1; 1; 2 ] in
  Alcotest.(check bool) "cube true when all set" true
    (Bdd.eval man c (fun v -> List.mem v [ 1; 2; 4 ]));
  Alcotest.(check bool) "cube false when one unset" false
    (Bdd.eval man c (fun v -> List.mem v [ 1; 4 ]));
  Alcotest.(check (list int)) "support" [ 1; 2; 4 ] (Bdd.support man c)

let test_empty_cube () =
  Alcotest.(check bool) "empty cube is true" true (Bdd.is_one (Bdd.cube man []))

let test_conj_disj () =
  let xs = [ Bdd.var man 0; Bdd.var man 1; Bdd.var man 2 ] in
  Alcotest.(check bool) "conj [] = true" true (Bdd.is_one (Bdd.conj man []));
  Alcotest.(check bool) "disj [] = false" true (Bdd.is_zero (Bdd.disj man []));
  Alcotest.(check bool) "conj = cube" true
    (Bdd.equal (Bdd.conj man xs) (Bdd.cube man [ 0; 1; 2 ]))

let test_restrict () =
  let f = Bdd.xor man (Bdd.var man 0) (Bdd.var man 1) in
  let f0 = Bdd.restrict man f 0 false in
  Alcotest.(check bool) "f|x0=0 is x1" true (Bdd.equal f0 (Bdd.var man 1));
  let f1 = Bdd.restrict man f 0 true in
  Alcotest.(check bool) "f|x0=1 is ~x1" true (Bdd.equal f1 (Bdd.nvar man 1))

let test_exists_unit () =
  (* exists x0. (x0 /\ x1) = x1 *)
  let f = Bdd.and_ man (Bdd.var man 0) (Bdd.var man 1) in
  let e = Bdd.exists man (Bdd.cube man [ 0 ]) f in
  Alcotest.(check bool) "exists" true (Bdd.equal e (Bdd.var man 1));
  (* forall x0. (x0 \/ x1) = x1 *)
  let g = Bdd.or_ man (Bdd.var man 0) (Bdd.var man 1) in
  let a = Bdd.forall man (Bdd.cube man [ 0 ]) g in
  Alcotest.(check bool) "forall" true (Bdd.equal a (Bdd.var man 1))

let test_sat_count_unit () =
  let f = Bdd.or_ man (Bdd.var man 0) (Bdd.var man 1) in
  Alcotest.(check (float 1e-9)) "sat_count x0\\/x1 over 3 vars" 6.0
    (Bdd.sat_count man f 3);
  Alcotest.(check (float 1e-9)) "sat_count true" 8.0
    (Bdd.sat_count man (Bdd.one man) 3);
  Alcotest.(check (float 1e-9)) "sat_count false" 0.0
    (Bdd.sat_count man (Bdd.zero man) 3)

let test_sat_count_bad_universe () =
  Alcotest.check_raises "support exceeds universe"
    (Invalid_argument "Bdd.sat_count: support exceeds variable universe")
    (fun () -> ignore (Bdd.sat_count man (Bdd.var man 5) 3))

let test_any_sat () =
  let f = Bdd.and_ man (Bdd.nvar man 0) (Bdd.var man 2) in
  let a = Bdd.any_sat man f in
  Alcotest.(check (list (pair int bool))) "least cube" [ (0, false); (2, true) ] a;
  Alcotest.check_raises "any_sat false" Not_found (fun () ->
      ignore (Bdd.any_sat man (Bdd.zero man)))

let test_fold_sat () =
  let f = Bdd.xor man (Bdd.var man 0) (Bdd.var man 1) in
  let sols =
    Bdd.fold_sat man f [ 0; 1 ] ~init:[] ~f:(fun acc a -> Array.copy a :: acc)
    |> List.rev
  in
  Alcotest.(check int) "two solutions" 2 (List.length sols);
  Alcotest.(check (list (list bool))) "lexicographic order"
    [ [ false; true ]; [ true; false ] ]
    (List.map Array.to_list sols)

let test_rename_swap () =
  let f = Bdd.and_ man (Bdd.var man 0) (Bdd.nvar man 1) in
  let g = Bdd.rename man f (fun v -> 1 - v) in
  let expect = Bdd.and_ man (Bdd.var man 1) (Bdd.nvar man 0) in
  Alcotest.(check bool) "swap rename" true (Bdd.equal g expect)

let test_rename_shift () =
  let f = Bdd.xor man (Bdd.var man 0) (Bdd.var man 2) in
  let g = Bdd.rename man f (fun v -> v + 10 ) in
  Alcotest.(check (list int)) "shifted support" [ 10; 12 ] (Bdd.support man g)

let test_size () =
  let f = Bdd.xor man (Bdd.var man 0) (Bdd.var man 1) in
  Alcotest.(check int) "xor has 3 nodes" 3 (Bdd.size man f);
  Alcotest.(check int) "constant has 0 nodes" 0 (Bdd.size man (Bdd.one man))

let test_to_dot () =
  let f = Bdd.and_ man (Bdd.var man 0) (Bdd.var man 1) in
  let dot = Bdd.to_dot ~name:(Printf.sprintf "x%d") man f in
  Alcotest.(check bool) "mentions x0" true
    (Astring.String.is_infix ~affix:"x0" dot);
  Alcotest.(check bool) "digraph" true
    (Astring.String.is_prefix ~affix:"digraph" dot)

let test_clear_caches () =
  let f = Bdd.and_ man (Bdd.var man 0) (Bdd.var man 1) in
  Bdd.clear_caches man;
  let g = Bdd.and_ man (Bdd.var man 0) (Bdd.var man 1) in
  Alcotest.(check bool) "canonicity survives cache clear" true (Bdd.equal f g)

(* -------------------------------------------------------------------- *)
(* Property tests.                                                      *)

let prop_eval_agrees =
  prop "bdd eval agrees with expression eval" expr_gen (fun e ->
      let b = bdd_of_expr e in
      agree (fun env -> eval_expr env e) (fun env -> Bdd.eval man b env))

let prop_canonicity =
  prop "truth-table-equivalent expressions share one node"
    QCheck2.Gen.(pair expr_gen expr_gen)
    (fun (e1, e2) ->
      let b1 = bdd_of_expr e1 and b2 = bdd_of_expr e2 in
      let equiv =
        agree (fun env -> eval_expr env e1) (fun env -> eval_expr env e2)
      in
      equiv = Bdd.equal b1 b2)

let prop_not_involution =
  prop "not is an involution" expr_gen (fun e ->
      let b = bdd_of_expr e in
      Bdd.equal b (Bdd.not_ man (Bdd.not_ man b)))

let prop_ite =
  prop "ite agrees with semantics"
    QCheck2.Gen.(triple expr_gen expr_gen expr_gen)
    (fun (ef, eg, eh) ->
      let f = bdd_of_expr ef and g = bdd_of_expr eg and h = bdd_of_expr eh in
      let r = Bdd.ite man f g h in
      agree
        (fun env -> Bdd.eval man r env)
        (fun env ->
          if eval_expr env ef then eval_expr env eg else eval_expr env eh))

let prop_exists_semantics =
  prop "exists v f = f|v=0 \\/ f|v=1"
    QCheck2.Gen.(pair expr_gen (int_bound (nvars - 1)))
    (fun (e, v) ->
      let f = bdd_of_expr e in
      let lhs = Bdd.exists man (Bdd.cube man [ v ]) f in
      let rhs =
        Bdd.or_ man (Bdd.restrict man f v false) (Bdd.restrict man f v true)
      in
      Bdd.equal lhs rhs)

let prop_forall_dual =
  prop "forall c f = ~exists c ~f"
    QCheck2.Gen.(pair expr_gen (list_size (int_bound 3) (int_bound (nvars - 1))))
    (fun (e, vs) ->
      let f = bdd_of_expr e in
      let c = Bdd.cube man vs in
      Bdd.equal (Bdd.forall man c f)
        (Bdd.not_ man (Bdd.exists man c (Bdd.not_ man f))))

let prop_and_exists =
  prop "and_exists = exists of and"
    QCheck2.Gen.(triple expr_gen expr_gen
                   (list_size (int_bound 3) (int_bound (nvars - 1))))
    (fun (e1, e2, vs) ->
      let f = bdd_of_expr e1 and g = bdd_of_expr e2 in
      let c = Bdd.cube man vs in
      Bdd.equal (Bdd.and_exists man c f g)
        (Bdd.exists man c (Bdd.and_ man f g)))

let prop_rename_eval =
  prop "rename commutes with evaluation" expr_gen (fun e ->
      let f = bdd_of_expr e in
      let perm v = v + nvars in
      let g = Bdd.rename man f perm in
      agree
        (fun env -> Bdd.eval man f env)
        (fun env -> Bdd.eval man g (fun v -> env (v - nvars))))

let prop_sat_count =
  prop "sat_count agrees with brute force" expr_gen (fun e ->
      let f = bdd_of_expr e in
      let count = ref 0 in
      for bits = 0 to (1 lsl nvars) - 1 do
        if eval_expr (env_of_bits bits) e then incr count
      done;
      Float.abs (Bdd.sat_count man f nvars -. float_of_int !count) < 1e-9)

let prop_any_sat =
  prop "any_sat returns a satisfying cube" expr_gen (fun e ->
      let f = bdd_of_expr e in
      if Bdd.is_zero f then true
      else
        let a = Bdd.any_sat man f in
        Bdd.eval man f (fun v ->
            match List.assoc_opt v a with Some b -> b | None -> false))

let prop_fold_sat_count =
  prop "fold_sat enumerates exactly the models" expr_gen (fun e ->
      let f = bdd_of_expr e in
      let vars = List.init nvars Fun.id in
      let n =
        Bdd.fold_sat man f vars ~init:0 ~f:(fun acc a ->
            if eval_expr (fun v -> a.(v)) e then acc + 1 else acc - 1000)
      in
      Float.abs (float_of_int n -. Bdd.sat_count man f nvars) < 1e-9)

let prop_subset =
  prop "subset is implication"
    QCheck2.Gen.(pair expr_gen expr_gen)
    (fun (e1, e2) ->
      let f = bdd_of_expr e1 and g = bdd_of_expr e2 in
      Bdd.subset man f g
      = agree
          (fun env -> not (eval_expr env e1) || eval_expr env e2)
          (fun _ -> true))

let prop_support_sound =
  prop "restricting a non-support variable is the identity"
    QCheck2.Gen.(pair expr_gen (int_bound (nvars - 1)))
    (fun (e, v) ->
      let f = bdd_of_expr e in
      List.mem v (Bdd.support man f)
      || Bdd.equal f (Bdd.restrict man f v true)
         && Bdd.equal f (Bdd.restrict man f v false))

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "var eval" `Quick test_var_eval;
    Alcotest.test_case "negative var rejected" `Quick test_var_negative;
    Alcotest.test_case "hash consing" `Quick test_hash_consing;
    Alcotest.test_case "structure accessors" `Quick test_topvar_structure;
    Alcotest.test_case "topvar on constant" `Quick test_topvar_constant;
    Alcotest.test_case "cube" `Quick test_cube;
    Alcotest.test_case "empty cube" `Quick test_empty_cube;
    Alcotest.test_case "conj/disj" `Quick test_conj_disj;
    Alcotest.test_case "restrict" `Quick test_restrict;
    Alcotest.test_case "exists/forall" `Quick test_exists_unit;
    Alcotest.test_case "sat_count" `Quick test_sat_count_unit;
    Alcotest.test_case "sat_count bad universe" `Quick test_sat_count_bad_universe;
    Alcotest.test_case "any_sat" `Quick test_any_sat;
    Alcotest.test_case "fold_sat" `Quick test_fold_sat;
    Alcotest.test_case "rename swap" `Quick test_rename_swap;
    Alcotest.test_case "rename shift" `Quick test_rename_shift;
    Alcotest.test_case "size" `Quick test_size;
    Alcotest.test_case "to_dot" `Quick test_to_dot;
    Alcotest.test_case "clear caches" `Quick test_clear_caches;
    prop_eval_agrees;
    prop_canonicity;
    prop_not_involution;
    prop_ite;
    prop_exists_semantics;
    prop_forall_dual;
    prop_and_exists;
    prop_rename_eval;
    prop_sat_count;
    prop_any_sat;
    prop_fold_sat_count;
    prop_subset;
    prop_support_sound;
  ]

(* ------------------------------------------------------------------ *)
(* Generalized cofactor (constrain).                                   *)

let prop_constrain_agrees_on_care_set =
  prop "c /\\ constrain f c = c /\\ f"
    QCheck2.Gen.(pair expr_gen expr_gen)
    (fun (ef, ec) ->
      let f = bdd_of_expr ef and c = bdd_of_expr ec in
      QCheck2.assume (not (Bdd.is_zero c));
      Bdd.equal
        (Bdd.and_ man c (Bdd.constrain man f c))
        (Bdd.and_ man c f))

let prop_constrain_self =
  prop "constrain f f = true (f satisfiable)" expr_gen (fun ef ->
      let f = bdd_of_expr ef in
      QCheck2.assume (not (Bdd.is_zero f));
      Bdd.is_one (Bdd.constrain man f f))

let prop_constrain_true =
  prop "constrain f true = f" expr_gen (fun ef ->
      let f = bdd_of_expr ef in
      Bdd.equal (Bdd.constrain man f (Bdd.one man)) f)

let test_constrain_empty_care () =
  Alcotest.check_raises "empty care set"
    (Invalid_argument "Bdd.constrain: care set is empty") (fun () ->
      ignore (Bdd.constrain man (Bdd.var man 0) (Bdd.zero man)))

let test_constrain_shrinks () =
  (* Constraining an xor chain to a cube collapses it to a literal. *)
  let f = Bdd.xor man (Bdd.var man 0) (Bdd.var man 1) in
  let c = Bdd.cube man [ 0 ] in
  let r = Bdd.constrain man f c in
  Alcotest.(check bool) "collapsed to !x1" true
    (Bdd.equal r (Bdd.nvar man 1))

let constrain_suite =
  [
    prop_constrain_agrees_on_care_set;
    prop_constrain_self;
    prop_constrain_true;
    Alcotest.test_case "constrain empty care" `Quick test_constrain_empty_care;
    Alcotest.test_case "constrain shrinks" `Quick test_constrain_shrinks;
  ]

(* ------------------------------------------------------------------ *)
(* Manager statistics, bounded caches, and GC.  These use private
   managers: the shared [man] above accumulates state across tests.    *)

let test_stats_counters () =
  let m = Bdd.create () in
  let f = Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1) in
  let g = Bdd.or_ m (Bdd.var m 2) f in
  ignore (Bdd.exists m (Bdd.cube m [ 0 ]) g : Bdd.t);
  let s = Bdd.stats m in
  Alcotest.(check bool) "ite called" true (s.Bdd.ite.Bdd.calls > 0);
  Alcotest.(check bool) "exists called" true (s.Bdd.exists.Bdd.calls > 0);
  Alcotest.(check bool) "misses counted" true (Bdd.cache_misses s > 0);
  Alcotest.(check bool) "live nodes" true (s.Bdd.live_nodes > 2);
  Alcotest.(check bool) "peak >= live" true
    (s.Bdd.peak_nodes >= s.Bdd.live_nodes);
  (* Recomputing an already-cached operation hits. *)
  let before = (Bdd.stats m).Bdd.ite.Bdd.hits in
  ignore (Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1) : Bdd.t);
  Alcotest.(check bool) "repeat op hits cache" true
    ((Bdd.stats m).Bdd.ite.Bdd.hits > before);
  Bdd.reset_stats m;
  let z = Bdd.stats m in
  Alcotest.(check int) "reset zeroes calls" 0 z.Bdd.ite.Bdd.calls;
  Alcotest.(check int) "reset zeroes hits" 0 (Bdd.cache_hits z);
  Alcotest.(check int) "peak restarts from live" z.Bdd.live_nodes
    z.Bdd.peak_nodes

let test_rename_non_injective () =
  let f = Bdd.and_ man (Bdd.var man 0) (Bdd.var man 1) in
  Alcotest.check_raises "collapsing rename rejected"
    (Invalid_argument "Bdd.rename: permutation not injective on support")
    (fun () -> ignore (Bdd.rename man f (fun _ -> 0)));
  Alcotest.check_raises "negative target rejected"
    (Invalid_argument "Bdd.rename: negative target variable")
    (fun () -> ignore (Bdd.rename man f (fun v -> v - 1)));
  (* Only the support matters: a permutation that collides outside it
     is fine. *)
  let g = Bdd.var man 0 in
  let perm v = if v = 0 then 5 else 7 in
  Alcotest.(check bool) "off-support collision accepted" true
    (Bdd.equal (Bdd.rename man g perm) (Bdd.var man 5))

let test_eviction_canonicity () =
  let m = Bdd.create ~cache_limit:4 () in
  (* Enough distinct operations to overflow a 4-entry cache many times
     over; canonicity must be unaffected because only caches, never the
     unique table, are dropped. *)
  let xs = List.init 8 (fun i -> Bdd.var m i) in
  let chain = List.fold_left (Bdd.xor m) (Bdd.zero m) xs in
  let chain' = List.fold_right (fun x acc -> Bdd.xor m acc x) xs (Bdd.zero m) in
  Alcotest.(check bool) "xor chains share one node" true
    (Bdd.equal chain chain');
  Alcotest.(check bool) "evictions happened" true
    ((Bdd.stats m).Bdd.cache_evictions > 0);
  Alcotest.check_raises "zero limit rejected"
    (Invalid_argument "Bdd.set_cache_limit: non-positive limit")
    (fun () -> Bdd.set_cache_limit m (Some 0))

let test_gc () =
  let m = Bdd.create () in
  let keep = Bdd.xor m (Bdd.var m 0) (Bdd.var m 1) in
  let keep_id = Bdd.id keep in
  let root = Bdd.add_root m (fun () -> [ keep ]) in
  (* Garbage: a large cube we drop on the floor. *)
  ignore (Bdd.cube m (List.init 20 (fun i -> i + 2)) : Bdd.t);
  let live_before = Bdd.live_nodes m in
  let collected = Bdd.gc m in
  Alcotest.(check bool) "gc collected the dead cube" true (collected >= 20);
  Alcotest.(check int) "live = before - collected"
    (live_before - collected) (Bdd.live_nodes m);
  (* The kept diagram must still be canonical: rebuilding the same
     function yields the same node. *)
  let again = Bdd.xor m (Bdd.var m 0) (Bdd.var m 1) in
  Alcotest.(check bool) "kept root still canonical" true
    (Bdd.equal keep again);
  Alcotest.(check int) "same physical id" keep_id (Bdd.id again);
  let s = Bdd.stats m in
  Alcotest.(check int) "gc runs counted" 1 s.Bdd.gc_runs;
  Alcotest.(check int) "collected counted" collected s.Bdd.gc_collected;
  (* After removing the root the kept diagram becomes garbage too. *)
  Bdd.remove_root m root;
  Alcotest.(check bool) "unrooted nodes swept" true (Bdd.gc m > 0);
  Alcotest.(check int) "only constants and vars' nodes remain" 0
    (Bdd.live_nodes m)

let test_with_root () =
  let m = Bdd.create () in
  let f = Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1) in
  let inside =
    Bdd.with_root m (fun () -> [ f ]) (fun () ->
        ignore (Bdd.gc m : int);
        Bdd.equal f (Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1)))
  in
  Alcotest.(check bool) "rooted across gc inside with_root" true inside;
  (* Provider unregistered on exit: now f is garbage. *)
  ignore (Bdd.gc m : int);
  Alcotest.(check int) "swept after with_root returns" 0 (Bdd.live_nodes m)

let test_any_sat_total () =
  let f = Bdd.and_ man (Bdd.nvar man 0) (Bdd.var man 2) in
  let a = Bdd.any_sat_total man f ~vars:[ 0; 1; 2; 3 ] in
  Alcotest.(check (list (pair int bool))) "total, don't-cares pinned false"
    [ (0, false); (1, false); (2, true); (3, false) ]
    a;
  Alcotest.(check (list (pair int bool))) "tautology over two vars"
    [ (0, false); (1, false) ]
    (Bdd.any_sat_total man (Bdd.one man) ~vars:[ 1; 0 ]);
  Alcotest.check_raises "support must be covered"
    (Invalid_argument "Bdd.any_sat_total: support not contained in vars")
    (fun () -> ignore (Bdd.any_sat_total man f ~vars:[ 0; 1 ]));
  Alcotest.check_raises "constant false"
    Not_found
    (fun () -> ignore (Bdd.any_sat_total man (Bdd.zero man) ~vars:[ 0 ]))

let stats_suite =
  [
    Alcotest.test_case "stats counters" `Quick test_stats_counters;
    Alcotest.test_case "rename injectivity" `Quick test_rename_non_injective;
    Alcotest.test_case "eviction canonicity" `Quick test_eviction_canonicity;
    Alcotest.test_case "gc" `Quick test_gc;
    Alcotest.test_case "with_root" `Quick test_with_root;
    Alcotest.test_case "any_sat_total" `Quick test_any_sat_total;
  ]

let suite = suite @ constrain_suite @ stats_suite
