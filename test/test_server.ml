(* Units for the check-server building blocks: the JSON codec, the
   frame layer, protocol parsing and reply shapes, the warm-manager
   cache, and the extracted engine (including the per-check
   cancellation scoping the server depends on).  The end-to-end server
   process is exercised by serve_smoke (dune build @serve-smoke). *)

module Json = Server.Json
module Frame = Server.Frame
module Protocol = Server.Protocol
module Cache = Server.Cache
module Engine = Server.Engine

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_print () =
  let open Json in
  Alcotest.(check string)
    "compact object"
    {|{"a":1,"b":[true,null,"x"],"c":{"d":-2.5}}|}
    (to_string
       (Obj
          [
            ("a", Num 1.);
            ("b", Arr [ Bool true; Null; Str "x" ]);
            ("c", Obj [ ("d", Num (-2.5)) ]);
          ]));
  Alcotest.(check string)
    "integral floats print without fraction" "9007199254740992"
    (to_string (Num 9007199254740992.));
  Alcotest.(check string)
    "string escapes" {|"a\"b\\c\nd\u0001"|}
    (to_string (Str "a\"b\\c\nd\001"))

let test_json_parse () =
  let open Json in
  (match of_string {| {"k": [1, -2.5e2, "sé😀"], "t": true} |} with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok v ->
    Alcotest.(check (option int)) "int member" (Some 1)
      (Option.bind (member "k" v) to_list
      |> Fun.flip Option.bind (function x :: _ -> Some x | [] -> None)
      |> Fun.flip Option.bind to_int);
    Alcotest.(check (option bool)) "bool member" (Some true)
      (Option.bind (member "t" v) to_bool);
    let s =
      Option.bind (member "k" v) to_list |> Option.get |> fun l ->
      List.nth l 2 |> to_str |> Option.get
    in
    (* é is é (2 UTF-8 bytes); the surrogate pair is U+1F600 (4). *)
    Alcotest.(check string) "unicode escapes decode to UTF-8"
      "s\xc3\xa9\xf0\x9f\x98\x80" s);
  (match of_string "[1,2] trailing" with
  | Ok _ -> Alcotest.fail "trailing garbage accepted"
  | Error _ -> ());
  (match of_string {|{"a":}|} with
  | Ok _ -> Alcotest.fail "missing value accepted"
  | Error _ -> ())

let test_json_roundtrip () =
  let open Json in
  let v =
    Obj
      [
        ("id", Str "req-1");
        ("n", Num 42.);
        ("nested", Arr [ Obj [ ("deep", Bool false) ]; Num 0.5 ]);
        ("text", Str "line1\nline2\twith \"quotes\" and \\");
      ]
  in
  match of_string (to_string v) with
  | Ok v' -> Alcotest.(check bool) "print/parse round-trip" true (v = v')
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e

(* ------------------------------------------------------------------ *)
(* Frame *)

let test_frame_roundtrip () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      Frame.write w "hello";
      Frame.write w "";
      Alcotest.(check (option string)) "first frame" (Some "hello")
        (Frame.read r);
      Alcotest.(check (option string)) "empty frame" (Some "") (Frame.read r);
      (* Larger than the pipe buffer, so the writer must run in its own
         thread while we read: exercises the partial-write loop. *)
      let writer =
        Thread.create
          (fun () ->
            Frame.write w (String.make 70000 'x');
            Unix.close w)
          ()
      in
      Alcotest.(check (option int)) "large frame" (Some 70000)
        (Option.map String.length (Frame.read r));
      Thread.join writer;
      Alcotest.(check (option string)) "clean EOF" None (Frame.read r))

let test_frame_oversized () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      (* A header announcing 2^31 - 1 bytes must be rejected before any
         allocation happens. *)
      let bad = Bytes.of_string "\x7f\xff\xff\xff" in
      let _ = Unix.write w bad 0 4 in
      match Frame.read r with
      | exception Frame.Oversized _ -> ()
      | Some _ | None -> Alcotest.fail "oversized header accepted")

let test_frame_should_stop () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      (* A half-written frame followed by EOF is a torn stream. *)
      let _ = Unix.write w (Bytes.of_string "\x00\x00\x00\x05ab") 0 6 in
      Unix.close w;
      match Frame.read r with
      | exception Frame.Closed -> ()
      | Some _ | None -> Alcotest.fail "torn frame not reported")

(* ------------------------------------------------------------------ *)
(* Protocol *)

let test_protocol_parse_check () =
  match
    Protocol.parse_request
      {|{"op":"check","id":"r1","model":"MODULE main","specs":["EF x"],
         "options":{"fair":false,"retries":2,"timeout":1.5,
                    "inject":"mk:10","reorder":"auto","stats":true}}|}
  with
  | Ok (Protocol.Check { id; model; specs; options }) ->
    Alcotest.(check string) "id" "r1" id;
    Alcotest.(check string) "model" "MODULE main" model;
    Alcotest.(check (list string)) "specs" [ "EF x" ] specs;
    Alcotest.(check bool) "fair" false options.Protocol.fair;
    Alcotest.(check bool) "stats" true options.Protocol.stats;
    Alcotest.(check int) "retries" 2 options.Protocol.retries;
    Alcotest.(check (option (float 1e-9))) "timeout" (Some 1.5)
      options.Protocol.timeout;
    Alcotest.(check bool) "inject parsed" true
      (options.Protocol.inject = Some (Bdd.Fault.Mk, 10));
    Alcotest.(check bool) "reorder auto" true
      (options.Protocol.reorder = `Auto)
  | Ok _ -> Alcotest.fail "parsed as the wrong op"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_protocol_defaults () =
  match
    Protocol.parse_request {|{"op":"check","id":"a","model":"m"}|}
  with
  | Ok (Protocol.Check { options; _ }) ->
    Alcotest.(check bool) "defaults are the CLI defaults" true
      (options = Protocol.default_options)
  | Ok _ | Error _ -> Alcotest.fail "minimal check request must parse"

let test_protocol_errors () =
  let expect_err payload =
    match Protocol.parse_request payload with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted: %s" payload
  in
  expect_err "not json at all";
  expect_err {|{"op":"frobnicate"}|};
  expect_err {|{"op":"check","id":"a"}|};
  (* model missing *)
  expect_err {|{"op":"check","id":"a","model":"m","options":{"retries":-1}}|};
  expect_err {|{"op":"check","id":"a","model":"m","options":{"timeout":0}}|};
  expect_err
    {|{"op":"check","id":"a","model":"m","options":{"inject":"bogus:1"}}|};
  expect_err {|{"op":"cancel"}|};
  (* id missing *)
  match Protocol.parse_request {|{"op":"ping"}|} with
  | Ok Protocol.Ping -> ()
  | _ -> Alcotest.fail "ping must parse"

let test_protocol_reply_shapes () =
  let reply =
    Protocol.check_reply ~id:"r9" ~exit_code:1
      ~verdicts:
        [
          {
            Protocol.sv_name = "EF x";
            sv_report =
              { Engine.verdict = Engine.Fails; cert_failed = false };
          };
          {
            Protocol.sv_name = "AG y";
            sv_report =
              {
                Engine.verdict = Engine.Undetermined "deadline";
                cert_failed = false;
              };
          };
        ]
      ~output:"-- text\n" ~warm:true ~reach_reused:true ~reach_states:12.
      ~time_ms:3.25 ()
  in
  match Json.of_string reply with
  | Error e -> Alcotest.failf "reply is not JSON: %s" e
  | Ok v ->
    let str k = Option.bind (Json.member k v) Json.to_str in
    let num k = Option.bind (Json.member k v) Json.to_num in
    Alcotest.(check (option string)) "id" (Some "r9") (str "id");
    Alcotest.(check (option string)) "status" (Some "ok") (str "status");
    Alcotest.(check (option (float 0.))) "exit_code" (Some 1.)
      (num "exit_code");
    Alcotest.(check (option bool)) "warm" (Some true)
      (Option.bind (Json.member "warm" v) Json.to_bool);
    let verdicts =
      Option.bind (Json.member "verdicts" v) Json.to_list |> Option.get
    in
    Alcotest.(check int) "two verdicts" 2 (List.length verdicts);
    let second = List.nth verdicts 1 in
    Alcotest.(check (option string)) "undetermined reason"
      (Some "deadline")
      (Option.bind (Json.member "reason" second) Json.to_str)

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_warm_flag () =
  let cache = Cache.create ~capacity:4 in
  let key = Cache.digest ~source:"m" ~partitioned:false ~static_order:false in
  let e1, warm1 = Cache.acquire cache ~key in
  Alcotest.(check bool) "first acquire is cold" false warm1;
  (* Still cold on re-acquire: nothing was compiled into the entry. *)
  let e2, warm2 = Cache.acquire cache ~key in
  Alcotest.(check bool) "same entry" true (e1 == e2);
  Alcotest.(check bool) "uncompiled entry is not warm" false warm2;
  e1.Cache.compiled <- None;
  Cache.release cache e1;
  Cache.release cache e2;
  Alcotest.(check int) "entry pooled" 1 (Cache.size cache)

let test_cache_key_includes_options () =
  let d = Cache.digest ~source:"m" in
  Alcotest.(check bool) "partitioned changes the key" true
    (d ~partitioned:false ~static_order:false
    <> d ~partitioned:true ~static_order:false);
  Alcotest.(check bool) "static order changes the key" true
    (d ~partitioned:false ~static_order:false
    <> d ~partitioned:false ~static_order:true)

let test_cache_eviction () =
  let cache = Cache.create ~capacity:1 in
  let key n = Cache.digest ~source:n ~partitioned:false ~static_order:false in
  let e1, _ = Cache.acquire cache ~key:(key "a") in
  (* e1 is busy: inserting a second entry must not evict it. *)
  let e2, _ = Cache.acquire cache ~key:(key "b") in
  Alcotest.(check int) "busy entries are kept" 2 (Cache.size cache);
  Cache.release cache e1;
  Cache.release cache e2;
  (* A third key now evicts both released idle entries, bringing the
     pool back to its configured capacity. *)
  let _, _ = Cache.acquire cache ~key:(key "c") in
  Alcotest.(check int) "idle LRU evicted down to capacity" 1
    (Cache.size cache);
  let e1', warm = Cache.acquire cache ~key:(key "a") in
  Alcotest.(check bool) "evicted entry was really dropped" true (e1 != e1');
  Alcotest.(check bool) "and comes back cold" false warm

(* ------------------------------------------------------------------ *)
(* Engine *)

let mutex_source =
  {|MODULE main
VAR p : {idle, try, crit};
ASSIGN
  init(p) := idle;
  next(p) := case
    p = idle : {idle, try};
    p = try  : {try, crit};
    p = crit : idle;
  esac;
SPEC AG !(p = crit & p = idle)
|}

let compile source = Smv.load_string source

let engine_opts ?(cancel = Atomic.make false) () =
  {
    Engine.fair = true;
    traces = true;
    stats = false;
    certify = false;
    debug = false;
    timeout = None;
    node_limit = None;
    step_limit = None;
    retries = 0;
    retry_factor = 2.0;
    cancel;
  }

let check_to_string ?cancel compiled (name, spec) =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let r =
    Engine.check_one ppf compiled.Smv.Compile.model
      ~opts:(engine_opts ?cancel ())
      ~clusters:(fun () -> compiled.Smv.Compile.clusters)
      (name, spec)
  in
  Format.pp_print_flush ppf ();
  (r, Buffer.contents buf)

let test_engine_check_one () =
  let compiled = compile mutex_source in
  match compiled.Smv.Compile.specs with
  | [ spec ] ->
    let r, out = check_to_string compiled spec in
    Alcotest.(check bool) "verdict holds" true (r.Engine.verdict = Engine.Holds);
    Alcotest.(check string) "exact output line"
      (Printf.sprintf "-- specification %s is true\n" (fst spec))
      out
  | _ -> Alcotest.fail "expected exactly one SPEC"

let test_engine_private_cancellation () =
  let compiled = compile mutex_source in
  let spec = List.hd compiled.Smv.Compile.specs in
  (* A pre-cancelled flag stops this check at its first poll point... *)
  let cancel = Atomic.make true in
  let r, _ = check_to_string ~cancel compiled spec in
  (match r.Engine.verdict with
  | Engine.Undetermined _ -> ()
  | Engine.Holds | Engine.Fails ->
    Alcotest.fail "cancelled check still produced a verdict");
  (* ...and, the point of per-check flags: an independent check of the
     same spec with its own (clear) flag is entirely unaffected. *)
  let r2, _ = check_to_string compiled spec in
  Alcotest.(check bool) "other checks unaffected" true
    (r2.Engine.verdict = Engine.Holds)

let test_engine_exit_codes () =
  let rep v = { Engine.verdict = v; cert_failed = false } in
  let check name expected reports =
    Alcotest.(check int) name expected
      (Engine.exit_code ~interrupted:false reports)
  in
  check "all hold" 0 [ rep Engine.Holds; rep Engine.Holds ];
  check "some false" 1 [ rep Engine.Holds; rep Engine.Fails ];
  check "undetermined beats false" 2
    [ rep Engine.Fails; rep (Engine.Undetermined "deadline") ];
  Alcotest.(check int) "cert failure beats everything" 3
    (Engine.exit_code ~interrupted:false
       [ { Engine.verdict = Engine.Undetermined "cert"; cert_failed = true } ]);
  Alcotest.(check int) "interrupted forces 2" 2
    (Engine.exit_code ~interrupted:true [ rep Engine.Holds ])

let test_engine_fault_is_scoped () =
  let compiled = compile mutex_source in
  let m = compiled.Smv.Compile.model in
  let spec = List.hd compiled.Smv.Compile.specs in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let r =
    Engine.check_one ppf m ~opts:(engine_opts ())
      ~clusters:(fun () -> compiled.Smv.Compile.clusters)
      ~inject:(Bdd.Fault.Step, 1) spec
  in
  (match r.Engine.verdict with
  | Engine.Undetermined _ -> ()
  | _ -> Alcotest.fail "injected fault did not trip the check");
  Alcotest.(check (option (pair (of_pp Fmt.nop) int)))
    "fault disarmed on exit" None
    (Bdd.Fault.armed m.Kripke.man);
  (* The next check on the same manager runs fault-free. *)
  let r2, _ = check_to_string compiled spec in
  Alcotest.(check bool) "clean follow-up check" true
    (r2.Engine.verdict = Engine.Holds)

let suite =
  [
    Alcotest.test_case "json: compact printing" `Quick test_json_print;
    Alcotest.test_case "json: parsing" `Quick test_json_parse;
    Alcotest.test_case "json: round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "frame: round-trip and EOF" `Quick
      test_frame_roundtrip;
    Alcotest.test_case "frame: oversized header rejected" `Quick
      test_frame_oversized;
    Alcotest.test_case "frame: torn stream reported" `Quick
      test_frame_should_stop;
    Alcotest.test_case "protocol: check request" `Quick
      test_protocol_parse_check;
    Alcotest.test_case "protocol: option defaults" `Quick
      test_protocol_defaults;
    Alcotest.test_case "protocol: malformed requests" `Quick
      test_protocol_errors;
    Alcotest.test_case "protocol: reply shapes" `Quick
      test_protocol_reply_shapes;
    Alcotest.test_case "cache: warm flag" `Quick test_cache_warm_flag;
    Alcotest.test_case "cache: key includes options" `Quick
      test_cache_key_includes_options;
    Alcotest.test_case "cache: LRU eviction spares busy entries" `Quick
      test_cache_eviction;
    Alcotest.test_case "engine: check_one output" `Quick
      test_engine_check_one;
    Alcotest.test_case "engine: per-check cancellation" `Quick
      test_engine_private_cancellation;
    Alcotest.test_case "engine: exit-code contract" `Quick
      test_engine_exit_codes;
    Alcotest.test_case "engine: fault injection is check-scoped" `Quick
      test_engine_fault_is_scoped;
  ]
