(* Units for the check-server building blocks: the JSON codec, the
   frame layer, protocol parsing and reply shapes, the warm-manager
   cache, and the extracted engine (including the per-check
   cancellation scoping the server depends on).  The end-to-end server
   process is exercised by serve_smoke (dune build @serve-smoke). *)

module Json = Server.Json
module Frame = Server.Frame
module Protocol = Server.Protocol
module Cache = Server.Cache
module Engine = Server.Engine
module Overload = Server.Overload
module Daemon = Server.Daemon
module Pool = Parallel.Pool

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_print () =
  let open Json in
  Alcotest.(check string)
    "compact object"
    {|{"a":1,"b":[true,null,"x"],"c":{"d":-2.5}}|}
    (to_string
       (Obj
          [
            ("a", Num 1.);
            ("b", Arr [ Bool true; Null; Str "x" ]);
            ("c", Obj [ ("d", Num (-2.5)) ]);
          ]));
  Alcotest.(check string)
    "integral floats print without fraction" "9007199254740992"
    (to_string (Num 9007199254740992.));
  Alcotest.(check string)
    "string escapes" {|"a\"b\\c\nd\u0001"|}
    (to_string (Str "a\"b\\c\nd\001"))

let test_json_parse () =
  let open Json in
  (match of_string {| {"k": [1, -2.5e2, "sé😀"], "t": true} |} with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok v ->
    Alcotest.(check (option int)) "int member" (Some 1)
      (Option.bind (member "k" v) to_list
      |> Fun.flip Option.bind (function x :: _ -> Some x | [] -> None)
      |> Fun.flip Option.bind to_int);
    Alcotest.(check (option bool)) "bool member" (Some true)
      (Option.bind (member "t" v) to_bool);
    let s =
      Option.bind (member "k" v) to_list |> Option.get |> fun l ->
      List.nth l 2 |> to_str |> Option.get
    in
    (* é is é (2 UTF-8 bytes); the surrogate pair is U+1F600 (4). *)
    Alcotest.(check string) "unicode escapes decode to UTF-8"
      "s\xc3\xa9\xf0\x9f\x98\x80" s);
  (match of_string "[1,2] trailing" with
  | Ok _ -> Alcotest.fail "trailing garbage accepted"
  | Error _ -> ());
  (match of_string {|{"a":}|} with
  | Ok _ -> Alcotest.fail "missing value accepted"
  | Error _ -> ())

let test_json_roundtrip () =
  let open Json in
  let v =
    Obj
      [
        ("id", Str "req-1");
        ("n", Num 42.);
        ("nested", Arr [ Obj [ ("deep", Bool false) ]; Num 0.5 ]);
        ("text", Str "line1\nline2\twith \"quotes\" and \\");
      ]
  in
  match of_string (to_string v) with
  | Ok v' -> Alcotest.(check bool) "print/parse round-trip" true (v = v')
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e

(* ------------------------------------------------------------------ *)
(* Frame *)

let test_frame_roundtrip () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      Frame.write w "hello";
      Frame.write w "";
      Alcotest.(check (option string)) "first frame" (Some "hello")
        (Frame.read r);
      Alcotest.(check (option string)) "empty frame" (Some "") (Frame.read r);
      (* Larger than the pipe buffer, so the writer must run in its own
         thread while we read: exercises the partial-write loop. *)
      let writer =
        Thread.create
          (fun () ->
            Frame.write w (String.make 70000 'x');
            Unix.close w)
          ()
      in
      Alcotest.(check (option int)) "large frame" (Some 70000)
        (Option.map String.length (Frame.read r));
      Thread.join writer;
      Alcotest.(check (option string)) "clean EOF" None (Frame.read r))

let test_frame_oversized () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      (* A header announcing 2^31 - 1 bytes must be rejected before any
         allocation happens. *)
      let bad = Bytes.of_string "\x7f\xff\xff\xff" in
      let _ = Unix.write w bad 0 4 in
      match Frame.read r with
      | exception Frame.Oversized _ -> ()
      | Some _ | None -> Alcotest.fail "oversized header accepted")

let test_frame_should_stop () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      (* A half-written frame followed by EOF is a torn stream. *)
      let _ = Unix.write w (Bytes.of_string "\x00\x00\x00\x05ab") 0 6 in
      Unix.close w;
      match Frame.read r with
      | exception Frame.Closed -> ()
      | Some _ | None -> Alcotest.fail "torn frame not reported")

let test_frame_split_header () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      (* The 4-byte length prefix arrives in two separate writes, then
         the payload in two more: the header loop must reassemble it
         rather than treat a short read as a malformed frame. *)
      let writer =
        Thread.create
          (fun () ->
            let put s =
              let b = Bytes.of_string s in
              ignore (Unix.write w b 0 (Bytes.length b));
              Thread.yield ();
              Unix.sleepf 0.01
            in
            put "\x00\x00";
            put "\x00\x05";
            put "he";
            put "llo";
            Unix.close w)
          ()
      in
      Alcotest.(check (option string)) "split header reassembled"
        (Some "hello") (Frame.read r);
      Thread.join writer)

let test_frame_oversized_bytewise () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      (* An oversize header dribbling in one byte at a time must still
         be rejected as Oversized once complete — never a partial-read
         misparse, never an allocation of the announced size. *)
      let writer =
        Thread.create
          (fun () ->
            String.iter
              (fun c ->
                let b = Bytes.make 1 c in
                ignore (Unix.write w b 0 1);
                Thread.yield ();
                Unix.sleepf 0.01)
              "\x7f\xff\xff\xff";
            Unix.close w)
          ()
      in
      (match Frame.read r with
      | exception Frame.Oversized n ->
        Alcotest.(check int) "announced size reported" 0x7fffffff n
      | Some _ | None -> Alcotest.fail "byte-by-byte oversize accepted");
      Thread.join writer)

let test_frame_eof_mid_header () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      try Unix.close r with Unix.Unix_error _ -> ())
    (fun () ->
      (* EOF after two header bytes: a torn stream, not a clean end. *)
      let _ = Unix.write w (Bytes.of_string "\x00\x00") 0 2 in
      Unix.close w;
      match Frame.read r with
      | exception Frame.Closed -> ()
      | Some _ | None -> Alcotest.fail "EOF mid-header not reported")

(* ------------------------------------------------------------------ *)
(* Protocol *)

let test_protocol_parse_check () =
  match
    Protocol.parse_request
      {|{"op":"check","id":"r1","model":"MODULE main","specs":["EF x"],
         "options":{"fair":false,"retries":2,"timeout":1.5,
                    "inject":"mk:10","reorder":"auto","stats":true}}|}
  with
  | Ok (Protocol.Check { id; model; specs; options }) ->
    Alcotest.(check string) "id" "r1" id;
    Alcotest.(check string) "model" "MODULE main" model;
    Alcotest.(check (list string)) "specs" [ "EF x" ] specs;
    Alcotest.(check bool) "fair" false options.Protocol.fair;
    Alcotest.(check bool) "stats" true options.Protocol.stats;
    Alcotest.(check int) "retries" 2 options.Protocol.retries;
    Alcotest.(check (option (float 1e-9))) "timeout" (Some 1.5)
      options.Protocol.timeout;
    Alcotest.(check bool) "inject parsed" true
      (options.Protocol.inject = Some (Bdd.Fault.Mk, 10));
    Alcotest.(check bool) "reorder auto" true
      (options.Protocol.reorder = `Auto)
  | Ok _ -> Alcotest.fail "parsed as the wrong op"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_protocol_defaults () =
  match
    Protocol.parse_request {|{"op":"check","id":"a","model":"m"}|}
  with
  | Ok (Protocol.Check { options; _ }) ->
    Alcotest.(check bool) "defaults are the CLI defaults" true
      (options = Protocol.default_options)
  | Ok _ | Error _ -> Alcotest.fail "minimal check request must parse"

let test_protocol_errors () =
  let expect_err payload =
    match Protocol.parse_request payload with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted: %s" payload
  in
  expect_err "not json at all";
  expect_err {|{"op":"frobnicate"}|};
  expect_err {|{"op":"check","id":"a"}|};
  (* model missing *)
  expect_err {|{"op":"check","id":"a","model":"m","options":{"retries":-1}}|};
  expect_err {|{"op":"check","id":"a","model":"m","options":{"timeout":0}}|};
  expect_err
    {|{"op":"check","id":"a","model":"m","options":{"inject":"bogus:1"}}|};
  expect_err {|{"op":"cancel"}|};
  (* id missing *)
  match Protocol.parse_request {|{"op":"ping"}|} with
  | Ok Protocol.Ping -> ()
  | _ -> Alcotest.fail "ping must parse"

let test_protocol_reply_shapes () =
  let reply =
    Protocol.check_reply ~id:"r9" ~exit_code:1
      ~verdicts:
        [
          {
            Protocol.sv_name = "EF x";
            sv_report =
              { Engine.verdict = Engine.Fails; cert_failed = false };
          };
          {
            Protocol.sv_name = "AG y";
            sv_report =
              {
                Engine.verdict = Engine.Undetermined "deadline";
                cert_failed = false;
              };
          };
        ]
      ~output:"-- text\n" ~warm:true ~reach_reused:true ~reach_states:12.
      ~time_ms:3.25 ()
  in
  match Json.of_string reply with
  | Error e -> Alcotest.failf "reply is not JSON: %s" e
  | Ok v ->
    let str k = Option.bind (Json.member k v) Json.to_str in
    let num k = Option.bind (Json.member k v) Json.to_num in
    Alcotest.(check (option string)) "id" (Some "r9") (str "id");
    Alcotest.(check (option string)) "status" (Some "ok") (str "status");
    Alcotest.(check (option (float 0.))) "exit_code" (Some 1.)
      (num "exit_code");
    Alcotest.(check (option bool)) "warm" (Some true)
      (Option.bind (Json.member "warm" v) Json.to_bool);
    let verdicts =
      Option.bind (Json.member "verdicts" v) Json.to_list |> Option.get
    in
    Alcotest.(check int) "two verdicts" 2 (List.length verdicts);
    let second = List.nth verdicts 1 in
    Alcotest.(check (option string)) "undetermined reason"
      (Some "deadline")
      (Option.bind (Json.member "reason" second) Json.to_str)

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_warm_flag () =
  let cache = Cache.create ~capacity:4 in
  let key = Cache.digest ~source:"m" ~partitioned:false ~static_order:false in
  let e1, warm1 = Cache.acquire cache ~key in
  Alcotest.(check bool) "first acquire is cold" false warm1;
  (* Still cold on re-acquire: nothing was compiled into the entry. *)
  let e2, warm2 = Cache.acquire cache ~key in
  Alcotest.(check bool) "same entry" true (e1 == e2);
  Alcotest.(check bool) "uncompiled entry is not warm" false warm2;
  e1.Cache.compiled <- None;
  Cache.release cache e1;
  Cache.release cache e2;
  Alcotest.(check int) "entry pooled" 1 (Cache.size cache)

let test_cache_key_includes_options () =
  let d = Cache.digest ~source:"m" in
  Alcotest.(check bool) "partitioned changes the key" true
    (d ~partitioned:false ~static_order:false
    <> d ~partitioned:true ~static_order:false);
  Alcotest.(check bool) "static order changes the key" true
    (d ~partitioned:false ~static_order:false
    <> d ~partitioned:false ~static_order:true)

let test_cache_eviction () =
  let cache = Cache.create ~capacity:1 in
  let key n = Cache.digest ~source:n ~partitioned:false ~static_order:false in
  let e1, _ = Cache.acquire cache ~key:(key "a") in
  (* e1 is busy: inserting a second entry must not evict it. *)
  let e2, _ = Cache.acquire cache ~key:(key "b") in
  Alcotest.(check int) "busy entries are kept" 2 (Cache.size cache);
  Cache.release cache e1;
  Cache.release cache e2;
  (* A third key now evicts both released idle entries, bringing the
     pool back to its configured capacity. *)
  let _, _ = Cache.acquire cache ~key:(key "c") in
  Alcotest.(check int) "idle LRU evicted down to capacity" 1
    (Cache.size cache);
  let e1', warm = Cache.acquire cache ~key:(key "a") in
  Alcotest.(check bool) "evicted entry was really dropped" true (e1 != e1');
  Alcotest.(check bool) "and comes back cold" false warm

(* ------------------------------------------------------------------ *)
(* Engine *)

let mutex_source =
  {|MODULE main
VAR p : {idle, try, crit};
ASSIGN
  init(p) := idle;
  next(p) := case
    p = idle : {idle, try};
    p = try  : {try, crit};
    p = crit : idle;
  esac;
SPEC AG !(p = crit & p = idle)
|}

let compile source = Smv.load_string source

let engine_opts ?(cancel = Atomic.make false) () =
  {
    Engine.fair = true;
    fair_engine = Ctl.Fair.El;
    traces = true;
    stats = false;
    certify = false;
    debug = false;
    timeout = None;
    node_limit = None;
    step_limit = None;
    retries = 0;
    retry_factor = 2.0;
    cancel;
  }

let check_to_string ?cancel compiled (name, spec) =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let r =
    Engine.check_one ppf compiled.Smv.Compile.model
      ~opts:(engine_opts ?cancel ())
      ~clusters:(fun () -> compiled.Smv.Compile.clusters)
      (name, spec)
  in
  Format.pp_print_flush ppf ();
  (r, Buffer.contents buf)

let test_engine_check_one () =
  let compiled = compile mutex_source in
  match compiled.Smv.Compile.specs with
  | [ spec ] ->
    let r, out = check_to_string compiled spec in
    Alcotest.(check bool) "verdict holds" true (r.Engine.verdict = Engine.Holds);
    Alcotest.(check string) "exact output line"
      (Printf.sprintf "-- specification %s is true\n" (fst spec))
      out
  | _ -> Alcotest.fail "expected exactly one SPEC"

let test_engine_private_cancellation () =
  let compiled = compile mutex_source in
  let spec = List.hd compiled.Smv.Compile.specs in
  (* A pre-cancelled flag stops this check at its first poll point... *)
  let cancel = Atomic.make true in
  let r, _ = check_to_string ~cancel compiled spec in
  (match r.Engine.verdict with
  | Engine.Undetermined _ -> ()
  | Engine.Holds | Engine.Fails ->
    Alcotest.fail "cancelled check still produced a verdict");
  (* ...and, the point of per-check flags: an independent check of the
     same spec with its own (clear) flag is entirely unaffected. *)
  let r2, _ = check_to_string compiled spec in
  Alcotest.(check bool) "other checks unaffected" true
    (r2.Engine.verdict = Engine.Holds)

let test_engine_exit_codes () =
  let rep v = { Engine.verdict = v; cert_failed = false } in
  let check name expected reports =
    Alcotest.(check int) name expected
      (Engine.exit_code ~interrupted:false reports)
  in
  check "all hold" 0 [ rep Engine.Holds; rep Engine.Holds ];
  check "some false" 1 [ rep Engine.Holds; rep Engine.Fails ];
  check "undetermined beats false" 2
    [ rep Engine.Fails; rep (Engine.Undetermined "deadline") ];
  Alcotest.(check int) "cert failure beats everything" 3
    (Engine.exit_code ~interrupted:false
       [ { Engine.verdict = Engine.Undetermined "cert"; cert_failed = true } ]);
  Alcotest.(check int) "interrupted forces 2" 2
    (Engine.exit_code ~interrupted:true [ rep Engine.Holds ])

let test_engine_fault_is_scoped () =
  let compiled = compile mutex_source in
  let m = compiled.Smv.Compile.model in
  let spec = List.hd compiled.Smv.Compile.specs in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let r =
    Engine.check_one ppf m ~opts:(engine_opts ())
      ~clusters:(fun () -> compiled.Smv.Compile.clusters)
      ~inject:(Bdd.Fault.Step, 1) spec
  in
  (match r.Engine.verdict with
  | Engine.Undetermined _ -> ()
  | _ -> Alcotest.fail "injected fault did not trip the check");
  Alcotest.(check (option (pair (of_pp Fmt.nop) int)))
    "fault disarmed on exit" None
    (Bdd.Fault.armed m.Kripke.man);
  (* The next check on the same manager runs fault-free. *)
  let r2, _ = check_to_string compiled spec in
  Alcotest.(check bool) "clean follow-up check" true
    (r2.Engine.verdict = Engine.Holds)

(* ------------------------------------------------------------------ *)
(* Overload protection: pool admission, shed replies, status shapes,
   budget defaults, the watchdog ladder *)

let test_pool_admission () =
  let pool = Pool.create ~max_pending:2 1 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  (* Gate the single worker so queued tasks stay queued. *)
  let gate = Atomic.make false in
  let blocker =
    Pool.submit pool (fun () ->
        while not (Atomic.get gate) do
          Domain.cpu_relax ()
        done)
  in
  (* Wait until the worker holds the blocker (pending drops to 0). *)
  while Pool.pending pool > 0 do
    Domain.cpu_relax ()
  done;
  let f1 = Pool.try_submit pool (fun () -> 1) in
  let f2 = Pool.try_submit pool (fun () -> 2) in
  Alcotest.(check bool) "two admissions fit the bound" true
    (f1 <> None && f2 <> None);
  Alcotest.(check int) "queue depth visible" 2 (Pool.pending pool);
  Alcotest.(check bool) "third admission shed" true
    (Pool.try_submit pool (fun () -> 3) = None);
  Alcotest.(check bool) "plain submit ignores the bound" true
    (ignore (Pool.submit pool (fun () -> 4));
     true);
  Alcotest.(check bool) "blocker not settled while held" false
    (Pool.is_settled blocker);
  Atomic.set gate true;
  ignore (Pool.await blocker);
  Alcotest.(check bool) "settled after completion" true
    (Pool.is_settled blocker);
  Alcotest.(check int) "queued results delivered" 1
    (Option.get (Option.map Pool.await_exn f1));
  ignore (Option.map Pool.await f2)

let test_protocol_status_parse () =
  match Protocol.parse_request {|{"op":"status"}|} with
  | Ok Protocol.Status -> ()
  | Ok _ -> Alcotest.fail "parsed as the wrong op"
  | Error e -> Alcotest.failf "status request rejected: %s" e

let test_protocol_overloaded_reply () =
  let reply =
    Protocol.overloaded_reply ~id:"r3" ~reason:"queue" ~queue_depth:8
      ~retry_after_ms:125.
  in
  match Json.of_string reply with
  | Error e -> Alcotest.failf "reply is not JSON: %s" e
  | Ok v ->
    let str k = Option.bind (Json.member k v) Json.to_str in
    let num k = Option.bind (Json.member k v) Json.to_num in
    Alcotest.(check (option string)) "id" (Some "r3") (str "id");
    Alcotest.(check (option string)) "status" (Some "overloaded")
      (str "status");
    Alcotest.(check (option string)) "reason" (Some "queue") (str "reason");
    Alcotest.(check (option (float 0.))) "queue_depth" (Some 8.)
      (num "queue_depth");
    Alcotest.(check (option (float 0.))) "retry_after_ms" (Some 125.)
      (num "retry_after_ms")

let test_protocol_status_reply () =
  let reply =
    Protocol.status_reply
      {
        Protocol.ss_uptime_s = 12.5;
        ss_workers = 2;
        ss_queue_depth = 3;
        ss_max_pending = Some 8;
        ss_inflight = 5;
        ss_shed_queue = 7;
        ss_shed_inflight = 1;
        ss_shed_cold = 2;
        ss_watchdog_evictions = 4;
        ss_cache_clamps = 1;
        ss_level_transitions = 6;
        ss_pressure_level = 2;
        ss_mem_live_nodes = 12345;
        ss_mem_high_water = None;
        ss_respawns = 0;
        ss_avg_check_ms = Some 42.5;
        ss_faults_fired = 0;
        ss_snapshots = 2;
        ss_restores = 1;
        ss_quarantines = 0;
        ss_restarts = 3;
        ss_checks_el = 5;
        ss_checks_lockstep = 2;
        ss_cache_capacity = 8;
        ss_models =
          [
            {
              Protocol.ms_key = "k1";
              ms_busy = 1;
              ms_uses = 9;
              ms_warm = true;
              ms_live_nodes = 12345;
              ms_clamped = false;
            };
          ];
      }
  in
  match Json.of_string reply with
  | Error e -> Alcotest.failf "status reply is not JSON: %s" e
  | Ok v ->
    let num k = Option.bind (Json.member k v) Json.to_num in
    Alcotest.(check (option string)) "status"
      (Some "ok")
      (Option.bind (Json.member "status" v) Json.to_str);
    Alcotest.(check (option string)) "op"
      (Some "status")
      (Option.bind (Json.member "op" v) Json.to_str);
    Alcotest.(check (option (float 0.))) "queue_depth" (Some 3.)
      (num "queue_depth");
    Alcotest.(check (option (float 0.))) "max_pending" (Some 8.)
      (num "max_pending");
    Alcotest.(check bool) "absent high water is null" true
      (Json.member "mem_high_water" v = Some Json.Null);
    let counters = Json.member "counters" v |> Option.get in
    Alcotest.(check (option (float 0.))) "shed_queue" (Some 7.)
      (Option.bind (Json.member "shed_queue" counters) Json.to_num);
    Alcotest.(check (option (float 0.))) "watchdog_evictions" (Some 4.)
      (Option.bind (Json.member "watchdog_evictions" counters) Json.to_num);
    Alcotest.(check (option (float 0.))) "snapshots" (Some 2.)
      (Option.bind (Json.member "snapshots" counters) Json.to_num);
    Alcotest.(check (option (float 0.))) "restores" (Some 1.)
      (Option.bind (Json.member "restores" counters) Json.to_num);
    Alcotest.(check (option (float 0.))) "quarantines" (Some 0.)
      (Option.bind (Json.member "quarantines" counters) Json.to_num);
    Alcotest.(check (option (float 0.))) "restarts" (Some 3.)
      (Option.bind (Json.member "restarts" counters) Json.to_num);
    Alcotest.(check (option (float 0.))) "checks_el" (Some 5.)
      (Option.bind (Json.member "checks_el" counters) Json.to_num);
    Alcotest.(check (option (float 0.))) "checks_lockstep" (Some 2.)
      (Option.bind (Json.member "checks_lockstep" counters) Json.to_num);
    let cache = Json.member "cache" v |> Option.get in
    Alcotest.(check (option (float 0.))) "cache entries" (Some 1.)
      (Option.bind (Json.member "entries" cache) Json.to_num);
    let models =
      Option.bind (Json.member "models" cache) Json.to_list |> Option.get
    in
    Alcotest.(check int) "one model row" 1 (List.length models);
    let m0 = List.hd models in
    Alcotest.(check (option string)) "model key" (Some "k1")
      (Option.bind (Json.member "key" m0) Json.to_str);
    Alcotest.(check (option bool)) "model warm" (Some true)
      (Option.bind (Json.member "warm" m0) Json.to_bool)

let daemon_cfg ?default_timeout ?default_node_limit ?max_timeout () =
  {
    Daemon.socket = None;
    jobs = 1;
    capacity = 1;
    debug = false;
    max_pending = None;
    max_inflight = None;
    default_timeout;
    default_node_limit;
    max_timeout;
    mem_high_water = None;
    state_dir = None;
    crash_after = None;
    restarts = 0;
  }

let test_daemon_apply_defaults () =
  let o = Protocol.default_options in
  let get cfg o = (Daemon.apply_defaults cfg o).Protocol.timeout in
  Alcotest.(check (option (float 1e-9))) "no defaults: untouched" None
    (get (daemon_cfg ()) o);
  Alcotest.(check (option (float 1e-9))) "default fills the gap" (Some 5.)
    (get (daemon_cfg ~default_timeout:5. ()) o);
  Alcotest.(check (option (float 1e-9))) "request wins over default"
    (Some 2.)
    (get
       (daemon_cfg ~default_timeout:5. ())
       { o with Protocol.timeout = Some 2. });
  Alcotest.(check (option (float 1e-9))) "ceiling clamps the request"
    (Some 3.)
    (get
       (daemon_cfg ~max_timeout:3. ())
       { o with Protocol.timeout = Some 60. });
  Alcotest.(check (option (float 1e-9)))
    "ceiling applies even with no request budget" (Some 3.)
    (get (daemon_cfg ~max_timeout:3. ()) o);
  Alcotest.(check (option (float 1e-9))) "below the ceiling: honoured"
    (Some 1.)
    (get
       (daemon_cfg ~max_timeout:3. ())
       { o with Protocol.timeout = Some 1. });
  let node cfg o = (Daemon.apply_defaults cfg o).Protocol.node_limit in
  Alcotest.(check (option int)) "node default fills the gap" (Some 100)
    (node (daemon_cfg ~default_node_limit:100 ()) o);
  Alcotest.(check (option int)) "request node limit wins" (Some 7)
    (node
       (daemon_cfg ~default_node_limit:100 ())
       { o with Protocol.node_limit = Some 7 })

let test_overload_retry_hint () =
  let ov = Overload.create ~log:ignore () in
  Alcotest.(check (option (float 1e-9))) "no history yet" None
    (Overload.avg_check_s ov);
  (* Before any completion the hint falls back to a 50 ms mean. *)
  Alcotest.(check (float 1e-9)) "cold hint" 50.
    (Overload.retry_after_ms ov ~queue_depth:0 ~workers:1);
  Overload.admitted ov;
  Alcotest.(check int) "admitted counted" 1 (Overload.inflight ov);
  Overload.finished ov 0.1;
  Overload.finished ov 0.3;
  Alcotest.(check int) "finished drains inflight" 0 (Overload.inflight ov);
  Alcotest.(check (option (float 1e-9))) "rolling mean" (Some 0.2)
    (Overload.avg_check_s ov);
  (* 5 queued ahead + this one = 6 slots over 2 workers = 3 rounds of
     the 200 ms mean. *)
  Alcotest.(check (float 1e-9)) "scaled hint" 600.
    (Overload.retry_after_ms ov ~queue_depth:5 ~workers:2);
  let s = Overload.stats ov in
  Overload.shed ov Overload.Queue_full;
  Overload.shed ov Overload.Memory_pressure;
  let s' = Overload.stats ov in
  Alcotest.(check int) "shed_queue counted" (s.Overload.shed_queue + 1)
    s'.Overload.shed_queue;
  Alcotest.(check int) "shed_cold counted" (s.Overload.shed_cold + 1)
    s'.Overload.shed_cold

(* Put a real compiled model into a cache entry so live_nodes has
   something to measure. *)
let warm_into cache source =
  let key = Cache.digest ~source ~partitioned:false ~static_order:false in
  let e, _ = Cache.acquire cache ~key in
  e.Cache.compiled <- Some (compile source);
  Cache.release cache e;
  key

let test_cache_pressure_hooks () =
  let cache = Cache.create ~capacity:4 in
  let key = warm_into cache mutex_source in
  Alcotest.(check bool) "warm model visible" true (Cache.is_warm cache ~key);
  Alcotest.(check bool) "cold model not" false
    (Cache.is_warm cache ~key:"nope");
  let live = Cache.live_nodes cache in
  Alcotest.(check bool) "live nodes measured" true (live > 0);
  (* Clamp, inspect, unclamp. *)
  Alcotest.(check int) "one idle manager clamped" 1
    (Cache.clamp_idle cache ~limit:64);
  (match Cache.snapshot cache with
  | [ i ] ->
    Alcotest.(check bool) "snapshot: warm" true i.Cache.i_warm;
    Alcotest.(check bool) "snapshot: clamped" true i.Cache.i_clamped;
    Alcotest.(check bool) "snapshot: live nodes" true (i.Cache.i_live > 0)
  | l -> Alcotest.failf "expected one snapshot row, got %d" (List.length l));
  Alcotest.(check int) "already clamped: no-op" 0
    (Cache.clamp_idle cache ~limit:64);
  Alcotest.(check int) "unclamped" 1 (Cache.unclamp_idle cache);
  (* Eviction respects busy entries... *)
  let e, _ = Cache.acquire cache ~key in
  Alcotest.(check int) "busy entry never evicted" 0
    (Cache.evict_idle_until cache ~target:0);
  Cache.release cache e;
  (* ...and drops idle ones until the target is met. *)
  Alcotest.(check int) "idle entry evicted under pressure" 1
    (Cache.evict_idle_until cache ~target:0);
  Alcotest.(check bool) "evicted model is cold again" false
    (Cache.is_warm cache ~key);
  Alcotest.(check int) "nothing left to measure" 0 (Cache.live_nodes cache)

let test_overload_watchdog_ladder () =
  let cache = Cache.create ~capacity:4 in
  let key = warm_into cache mutex_source in
  (* High water of one node: the warm mutex model is always over it. *)
  let ov = Overload.create ~mem_high_water:1 ~log:ignore () in
  Alcotest.(check int) "starts at level 0" 0 (Overload.level ov);
  Alcotest.(check bool) "cold admissions allowed" true
    (Overload.admit_cold ov);
  (* A busy entry can be neither evicted nor clamped: the ladder must
     climb straight to refusing cold admissions. *)
  let e, _ = Cache.acquire cache ~key in
  Overload.watchdog ov cache;
  Alcotest.(check int) "busy + over water: level 3" 3 (Overload.level ov);
  Alcotest.(check bool) "cold admissions refused" false
    (Overload.admit_cold ov);
  Cache.release cache e;
  (* Once the entry is idle the ladder evicts it and pressure drops. *)
  Overload.watchdog ov cache;
  let s = Overload.stats ov in
  Alcotest.(check bool) "idle entry evicted" true (s.Overload.evictions >= 1);
  Alcotest.(check bool) "below level 3 again" true (s.Overload.level < 3);
  Alcotest.(check bool) "cold admissions restored" true
    (Overload.admit_cold ov);
  (* The next clear tick settles back to normal. *)
  Overload.watchdog ov cache;
  Overload.watchdog ov cache;
  Alcotest.(check int) "pressure cleared: level 0" 0 (Overload.level ov);
  Alcotest.(check bool) "transitions counted" true
    ((Overload.stats ov).Overload.transitions >= 2);
  (* Unarmed watchdog: a no-op regardless of pressure. *)
  let ov0 = Overload.create ~log:ignore () in
  let _ = warm_into cache mutex_source in
  Overload.watchdog ov0 cache;
  Alcotest.(check int) "unarmed stays at level 0" 0 (Overload.level ov0)

(* ------------------------------------------------------------------ *)
(* Daemon: a request carrying an unparseable extra spec must come back
   as a structured error reply naming the offending text — never an
   escaped exception on a worker (which would kill the process, not
   the request).  Exercised against the real server binary over stdio
   pipes so the whole worker path is under test. *)

let test_daemon_bad_extra_spec () =
  let exe = Filename.concat (Filename.concat ".." "bin") "smv_check.exe" in
  let stdin_r, stdin_w = Unix.pipe ~cloexec:false () in
  let stdout_r, stdout_w = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process exe [| exe; "--serve" |] stdin_r stdout_w Unix.stderr
  in
  Unix.close stdin_r;
  Unix.close stdout_w;
  let send obj = Frame.write stdin_w (Json.to_string obj) in
  let recv () =
    match Frame.read stdout_r with
    | None -> Alcotest.fail "server closed the stream"
    | Some payload -> (
      match Json.of_string payload with
      | Ok v -> v
      | Error e -> Alcotest.fail ("bad JSON from server: " ^ e))
  in
  let str k v = Option.bind (Json.member k v) Json.to_str in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close stdin_w with Unix.Unix_error _ -> ());
      (try Unix.close stdout_r with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid))
    (fun () ->
      let check_req ~id specs =
        Json.Obj
          [
            ("op", Json.Str "check");
            ("id", Json.Str id);
            ("model", Json.Str mutex_source);
            ("specs", Json.Arr (List.map (fun s -> Json.Str s) specs));
          ]
      in
      send (check_req ~id:"bad" [ "AG (p = " ]);
      let v = recv () in
      Alcotest.(check (option string)) "structured error reply"
        (Some "error") (str "status" v);
      Alcotest.(check (option string)) "id echoed" (Some "bad") (str "id" v);
      (match str "error" v with
      | Some msg ->
        Alcotest.(check bool) "message names the offending spec text" true
          (Astring.String.is_infix ~affix:{|"AG (p = "|} msg)
      | None -> Alcotest.fail "error reply has no message");
      (* The worker survived: the same connection still answers, and a
         well-formed extra spec on the same (now warm) model runs. *)
      send (check_req ~id:"good" [ "EF (p = crit)" ]);
      let v2 = recv () in
      Alcotest.(check (option string)) "worker survived the bad spec"
        (Some "ok") (str "status" v2);
      send (Json.Obj [ ("op", Json.Str "shutdown") ]);
      ignore (recv ()))

let suite =
  [
    Alcotest.test_case "json: compact printing" `Quick test_json_print;
    Alcotest.test_case "json: parsing" `Quick test_json_parse;
    Alcotest.test_case "json: round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "frame: round-trip and EOF" `Quick
      test_frame_roundtrip;
    Alcotest.test_case "frame: oversized header rejected" `Quick
      test_frame_oversized;
    Alcotest.test_case "frame: torn stream reported" `Quick
      test_frame_should_stop;
    Alcotest.test_case "frame: split header reassembled" `Quick
      test_frame_split_header;
    Alcotest.test_case "frame: oversize byte-by-byte" `Quick
      test_frame_oversized_bytewise;
    Alcotest.test_case "frame: EOF mid-header" `Quick
      test_frame_eof_mid_header;
    Alcotest.test_case "protocol: check request" `Quick
      test_protocol_parse_check;
    Alcotest.test_case "protocol: option defaults" `Quick
      test_protocol_defaults;
    Alcotest.test_case "protocol: malformed requests" `Quick
      test_protocol_errors;
    Alcotest.test_case "protocol: reply shapes" `Quick
      test_protocol_reply_shapes;
    Alcotest.test_case "cache: warm flag" `Quick test_cache_warm_flag;
    Alcotest.test_case "cache: key includes options" `Quick
      test_cache_key_includes_options;
    Alcotest.test_case "cache: LRU eviction spares busy entries" `Quick
      test_cache_eviction;
    Alcotest.test_case "engine: check_one output" `Quick
      test_engine_check_one;
    Alcotest.test_case "engine: per-check cancellation" `Quick
      test_engine_private_cancellation;
    Alcotest.test_case "engine: exit-code contract" `Quick
      test_engine_exit_codes;
    Alcotest.test_case "engine: fault injection is check-scoped" `Quick
      test_engine_fault_is_scoped;
    Alcotest.test_case "pool: bounded admission" `Quick test_pool_admission;
    Alcotest.test_case "protocol: status request" `Quick
      test_protocol_status_parse;
    Alcotest.test_case "protocol: overloaded reply shape" `Quick
      test_protocol_overloaded_reply;
    Alcotest.test_case "protocol: status reply shape" `Quick
      test_protocol_status_reply;
    Alcotest.test_case "daemon: server-side budget defaults" `Quick
      test_daemon_apply_defaults;
    Alcotest.test_case "overload: admission counters and retry hint" `Quick
      test_overload_retry_hint;
    Alcotest.test_case "cache: memory-pressure hooks" `Quick
      test_cache_pressure_hooks;
    Alcotest.test_case "overload: watchdog ladder" `Quick
      test_overload_watchdog_ladder;
    Alcotest.test_case "daemon: bad extra spec is a structured error" `Quick
      test_daemon_bad_extra_spec;
  ]
