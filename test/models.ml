(* Shared test models and random generators.

   The random-model pipeline builds an explicit graph first (so the
   ground truth is independent of the symbolic machinery), then encodes
   it symbolically through Explicit.Bridge.to_kripke; properties then
   compare the symbolic checker against the explicit oracle on the very
   same structure. *)

(* ------------------------------------------------------------------ *)
(* A two-process mutual-exclusion model with a turn variable.          *)

type mutex = {
  m : Kripke.t;
  t1 : Ctl.t;  (* process 1 trying *)
  c1 : Ctl.t;  (* process 1 critical *)
  t2 : Ctl.t;
  c2 : Ctl.t;
}

(* Each process: idle -> trying -> critical -> idle; entering the
   critical section requires the turn; leaving flips the turn.  One
   process moves per step (interleaving).  Fairness: each process is
   scheduled infinitely often (its program counter changes or it stays
   idle voluntarily... modelled simply as "process i not in critical"
   union "just left" — we use the standard "infinitely often not
   trying-while-turn-held" would be contrived, so instead we use
   scheduling fairness: infinitely often it is process i's move).  A
   'mover' variable records who moved. *)
let mutex () =
  let b = Kripke.Builder.create () in
  let p1 = Kripke.Builder.enum_var b "p1" [ "idle"; "try"; "crit" ] in
  let p2 = Kripke.Builder.enum_var b "p2" [ "idle"; "try"; "crit" ] in
  let turn = Kripke.Builder.bool_var b "turn" in (* false: p1, true: p2 *)
  let mover = Kripke.Builder.bool_var b "mover" in (* who just moved *)
  let bman = Kripke.Builder.man b in
  let is = Kripke.Builder.is b and is' = Kripke.Builder.is' b in
  let v = Kripke.Builder.v b and v' = Kripke.Builder.v' b in
  let s name = Kripke.S name in
  let unchanged = Kripke.Builder.unchanged b in
  Kripke.Builder.add_init b
    (Bdd.conj bman
       [ is p1 (s "idle"); is p2 (s "idle");
         Bdd.not_ bman (v turn); Bdd.not_ bman (v mover) ]);
  (* Process 1 steps (mover' = false). *)
  let keep_turn = unchanged turn in
  let turn_to own = if own then v' turn else Bdd.not_ bman (v' turn) in
  let p1_steps =
    [ (* idle -> try *)
      Bdd.conj bman [ is p1 (s "idle"); is' p1 (s "try"); keep_turn ];
      (* idle -> idle (may stay out) *)
      Bdd.conj bman [ is p1 (s "idle"); is' p1 (s "idle"); keep_turn ];
      (* try -> crit when turn is p1's *)
      Bdd.conj bman
        [ is p1 (s "try"); Bdd.not_ bman (v turn); is' p1 (s "crit");
          keep_turn ];
      (* try -> try (blocked or dawdling) *)
      Bdd.conj bman [ is p1 (s "try"); is' p1 (s "try"); keep_turn ];
      (* crit -> idle, hand the turn over *)
      Bdd.conj bman [ is p1 (s "crit"); is' p1 (s "idle"); turn_to true ];
    ]
  in
  let p2_steps =
    [ Bdd.conj bman [ is p2 (s "idle"); is' p2 (s "try"); keep_turn ];
      Bdd.conj bman [ is p2 (s "idle"); is' p2 (s "idle"); keep_turn ];
      Bdd.conj bman
        [ is p2 (s "try"); v turn; is' p2 (s "crit"); keep_turn ];
      Bdd.conj bman [ is p2 (s "try"); is' p2 (s "try"); keep_turn ];
      Bdd.conj bman [ is p2 (s "crit"); is' p2 (s "idle"); turn_to false ];
    ]
  in
  List.iter
    (fun step ->
      Kripke.Builder.add_trans_case b
        (Bdd.conj bman
           [ step; Bdd.not_ bman (v' mover); Kripke.Builder.unchanged b p2 ]))
    p1_steps;
  List.iter
    (fun step ->
      Kripke.Builder.add_trans_case b
        (Bdd.conj bman [ step; v' mover; Kripke.Builder.unchanged b p1 ]))
    p2_steps;
  (* Scheduling fairness: each process moves infinitely often; progress
     fairness: a trying process with the turn eventually enters. *)
  Kripke.Builder.add_fairness b (Bdd.not_ bman (v mover));
  Kripke.Builder.add_fairness b (v mover);
  Kripke.Builder.add_fairness b
    (Bdd.not_ bman (Bdd.and_ bman (is p1 (s "try")) (Bdd.not_ bman (v turn))));
  Kripke.Builder.add_fairness b
    (Bdd.not_ bman (Bdd.and_ bman (is p2 (s "try")) (v turn)));
  Kripke.Builder.add_label b "t1" (is p1 (s "try"));
  Kripke.Builder.add_label b "c1" (is p1 (s "crit"));
  Kripke.Builder.add_label b "t2" (is p2 (s "try"));
  Kripke.Builder.add_label b "c2" (is p2 (s "crit"));
  let m = Kripke.Builder.build b in
  {
    m;
    t1 = Ctl.atom "t1";
    c1 = Ctl.atom "c1";
    t2 = Ctl.atom "t2";
    c2 = Ctl.atom "c2";
  }

(* ------------------------------------------------------------------ *)
(* A modulo-k counter with an "up" toggle: deterministic, good for     *)
(* exact reachability counts.                                          *)

let counter bits =
  let b = Kripke.Builder.create () in
  let vs = List.init bits (fun i -> Kripke.Builder.bool_var b (Printf.sprintf "b%d" i)) in
  let bman = Kripke.Builder.man b in
  let v = Kripke.Builder.v b and v' = Kripke.Builder.v' b in
  List.iter (fun x -> Kripke.Builder.add_init b (Bdd.not_ bman (v x))) vs;
  (* increment: bit i flips iff all lower bits are 1 *)
  let rec carries acc = function
    | [] -> ()
    | x :: rest ->
      Kripke.Builder.add_trans b
        (Bdd.iff bman (v' x) (Bdd.xor bman (v x) acc));
      carries (Bdd.and_ bman acc (v x)) rest
  in
  carries (Bdd.one bman) vs;
  Kripke.Builder.label_all_bools b;
  Kripke.Builder.build b

(* ------------------------------------------------------------------ *)
(* Random explicit graphs + their symbolic encodings.                  *)

type random_model = {
  graph : Explicit.Egraph.t;
  sym : Kripke.t;
  encode : int -> Kripke.state;
  atom_mask : string -> bool array;
}

let atom_names = [ "p"; "q"; "r" ]

let random_model_gen ?(max_states = 8) ?(nfair = 0) () =
  let open QCheck2.Gen in
  let* n = int_range 1 max_states in
  let state = int_bound (n - 1) in
  (* Ensure totality: every state gets at least one successor. *)
  let* forced = array_size (return n) state in
  let* extra = list_size (int_bound (2 * n)) (pair state state) in
  let* label_sets =
    list_repeat (List.length atom_names) (list_size (int_bound n) state)
  in
  let* fair_sets = list_repeat nfair (list_size (int_range 1 n) state) in
  let* init0 = state in
  let edges =
    Array.to_list (Array.mapi (fun i j -> (i, j)) forced) @ extra
  in
  let fairness =
    List.map (Explicit.Egraph.mask_of_list ~nstates:n) fair_sets
  in
  let graph =
    Explicit.Egraph.make ~nstates:n ~edges ~init:[ init0 ] ~fairness ()
  in
  let labels = List.combine atom_names label_sets in
  let sym, encode = Explicit.Bridge.to_kripke ~labels graph in
  let atom_mask name =
    let states = List.assoc name labels in
    Explicit.Egraph.mask_of_list ~nstates:n states
  in
  return { graph; sym; encode; atom_mask }

(* Random CTL formulas over the shared atoms. *)
let formula_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self depth ->
      let atom = map Ctl.atom (oneofl atom_names) in
      if depth <= 0 then oneof [ atom; return Ctl.True; return Ctl.False ]
      else
        let sub = self (depth / 2) in
        let sub1 = self (depth - 1) in
        oneof
          [ atom;
            map Ctl.neg sub1;
            map2 (fun a b -> Ctl.And (a, b)) sub sub;
            map2 (fun a b -> Ctl.Or (a, b)) sub sub;
            map2 (fun a b -> Ctl.Imp (a, b)) sub sub;
            map (fun f -> Ctl.EX f) sub1;
            map (fun f -> Ctl.EF f) sub1;
            map (fun f -> Ctl.EG f) sub1;
            map (fun f -> Ctl.AX f) sub1;
            map (fun f -> Ctl.AF f) sub1;
            map (fun f -> Ctl.AG f) sub1;
            map2 (fun a b -> Ctl.EU (a, b)) sub sub;
            map2 (fun a b -> Ctl.AU (a, b)) sub sub ])

(* Compare a symbolic satisfaction set against an explicit mask,
   state by state. *)
let sets_agree (rm : random_model) symbolic_set explicit_mask =
  let ok = ref true in
  Array.iteri
    (fun i hit ->
      let st = rm.encode i in
      if Kripke.eval_in_state rm.sym symbolic_set st <> hit then ok := false)
    explicit_mask;
  !ok
