(* The frontend never crashes: whatever mangled input it is fed, the
   pipeline either compiles or raises one of the four declared frontend
   errors — never Failure, Not_found, Invalid_argument, Match_failure
   or a stack overflow.  The corpus is the real example models, mutated
   by truncation, character flips, insertions, line shuffles and
   cross-model splices. *)

let models_dir = Filename.concat (Filename.concat ".." "examples") "models"

let corpus =
  lazy
    (Sys.readdir models_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".smv")
    |> List.map (fun f ->
           let ic = open_in (Filename.concat models_dir f) in
           let n = in_channel_length ic in
           let s = really_input_string ic n in
           close_in ic;
           s))

(* Bytes that stress the lexer: structure characters, digits long
   enough to overflow, operators, and plain noise. *)
let spice =
  [| ":"; ";"; "("; ")"; "{"; "}"; ".."; "->"; "<->"; "&"; "|"; "!";
     "="; ","; "9999999999999999999999"; "MODULE"; "VAR"; "ASSIGN";
     "SPEC"; "case"; "esac"; "next"; "init"; "boolean"; "\x00"; "\xff";
     "--"; "0"; "xyzzy" |]

let mutate_gen =
  let open QCheck2.Gen in
  let* base = oneofl (Lazy.force corpus) in
  let* nmut = int_range 1 6 in
  let mutation = oneofl [ `Truncate; `Flip; `Insert; `DropLine; `Splice ] in
  let apply s = function
    | `Truncate ->
      let* k = int_bound (max 0 (String.length s - 1)) in
      return (String.sub s 0 k)
    | `Flip ->
      if String.length s = 0 then return s
      else
        let* i = int_bound (String.length s - 1) in
        let* c = char in
        let b = Bytes.of_string s in
        Bytes.set b i c;
        return (Bytes.to_string b)
    | `Insert ->
      let* i = int_bound (String.length s) in
      let* w = oneofl (Array.to_list spice) in
      return (String.sub s 0 i ^ w ^ String.sub s i (String.length s - i))
    | `DropLine ->
      let lines = String.split_on_char '\n' s in
      let n = List.length lines in
      if n <= 1 then return s
      else
        let* k = int_bound (n - 1) in
        return
          (String.concat "\n" (List.filteri (fun i _ -> i <> k) lines))
    | `Splice ->
      let* other = oneofl (Lazy.force corpus) in
      let* i = int_bound (String.length s) in
      let* j = int_bound (String.length other) in
      return
        (String.sub s 0 i
        ^ String.sub other j (String.length other - j))
  in
  let rec go s k =
    if k = 0 then QCheck2.Gen.return s
    else
      let* m = mutation in
      let* s' = apply s m in
      go s' (k - 1)
  in
  go base nmut

let declared_error = function
  | Smv.Lexer.Error _ | Smv.Parser.Error _ | Smv.Flatten.Error _
  | Smv.Compile.Error _ ->
    true
  | _ -> false

let prop_frontend_total =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"mutated models: declared errors only"
       ~count:300 mutate_gen (fun source ->
         match Smv.load_string source with
         | _ -> true
         | exception e when declared_error e -> true
         | exception e ->
           QCheck2.Test.fail_reportf
             "undeclared exception %s on input:@.%s"
             (Printexc.to_string e)
             (String.sub source 0 (min 400 (String.length source)))))

(* Regression: a huge integer literal used to escape as [Failure] from
   int_of_string. *)
let test_overflow_literal () =
  let source = "MODULE main\nVAR x : 0..99999999999999999999;\n" in
  match Smv.load_string source with
  | _ -> Alcotest.fail "absurd range accepted"
  | exception Smv.Lexer.Error _ -> ()
  | exception e ->
    Alcotest.failf "wrong exception: %s" (Printexc.to_string e)

let suite =
  [
    prop_frontend_total;
    Alcotest.test_case "integer overflow is a lexer error" `Quick
      test_overflow_literal;
  ]
