(* Tests for conjunctively partitioned transition relations with early
   quantification: images, reachability and full CTL checking must be
   unchanged by partitioning. *)

let prop name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* The counter builds its relation as one conjunct per bit — the ideal
   partitioning candidate. *)
let counter_pair bits =
  let mono = Models.counter bits in
  (* Rebuild through the builder to get the partitioned variant of the
     same relation; Models.counter uses add_trans per bit, so
     re-deriving the clusters via a fresh build is the easiest route:
     partition the monolithic relation ourselves per output bit. *)
  let bman = mono.Kripke.man in
  let clusters =
    List.init bits (fun i ->
        (* project the relation onto the constraint for next-bit i *)
        let others =
          List.filter (fun j -> j <> i) (List.init bits Fun.id)
          |> List.map (fun j -> (2 * j) + 1)
        in
        Bdd.exists bman (Bdd.cube bman others) mono.Kripke.trans)
  in
  (mono, Kripke.with_partition mono clusters)

let test_images_agree () =
  let mono, part = counter_pair 4 in
  Alcotest.(check bool) "partitioned flag" true (Kripke.partitioned part);
  Alcotest.(check bool) "mono flag" false (Kripke.partitioned mono);
  let some_set = Ctl.Check.sat mono (Ctl.atom "b1") in
  Alcotest.(check bool) "pre agrees" true
    (Bdd.equal (Kripke.pre mono some_set) (Kripke.pre part some_set));
  Alcotest.(check bool) "post agrees" true
    (Bdd.equal (Kripke.post mono some_set) (Kripke.post part some_set));
  Alcotest.(check bool) "reachable agrees" true
    (Bdd.equal (Kripke.reachable mono) (Kripke.reachable part))

let test_bad_partition_rejected () =
  let mono = Models.counter 3 in
  Alcotest.(check bool) "bad clusters rejected" true
    (match Kripke.with_partition mono [ Bdd.one mono.Kripke.man ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_smv_partitioned_end_to_end () =
  let src =
    "MODULE main\n\
     VAR a : boolean; c : 0..5; s : {x, y, z};\n\
     ASSIGN\n\
     init(a) := FALSE; next(a) := !a;\n\
     init(c) := 0; next(c) := (c + 1) mod 6;\n\
     init(s) := x;\n\
     next(s) := case s = x : {x, y}; s = y : z; TRUE : x; esac;\n\
     FAIRNESS s = z\n\
     SPEC AG (c = 5 -> AX c = 0)\n\
     SPEC AG AF s = x\n\
     SPEC AG !(a & c = 1)\n"
  in
  let mono = Smv.load_string src in
  let part = Smv.load_string ~partitioned:true src in
  Alcotest.(check bool) "partitioned" true
    (Kripke.partitioned part.Smv.Compile.model);
  List.iter2
    (fun (name, f_mono) (_, f_part) ->
      Alcotest.(check bool)
        ("same verdict for " ^ name)
        (Ctl.Fair.holds mono.Smv.Compile.model f_mono)
        (Ctl.Fair.holds part.Smv.Compile.model f_part))
    mono.Smv.Compile.specs part.Smv.Compile.specs

let prop_partitioned_ctl_agrees =
  (* On random models (single-cluster partition through the builder's
     case list) and the SMV mutex, verify whole satisfaction sets. *)
  prop "partitioned CTL satisfaction sets agree" ~count:150
    (QCheck2.Gen.pair (Models.random_model_gen ~nfair:2 ()) Models.formula_gen)
    (fun (rm, f) ->
      let mono = rm.Models.sym in
      (* the bridge builds via trans cases: one disjunctive cluster *)
      let clusters = [ mono.Kripke.trans ] in
      (* with_partition requires clusters /\ space /\ space' = trans;
         trans already includes the space conjuncts. *)
      let part = Kripke.with_partition mono clusters in
      Bdd.equal (Ctl.Fair.sat mono f) (Ctl.Fair.sat part f))

let prop_counter_witnesses_survive_partitioning =
  prop "witnesses on partitioned models validate" ~count:30
    (QCheck2.Gen.int_range 2 4)
    (fun bits ->
      let _, part = counter_pair bits in
      let all_set =
        Bdd.conj part.Kripke.man
          (List.init bits (fun i ->
               Ctl.Check.sat part (Ctl.atom (Printf.sprintf "b%d" i))))
      in
      let eu = Ctl.Check.eu part part.Kripke.space all_set in
      List.for_all
        (fun st ->
          let tr =
            Counterex.Witness.eu part ~f:part.Kripke.space ~g:all_set
              ~start:st
          in
          Counterex.Validate.eu_witness part ~f:part.Kripke.space ~g:all_set
            tr
          = Ok ())
        (Kripke.states_in part eu))

let suite =
  [
    Alcotest.test_case "images agree" `Quick test_images_agree;
    Alcotest.test_case "bad partition rejected" `Quick test_bad_partition_rejected;
    Alcotest.test_case "SMV partitioned end to end" `Quick test_smv_partitioned_end_to_end;
    prop_partitioned_ctl_agrees;
    prop_counter_witnesses_survive_partitioning;
  ]
