(* Tests for the circuit substrate and the arbiter case study. *)

(* A toggle oscillator: one inverter feeding itself. *)
let oscillator =
  { Circuit.Netlist.rules = [ Circuit.Netlist.gate ~name:"INV" ~output:"x"
                                (Circuit.Netlist.Not (Circuit.Netlist.Sig "x")) ];
    init_high = [] }

let test_oscillator () =
  let m = Circuit.Netlist.compile oscillator in
  Alcotest.(check bool) "total" true (Bdd.is_zero (Kripke.deadlocks m));
  Alcotest.(check bool) "always eventually x" true
    (Ctl.Fair.holds m (Ctl.Parse.formula "AG AF x"));
  Alcotest.(check bool) "always eventually !x" true
    (Ctl.Fair.holds m (Ctl.Parse.formula "AG AF !x"));
  (* A single always-enabled gate cannot stall even without fairness. *)
  Alcotest.(check bool) "lone gate forced" true
    (Ctl.Check.holds m (Ctl.Parse.formula "AF x"))

let test_two_oscillators_need_fairness () =
  (* With two independent inverters an unfair scheduler can starve one;
     gate fairness restores liveness. *)
  let open Circuit.Netlist in
  let nl =
    { rules =
        [ gate ~name:"INVX" ~output:"x" (Not (Sig "x"));
          gate ~name:"INVY" ~output:"y" (Not (Sig "y")) ];
      init_high = [] }
  in
  let m = compile nl in
  Alcotest.(check bool) "unfair may starve y" false
    (Ctl.Check.holds m (Ctl.Parse.formula "AF y"));
  Alcotest.(check bool) "fair forces y" true
    (Ctl.Fair.holds m (Ctl.Parse.formula "AF y"))

let test_quiescent_stutter () =
  (* A buffer driven by a constant-low input: stable from the start;
     the stutter loop keeps the relation total. *)
  let nl =
    { Circuit.Netlist.rules =
        [ Circuit.Netlist.gate ~name:"BUF" ~output:"y" (Circuit.Netlist.Sig "x") ];
      init_high = [] }
  in
  let m = Circuit.Netlist.compile nl in
  Alcotest.(check bool) "total" true (Bdd.is_zero (Kripke.deadlocks m));
  Alcotest.(check bool) "y stays low" true
    (Ctl.Check.holds m (Ctl.Parse.formula "AG !y"))

let test_c_element () =
  let open Circuit.Netlist in
  let nl =
    { rules =
        [ env ~name:"ea" ~output:"a" ~rise:(Const true) ~fall:(Const false);
          env ~name:"eb" ~output:"b" ~rise:(Const true) ~fall:(Const false);
          c_element ~name:"C" ~output:"c" (Sig "a") (Sig "b") ];
      init_high = [] }
  in
  let m = compile nl in
  (* c rises only after both inputs are high. *)
  Alcotest.(check bool) "c needs both" true
    (Ctl.Check.holds m (Ctl.Parse.formula "!E [!(a & b) U (c & !(a & b))]"));
  Alcotest.(check bool) "c reachable" true
    (Ctl.Check.holds m (Ctl.Parse.formula "EF c"))

let test_me_exclusion_rules () =
  let open Circuit.Netlist in
  match me_element ~name:"ME" ~requests:[ "r1"; "r2" ] ~grants:[ "g1"; "g2" ] with
  | [ a; b ] ->
    Alcotest.(check string) "g1 rule" "ME.g1" a.rule_name;
    Alcotest.(check bool) "fair" true (a.fair && b.fair)
  | _ -> Alcotest.fail "two rules expected"

let test_me_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Netlist.me_element: requests/grants mismatch") (fun () ->
      ignore
        (Circuit.Netlist.me_element ~name:"ME" ~requests:[ "a" ] ~grants:[]))

let test_double_drive () =
  let open Circuit.Netlist in
  let nl =
    { rules = [ gate ~name:"G1" ~output:"x" (Const true);
                gate ~name:"G2" ~output:"x" (Const false) ];
      init_high = [] }
  in
  (match compile nl with
  | _ -> Alcotest.fail "expected Bad_netlist"
  | exception Bad_netlist msg ->
    Alcotest.(check bool) "names both rules" true
      (Astring.String.is_infix ~affix:"G1" msg
      && Astring.String.is_infix ~affix:"G2" msg))

(* ------------------------------------------------------------------ *)
(* The arbiter case study (experiment E1's correctness side).          *)

let arb = lazy (Circuit.Arbiter.model 2)

let test_arbiter_reachable () =
  let m = Lazy.force arb in
  let count = Kripke.count_states m (Kripke.reachable m) in
  Alcotest.(check bool) "nontrivial reachable set" true (count > 50.0);
  Alcotest.(check bool) "total" true (Bdd.is_zero (Kripke.deadlocks m))

let test_arbiter_grant_exclusion () =
  let m = Lazy.force arb in
  Alcotest.(check bool) "AG !(g1 & g2)" true
    (Ctl.Fair.holds m (Ctl.Parse.formula "AG !(g1 & g2)"))

let test_arbiter_liveness_fails () =
  let m = Lazy.force arb in
  let spec = Circuit.Arbiter.liveness_spec 2 in
  Alcotest.(check bool) "liveness fails" false (Ctl.Fair.holds m spec);
  match Counterex.Explain.counterexample m spec with
  | None -> Alcotest.fail "expected the case-study counterexample"
  | Some tr ->
    Alcotest.(check bool) "valid path" true
      (Counterex.Validate.path_ok m tr = Ok ());
    Alcotest.(check bool) "from an initial state" true
      (Counterex.Validate.starts_at m m.Kripke.init tr = Ok ());
    Alcotest.(check bool) "is a lasso" true (Kripke.Trace.is_lasso tr);
    (* The cycle demonstrates EG !ta1: ta1 never rises on it. *)
    let ta1 = Kripke.label m "ta1" in
    List.iter
      (fun st ->
        Alcotest.(check bool) "ta1 low on cycle" false
          (Kripke.eval_in_state m ta1 st))
      tr.Kripke.Trace.cycle;
    (* All gate-fairness constraints hit on the cycle. *)
    List.iteri
      (fun k h ->
        Alcotest.(check bool) (Printf.sprintf "fairness %d" k) true
          (List.exists (Kripke.eval_in_state m h) tr.Kripke.Trace.cycle))
      m.Kripke.fairness

let test_arbiter_request_possible () =
  let m = Lazy.force arb in
  Alcotest.(check bool) "a grant is reachable" true
    (Ctl.Fair.holds m (Ctl.Parse.formula "EF g1"));
  Alcotest.(check bool) "an ack is reachable" true
    (Ctl.Fair.holds m (Ctl.Parse.formula "EF ua1"))

let test_arbiter_specs_list () =
  let specs = Circuit.Arbiter.specs 2 in
  (* 1 g-pair + 1 ua-pair + 2 liveness = 4 specs for two users. *)
  Alcotest.(check int) "spec count" 4 (List.length specs)

let test_arbiter_three_users () =
  let m = Circuit.Arbiter.model 3 in
  Alcotest.(check bool) "grant exclusion scales" true
    (Ctl.Fair.holds m (Ctl.Parse.formula "AG !(g1 & g3)"))

let suite =
  [
    Alcotest.test_case "oscillator" `Quick test_oscillator;
    Alcotest.test_case "two oscillators need fairness" `Quick test_two_oscillators_need_fairness;
    Alcotest.test_case "quiescent stutter" `Quick test_quiescent_stutter;
    Alcotest.test_case "c-element" `Quick test_c_element;
    Alcotest.test_case "ME rules" `Quick test_me_exclusion_rules;
    Alcotest.test_case "ME mismatch" `Quick test_me_mismatch;
    Alcotest.test_case "double drive rejected" `Quick test_double_drive;
    Alcotest.test_case "arbiter reachable" `Quick test_arbiter_reachable;
    Alcotest.test_case "arbiter grant exclusion" `Quick test_arbiter_grant_exclusion;
    Alcotest.test_case "arbiter liveness counterexample" `Quick test_arbiter_liveness_fails;
    Alcotest.test_case "arbiter progress possible" `Quick test_arbiter_request_possible;
    Alcotest.test_case "arbiter specs list" `Quick test_arbiter_specs_list;
    Alcotest.test_case "arbiter with three users" `Quick test_arbiter_three_users;
  ]
