(* Tests for Section 7: the restricted CTL* class E /\ (GF p \/ FG q).

   The independent oracle enumerates all 2^n resolutions of the
   disjunctions explicitly: E(/\ (GF p \/ FG q)) holds iff for some
   choice the explicit fair-SCC analysis finds EF EG_{chosen p}(/\
   chosen q). *)

let prop name ?(count = 120) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* ------------------------------------------------------------------ *)
(* Classification.                                                     *)

let p = Ctlstar.Atom "p"
let q = Ctlstar.Atom "q"

let test_classify_gf () =
  match Ctlstar.classify (Ctlstar.gf p) with
  | [ [ { Ctlstar.gf_part = Some (Ctlstar.Atom "p"); fg_part = None } ] ] -> ()
  | _ -> Alcotest.fail "bad classification of GF p"

let test_classify_fg () =
  match Ctlstar.classify (Ctlstar.fg q) with
  | [ [ { Ctlstar.gf_part = None; fg_part = Some (Ctlstar.Atom "q") } ] ] -> ()
  | _ -> Alcotest.fail "bad classification of FG q"

let test_classify_disjunct_pair () =
  match Ctlstar.classify (Ctlstar.POr (Ctlstar.gf p, Ctlstar.fg q)) with
  | [ [ { Ctlstar.gf_part = Some _; fg_part = Some _ } ] ] -> ()
  | _ -> Alcotest.fail "bad classification of GF p \\/ FG q"

let test_classify_conjunction () =
  let f = Ctlstar.PAnd (Ctlstar.gf p, Ctlstar.fg q) in
  match Ctlstar.classify f with
  | [ [ _; _ ] ] -> ()
  | _ -> Alcotest.fail "bad classification of a conjunction"

let test_classify_top_disjunction () =
  (* (GF p /\ GF q) \/ FG q — two disjuncts. *)
  let f =
    Ctlstar.POr (Ctlstar.PAnd (Ctlstar.gf p, Ctlstar.gf q), Ctlstar.fg q)
  in
  match Ctlstar.classify f with
  | [ [ _; _ ]; [ _ ] ] -> ()
  | _ -> Alcotest.fail "bad classification of a disjunction of conjunctions"

let test_classify_unsupported () =
  List.iter
    (fun f ->
      match Ctlstar.classify f with
      | _ -> Alcotest.fail "expected Unsupported"
      | exception Ctlstar.Unsupported _ -> ())
    [
      Ctlstar.X (Ctlstar.State p);
      Ctlstar.State p;
      Ctlstar.U (Ctlstar.State p, Ctlstar.State q);
      Ctlstar.G (Ctlstar.State p);
      Ctlstar.F (Ctlstar.State p);
    ]

(* ------------------------------------------------------------------ *)
(* Semantics: oracle by explicit resolution enumeration.               *)

(* All ways of picking one branch per conjunct. *)
let rec resolutions = function
  | [] -> [ [] ]
  | c :: rest ->
    let tails = resolutions rest in
    List.concat_map (fun t -> [ `GF c :: t; `FG c :: t ]) tails

let explicit_check (g : Explicit.Egraph.t) conjuncts =
  let n = g.Explicit.Egraph.nstates in
  let top = Array.make n true in
  let result = Array.make n false in
  List.iter
    (fun resolution ->
      let qs =
        List.fold_left
          (fun acc choice ->
            match choice with
            | `FG (_, fg) -> Array.map2 ( && ) acc fg
            | `GF _ -> acc)
          top resolution
      in
      let ps =
        List.filter_map
          (function `GF (gf, _) -> Some gf | `FG _ -> None)
          resolution
      in
      let g' =
        Explicit.Egraph.make ~nstates:n
          ~edges:
            (List.concat
               (List.init n (fun v ->
                    Array.to_list
                      (Array.map (fun w -> (v, w)) g.Explicit.Egraph.succ.(v)))))
          ~init:g.Explicit.Egraph.init ~fairness:ps ()
      in
      let eg = Explicit.Ectl.fair_eg g' qs in
      let ef = Explicit.Ectl.eu g' top eg in
      Array.iteri (fun v b -> if b then result.(v) <- true) ef)
    (resolutions conjuncts);
  result

(* Random conjunct lists over the shared atoms, as explicit masks +
   symbolic sets. *)
let conjuncts_gen (rm : Models.random_model) =
  let open QCheck2.Gen in
  let n = rm.Models.graph.Explicit.Egraph.nstates in
  let subset = list_size (int_bound n) (int_bound (n - 1)) in
  let* k = int_range 0 3 in
  let* parts = list_repeat k (pair subset subset) in
  return
    (List.map
       (fun (gf_states, fg_states) ->
         let gf_mask = Explicit.Egraph.mask_of_list ~nstates:n gf_states in
         let fg_mask = Explicit.Egraph.mask_of_list ~nstates:n fg_states in
         let set_of states =
           let bman = rm.Models.sym.Kripke.man in
           Bdd.disj bman
             (List.map
                (fun i -> Kripke.state_to_bdd rm.Models.sym (rm.Models.encode i))
                (List.sort_uniq compare states))
         in
         ((gf_mask, fg_mask),
          { Ctlstar.Gffg.gf = set_of gf_states; fg = set_of fg_states }))
       parts)

let model_and_conjuncts =
  QCheck2.Gen.(Models.random_model_gen ~max_states:6 () >>= fun rm ->
               conjuncts_gen rm >|= fun cs -> (rm, cs))

let prop_check_vs_oracle =
  prop "Gffg.check agrees with explicit resolution enumeration"
    model_and_conjuncts
    (fun (rm, cs) ->
      let masks = List.map fst cs and sets = List.map snd cs in
      let symbolic = Ctlstar.Gffg.check rm.Models.sym sets in
      let explicit = explicit_check rm.Models.graph masks in
      Models.sets_agree rm symbolic explicit)

let prop_witness_validates =
  prop "Gffg witnesses validate" model_and_conjuncts
    (fun (rm, cs) ->
      let m = rm.Models.sym in
      let sets = List.map snd cs in
      let sat = Ctlstar.Gffg.check m sets in
      List.for_all
        (fun st ->
          let tr = Ctlstar.Gffg.witness m sets ~start:st in
          Ctlstar.Gffg.witness_ok m sets tr
          && Kripke.Trace.nth tr 0 = st)
        (Kripke.states_in m sat))

let prop_witness_refused_outside =
  prop "Gffg witness refused outside the satisfaction set"
    model_and_conjuncts
    (fun (rm, cs) ->
      let m = rm.Models.sym in
      let sets = List.map snd cs in
      let sat = Ctlstar.Gffg.check m sets in
      let outside = Bdd.diff m.Kripke.man m.Kripke.space sat in
      List.for_all
        (fun st ->
          match Ctlstar.Gffg.witness m sets ~start:st with
          | _ -> false
          | exception Counterex.Witness.No_witness _ -> true)
        (Kripke.states_in m outside))

let prop_resolution_length =
  prop "resolve returns one choice per conjunct" model_and_conjuncts
    (fun (rm, cs) ->
      let m = rm.Models.sym in
      let sets = List.map snd cs in
      let sat = Ctlstar.Gffg.check m sets in
      List.for_all
        (fun st ->
          List.length (Ctlstar.Gffg.resolve m sets ~start:st)
          = List.length sets)
        (Kripke.states_in m sat))

(* ------------------------------------------------------------------ *)
(* check_state on formulas, against the CTL checker where they overlap. *)

let prop_e_gf_true_is_space =
  prop "E GF true holds everywhere (total models)"
    (Models.random_model_gen ())
    (fun rm ->
      let m = rm.Models.sym in
      let sat = Ctlstar.Gffg.check_state m (Ctlstar.E (Ctlstar.gf Ctlstar.True)) in
      Bdd.equal sat m.Kripke.space)

let prop_e_fg_matches_ctl =
  (* E FG p = EF EG p in CTL. *)
  prop "E FG p = EF EG p" (Models.random_model_gen ())
    (fun rm ->
      let m = rm.Models.sym in
      let star =
        Ctlstar.Gffg.check_state m (Ctlstar.E (Ctlstar.fg (Ctlstar.Atom "p")))
      in
      let ctl = Ctl.Check.sat m (Ctl.EF (Ctl.EG (Ctl.atom "p"))) in
      Bdd.equal star ctl)

let prop_a_dual =
  (* A GF p = !E FG !p. *)
  prop "A GF p = !(E FG !p)" (Models.random_model_gen ())
    (fun rm ->
      let m = rm.Models.sym in
      let lhs = Ctlstar.Gffg.check_state m (Ctlstar.A (Ctlstar.gf (Ctlstar.Atom "p"))) in
      let rhs =
        Bdd.diff m.Kripke.man m.Kripke.space
          (Ctlstar.Gffg.check_state m
             (Ctlstar.E (Ctlstar.fg (Ctlstar.Not (Ctlstar.Atom "p")))))
      in
      Bdd.equal lhs rhs)

let test_check_state_unsupported () =
  let rm_m = Models.counter 2 in
  match
    Ctlstar.Gffg.check_state rm_m
      (Ctlstar.E (Ctlstar.X (Ctlstar.State Ctlstar.True)))
  with
  | _ -> Alcotest.fail "expected Unsupported"
  | exception Ctlstar.Unsupported _ -> ()

let test_empty_conjuncts () =
  let m = Models.counter 2 in
  let sat = Ctlstar.Gffg.check m [] in
  Alcotest.(check bool) "E true = all states" true (Bdd.equal sat m.Kripke.space)

let test_false_conjunct () =
  let m = Models.counter 2 in
  let zero = Bdd.zero m.Kripke.man in
  let sat = Ctlstar.Gffg.check m [ { Ctlstar.Gffg.gf = zero; fg = zero } ] in
  Alcotest.(check bool) "E (GF false \\/ FG false) empty" true (Bdd.is_zero sat)

let suite =
  [
    Alcotest.test_case "classify GF" `Quick test_classify_gf;
    Alcotest.test_case "classify FG" `Quick test_classify_fg;
    Alcotest.test_case "classify GF|FG pair" `Quick test_classify_disjunct_pair;
    Alcotest.test_case "classify conjunction" `Quick test_classify_conjunction;
    Alcotest.test_case "classify disjunction of conjunctions" `Quick test_classify_top_disjunction;
    Alcotest.test_case "classify unsupported" `Quick test_classify_unsupported;
    prop_check_vs_oracle;
    prop_witness_validates;
    prop_witness_refused_outside;
    prop_resolution_length;
    prop_e_gf_true_is_space;
    prop_e_fg_matches_ctl;
    prop_a_dual;
    Alcotest.test_case "check_state unsupported" `Quick test_check_state_unsupported;
    Alcotest.test_case "empty conjunct list" `Quick test_empty_conjuncts;
    Alcotest.test_case "false conjunct" `Quick test_false_conjunct;
  ]
