(* Unit tests for the recovery engine: the ladder's rung policy and
   attempt log, SIGINT short-circuiting, the deterministic fault hooks
   in the BDD manager, and the explicit-state fallback's agreement with
   the symbolic checker. *)

let prop name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let breach_exn () =
  (* A real breach raised by a real bundle: create step-budgeted limits
     and burn them. *)
  let m = Bdd.create () in
  let l = Bdd.Limits.create ~step_budget:1 () in
  match
    Bdd.Limits.with_attached m l (fun () ->
        Bdd.Limits.step m l;
        Bdd.Limits.step m l)
  with
  | () -> Alcotest.fail "step budget did not trip"
  | exception (Bdd.Limits.Exhausted _ as e) -> e

let no_fits () = false
let nodes () = 0

(* ------------------------------------------------------------------ *)
(* Ladder policy.                                                      *)

let test_first_attempt_is_direct () =
  match
    Robust.Ladder.run ~retries:3
      ~cancelled:(fun () -> false)
      ~fits_explicit:no_fits ~live_nodes:nodes
      (fun ~attempt strategy -> (attempt, strategy))
  with
  | Ok ((1, Robust.Ladder.Direct), [ a ]) ->
    Alcotest.(check int) "log index" 1 a.Robust.Ladder.index;
    Alcotest.(check bool) "log success" true (a.Robust.Ladder.failure = None)
  | _ -> Alcotest.fail "first attempt was not a plain Direct"

let test_rung_order () =
  (* Fail every attempt; observe the escalation.  fits_explicit = false
     keeps the last rung symbolic. *)
  let e = breach_exn () in
  let seen = ref [] in
  (match
     Robust.Ladder.run ~retries:3
       ~cancelled:(fun () -> false)
       ~fits_explicit:no_fits ~live_nodes:nodes
       (fun ~attempt:_ strategy ->
         seen := strategy :: !seen;
         raise e)
   with
  | Ok _ -> Alcotest.fail "all attempts raised, yet the ladder succeeded"
  | Error (Robust.Ladder.Breach _, log) ->
    Alcotest.(check int) "four attempts logged" 4 (List.length log)
  | Error _ -> Alcotest.fail "breach misclassified");
  Alcotest.(check (list string))
    "rung escalation" [ "direct"; "gc-retry"; "reorder"; "degraded" ]
    (List.rev_map Robust.Ladder.strategy_name !seen)

let test_explicit_rung_is_last_and_gated () =
  let e = breach_exn () in
  let seen = ref [] in
  (match
     Robust.Ladder.run ~retries:2
       ~cancelled:(fun () -> false)
       ~fits_explicit:(fun () -> true)
       ~live_nodes:nodes
       (fun ~attempt:_ strategy ->
         seen := strategy :: !seen;
         raise e)
   with
  | Ok _ -> Alcotest.fail "unexpected success"
  | Error _ -> ());
  Alcotest.(check (list string))
    "explicit-state reserved for the final attempt"
    [ "direct"; "gc-retry"; "explicit-state" ]
    (List.rev_map Robust.Ladder.strategy_name !seen)

let test_success_stops_climbing () =
  let e = breach_exn () in
  let calls = ref 0 in
  match
    Robust.Ladder.run ~retries:5
      ~cancelled:(fun () -> false)
      ~fits_explicit:no_fits ~live_nodes:nodes
      (fun ~attempt strategy ->
        incr calls;
        if attempt < 3 then raise e else (attempt, strategy))
  with
  | Ok ((3, _), log) ->
    Alcotest.(check int) "three attempts made" 3 !calls;
    Alcotest.(check int) "three attempts logged" 3 (List.length log);
    let last = List.nth log 2 in
    Alcotest.(check bool) "final entry is the success" true
      (last.Robust.Ladder.failure = None)
  | Ok _ -> Alcotest.fail "wrong attempt succeeded"
  | Error _ -> Alcotest.fail "ladder gave up despite budget left"

let test_oom_classified () =
  match
    Robust.Ladder.run ~retries:1
      ~cancelled:(fun () -> false)
      ~fits_explicit:no_fits ~live_nodes:nodes
      (fun ~attempt _ -> if attempt = 1 then raise Out_of_memory else "ok")
  with
  | Ok ("ok", log) ->
    Alcotest.(check string) "first failure tag" "out-of-memory"
      (match (List.hd log).Robust.Ladder.failure with
      | Some f -> Robust.Ladder.failure_name f
      | None -> "none")
  | _ -> Alcotest.fail "Out_of_memory was not recovered"

let test_prior_seeds_main_domain () =
  (* The parallel path replays a crashed worker's spec locally: the
     crashed attempt arrives as [prior], and the next rung must be
     Main_domain with numbering continuing at 2. *)
  let prior =
    [
      {
        Robust.Ladder.index = 1;
        strategy = Robust.Ladder.Direct;
        failure = Some (Robust.Ladder.Crashed "worker domain died");
        live_nodes = 0;
        duration = 0.;
      };
    ]
  in
  match
    Robust.Ladder.run ~retries:1
      ~cancelled:(fun () -> false)
      ~fits_explicit:no_fits ~live_nodes:nodes ~prior
      (fun ~attempt strategy -> (attempt, strategy))
  with
  | Ok ((2, Robust.Ladder.Main_domain), log) ->
    Alcotest.(check int) "prior + local attempt logged" 2 (List.length log)
  | _ -> Alcotest.fail "crashed prior did not route to Main_domain"

(* Satellite: SIGINT short-circuits the ladder.  Cancellation raised
   *inside* an attempt surfaces as an Interrupted breach, which the
   ladder must re-raise, not retry; cancellation *between* attempts
   must prevent the next attempt from ever starting. *)
let test_cancel_short_circuits () =
  let m = Bdd.create () in
  let cancel = Atomic.make false in
  let l = Bdd.Limits.create ~cancel () in
  let interrupted_exn =
    match
      Bdd.Limits.with_attached m l (fun () ->
          Atomic.set cancel true;
          Bdd.Limits.step m l)
    with
    | () -> Alcotest.fail "cancel flag did not raise"
    | exception (Bdd.Limits.Exhausted _ as e) -> e
  in
  Atomic.set cancel false;
  (* Inside an attempt: re-raised immediately, zero retries consumed. *)
  let calls = ref 0 in
  (match
     Robust.Ladder.run ~retries:5
       ~cancelled:(fun () -> Atomic.get cancel)
       ~fits_explicit:no_fits ~live_nodes:nodes
       (fun ~attempt:_ _ ->
         incr calls;
         raise interrupted_exn)
   with
  | Ok _ | Error _ -> Alcotest.fail "Interrupted breach was swallowed"
  | exception Bdd.Limits.Exhausted _ -> ());
  Alcotest.(check int) "no attempt after the interrupt" 1 !calls;
  (* Between attempts: a recoverable failure with the flag set must not
     start attempt 2. *)
  let e = breach_exn () in
  let calls = ref 0 in
  (match
     Robust.Ladder.run ~retries:5
       ~cancelled:(fun () -> Atomic.get cancel)
       ~fits_explicit:no_fits ~live_nodes:nodes
       (fun ~attempt:_ _ ->
         incr calls;
         Atomic.set cancel true;
         raise e)
   with
  | Ok _ -> Alcotest.fail "unexpected success"
  | Error (Robust.Ladder.Breach _, log) ->
    Alcotest.(check int) "ladder stopped at the flag" 1 (List.length log)
  | Error _ -> Alcotest.fail "breach misclassified");
  Alcotest.(check int) "exactly one attempt ran" 1 !calls

(* ------------------------------------------------------------------ *)
(* Deterministic fault hooks.                                          *)

let test_fault_mk_fires_once () =
  let m = Bdd.create () in
  Bdd.Fault.arm m ~site:Bdd.Fault.Mk ~after:3;
  let mk_nodes () =
    (* fresh conjunctions force genuinely new nodes *)
    ignore
      (Bdd.conj m (List.init 6 (fun i -> Bdd.var m i)))
  in
  (match mk_nodes () with
  | () -> Alcotest.fail "armed mk fault did not fire"
  | exception Out_of_memory -> ());
  Alcotest.(check int) "fired counter" 1 (Bdd.Fault.fired m);
  Alcotest.(check bool) "disarmed after firing" true (Bdd.Fault.armed m = None);
  (* The very same work now completes: one-shot semantics. *)
  mk_nodes ()

let test_fault_step_breaches () =
  let m = Bdd.create () in
  let l = Bdd.Limits.create () in
  Bdd.Fault.arm m ~site:Bdd.Fault.Step ~after:2;
  match
    Bdd.Limits.with_attached m l (fun () ->
        Bdd.Limits.step m l;
        Bdd.Limits.step m l)
  with
  | () -> Alcotest.fail "armed step fault did not fire"
  | exception Bdd.Limits.Exhausted info -> (
    match info.Bdd.Limits.breach with
    | Bdd.Limits.Deadline _ -> ()
    | b ->
      Alcotest.failf "step fault raised the wrong breach: %a"
        Bdd.Limits.pp_breach b)

let test_fault_arm_validation () =
  let m = Bdd.create () in
  (match Bdd.Fault.arm m ~site:Bdd.Fault.Gc ~after:0 with
  | () -> Alcotest.fail "after:0 accepted"
  | exception Invalid_argument _ -> ());
  Alcotest.(check (option string)) "site round-trip" (Some "probe")
    (Option.map Bdd.Fault.site_to_string
       (Bdd.Fault.site_of_string "probe"))

(* ------------------------------------------------------------------ *)
(* Worker respawn.                                                     *)

let test_pool_respawns_after_crash () =
  let pool = Parallel.Pool.create 2 in
  Parallel.Pool.chaos_crash_after pool 1;
  let futures =
    List.init 8 (fun i -> Parallel.Pool.submit pool (fun () -> i * i))
  in
  let crashed = ref 0 and done_ = ref 0 in
  List.iteri
    (fun i fut ->
      match Parallel.Pool.await fut with
      | Ok v ->
        incr done_;
        Alcotest.(check int) "task result" (i * i) v
      | Error Parallel.Pool.Worker_crashed -> incr crashed
      | Error e -> raise e)
    futures;
  Parallel.Pool.shutdown pool;
  Alcotest.(check int) "exactly one task lost" 1 !crashed;
  Alcotest.(check int) "all other tasks completed" 7 !done_;
  Alcotest.(check int) "one respawn recorded" 1
    (Parallel.Pool.respawns pool)

(* ------------------------------------------------------------------ *)
(* Explicit-state fallback agrees with the symbolic checker.           *)

let with_formula ?(nfair = 1) () =
  QCheck2.Gen.pair (Models.random_model_gen ~nfair ()) Models.formula_gen

let prop_fallback_agrees =
  prop "fallback verdicts match symbolic (fair)" ~count:200
    (with_formula ())
    (fun (rm, f) ->
      let m = rm.Models.sym in
      let fb = Robust.Fallback.build m in
      Robust.Fallback.holds fb ~fair:true f = Ctl.Fair.holds m f)

let prop_fallback_agrees_plain =
  prop "fallback verdicts match symbolic (plain)" ~count:200
    (with_formula ~nfair:0 ())
    (fun (rm, f) ->
      let m = rm.Models.sym in
      let fb = Robust.Fallback.build m in
      Robust.Fallback.holds fb ~fair:false f = Ctl.Check.holds m f)

let prop_fallback_traces_certify =
  prop "fallback traces certify on the symbolic model" ~count:200
    (with_formula ())
    (fun (rm, f) ->
      let m = rm.Models.sym in
      let fb = Robust.Fallback.build m in
      if Robust.Fallback.holds fb ~fair:true f then
        match Robust.Fallback.witness fb f with
        | None -> true
        | Some tr -> (
          match Robust.Certify.witness m f tr with
          | Ok () -> true
          | Error msg ->
            QCheck2.Test.fail_reportf
              "fallback witness failed certification: %s" msg)
      else
        match Robust.Fallback.counterexample fb f with
        | None -> true
        | Some tr -> (
          match Robust.Certify.counterexample m f tr with
          | Ok () -> true
          | Error msg ->
            QCheck2.Test.fail_reportf
              "fallback counterexample failed certification: %s" msg))

let test_fits_threshold () =
  let m = (Models.mutex ()).Models.m in
  Alcotest.(check bool) "small model fits" true (Robust.Fallback.fits m);
  Alcotest.(check bool) "threshold 1 excludes it" false
    (Robust.Fallback.fits ~threshold:1 m)

let suite =
  [
    Alcotest.test_case "attempt 1 is Direct" `Quick
      test_first_attempt_is_direct;
    Alcotest.test_case "rung escalation order" `Quick test_rung_order;
    Alcotest.test_case "explicit rung gated and last" `Quick
      test_explicit_rung_is_last_and_gated;
    Alcotest.test_case "success stops climbing" `Quick
      test_success_stops_climbing;
    Alcotest.test_case "Out_of_memory recovered" `Quick test_oom_classified;
    Alcotest.test_case "crashed prior routes to Main_domain" `Quick
      test_prior_seeds_main_domain;
    Alcotest.test_case "SIGINT short-circuits the ladder" `Quick
      test_cancel_short_circuits;
    Alcotest.test_case "mk fault fires once" `Quick test_fault_mk_fires_once;
    Alcotest.test_case "step fault breaches as deadline" `Quick
      test_fault_step_breaches;
    Alcotest.test_case "fault arming validated" `Quick
      test_fault_arm_validation;
    Alcotest.test_case "pool respawns after a crash" `Quick
      test_pool_respawns_after_crash;
    Alcotest.test_case "fits threshold" `Quick test_fits_threshold;
    prop_fallback_agrees;
    prop_fallback_agrees_plain;
    prop_fallback_traces_certify;
  ]
