let () =
  let { Models.m; _ } = Models.mutex () in
  match Kripke.states_in m m.Kripke.init with
  | init :: _ ->
    let next st = Option.get (Kripke.pick_successor m st m.Kripke.space) in
    let s2 = next init in
    let tr = Kripke.Trace.lasso ~prefix:[ init ] ~cycle:[ s2 ] in
    print_string (Format.asprintf "%a" (Kripke.Trace.pp m) tr)
  | [] -> ()
