(* End-to-end contract of the smv_check executable: exit codes
   (0 all hold / 1 some fail / 2 resource limit / 3 input error),
   per-spec fault isolation, and flag validation.  The binary is built
   as a dependency and invoked as a subprocess. *)

let exe = Filename.concat (Filename.concat ".." "bin") "smv_check.exe"

let run args =
  let cmd = Filename.quote_command exe args ^ " 2>&1" in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n
  in
  (code, Buffer.contents buf)

let contains ~needle haystack =
  Astring.String.is_infix ~affix:needle haystack

let model_path name =
  Filename.concat (Filename.concat (Filename.concat ".." "examples") "models")
    name

let temp_model source =
  let path = Filename.temp_file "smv_cli_test" ".smv" in
  let oc = open_out path in
  output_string oc source;
  close_out oc;
  path

let all_true_model =
  "MODULE main\n\
   VAR x : boolean;\n\
   ASSIGN\n\
   \  init(x) := FALSE;\n\
   \  next(x) := x;\n\
   SPEC AG !x\n\
   SPEC EF !x\n"

let test_exit_all_hold () =
  let path = temp_model all_true_model in
  let code, out = run [ path ] in
  Sys.remove path;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "both specs true" true
    (contains ~needle:"is true" out && not (contains ~needle:"is false" out))

let test_exit_some_fail () =
  let code, out = run [ model_path "mutex.smv" ] in
  Alcotest.(check int) "exit 1" 1 code;
  Alcotest.(check bool) "a false verdict is reported" true
    (contains ~needle:"is false" out)

let test_exit_limit_and_isolation () =
  let code, out = run [ model_path "counter26.smv"; "--step-limit"; "50" ] in
  Alcotest.(check int) "exit 2" 2 code;
  Alcotest.(check bool) "first spec undetermined" true
    (contains ~needle:"UNDETERMINED (step budget of 50 exceeded" out);
  (* fault isolation: the trivial second spec is still decided *)
  Alcotest.(check bool) "second spec still checked" true
    (contains ~needle:"(AG (b0 | !b0)) is true" out)

let test_timeout_trips () =
  let code, out = run [ model_path "counter26.smv"; "--timeout"; "1" ] in
  Alcotest.(check int) "exit 2" 2 code;
  Alcotest.(check bool) "timeout reported" true
    (contains ~needle:"UNDETERMINED (timeout after" out);
  Alcotest.(check bool) "second spec still checked" true
    (contains ~needle:"(AG (b0 | !b0)) is true" out)

let test_exit_input_errors () =
  let code, _ = run [ "no_such_model.smv" ] in
  Alcotest.(check int) "missing file: exit 3" 3 code;
  let bad = temp_model "MODULE main\nVAR x (\n" in
  let code, _ = run [ bad ] in
  Sys.remove bad;
  Alcotest.(check int) "syntax error: exit 3" 3 code;
  let path = temp_model all_true_model in
  let code, out = run [ path; "--simulate"; "0" ] in
  let code2, out2 = run [ path; "--timeout"; "0" ] in
  let code3, _ = run [ path; "--node-limit"; "0" ] in
  Sys.remove path;
  Alcotest.(check int) "--simulate 0: exit 3" 3 code;
  Alcotest.(check bool) "--simulate message" true
    (contains ~needle:"STEPS must be positive" out);
  Alcotest.(check int) "--timeout 0: exit 3" 3 code2;
  Alcotest.(check bool) "--timeout message" true
    (contains ~needle:"SECS must be positive" out2);
  Alcotest.(check int) "--node-limit 0: exit 3" 3 code3

let test_recovery_flags_validated () =
  let path = temp_model all_true_model in
  (* the = form: a bare "-1" would be eaten by cmdliner's own option
     parsing before our validation sees it *)
  let code, out = run [ path; "--retries=-1" ] in
  Alcotest.(check int) "--retries -1: exit 3" 3 code;
  Alcotest.(check bool) "--retries message" true
    (contains ~needle:"N must be >= 0" out);
  let code, out = run [ path; "--retry-budget-factor"; "0.5" ] in
  Alcotest.(check int) "--retry-budget-factor 0.5: exit 3" 3 code;
  Alcotest.(check bool) "factor message" true
    (contains ~needle:"F must be >= 1.0" out);
  let code, _ = run [ path; "--inject"; "bogus" ] in
  Alcotest.(check int) "--inject without a colon: exit 3" 3 code;
  let code, out = run [ path; "--inject"; "quantum:3" ] in
  Alcotest.(check int) "--inject unknown site: exit 3" 3 code;
  Alcotest.(check bool) "unknown-site message" true
    (contains ~needle:"unknown site" out);
  let code, _ = run [ path; "--inject"; "mk:0" ] in
  Alcotest.(check int) "--inject zero count: exit 3" 3 code;
  let code, out = run [ path; "--inject"; "worker:1" ] in
  Alcotest.(check int) "--inject worker without --jobs: exit 3" 3 code;
  Alcotest.(check bool) "worker-inject message" true
    (contains ~needle:"requires a parallel run" out);
  Sys.remove path

(* --retries must decide the budget-starved counter12 spec that the
   plain path leaves UNDETERMINED, annotate the recovery, certify the
   trace, and exit 0; --retries 0 keeps the old contract. *)
let test_retries_recover_starved_spec () =
  let code, out =
    run [ model_path "counter12.smv"; "--step-limit"; "3"; "-q" ]
  in
  Alcotest.(check int) "flat-fail exits 2" 2 code;
  Alcotest.(check bool) "flat-fail is UNDETERMINED" true
    (contains ~needle:"UNDETERMINED (step budget" out);
  let code, out =
    run
      [ model_path "counter12.smv"; "--step-limit"; "3"; "--retries"; "2";
        "-q" ]
  in
  Alcotest.(check int) "recovered run exits 0" 0 code;
  Alcotest.(check bool) "recovery annotated" true
    (contains ~needle:"(recovered: attempt" out);
  Alcotest.(check bool) "recovered trace certified" true
    (contains ~needle:"certificate: trace independently validated" out)

(* --certify on a clean run: every emitted trace re-validates, the
   exit code is unchanged. *)
let test_certify_clean_run () =
  let code, out = run [ model_path "mutex.smv"; "--certify" ] in
  Alcotest.(check int) "certified mutex still exits 1" 1 code;
  Alcotest.(check bool) "counterexample certified" true
    (contains ~needle:"certificate: trace independently validated" out);
  Alcotest.(check bool) "no certification failure" true
    (not (contains ~needle:"CERTIFICATION FAILED" out))

let test_inject_contained_and_recovered () =
  (* Without retries the injected fault surfaces as UNDETERMINED. *)
  let code, out =
    run [ model_path "mutex.smv"; "--inject"; "mk:20"; "-q" ]
  in
  Alcotest.(check int) "unladdered fault exits 2" 2 code;
  Alcotest.(check bool) "fault reported as internal" true
    (contains ~needle:"UNDETERMINED (internal error" out);
  (* With retries the same run recovers to the fault-free exit code. *)
  let code, out =
    run
      [ model_path "mutex.smv"; "--inject"; "mk:20"; "--retries"; "1"; "-q" ]
  in
  Alcotest.(check int) "recovered fault exits 1" 1 code;
  Alcotest.(check bool) "no undetermined left" true
    (not (contains ~needle:"UNDETERMINED" out))

let test_simulate_runs () =
  let path = temp_model all_true_model in
  let code, out = run [ path; "--simulate"; "4"; "--seed"; "7"; "-q" ] in
  Sys.remove path;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "simulation printed" true
    (contains ~needle:"random simulation (4 steps, seed 7)" out)

let suite =
  [
    Alcotest.test_case "exit 0 when all specifications hold" `Quick
      test_exit_all_hold;
    Alcotest.test_case "exit 1 when a specification fails" `Quick
      test_exit_some_fail;
    Alcotest.test_case "exit 2 + isolation on a step budget" `Quick
      test_exit_limit_and_isolation;
    Alcotest.test_case "exit 2 + isolation on --timeout" `Slow
      test_timeout_trips;
    Alcotest.test_case "exit 3 on input errors" `Quick
      test_exit_input_errors;
    Alcotest.test_case "recovery flags validated" `Quick
      test_recovery_flags_validated;
    Alcotest.test_case "--retries recovers a starved spec" `Slow
      test_retries_recover_starved_spec;
    Alcotest.test_case "--certify on a clean run" `Quick
      test_certify_clean_run;
    Alcotest.test_case "--inject contained and recovered" `Quick
      test_inject_contained_and_recovered;
    Alcotest.test_case "--simulate walks symbolically" `Quick
      test_simulate_runs;
  ]
