(* Bdd.Snapshot and Server.Persist: the durable warm-state layer.

   The contract under test is handle preservation — any [Bdd.t] valid
   against the dumped manager must be valid, with identical semantics,
   against the loaded one — plus strict validation: a flipped bit, a
   truncated file or a bad magic must raise [Corrupt], never produce a
   quietly wrong manager. *)

module Cache = Server.Cache
module Persist = Server.Persist

let mutex_source =
  {|MODULE main
VAR p : {idle, try, crit};
VAR q : boolean;
ASSIGN
  init(p) := idle;
  next(p) := case
    p = idle : {idle, try};
    p = try  : {try, crit};
    p = crit : idle;
  esac;
  init(q) := FALSE;
  next(q) := !q;
SPEC AG !(p = crit & p = idle)
SPEC EF (p = crit)
|}

(* A manager with some structure in it: a few variables, a formula,
   and a registered root so the nodes survive the dumped manager's
   own GC discipline. *)
let build_manager () =
  let man = Bdd.create ~unique_size:64 () in
  let x = Bdd.var man 0
  and y = Bdd.var man 1
  and z = Bdd.var man 2
  and w = Bdd.var man 3 in
  let f = Bdd.or_ man (Bdd.and_ man x y) (Bdd.xor man z w) in
  let g = Bdd.ite man x (Bdd.not_ man z) (Bdd.imp man y w) in
  let _root = Bdd.add_root man (fun () -> [ f; g ]) in
  (man, f, g)

let assignments =
  (* All 16 valuations of 4 variables. *)
  List.init 16 (fun i -> fun v -> i land (1 lsl v) <> 0)

let same_semantics man man' t =
  List.for_all (fun a -> Bdd.eval man t a = Bdd.eval man' t a) assignments

let test_roundtrip () =
  let man, f, g = build_manager () in
  let blob = Bdd.Snapshot.dump man in
  let man' = Bdd.Snapshot.load blob in
  Alcotest.(check int) "live node count preserved" (Bdd.live_nodes man)
    (Bdd.live_nodes man');
  Alcotest.(check bool) "f evaluates identically" true
    (same_semantics man man' f);
  Alcotest.(check bool) "g evaluates identically" true
    (same_semantics man man' g);
  Alcotest.(check int) "f has the same shape" (Bdd.size man f)
    (Bdd.size man' f);
  (* The loaded manager passes its own GC without losing anything the
     static root pins. *)
  let live = Bdd.live_nodes man' in
  ignore (Bdd.gc man');
  Alcotest.(check bool) "snapshot root survives gc" true
    (Bdd.live_nodes man' <= live && Bdd.eval man' f (fun _ -> true)
     = Bdd.eval man f (fun _ -> true))

let test_zero_new_nodes () =
  let man, f, g = build_manager () in
  let blob = Bdd.Snapshot.dump man in
  let man' = Bdd.Snapshot.load blob in
  let before = Bdd.count_nodes man' in
  (* Re-deriving the same functions must re-find every node in the
     rebuilt unique tables: the whole point of shipping the columns. *)
  let x = Bdd.var man' 0
  and y = Bdd.var man' 1
  and z = Bdd.var man' 2
  and w = Bdd.var man' 3 in
  let f' = Bdd.or_ man' (Bdd.and_ man' x y) (Bdd.xor man' z w) in
  let g' = Bdd.ite man' x (Bdd.not_ man' z) (Bdd.imp man' y w) in
  Alcotest.(check int) "0 new nodes re-deriving snapshotted functions"
    before (Bdd.count_nodes man');
  Alcotest.(check bool) "re-derivation returns the dumped handles" true
    (Bdd.equal f f' && Bdd.equal g g')

let test_order_and_pairs () =
  let man, _, _ = build_manager () in
  Bdd.Reorder.set_pairs man [ (0, 1); (2, 3) ];
  Bdd.Reorder.swap man 0;
  let blob = Bdd.Snapshot.dump man in
  let man' = Bdd.Snapshot.load blob in
  Alcotest.(check (list (pair int int))) "sift pairs preserved"
    (Bdd.Reorder.pairs man) (Bdd.Reorder.pairs man');
  Alcotest.(check (array int)) "variable order preserved"
    (Bdd.Reorder.order man) (Bdd.Reorder.order man')

let flip blob i =
  let b = Bytes.of_string blob in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  Bytes.to_string b

let expect_corrupt what blob =
  match Bdd.Snapshot.load blob with
  | _ -> Alcotest.failf "%s: load accepted a corrupt snapshot" what
  | exception Bdd.Snapshot.Corrupt _ -> ()

let test_corruption_rejected () =
  let man, _, _ = build_manager () in
  let blob = Bdd.Snapshot.dump man in
  expect_corrupt "bad magic" (flip blob 0);
  (* Flip one byte in the digest, then in the payload: both sides of
     the checksum comparison. *)
  expect_corrupt "flipped digest byte" (flip blob 10);
  expect_corrupt "flipped payload byte" (flip blob (String.length blob - 3));
  expect_corrupt "truncated" (String.sub blob 0 (String.length blob / 2));
  expect_corrupt "truncated to header" (String.sub blob 0 24);
  expect_corrupt "empty" ""

let test_save_restore_file () =
  let man, f, _ = build_manager () in
  let path = Filename.temp_file "snap_test" ".bdd" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Bdd.Snapshot.save man ~path;
      let man' = Bdd.Snapshot.restore ~path in
      Alcotest.(check bool) "restored file evaluates identically" true
        (same_semantics man man' f);
      (* No temp file left behind by the atomic write. *)
      let dir = Filename.dirname path and base = Filename.basename path in
      let leftovers =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun n ->
               Astring.String.is_prefix ~affix:(base ^ ".tmp") n)
      in
      Alcotest.(check (list string)) "no temp files leak" [] leftovers)

(* ------------------------------------------------------------------ *)
(* Persist: the snapshot wrapped with the compiled artifact. *)

let check_all compiled =
  (* Run every spec and return the concatenated report text: the
     byte-identity oracle. *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let opts =
    {
      Server.Engine.fair = true;
      fair_engine = Ctl.Fair.El;
      traces = true;
      stats = false;
      certify = false;
      debug = false;
      timeout = None;
      node_limit = None;
      step_limit = None;
      retries = 0;
      retry_factor = 2.0;
      cancel = Atomic.make false;
    }
  in
  List.iter
    (fun spec ->
      ignore
        (Server.Engine.check_one ppf compiled.Smv.Compile.model ~opts
           ~clusters:(fun () -> compiled.Smv.Compile.clusters)
           spec))
    compiled.Smv.Compile.specs;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let with_state_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "persist_test_%d_%d" (Unix.getpid ()) (Random.int 10000))
  in
  Fun.protect
    ~finally:(fun () ->
      match Sys.readdir dir with
      | files ->
        Array.iter
          (fun n -> try Sys.remove (Filename.concat dir n) with _ -> ())
          files;
        (try Unix.rmdir dir with Unix.Unix_error _ -> ())
      | exception Sys_error _ -> ())
    (fun () -> f dir)

let test_persist_roundtrip () =
  with_state_dir @@ fun dir ->
  let compiled = Smv.load_string mutex_source in
  (* Warm the model the way the daemon does before a check: the
     memoised reachable set is part of what the snapshot preserves. *)
  ignore (Kripke.reachable compiled.Smv.Compile.model);
  let expected = check_all compiled in
  let key =
    Cache.digest ~source:mutex_source ~partitioned:false ~static_order:false
  in
  let p = Persist.create ~dir ~debug:false in
  Alcotest.(check bool) "save_entry succeeds" true
    (Persist.save_entry p ~key ~uses:1 compiled);
  Alcotest.(check int) "snapshot counted" 1 (Persist.counters p).Persist.snapshots;
  let path = Filename.concat dir (key ^ ".warm") in
  Alcotest.(check bool) "warm file exists" true (Sys.file_exists path);
  let key', compiled' = Persist.load_entry path in
  Alcotest.(check string) "key roundtrips" key key';
  Alcotest.(check string) "verdicts byte-identical after reload" expected
    (check_all compiled');
  (* The reloaded artifact is warm: checking it a second time reuses
     the memoised reachable set with no new nodes. *)
  let man = compiled'.Smv.Compile.model.Kripke.man in
  Alcotest.(check bool) "reach memo survives the roundtrip" true
    (Kripke.reach_memo compiled'.Smv.Compile.model <> None);
  let nodes = Bdd.count_nodes man in
  ignore (check_all compiled');
  Alcotest.(check int) "0 new nodes on a warm recheck" nodes
    (Bdd.count_nodes man)

let test_persist_rehydrate_and_quarantine () =
  with_state_dir @@ fun dir ->
  let compiled = Smv.load_string mutex_source in
  ignore (check_all compiled);
  let key =
    Cache.digest ~source:mutex_source ~partitioned:false ~static_order:false
  in
  let p = Persist.create ~dir ~debug:false in
  Alcotest.(check bool) "save" true (Persist.save_entry p ~key ~uses:1 compiled);
  (* Drop two bad files beside the good one: a truncated copy and a
     bit-flipped copy.  Rehydration must seed the good entry and
     quarantine both bad ones without raising. *)
  let good = Filename.concat dir (key ^ ".warm") in
  let blob =
    let ic = open_in_bin good in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let write path s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  in
  write (Filename.concat dir "truncated.warm")
    (String.sub blob 0 (String.length blob / 3));
  write (Filename.concat dir "flipped.warm") (flip blob 12);
  let p' = Persist.create ~dir ~debug:false in
  let cache = Cache.create ~capacity:4 in
  let restored = Persist.rehydrate p' cache in
  Alcotest.(check int) "one entry restored" 1 restored;
  Alcotest.(check int) "two files quarantined" 2
    (Persist.counters p').Persist.quarantines;
  Alcotest.(check bool) "restored entry is warm in the pool" true
    (Cache.is_warm cache ~key);
  Alcotest.(check bool) "bad files renamed out of the way" true
    (Sys.file_exists (Filename.concat dir "truncated.warm.quarantined")
    && Sys.file_exists (Filename.concat dir "flipped.warm.quarantined")
    && not (Sys.file_exists (Filename.concat dir "truncated.warm")));
  (* A second rehydrate finds only the good file — quarantined files
     do not come back. *)
  let p'' = Persist.create ~dir ~debug:false in
  let cache2 = Cache.create ~capacity:4 in
  Alcotest.(check int) "quarantined files stay gone" 1
    (Persist.rehydrate p'' cache2)

let test_persist_dirty_tracking () =
  with_state_dir @@ fun dir ->
  let compiled = Smv.load_string mutex_source in
  let key =
    Cache.digest ~source:mutex_source ~partitioned:false ~static_order:false
  in
  let p = Persist.create ~dir ~debug:false in
  let cache = Cache.create ~capacity:4 in
  Alcotest.(check bool) "seed" true (Cache.seed cache ~key ~compiled);
  Persist.tick p cache;
  Alcotest.(check int) "first tick writes" 1 (Persist.counters p).Persist.snapshots;
  Persist.tick p cache;
  Alcotest.(check int) "unchanged entry not rewritten" 1
    (Persist.counters p).Persist.snapshots;
  (* Touch the entry (acquire/release bumps the use count): the next
     tick must rewrite it. *)
  let e, warm = Cache.acquire cache ~key in
  Alcotest.(check bool) "seeded entry is warm" true warm;
  Cache.release cache e;
  Persist.tick p cache;
  Alcotest.(check int) "used entry rewritten" 2
    (Persist.counters p).Persist.snapshots

let suite =
  [
    Alcotest.test_case "snapshot: dump/load roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "snapshot: 0 new nodes re-deriving" `Quick
      test_zero_new_nodes;
    Alcotest.test_case "snapshot: order and sift pairs" `Quick
      test_order_and_pairs;
    Alcotest.test_case "snapshot: corruption rejected" `Quick
      test_corruption_rejected;
    Alcotest.test_case "snapshot: atomic save/restore" `Quick
      test_save_restore_file;
    Alcotest.test_case "persist: artifact roundtrip" `Quick
      test_persist_roundtrip;
    Alcotest.test_case "persist: rehydrate + quarantine" `Quick
      test_persist_rehydrate_and_quarantine;
    Alcotest.test_case "persist: dirty tracking" `Quick
      test_persist_dirty_tracking;
  ]
