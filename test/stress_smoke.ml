(* Overload-protection smoke test for --serve, run via
   `dune build @stress-smoke` (wired into the default `dune runtest`):

   - flood: 200 concurrent checks against a 2-worker server with
     --max-pending 8 get exactly 200 replies — a mix of real check
     replies and structured 'overloaded' sheds carrying retry_after_ms
     — and none are lost;
   - a status probe on a second connection answers promptly while the
     flood is in full swing (it is handled inline by the reader, never
     queued behind checks);
   - SIGTERM mid-flood still drains: every admitted request replies
     and the server exits 0;
   - a path occupied by a regular file refuses to serve (exit 3) and
     the file survives;
   - duplicate in-flight ids and per-connection in-flight caps are
     refused with structured replies;
   - server-side default budgets apply to budget-less requests and
     request budgets still win;
   - the memory watchdog evicts idle warm models past --mem-high-water
     and counts it in the status reply.

   Like serve_smoke, this links the server library for Frame/Json —
   under test is the *process* behaviour. *)

module Json = Server.Json
module Frame = Server.Frame

let exe = Filename.concat (Filename.concat ".." "bin") "smv_check.exe"

let model_path name =
  Filename.concat (Filename.concat (Filename.concat ".." "examples") "models")
    name

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let failures = ref 0

let expect what cond =
  if cond then Printf.printf "ok: %s\n%!" what
  else begin
    incr failures;
    Printf.printf "FAIL: %s\n%!" what
  end

type server = {
  pid : int;
  to_server : Unix.file_descr;
  from_server : Unix.file_descr;
}

let spawn_server args =
  let stdin_r, stdin_w = Unix.pipe ~cloexec:false () in
  let stdout_r, stdout_w = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process exe
      (Array.of_list (exe :: "--serve" :: args))
      stdin_r stdout_w Unix.stderr
  in
  Unix.close stdin_r;
  Unix.close stdout_w;
  { pid; to_server = stdin_w; from_server = stdout_r }

let send srv obj =
  try Frame.write srv.to_server (Json.to_string obj)
  with Frame.Closed -> ()

let recv srv =
  match Frame.read srv.from_server with
  | None -> None
  | Some payload -> (
    match Json.of_string payload with
    | Ok v -> Some v
    | Error e -> failwith ("server sent bad JSON: " ^ e))

let wait_exit srv =
  (try Unix.close srv.to_server with Unix.Unix_error _ -> ());
  (try Unix.close srv.from_server with Unix.Unix_error _ -> ());
  match Unix.waitpid [] srv.pid with
  | _, Unix.WEXITED n -> n
  | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) -> 128 + n

let str k v = Option.bind (Json.member k v) Json.to_str
let num k v = Option.bind (Json.member k v) Json.to_num

let check_req ?(options = []) ~id model_src =
  Json.Obj
    ([
       ("op", Json.Str "check");
       ("id", Json.Str id);
       ("model", Json.Str model_src);
     ]
    @ if options = [] then [] else [ ("options", Json.Obj options) ])

(* ------------------------------------------------------------------ *)
(* 1. Flood past --max-pending: every frame gets exactly one reply,
   and a status probe on a second connection answers mid-flood. *)

let spawn_socket_server args =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "stress_smoke_%d.sock" (Unix.getpid ()))
  in
  let null_in = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let null_out = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process exe
      (Array.of_list ((exe :: "--serve" :: "--socket" :: path :: args)))
      null_in null_out Unix.stderr
  in
  Unix.close null_in;
  Unix.close null_out;
  let rec connect tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error _ ->
      Unix.close fd;
      if tries = 0 then failwith "socket never came up"
      else begin
        Unix.sleepf 0.1;
        connect (tries - 1)
      end
  in
  (pid, path, connect)

let test_flood_and_status () =
  let flood_n = 200 in
  let pid, _path, connect =
    spawn_socket_server [ "--jobs"; "2"; "--max-pending"; "8" ]
  in
  let flood_fd = connect 50 in
  let probe_fd = connect 50 in
  let flood = { pid; to_server = flood_fd; from_server = flood_fd } in
  let probe = { pid; to_server = probe_fd; from_server = probe_fd } in
  let src = read_file (model_path "mutex.smv") in
  let ids = List.init flood_n (Printf.sprintf "flood-%d") in
  (* Write from a separate thread: 200 frames can exceed the socket
     buffer while the server is busy replying, and a single thread
     doing both would deadlock against it. *)
  let writer =
    Thread.create
      (fun () -> List.iter (fun id -> send flood (check_req ~id src)) ids)
      ()
  in
  (* Mid-flood health probe on its own connection. *)
  Unix.sleepf 0.05;
  let t0 = Unix.gettimeofday () in
  send probe (Json.Obj [ ("op", Json.Str "status") ]);
  let status = recv probe in
  let probe_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  (match status with
  | Some v ->
    expect
      (Printf.sprintf "status probe answers mid-flood (%.1f ms)" probe_ms)
      (probe_ms < 1000.);
    expect "status probe reports ok" (str "status" v = Some "ok");
    expect "status probe reports the worker count" (num "workers" v = Some 2.);
    expect "status probe reports max_pending" (num "max_pending" v = Some 8.)
  | None -> expect "status probe answers mid-flood" false);
  (* Exactly one reply per flood frame, in whatever order. *)
  let pending = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace pending id ()) ids;
  let oks = ref 0 and sheds = ref 0 and bad = ref 0 in
  let rec collect () =
    if Hashtbl.length pending > 0 then
      match recv flood with
      | None -> failwith "server closed the stream with replies pending"
      | Some v ->
        (match str "id" v with
        | Some id when Hashtbl.mem pending id -> (
          Hashtbl.remove pending id;
          match str "status" v with
          | Some "ok" -> incr oks
          | Some "overloaded" ->
            incr sheds;
            let retry = num "retry_after_ms" v in
            if
              not
                (str "reason" v = Some "queue"
                && (match retry with Some r -> r >= 1. | None -> false)
                && num "queue_depth" v <> None)
            then incr bad
          | _ -> incr bad)
        | _ -> ());
        collect ()
  in
  collect ();
  Thread.join writer;
  expect
    (Printf.sprintf "all %d flood frames answered (%d ok, %d shed)" flood_n
       !oks !sheds)
    (!oks + !sheds = flood_n);
  expect "some checks were served" (!oks >= 1);
  expect "some checks were shed" (!sheds >= 1);
  expect "every shed reply carries reason/queue_depth/retry_after_ms"
    (!bad = 0);
  (* The final status must account for the sheds we counted. *)
  send probe (Json.Obj [ ("op", Json.Str "status") ]);
  (match recv probe with
  | Some v -> (
    match Json.member "counters" v with
    | Some c ->
      expect "status counters match observed sheds"
        (Option.bind (Json.member "shed_queue" c) Json.to_num
        = Some (float_of_int !sheds))
    | None -> expect "status reply has counters" false)
  | None -> expect "status probe answers post-flood" false);
  send probe (Json.Obj [ ("op", Json.Str "shutdown") ]);
  (try Unix.close probe_fd with Unix.Unix_error _ -> ());
  expect "server exits 0 after the flood" (wait_exit flood = 0)

(* ------------------------------------------------------------------ *)
(* 2. SIGTERM mid-flood drains: every reply that comes back is
   well-formed and the exit is clean. *)

let test_sigterm_mid_flood () =
  let srv = spawn_server [ "--jobs"; "1"; "--max-pending"; "4" ] in
  let src = read_file (model_path "mutex.smv") in
  let ids = List.init 50 (Printf.sprintf "term-%d") in
  let writer =
    Thread.create
      (fun () -> List.iter (fun id -> send srv (check_req ~id src)) ids)
      ()
  in
  Unix.sleepf 0.1;
  Unix.kill srv.pid Sys.sigterm;
  Thread.join writer;
  let replies = ref 0 and bad = ref 0 in
  let rec drain () =
    match recv srv with
    | Some v ->
      incr replies;
      (match (str "id" v, str "status" v) with
      | Some id, Some ("ok" | "overloaded") when List.mem id ids -> ()
      | _ -> incr bad);
      drain ()
    | None -> ()
    | exception _ -> ()
  in
  drain ();
  expect
    (Printf.sprintf "replies before the drain are well-formed (%d received)"
       !replies)
    (!replies >= 1 && !bad = 0);
  expect "SIGTERM mid-flood drains to exit 0" (wait_exit srv = 0)

(* ------------------------------------------------------------------ *)
(* 3. A non-socket file at the socket path refuses to serve. *)

let test_stale_path_refused () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "stress_smoke_file_%d" (Unix.getpid ()))
  in
  let oc = open_out path in
  output_string oc "precious user data\n";
  close_out oc;
  let null_in = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let null_out = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process exe
      [| exe; "--serve"; "--socket"; path |]
      null_in null_out Unix.stderr
  in
  Unix.close null_in;
  Unix.close null_out;
  let code =
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED n -> n
    | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) -> 128 + n
  in
  expect "non-socket path refused with exit 3" (code = 3);
  expect "the file was not replaced"
    (Sys.file_exists path && read_file path = "precious user data\n");
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* 4. Duplicate ids and the per-connection in-flight cap. *)

let test_duplicate_and_inflight_cap () =
  let srv = spawn_server [ "--jobs"; "2"; "--max-inflight"; "1" ] in
  let src = read_file (model_path "ring.smv") in
  (* Two frames with one id, sent back to back: the second must be
     refused while the first is still in flight. *)
  send srv (check_req ~id:"dup" src);
  send srv (check_req ~id:"dup" src);
  let statuses = ref [] in
  for _ = 1 to 2 do
    match recv srv with
    | Some v when str "id" v = Some "dup" ->
      statuses := Option.get (str "status" v) :: !statuses
    | Some _ | None -> ()
  done;
  expect "duplicate id: one check reply and one structured error"
    (List.sort compare !statuses = [ "error"; "ok" ]);
  (* With --max-inflight 1, a second concurrent check on the same
     connection sheds with reason 'inflight'. *)
  send srv (check_req ~id:"cap-a" src);
  send srv (check_req ~id:"cap-b" src);
  let got = Hashtbl.create 4 in
  for _ = 1 to 2 do
    match recv srv with
    | Some v -> (
      match str "id" v with
      | Some id -> Hashtbl.replace got id v
      | None -> ())
    | None -> ()
  done;
  (match (Hashtbl.find_opt got "cap-a", Hashtbl.find_opt got "cap-b") with
  | Some a, Some b ->
    expect "first check under the cap is served" (str "status" a = Some "ok");
    expect "second check sheds with reason inflight"
      (str "status" b = Some "overloaded" && str "reason" b = Some "inflight")
  | _ -> expect "both capped checks answered" false);
  send srv (Json.Obj [ ("op", Json.Str "shutdown") ]);
  expect "server exits 0 after cap tests" (wait_exit srv = 0)

(* ------------------------------------------------------------------ *)
(* 5. Server-side default budgets: applied when the request names
   none, overridden when it does. *)

let test_default_budgets () =
  let srv = spawn_server [ "--jobs"; "1"; "--default-node-limit"; "10" ] in
  let src = read_file (model_path "mutex.smv") in
  send srv (check_req ~id:"briefless" src);
  (match recv srv with
  | Some v ->
    expect "budget-less request gets the server's node limit (exit 2)"
      (str "status" v = Some "ok" && num "exit_code" v = Some 2.)
  | None -> expect "budget-less request answered" false);
  send srv
    (check_req ~id:"generous" src
       ~options:[ ("node_limit", Json.Num 10_000_000.) ]);
  (match recv srv with
  | Some v ->
    (* mutex.smv has one failing spec: a run the budget did not trip
       exits 1, never 2. *)
    expect "request's own budget wins over the default (exit 1)"
      (str "status" v = Some "ok" && num "exit_code" v = Some 1.)
  | None -> expect "budgeted request answered" false);
  send srv (Json.Obj [ ("op", Json.Str "shutdown") ]);
  expect "server exits 0 after budget tests" (wait_exit srv = 0)

(* ------------------------------------------------------------------ *)
(* 6. The memory watchdog evicts idle warm models past the high-water
   mark, counts it, and the model comes back cold. *)

let test_watchdog_eviction () =
  (* High water of one node: any warm model is over it, so the first
     idle tick must evict. *)
  let srv = spawn_server [ "--jobs"; "1"; "--mem-high-water"; "1" ] in
  let src = read_file (model_path "mutex.smv") in
  send srv (check_req ~id:"first" src);
  (match recv srv with
  | Some v -> expect "first check served" (str "status" v = Some "ok")
  | None -> expect "first check served" false);
  (* Two watchdog periods with the entry idle. *)
  Unix.sleepf 0.6;
  send srv (check_req ~id:"second" src);
  (match recv srv with
  | Some v ->
    expect "model evicted under pressure comes back cold"
      (str "status" v = Some "ok"
      && Option.bind (Json.member "warm" v) Json.to_bool = Some false)
  | None -> expect "second check served" false);
  send srv (Json.Obj [ ("op", Json.Str "status") ]);
  (match recv srv with
  | Some v -> (
    expect "status reports the high-water mark"
      (num "mem_high_water" v = Some 1.);
    match Json.member "counters" v with
    | Some c ->
      expect "watchdog evictions counted"
        (match Option.bind (Json.member "watchdog_evictions" c) Json.to_num with
        | Some n -> n >= 1.
        | None -> false)
    | None -> expect "status reply has counters" false)
  | None -> expect "status answered after watchdog activity" false);
  send srv (Json.Obj [ ("op", Json.Str "shutdown") ]);
  expect "server exits 0 after watchdog test" (wait_exit srv = 0)

let () =
  (* A stuck server must fail the alias, not hang CI. *)
  ignore (Unix.alarm 300);
  (* A server that exits mid-test must surface as a failed expectation,
     not kill this process on a pipe write. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  test_flood_and_status ();
  test_sigterm_mid_flood ();
  test_stale_path_refused ();
  test_duplicate_and_inflight_cap ();
  test_default_budgets ();
  test_watchdog_eviction ();
  if !failures > 0 then begin
    Printf.printf "%d deviation(s) from the overload contract\n%!" !failures;
    exit 1
  end
