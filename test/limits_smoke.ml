(* Smoke test for the resource-governance exit-code contract, run via
   `dune build @limits-smoke`: one budget-trip case (exit 2, both the
   UNDETERMINED report and the isolated second verdict present) and one
   pass case (exit 1 on mutex.smv: a false spec, nothing undetermined).
   Any deviation fails the alias. *)

let exe = Filename.concat (Filename.concat ".." "bin") "smv_check.exe"

let run args =
  let cmd = Filename.quote_command exe args ^ " 2>&1" in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n
  in
  (code, Buffer.contents buf)

let failures = ref 0

let expect what cond =
  if cond then Printf.printf "ok: %s\n%!" what
  else begin
    incr failures;
    Printf.printf "FAIL: %s\n%!" what
  end

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let model name =
  Filename.concat (Filename.concat (Filename.concat ".." "examples") "models")
    name

let () =
  (* Trip case: the engineered counter exhausts a step budget on its
     first spec; the trivial second spec must still be decided. *)
  let code, out = run [ model "counter26.smv"; "--step-limit"; "64"; "-q" ] in
  expect "trip case exits 2" (code = 2);
  expect "trip case reports UNDETERMINED"
    (contains ~needle:"UNDETERMINED (step budget of 64 exceeded" out);
  expect "trip case still checks the next spec"
    (contains ~needle:"(AG (b0 | !b0)) is true" out);
  (* Pass case: a governed run with generous budgets behaves exactly
     like an ungoverned one — mutex.smv has one false spec, exit 1. *)
  let code, out =
    run
      [ model "mutex.smv"; "--timeout"; "300"; "--node-limit"; "50000000";
        "-q" ]
  in
  expect "pass case exits 1" (code = 1);
  expect "pass case leaves nothing undetermined"
    (not (contains ~needle:"UNDETERMINED" out));
  if !failures > 0 then begin
    Printf.printf "%d deviation(s) from the exit-code contract\n%!" !failures;
    exit 1
  end
