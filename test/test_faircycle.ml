(* Tests for the lock-step fair-cycle engine (--fair-engine lockstep):

   - verdict and fair-state-set identity against the Emerson-Lei
     engine (and against the explicit oracle) on random Kripke models
     with random fairness sets — the two engines must return the very
     same BDD, not just the same set;
   - engine-tagged memoisation: switching engines on a warm model
     recomputes rather than silently reusing the other engine's cached
     diagram, and a full server-style [Engine.check_one] under either
     engine prints byte-identical output;
   - witness reconciliation: lock-step onion-ring witnesses validate
     with [Counterex.Validate] and render byte-identically to
     Emerson-Lei ones;
   - the funnel discipline: limits breaches, auto-reorder sweeps and
     injected faults all fire *inside* the lock-step computation, and
     verdicts recover to the fault-free ones. *)

let prop name ?(count = 200) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let rm_and_formula ~nfair =
  QCheck2.Gen.pair (Models.random_model_gen ~nfair ()) Models.formula_gen

(* Random fairness-set counts: the nfair = 0 degenerate case (single
   implicit [true] constraint) must work too. *)
let rm_any_fair =
  let open QCheck2.Gen in
  int_bound 3 >>= fun nfair -> Models.random_model_gen ~nfair ()

(* ------------------------------------------------------------------ *)
(* Engine equivalence on random models                                 *)

let prop_fair_states_identical =
  prop "fair states: lockstep = el (same BDD)" ~count:300 rm_any_fair
    (fun rm ->
      let m = rm.Models.sym in
      let el = Ctl.Fair.fair_states ~engine:Ctl.Fair.El m in
      let ls = Ctl.Fair.fair_states ~engine:Ctl.Fair.Lockstep m in
      Bdd.equal el ls)

let prop_fair_states_vs_explicit =
  prop "lockstep fair states agree with explicit oracle" ~count:200
    (Models.random_model_gen ~nfair:3 ())
    (fun rm ->
      let symbolic =
        Ctl.Fair.fair_states ~engine:Ctl.Fair.Lockstep rm.Models.sym
      in
      let explicit = Explicit.Ectl.fair_states rm.Models.graph in
      Models.sets_agree rm symbolic explicit)

let prop_eg_identical =
  prop "fair EG: lockstep = el (same BDD)" ~count:250
    (QCheck2.Gen.pair rm_any_fair Models.formula_gen)
    (fun (rm, af) ->
      let m = rm.Models.sym in
      let f = Ctl.Check.sat m af in
      Bdd.equal
        (Ctl.Fair.eg ~engine:Ctl.Fair.El m f)
        (Ctl.Fair.eg ~engine:Ctl.Fair.Lockstep m f))

let prop_sat_identical =
  prop "full fair CTL: lockstep = el (same BDD)" ~count:250
    (rm_and_formula ~nfair:2)
    (fun (rm, f) ->
      let m = rm.Models.sym in
      (* Fresh memo per engine run: sat caches fair_states on the
         model, which is exactly what the tag must sort out. *)
      let el = Ctl.Fair.sat ~engine:Ctl.Fair.El m f in
      let ls = Ctl.Fair.sat ~engine:Ctl.Fair.Lockstep m f in
      Bdd.equal el ls)

let prop_rings_identical =
  prop "onion rings: lockstep hull yields identical layers" ~count:150
    (QCheck2.Gen.pair (Models.random_model_gen ~nfair:2 ()) Models.formula_gen)
    (fun (rm, af) ->
      let m = rm.Models.sym in
      let f = Ctl.Check.sat m af in
      let z_el, rings_el = Ctl.Fair.eg_with_rings ~engine:Ctl.Fair.El m f in
      let z_ls, rings_ls =
        Ctl.Fair.eg_with_rings ~engine:Ctl.Fair.Lockstep m f
      in
      Bdd.equal z_el z_ls
      && List.length rings_el = List.length rings_ls
      && List.for_all2
           (fun (a : Ctl.Fair.rings) (b : Ctl.Fair.rings) ->
             Bdd.equal a.Ctl.Fair.constr b.Ctl.Fair.constr
             && Array.length a.Ctl.Fair.layers = Array.length b.Ctl.Fair.layers
             && Array.for_all2 Bdd.equal a.Ctl.Fair.layers b.Ctl.Fair.layers)
           rings_el rings_ls)

(* ------------------------------------------------------------------ *)
(* Witness reconciliation                                              *)

let check_valid what = function
  | Ok () -> true
  | Error e ->
    QCheck2.Test.fail_reportf "%s: %a" what Counterex.Validate.pp_error e

let prop_lockstep_witness_validates =
  prop "lockstep fair EG witnesses validate (and match el's)" ~count:100
    (Models.random_model_gen ~nfair:2 ())
    (fun rm ->
      let m = rm.Models.sym in
      let z = Ctl.Fair.eg ~engine:Ctl.Fair.Lockstep m m.Kripke.space in
      match Kripke.pick_state m z with
      | None -> true (* no fair cycle anywhere: nothing to witness *)
      | Some start ->
        let tr_ls =
          Counterex.Witness.eg ~engine:Ctl.Fair.Lockstep m ~f:m.Kripke.space
            ~start
        in
        let tr_el =
          Counterex.Witness.eg ~engine:Ctl.Fair.El m ~f:m.Kripke.space ~start
        in
        let render tr = Format.asprintf "%a" (Kripke.Trace.pp m) tr in
        check_valid "lockstep eg witness"
          (Counterex.Validate.eg_witness m ~f:m.Kripke.space tr_ls)
        && String.equal (render tr_ls) (render tr_el))

(* ------------------------------------------------------------------ *)
(* Engine-tagged memo                                                  *)

let test_memo_retag () =
  let mx = Models.mutex () in
  let m = mx.Models.m in
  let bman = m.Kripke.man in
  Kripke.set_fair_memo m None;
  let el = Ctl.Fair.fair_states ~engine:Ctl.Fair.El m in
  (match Kripke.fair_memo m with
  | Some (_, "el") -> ()
  | Some (_, tag) -> Alcotest.failf "memo tagged %S, expected \"el\"" tag
  | None -> Alcotest.fail "memo not populated by El");
  (* Poison the memo with a wrong diagram under the El tag: an
     El-engine call must (wrongly, but that is the cache contract)
     serve it, while a Lockstep call must see the tag mismatch and
     recompute the true set instead of trusting the poison. *)
  Kripke.set_fair_memo m (Some (Bdd.zero bman, "el"));
  Alcotest.(check bool) "el serves the cached diagram" true
    (Bdd.is_zero (Ctl.Fair.fair_states ~engine:Ctl.Fair.El m));
  let ls = Ctl.Fair.fair_states ~engine:Ctl.Fair.Lockstep m in
  Alcotest.(check bool) "lockstep recomputed past the poison" true
    (Bdd.equal ls el);
  (match Kripke.fair_memo m with
  | Some (_, "lockstep") -> ()
  | Some (_, tag) -> Alcotest.failf "memo tagged %S, expected \"lockstep\"" tag
  | None -> Alcotest.fail "memo not repopulated by Lockstep");
  Kripke.set_fair_memo m None

(* Server warm-reuse: the same warm model checked under each engine
   must print byte-identical output (the server's byte-identity
   contract), while the memo flips tags — proving the second request
   recomputed rather than silently reusing the first engine's cache. *)
let test_server_warm_switch () =
  let mx = Models.mutex () in
  let m = mx.Models.m in
  Kripke.set_fair_memo m None;
  let spec = ("starvation", Ctl.AG (Ctl.Imp (mx.Models.t1, Ctl.AF mx.Models.c1))) in
  let opts engine =
    {
      Server.Engine.fair = true;
      fair_engine = engine;
      traces = true;
      stats = false;
      certify = true;
      debug = false;
      timeout = None;
      node_limit = None;
      step_limit = None;
      retries = 0;
      retry_factor = 2.0;
      cancel = Atomic.make false;
    }
  in
  let run engine =
    let buf = Buffer.create 256 in
    let ppf = Format.formatter_of_buffer buf in
    let r =
      Server.Engine.check_one ppf m ~opts:(opts engine)
        ~clusters:(fun () -> [])
        spec
    in
    Format.pp_print_flush ppf ();
    (r.Server.Engine.verdict, Buffer.contents buf)
  in
  let v_el, out_el = run Ctl.Fair.El in
  (match Kripke.fair_memo m with
  | Some (_, "el") -> ()
  | _ -> Alcotest.fail "warm model not tagged el after El check");
  let v_ls, out_ls = run Ctl.Fair.Lockstep in
  (match Kripke.fair_memo m with
  | Some (_, "lockstep") -> ()
  | _ -> Alcotest.fail "warm model not retagged by the Lockstep check");
  Alcotest.(check bool) "verdicts equal" true (v_el = v_ls);
  Alcotest.(check string) "byte-identical output" out_el out_ls;
  Kripke.set_fair_memo m None

(* ------------------------------------------------------------------ *)
(* Funnel discipline: limits, auto-reorder, faults inside lock-step    *)

let test_limits_breach_inside_lockstep () =
  let mx = Models.mutex () in
  let m = mx.Models.m in
  let limits = Bdd.Limits.create ~step_budget:2 () in
  match Ctl.Fair.eg ~limits ~engine:Ctl.Fair.Lockstep m m.Kripke.space with
  | _ -> Alcotest.fail "expected a step-budget breach inside lock-step"
  | exception Bdd.Limits.Exhausted info ->
    (match info.Bdd.Limits.breach with
    | Bdd.Limits.Step_budget { budget; steps } ->
      Alcotest.(check int) "budget" 2 budget;
      Alcotest.(check bool) "steps exceed budget" true (steps > 2)
    | b -> Alcotest.failf "wrong breach: %a" Bdd.Limits.pp_breach b)

let test_auto_reorder_inside_lockstep () =
  let mx = Models.mutex () in
  let m = mx.Models.m in
  let man = m.Kripke.man in
  let clean = Ctl.Fair.eg ~engine:Ctl.Fair.Lockstep m m.Kripke.space in
  let before = (Bdd.stats man).Bdd.reorders in
  Bdd.Reorder.set_auto man (Some 1);
  let sifted =
    Fun.protect
      ~finally:(fun () -> Bdd.Reorder.set_auto man None)
      (fun () ->
        Bdd.Reorder.with_checkpoints man (fun () ->
            Ctl.Fair.eg ~engine:Ctl.Fair.Lockstep m m.Kripke.space))
  in
  let after = (Bdd.stats man).Bdd.reorders in
  Alcotest.(check bool) "a sweep fired inside lock-step" true (after > before);
  Alcotest.(check bool) "result unchanged by the sweep" true
    (Bdd.equal clean sifted)

(* A reorder fault fired from a lock-step checkpoint (mid-sift abort)
   must surface as the documented exception, leave the manager sound,
   and the retried verdict must match the clean one. *)
let test_midsift_abort_inside_lockstep () =
  let mx = Models.mutex () in
  let m = mx.Models.m in
  let man = m.Kripke.man in
  let clean = Ctl.Fair.eg ~engine:Ctl.Fair.Lockstep m m.Kripke.space in
  Bdd.Reorder.set_auto man (Some 1);
  Bdd.Fault.arm man ~site:Bdd.Fault.Reorder ~after:1;
  (match
     Bdd.Reorder.with_checkpoints man (fun () ->
         Ctl.Fair.eg ~engine:Ctl.Fair.Lockstep m m.Kripke.space)
   with
  | _ -> ()  (* the fault may land after convergence on tiny models *)
  | exception Out_of_memory -> ());
  Bdd.Fault.disarm man;
  Bdd.Reorder.set_auto man None;
  let retried = Ctl.Fair.eg ~engine:Ctl.Fair.Lockstep m m.Kripke.space in
  Alcotest.(check bool) "verdict stable after mid-sift abort" true
    (Bdd.equal clean retried)

let sites =
  [
    Bdd.Fault.Mk;
    Bdd.Fault.Cache_probe;
    Bdd.Fault.Gc;
    Bdd.Fault.Step;
    Bdd.Fault.Reorder;
  ]

(* Fault-site sweep under the lock-step engine, mirroring the chaos
   suite: a fault anywhere inside the computation is contained (the
   documented exceptions only) and the post-recovery verdict matches
   the fault-free one. *)
let test_fault_sweep_lockstep () =
  let mx = Models.mutex () in
  let m = mx.Models.m in
  let man = m.Kripke.man in
  let spec = Ctl.AG (Ctl.Imp (mx.Models.t1, Ctl.AF mx.Models.c1)) in
  Kripke.set_fair_memo m None;
  let clean = Ctl.Fair.holds ~engine:Ctl.Fair.Lockstep m spec in
  List.iter
    (fun site ->
      List.iter
        (fun after ->
          Kripke.set_fair_memo m None;
          Bdd.Fault.arm man ~site ~after;
          let limits = Bdd.Limits.create ~timeout:3600.0 () in
          (match
             Bdd.Limits.with_attached man limits (fun () ->
                 Ctl.Fair.holds ~limits ~engine:Ctl.Fair.Lockstep m spec)
           with
          | got ->
            (* The fault never fired (site not reached with this
               count): the verdict must simply be right. *)
            Alcotest.(check bool) "verdict (fault unfired)" clean got
          | exception Out_of_memory -> ()
          | exception Bdd.Limits.Exhausted _ -> ()
          | exception e ->
            Alcotest.failf "unexpected escape at site %s: %s"
              (Bdd.Fault.site_to_string site)
              (Printexc.to_string e));
          Bdd.Fault.disarm man;
          Kripke.set_fair_memo m None;
          let retried = Ctl.Fair.holds ~engine:Ctl.Fair.Lockstep m spec in
          Alcotest.(check bool)
            (Printf.sprintf "verdict after fault (site %s, after %d)"
               (Bdd.Fault.site_to_string site)
               after)
            clean retried)
        [ 1; 5; 50 ])
    sites;
  Kripke.set_fair_memo m None

let suite =
  [
    prop_fair_states_identical;
    prop_fair_states_vs_explicit;
    prop_eg_identical;
    prop_sat_identical;
    prop_rings_identical;
    prop_lockstep_witness_validates;
    Alcotest.test_case "memo retags on engine switch" `Quick test_memo_retag;
    Alcotest.test_case "server warm model switches engines" `Quick
      test_server_warm_switch;
    Alcotest.test_case "limits breach inside lock-step" `Quick
      test_limits_breach_inside_lockstep;
    Alcotest.test_case "auto-reorder fires inside lock-step" `Quick
      test_auto_reorder_inside_lockstep;
    Alcotest.test_case "mid-sift abort inside lock-step" `Quick
      test_midsift_abort_inside_lockstep;
    Alcotest.test_case "fault-site sweep (lock-step)" `Quick
      test_fault_sweep_lockstep;
  ]
