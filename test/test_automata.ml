(* Tests for Section 8: Streett automata and language containment with
   counterexample extraction. *)

let prop name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let ab = [| 'a'; 'b' |]

(* Deterministic automaton over {a,b} remembering the last letter:
   state 0 = start / after b, state 1 = after a. *)
let last_letter_tracker ~accept =
  Automata.Streett.make ~nstates:2 ~init:0 ~alphabet:ab
    ~delta:[ (0, 0, 1); (0, 1, 0); (1, 0, 1); (1, 1, 0) ]
    ~accept

(* Accepts everything. *)
let accept_all =
  Automata.Streett.make ~nstates:1 ~init:0 ~alphabet:ab
    ~delta:[ (0, 0, 0); (0, 1, 0) ]
    ~accept:[]

(* Büchi: infinitely many a's. *)
let inf_a = last_letter_tracker ~accept:[ ([], [ 1 ]) ]

(* Streett: eventually only a's OR infinitely many b's
   (pair: inf ⊆ {after-a} or inf ∩ {after-b} ≠ ∅). *)
let fair_spec = last_letter_tracker ~accept:[ ([ 1 ], [ 0 ]) ]

let test_make_checks () =
  Alcotest.check_raises "empty alphabet"
    (Invalid_argument "Streett.make: empty alphabet") (fun () ->
      ignore
        (Automata.Streett.make ~nstates:1 ~init:0 ~alphabet:[||] ~delta:[]
           ~accept:[]));
  Alcotest.check_raises "bad state"
    (Invalid_argument "Streett.make: state 7 out of range") (fun () ->
      ignore
        (Automata.Streett.make ~nstates:2 ~init:0 ~alphabet:ab
           ~delta:[ (0, 0, 7) ] ~accept:[]))

let test_determinism_completeness () =
  Alcotest.(check bool) "tracker deterministic" true
    (Automata.Streett.is_deterministic inf_a);
  Alcotest.(check bool) "tracker complete" true
    (Automata.Streett.is_complete inf_a);
  let partial =
    Automata.Streett.make ~nstates:2 ~init:0 ~alphabet:ab
      ~delta:[ (0, 0, 1) ] ~accept:[]
  in
  Alcotest.(check bool) "partial incomplete" false
    (Automata.Streett.is_complete partial);
  let completed = Automata.Streett.complete partial in
  Alcotest.(check bool) "completion complete" true
    (Automata.Streett.is_complete completed);
  Alcotest.(check int) "sink added" 3 completed.Automata.Streett.nstates

let test_accepts_lasso_det () =
  (* (ab)^ω has infinitely many a's. *)
  Alcotest.(check bool) "(ab)^w in inf_a" true
    (Automata.Streett.accepts_lasso_det inf_a ~prefix:[] ~cycle:[ 0; 1 ]);
  (* a b^ω does not. *)
  Alcotest.(check bool) "a b^w not in inf_a" false
    (Automata.Streett.accepts_lasso_det inf_a ~prefix:[ 0 ] ~cycle:[ 1 ]);
  (* b a^ω : eventually only a's satisfies the fairness pair. *)
  Alcotest.(check bool) "b a^w in fair_spec" true
    (Automata.Streett.accepts_lasso_det fair_spec ~prefix:[ 1 ] ~cycle:[ 0 ]);
  (* (aab)^ω : infinitely many b's — also accepted. *)
  Alcotest.(check bool) "(aab)^w in fair_spec" true
    (Automata.Streett.accepts_lasso_det fair_spec ~prefix:[] ~cycle:[ 0; 0; 1 ]);
  (* a^ω rejected by inf-b-under-a... (pair U={1}: inf ⊆ {1} holds!) *)
  Alcotest.(check bool) "a^w in fair_spec" true
    (Automata.Streett.accepts_lasso_det fair_spec ~prefix:[] ~cycle:[ 0 ])

let test_run_inf_accepts () =
  Alcotest.(check bool) "inf {1} in inf_a" true
    (Automata.Streett.run_inf_accepts inf_a [ 1 ]);
  Alcotest.(check bool) "inf {0} not in inf_a" false
    (Automata.Streett.run_inf_accepts inf_a [ 0 ]);
  Alcotest.(check bool) "empty acceptance accepts" true
    (Automata.Streett.run_inf_accepts accept_all [ 0 ])

(* ------------------------------------------------------------------ *)
(* Containment.                                                        *)

let test_containment_holds () =
  (* L(inf_a) ⊆ L(accept-all). *)
  match Automata.Containment.contains ~sys:inf_a ~spec:accept_all () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "containment should hold"

let test_containment_fails_with_word () =
  (* L(accept-all) ⊄ L(inf_a): some word has finitely many a's. *)
  match Automata.Containment.contains ~sys:accept_all ~spec:inf_a () with
  | Ok () -> Alcotest.fail "containment should fail"
  | Error ce ->
    Alcotest.(check bool) "counterexample validates" true
      (Automata.Containment.check_counterexample ~sys:accept_all ~spec:inf_a ce);
    (* The word eventually has no 'a': cycle letters are all 'b'. *)
    Alcotest.(check bool) "cycle avoids a" true
      (List.for_all (fun c -> c = 'b') ce.Automata.Containment.word_cycle)

let test_containment_streett_pair () =
  (* accept-all ⊄ fair_spec: need infinitely many a-then-b alternations
     broken — i.e. a word with inf many b-to-a... the violating words
     have inf({last-letter states}) ⊄ {after-a} and no after-b
     infinitely often: impossible... actually any word either has inf
     many b (inf ∩ {0} ≠ ∅, accepted) or eventually only a
     (inf ⊆ {1}, accepted).  So containment HOLDS here. *)
  match Automata.Containment.contains ~sys:accept_all ~spec:fair_spec () with
  | Ok () -> ()
  | Error ce ->
    Alcotest.failf "unexpected counterexample (cycle length %d)"
      (List.length ce.Automata.Containment.word_cycle)

let test_containment_requires_det_spec () =
  let nondet =
    Automata.Streett.make ~nstates:2 ~init:0 ~alphabet:ab
      ~delta:[ (0, 0, 0); (0, 0, 1); (0, 1, 0); (1, 0, 1); (1, 1, 1) ]
      ~accept:[]
  in
  match Automata.Containment.contains ~sys:accept_all ~spec:nondet () with
  | _ -> Alcotest.fail "expected Spec_not_deterministic"
  | exception Automata.Containment.Spec_not_deterministic -> ()

let test_containment_alphabet_mismatch () =
  let other =
    Automata.Streett.make ~nstates:1 ~init:0 ~alphabet:[| 'x'; 'y' |]
      ~delta:[ (0, 0, 0); (0, 1, 0) ]
      ~accept:[]
  in
  Alcotest.check_raises "alphabet mismatch"
    (Invalid_argument "Containment.contains: different alphabets") (fun () ->
      ignore (Automata.Containment.contains ~sys:accept_all ~spec:other ()))

(* Nondeterministic system: guesses a point after which only b's
   occur; its language is "finitely many a's". *)
let finitely_many_a =
  Automata.Streett.make ~nstates:2 ~init:0 ~alphabet:ab
    ~delta:[ (0, 0, 0); (0, 1, 0); (0, 1, 1); (1, 1, 1) ]
    ~accept:[ ([ 1 ], []) ]

let test_nondeterministic_sys () =
  (* "finitely many a" ⊆ "not infinitely many a" — the spec accepting
     exactly the words with finitely many a's: complement of inf_a =
     tracker with pair (inf ⊆ {after-b}). *)
  let fin_a_spec = last_letter_tracker ~accept:[ ([ 0 ], []) ] in
  (match Automata.Containment.contains ~sys:finitely_many_a ~spec:fin_a_spec () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "containment should hold");
  (* But not ⊆ inf_a: witness word is eventually only b. *)
  match Automata.Containment.contains ~sys:finitely_many_a ~spec:inf_a () with
  | Ok () -> Alcotest.fail "containment should fail"
  | Error ce ->
    Alcotest.(check bool) "validates" true
      (Automata.Containment.check_counterexample ~sys:finitely_many_a
         ~spec:inf_a ce)

(* ------------------------------------------------------------------ *)
(* Property: on random deterministic automata, containment verdicts    *)
(* agree with random-word sampling.                                    *)

let det_automaton_gen =
  let open QCheck2.Gen in
  let* n = int_range 1 4 in
  let state = int_bound (n - 1) in
  let* targets = list_repeat (2 * n) state in
  let delta =
    List.concat
      (List.mapi
         (fun i t ->
           let s = i / 2 and a = i mod 2 in
           [ (s, a, t) ])
         targets)
  in
  let subset = list_size (int_bound n) state in
  let* npairs = int_range 0 2 in
  let* accept = list_repeat npairs (pair subset subset) in
  return (Automata.Streett.make ~nstates:n ~init:0 ~alphabet:ab ~delta ~accept)

let word_gen =
  let open QCheck2.Gen in
  pair (list_size (int_bound 4) (int_bound 1)) (list_size (int_range 1 4) (int_bound 1))

let prop_containment_vs_sampling =
  prop "containment verdicts agree with word sampling" ~count:200
    QCheck2.Gen.(triple det_automaton_gen det_automaton_gen
                   (list_repeat 20 word_gen))
    (fun (sys, spec, words) ->
      match Automata.Containment.contains ~sys ~spec () with
      | Error ce ->
        Automata.Containment.check_counterexample ~sys ~spec ce
      | Ok () ->
        (* No sampled word may separate the languages. *)
        let csys = Automata.Streett.complete sys in
        let cspec = Automata.Streett.complete spec in
        List.for_all
          (fun (prefix, cycle) ->
            (not (Automata.Streett.accepts_lasso_det csys ~prefix ~cycle))
            || Automata.Streett.accepts_lasso_det cspec ~prefix ~cycle)
          words)

let suite =
  [
    Alcotest.test_case "make checks" `Quick test_make_checks;
    Alcotest.test_case "determinism / completeness" `Quick test_determinism_completeness;
    Alcotest.test_case "accepts_lasso_det" `Quick test_accepts_lasso_det;
    Alcotest.test_case "run_inf_accepts" `Quick test_run_inf_accepts;
    Alcotest.test_case "containment holds" `Quick test_containment_holds;
    Alcotest.test_case "containment fails with word" `Quick test_containment_fails_with_word;
    Alcotest.test_case "streett fairness pair" `Quick test_containment_streett_pair;
    Alcotest.test_case "nondeterministic spec rejected" `Quick test_containment_requires_det_spec;
    Alcotest.test_case "alphabet mismatch" `Quick test_containment_alphabet_mismatch;
    Alcotest.test_case "nondeterministic system" `Quick test_nondeterministic_sys;
    prop_containment_vs_sampling;
  ]

(* ------------------------------------------------------------------ *)
(* Rabin automata (Section 8's closing remark).                        *)

(* Deterministic Rabin over {a,b} tracking the last letter:
   pair ({after-b}, {after-a}): eventually no b AND infinitely many a
   — i.e. "eventually only a's". *)
let rabin_eventually_a =
  Automata.Rabin.make ~nstates:2 ~init:0 ~alphabet:ab
    ~delta:[ (0, 0, 1); (0, 1, 0); (1, 0, 1); (1, 1, 0) ]
    ~accept:[ ([ 0 ], [ 1 ]) ]

(* Rabin accepting everything: pair (∅, all). *)
let rabin_all =
  Automata.Rabin.make ~nstates:1 ~init:0 ~alphabet:ab
    ~delta:[ (0, 0, 0); (0, 1, 0) ]
    ~accept:[ ([], [ 0 ]) ]

let test_rabin_acceptance () =
  Alcotest.(check bool) "a^w accepted" true
    (Automata.Rabin.accepts_lasso_det rabin_eventually_a ~prefix:[] ~cycle:[ 0 ]);
  Alcotest.(check bool) "b a^w accepted" true
    (Automata.Rabin.accepts_lasso_det rabin_eventually_a ~prefix:[ 1 ] ~cycle:[ 0 ]);
  Alcotest.(check bool) "(ab)^w rejected" false
    (Automata.Rabin.accepts_lasso_det rabin_eventually_a ~prefix:[]
       ~cycle:[ 0; 1 ]);
  Alcotest.(check bool) "b^w rejected" false
    (Automata.Rabin.accepts_lasso_det rabin_eventually_a ~prefix:[] ~cycle:[ 1 ])

let test_rabin_run_inf () =
  Alcotest.(check bool) "inf {1}" true
    (Automata.Rabin.run_inf_accepts rabin_eventually_a [ 1 ]);
  Alcotest.(check bool) "inf {0,1}" false
    (Automata.Rabin.run_inf_accepts rabin_eventually_a [ 0; 1 ]);
  Alcotest.(check bool) "empty pairs reject" false
    (Automata.Rabin.run_inf_accepts
       (Automata.Rabin.make ~nstates:1 ~init:0 ~alphabet:ab
          ~delta:[ (0, 0, 0); (0, 1, 0) ]
          ~accept:[])
       [ 0 ])

let test_rabin_containment_holds () =
  (* "eventually only a" ⊆ everything. *)
  match Automata.Rabin.contains ~sys:rabin_eventually_a ~spec:rabin_all () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "containment should hold"

let test_rabin_containment_fails () =
  (* everything ⊄ "eventually only a": expect a word with b's forever.  *)
  match Automata.Rabin.contains ~sys:rabin_all ~spec:rabin_eventually_a () with
  | Ok () -> Alcotest.fail "containment should fail"
  | Error ce ->
    Alcotest.(check bool) "validates" true
      (Automata.Rabin.check_counterexample ~sys:rabin_all
         ~spec:rabin_eventually_a ce);
    Alcotest.(check bool) "cycle contains a b" true
      (List.mem 'b' ce.Automata.Containment.word_cycle)

let test_rabin_empty_system () =
  (* A Rabin automaton with no pairs has the empty language, contained
     in anything. *)
  let empty =
    Automata.Rabin.make ~nstates:1 ~init:0 ~alphabet:ab
      ~delta:[ (0, 0, 0); (0, 1, 0) ]
      ~accept:[]
  in
  match Automata.Rabin.contains ~sys:empty ~spec:rabin_eventually_a () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "empty language is contained in everything"

(* Rabin/Streett duality on deterministic automata: a lasso word is
   Rabin-accepted iff it is Streett-rejected for the same pairs. *)
let prop_rabin_streett_duality =
  prop "Rabin accepts iff Streett rejects (same pairs)" ~count:200
    QCheck2.Gen.(pair det_automaton_gen word_gen)
    (fun (streett, (prefix, cycle)) ->
      let streett = Automata.Streett.complete streett in
      let rabin =
        Automata.Rabin.make
          ~nstates:streett.Automata.Streett.nstates
          ~init:streett.Automata.Streett.init
          ~alphabet:streett.Automata.Streett.alphabet
          ~delta:
            (List.concat
               (List.init streett.Automata.Streett.nstates (fun s ->
                    List.concat
                      (List.init 2 (fun a ->
                           List.map
                             (fun t -> (s, a, t))
                             (Automata.Streett.successors streett s a))))))
          ~accept:
            (List.map
               (fun (u, v) ->
                 (* Streett pair (U,V): inf ⊆ U or inf ∩ V ≠ ∅;
                    negation: inf ∩ (S\U) ≠ ∅ and inf ∩ V = ∅ —
                    the Rabin pair (V, S\U). *)
                 let all = List.init streett.Automata.Streett.nstates Fun.id in
                 (v, List.filter (fun s -> not (List.mem s u)) all))
               streett.Automata.Streett.accept)
      in
      let s_acc =
        Automata.Streett.accepts_lasso_det streett ~prefix ~cycle
      in
      (* Rabin negation of a conjunction is a disjunction of negated
         pairs: accepted by [rabin] iff some Streett pair is violated. *)
      let r_acc = Automata.Rabin.accepts_lasso_det rabin ~prefix ~cycle in
      (not s_acc) = r_acc)

let rabin_suite =
  [
    Alcotest.test_case "rabin acceptance" `Quick test_rabin_acceptance;
    Alcotest.test_case "rabin run inf" `Quick test_rabin_run_inf;
    Alcotest.test_case "rabin containment holds" `Quick test_rabin_containment_holds;
    Alcotest.test_case "rabin containment fails" `Quick test_rabin_containment_fails;
    Alcotest.test_case "rabin empty system" `Quick test_rabin_empty_system;
    prop_rabin_streett_duality;
  ]

let suite = suite @ rabin_suite

(* ------------------------------------------------------------------ *)
(* Muller automata.                                                    *)

(* Last-letter tracker as a Muller automaton: family selects which
   infinity behaviours are accepted. *)
let muller_tracker ~family =
  Automata.Muller.make ~nstates:2 ~init:0 ~alphabet:ab
    ~delta:[ (0, 0, 1); (0, 1, 0); (1, 0, 1); (1, 1, 0) ]
    ~family

(* Accepts "eventually only a" (inf = {after-a}). *)
let muller_only_a = muller_tracker ~family:[ [ 1 ] ]

(* Accepts "both letters infinitely often" or "only a". *)
let muller_fair_or_a = muller_tracker ~family:[ [ 0; 1 ]; [ 1 ] ]

let muller_all = muller_tracker ~family:[ [ 0 ]; [ 1 ]; [ 0; 1 ] ]

let test_muller_acceptance () =
  Alcotest.(check bool) "a^w in only-a" true
    (Automata.Muller.accepts_lasso_det muller_only_a ~prefix:[] ~cycle:[ 0 ]);
  Alcotest.(check bool) "(ab)^w not in only-a" false
    (Automata.Muller.accepts_lasso_det muller_only_a ~prefix:[] ~cycle:[ 0; 1 ]);
  Alcotest.(check bool) "(ab)^w in fair-or-a" true
    (Automata.Muller.accepts_lasso_det muller_fair_or_a ~prefix:[] ~cycle:[ 0; 1 ]);
  Alcotest.(check bool) "b^w not in fair-or-a" false
    (Automata.Muller.accepts_lasso_det muller_fair_or_a ~prefix:[] ~cycle:[ 1 ])

let test_muller_containment_holds () =
  match Automata.Muller.contains ~sys:muller_only_a ~spec:muller_fair_or_a () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "only-a ⊆ fair-or-a should hold"

let test_muller_containment_fails () =
  match Automata.Muller.contains ~sys:muller_all ~spec:muller_fair_or_a () with
  | Ok () -> Alcotest.fail "everything ⊄ fair-or-a"
  | Error ce ->
    Alcotest.(check bool) "validates" true
      (Automata.Muller.check_counterexample ~sys:muller_all
         ~spec:muller_fair_or_a ce);
    (* the separating word must end in b's only *)
    Alcotest.(check bool) "cycle is only b" true
      (List.for_all (fun c -> c = 'b') ce.Automata.Containment.word_cycle)

let test_muller_spec_too_large () =
  let big n =
    Automata.Muller.make ~nstates:n ~init:0 ~alphabet:ab
      ~delta:
        (List.concat
           (List.init n (fun s -> [ (s, 0, (s + 1) mod n); (s, 1, s) ])))
      ~family:[ List.init n Fun.id ]
  in
  match Automata.Muller.contains ~sys:muller_all ~spec:(big 17) () with
  | _ -> Alcotest.fail "expected Spec_too_large"
  | exception Automata.Muller.Spec_too_large 17 -> ()

(* Muller can express Büchi: inf ∩ F ≠ ∅ = union of all subsets
   intersecting F; verdicts must agree with the Streett/Büchi route. *)
let test_muller_buchi_equivalence () =
  (* Büchi "infinitely many a" over the tracker = Muller family
     {{1},{0,1}}. *)
  let muller_inf_a = muller_tracker ~family:[ [ 1 ]; [ 0; 1 ] ] in
  List.iter
    (fun (prefix, cycle) ->
      Alcotest.(check bool)
        (Printf.sprintf "word agrees (%d,%d)" (List.length prefix)
           (List.length cycle))
        (Automata.Streett.accepts_lasso_det inf_a ~prefix ~cycle)
        (Automata.Muller.accepts_lasso_det muller_inf_a ~prefix ~cycle))
    [ ([], [ 0 ]); ([], [ 1 ]); ([], [ 0; 1 ]); ([ 0 ], [ 1 ]); ([ 1 ], [ 0 ]) ]

let muller_suite =
  [
    Alcotest.test_case "muller acceptance" `Quick test_muller_acceptance;
    Alcotest.test_case "muller containment holds" `Quick test_muller_containment_holds;
    Alcotest.test_case "muller containment fails" `Quick test_muller_containment_fails;
    Alcotest.test_case "muller spec too large" `Quick test_muller_spec_too_large;
    Alcotest.test_case "muller = buchi on tracker" `Quick test_muller_buchi_equivalence;
  ]

let suite = suite @ muller_suite

(* ------------------------------------------------------------------ *)
(* Completion preserves the language (word sampling on deterministic
   automata).                                                          *)

let prop_completion_preserves_language =
  prop "completion preserves acceptance on sampled words" ~count:200
    QCheck2.Gen.(pair det_automaton_gen (list_repeat 10 word_gen))
    (fun (a, words) ->
      (* make a partial variant by dropping some transitions, then
         complete it; on words whose original run exists, verdicts of
         original-complete and partial-completed agree whenever the
         partial run never needed a dropped edge.  Simpler invariant:
         completing an already complete automaton is the identity. *)
      let completed = Automata.Streett.complete a in
      let a = Automata.Streett.complete a in
      List.for_all
        (fun (prefix, cycle) ->
          Automata.Streett.accepts_lasso_det a ~prefix ~cycle
          = Automata.Streett.accepts_lasso_det completed ~prefix ~cycle)
        words)

let prop_lasso_inf_invariant_under_rotation =
  prop "lasso acceptance is invariant under cycle rotation" ~count:200
    QCheck2.Gen.(pair det_automaton_gen word_gen)
    (fun (a, (prefix, cycle)) ->
      let a = Automata.Streett.complete a in
      (* rotating the cycle once while extending the prefix denotes the
         same word *)
      match cycle with
      | [] -> true
      | c0 :: rest ->
        let rotated = rest @ [ c0 ] in
        Automata.Streett.accepts_lasso_det a ~prefix ~cycle
        = Automata.Streett.accepts_lasso_det a ~prefix:(prefix @ [ c0 ])
            ~cycle:rotated)

let prop_lasso_unrolling_invariant =
  prop "lasso acceptance is invariant under cycle unrolling" ~count:200
    QCheck2.Gen.(pair det_automaton_gen word_gen)
    (fun (a, (prefix, cycle)) ->
      let a = Automata.Streett.complete a in
      Automata.Streett.accepts_lasso_det a ~prefix ~cycle
      = Automata.Streett.accepts_lasso_det a ~prefix ~cycle:(cycle @ cycle))

let suite =
  suite
  @ [
      prop_completion_preserves_language;
      prop_lasso_inf_invariant_under_rotation;
      prop_lasso_unrolling_invariant;
    ]
