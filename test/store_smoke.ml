(* Smoke test for the packed node store, run via
   `dune build @store-smoke`: the store rewrite (PR 8) is gated on the
   checker's observable behaviour being frozen, so this pins it against
   goldens captured from the pre-packed boxed seed.

   1. Byte identity: the arbiter (full verdict + trace output, exit 1)
      and the governed 26-bit counter (UNDETERMINED reporting under
      --step-limit, exit 2) must reproduce the committed golden files
      exactly — any drift in verdicts, traces, wording or exit codes
      is a store regression, not a tolerable diff.

   2. Chaos sweep over the store's own fault sites: --inject mk:N
      lands an allocation failure inside the unique-table insert path,
      --inject gc:N at collection entry — the two places the packed
      representation rewired most.  Under --retries the run must
      recover to the clean truth pattern (same specs, same verdicts,
      recovery annotations allowed) and must never crash or degrade to
      UNDETERMINED. *)

let exe = Filename.concat (Filename.concat ".." "bin") "smv_check.exe"

let run args =
  let cmd = Filename.quote_command exe args ^ " 2>&1" in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n
  in
  (code, Buffer.contents buf)

let failures = ref 0

let expect what cond =
  if cond then Printf.printf "ok: %s\n%!" what
  else begin
    incr failures;
    Printf.printf "FAIL: %s\n%!" what
  end

let model name =
  Filename.concat (Filename.concat (Filename.concat ".." "examples") "models")
    name

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* 1. Byte identity against the boxed-seed goldens.                   *)

let check_golden name args ~golden ~code:expected =
  let code, out = run args in
  let want = read_file golden in
  expect (Printf.sprintf "%s: exit code %d" name expected) (code = expected);
  expect (name ^ ": output byte-identical to seed golden") (out = want);
  if out <> want then
    Printf.printf "--- golden ---\n%s--- got ---\n%s%!" want out

(* ------------------------------------------------------------------ *)
(* 2. Fault sweep: verdict truth pattern, annotations stripped.       *)

(* "-- specification F is true (recovered: ...)" -> "F is true". *)
let truth_pattern out =
  String.split_on_char '\n' out
  |> List.filter_map (fun l ->
         if String.length l >= 17 && String.sub l 0 17 = "-- specification " then
           let l =
             match Str.search_forward (Str.regexp " (recovered:") l 0 with
             | i -> String.sub l 0 i
             | exception Not_found -> l
           in
           Some l
         else None)

let chaos name inject =
  let args =
    [ model "arbiter.smv"; "--retries"; "2"; "--seed"; "7";
      "--inject"; inject ]
  in
  let code, out = run args in
  expect (Printf.sprintf "%s: exit code 1 (no crash, no degradation)" name)
    (code = 1);
  let clean = read_file "golden/store_arbiter.golden" in
  expect (name ^ ": truth pattern matches the clean run")
    (truth_pattern out = truth_pattern clean);
  expect (name ^ ": no verdict left UNDETERMINED")
    (not
       (List.exists
          (fun l ->
            match Str.search_forward (Str.regexp_string "UNDETERMINED") l 0 with
            | _ -> true
            | exception Not_found -> false)
          (truth_pattern out)))

let () =
  check_golden "arbiter" [ model "arbiter.smv" ]
    ~golden:"golden/store_arbiter.golden" ~code:1;
  check_golden "counter26"
    [ model "counter26.smv"; "--step-limit"; "64" ]
    ~golden:"golden/store_counter26.golden" ~code:2;
  List.iter
    (fun (name, inject) -> chaos name inject)
    [
      ("mk-early", "mk:1"); ("mk-mid", "mk:2000"); ("mk-late", "mk:40000");
      ("gc-first", "gc:1"); ("gc-second", "gc:2");
    ];
  if !failures > 0 then begin
    Printf.printf "%d deviation(s) from the node-store contract\n%!" !failures;
    exit 1
  end
