(* Parallel checking: Bdd.transfer, Kripke.clone_into, the domain pool,
   and the determinism contract of --jobs.

   The determinism tests are the heart of this file: a parallel run is
   only correct if it is indistinguishable from a sequential one, so we
   compare verdicts structurally (Specs.map vs direct checking) and
   byte-for-byte (smv_check --jobs 4 vs sequential, as subprocesses). *)

let src = Bdd.create ()

(* ------------------------------------------------------------------ *)
(* Random boolean expressions, interpretable in any manager (the same
   scheme as test_bdd, parameterised by manager so a formula can be
   built independently on both sides of a transfer). *)

type expr =
  | Evar of int
  | Enot of expr
  | Eand of expr * expr
  | Eor of expr * expr
  | Etrue
  | Efalse

let nvars = 5

let expr_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [ map (fun v -> Evar v) (int_bound (nvars - 1));
            return Etrue; return Efalse ]
      else
        let sub = self (n / 2) in
        oneof
          [ map (fun v -> Evar v) (int_bound (nvars - 1));
            map (fun e -> Enot e) (self (n - 1));
            map2 (fun a b -> Eand (a, b)) sub sub;
            map2 (fun a b -> Eor (a, b)) sub sub ])

let rec bdd_of_expr man = function
  | Evar v -> Bdd.var man v
  | Enot e -> Bdd.not_ man (bdd_of_expr man e)
  | Eand (a, b) -> Bdd.and_ man (bdd_of_expr man a) (bdd_of_expr man b)
  | Eor (a, b) -> Bdd.or_ man (bdd_of_expr man a) (bdd_of_expr man b)
  | Etrue -> Bdd.one man
  | Efalse -> Bdd.zero man

let env_of_bits bits v = bits land (1 lsl v) <> 0

let prop ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* ------------------------------------------------------------------ *)
(* Bdd.transfer properties.                                            *)

let transfer_props =
  [
    prop "transfer preserves size, sat_count and evaluation" expr_gen
      (fun e ->
        let f = bdd_of_expr src e in
        let dst = Bdd.create () in
        let g = Bdd.transfer ~src ~dst f in
        Bdd.size dst g = Bdd.size src f
        && Bdd.sat_count dst g nvars = Bdd.sat_count src f nvars
        &&
        let ok = ref true in
        for bits = 0 to (1 lsl nvars) - 1 do
          if Bdd.eval dst g (env_of_bits bits) <> Bdd.eval src f (env_of_bits bits)
          then ok := false
        done;
        !ok);
    prop "transferred node is the canonical node of dst" expr_gen (fun e ->
        let f = bdd_of_expr src e in
        let dst = Bdd.create () in
        Bdd.equal (Bdd.transfer ~src ~dst f) (bdd_of_expr dst e));
    prop "transfer into the source manager is the identity" expr_gen
      (fun e ->
        let f = bdd_of_expr src e in
        Bdd.equal (Bdd.transfer ~src ~dst:src f) f);
  ]

(* ------------------------------------------------------------------ *)
(* Kripke.clone_into properties: a clone must be indistinguishable from
   the original under checking, fair checking and state counting.      *)

let clone_props =
  [
    prop ~count:100 "clone agrees with original on CTL verdicts"
      QCheck2.Gen.(pair (Models.random_model_gen ()) Models.formula_gen)
      (fun (rm, phi) ->
        let m = rm.Models.sym in
        let c = Kripke.clone_into (Bdd.create ()) m in
        Ctl.Check.holds c phi = Ctl.Check.holds m phi);
    prop ~count:60 "clone agrees with original under fairness"
      QCheck2.Gen.(
        pair (Models.random_model_gen ~nfair:2 ()) Models.formula_gen)
      (fun (rm, phi) ->
        let m = rm.Models.sym in
        let c = Kripke.clone_into (Bdd.create ()) m in
        Ctl.Fair.holds c phi = Ctl.Fair.holds m phi);
    prop ~count:100 "clone preserves the reachable state count"
      (Models.random_model_gen ())
      (fun rm ->
        let m = rm.Models.sym in
        let c = Kripke.clone_into (Bdd.create ()) m in
        Kripke.count_states c (Kripke.reachable c)
        = Kripke.count_states m (Kripke.reachable m));
  ]

let test_clone_same_manager () =
  let rm = Models.mutex () in
  Alcotest.check_raises "same manager rejected"
    (Invalid_argument "Kripke.clone_into: same manager") (fun () ->
      ignore (Kripke.clone_into rm.Models.m.Kripke.man rm.Models.m))

(* ------------------------------------------------------------------ *)
(* The domain pool.                                                    *)

let test_pool_order () =
  let pool = Parallel.Pool.create 4 in
  let futures = List.init 20 (fun i -> Parallel.Pool.submit pool (fun () -> i * i)) in
  let results = List.map Parallel.Pool.await_exn futures in
  Parallel.Pool.shutdown pool;
  Alcotest.(check (list int))
    "squares in submission order"
    (List.init 20 (fun i -> i * i))
    results

let test_pool_failure_isolated () =
  let pool = Parallel.Pool.create 2 in
  let fut_bad = Parallel.Pool.submit pool (fun () -> failwith "boom") in
  let fut_ok = Parallel.Pool.submit pool (fun () -> 42) in
  let bad = Parallel.Pool.await fut_bad in
  let ok = Parallel.Pool.await fut_ok in
  Parallel.Pool.shutdown pool;
  Alcotest.(check bool) "failure reported" true
    (match bad with
    | Error (Failure msg) -> msg = "boom"
    | _ -> false);
  Alcotest.(check bool) "other task unaffected" true (ok = Ok 42)

let test_pool_invalid () =
  Alcotest.check_raises "zero workers rejected"
    (Invalid_argument "Parallel.Pool.create: need at least one worker")
    (fun () -> ignore (Parallel.Pool.create 0));
  let pool = Parallel.Pool.create 1 in
  Parallel.Pool.shutdown pool;
  Parallel.Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "submit after shutdown rejected"
    (Invalid_argument "Parallel.Pool.submit: pool is shut down") (fun () ->
      ignore (Parallel.Pool.submit pool (fun () -> ())))

(* ------------------------------------------------------------------ *)
(* Specs.map: parallel verdicts must equal direct sequential checking
   on the same model, for every jobs count.                            *)

let mutex_specs (rm : Models.mutex) =
  [|
    Ctl.AG (Ctl.neg (Ctl.And (rm.Models.c1, rm.Models.c2)));
    Ctl.EF rm.Models.c1;
    Ctl.AG (Ctl.Imp (rm.Models.t1, Ctl.AF rm.Models.c1));
    Ctl.AG (Ctl.Imp (rm.Models.t2, Ctl.AF rm.Models.c2));
  |]

let test_specs_map_matches_sequential () =
  let rm = Models.mutex () in
  let specs = mutex_specs rm in
  let expected = Array.map (Ctl.Fair.holds rm.Models.m) specs in
  List.iter
    (fun jobs ->
      let results, worker_stats =
        Parallel.Specs.map ~jobs
          ~f:(fun wm spec _ -> Ctl.Fair.holds wm spec)
          rm.Models.m specs
      in
      let got =
        Array.map
          (function Ok v -> v | Error e -> raise e)
          results
      in
      Alcotest.(check (array bool))
        (Printf.sprintf "verdicts with jobs=%d" jobs)
        expected got;
      Alcotest.(check bool)
        (Printf.sprintf "worker stats reported with jobs=%d" jobs)
        true
        (List.length worker_stats >= 1))
    [ 1; 2; 4 ]

let test_specs_map_cancelled () =
  let rm = Models.mutex () in
  let cancel = Atomic.make true in
  let results, _ =
    Parallel.Specs.map ~jobs:2 ~cancel
      ~f:(fun wm spec _ -> Ctl.Fair.holds wm spec)
      rm.Models.m (mutex_specs rm)
  in
  Alcotest.(check bool) "every task skipped" true
    (Array.for_all
       (function Error Parallel.Specs.Cancelled -> true | _ -> false)
       results)

let test_specs_map_on_result_order () =
  let rm = Models.mutex () in
  let seen = ref [] in
  let specs = mutex_specs rm in
  let _ =
    Parallel.Specs.map ~jobs:4
      ~on_result:(fun i _ -> seen := i :: !seen)
      ~f:(fun wm spec _ -> Ctl.Fair.holds wm spec)
      rm.Models.m specs
  in
  Alcotest.(check (list int))
    "on_result fires in spec order"
    (List.init (Array.length specs) Fun.id)
    (List.rev !seen)

(* ------------------------------------------------------------------ *)
(* End-to-end determinism: --jobs 4 must be byte-identical to a
   sequential run — verdicts, traces and exit code.  counter26 is run
   under a step budget (deterministic breach text) since its engineered
   specs need ~2^26 iterations ungoverned.                             *)

let exe = Filename.concat (Filename.concat ".." "bin") "smv_check.exe"

let run args =
  let cmd = Filename.quote_command exe args ^ " 2>&1" in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n
  in
  (code, Buffer.contents buf)

let model_path name =
  Filename.concat (Filename.concat (Filename.concat ".." "examples") "models")
    name

let check_deterministic name args =
  let seq_code, seq_out = run args in
  let par_code, par_out = run (args @ [ "--jobs"; "4" ]) in
  Alcotest.(check int) (name ^ ": exit code matches") seq_code par_code;
  Alcotest.(check string) (name ^ ": output byte-identical") seq_out par_out

let test_jobs_deterministic () =
  check_deterministic "mutex" [ model_path "mutex.smv" ];
  check_deterministic "cache" [ model_path "cache.smv" ]

let test_jobs_deterministic_fair () =
  check_deterministic "philosophers" [ model_path "philosophers.smv" ];
  check_deterministic "ring" [ model_path "ring.smv" ]

let test_jobs_deterministic_governed () =
  check_deterministic "counter26"
    [ model_path "counter26.smv"; "--step-limit"; "256" ]

let test_jobs_validation () =
  let code, out = run [ model_path "mutex.smv"; "--jobs=-2" ] in
  Alcotest.(check int) "negative jobs exits 3" 3 code;
  Alcotest.(check bool) "negative jobs reported" true
    (Astring.String.is_infix ~affix:"--jobs" out)

let suite =
  transfer_props @ clone_props
  @ [
      Alcotest.test_case "clone_into rejects the same manager" `Quick
        test_clone_same_manager;
      Alcotest.test_case "pool preserves submission order" `Quick
        test_pool_order;
      Alcotest.test_case "pool isolates task failures" `Quick
        test_pool_failure_isolated;
      Alcotest.test_case "pool argument validation" `Quick test_pool_invalid;
      Alcotest.test_case "Specs.map matches sequential verdicts" `Quick
        test_specs_map_matches_sequential;
      Alcotest.test_case "Specs.map honours a pre-set cancel flag" `Quick
        test_specs_map_cancelled;
      Alcotest.test_case "Specs.map reports results in spec order" `Quick
        test_specs_map_on_result_order;
      Alcotest.test_case "--jobs 4 byte-identical (plain)" `Quick
        test_jobs_deterministic;
      Alcotest.test_case "--jobs 4 byte-identical (fairness)" `Quick
        test_jobs_deterministic_fair;
      Alcotest.test_case "--jobs 4 byte-identical (governed)" `Quick
        test_jobs_deterministic_governed;
      Alcotest.test_case "--jobs validation" `Quick test_jobs_validation;
    ]
