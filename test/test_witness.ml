(* Tests for Section 6: witness generation, validation, explanation.

   The central properties: every witness the generator produces for a
   state the checker says satisfies the formula must pass the
   independent trace validator; and a witness is produced for *every*
   such state (completeness).  Lengths are compared against the exact
   NP-hard minimum from Explicit.Minwit on small instances. *)

let prop name ?(count = 150) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let check_valid what = function
  | Ok () -> true
  | Error e ->
    QCheck2.Test.fail_reportf "%s: %a" what Counterex.Validate.pp_error e

(* ------------------------------------------------------------------ *)
(* Property tests on random models.                                    *)

let with_formula ?(nfair = 2) () =
  QCheck2.Gen.pair (Models.random_model_gen ~nfair ()) Models.formula_gen

(* Every state satisfying fair EG f yields a validating lasso. *)
let prop_eg_witness strategy name =
  prop name ~count:150 (with_formula ())
    (fun (rm, af) ->
      let m = rm.Models.sym in
      let f = Ctl.Fair.sat m (Ctl.EG af) in
      let fset = Ctl.Fair.sat m af in
      List.for_all
        (fun st ->
          let tr = Counterex.Witness.eg ~strategy m ~f:fset ~start:st in
          check_valid "eg witness" (Counterex.Validate.eg_witness m ~f:fset tr)
          && Kripke.Trace.nth tr 0 = st)
        (Kripke.states_in m f))

let prop_eg_restart = prop_eg_witness Counterex.Witness.Restart
    "fair EG witnesses validate (Restart strategy)"

let prop_eg_precompute = prop_eg_witness Counterex.Witness.Precompute
    "fair EG witnesses validate (Precompute strategy)"

let prop_eg_no_fairness =
  prop "plain EG witnesses validate (no constraints)" ~count:150
    (with_formula ~nfair:0 ())
    (fun (rm, af) ->
      let m = rm.Models.sym in
      let fset = Ctl.Check.sat m af in
      let eg = Ctl.Check.eg m fset in
      List.for_all
        (fun st ->
          let tr = Counterex.Witness.eg m ~f:fset ~start:st in
          check_valid "eg witness" (Counterex.Validate.eg_witness m ~f:fset tr))
        (Kripke.states_in m eg))

let prop_eg_rejects_nonmembers =
  prop "witness refused outside fair EG f" ~count:100 (with_formula ())
    (fun (rm, af) ->
      let m = rm.Models.sym in
      let fset = Ctl.Fair.sat m af in
      let eg = Ctl.Fair.eg m fset in
      let outside = Bdd.diff m.Kripke.man m.Kripke.space eg in
      List.for_all
        (fun st ->
          match Counterex.Witness.eg m ~f:fset ~start:st with
          | _ -> false
          | exception Counterex.Witness.No_witness _ -> true)
        (Kripke.states_in m outside))

let prop_eu_witness =
  prop "EU witnesses validate and are ring-minimal" ~count:150
    (QCheck2.Gen.pair (Models.random_model_gen ())
       (QCheck2.Gen.pair Models.formula_gen Models.formula_gen))
    (fun (rm, (af, ag)) ->
      let m = rm.Models.sym in
      let f = Ctl.Check.sat m af and g = Ctl.Check.sat m ag in
      let rings = Ctl.Check.eu_rings m f g in
      let eu = Ctl.Check.eu m f g in
      List.for_all
        (fun st ->
          let tr = Counterex.Witness.eu m ~f ~g ~start:st in
          check_valid "eu witness" (Counterex.Validate.eu_witness m ~f ~g tr)
          (* Ring-minimality: the trace length equals 1 + the smallest
             ring index containing the start state. *)
          &&
          let rec level i =
            if Kripke.eval_in_state m rings.(i) st then i else level (i + 1)
          in
          Kripke.Trace.length tr = 1 + level 0)
        (Kripke.states_in m eu))

let prop_ex_witness =
  prop "EX witnesses validate" ~count:150 (with_formula ~nfair:0 ())
    (fun (rm, af) ->
      let m = rm.Models.sym in
      let f = Ctl.Check.sat m af in
      let ex = Ctl.Check.ex m f in
      List.for_all
        (fun st ->
          let tr = Counterex.Witness.ex m ~f ~start:st in
          check_valid "ex witness" (Counterex.Validate.ex_witness m ~f tr)
          && Kripke.Trace.length tr = 2)
        (Kripke.states_in m ex))

let prop_eu_fair_witness =
  prop "fair EU witnesses are fair lassos" ~count:100
    (QCheck2.Gen.pair (Models.random_model_gen ~nfair:2 ())
       (QCheck2.Gen.pair Models.formula_gen Models.formula_gen))
    (fun (rm, (af, ag)) ->
      let m = rm.Models.sym in
      let f = Ctl.Fair.sat m af and g = Ctl.Fair.sat m ag in
      let eu_fair = Ctl.Fair.eu m f g in
      List.for_all
        (fun st ->
          let tr = Counterex.Witness.eu_fair m ~f ~g ~start:st in
          check_valid "path" (Counterex.Validate.path_ok m tr)
          && Kripke.Trace.is_lasso tr
          (* the fair extension must hit every constraint on the cycle *)
          && check_valid "fair cycle"
               (Counterex.Validate.eg_witness m ~f:m.Kripke.space tr)
          (* some state along the trace satisfies g *)
          && List.exists (Kripke.eval_in_state m g) (Kripke.Trace.states tr))
        (Kripke.states_in m eu_fair))

(* The heuristic witness is never shorter than the exact NP-hard
   minimum (it cannot be — minimality check of Minwit), and both agree
   on existence. *)
let prop_heuristic_vs_minimal =
  prop "greedy witness >= exact minimum; existence agrees" ~count:100
    (Models.random_model_gen ~max_states:6 ~nfair:2 ())
    (fun rm ->
      let m = rm.Models.sym in
      let fair = Ctl.Fair.fair_states m in
      let g = rm.Models.graph in
      List.for_all
        (fun i ->
          let st = rm.Models.encode i in
          let symbolic_fair = Kripke.eval_in_state m fair st in
          match Explicit.Minwit.minimal g ~start:i with
          | None -> not symbolic_fair
          | Some (prefix, cycle) ->
            symbolic_fair
            &&
            let tr =
              Counterex.Witness.eg m ~f:m.Kripke.space ~start:st
            in
            Kripke.Trace.length tr >= List.length prefix + List.length cycle)
        (List.init g.Explicit.Egraph.nstates Fun.id))

(* ------------------------------------------------------------------ *)
(* Explanation: counterexamples for full CTL.                          *)

let prop_counterexample_exists_iff_fails =
  prop "counterexample exists iff the formula fails" ~count:200
    (with_formula ())
    (fun (rm, f) ->
      let m = rm.Models.sym in
      let holds = Ctl.Fair.holds m f in
      match Counterex.Explain.counterexample m f with
      | None -> holds
      | Some tr ->
        (not holds)
        && check_valid "path" (Counterex.Validate.path_ok m tr)
        && check_valid "starts at init"
             (Counterex.Validate.starts_at m m.Kripke.init tr))

let prop_witness_exists_iff_holds_somewhere =
  prop "witness exists iff some initial state satisfies" ~count:200
    (with_formula ())
    (fun (rm, f) ->
      let m = rm.Models.sym in
      let sat = Ctl.Fair.sat m f in
      let any = not (Bdd.is_zero (Bdd.and_ m.Kripke.man m.Kripke.init sat)) in
      match Counterex.Explain.witness m f with
      | None -> not any
      | Some tr ->
        any
        && check_valid "path" (Counterex.Validate.path_ok m tr)
        && check_valid "starts at init"
             (Counterex.Validate.starts_at m m.Kripke.init tr))

let prop_ag_counterexample_reaches_violation =
  prop "AG p counterexample ends in !p" ~count:200
    (Models.random_model_gen ~nfair:1 ())
    (fun rm ->
      let m = rm.Models.sym in
      let f = Ctl.AG (Ctl.atom "p") in
      match Counterex.Explain.counterexample m f with
      | None -> Ctl.Fair.holds m f
      | Some tr ->
        let p = Ctl.Fair.sat m (Ctl.atom "p") in
        List.exists
          (fun st -> not (Kripke.eval_in_state m p st))
          (Kripke.Trace.states tr))

(* ------------------------------------------------------------------ *)
(* Unit tests: the mutex starvation counterexample, end to end.        *)

let test_mutex_starvation_trace () =
  let { Models.m; t1; c1; _ } = Models.mutex () in
  let spec = Ctl.(AG (t1 ==> AF c1)) in
  match Counterex.Explain.counterexample m spec with
  | None -> Alcotest.fail "expected a counterexample"
  | Some tr ->
    Alcotest.(check bool) "valid path" true
      (Counterex.Validate.path_ok m tr = Ok ());
    Alcotest.(check bool) "is a lasso" true (Kripke.Trace.is_lasso tr);
    (* On the cycle: t1 holds and c1 never holds (starvation). *)
    let sat_t1 = Ctl.Fair.sat m t1 and sat_c1 = Ctl.Fair.sat m c1 in
    List.iter
      (fun st ->
        Alcotest.(check bool) "never critical on cycle" false
          (Kripke.eval_in_state m sat_c1 st))
      tr.Kripke.Trace.cycle;
    Alcotest.(check bool) "trying somewhere on trace" true
      (List.exists (Kripke.eval_in_state m sat_t1) (Kripke.Trace.states tr));
    (* Fairness constraints all hit on the cycle. *)
    List.iteri
      (fun k h ->
        Alcotest.(check bool)
          (Printf.sprintf "fairness %d hit" k)
          true
          (List.exists (Kripke.eval_in_state m h) tr.Kripke.Trace.cycle))
      m.Kripke.fairness

let test_mutex_safety_no_counterexample () =
  let { Models.m; c1; c2; _ } = Models.mutex () in
  let spec = Ctl.AG (Ctl.neg Ctl.(c1 &&& c2)) in
  Alcotest.(check bool) "no counterexample" true
    (Counterex.Explain.counterexample m spec = None)

let test_explain_rejects_false_formula () =
  let { Models.m; c1; _ } = Models.mutex () in
  match Kripke.pick_state m m.Kripke.init with
  | None -> Alcotest.fail "no init"
  | Some st ->
    (match Counterex.Explain.explain m c1 ~start:st with
    | _ -> Alcotest.fail "expected Cannot_explain"
    | exception Counterex.Explain.Cannot_explain _ -> ())

let test_ef_witness_on_counter () =
  let m = Models.counter 3 in
  let target = Ctl.(atom "b0" &&& atom "b1" &&& atom "b2") in
  match Counterex.Explain.witness m (Ctl.EF target) with
  | None -> Alcotest.fail "expected witness"
  | Some tr ->
    (* 000 -> 100 -> 010 -> ... -> 111 is 8 states. *)
    Alcotest.(check int) "shortest path to 111" 8 (Kripke.Trace.length tr);
    Alcotest.(check bool) "valid" true
      (Counterex.Validate.path_ok m tr = Ok ())

let test_eg_stats_strategies () =
  (* A chain of two SCCs: states 0-1 form a cycle that cannot satisfy
     the fairness constraint {3}; 2-3 form a fair cycle reachable from
     0.  The first round anchors t in the first SCC and must restart. *)
  let g =
    Explicit.Egraph.make ~nstates:4
      ~edges:[ (0, 1); (1, 0); (0, 2); (2, 3); (3, 2) ]
      ~init:[ 0 ]
      ~fairness:[ Explicit.Egraph.mask_of_list ~nstates:4 [ 3 ] ]
      ()
  in
  let m, encode = Explicit.Bridge.to_kripke g in
  let start = encode 0 in
  let tr, stats =
    Counterex.Witness.eg_stats m ~f:m.Kripke.space ~start
  in
  Alcotest.(check bool) "valid witness" true
    (Counterex.Validate.eg_witness m ~f:m.Kripke.space tr = Ok ());
  Alcotest.(check bool) "at least one round" true (stats.Counterex.Witness.rounds >= 1)

let test_eg_stats_restart_bound () =
  (* From 0 the nearest constraint state is 1, a transient state the
     rest of the path cannot return to, so the first round anchors the
     cycle at t = 1 and fails to close; the construction must restart
     (into the fair SCC {2,3}).  A zero restart budget is therefore
     exceeded — and the exception carries the work done so far. *)
  let g =
    Explicit.Egraph.make ~nstates:4
      ~edges:[ (0, 1); (1, 2); (2, 3); (3, 2) ]
      ~init:[ 0 ]
      ~fairness:[ Explicit.Egraph.mask_of_list ~nstates:4 [ 1; 3 ] ]
      ()
  in
  let m, encode = Explicit.Bridge.to_kripke g in
  let start = encode 0 in
  (match
     Counterex.Witness.eg_stats m ~max_restarts:0 ~f:m.Kripke.space ~start
   with
  | _ -> Alcotest.fail "expected Restart_bound_exceeded"
  | exception Counterex.Witness.Restart_bound_exceeded
      { restarts; rounds; prefix } ->
    Alcotest.(check int) "restarts reported" 1 restarts;
    Alcotest.(check int) "rounds reported" 1 rounds;
    Alcotest.(check bool) "prefix preserved" true (prefix <> []));
  (* A generous budget succeeds on the same instance. *)
  let _, stats =
    Counterex.Witness.eg_stats m ~max_restarts:10 ~f:m.Kripke.space ~start
  in
  Alcotest.(check bool) "restarts within budget" true
    (stats.Counterex.Witness.restarts <= 10)

let suite =
  [
    prop_eg_restart;
    prop_eg_precompute;
    prop_eg_no_fairness;
    prop_eg_rejects_nonmembers;
    prop_eu_witness;
    prop_ex_witness;
    prop_eu_fair_witness;
    prop_heuristic_vs_minimal;
    prop_counterexample_exists_iff_fails;
    prop_witness_exists_iff_holds_somewhere;
    prop_ag_counterexample_reaches_violation;
    Alcotest.test_case "mutex starvation counterexample" `Quick test_mutex_starvation_trace;
    Alcotest.test_case "mutex safety has no counterexample" `Quick test_mutex_safety_no_counterexample;
    Alcotest.test_case "explain rejects false formulas" `Quick test_explain_rejects_false_formula;
    Alcotest.test_case "EF witness on counter" `Quick test_ef_witness_on_counter;
    Alcotest.test_case "eg_stats two-SCC chain" `Quick test_eg_stats_strategies;
    Alcotest.test_case "eg_stats restart bound" `Quick
      test_eg_stats_restart_bound;
  ]

(* ------------------------------------------------------------------ *)
(* The validators reject corrupted traces (they are not vacuous).      *)

let prop_validator_rejects_corruption =
  prop "validators reject corrupted witnesses" ~count:100 (with_formula ())
    (fun (rm, af) ->
      let m = rm.Models.sym in
      let fset = Ctl.Fair.sat m af in
      let eg = Ctl.Fair.eg m fset in
      match Kripke.pick_state m eg with
      | None -> true (* nothing to corrupt *)
      | Some st ->
        let tr = Counterex.Witness.eg m ~f:fset ~start:st in
        (* corruption 1: drop the cycle — no longer a lasso *)
        let no_cycle = Kripke.Trace.finite (Kripke.Trace.states tr) in
        let r1 = Counterex.Validate.eg_witness m ~f:fset no_cycle <> Ok () in
        (* corruption 2: demand an impossible invariant *)
        let r2 =
          Counterex.Validate.eg_witness m ~f:(Bdd.zero m.Kripke.man) tr
          <> Ok ()
        in
        (* corruption 3: duplicate the first state at the front; the
           self-edge need not exist *)
        let first = Kripke.Trace.nth tr 0 in
        let doubled =
          Kripke.Trace.lasso
            ~prefix:(first :: tr.Kripke.Trace.prefix)
            ~cycle:tr.Kripke.Trace.cycle
        in
        let r3 =
          (* valid only if the first state really has a self loop *)
          Counterex.Validate.path_ok m doubled <> Ok ()
          || Kripke.eval_in_state m
               (Kripke.pre m (Kripke.state_to_bdd m first))
               first
        in
        r1 && r2 && r3)

let prop_witness_deterministic =
  prop "witness construction is deterministic" ~count:60 (with_formula ())
    (fun (rm, af) ->
      let m = rm.Models.sym in
      let fset = Ctl.Fair.sat m af in
      let eg = Ctl.Fair.eg m fset in
      match Kripke.pick_state m eg with
      | None -> true
      | Some st ->
        let t1 = Counterex.Witness.eg m ~f:fset ~start:st in
        let t2 = Counterex.Witness.eg m ~f:fset ~start:st in
        Kripke.Trace.states t1 = Kripke.Trace.states t2)

let test_au_counterexample () =
  (* A[p U q] fails on the counter: p never true, q never true ⇒ the
     counterexample demonstrates the negation. *)
  let m = Models.counter 2 in
  let spec = Ctl.AU (Ctl.atom "b0", Ctl.atom "b1") in
  (match Counterex.Explain.counterexample m spec with
  | Some tr ->
    Alcotest.(check bool) "path valid" true
      (Counterex.Validate.path_ok m tr = Ok ());
    Alcotest.(check bool) "starts at init" true
      (Counterex.Validate.starts_at m m.Kripke.init tr = Ok ())
  | None -> Alcotest.fail "expected AU counterexample");
  (* and a true AU has none: counter from 00 satisfies A[!b1 U b0]
     (b0 flips on the very first step). *)
  let holds_spec = Ctl.AU (Ctl.neg (Ctl.atom "b1"), Ctl.atom "b0") in
  Alcotest.(check bool) "true AU" true (Ctl.Check.holds m holds_spec);
  Alcotest.(check bool) "no counterexample for a true spec" true
    (Counterex.Explain.counterexample m holds_spec = None)

let suite =
  suite
  @ [
      prop_validator_rejects_corruption;
      prop_witness_deterministic;
      Alcotest.test_case "AU counterexample" `Quick test_au_counterexample;
    ]
