(* Driving the SMV frontend programmatically: load a model from
   source, check its SPECs, add one more, and inspect the state space.

   Run with:  dune exec examples/smv_demo.exe *)

let source =
  {|
-- A small elevator controller: a cabin on floors 0..3 serving a
-- sticky request for floor 3.
MODULE main
VAR
  floor : 0..3;
  moving_up : boolean;
  request3 : boolean;
ASSIGN
  init(floor) := 0;
  init(moving_up) := TRUE;
  init(request3) := FALSE;
  next(request3) := case
      floor = 3 : FALSE;          -- served
      request3 : TRUE;            -- sticky until served
      TRUE : {TRUE, FALSE};       -- may arrive at any time
    esac;
  next(moving_up) := case
      floor = 3 : FALSE;
      floor = 0 : TRUE;
      TRUE : moving_up;
    esac;
  next(floor) := case
      moving_up & floor < 3 : floor + 1;
      !moving_up & floor > 0 : floor - 1;
      TRUE : floor;
    esac;
SPEC AG (request3 -> AF floor = 3)
SPEC AG EF floor = 0
SPEC AG (floor = 3 -> AX floor = 2)
|}

let () =
  let compiled = Smv.load_string source in
  let m = compiled.Smv.Compile.model in
  Format.printf "elevator model: %.0f reachable states@."
    (Kripke.count_states m (Kripke.reachable m));
  List.iter
    (fun (name, spec) ->
      Format.printf "-- specification %s is %b@." name (Ctl.Fair.holds m spec))
    compiled.Smv.Compile.specs;
  (* An extra query, compiled against the same model. *)
  let extra = "EF (floor = 3 & !request3)" in
  let spec = Smv.Compile.compile_expr compiled extra in
  Format.printf "-- specification %s is %b@." extra (Ctl.Fair.holds m spec);
  (* Show a witness for an existential property. *)
  match Counterex.Explain.witness m (Smv.Compile.compile_expr compiled "EF floor = 3") with
  | Some tr ->
    Format.printf "@.witness for EF floor = 3:@.%a@." (Kripke.Trace.pp m) tr
  | None -> Format.printf "no witness@."
