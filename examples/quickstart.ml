(* Quickstart: build a model with the Builder API, check CTL
   specifications, and print a counterexample trace.

   The model is the classic two-process mutual exclusion protocol with
   a turn variable.  Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Declare state variables. *)
  let b = Kripke.Builder.create () in
  let p = Kripke.Builder.enum_var b "p" [ "idle"; "try"; "crit" ] in
  let q = Kripke.Builder.enum_var b "q" [ "idle"; "try"; "crit" ] in
  let turn = Kripke.Builder.bool_var b "turn" in
  let man = Kripke.Builder.man b in
  let is = Kripke.Builder.is b and is' = Kripke.Builder.is' b in
  let v = Kripke.Builder.v b in
  let s name = Kripke.S name in

  (* 2. Initial states: both processes idle, turn = process p. *)
  Kripke.Builder.add_init b
    (Bdd.conj man
       [ is p (s "idle"); is q (s "idle"); Bdd.not_ man (v turn) ]);

  (* 3. Transitions, one interleaved process step per case. *)
  let turn' = Kripke.Builder.v' b turn in
  let step_of who ~my_turn ~turn_after_exit =
    let keep = Kripke.Builder.keep_all_but b [ who; turn ] in
    let keep_turn = Kripke.Builder.unchanged b turn in
    [
      Bdd.conj man [ is who (s "idle"); is' who (s "try"); keep; keep_turn ];
      Bdd.conj man [ is who (s "idle"); is' who (s "idle"); keep; keep_turn ];
      Bdd.conj man
        [ is who (s "try"); my_turn; is' who (s "crit"); keep; keep_turn ];
      Bdd.conj man [ is who (s "try"); is' who (s "try"); keep; keep_turn ];
      (* leaving the critical section hands the turn over *)
      Bdd.conj man
        [ is who (s "crit"); is' who (s "idle"); keep; turn_after_exit ];
    ]
  in
  List.iter (Kripke.Builder.add_trans_case b)
    (step_of p ~my_turn:(Bdd.not_ man (v turn)) ~turn_after_exit:turn');
  List.iter (Kripke.Builder.add_trans_case b)
    (step_of q ~my_turn:(v turn) ~turn_after_exit:(Bdd.not_ man turn'));

  (* 4. Atomic propositions for the specification language. *)
  Kripke.Builder.add_label b "p_try" (is p (s "try"));
  Kripke.Builder.add_label b "p_crit" (is p (s "crit"));
  Kripke.Builder.add_label b "q_crit" (is q (s "crit"));
  let m = Kripke.Builder.build b in

  (* 5. Check specifications. *)
  let check text =
    let spec = Ctl.Parse.formula text in
    let holds = Ctl.Fair.holds m spec in
    Format.printf "-- specification %s is %b@." text holds;
    if not holds then
      match Counterex.Explain.counterexample m spec with
      | Some tr ->
        Format.printf "%a@." (Kripke.Trace.pp m) tr;
        Format.printf "-- (%d states%s)@." (Kripke.Trace.length tr)
          (if Kripke.Trace.is_lasso tr then ", lasso" else "")
      | None -> ()
  in
  Format.printf "state space: %.0f states, %.0f reachable@."
    (Kripke.count_states m m.Kripke.space)
    (Kripke.count_states m (Kripke.reachable m));
  check "AG !(p_crit & q_crit)";
  check "EF p_crit";
  check "AG (p_try -> AF p_crit)"
