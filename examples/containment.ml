(* Section 8: language containment between ω-automata with
   counterexample words.

   A round-robin scheduler (system) is checked against two
   specifications: "every process is scheduled infinitely often"
   (holds) and, for a faulty prioritised scheduler, the same
   specification fails and a concrete infinite schedule — a lasso word
   — demonstrating the starvation is printed.

   Run with:  dune exec examples/containment.exe *)

let alphabet = [| "run_A"; "run_B" |]

(* System 1: strict round robin A, B, A, B, ...  (accepts all its
   runs: Büchi with every state accepting). *)
let round_robin =
  Automata.Streett.of_buchi ~nstates:2 ~init:0 ~alphabet
    ~delta:[ (0, 0, 1); (1, 1, 0) ]
    ~accepting:[ 0; 1 ]

(* System 2: a prioritised scheduler that may run A forever and only
   occasionally lets B run. *)
let prioritised =
  Automata.Streett.of_buchi ~nstates:1 ~init:0 ~alphabet
    ~delta:[ (0, 0, 0); (0, 1, 0) ]
    ~accepting:[ 0 ]

(* Specification: both processes run infinitely often.  Deterministic
   Streett automaton remembering who ran last:
   state 0 = ran A, state 1 = ran B; pairs encode GF(run_A) /\
   GF(run_B) as (inf ⊆ ∅ or inf ∩ {0} ≠ ∅) and likewise for 1. *)
let both_fair =
  Automata.Streett.make ~nstates:2 ~init:0 ~alphabet
    ~delta:[ (0, 0, 0); (0, 1, 1); (1, 0, 0); (1, 1, 1) ]
    ~accept:[ ([], [ 0 ]); ([], [ 1 ]) ]

let report name ~sys ~spec =
  Format.printf "@[<v>L(%s) ⊆ L(both processes run infinitely often)?@," name;
  (match Automata.Containment.contains ~sys ~spec () with
  | Ok () -> Format.printf "  yes — containment holds@,"
  | Error ce ->
    Format.printf "  no — counterexample word (accepted by %s, rejected by the spec):@," name;
    let pp_word ppf w =
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
        Format.pp_print_string ppf w
    in
    Format.printf "    %a (%a)^ω@," pp_word ce.Automata.Containment.word_prefix
      pp_word ce.Automata.Containment.word_cycle;
    Format.printf "  validated independently: %b@,"
      (Automata.Containment.check_counterexample ~sys ~spec ce));
  Format.printf "@]@."

let () =
  report "round-robin scheduler" ~sys:round_robin ~spec:both_fair;
  report "prioritised scheduler" ~sys:prioritised ~spec:both_fair

(* ------------------------------------------------------------------ *)
(* The same story under Rabin and Muller acceptance (the paper's
   closing Section 8 remark).                                          *)

let () =
  (* Rabin: "eventually only run_A" as pair (E = {after-B}, F = {after-A}). *)
  let tracker_delta =
    [ (0, 0, 0); (0, 1, 1); (1, 0, 0); (1, 1, 1) ]
  in
  let rabin_only_a =
    Automata.Rabin.make ~nstates:2 ~init:0 ~alphabet
      ~delta:tracker_delta ~accept:[ ([ 1 ], [ 0 ]) ]
  in
  let rabin_all =
    Automata.Rabin.make ~nstates:1 ~init:0 ~alphabet
      ~delta:[ (0, 0, 0); (0, 1, 0) ]
      ~accept:[ ([], [ 0 ]) ]
  in
  Format.printf "@[<v>Rabin: L(any schedule) ⊆ L(eventually only run_A)?@,";
  (match Automata.Rabin.contains ~sys:rabin_all ~spec:rabin_only_a () with
  | Ok () -> Format.printf "  yes@,"
  | Error ce ->
    Format.printf "  no — e.g. ...(%s)^ω; validated: %b@,"
      (String.concat " " ce.Automata.Containment.word_cycle)
      (Automata.Rabin.check_counterexample ~sys:rabin_all ~spec:rabin_only_a
         ce));
  Format.printf "@]@.";
  (* Muller: family pinning inf exactly. *)
  let muller_fair =
    Automata.Muller.make ~nstates:2 ~init:0 ~alphabet ~delta:tracker_delta
      ~family:[ [ 0; 1 ] ]
  in
  let muller_all =
    Automata.Muller.make ~nstates:2 ~init:0 ~alphabet ~delta:tracker_delta
      ~family:[ [ 0 ]; [ 1 ]; [ 0; 1 ] ]
  in
  Format.printf "@[<v>Muller: L(any schedule) ⊆ L(both run infinitely often)?@,";
  (match Automata.Muller.contains ~sys:muller_all ~spec:muller_fair () with
  | Ok () -> Format.printf "  yes@,"
  | Error ce ->
    Format.printf "  no — e.g. %s (%s)^ω; validated: %b@,"
      (String.concat " " ce.Automata.Containment.word_prefix)
      (String.concat " " ce.Automata.Containment.word_cycle)
      (Automata.Muller.check_counterexample ~sys:muller_all ~spec:muller_fair
         ce));
  Format.printf "@]@."
