(* Section 7: checking and witnessing the restricted CTL* class
   E /\ (GF p \/ FG q).

   The model is a job server that alternates between serving and
   maintenance; a CTL* formula asks for an execution that either
   serves infinitely often or eventually stays in maintenance, while
   never crashing.

   Run with:  dune exec examples/ctlstar_demo.exe *)

let () =
  let b = Kripke.Builder.create () in
  let st =
    Kripke.Builder.enum_var b "state" [ "serve"; "maint"; "crash" ]
  in
  let man = Kripke.Builder.man b in
  let is = Kripke.Builder.is b and is' = Kripke.Builder.is' b in
  let s name = Kripke.S name in
  Kripke.Builder.add_init b (is st (s "serve"));
  List.iter
    (Kripke.Builder.add_trans_case b)
    [
      Bdd.and_ man (is st (s "serve")) (is' st (s "serve"));
      Bdd.and_ man (is st (s "serve")) (is' st (s "maint"));
      Bdd.and_ man (is st (s "serve")) (is' st (s "crash"));
      Bdd.and_ man (is st (s "maint")) (is' st (s "maint"));
      Bdd.and_ man (is st (s "maint")) (is' st (s "serve"));
      Bdd.and_ man (is st (s "crash")) (is' st (s "crash"));
    ];
  Kripke.Builder.add_label b "serving" (is st (s "serve"));
  Kripke.Builder.add_label b "maintaining" (is st (s "maint"));
  Kripke.Builder.add_label b "crashed" (is st (s "crash"));
  let m = Kripke.Builder.build b in

  let serving = Ctlstar.Atom "serving" in
  let maintaining = Ctlstar.Atom "maintaining" in
  let crashed = Ctlstar.Atom "crashed" in
  let formula =
    Ctlstar.E
      (Ctlstar.PAnd
         ( Ctlstar.POr (Ctlstar.gf serving, Ctlstar.fg maintaining),
           Ctlstar.fg (Ctlstar.Not crashed) ))
  in
  Format.printf "model: job server with states serve / maint / crash@.";
  Format.printf "formula: %s@." (Ctlstar.to_string formula);
  Format.printf "holds on all initial states: %b@.@."
    (Ctlstar.Gffg.holds m formula);

  (* Build the witness by hand through the conjunct interface, showing
     the branch resolution the algorithm performs. *)
  let set name = Ctl.Check.sat m (Ctl.atom name) in
  let zero = Bdd.zero m.Kripke.man in
  let conjuncts =
    [
      { Ctlstar.Gffg.gf = set "serving"; fg = set "maintaining" };
      { Ctlstar.Gffg.gf = zero;
        fg = Bdd.diff m.Kripke.man m.Kripke.space (set "crashed") };
    ]
  in
  match Kripke.pick_state m m.Kripke.init with
  | None -> assert false
  | Some start ->
    let choices = Ctlstar.Gffg.resolve m conjuncts ~start in
    List.iteri
      (fun i choice ->
        Format.printf "conjunct %d resolved to the %s branch@." (i + 1)
          (match choice with
          | Ctlstar.Gffg.Took_gf -> "GF"
          | Ctlstar.Gffg.Took_fg -> "FG"))
      choices;
    let tr = Ctlstar.Gffg.witness m conjuncts ~start in
    Format.printf "@.witness (%d states, cycle of %d):@." (Kripke.Trace.length tr)
      (List.length tr.Kripke.Trace.cycle);
    Format.printf "%a@." (Kripke.Trace.pp m) tr;
    Format.printf "witness validates: %b@."
      (Ctlstar.Gffg.witness_ok m conjuncts tr)
