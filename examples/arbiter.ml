(* The Section 6 case study, end to end: verify the asynchronous
   arbiter under gate fairness, find the liveness bug, and print the
   counterexample the way SMV would.

   Run with:  dune exec examples/arbiter.exe [-- <users>] *)

let () =
  let users =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2
  in
  let m = Circuit.Arbiter.model users in
  Format.printf "asynchronous arbiter with %d users@." users;
  Format.printf "state bits: %d; reachable states: %.0f@." m.Kripke.nbits
    (Kripke.count_states m (Kripke.reachable m));
  Format.printf "fairness constraints (one per gate): %d@.@."
    (List.length m.Kripke.fairness);
  let t0 = Sys.time () in
  List.iter
    (fun (name, spec) ->
      let holds = Ctl.Fair.holds m spec in
      Format.printf "-- specification %s is %b@." name holds;
      if not holds then begin
        match Counterex.Explain.counterexample m spec with
        | Some tr ->
          Format.printf
            "-- as demonstrated by the following execution sequence@.";
          Format.printf "%a@." (Kripke.Trace.pp m) tr;
          Format.printf "-- counterexample: %d states, cycle of length %d@.@."
            (Kripke.Trace.length tr)
            (List.length tr.Kripke.Trace.cycle)
        | None -> ()
      end)
    (Circuit.Arbiter.specs users);
  Format.printf "total verification time: %.2fs@." (Sys.time () -. t0)
