(* smv_check — a command-line symbolic model checker in the style of
   SMV: parse a model, check every SPEC (plus any --spec formulas),
   print verdicts and, for failed universal / satisfied existential
   specifications, an execution trace (Section 6).

   Exit codes: 0 every specification holds; 1 at least one is false
   (and none undetermined); 2 a resource limit tripped, a specification
   was left undetermined, or the run was interrupted; 3 input error,
   internal failure, or a trace that failed certification.

   Recovery: with --retries N a breached / out-of-memory / crashed
   specification is re-attempted up to N times through the
   Robust.Ladder rungs (gc-retry, degraded representation,
   explicit-state fallback), each attempt under exponentially
   backed-off budgets; with --retries 0 (the default) behaviour —
   output bytes included — is identical to the pre-recovery checker. *)

let ( let* ) = Result.bind

type options = {
  file : string;
  extra_specs : string list;
  fair : bool;
  traces : bool;
  stats : bool;
  partitioned : bool;
  cache_limit : int option;
  simulate : int option;
  seed : int;
  timeout : float option;
  node_limit : int option;
  step_limit : int option;
  jobs : int;
  retries : int;
  retry_factor : float;
  certify : bool;
  inject : string option;
  debug : bool;
  reorder : [ `None | `Once | `Auto ];
  reorder_threshold : int;
}

(* Per-spec verdicts; [Undetermined] covers resource breaches and
   (without --debug) unexpected exceptions, so one bad specification
   never takes down the rest of the run. *)
type verdict = Holds | Fails | Undetermined of string

(* What check_one hands back: the verdict plus whether a produced trace
   failed certification (which forces exit code 3). *)
type report = { verdict : verdict; cert_failed : bool }

(* A parsed --inject specification. *)
type inject = Inject_site of Bdd.Fault.site * int | Inject_worker of int

(* --------------------------------------------------------------- *)
(* SIGINT: set the shared cancel flag.  Every per-spec Limits bundle —
   sequential or on a worker domain — is created with this flag, so one
   atomic store cancels them all: the next poll point inside each
   running BDD operation raises, the in-flight specs are reported
   UNDETERMINED, queued specs are skipped, and the run exits cleanly
   with code 2.  The recovery ladder checks the same flag between
   attempts, so Ctrl-C also means "no more retries".  [interrupted] is
   only ever touched from the main domain (handler + aggregation). *)

let interrupted = ref false
let cancel_flag : bool Atomic.t = Atomic.make false

let install_sigint () =
  match
    Sys.set_signal Sys.sigint
      (Sys.Signal_handle
         (fun _ ->
           interrupted := true;
           Atomic.set cancel_flag true))
  with
  | () -> ()
  | exception (Invalid_argument _ | Sys_error _) ->
    (* no signal support on this platform: run ungoverned *)
    ()

(* A fresh budget bundle for one specification, cancellable through the
   shared flag. *)
let mk_limits opts =
  Bdd.Limits.create ?timeout:opts.timeout ?node_budget:opts.node_limit
    ?step_budget:opts.step_limit ~cancel:cancel_flag ()

let load opts =
  match
    Smv.load_file ~partitioned:opts.partitioned
      ~static_order:(opts.reorder <> `None)
      opts.file
  with
  | compiled -> Ok compiled
  | exception Sys_error msg -> Error msg
  | exception Smv.Lexer.Error (msg, pos) ->
    Error (Format.asprintf "%s: lexical error at %a: %s" opts.file Smv.Ast.pp_pos pos msg)
  | exception Smv.Parser.Error (msg, pos) ->
    Error (Format.asprintf "%s: syntax error at %a: %s" opts.file Smv.Ast.pp_pos pos msg)
  | exception (Smv.Compile.Error (msg, pos) | Smv.Flatten.Error (msg, pos))
    ->
    let where =
      match pos with
      | Some p -> Format.asprintf " at %a" Smv.Ast.pp_pos p
      | None -> ""
    in
    Error (Printf.sprintf "%s: error%s: %s" opts.file where msg)

let compile_extra compiled text =
  match Smv.Compile.compile_expr compiled text with
  | f -> Ok (text, f)
  | exception Smv.Lexer.Error (msg, _) | exception Smv.Parser.Error (msg, _)
  ->
    Error (Printf.sprintf "--spec %S: %s" text msg)
  | exception Smv.Compile.Error (msg, _) ->
    Error (Printf.sprintf "--spec %S: %s" text msg)

let parse_inject ~seed = function
  | None -> Ok None
  | Some s -> (
    match String.index_opt s ':' with
    | None ->
      Error "--inject: expected SITE:COUNT (e.g. mk:1000, step:3, worker:1)"
    | Some i ->
      let site = String.sub s 0 i in
      let count = String.sub s (i + 1) (String.length s - i - 1) in
      let* n =
        if count = "rand" then
          (* Seeded so chaos runs are reproducible: same --seed, same
             injection point. *)
          let rng = Random.State.make [| seed; 0x1aB2 |] in
          Ok (1 + Random.State.int rng 4096)
        else
          match int_of_string_opt count with
          | Some n when n >= 1 -> Ok n
          | Some _ | None ->
            Error "--inject: COUNT must be a positive integer or 'rand'"
      in
      match site with
      | "worker" -> Ok (Some (Inject_worker n))
      | _ -> (
        match Bdd.Fault.site_of_string site with
        | Some fs -> Ok (Some (Inject_site (fs, n)))
        | None ->
          Error
            (Printf.sprintf
               "--inject: unknown site %S (expected mk, probe, gc, step, \
                reorder or worker)"
               site)))

let print_model_stats ?limits m =
  let reachable = Kripke.reachable ?limits m in
  Format.printf "model: %d state bits, %.0f states in the state space, %.0f reachable@."
    m.Kripke.nbits
    (Kripke.count_states m m.Kripke.space)
    (Kripke.count_states m reachable);
  let dead = Kripke.deadlocks m in
  if not (Bdd.is_zero dead) then
    Format.printf
      "warning: %.0f deadlocked states (CTL semantics assumes a total relation)@."
      (Kripke.count_states m dead)

(* The post-run half of --stats: BDD manager counters and fixpoint
   iteration counts accumulated while checking.  [extra] carries the
   per-worker manager snapshots of a parallel run, merged into the main
   manager's counters so --stats reports one totalled view of the whole
   run regardless of --jobs. *)
let print_run_stats ?(extra = []) m =
  let s = List.fold_left Bdd.merge_stats (Bdd.stats m.Kripke.man) extra in
  Format.printf "%a@." Bdd.pp_stats s;
  let c = Ctl.Check.fixpoint_stats () in
  let f = Ctl.Fair.fixpoint_stats () in
  Format.printf
    "fixpoints: %d EU iterations, %d EG iterations, %d ring layers@."
    c.Ctl.Check.eu_iterations c.Ctl.Check.eg_iterations
    c.Ctl.Check.ring_layers;
  Format.printf
    "fair fixpoints: %d outer iterations, %d ring layers saved@."
    f.Ctl.Fair.outer_iterations f.Ctl.Fair.ring_layers

(* The paper: a true existential specification gets a witness, a false
   universal one gets a counterexample. *)
let rec existential = function
  | Ctl.EX _ | Ctl.EF _ | Ctl.EG _ | Ctl.EU _ -> true
  | Ctl.Not f -> not (existential f)
  | Ctl.True | Ctl.False | Ctl.Atom _ | Ctl.Pred _ | Ctl.And _ | Ctl.Or _
  | Ctl.Imp _ | Ctl.Iff _ | Ctl.AX _ | Ctl.AF _ | Ctl.AG _ | Ctl.AU _ ->
    false

let describe_breach (info : Bdd.Limits.info) =
  Format.asprintf "%a" Bdd.Limits.pp_breach info.Bdd.Limits.breach

let print_breach_progress ppf (info : Bdd.Limits.info) =
  let p = info.Bdd.Limits.progress in
  Format.fprintf ppf
    "--   progress before the limit: %d fixpoint iterations, %d ring segments%s@."
    p.Bdd.Limits.iterations p.Bdd.Limits.rings
    (match p.Bdd.Limits.witness_prefix with
    | [] -> ""
    | states -> Printf.sprintf ", %d witness states" (List.length states))

(* Build — and, when [emit], print (byte-identical to the pre-recovery
   checker) — the trace for a determined verdict.  A resource breach
   here is reported as a note but keeps the verdict: the answer was
   already computed, only its explanation ran out of budget.
   [fallback] switches the source of the trace to the explicit-state
   bridge (the ladder's last rung); the surrounding text stays the
   same, so downstream tooling parses both alike. *)
let trace_for ppf m ~limits ~emit ~holds ~fallback spec =
  let emitf fmt =
    if emit then Format.fprintf ppf fmt else Format.ifprintf ppf fmt
  in
  let show tr =
    emitf "-- as demonstrated by the following execution sequence@.";
    emitf "%a@." (Kripke.Trace.pp m) tr
  in
  let show_fail tr =
    show tr;
    emitf "-- trace length: %d states%s@." (Kripke.Trace.length tr)
      (if Kripke.Trace.is_lasso tr then
         Printf.sprintf " (cycle of length %d)"
           (List.length tr.Kripke.Trace.cycle)
       else "")
  in
  match fallback with
  | Some fb ->
    if holds then begin
      if not (existential spec) then None
      else
        match Robust.Fallback.witness fb spec with
        | Some tr ->
          show tr;
          Some tr
        | None -> None
    end
    else begin
      match Robust.Fallback.counterexample fb spec with
      | Some tr ->
        show_fail tr;
        Some tr
      | None ->
        emitf "-- (no explicit-state trace for this formula shape)@.";
        None
    end
  | None ->
    if holds then begin
      if not (existential spec) then None
      else
        match Counterex.Explain.witness ~limits m spec with
        | Some tr ->
          show tr;
          Some tr
        | None -> None
        | exception Counterex.Explain.Cannot_explain _ -> None
        | exception Bdd.Limits.Exhausted info ->
          emitf "-- (witness construction hit a resource limit: %s)@."
            (describe_breach info);
          None
    end
    else begin
      (* Counterexamples always use fair semantics when constraints are
         declared, as SMV does. *)
      match Counterex.Explain.counterexample ~limits m spec with
      | Some tr ->
        show_fail tr;
        Some tr
      | None ->
        emitf
          "-- (no initial-state counterexample: the formula fails only under plain semantics)@.";
        None
      | exception Counterex.Explain.Cannot_explain msg ->
        emitf "-- (could not build a linear counterexample: %s)@." msg;
        None
      | exception Bdd.Limits.Exhausted info ->
        emitf "-- (counterexample construction hit a resource limit: %s)@."
          (describe_breach info);
        None
    end

(* What one ladder attempt produced: the verdict, the model it was
   decided on (the degraded rung may swap in a partitioned variant),
   the budget bundle it ran under (trace construction keeps charging
   it), and the explicit bridge when the verdict came from the
   explicit-state rung. *)
type attempt_result = {
  ar_holds : bool;
  ar_model : Kripke.t;
  ar_limits : Bdd.Limits.t;
  ar_fallback : Robust.Fallback.t option;
}

(* Check one specification.  Budgets are per-spec so one hard
   specification cannot starve the rest; the bundle is also the SIGINT
   cancellation point.  With --retries 0 this reduces to exactly one
   Direct attempt whose behaviour (prints included) matches the
   pre-recovery checker byte for byte.  All output goes to [ppf]: the
   sequential path passes the standard formatter, the parallel path a
   per-spec buffer replayed in spec order.

   [clusters] supplies the transition clusters for the degraded rung
   (a thunk: workers transfer them onto their own manager lazily);
   [inject] arms the manager's fault before the first attempt;
   [prior] carries a crashed worker attempt so the local re-run resumes
   the ladder instead of restarting it. *)
let check_one ppf m ~opts ~clusters ?inject ?prior (name, spec) =
  let man = m.Kripke.man in
  let spec_started = Unix.gettimeofday () in
  let saved_cache_limit = Bdd.cache_limit man in
  let max_attempts = opts.retries + 1 in
  (* Exponential budget backoff: attempt 1 runs under exactly the base
     budgets (the --retries 0 identity); retry k multiplies node/step
     budgets by factor^(k-1) and gives the remaining share of a
     (timeout * attempts)-sized wall-clock pool. *)
  let backoff k = function
    | None -> None
    | Some n ->
      let scaled = float_of_int n *. (opts.retry_factor ** float_of_int (k - 1)) in
      Some (if scaled >= 1e18 then max_int else int_of_float scaled)
  in
  let timeout_for k =
    match opts.timeout with
    | None -> None
    | Some t ->
      if k = 1 then Some t
      else
        let total = t *. float_of_int max_attempts in
        let elapsed = Unix.gettimeofday () -. spec_started in
        let left = max 1 (max_attempts - k + 1) in
        Some (Float.max 0.05 ((total -. elapsed) /. float_of_int left))
  in
  let limits_for k =
    if k = 1 then mk_limits opts
    else
      Bdd.Limits.create ?timeout:(timeout_for k)
        ?node_budget:(backoff k opts.node_limit)
        ?step_budget:(backoff k opts.step_limit) ~cancel:cancel_flag ()
  in
  let run_symbolic model limits =
    (* Checkpoints on: the verdict phase runs only rooted fixpoints, so
       a pending auto-reorder may fire between iterations.  Witness and
       certification phases below never enable them. *)
    Bdd.Limits.with_attached model.Kripke.man limits (fun () ->
        Bdd.Reorder.with_checkpoints model.Kripke.man (fun () ->
            if opts.fair then Ctl.Fair.holds ~limits model spec
            else Ctl.Check.holds ~limits model spec))
  in
  (* The degraded representation, built once per spec: partitioned
     transition relation (from the compiler's clusters) when the model
     is not already partitioned. *)
  let dmodel = ref None in
  let degraded_model () =
    match !dmodel with
    | Some dm -> dm
    | None ->
      let dm =
        if Kripke.partitioned m then m
        else
          match clusters () with
          | [] -> m
          | cs -> ( try Kripke.with_partition m cs with Invalid_argument _ -> m)
      in
      dmodel := Some dm;
      dm
  in
  let attempt_fn ~attempt strategy =
    let limits = limits_for attempt in
    match strategy with
    | Robust.Ladder.Direct | Robust.Ladder.Main_domain ->
      { ar_holds = run_symbolic m limits; ar_model = m; ar_limits = limits;
        ar_fallback = None }
    | Robust.Ladder.Gc_retry ->
      (* Reclaim the breached computation's intermediate nodes and drop
         the op-caches, then re-run plainly under backed-off budgets. *)
      ignore (Bdd.gc man);
      { ar_holds = run_symbolic m limits; ar_model = m; ar_limits = limits;
        ar_fallback = None }
    | Robust.Ladder.Reorder ->
      (* Shrink the tables with a sifting sweep before giving up any
         fidelity.  The sweep runs under this attempt's limits, so a
         deadline aborts it at a swap boundary; a failure inside it
         (including an injected reorder fault) is classified by the
         ladder like any other and climbs to the next rung. *)
      Bdd.Limits.with_attached man limits (fun () -> Bdd.reorder man);
      { ar_holds = run_symbolic m limits; ar_model = m; ar_limits = limits;
        ar_fallback = None }
    | Robust.Ladder.Degraded ->
      (* Trade speed for footprint: tight op-caches plus a partitioned
         relation with early quantification. *)
      let tightened =
        match Bdd.cache_limit man with
        | Some n -> min n 8192
        | None -> 8192
      in
      Bdd.set_cache_limit man (Some tightened);
      let dm = degraded_model () in
      { ar_holds = run_symbolic dm limits; ar_model = dm;
        ar_limits = limits; ar_fallback = None }
    | Robust.Ladder.Explicit_state ->
      (* Abandon the symbolic representation: enumerate the (small)
         state space and decide explicitly.  Deadline and SIGINT still
         apply (the enumeration's symbolic steps poll them); node/step
         budgets do not — they measure symbolic work. *)
      let limits =
        Bdd.Limits.create ?timeout:(timeout_for attempt) ~cancel:cancel_flag ()
      in
      let fb =
        Bdd.Limits.with_attached man limits (fun () ->
            Robust.Fallback.build m)
      in
      {
        ar_holds = Robust.Fallback.holds fb ~fair:opts.fair spec;
        ar_model = m;
        ar_limits = limits;
        ar_fallback = Some fb;
      }
  in
  (* Arm the injected fault (chaos testing) for this specification;
     one-shot, and disarmed on every exit path so a fault armed for
     spec k can never leak into spec k+1. *)
  (match inject with
  | Some (site, n) -> Bdd.Fault.arm man ~site ~after:n
  | None -> ());
  Fun.protect
    ~finally:(fun () ->
      Bdd.Fault.disarm man;
      Bdd.set_cache_limit man saved_cache_limit)
    (fun () ->
      let outcome =
        match
          Robust.Ladder.run ~retries:opts.retries
            ~cancelled:(fun () -> Atomic.get cancel_flag)
            ~fits_explicit:(fun () -> Robust.Fallback.fits m)
            ~live_nodes:(fun () -> Bdd.live_nodes man)
            ?prior attempt_fn
        with
        | r -> r
        | exception Bdd.Limits.Exhausted info ->
          (* Only [Interrupted] breaches reach here (the ladder retries
             the others): report like any breach and stop cleanly. *)
          Format.fprintf ppf "-- specification %s is UNDETERMINED (%s)@."
            name (describe_breach info);
          print_breach_progress ppf info;
          ignore (Bdd.gc man);
          Error (Robust.Ladder.Breach info, [])
        | exception e when not opts.debug ->
          Format.fprintf ppf
            "-- specification %s is UNDETERMINED (internal error: %s)@."
            name (Printexc.to_string e);
          Error
            ( Robust.Ladder.Crashed (Printexc.to_string e),
              [] )
      in
      let print_attempt_log log =
        if opts.stats && List.length log > 1 then
          List.iter
            (fun a ->
              Format.fprintf ppf "--   %a@." Robust.Ladder.pp_attempt a)
            log
      in
      match outcome with
      | Error (failure, log) ->
        (* The ladder is out of rungs (or was never given any): report
           the last failure.  For --retries 0 these prints are exactly
           the pre-recovery checker's. *)
        (match (failure, log) with
        | Robust.Ladder.Breach info, _ :: _ ->
          Format.fprintf ppf "-- specification %s is UNDETERMINED (%s)@."
            name (describe_breach info);
          print_breach_progress ppf info;
          ignore (Bdd.gc man)
        | Robust.Ladder.Oom, _ :: _ ->
          if opts.debug && opts.retries = 0 then raise Out_of_memory;
          Format.fprintf ppf
            "-- specification %s is UNDETERMINED (internal error: %s)@." name
            (Printexc.to_string Out_of_memory)
        | Robust.Ladder.Crashed msg, _ :: _ ->
          Format.fprintf ppf
            "-- specification %s is UNDETERMINED (worker failed: %s)@." name
            msg
        | _, [] ->
          (* the failure was already reported (interrupt / internal
             error paths above) *)
          ());
        print_attempt_log log;
        { verdict = Undetermined (Robust.Ladder.failure_name failure);
          cert_failed = false }
      | Ok (ar, log) ->
        let holds = ar.ar_holds in
        let final =
          match List.rev log with a :: _ -> a | [] -> assert false
        in
        let recovered = final.Robust.Ladder.index > 1 in
        Format.fprintf ppf "-- specification %s is %s%s@." name
          (if holds then "true" else "false")
          (if recovered then
             Printf.sprintf " (recovered: attempt %d via %s)"
               final.Robust.Ladder.index
               (Robust.Ladder.strategy_name final.Robust.Ladder.strategy)
           else "");
        print_attempt_log log;
        let need_cert = opts.certify || recovered in
        let tr =
          if opts.traces || need_cert then begin
            match
              Bdd.Limits.with_attached ar.ar_model.Kripke.man ar.ar_limits
                (fun () ->
                  trace_for ppf ar.ar_model ~limits:ar.ar_limits
                    ~emit:opts.traces ~holds ~fallback:ar.ar_fallback spec)
            with
            | tr -> tr
            | exception e when not opts.debug ->
              Format.fprintf ppf "-- (trace construction failed: %s)@."
                (Printexc.to_string e);
              None
          end
          else None
        in
        let cert_failed =
          match tr with
          | Some tr when need_cert -> (
            (* Certification runs uncapped but cancellable: the trace
               is already in hand, only SIGINT may stop its
               re-validation. *)
            let climits = Bdd.Limits.create ~cancel:cancel_flag () in
            let cert =
              if holds then Robust.Certify.witness ~limits:climits m spec tr
              else Robust.Certify.counterexample ~limits:climits m spec tr
            in
            match
              Bdd.Limits.with_attached man climits (fun () -> cert)
            with
            | Ok () ->
              Format.fprintf ppf
                "-- certificate: trace independently validated (%d states)@."
                (Kripke.Trace.length tr);
              false
            | Error msg ->
              Format.fprintf ppf "-- CERTIFICATION FAILED: %s@." msg;
              Format.fprintf ppf
                "-- specification %s verdict withdrawn (uncertified trace)@."
                name;
              true
            | exception Bdd.Limits.Exhausted info ->
              Format.fprintf ppf "-- (certification interrupted: %s)@."
                (describe_breach info);
              false)
          | Some _ | None -> false
        in
        if cert_failed then
          { verdict = Undetermined "certification failed"; cert_failed = true }
        else { verdict = (if holds then Holds else Fails); cert_failed = false })

(* Random walk from a random initial state, choosing uniformly at each
   step with symbolic cofactor-weighted sampling — no state
   enumeration, so arbitrarily large models are safe to explore. *)
let simulate m ~steps ~seed =
  let rng = Random.State.make [| seed |] in
  let pick set = Kripke.pick_random_state m ~rng set in
  match pick m.Kripke.init with
  | None -> Format.printf "no initial state@."
  | Some st ->
    let rec walk acc st k =
      if k = 0 then List.rev acc
      else
        match pick (Kripke.post m (Kripke.state_to_bdd m st)) with
        | None -> List.rev acc (* deadlock *)
        | Some st' -> walk (st' :: acc) st' (k - 1)
    in
    let tr = Kripke.Trace.finite (walk [ st ] st steps) in
    Format.printf "-- random simulation (%d steps, seed %d)@." steps seed;
    Format.printf "%a@." (Kripke.Trace.pp m) tr

let validate opts =
  let* () =
    match opts.cache_limit with
    | Some n when n <= 0 -> Error "--cache-limit: N must be positive"
    | Some _ | None -> Ok ()
  in
  let* () =
    match opts.simulate with
    | Some n when n <= 0 -> Error "--simulate: STEPS must be positive"
    | Some _ | None -> Ok ()
  in
  let* () =
    match opts.timeout with
    | Some t when t <= 0.0 -> Error "--timeout: SECS must be positive"
    | Some _ | None -> Ok ()
  in
  let* () =
    match opts.node_limit with
    | Some n when n <= 0 -> Error "--node-limit: N must be positive"
    | Some _ | None -> Ok ()
  in
  let* () =
    match opts.step_limit with
    | Some n when n <= 0 -> Error "--step-limit: N must be positive"
    | Some _ | None -> Ok ()
  in
  let* () =
    if opts.retries < 0 then Error "--retries: N must be >= 0" else Ok ()
  in
  let* () =
    if opts.reorder_threshold <= 0 then
      Error "--reorder-threshold: N must be positive"
    else Ok ()
  in
  let* () =
    if opts.retry_factor < 1.0 then
      Error "--retry-budget-factor: F must be >= 1.0"
    else Ok ()
  in
  let* inj = parse_inject ~seed:opts.seed opts.inject in
  let* () =
    match inj with
    | Some (Inject_worker _) when opts.jobs < 2 ->
      Error "--inject worker:N requires a parallel run (--jobs >= 2)"
    | Some _ | None -> Ok ()
  in
  if opts.jobs < 0 then Error "--jobs: N must be >= 0 (0 means all cores)"
  else Ok ()

(* Returns Ok (exit code) or Error message (input error, exit 3). *)
let run opts =
  let* () = validate opts in
  let* inject = parse_inject ~seed:opts.seed opts.inject in
  let* compiled = load opts in
  let m = compiled.Smv.Compile.model in
  let main_clusters = compiled.Smv.Compile.clusters in
  (* The clusters must survive any ladder-triggered gc between the
     breach and the degraded rung that consumes them. *)
  let (_ : Bdd.root) =
    Bdd.add_root m.Kripke.man (fun () -> main_clusters)
  in
  let site_inject =
    match inject with Some (Inject_site (s, n)) -> Some (s, n) | _ -> None
  in
  (* Dynamic reordering: `once sifts the freshly built model now (on
     top of the static proximity order both non-none modes seed at
     compile time); `auto arms the live-node trigger, consumed at the
     fixpoint checkpoints inside each spec's verdict phase. *)
  (match opts.reorder with
  | `None -> ()
  | `Once -> (
    match Bdd.reorder m.Kripke.man with
    | () -> ()
    | exception Out_of_memory ->
      (* Reordering is an optimisation: a failed sweep (real pressure
         or an injected reorder fault) leaves a consistent manager, so
         warn and check unsifted. *)
      Format.eprintf "warning: initial reordering failed; continuing@.")
  | `Auto ->
    Bdd.Reorder.set_auto m.Kripke.man (Some opts.reorder_threshold));
  (match opts.cache_limit with
  | Some _ as limit -> Bdd.set_cache_limit m.Kripke.man limit
  | None -> ());
  if opts.stats then print_model_stats m;
  (match opts.simulate with
  | Some steps -> simulate m ~steps ~seed:opts.seed
  | None -> ());
  let* extra =
    List.fold_left
      (fun acc text ->
        let* acc = acc in
        let* spec = compile_extra compiled text in
        Ok (spec :: acc))
      (Ok []) opts.extra_specs
  in
  let specs = compiled.Smv.Compile.specs @ List.rev extra in
  let jobs =
    if opts.jobs = 0 then Parallel.default_jobs () else opts.jobs
  in
  let reports, worker_stats =
    if specs = [] then begin
      Format.printf "no specifications to check@.";
      ([], [])
    end
    else if jobs > 1 && List.length specs > 1 then begin
      (* Parallel path: fan the specs out over worker domains.  Each
         task renders its whole report (verdict line, trace) into a
         private buffer; the buffers are replayed on the main domain in
         specification order, so the bytes printed are identical to a
         sequential run's. *)
      let names = Array.of_list (List.map fst specs) in
      let formulas = Array.of_list (List.map snd specs) in
      let f wm spec i =
        (* Worker managers reorder independently: [Kripke.clone_into]
           replicated the coordinator's order and pair grouping, and
           the order-independent [Bdd.transfer] bridges whatever order
           each side later sifts to. *)
        (match opts.reorder with
        | `Auto ->
          if Bdd.Reorder.auto_threshold wm.Kripke.man = None then
            Bdd.Reorder.set_auto wm.Kripke.man (Some opts.reorder_threshold)
        | `None | `Once -> ());
        let buf = Buffer.create 512 in
        let ppf = Format.formatter_of_buffer buf in
        let clusters () =
          List.map (Bdd.transfer ~dst:wm.Kripke.man) main_clusters
        in
        let r =
          check_one ppf wm ~opts ~clusters ?inject:site_inject
            (names.(i), spec)
        in
        Format.pp_print_flush ppf ();
        (r, Buffer.contents buf)
      in
      (* Crashed-worker recovery happens here, on the main domain, in
         spec order: the crashed attempt seeds the ladder as attempt 1
         and the re-run climbs from Main_domain.  [overrides] keeps the
         recovered reports for final aggregation. *)
      let overrides : (int, report) Hashtbl.t = Hashtbl.create 4 in
      let on_result i = function
        | Ok ((_ : report), out) ->
          (* Bypass std_formatter for the replay: a multi-line string
             printed through %s corrupts Format's column tracking.  All
             Format output ends in @. (flush), so channel-level writes
             stay ordered. *)
          Format.print_flush ();
          print_string out
        | Error Parallel.Specs.Cancelled -> ()
        | Error Parallel.Pool.Worker_crashed
          when opts.retries > 0 && not !interrupted ->
          let prior =
            [
              {
                Robust.Ladder.index = 1;
                strategy = Robust.Ladder.Direct;
                failure =
                  Some (Robust.Ladder.Crashed "worker domain died");
                live_nodes = 0;
                duration = 0.;
              };
            ]
          in
          let buf = Buffer.create 512 in
          let ppf = Format.formatter_of_buffer buf in
          let r =
            check_one ppf m ~opts
              ~clusters:(fun () -> main_clusters)
              ?inject:None ~prior
              (names.(i), formulas.(i))
          in
          Format.pp_print_flush ppf ();
          Hashtbl.replace overrides i r;
          Format.print_flush ();
          print_string (Buffer.contents buf)
        | Error e when not opts.debug ->
          Format.printf
            "-- specification %s is UNDETERMINED (worker failed: %s)@."
            names.(i) (Printexc.to_string e)
        | Error e -> raise e
      in
      let results, worker_stats =
        Parallel.Specs.map ~jobs ~cancel:cancel_flag
          ?chaos_crash:
            (match inject with Some (Inject_worker n) -> Some n | _ -> None)
          ~on_result ~f m formulas
      in
      let reports =
        Array.to_list
          (Array.mapi
             (fun i r ->
               match Hashtbl.find_opt overrides i with
               | Some rr -> Some rr
               | None -> (
                 match r with
                 | Ok (rr, _) -> Some rr
                 | Error Parallel.Specs.Cancelled -> None
                 | Error e ->
                   Some
                     {
                       verdict = Undetermined (Printexc.to_string e);
                       cert_failed = false;
                     }))
             results)
        |> List.filter_map Fun.id
      in
      (reports, worker_stats)
    end
    else
      (* Stop early on SIGINT; otherwise check every spec even after
         failures and breaches (per-spec isolation). *)
      ( List.filter_map
          (fun spec ->
            if !interrupted then None
            else
              Some
                (check_one Format.std_formatter m ~opts
                   ~clusters:(fun () -> main_clusters)
                   ?inject:site_inject spec))
          specs,
        [] )
  in
  if !interrupted then begin
    Format.printf "-- interrupted; statistics so far:@.";
    print_run_stats ~extra:worker_stats m
  end
  else if opts.stats then print_run_stats ~extra:worker_stats m;
  let verdicts = List.map (fun r -> r.verdict) reports in
  let some_cert_failed = List.exists (fun r -> r.cert_failed) reports in
  let some_undetermined =
    List.exists (function Undetermined _ -> true | _ -> false) verdicts
  in
  let some_false = List.exists (( = ) Fails) verdicts in
  if some_cert_failed then Ok 3
  else if !interrupted || some_undetermined then Ok 2
  else if some_false then Ok 1
  else Ok 0

open Cmdliner

(* [string], not [file]: a missing path must flow through our own
   error reporting (exit 3), not cmdliner's argument-parse exit. *)
let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"MODEL.smv" ~doc:"SMV model to check.")

let spec_arg =
  Arg.(
    value & opt_all string []
    & info [ "s"; "spec" ] ~docv:"FORMULA"
        ~doc:"Additional CTL specification to check (repeatable).")

let no_fair_arg =
  Arg.(
    value & flag
    & info [ "no-fairness" ]
        ~doc:
          "Ignore FAIRNESS constraints when deciding specifications \
           (counterexample generation still respects them).")

let no_trace_arg =
  Arg.(
    value & flag
    & info [ "q"; "no-trace" ] ~doc:"Do not print counterexample traces.")

let partitioned_arg =
  Arg.(
    value & flag
    & info [ "partitioned" ]
        ~doc:
          "Use a conjunctively partitioned transition relation with \
           early quantification for image computation.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print model statistics (state counts, deadlocks) before \
           checking, and BDD-manager counters (cache hits/misses, peak \
           node count) plus fixpoint iteration counts afterwards.  \
           With --retries, also the per-spec attempt log.")

let cache_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-limit" ] ~docv:"N"
        ~doc:
          "Bound every BDD operation cache to N entries; a cache that \
           grows past the bound is dropped and rebuilt (results are \
           unchanged, memory is bounded).")

let simulate_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "simulate" ] ~docv:"STEPS"
        ~doc:"Print a random execution of the given length before checking.")

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N"
        ~doc:"Random seed for --simulate and --inject SITE:rand.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:
          "Wall-clock budget per specification; a spec that exceeds it \
           is reported UNDETERMINED and checking continues with the \
           next one.")

let node_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "node-limit" ] ~docv:"N"
        ~doc:
          "Live BDD-node budget per specification; exceeded budgets \
           report UNDETERMINED like --timeout.")

let step_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "step-limit" ] ~docv:"N"
        ~doc:
          "Fixpoint-iteration / ring-descent step budget per \
           specification (deterministic, unlike --timeout).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Check specifications on N worker domains in parallel (0 \
           means one per core).  Each worker clones the model into a \
           private BDD manager, so verdicts, traces and exit code are \
           byte-identical to a sequential run.")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Re-attempt a breached, out-of-memory or crashed \
           specification up to N times with escalating remediation: \
           garbage collection, a variable-reordering sweep, a degraded \
           (partitioned, tight-cache) representation, then an \
           explicit-state fallback when the state space is small \
           enough.  Recovered verdicts are annotated and their traces \
           always certified.  Default 0: no recovery, behaviour \
           identical to earlier versions.")

let retry_factor_arg =
  Arg.(
    value & opt float 2.0
    & info [ "retry-budget-factor" ] ~docv:"F"
        ~doc:
          "Exponential budget backoff for retries: attempt k runs \
           under node/step budgets multiplied by F^(k-1), and the \
           remaining share of a (timeout * attempts) wall-clock pool.")

let certify_arg =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Independently re-validate every emitted witness or \
           counterexample trace against path semantics (transition \
           membership, operand satisfaction, fairness hits on the \
           cycle).  A trace that fails certification withdraws its \
           verdict and the run exits 3.  Always on for recovered \
           (retried) specifications.")

let inject_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject" ] ~docv:"SITE:COUNT"
        ~doc:
          "Chaos testing: deterministically fail the COUNT-th visit to \
           SITE (mk, probe, gc, step or reorder — raising the same \
           errors real resource exhaustion would) or kill the worker \
           domain that picks up the COUNT-th task (worker, needs \
           --jobs >= 2).  COUNT may be 'rand' (seeded by --seed).  \
           Combine with --retries to exercise the recovery ladder.")

let reorder_arg =
  Arg.(
    value
    & opt (enum [ ("none", `None); ("once", `Once); ("auto", `Auto) ]) `None
    & info [ "reorder" ] ~docv:"MODE"
        ~doc:
          "BDD variable-order optimisation.  $(b,none) (default) keeps \
           declaration order and is byte-identical to earlier versions; \
           $(b,once) seeds a dependency-proximity static order at \
           compile time and runs one Rudell sifting sweep on the built \
           model; $(b,auto) additionally re-sifts whenever live nodes \
           grow past --reorder-threshold (the threshold doubles after \
           each sweep).  Verdicts, traces and exit codes are unchanged \
           by any mode.")

let reorder_threshold_arg =
  Arg.(
    value & opt int 4096
    & info [ "reorder-threshold" ] ~docv:"N"
        ~doc:
          "Live-node trigger for --reorder auto: a sifting sweep is \
           scheduled when the manager grows past N live nodes (then \
           past max(2 * live, N) after each sweep).")

let debug_arg =
  Arg.(
    value & flag
    & info [ "debug" ]
        ~doc:
          "Developer mode: record exception backtraces and let \
           unexpected exceptions crash with a full trace instead of \
           being condensed to one-line diagnostics.")

let main file extra_specs no_fair no_trace stats partitioned cache_limit
    simulate seed timeout node_limit step_limit jobs retries retry_factor
    certify inject reorder reorder_threshold debug =
  let opts =
    {
      file; extra_specs; fair = not no_fair; traces = not no_trace; stats;
      partitioned; cache_limit; simulate; seed; timeout; node_limit;
      step_limit; jobs; retries; retry_factor; certify; inject; debug;
      reorder; reorder_threshold;
    }
  in
  Printexc.record_backtrace debug;
  install_sigint ();
  match run opts with
  | Ok code -> code
  | Error msg ->
    Format.eprintf "%s@." msg;
    3
  | exception e when not debug ->
    (* Crash guard: anything unexpected outside the per-spec isolation
       becomes a one-line diagnostic. *)
    Format.eprintf "smv_check: internal error on %s: %s@." file
      (Printexc.to_string e);
    3

let cmd =
  let doc = "symbolic CTL model checker with counterexample generation" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Checks every SPEC of an SMV model with the BDD-based symbolic \
         algorithm of Clarke, Grumberg, McMillan and Zhao, honouring \
         FAIRNESS constraints, and prints a counterexample execution \
         trace (a finite path, or a path followed by a repeating cycle) \
         for every failed specification.";
      `P
        "Resource governance: $(b,--timeout), $(b,--node-limit) and \
         $(b,--step-limit) bound each specification separately; a spec \
         that exceeds a budget is reported UNDETERMINED and the \
         remaining specs are still checked.  SIGINT finishes the \
         current BDD operation, prints statistics so far, and exits \
         cleanly.";
      `P
        "Recovery: $(b,--retries N) climbs a remediation ladder instead \
         of giving up — garbage collection and backed-off budgets \
         first, then a partitioned relation with tight caches, finally \
         an explicit-state re-check when the state space is small.  \
         Recovered verdicts are annotated on the verdict line and \
         their traces are always certified ($(b,--certify)).  \
         $(b,--inject) plants deterministic faults to exercise every \
         rung in CI.";
      `P
        "Variable order: $(b,--reorder once) seeds a dependency-aware \
         static order and sifts the built model once; $(b,--reorder \
         auto) keeps sifting as the tables grow (Rudell's algorithm, \
         current/next bit pairs moved as blocks).  Orders only change \
         sizes and times — never verdicts, traces or exit codes.";
      `P
        "Parallelism: $(b,--jobs N) checks specifications on N worker \
         domains, each with a private clone of the model in its own \
         BDD manager (shared-nothing, no locks on the BDD hot paths).  \
         Output order, traces and the exit code are byte-identical to \
         a sequential run.  A crashed worker is respawned, and with \
         $(b,--retries) its specification is re-checked on the main \
         domain.";
      `S Manpage.s_exit_status;
      `P "0 — every specification holds.";
      `P "1 — at least one specification is false (none undetermined).";
      `P
        "2 — a resource limit tripped, some verdict is undetermined, or \
         the run was interrupted.";
      `P
        "3 — input error (unreadable or invalid model, bad flags), \
         internal failure, or an emitted trace failed $(b,--certify) \
         validation.";
      `S Manpage.s_examples;
      `P "smv_check examples/models/mutex.smv";
      `P "smv_check --spec 'AG (tr1 -> AF ta1)' arbiter.smv";
      `P "smv_check --timeout 5 --node-limit 2000000 big_model.smv";
      `P "smv_check --step-limit 100 --retries 2 --certify counter.smv";
      `P "smv_check --inject mk:5000 --retries 1 --stats model.smv";
    ]
  in
  Cmd.v
    (Cmd.info "smv_check" ~version:"1.0.0" ~doc ~man)
    Term.(
      const main $ file_arg $ spec_arg $ no_fair_arg $ no_trace_arg
      $ stats_arg $ partitioned_arg $ cache_limit_arg $ simulate_arg
      $ seed_arg $ timeout_arg $ node_limit_arg $ step_limit_arg
      $ jobs_arg $ retries_arg $ retry_factor_arg $ certify_arg
      $ inject_arg $ reorder_arg $ reorder_threshold_arg $ debug_arg)

let () = exit (Cmd.eval' cmd)
