(* smv_check — a command-line symbolic model checker in the style of
   SMV: parse a model, check every SPEC (plus any --spec formulas),
   print verdicts and, for failed universal / satisfied existential
   specifications, an execution trace (Section 6).

   Exit codes: 0 every specification holds; 1 at least one is false
   (and none undetermined); 2 a resource limit tripped, a specification
   was left undetermined, or the run was interrupted; 3 input error,
   internal failure, or a trace that failed certification.

   Recovery: with --retries N a breached / out-of-memory / crashed
   specification is re-attempted up to N times through the
   Robust.Ladder rungs (gc-retry, degraded representation,
   explicit-state fallback), each attempt under exponentially
   backed-off budgets; with --retries 0 (the default) behaviour —
   output bytes included — is identical to the pre-recovery checker.

   The per-spec checking code itself lives in Server.Engine, shared
   with the --serve request loop so both print the same bytes. *)

module Engine = Server.Engine

let ( let* ) = Result.bind

type options = {
  file : string option;
  extra_specs : string list;
  fair : bool;
  fair_engine : Ctl.Fair.engine;
  traces : bool;
  stats : bool;
  partitioned : bool;
  cache_limit : int option;
  simulate : int option;
  seed : int;
  timeout : float option;
  node_limit : int option;
  step_limit : int option;
  jobs : int;
  retries : int;
  retry_factor : float;
  certify : bool;
  inject : string option;
  debug : bool;
  reorder : [ `None | `Once | `Auto ];
  reorder_threshold : int;
  serve : bool;
  socket : string option;
  cache_models : int;
  max_pending : int option;
  max_inflight : int option;
  default_timeout : float option;
  default_node_limit : int option;
  max_timeout : float option;
  mem_high_water : int option;
  supervise : bool;
  state_dir : string option;
  status : bool;
}

(* A parsed --inject specification. *)
type inject = Inject_site of Bdd.Fault.site * int | Inject_worker of int

(* --------------------------------------------------------------- *)
(* SIGINT (one-shot mode): set the shared cancel flag.  Every per-spec
   Limits bundle — sequential or on a worker domain — is created with
   this flag, so one atomic store cancels them all: the next poll point
   inside each running BDD operation raises, the in-flight specs are
   reported UNDETERMINED, queued specs are skipped, and the run exits
   cleanly with code 2.  The recovery ladder checks the same flag
   between attempts, so Ctrl-C also means "no more retries".
   [interrupted] is only ever touched from the main domain (handler +
   aggregation).

   Serve mode deliberately does NOT use this flag: there SIGINT means
   "drain and exit" and each request has a private cancel atomic
   (Server.Daemon installs its own handlers). *)

let interrupted = ref false
let cancel_flag : bool Atomic.t = Atomic.make false

let install_sigint () =
  match
    Sys.set_signal Sys.sigint
      (Sys.Signal_handle
         (fun _ ->
           interrupted := true;
           Atomic.set cancel_flag true))
  with
  | () -> ()
  | exception (Invalid_argument _ | Sys_error _) ->
    (* no signal support on this platform: run ungoverned *)
    ()

(* The engine's view of the flags: one-shot runs are cancelled through
   the process-wide SIGINT flag. *)
let engine_opts opts =
  {
    Engine.fair = opts.fair;
    fair_engine = opts.fair_engine;
    traces = opts.traces;
    stats = opts.stats;
    certify = opts.certify;
    debug = opts.debug;
    timeout = opts.timeout;
    node_limit = opts.node_limit;
    step_limit = opts.step_limit;
    retries = opts.retries;
    retry_factor = opts.retry_factor;
    cancel = cancel_flag;
  }

let load opts file =
  match
    Smv.load_file ~partitioned:opts.partitioned
      ~static_order:(opts.reorder <> `None)
      file
  with
  | compiled -> Ok compiled
  | exception Sys_error msg -> Error msg
  | exception Smv.Lexer.Error (msg, pos) ->
    Error (Format.asprintf "%s: lexical error at %a: %s" file Smv.Ast.pp_pos pos msg)
  | exception Smv.Parser.Error (msg, pos) ->
    Error (Format.asprintf "%s: syntax error at %a: %s" file Smv.Ast.pp_pos pos msg)
  | exception (Smv.Compile.Error (msg, pos) | Smv.Flatten.Error (msg, pos))
    ->
    let where =
      match pos with
      | Some p -> Format.asprintf " at %a" Smv.Ast.pp_pos p
      | None -> ""
    in
    Error (Printf.sprintf "%s: error%s: %s" file where msg)

let compile_extra compiled text =
  match Smv.Compile.compile_expr compiled text with
  | f -> Ok (text, f)
  | exception Smv.Lexer.Error (msg, _) | exception Smv.Parser.Error (msg, _)
  ->
    Error (Printf.sprintf "--spec %S: %s" text msg)
  | exception Smv.Compile.Error (msg, _) ->
    Error (Printf.sprintf "--spec %S: %s" text msg)

let parse_inject ~seed = function
  | None -> Ok None
  | Some s -> (
    match String.index_opt s ':' with
    | None ->
      Error "--inject: expected SITE:COUNT (e.g. mk:1000, step:3, worker:1)"
    | Some i ->
      let site = String.sub s 0 i in
      let count = String.sub s (i + 1) (String.length s - i - 1) in
      let* n =
        if count = "rand" then
          (* Seeded so chaos runs are reproducible: same --seed, same
             injection point. *)
          let rng = Random.State.make [| seed; 0x1aB2 |] in
          Ok (1 + Random.State.int rng 4096)
        else
          match int_of_string_opt count with
          | Some n when n >= 1 -> Ok n
          | Some _ | None ->
            Error "--inject: COUNT must be a positive integer or 'rand'"
      in
      match site with
      | "worker" -> Ok (Some (Inject_worker n))
      | _ -> (
        match Bdd.Fault.site_of_string site with
        | Some fs -> Ok (Some (Inject_site (fs, n)))
        | None ->
          Error
            (Printf.sprintf
               "--inject: unknown site %S (expected mk, probe, gc, step, \
                reorder or worker)"
               site)))

let print_model_stats ?limits m =
  let reachable = Kripke.reachable ?limits m in
  Format.printf "model: %d state bits, %.0f states in the state space, %.0f reachable@."
    m.Kripke.nbits
    (Kripke.count_states m m.Kripke.space)
    (Kripke.count_states m reachable);
  let dead = Kripke.deadlocks m in
  if not (Bdd.is_zero dead) then
    Format.printf
      "warning: %.0f deadlocked states (CTL semantics assumes a total relation)@."
      (Kripke.count_states m dead)

(* The post-run half of --stats: BDD manager counters and fixpoint
   iteration counts accumulated while checking.  [extra] carries the
   per-worker manager snapshots of a parallel run, merged into the main
   manager's counters so --stats reports one totalled view of the whole
   run regardless of --jobs. *)
let print_run_stats ?(extra = []) ?(fair_engine = Ctl.Fair.El) m =
  let s = List.fold_left Bdd.merge_stats (Bdd.stats m.Kripke.man) extra in
  Format.printf "%a@." Bdd.pp_stats s;
  let c = Ctl.Check.fixpoint_stats () in
  let f = Ctl.Fair.fixpoint_stats () in
  Format.printf
    "fixpoints: %d EU iterations, %d EG iterations, %d ring layers@."
    c.Ctl.Check.eu_iterations c.Ctl.Check.eg_iterations
    c.Ctl.Check.ring_layers;
  Format.printf
    "fair fixpoints: %d outer iterations, %d ring layers saved@."
    f.Ctl.Fair.outer_iterations f.Ctl.Fair.ring_layers;
  (* Printed only under --fair-engine lockstep, keeping the default
     --stats output byte-identical to earlier versions. *)
  if fair_engine = Ctl.Fair.Lockstep then
    Format.printf
      "lock-step: %d rounds, %d SCCs examined, %d regions skipped@."
      f.Ctl.Fair.lockstep_rounds f.Ctl.Fair.lockstep_sccs_examined
      f.Ctl.Fair.lockstep_sccs_skipped

(* Random walk from a random initial state, choosing uniformly at each
   step with symbolic cofactor-weighted sampling — no state
   enumeration, so arbitrarily large models are safe to explore. *)
let simulate m ~steps ~seed =
  let rng = Random.State.make [| seed |] in
  let pick set = Kripke.pick_random_state m ~rng set in
  match pick m.Kripke.init with
  | None -> Format.printf "no initial state@."
  | Some st ->
    let rec walk acc st k =
      if k = 0 then List.rev acc
      else
        match pick (Kripke.post m (Kripke.state_to_bdd m st)) with
        | None -> List.rev acc (* deadlock *)
        | Some st' -> walk (st' :: acc) st' (k - 1)
    in
    let tr = Kripke.Trace.finite (walk [ st ] st steps) in
    Format.printf "-- random simulation (%d steps, seed %d)@." steps seed;
    Format.printf "%a@." (Kripke.Trace.pp m) tr

let validate opts =
  let* () =
    match opts.cache_limit with
    | Some n when n <= 0 -> Error "--cache-limit: N must be positive"
    | Some _ | None -> Ok ()
  in
  let* () =
    match opts.simulate with
    | Some n when n <= 0 -> Error "--simulate: STEPS must be positive"
    | Some _ | None -> Ok ()
  in
  let* () =
    match opts.timeout with
    | Some t when t <= 0.0 -> Error "--timeout: SECS must be positive"
    | Some _ | None -> Ok ()
  in
  let* () =
    match opts.node_limit with
    | Some n when n <= 0 -> Error "--node-limit: N must be positive"
    | Some _ | None -> Ok ()
  in
  let* () =
    match opts.step_limit with
    | Some n when n <= 0 -> Error "--step-limit: N must be positive"
    | Some _ | None -> Ok ()
  in
  let* () =
    if opts.retries < 0 then Error "--retries: N must be >= 0" else Ok ()
  in
  let* () =
    if opts.reorder_threshold <= 0 then
      Error "--reorder-threshold: N must be positive"
    else Ok ()
  in
  let* () =
    if opts.retry_factor < 1.0 then
      Error "--retry-budget-factor: F must be >= 1.0"
    else Ok ()
  in
  let* () =
    if opts.cache_models < 1 then
      Error "--cache-models: N must be positive"
    else Ok ()
  in
  let* inj = parse_inject ~seed:opts.seed opts.inject in
  let* () =
    match inj with
    | Some (Inject_worker _) when opts.jobs < 2 ->
      Error "--inject worker:N requires a parallel run (--jobs >= 2)"
    | Some _ | None -> Ok ()
  in
  if opts.jobs < 0 then Error "--jobs: N must be >= 0 (0 means all cores)"
  else Ok ()

(* Returns Ok (exit code) or Error message (input error, exit 3). *)
let run opts file =
  let* () = validate opts in
  let* inject = parse_inject ~seed:opts.seed opts.inject in
  let* compiled = load opts file in
  let eopts = engine_opts opts in
  let m = compiled.Smv.Compile.model in
  let main_clusters = compiled.Smv.Compile.clusters in
  (* The clusters must survive any ladder-triggered gc between the
     breach and the degraded rung that consumes them. *)
  let (_ : Bdd.root) =
    Bdd.add_root m.Kripke.man (fun () -> main_clusters)
  in
  let site_inject =
    match inject with Some (Inject_site (s, n)) -> Some (s, n) | _ -> None
  in
  (* Dynamic reordering: `once sifts the freshly built model now (on
     top of the static proximity order both non-none modes seed at
     compile time); `auto arms the live-node trigger, consumed at the
     fixpoint checkpoints inside each spec's verdict phase. *)
  (match opts.reorder with
  | `None -> ()
  | `Once -> (
    match Bdd.reorder m.Kripke.man with
    | () -> ()
    | exception Out_of_memory ->
      (* Reordering is an optimisation: a failed sweep (real pressure
         or an injected reorder fault) leaves a consistent manager, so
         warn and check unsifted. *)
      Format.eprintf "warning: initial reordering failed; continuing@.")
  | `Auto ->
    Bdd.Reorder.set_auto m.Kripke.man (Some opts.reorder_threshold));
  (match opts.cache_limit with
  | Some _ as limit -> Bdd.set_cache_limit m.Kripke.man limit
  | None -> ());
  if opts.stats then print_model_stats m;
  (match opts.simulate with
  | Some steps -> simulate m ~steps ~seed:opts.seed
  | None -> ());
  let* extra =
    List.fold_left
      (fun acc text ->
        let* acc = acc in
        let* spec = compile_extra compiled text in
        Ok (spec :: acc))
      (Ok []) opts.extra_specs
  in
  let specs = compiled.Smv.Compile.specs @ List.rev extra in
  let jobs =
    if opts.jobs = 0 then Parallel.default_jobs () else opts.jobs
  in
  let reports, worker_stats =
    if specs = [] then begin
      Format.printf "no specifications to check@.";
      ([], [])
    end
    else if jobs > 1 && List.length specs > 1 then begin
      (* Parallel path: fan the specs out over worker domains.  Each
         task renders its whole report (verdict line, trace) into a
         private buffer; the buffers are replayed on the main domain in
         specification order, so the bytes printed are identical to a
         sequential run's. *)
      let names = Array.of_list (List.map fst specs) in
      let formulas = Array.of_list (List.map snd specs) in
      let f wm spec i =
        (* Worker managers reorder independently: [Kripke.clone_into]
           replicated the coordinator's order and pair grouping, and
           the order-independent [Bdd.transfer] bridges whatever order
           each side later sifts to. *)
        (match opts.reorder with
        | `Auto ->
          if Bdd.Reorder.auto_threshold wm.Kripke.man = None then
            Bdd.Reorder.set_auto wm.Kripke.man (Some opts.reorder_threshold)
        | `None | `Once -> ());
        let buf = Buffer.create 512 in
        let ppf = Format.formatter_of_buffer buf in
        let clusters () =
          List.map (Bdd.transfer ~src:m.Kripke.man ~dst:wm.Kripke.man) main_clusters
        in
        let r =
          Engine.check_one ppf wm ~opts:eopts ~clusters ?inject:site_inject
            (names.(i), spec)
        in
        Format.pp_print_flush ppf ();
        (r, Buffer.contents buf)
      in
      (* Crashed-worker recovery happens here, on the main domain, in
         spec order: the crashed attempt seeds the ladder as attempt 1
         and the re-run climbs from Main_domain.  [overrides] keeps the
         recovered reports for final aggregation. *)
      let overrides : (int, Engine.report) Hashtbl.t = Hashtbl.create 4 in
      let on_result i = function
        | Ok ((_ : Engine.report), out) ->
          (* Bypass std_formatter for the replay: a multi-line string
             printed through %s corrupts Format's column tracking.  All
             Format output ends in @. (flush), so channel-level writes
             stay ordered. *)
          Format.print_flush ();
          print_string out
        | Error Parallel.Specs.Cancelled -> ()
        | Error Parallel.Pool.Worker_crashed
          when opts.retries > 0 && not !interrupted ->
          let prior =
            [
              {
                Robust.Ladder.index = 1;
                strategy = Robust.Ladder.Direct;
                failure =
                  Some (Robust.Ladder.Crashed "worker domain died");
                live_nodes = 0;
                duration = 0.;
              };
            ]
          in
          let buf = Buffer.create 512 in
          let ppf = Format.formatter_of_buffer buf in
          let r =
            Engine.check_one ppf m ~opts:eopts
              ~clusters:(fun () -> main_clusters)
              ?inject:None ~prior
              (names.(i), formulas.(i))
          in
          Format.pp_print_flush ppf ();
          Hashtbl.replace overrides i r;
          Format.print_flush ();
          print_string (Buffer.contents buf)
        | Error e when not opts.debug ->
          Format.printf
            "-- specification %s is UNDETERMINED (worker failed: %s)@."
            names.(i) (Printexc.to_string e)
        | Error e -> raise e
      in
      let results, worker_stats =
        Parallel.Specs.map ~jobs ~cancel:cancel_flag
          ?chaos_crash:
            (match inject with Some (Inject_worker n) -> Some n | _ -> None)
          ~on_result ~f m formulas
      in
      let reports =
        Array.to_list
          (Array.mapi
             (fun i r ->
               match Hashtbl.find_opt overrides i with
               | Some rr -> Some rr
               | None -> (
                 match r with
                 | Ok (rr, _) -> Some rr
                 | Error Parallel.Specs.Cancelled -> None
                 | Error e ->
                   Some
                     {
                       Engine.verdict =
                         Engine.Undetermined (Printexc.to_string e);
                       cert_failed = false;
                     }))
             results)
        |> List.filter_map Fun.id
      in
      (reports, worker_stats)
    end
    else
      (* Stop early on SIGINT; otherwise check every spec even after
         failures and breaches (per-spec isolation). *)
      ( List.filter_map
          (fun spec ->
            if !interrupted then None
            else
              Some
                (Engine.check_one Format.std_formatter m ~opts:eopts
                   ~clusters:(fun () -> main_clusters)
                   ?inject:site_inject spec))
          specs,
        [] )
  in
  if !interrupted then begin
    Format.printf "-- interrupted; statistics so far:@.";
    print_run_stats ~extra:worker_stats ~fair_engine:opts.fair_engine m
  end
  else if opts.stats then
    print_run_stats ~extra:worker_stats ~fair_engine:opts.fair_engine m;
  Ok (Engine.exit_code ~interrupted:!interrupted reports)

open Cmdliner

(* [string], not [file]: a missing path must flow through our own
   error reporting (exit 3), not cmdliner's argument-parse exit.
   Optional because --serve runs without a model argument. *)
let file_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"MODEL.smv"
        ~doc:"SMV model to check (required except with $(b,--serve)).")

let spec_arg =
  Arg.(
    value & opt_all string []
    & info [ "s"; "spec" ] ~docv:"FORMULA"
        ~doc:"Additional CTL specification to check (repeatable).")

let no_fair_arg =
  Arg.(
    value & flag
    & info [ "no-fairness" ]
        ~doc:
          "Ignore FAIRNESS constraints when deciding specifications \
           (counterexample generation still respects them).")

let fair_engine_arg =
  Arg.(
    value
    & opt (enum [ ("el", Ctl.Fair.El); ("lockstep", Ctl.Fair.Lockstep) ])
        Ctl.Fair.El
    & info [ "fair-engine" ] ~docv:"ENGINE"
        ~doc:
          "Fair-cycle detection algorithm.  $(b,el) (default) is the \
           Emerson-Lei nested fixpoint; $(b,lockstep) finds \
           fairness-intersecting SCCs by lock-step symbolic SCC \
           decomposition (asymptotically fewer image computations on \
           models with long fair-cycle chains).  Verdicts, traces and \
           exit codes are identical under either engine — witness onion \
           rings are extracted by shared code after the fixpoint \
           converges; only speed and the --stats counters differ.  On \
           --retries breaches, retries always fall back to $(b,el).")

let no_trace_arg =
  Arg.(
    value & flag
    & info [ "q"; "no-trace" ] ~doc:"Do not print counterexample traces.")

let partitioned_arg =
  Arg.(
    value & flag
    & info [ "partitioned" ]
        ~doc:
          "Use a conjunctively partitioned transition relation with \
           early quantification for image computation.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print model statistics (state counts, deadlocks) before \
           checking, and BDD-manager counters (cache hits/misses, peak \
           node count) plus fixpoint iteration counts afterwards.  \
           With --retries, also the per-spec attempt log.")

let cache_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-limit" ] ~docv:"N"
        ~doc:
          "Bound every BDD operation cache to N entries; a cache that \
           grows past the bound is dropped and rebuilt (results are \
           unchanged, memory is bounded).")

let simulate_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "simulate" ] ~docv:"STEPS"
        ~doc:"Print a random execution of the given length before checking.")

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N"
        ~doc:"Random seed for --simulate and --inject SITE:rand.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:
          "Wall-clock budget per specification; a spec that exceeds it \
           is reported UNDETERMINED and checking continues with the \
           next one.")

let node_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "node-limit" ] ~docv:"N"
        ~doc:
          "Live BDD-node budget per specification; exceeded budgets \
           report UNDETERMINED like --timeout.")

let step_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "step-limit" ] ~docv:"N"
        ~doc:
          "Fixpoint-iteration / ring-descent step budget per \
           specification (deterministic, unlike --timeout).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Check specifications on N worker domains in parallel (0 \
           means one per core).  Each worker clones the model into a \
           private BDD manager, so verdicts, traces and exit code are \
           byte-identical to a sequential run.  With $(b,--serve): the \
           number of request-processing workers.")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Re-attempt a breached, out-of-memory or crashed \
           specification up to N times with escalating remediation: \
           garbage collection, a variable-reordering sweep, a degraded \
           (partitioned, tight-cache) representation, then an \
           explicit-state fallback when the state space is small \
           enough.  Recovered verdicts are annotated and their traces \
           always certified.  Default 0: no recovery, behaviour \
           identical to earlier versions.")

let retry_factor_arg =
  Arg.(
    value & opt float 2.0
    & info [ "retry-budget-factor" ] ~docv:"F"
        ~doc:
          "Exponential budget backoff for retries: attempt k runs \
           under node/step budgets multiplied by F^(k-1), and the \
           remaining share of a (timeout * attempts) wall-clock pool.")

let certify_arg =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Independently re-validate every emitted witness or \
           counterexample trace against path semantics (transition \
           membership, operand satisfaction, fairness hits on the \
           cycle).  A trace that fails certification withdraws its \
           verdict and the run exits 3.  Always on for recovered \
           (retried) specifications.")

let inject_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject" ] ~docv:"SITE:COUNT"
        ~doc:
          "Chaos testing: deterministically fail the COUNT-th visit to \
           SITE (mk, probe, gc, step or reorder — raising the same \
           errors real resource exhaustion would) or kill the worker \
           domain that picks up the COUNT-th task (worker, needs \
           --jobs >= 2).  COUNT may be 'rand' (seeded by --seed).  \
           Combine with --retries to exercise the recovery ladder.")

let reorder_arg =
  Arg.(
    value
    & opt (enum [ ("none", `None); ("once", `Once); ("auto", `Auto) ]) `None
    & info [ "reorder" ] ~docv:"MODE"
        ~doc:
          "BDD variable-order optimisation.  $(b,none) (default) keeps \
           declaration order and is byte-identical to earlier versions; \
           $(b,once) seeds a dependency-proximity static order at \
           compile time and runs one Rudell sifting sweep on the built \
           model; $(b,auto) additionally re-sifts whenever live nodes \
           grow past --reorder-threshold (the threshold doubles after \
           each sweep).  Verdicts, traces and exit codes are unchanged \
           by any mode.")

let reorder_threshold_arg =
  Arg.(
    value & opt int 4096
    & info [ "reorder-threshold" ] ~docv:"N"
        ~doc:
          "Live-node trigger for --reorder auto: a sifting sweep is \
           scheduled when the manager grows past N live nodes (then \
           past max(2 * live, N) after each sweep).")

let debug_arg =
  Arg.(
    value & flag
    & info [ "debug" ]
        ~doc:
          "Developer mode: record exception backtraces and let \
           unexpected exceptions crash with a full trace instead of \
           being condensed to one-line diagnostics.")

let serve_arg =
  Arg.(
    value & flag
    & info [ "serve" ]
        ~doc:
          "Run as a check server: accept framed JSON check requests on \
           stdin/stdout (or $(b,--socket)) and keep compiled models \
           warm between requests — hot operation caches, sifted \
           variable orders and memoised reachable sets are reused when \
           only the specification changes.  Each request runs under \
           its own budgets and cancellation flag; SIGINT drains \
           in-flight requests and exits.")

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "With $(b,--serve): listen on a Unix-domain socket at PATH \
           (accepting any number of concurrent client connections) \
           instead of serving a single session on stdin/stdout.")

let cache_models_arg =
  Arg.(
    value & opt int 8
    & info [ "cache-models" ] ~docv:"N"
        ~doc:
          "With $(b,--serve): keep up to N compiled models warm; the \
           least recently used idle model is evicted beyond that.")

let max_pending_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-pending" ] ~docv:"N"
        ~doc:
          "With $(b,--serve): admit at most N queued (not yet running) \
           checks; past the bound a check is refused immediately with \
           a structured 'overloaded' reply carrying a retry_after_ms \
           hint.  Default: unbounded.")

let max_inflight_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:
          "With $(b,--serve): cap one connection at N concurrent \
           checks (queued or running); further checks on that \
           connection are refused with an 'overloaded' reply.  \
           Default: uncapped.")

let default_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "default-timeout" ] ~docv:"SECONDS"
        ~doc:
          "With $(b,--serve): apply this timeout to requests that name \
           none.  A request's own timeout always wins (subject to \
           $(b,--max-timeout)).")

let default_node_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "default-node-limit" ] ~docv:"N"
        ~doc:
          "With $(b,--serve): apply this live-node budget to requests \
           that name none.  A request's own node_limit always wins.")

let max_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "max-timeout" ] ~docv:"SECONDS"
        ~doc:
          "With $(b,--serve): clamp every request's timeout — its own \
           or the default — to this ceiling, so no single request can \
           hold a worker forever.")

let mem_high_water_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "mem-high-water" ] ~docv:"NODES"
        ~doc:
          "With $(b,--serve): arm the memory watchdog.  When the warm \
           pool's total live BDD nodes exceed NODES, the server evicts \
           idle models, then clamps idle operation caches, and as a \
           last resort refuses checks of models that are not already \
           warm (warm models, pings and status probes are still \
           served).  Default: off.")

let supervise_arg =
  Arg.(
    value & flag
    & info [ "supervise" ]
        ~doc:
          "With $(b,--serve --socket): run the serve loop as a \
           supervised child process.  The parent binds the socket \
           once, holds the listening descriptor across restarts (so \
           clients connecting during a restart queue instead of being \
           refused), and restarts a crashed child with exponential \
           backoff and jitter; a crash loop (5 crashes within 30s by \
           default) trips a circuit breaker and exits with a report.  \
           Pairs with $(b,--state-dir), which lets the replacement \
           child rehydrate the crashed child's warm state.")

let state_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:
          "With $(b,--serve): persist warm-model snapshots under DIR.  \
           Idle compiled models are snapshotted (checksummed, written \
           atomically) on the server's low-pressure watchdog ticks and \
           on graceful shutdown, and rehydrated at startup, so a \
           restarted server answers its first checks warm instead of \
           recompiling; corrupt or stale snapshot files are \
           quarantined (renamed $(i,*.quarantined)) and counted, never \
           fatal.  Default: off.")

let status_arg =
  Arg.(
    value & flag
    & info [ "status" ]
        ~doc:
          "Probe a running server: connect to $(b,--socket) PATH, send \
           one status request, print the JSON reply (uptime, queue \
           depth, shed and watchdog counters, per-model cache \
           occupancy, worker state) and exit.")

let main file extra_specs no_fair fair_engine no_trace stats partitioned
    cache_limit simulate seed timeout node_limit step_limit jobs retries
    retry_factor certify inject reorder reorder_threshold debug serve socket
    cache_models max_pending max_inflight default_timeout default_node_limit
    max_timeout mem_high_water supervise state_dir status =
  let opts =
    {
      file; extra_specs; fair = not no_fair; fair_engine;
      traces = not no_trace; stats;
      partitioned; cache_limit; simulate; seed; timeout; node_limit;
      step_limit; jobs; retries; retry_factor; certify; inject; debug;
      reorder; reorder_threshold; serve; socket; cache_models; max_pending;
      max_inflight; default_timeout; default_node_limit; max_timeout;
      mem_high_water; supervise; state_dir; status;
    }
  in
  Printexc.record_backtrace debug;
  if status then begin
    match socket with
    | Some path -> Server.Daemon.status_client ~socket:path
    | None ->
      Format.eprintf "smv_check --status: --socket PATH is required@.";
      3
  end
  else if serve then begin
    if file <> None then
      Format.eprintf "warning: MODEL.smv argument is ignored with --serve@.";
    if cache_models < 1 then begin
      Format.eprintf "--cache-models: N must be positive@.";
      3
    end
    else begin
      (* In serve mode the only CLI-level injection site is the
         supervision fault [child-crash:K]; per-request sites travel
         in the request options instead. *)
      let crash_after =
        match inject with
        | Some s when String.length s > 12 && String.sub s 0 12 = "child-crash:"
          ->
          int_of_string_opt (String.sub s 12 (String.length s - 12))
        | Some _ | None -> None
      in
      let dcfg =
        {
          Server.Daemon.socket;
          jobs = (if jobs = 0 then Parallel.default_jobs () else max 1 jobs);
          capacity = cache_models;
          debug;
          max_pending = opts.max_pending;
          max_inflight = opts.max_inflight;
          default_timeout = opts.default_timeout;
          default_node_limit = opts.default_node_limit;
          max_timeout = opts.max_timeout;
          mem_high_water = opts.mem_high_water;
          state_dir = opts.state_dir;
          crash_after;
          restarts = 0;
        }
      in
      if supervise then Server.Supervise.run dcfg
      else Server.Daemon.serve dcfg
    end
  end
  else
    match file with
    | None ->
      Format.eprintf "smv_check: required MODEL.smv argument is missing@.";
      3
    | Some f -> (
      install_sigint ();
      match run opts f with
      | Ok code -> code
      | Error msg ->
        Format.eprintf "%s@." msg;
        3
      | exception e when not debug ->
        (* Crash guard: anything unexpected outside the per-spec
           isolation becomes a one-line diagnostic. *)
        Format.eprintf "smv_check: internal error on %s: %s@." f
          (Printexc.to_string e);
        3)

let cmd =
  let doc = "symbolic CTL model checker with counterexample generation" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Checks every SPEC of an SMV model with the BDD-based symbolic \
         algorithm of Clarke, Grumberg, McMillan and Zhao, honouring \
         FAIRNESS constraints, and prints a counterexample execution \
         trace (a finite path, or a path followed by a repeating cycle) \
         for every failed specification.";
      `P
        "Resource governance: $(b,--timeout), $(b,--node-limit) and \
         $(b,--step-limit) bound each specification separately; a spec \
         that exceeds a budget is reported UNDETERMINED and the \
         remaining specs are still checked.  SIGINT finishes the \
         current BDD operation, prints statistics so far, and exits \
         cleanly.";
      `P
        "Recovery: $(b,--retries N) climbs a remediation ladder instead \
         of giving up — garbage collection and backed-off budgets \
         first, then a partitioned relation with tight caches, finally \
         an explicit-state re-check when the state space is small.  \
         Recovered verdicts are annotated on the verdict line and \
         their traces are always certified ($(b,--certify)).  \
         $(b,--inject) plants deterministic faults to exercise every \
         rung in CI.";
      `P
        "Variable order: $(b,--reorder once) seeds a dependency-aware \
         static order and sifts the built model once; $(b,--reorder \
         auto) keeps sifting as the tables grow (Rudell's algorithm, \
         current/next bit pairs moved as blocks).  Orders only change \
         sizes and times — never verdicts, traces or exit codes.";
      `P
        "Parallelism: $(b,--jobs N) checks specifications on N worker \
         domains, each with a private clone of the model in its own \
         BDD manager (shared-nothing, no locks on the BDD hot paths).  \
         Output order, traces and the exit code are byte-identical to \
         a sequential run.  A crashed worker is respawned, and with \
         $(b,--retries) its specification is re-checked on the main \
         domain.";
      `P
        "Server mode: $(b,--serve) turns the checker into a long-lived \
         daemon speaking length-prefixed JSON frames on stdin/stdout \
         or a Unix socket ($(b,--socket)).  Compiled models stay warm \
         in an LRU pool ($(b,--cache-models)), so repeat checks skip \
         compilation, BDD construction and the reachability fixpoint.  \
         Every reply carries the verdicts, the one-shot CLI's exact \
         output text, and per-request statistics; a request that trips \
         a budget or an injected fault is answered UNDETERMINED while \
         the server and its other requests continue untouched.";
      `P
        "Server overload protection (all off by default): \
         $(b,--max-pending) and $(b,--max-inflight) shed excess checks \
         immediately with structured 'overloaded' replies instead of \
         queueing without bound; $(b,--default-timeout), \
         $(b,--default-node-limit) and $(b,--max-timeout) impose \
         server-side budgets on unbudgeted requests; \
         $(b,--mem-high-water) arms a memory watchdog that sheds \
         cache warmth under pressure (evict idle models, clamp idle \
         caches, refuse cold models) and recovers when pressure \
         clears.  $(b,--status) probes a running server's health from \
         the command line.";
      `P
        "Crash-only operation: $(b,--supervise) forks the serve loop \
         under a restarting parent that holds the listening socket \
         across crashes, and $(b,--state-dir) persists checksummed \
         warm-model snapshots so a restarted server rehydrates its \
         pool instead of recompiling — together they make a SIGKILL \
         at any moment cost one restart latency, not the accumulated \
         warmth.";
      `S Manpage.s_exit_status;
      `P "0 — every specification holds.";
      `P "1 — at least one specification is false (none undetermined).";
      `P
        "2 — a resource limit tripped, some verdict is undetermined, or \
         the run was interrupted.";
      `P
        "3 — input error (unreadable or invalid model, bad flags), \
         internal failure, or an emitted trace failed $(b,--certify) \
         validation.";
      `S Manpage.s_examples;
      `P "smv_check examples/models/mutex.smv";
      `P "smv_check --spec 'AG (tr1 -> AF ta1)' arbiter.smv";
      `P "smv_check --timeout 5 --node-limit 2000000 big_model.smv";
      `P "smv_check --step-limit 100 --retries 2 --certify counter.smv";
      `P "smv_check --inject mk:5000 --retries 1 --stats model.smv";
      `P "smv_check --serve --socket /tmp/smv.sock --jobs 4";
      `P
        "smv_check --serve --socket /tmp/smv.sock --max-pending 32 \
         --max-timeout 30 --mem-high-water 5000000";
      `P
        "smv_check --serve --socket /tmp/smv.sock --supervise \
         --state-dir /var/lib/smv_check";
      `P "smv_check --status --socket /tmp/smv.sock";
    ]
  in
  Cmd.v
    (Cmd.info "smv_check" ~version:"1.0.0" ~doc ~man)
    Term.(
      const main $ file_arg $ spec_arg $ no_fair_arg $ fair_engine_arg
      $ no_trace_arg $ stats_arg $ partitioned_arg $ cache_limit_arg $ simulate_arg
      $ seed_arg $ timeout_arg $ node_limit_arg $ step_limit_arg
      $ jobs_arg $ retries_arg $ retry_factor_arg $ certify_arg
      $ inject_arg $ reorder_arg $ reorder_threshold_arg $ debug_arg
      $ serve_arg $ socket_arg $ cache_models_arg $ max_pending_arg
      $ max_inflight_arg $ default_timeout_arg $ default_node_limit_arg
      $ max_timeout_arg $ mem_high_water_arg $ supervise_arg
      $ state_dir_arg $ status_arg)

let () = exit (Cmd.eval' cmd)
