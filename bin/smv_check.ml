(* smv_check — a command-line symbolic model checker in the style of
   SMV: parse a model, check every SPEC (plus any --spec formulas),
   print verdicts and, for failed universal / satisfied existential
   specifications, an execution trace (Section 6).

   Exit codes: 0 every specification holds; 1 at least one is false
   (and none undetermined); 2 a resource limit tripped, a specification
   was left undetermined, or the run was interrupted; 3 input error or
   internal failure. *)

let ( let* ) = Result.bind

type options = {
  file : string;
  extra_specs : string list;
  fair : bool;
  traces : bool;
  stats : bool;
  partitioned : bool;
  cache_limit : int option;
  simulate : int option;
  seed : int;
  timeout : float option;
  node_limit : int option;
  step_limit : int option;
  jobs : int;
  debug : bool;
}

(* Per-spec verdicts; [Undetermined] covers resource breaches and
   (without --debug) unexpected exceptions, so one bad specification
   never takes down the rest of the run. *)
type verdict = Holds | Fails | Undetermined of string

(* --------------------------------------------------------------- *)
(* SIGINT: set the shared cancel flag.  Every per-spec Limits bundle —
   sequential or on a worker domain — is created with this flag, so one
   atomic store cancels them all: the next poll point inside each
   running BDD operation raises, the in-flight specs are reported
   UNDETERMINED, queued specs are skipped, and the run exits cleanly
   with code 2.  [interrupted] is only ever touched from the main
   domain (handler + aggregation). *)

let interrupted = ref false
let cancel_flag : bool Atomic.t = Atomic.make false

let install_sigint () =
  match
    Sys.set_signal Sys.sigint
      (Sys.Signal_handle
         (fun _ ->
           interrupted := true;
           Atomic.set cancel_flag true))
  with
  | () -> ()
  | exception (Invalid_argument _ | Sys_error _) ->
    (* no signal support on this platform: run ungoverned *)
    ()

(* A fresh budget bundle for one specification, cancellable through the
   shared flag. *)
let mk_limits opts =
  Bdd.Limits.create ?timeout:opts.timeout ?node_budget:opts.node_limit
    ?step_budget:opts.step_limit ~cancel:cancel_flag ()

let load opts =
  match Smv.load_file ~partitioned:opts.partitioned opts.file with
  | compiled -> Ok compiled
  | exception Sys_error msg -> Error msg
  | exception Smv.Lexer.Error (msg, pos) ->
    Error (Format.asprintf "%s: lexical error at %a: %s" opts.file Smv.Ast.pp_pos pos msg)
  | exception Smv.Parser.Error (msg, pos) ->
    Error (Format.asprintf "%s: syntax error at %a: %s" opts.file Smv.Ast.pp_pos pos msg)
  | exception (Smv.Compile.Error (msg, pos) | Smv.Flatten.Error (msg, pos))
    ->
    let where =
      match pos with
      | Some p -> Format.asprintf " at %a" Smv.Ast.pp_pos p
      | None -> ""
    in
    Error (Printf.sprintf "%s: error%s: %s" opts.file where msg)

let compile_extra compiled text =
  match Smv.Compile.compile_expr compiled text with
  | f -> Ok (text, f)
  | exception Smv.Lexer.Error (msg, _) | exception Smv.Parser.Error (msg, _)
  ->
    Error (Printf.sprintf "--spec %S: %s" text msg)
  | exception Smv.Compile.Error (msg, _) ->
    Error (Printf.sprintf "--spec %S: %s" text msg)

let print_model_stats ?limits m =
  let reachable = Kripke.reachable ?limits m in
  Format.printf "model: %d state bits, %.0f states in the state space, %.0f reachable@."
    m.Kripke.nbits
    (Kripke.count_states m m.Kripke.space)
    (Kripke.count_states m reachable);
  let dead = Kripke.deadlocks m in
  if not (Bdd.is_zero dead) then
    Format.printf
      "warning: %.0f deadlocked states (CTL semantics assumes a total relation)@."
      (Kripke.count_states m dead)

(* The post-run half of --stats: BDD manager counters and fixpoint
   iteration counts accumulated while checking.  [extra] carries the
   per-worker manager snapshots of a parallel run, merged into the main
   manager's counters so --stats reports one totalled view of the whole
   run regardless of --jobs. *)
let print_run_stats ?(extra = []) m =
  let s = List.fold_left Bdd.merge_stats (Bdd.stats m.Kripke.man) extra in
  Format.printf "%a@." Bdd.pp_stats s;
  let c = Ctl.Check.fixpoint_stats () in
  let f = Ctl.Fair.fixpoint_stats () in
  Format.printf
    "fixpoints: %d EU iterations, %d EG iterations, %d ring layers@."
    c.Ctl.Check.eu_iterations c.Ctl.Check.eg_iterations
    c.Ctl.Check.ring_layers;
  Format.printf
    "fair fixpoints: %d outer iterations, %d ring layers saved@."
    f.Ctl.Fair.outer_iterations f.Ctl.Fair.ring_layers

(* The paper: a true existential specification gets a witness, a false
   universal one gets a counterexample. *)
let rec existential = function
  | Ctl.EX _ | Ctl.EF _ | Ctl.EG _ | Ctl.EU _ -> true
  | Ctl.Not f -> not (existential f)
  | Ctl.True | Ctl.False | Ctl.Atom _ | Ctl.Pred _ | Ctl.And _ | Ctl.Or _
  | Ctl.Imp _ | Ctl.Iff _ | Ctl.AX _ | Ctl.AF _ | Ctl.AG _ | Ctl.AU _ ->
    false

let describe_breach (info : Bdd.Limits.info) =
  Format.asprintf "%a" Bdd.Limits.pp_breach info.Bdd.Limits.breach

let print_breach_progress ppf (info : Bdd.Limits.info) =
  let p = info.Bdd.Limits.progress in
  Format.fprintf ppf
    "--   progress before the limit: %d fixpoint iterations, %d ring segments%s@."
    p.Bdd.Limits.iterations p.Bdd.Limits.rings
    (match p.Bdd.Limits.witness_prefix with
    | [] -> ""
    | states -> Printf.sprintf ", %d witness states" (List.length states))

(* Print the trace for a determined verdict.  A resource breach here is
   reported as a note but keeps the verdict: the answer was already
   computed, only its explanation ran out of budget. *)
let print_trace ppf m ~limits ~fair:_ ~holds spec =
  if holds then begin
    if existential spec then
    match Counterex.Explain.witness ~limits m spec with
    | Some tr ->
      Format.fprintf ppf "-- as demonstrated by the following execution sequence@.";
      Format.fprintf ppf "%a@." (Kripke.Trace.pp m) tr
    | None -> ()
    | exception Counterex.Explain.Cannot_explain _ -> ()
    | exception Bdd.Limits.Exhausted info ->
      Format.fprintf ppf "-- (witness construction hit a resource limit: %s)@."
        (describe_breach info)
  end
  else begin
    (* Counterexamples always use fair semantics when constraints are
       declared, as SMV does. *)
    match Counterex.Explain.counterexample ~limits m spec with
    | Some tr ->
      Format.fprintf ppf
        "-- as demonstrated by the following execution sequence@.";
      Format.fprintf ppf "%a@." (Kripke.Trace.pp m) tr;
      Format.fprintf ppf "-- trace length: %d states%s@." (Kripke.Trace.length tr)
        (if Kripke.Trace.is_lasso tr then
           Printf.sprintf " (cycle of length %d)"
             (List.length tr.Kripke.Trace.cycle)
         else "")
    | None ->
      Format.fprintf ppf
        "-- (no initial-state counterexample: the formula fails only under plain semantics)@."
    | exception Counterex.Explain.Cannot_explain msg ->
      Format.fprintf ppf "-- (could not build a linear counterexample: %s)@." msg
    | exception Bdd.Limits.Exhausted info ->
      Format.fprintf ppf
        "-- (counterexample construction hit a resource limit: %s)@."
        (describe_breach info)
  end

(* Check one specification under a fresh budget bundle.  Budgets are
   per-spec so one hard specification cannot starve the rest; the
   bundle is also the SIGINT cancellation point.  All output goes to
   [ppf]: the sequential path passes the standard formatter, the
   parallel path a per-spec buffer replayed in spec order. *)
let check_one ppf m ~opts (name, spec) =
  let limits = mk_limits opts in
  let verdict =
    match
      Bdd.Limits.with_attached m.Kripke.man limits (fun () ->
          if opts.fair then Ctl.Fair.holds ~limits m spec
          else Ctl.Check.holds ~limits m spec)
    with
    | true -> Holds
    | false -> Fails
    | exception Bdd.Limits.Exhausted info ->
      Format.fprintf ppf "-- specification %s is UNDETERMINED (%s)@." name
        (describe_breach info);
      print_breach_progress ppf info;
      (* Reclaim the breached computation's intermediate nodes so a
         node-budget trip on one spec does not doom the next (the
         model's own BDDs are GC roots and survive). *)
      ignore (Bdd.gc m.Kripke.man);
      Undetermined (describe_breach info)
    | exception e when not opts.debug ->
      Format.fprintf ppf "-- specification %s is UNDETERMINED (internal error: %s)@."
        name (Printexc.to_string e);
      Undetermined (Printexc.to_string e)
  in
  (match verdict with
  | Holds | Fails ->
    let holds = verdict = Holds in
    Format.fprintf ppf "-- specification %s is %s@." name
      (if holds then "true" else "false");
    if opts.traces then
      Bdd.Limits.with_attached m.Kripke.man limits (fun () ->
          try print_trace ppf m ~limits ~fair:opts.fair ~holds spec
          with e when not opts.debug ->
            Format.fprintf ppf "-- (trace construction failed: %s)@."
              (Printexc.to_string e))
  | Undetermined _ -> ());
  verdict

(* Random walk from a random initial state, choosing uniformly at each
   step with symbolic cofactor-weighted sampling — no state
   enumeration, so arbitrarily large models are safe to explore. *)
let simulate m ~steps ~seed =
  let rng = Random.State.make [| seed |] in
  let pick set = Kripke.pick_random_state m ~rng set in
  match pick m.Kripke.init with
  | None -> Format.printf "no initial state@."
  | Some st ->
    let rec walk acc st k =
      if k = 0 then List.rev acc
      else
        match pick (Kripke.post m (Kripke.state_to_bdd m st)) with
        | None -> List.rev acc (* deadlock *)
        | Some st' -> walk (st' :: acc) st' (k - 1)
    in
    let tr = Kripke.Trace.finite (walk [ st ] st steps) in
    Format.printf "-- random simulation (%d steps, seed %d)@." steps seed;
    Format.printf "%a@." (Kripke.Trace.pp m) tr

let validate opts =
  let* () =
    match opts.cache_limit with
    | Some n when n <= 0 -> Error "--cache-limit: N must be positive"
    | Some _ | None -> Ok ()
  in
  let* () =
    match opts.simulate with
    | Some n when n <= 0 -> Error "--simulate: STEPS must be positive"
    | Some _ | None -> Ok ()
  in
  let* () =
    match opts.timeout with
    | Some t when t <= 0.0 -> Error "--timeout: SECS must be positive"
    | Some _ | None -> Ok ()
  in
  let* () =
    match opts.node_limit with
    | Some n when n <= 0 -> Error "--node-limit: N must be positive"
    | Some _ | None -> Ok ()
  in
  let* () =
    match opts.step_limit with
    | Some n when n <= 0 -> Error "--step-limit: N must be positive"
    | Some _ | None -> Ok ()
  in
  if opts.jobs < 0 then Error "--jobs: N must be >= 0 (0 means all cores)"
  else Ok ()

(* Returns Ok (exit code) or Error message (input error, exit 3). *)
let run opts =
  let* () = validate opts in
  let* compiled = load opts in
  let m = compiled.Smv.Compile.model in
  (match opts.cache_limit with
  | Some _ as limit -> Bdd.set_cache_limit m.Kripke.man limit
  | None -> ());
  if opts.stats then print_model_stats m;
  (match opts.simulate with
  | Some steps -> simulate m ~steps ~seed:opts.seed
  | None -> ());
  let* extra =
    List.fold_left
      (fun acc text ->
        let* acc = acc in
        let* spec = compile_extra compiled text in
        Ok (spec :: acc))
      (Ok []) opts.extra_specs
  in
  let specs = compiled.Smv.Compile.specs @ List.rev extra in
  let jobs =
    if opts.jobs = 0 then Parallel.default_jobs () else opts.jobs
  in
  let verdicts, worker_stats =
    if specs = [] then begin
      Format.printf "no specifications to check@.";
      ([], [])
    end
    else if jobs > 1 && List.length specs > 1 then begin
      (* Parallel path: fan the specs out over worker domains.  Each
         task renders its whole report (verdict line, trace) into a
         private buffer; the buffers are replayed on the main domain in
         specification order, so the bytes printed are identical to a
         sequential run's. *)
      let names = Array.of_list (List.map fst specs) in
      let formulas = Array.of_list (List.map snd specs) in
      let f wm spec i =
        let buf = Buffer.create 512 in
        let ppf = Format.formatter_of_buffer buf in
        let verdict = check_one ppf wm ~opts (names.(i), spec) in
        Format.pp_print_flush ppf ();
        (verdict, Buffer.contents buf)
      in
      let on_result i = function
        | Ok ((_ : verdict), out) ->
          (* Bypass std_formatter for the replay: a multi-line string
             printed through %s corrupts Format's column tracking.  All
             Format output ends in @. (flush), so channel-level writes
             stay ordered. *)
          Format.print_flush ();
          print_string out
        | Error Parallel.Specs.Cancelled -> ()
        | Error e when not opts.debug ->
          Format.printf
            "-- specification %s is UNDETERMINED (worker failed: %s)@."
            names.(i) (Printexc.to_string e)
        | Error e -> raise e
      in
      let results, worker_stats =
        Parallel.Specs.map ~jobs ~cancel:cancel_flag ~on_result ~f m
          formulas
      in
      let verdicts =
        Array.to_list results
        |> List.filter_map (function
             | Ok (v, _) -> Some v
             | Error Parallel.Specs.Cancelled -> None
             | Error e -> Some (Undetermined (Printexc.to_string e)))
      in
      (verdicts, worker_stats)
    end
    else
      (* Stop early on SIGINT; otherwise check every spec even after
         failures and breaches (per-spec isolation). *)
      ( List.filter_map
          (fun spec ->
            if !interrupted then None
            else Some (check_one Format.std_formatter m ~opts spec))
          specs,
        [] )
  in
  if !interrupted then begin
    Format.printf "-- interrupted; statistics so far:@.";
    print_run_stats ~extra:worker_stats m
  end
  else if opts.stats then print_run_stats ~extra:worker_stats m;
  let some_undetermined =
    List.exists (function Undetermined _ -> true | _ -> false) verdicts
  in
  let some_false = List.exists (( = ) Fails) verdicts in
  if !interrupted || some_undetermined then Ok 2
  else if some_false then Ok 1
  else Ok 0

open Cmdliner

(* [string], not [file]: a missing path must flow through our own
   error reporting (exit 3), not cmdliner's argument-parse exit. *)
let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"MODEL.smv" ~doc:"SMV model to check.")

let spec_arg =
  Arg.(
    value & opt_all string []
    & info [ "s"; "spec" ] ~docv:"FORMULA"
        ~doc:"Additional CTL specification to check (repeatable).")

let no_fair_arg =
  Arg.(
    value & flag
    & info [ "no-fairness" ]
        ~doc:
          "Ignore FAIRNESS constraints when deciding specifications \
           (counterexample generation still respects them).")

let no_trace_arg =
  Arg.(
    value & flag
    & info [ "q"; "no-trace" ] ~doc:"Do not print counterexample traces.")

let partitioned_arg =
  Arg.(
    value & flag
    & info [ "partitioned" ]
        ~doc:
          "Use a conjunctively partitioned transition relation with \
           early quantification for image computation.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print model statistics (state counts, deadlocks) before \
           checking, and BDD-manager counters (cache hits/misses, peak \
           node count) plus fixpoint iteration counts afterwards.")

let cache_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-limit" ] ~docv:"N"
        ~doc:
          "Bound every BDD operation cache to N entries; a cache that \
           grows past the bound is dropped and rebuilt (results are \
           unchanged, memory is bounded).")

let simulate_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "simulate" ] ~docv:"STEPS"
        ~doc:"Print a random execution of the given length before checking.")

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N" ~doc:"Random seed for --simulate.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:
          "Wall-clock budget per specification; a spec that exceeds it \
           is reported UNDETERMINED and checking continues with the \
           next one.")

let node_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "node-limit" ] ~docv:"N"
        ~doc:
          "Live BDD-node budget per specification; exceeded budgets \
           report UNDETERMINED like --timeout.")

let step_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "step-limit" ] ~docv:"N"
        ~doc:
          "Fixpoint-iteration / ring-descent step budget per \
           specification (deterministic, unlike --timeout).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Check specifications on N worker domains in parallel (0 \
           means one per core).  Each worker clones the model into a \
           private BDD manager, so verdicts, traces and exit code are \
           byte-identical to a sequential run.")

let debug_arg =
  Arg.(
    value & flag
    & info [ "debug" ]
        ~doc:
          "Developer mode: record exception backtraces and let \
           unexpected exceptions crash with a full trace instead of \
           being condensed to one-line diagnostics.")

let main file extra_specs no_fair no_trace stats partitioned cache_limit
    simulate seed timeout node_limit step_limit jobs debug =
  let opts =
    {
      file; extra_specs; fair = not no_fair; traces = not no_trace; stats;
      partitioned; cache_limit; simulate; seed; timeout; node_limit;
      step_limit; jobs; debug;
    }
  in
  Printexc.record_backtrace debug;
  install_sigint ();
  match run opts with
  | Ok code -> code
  | Error msg ->
    Format.eprintf "%s@." msg;
    3
  | exception e when not debug ->
    (* Crash guard: anything unexpected outside the per-spec isolation
       becomes a one-line diagnostic. *)
    Format.eprintf "smv_check: internal error on %s: %s@." file
      (Printexc.to_string e);
    3

let cmd =
  let doc = "symbolic CTL model checker with counterexample generation" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Checks every SPEC of an SMV model with the BDD-based symbolic \
         algorithm of Clarke, Grumberg, McMillan and Zhao, honouring \
         FAIRNESS constraints, and prints a counterexample execution \
         trace (a finite path, or a path followed by a repeating cycle) \
         for every failed specification.";
      `P
        "Resource governance: $(b,--timeout), $(b,--node-limit) and \
         $(b,--step-limit) bound each specification separately; a spec \
         that exceeds a budget is reported UNDETERMINED and the \
         remaining specs are still checked.  SIGINT finishes the \
         current BDD operation, prints statistics so far, and exits \
         cleanly.";
      `P
        "Parallelism: $(b,--jobs N) checks specifications on N worker \
         domains, each with a private clone of the model in its own \
         BDD manager (shared-nothing, no locks on the BDD hot paths).  \
         Output order, traces and the exit code are byte-identical to \
         a sequential run.";
      `S Manpage.s_exit_status;
      `P "0 — every specification holds.";
      `P "1 — at least one specification is false (none undetermined).";
      `P
        "2 — a resource limit tripped, some verdict is undetermined, or \
         the run was interrupted.";
      `P "3 — input error (unreadable or invalid model, bad flags) or \
          internal failure.";
      `S Manpage.s_examples;
      `P "smv_check examples/models/mutex.smv";
      `P "smv_check --spec 'AG (tr1 -> AF ta1)' arbiter.smv";
      `P "smv_check --timeout 5 --node-limit 2000000 big_model.smv";
    ]
  in
  Cmd.v
    (Cmd.info "smv_check" ~version:"1.0.0" ~doc ~man)
    Term.(
      const main $ file_arg $ spec_arg $ no_fair_arg $ no_trace_arg
      $ stats_arg $ partitioned_arg $ cache_limit_arg $ simulate_arg
      $ seed_arg $ timeout_arg $ node_limit_arg $ step_limit_arg
      $ jobs_arg $ debug_arg)

let () = exit (Cmd.eval' cmd)
