(* smv_check — a command-line symbolic model checker in the style of
   SMV: parse a model, check every SPEC (plus any --spec formulas),
   print verdicts and, for failed universal / satisfied existential
   specifications, an execution trace (Section 6). *)

let ( let* ) = Result.bind

type options = {
  file : string;
  extra_specs : string list;
  fair : bool;
  traces : bool;
  stats : bool;
  partitioned : bool;
  cache_limit : int option;
  simulate : int option;
  seed : int;
}

let load opts =
  match Smv.load_file ~partitioned:opts.partitioned opts.file with
  | compiled -> Ok compiled
  | exception Sys_error msg -> Error msg
  | exception Smv.Lexer.Error (msg, pos) ->
    Error (Format.asprintf "%s: lexical error at %a: %s" opts.file Smv.Ast.pp_pos pos msg)
  | exception Smv.Parser.Error (msg, pos) ->
    Error (Format.asprintf "%s: syntax error at %a: %s" opts.file Smv.Ast.pp_pos pos msg)
  | exception (Smv.Compile.Error (msg, pos) | Smv.Flatten.Error (msg, pos))
    ->
    let where =
      match pos with
      | Some p -> Format.asprintf " at %a" Smv.Ast.pp_pos p
      | None -> ""
    in
    Error (Printf.sprintf "%s: error%s: %s" opts.file where msg)

let compile_extra compiled text =
  match Smv.Compile.compile_expr compiled text with
  | f -> Ok (text, f)
  | exception Smv.Lexer.Error (msg, _) | exception Smv.Parser.Error (msg, _)
  ->
    Error (Printf.sprintf "--spec %S: %s" text msg)
  | exception Smv.Compile.Error (msg, _) ->
    Error (Printf.sprintf "--spec %S: %s" text msg)

let print_model_stats m =
  let reachable = Kripke.reachable m in
  Format.printf "model: %d state bits, %.0f states in the state space, %.0f reachable@."
    m.Kripke.nbits
    (Kripke.count_states m m.Kripke.space)
    (Kripke.count_states m reachable);
  let dead = Kripke.deadlocks m in
  if not (Bdd.is_zero dead) then
    Format.printf
      "warning: %.0f deadlocked states (CTL semantics assumes a total relation)@."
      (Kripke.count_states m dead)

(* The post-run half of --stats: BDD manager counters and fixpoint
   iteration counts accumulated while checking. *)
let print_run_stats m =
  Format.printf "%a@." Bdd.pp_stats (Bdd.stats m.Kripke.man);
  let c = Ctl.Check.fixpoint_stats () in
  let f = Ctl.Fair.fixpoint_stats () in
  Format.printf
    "fixpoints: %d EU iterations, %d EG iterations, %d ring layers@."
    c.Ctl.Check.eu_iterations c.Ctl.Check.eg_iterations
    c.Ctl.Check.ring_layers;
  Format.printf
    "fair fixpoints: %d outer iterations, %d ring layers saved@."
    f.Ctl.Fair.outer_iterations f.Ctl.Fair.ring_layers

(* The paper: a true existential specification gets a witness, a false
   universal one gets a counterexample. *)
let rec existential = function
  | Ctl.EX _ | Ctl.EF _ | Ctl.EG _ | Ctl.EU _ -> true
  | Ctl.Not f -> not (existential f)
  | Ctl.True | Ctl.False | Ctl.Atom _ | Ctl.Pred _ | Ctl.And _ | Ctl.Or _
  | Ctl.Imp _ | Ctl.Iff _ | Ctl.AX _ | Ctl.AF _ | Ctl.AG _ | Ctl.AU _ ->
    false

let check_one m ~fair ~traces (name, spec) =
  let holds = if fair then Ctl.Fair.holds m spec else Ctl.Check.holds m spec in
  Format.printf "-- specification %s is %s@." name
    (if holds then "true" else "false");
  if holds && traces && existential spec then begin
    match Counterex.Explain.witness m spec with
    | Some tr ->
      Format.printf "-- as demonstrated by the following execution sequence@.";
      Format.printf "%a@." (Kripke.Trace.pp m) tr
    | None -> ()
    | exception Counterex.Explain.Cannot_explain _ -> ()
  end;
  if (not holds) && traces then begin
    (* Counterexamples always use fair semantics when constraints are
       declared, as SMV does. *)
    match Counterex.Explain.counterexample m spec with
    | Some tr ->
      Format.printf
        "-- as demonstrated by the following execution sequence@.";
      Format.printf "%a@." (Kripke.Trace.pp m) tr;
      Format.printf "-- trace length: %d states%s@." (Kripke.Trace.length tr)
        (if Kripke.Trace.is_lasso tr then
           Printf.sprintf " (cycle of length %d)"
             (List.length tr.Kripke.Trace.cycle)
         else "")
    | None ->
      Format.printf
        "-- (no initial-state counterexample: the formula fails only under plain semantics)@."
    | exception Counterex.Explain.Cannot_explain msg ->
      Format.printf "-- (could not build a linear counterexample: %s)@." msg
  end;
  holds

(* Random walk from a random initial state: pick a uniform successor
   at each step (by enumerating successors; intended for interactive
   exploration of small-to-medium models). *)
let simulate m ~steps ~seed =
  let rng = Random.State.make [| seed |] in
  let pick set =
    match Kripke.states_in m set with
    | [] -> None
    | states ->
      Some (List.nth states (Random.State.int rng (List.length states)))
  in
  match pick m.Kripke.init with
  | None -> Format.printf "no initial state@."
  | Some st ->
    let rec walk acc st k =
      if k = 0 then List.rev acc
      else
        match pick (Kripke.post m (Kripke.state_to_bdd m st)) with
        | None -> List.rev acc (* deadlock *)
        | Some st' -> walk (st' :: acc) st' (k - 1)
    in
    let tr = Kripke.Trace.finite (walk [ st ] st steps) in
    Format.printf "-- random simulation (%d steps, seed %d)@." steps seed;
    Format.printf "%a@." (Kripke.Trace.pp m) tr

let run opts =
  let* () =
    match opts.cache_limit with
    | Some n when n <= 0 -> Error "--cache-limit: N must be positive"
    | Some _ | None -> Ok ()
  in
  let* compiled = load opts in
  let m = compiled.Smv.Compile.model in
  (match opts.cache_limit with
  | Some _ as limit -> Bdd.set_cache_limit m.Kripke.man limit
  | None -> ());
  if opts.stats then print_model_stats m;
  (match opts.simulate with
  | Some steps -> simulate m ~steps ~seed:opts.seed
  | None -> ());
  let* extra =
    List.fold_left
      (fun acc text ->
        let* acc = acc in
        let* spec = compile_extra compiled text in
        Ok (spec :: acc))
      (Ok []) opts.extra_specs
  in
  let specs = compiled.Smv.Compile.specs @ List.rev extra in
  let result =
    if specs = [] then begin
      Format.printf "no specifications to check@.";
      Ok true
    end
    else
      let ok =
        List.fold_left
          (fun ok spec ->
            check_one m ~fair:opts.fair ~traces:opts.traces spec && ok)
          true specs
      in
      Ok ok
  in
  if opts.stats then print_run_stats m;
  result

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"MODEL.smv" ~doc:"SMV model to check.")

let spec_arg =
  Arg.(
    value & opt_all string []
    & info [ "s"; "spec" ] ~docv:"FORMULA"
        ~doc:"Additional CTL specification to check (repeatable).")

let no_fair_arg =
  Arg.(
    value & flag
    & info [ "no-fairness" ]
        ~doc:
          "Ignore FAIRNESS constraints when deciding specifications \
           (counterexample generation still respects them).")

let no_trace_arg =
  Arg.(
    value & flag
    & info [ "q"; "no-trace" ] ~doc:"Do not print counterexample traces.")

let partitioned_arg =
  Arg.(
    value & flag
    & info [ "partitioned" ]
        ~doc:
          "Use a conjunctively partitioned transition relation with early            quantification for image computation.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print model statistics (state counts, deadlocks) before \
           checking, and BDD-manager counters (cache hits/misses, peak \
           node count) plus fixpoint iteration counts afterwards.")

let cache_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-limit" ] ~docv:"N"
        ~doc:
          "Bound every BDD operation cache to N entries; a cache that \
           grows past the bound is dropped and rebuilt (results are \
           unchanged, memory is bounded).")

let simulate_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "simulate" ] ~docv:"STEPS"
        ~doc:"Print a random execution of the given length before checking.")

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N" ~doc:"Random seed for --simulate.")

let main file extra_specs no_fair no_trace stats partitioned cache_limit
    simulate seed =
  let opts =
    {
      file; extra_specs; fair = not no_fair; traces = not no_trace; stats;
      partitioned; cache_limit; simulate; seed;
    }
  in
  match run opts with
  | Ok true -> 0
  | Ok false -> 1
  | Error msg ->
    Format.eprintf "%s@." msg;
    2

let cmd =
  let doc = "symbolic CTL model checker with counterexample generation" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Checks every SPEC of an SMV model with the BDD-based symbolic \
         algorithm of Clarke, Grumberg, McMillan and Zhao, honouring \
         FAIRNESS constraints, and prints a counterexample execution \
         trace (a finite path, or a path followed by a repeating cycle) \
         for every failed specification.";
      `S Manpage.s_examples;
      `P "smv_check examples/models/mutex.smv";
      `P "smv_check --spec 'AG (tr1 -> AF ta1)' arbiter.smv";
    ]
  in
  Cmd.v
    (Cmd.info "smv_check" ~version:"1.0.0" ~doc ~man)
    Term.(
      const main $ file_arg $ spec_arg $ no_fair_arg $ no_trace_arg
      $ stats_arg $ partitioned_arg $ cache_limit_arg $ simulate_arg
      $ seed_arg)

let () = exit (Cmd.eval' cmd)
