(* E3 — Figures 1 & 2: cycle-closing strategies across SCC chains.

   On a chain of k strongly connected components with the fairness
   constraint sitting in the last (terminal) one, the first greedy
   round anchors the cycle start near the top of the chain and must
   restart after descending (Figure 2).  The Restart strategy discovers
   this only after completing the round; Precompute notices as soon as
   the walk leaves E[(EG f) U {t}].  Rows compare rounds, witness
   length and time. *)

let witness_with strategy m ~start =
  Counterex.Witness.eg_stats ~strategy m ~f:m.Kripke.space ~start

let run ~full =
  let size = 4 in
  let ks = if full then [ 2; 4; 6; 8; 10; 12 ] else [ 2; 4; 6; 8 ] in
  let rows =
    List.map
      (fun k ->
        let g = Workloads.scc_chain ~fair_last:true ~components:k ~size () in
        let m, encode = Explicit.Bridge.to_kripke g in
        let start = encode 0 in
        let (tr_r, stats_r), t_r =
          Harness.time_once (fun () ->
              witness_with Counterex.Witness.Restart m ~start)
        in
        let (tr_p, stats_p), t_p =
          Harness.time_once (fun () ->
              witness_with Counterex.Witness.Precompute m ~start)
        in
        [
          string_of_int k;
          string_of_int stats_r.Counterex.Witness.rounds;
          string_of_int (Kripke.Trace.length tr_r);
          Harness.seconds_string t_r;
          string_of_int stats_p.Counterex.Witness.rounds;
          string_of_int (Kripke.Trace.length tr_p);
          Harness.seconds_string t_p;
        ])
      ks
  in
  Harness.print_table
    ~title:
      (Printf.sprintf
         "E3: cycle-closing strategies on a k-SCC chain (components of %d states)"
         size)
    ~header:
      [ "k SCCs"; "R rounds"; "R length"; "R time"; "P rounds"; "P length";
        "P time" ]
    rows;
  Harness.note
    "R = Restart (simple strategy), P = Precompute E[(EG f) U {t}] (Section 6's";
  Harness.note
    "\"slightly more sophisticated approach\").  Witnesses span several SCCs";
  Harness.note
    "(Figure 2); both find short counterexamples because the number of SCCs";
  Harness.note "crossed stays small."

let bechamel =
  let g = Workloads.scc_chain ~fair_last:true ~components:5 ~size:4 () in
  let prepared = lazy (Explicit.Bridge.to_kripke g) in
  let mk name strategy =
    Bechamel.Test.make ~name
      (Bechamel.Staged.stage (fun () ->
           let m, encode = Lazy.force prepared in
           witness_with strategy m ~start:(encode 0)))
  in
  Bechamel.Test.make_grouped ~name:"e3-scc-strategies"
    [
      mk "restart" Counterex.Witness.Restart;
      mk "precompute" Counterex.Witness.Precompute;
    ]
