(* E13 — variable-order sensitivity and dynamic reordering.

   Three questions the reordering PR must answer, on the arbiter
   workload (whose declaration order is deliberately adversarial: all
   request bits, then all acknowledge bits, then the token, so the
   transition relation is the textbook exponential copier) and on a
   binary counter (whose diagrams are nearly order-insensitive, so any
   cost reordering adds shows up undiluted):

   1. How much does the static interleaved/proximity order
      (--reorder's compile-time seeding) save over declaration order?
   2. Does the full --reorder auto pipeline (static seed + sifting at
      fixpoint checkpoints) at least halve the peak, with identical
      verdicts?  This is the acceptance gate BENCH_reorder.json
      records.
   3. Can sifting alone rescue a bad declaration order at run time
      (no static seed — the trigger fires mid-check instead)?

   Every configuration must report byte-identical verdicts; only node
   counts and times may move. *)

(* The round-robin token arbiter of examples/models/arbiter.smv,
   parameterised over the number of users and generated with the same
   adversarial declaration order. *)
let arbiter_smv n =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "MODULE main\nVAR\n";
  for i = 0 to n - 1 do
    pf "  req%d : boolean;\n" i
  done;
  for i = 0 to n - 1 do
    pf "  ack%d : boolean;\n" i
  done;
  pf "  token : {%s};\n"
    (String.concat ", " (List.init n (Printf.sprintf "t%d")));
  pf "ASSIGN\n";
  for i = 0 to n - 1 do
    pf "  init(req%d) := FALSE;\n  init(ack%d) := FALSE;\n" i i
  done;
  pf "  init(token) := t0;\n";
  pf "  next(token) := case\n";
  for i = 0 to n - 2 do
    pf "      token = t%d : t%d;\n" i (i + 1)
  done;
  pf "      TRUE : t0;\n    esac;\n";
  for i = 0 to n - 1 do
    pf "  next(ack%d) := req%d & token = t%d;\n" i i i
  done;
  for i = 0 to n - 1 do
    pf
      "  next(req%d) := case ack%d : {TRUE, FALSE}; req%d : TRUE; TRUE : \
       {TRUE, FALSE}; esac;\n"
      i i i
  done;
  pf "SPEC AG !(ack0 & ack1)\n";
  pf "SPEC AG (req0 -> AF ack0)\n";
  pf "SPEC AG (req1 -> AF !req1)\n";
  Buffer.contents b

(* A plain n-bit binary counter: bit k toggles when all lower bits are
   1.  EF(all ones) walks the whole 2^n chain backwards. *)
let counter_smv n =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "MODULE main\nVAR\n";
  for i = 0 to n - 1 do
    pf "  b%d : boolean;\n" i
  done;
  pf "ASSIGN\n";
  for i = 0 to n - 1 do
    pf "  init(b%d) := FALSE;\n" i
  done;
  for i = 0 to n - 1 do
    let lower = List.init i (Printf.sprintf "b%d") in
    let all_lower = match lower with [] -> "TRUE" | l -> String.concat " & " l in
    pf "  next(b%d) := case %s : !b%d; TRUE : b%d; esac;\n" i all_lower i i
  done;
  pf "SPEC EF (%s)\n" (String.concat " & " (List.init n (Printf.sprintf "b%d")));
  pf "SPEC AG (b0 -> EF !b0)\n";
  Buffer.contents b

type config = Declared | Static | Auto | Rescue

let config_name = function
  | Declared -> "declared"
  | Static -> "static"
  | Auto -> "auto"
  | Rescue -> "rescue"

(* One measured run: fresh manager, chosen order policy, check every
   spec sequentially (the CLI's single-job path).  [Auto] mirrors
   --reorder auto exactly: static seed plus the live-node trigger
   consumed at fixpoint checkpoints; [Rescue] arms the same trigger on
   the unseeded declaration order, so any saving is sifting's alone. *)
let run_config src config =
  let static = match config with Static | Auto -> true | _ -> false in
  let c = Smv.load_string ~static_order:static src in
  let m = c.Smv.Compile.model in
  let man = m.Kripke.man in
  (match config with
  | Auto | Rescue -> Bdd.Reorder.set_auto man (Some 1024)
  | Declared | Static -> ());
  let check () =
    List.map (fun (_, f) -> Ctl.Check.holds m f) c.Smv.Compile.specs
  in
  let verdicts, t =
    Harness.time_once (fun () ->
        match config with
        | Auto | Rescue -> Bdd.Reorder.with_checkpoints man check
        | Declared | Static -> check ())
  in
  let s = Bdd.stats man in
  (verdicts, t, s)

let sweep ~workload src rows =
  let baseline = ref [] in
  let peak0 = ref 0 in
  List.fold_left
    (fun rows config ->
      let verdicts, t, s = run_config src config in
      (match config with
      | Declared ->
        baseline := verdicts;
        peak0 := s.Bdd.peak_nodes
      | _ ->
        if verdicts <> !baseline then
          failwith
            (Printf.sprintf "E13: %s/%s changed a verdict" workload
               (config_name config)));
      Harness.emit_json ~experiment:"E13"
        [
          ("workload", Harness.String workload);
          ("config", Harness.String (config_name config));
          ("peak_nodes", Harness.Int s.Bdd.peak_nodes);
          ("live_nodes", Harness.Int s.Bdd.live_nodes);
          ("reorders", Harness.Int s.Bdd.reorders);
          ("reorder_ms", Harness.Float s.Bdd.reorder_ms);
          ("check_s", Harness.Float t);
          ( "peak_vs_declared",
            Harness.Float
              (float_of_int !peak0 /. float_of_int (max 1 s.Bdd.peak_nodes)) );
          ( "verdicts",
            Harness.String
              (String.concat ""
                 (List.map (fun v -> if v then "T" else "F") verdicts)) );
        ];
      rows
      @ [
          [
            workload;
            config_name config;
            string_of_int s.Bdd.peak_nodes;
            Printf.sprintf "%.1fx"
              (float_of_int !peak0 /. float_of_int (max 1 s.Bdd.peak_nodes));
            string_of_int s.Bdd.reorders;
            Harness.seconds_string t;
          ];
        ])
    rows
    [ Declared; Static; Auto; Rescue ]

let run ~full =
  let arb_users = if full then 10 else 8 in
  let ctr_bits = if full then 12 else 10 in
  let rows = sweep ~workload:(Printf.sprintf "arbiter%d" arb_users)
      (arbiter_smv arb_users) [] in
  let rows = sweep ~workload:(Printf.sprintf "counter%d" ctr_bits)
      (counter_smv ctr_bits) rows in
  Harness.print_table
    ~title:
      "E13: variable order — declaration order vs static interleaving vs \
       sifting (identical verdicts enforced)"
    ~header:[ "workload"; "order"; "peak nodes"; "vs declared"; "sifts"; "check" ]
    rows;
  Harness.note
    "declared: the model's own (adversarial) declaration order, no sifting.";
  Harness.note
    "static: the compile-time interleaved/proximity order (free, no sweeps).";
  Harness.note
    "auto: static seed + live-node trigger at fixpoint checkpoints — what";
  Harness.note
    "`--reorder auto` runs; the acceptance gate wants peak >= 2x smaller than";
  Harness.note
    "declared on the arbiter.  rescue: trigger alone on the unseeded order —";
  Harness.note
    "sifting recovering mid-check from a bad static choice.  The counter is";
  Harness.note
    "near order-insensitive: its rows bound reordering's overhead, not its win."

let bechamel =
  let src = lazy (arbiter_smv 6) in
  Bechamel.Test.make ~name:"e13-arbiter6-auto-reorder"
    (Bechamel.Staged.stage (fun () ->
         run_config (Lazy.force src) Auto))
