(* E1 — the Section 6 case study: verify the asynchronous arbiter,
   find the liveness counterexample, report sizes and times.

   Paper reference (their netlist, 1994 hardware): 33,633 reachable
   states; counterexample 78 states long with a cycle of length 30;
   "the entire verification takes only a few minutes". *)

let run ~full =
  let sizes = if full then [ 2; 3; 4 ] else [ 2; 3 ] in
  let rows =
    List.map
      (fun n ->
        let m = Circuit.Arbiter.model n in
        let reach = Kripke.count_states m (Kripke.reachable m) in
        let spec = Circuit.Arbiter.liveness_spec n in
        let verdict, t_check = Harness.time_once (fun () -> Ctl.Fair.holds m spec) in
        assert (not verdict);
        let tr, t_witness =
          Harness.time_once (fun () ->
              match Counterex.Explain.counterexample m spec with
              | Some tr -> tr
              | None -> assert false)
        in
        [
          string_of_int n;
          string_of_int m.Kripke.nbits;
          Printf.sprintf "%.0f" reach;
          "false";
          string_of_int (Kripke.Trace.length tr);
          string_of_int (List.length tr.Kripke.Trace.cycle);
          Harness.seconds_string t_check;
          Harness.seconds_string t_witness;
        ])
      sizes
  in
  Harness.print_table
    ~title:"E1: arbiter case study — AG (tr1 -> AF ta1) under gate fairness"
    ~header:
      [ "users"; "bits"; "reachable"; "verdict"; "ce states"; "cycle";
        "check time"; "ce time" ]
    rows;
  Harness.note
    "paper (original Seitz netlist): 33,633 reachable states, counterexample";
  Harness.note
    "of 78 states with a 30-state cycle, \"a few minutes\" on 1994 hardware.";
  Harness.note
    "shape reproduced: liveness fails with a validated fair lasso whose";
  Harness.note "cycle starves user 1; absolute sizes depend on the netlist."

let bechamel =
  let m = lazy (Circuit.Arbiter.model 2) in
  Bechamel.Test.make ~name:"e1-arbiter2-fair-check"
    (Bechamel.Staged.stage (fun () ->
         Ctl.Fair.holds (Lazy.force m) (Circuit.Arbiter.liveness_spec 2)))
