(* Benchmark harness: regenerates every evaluation artifact of the
   paper (see DESIGN.md's experiment index and EXPERIMENTS.md for the
   paper-vs-measured record).

   Usage:
     dune exec bench/main.exe                 # all experiments, quick
     dune exec bench/main.exe -- --full       # larger sweeps
     dune exec bench/main.exe -- --only E2 E3 # a subset
     dune exec bench/main.exe -- --raw        # Bechamel OLS estimates
     dune exec bench/main.exe -- --json       # also emit JSON rows
     dune exec bench/main.exe -- --smoke      # tiny eviction smoke run *)

let experiments =
  [
    ("E1", Exp_arbiter.run, Exp_arbiter.bechamel);
    ("E2", Exp_minwit.run, Exp_minwit.bechamel);
    ("E3", Exp_scc.run, Exp_scc.bechamel);
    ("E4", Exp_ctlstar.run, Exp_ctlstar.bechamel);
    ("E5", Exp_containment.run, Exp_containment.bechamel);
    ("E6", Exp_symbolic.run, Exp_symbolic.bechamel);
    ("E7", Exp_fair.run, Exp_fair.bechamel);
    ("E8", Exp_overhead.run, Exp_overhead.bechamel);
    ("E9", Exp_partition.run, Exp_partition.bechamel);
    ("E10", Exp_govern.run, Exp_govern.bechamel);
    ("E11", Exp_parallel.run, Exp_parallel.bechamel);
    ("E12", Exp_recover.run, Exp_recover.bechamel);
    ("E13", Exp_reorder.run, Exp_reorder.bechamel);
    ("E14", Exp_serve.run, Exp_serve.bechamel);
    ("E15", Exp_serve.run_overload, Exp_serve.bechamel_overload);
    ("E16", Exp_nodestore.run, Exp_nodestore.bechamel);
    ("E17", Exp_serve.run_restart, Exp_serve.bechamel_restart);
    ("E18", Exp_faircycle.run, Exp_faircycle.bechamel);
  ]

let run_raw () =
  (* The classic Bechamel pipeline: every experiment contributes one
     Test.make (or group); OLS estimates of ns/run are printed. *)
  let tests =
    Bechamel.Test.make_grouped ~name:"counterexamples"
      (List.map (fun (_, _, t) -> t) experiments)
  in
  let measures = [ Bechamel.Toolkit.Instance.monotonic_clock ] in
  let raw =
    Bechamel.Benchmark.all (Harness.cfg ~quota_s:1.0 ()) measures tests
  in
  let ols =
    Bechamel.Analyze.ols ~r_square:true ~bootstrap:0
      ~predictors:[| Bechamel.Measure.run |]
  in
  let results =
    Bechamel.Analyze.all ols Bechamel.Toolkit.Instance.monotonic_clock raw
  in
  Format.printf "== Bechamel OLS estimates (monotonic clock) ==@.";
  Hashtbl.iter
    (fun name result ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some [ ns ] ->
        Format.printf "%-40s %s/run@." name (Harness.ns_string ns)
      | Some _ | None -> Format.printf "%-40s (no estimate)@." name)
    results

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let raw = List.mem "--raw" args in
  Harness.json_enabled := List.mem "--json" args;
  let selected_ids =
    List.filter
      (fun a -> String.length a > 0 && a.[0] = 'E')
      args
  in
  let selected id = selected_ids = [] || List.mem id selected_ids in
  if List.mem "--smoke" args then
    (* A seconds-scale workload with bounded op-caches and stats output,
       wired to the @bench-smoke alias; non-zero exit on any verdict
       divergence between bounded and unbounded caches. *)
    exit (if Exp_fair.smoke () then 0 else 1)
  else if raw then run_raw ()
  else begin
    Format.printf "Benchmarks reproducing the evaluation artifacts of@.";
    Format.printf
      "\"Efficient Generation of Counterexamples and Witnesses in Symbolic Model Checking\"@.";
    Format.printf "(Clarke, Grumberg, McMillan, Zhao — DAC 1995)%s@."
      (if full then " — full sweeps" else "");
    List.iter
      (fun (id, run, _) -> if selected id then run ~full)
      experiments;
    Format.printf "@.(see EXPERIMENTS.md for the paper-vs-measured record)@."
  end
