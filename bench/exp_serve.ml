(* E14 — check-server warm-manager reuse: cold vs warm request latency.

   The --serve daemon keeps a pool of compiled models keyed by source
   digest; a repeat request for the same model skips parsing, BDD
   construction, variable ordering, and — via the memoised reachable
   set — the whole forward fixpoint, and starts from hot op-caches.
   This experiment measures what that buys on the two families the
   smoke tests use: the arbiter (order-sensitive, reordering pays) and
   the binary counter (deep fixpoint, the reachable-set memo pays).

   Three request shapes per workload, driven through the same
   Server.Cache the daemon uses (in-process, so the numbers isolate
   manager reuse from protocol and scheduling overhead):

     cold       first request: compile + reach + check every spec;
     warm       identical repeat request: cached everything;
     warm+spec  same model, a previously unseen spec: reuses the
                compiled model, order and reachable set, but must do
                real fixpoint work for the new property.

   Verdicts must be identical between cold and warm runs — reuse may
   only move time and node counts. *)

(* One daemon-shaped request against a shared cache: acquire the
   entry, compile on a miss, reach, check, release.  Returns verdicts
   and the per-request node delta (Bdd.diff_stats over the request
   window — the same accounting the server reports per reply). *)
let request cache ~source ?extra_spec () =
  let key =
    Server.Cache.digest ~source ~partitioned:false ~static_order:false
  in
  let entry, warm = Server.Cache.acquire cache ~key in
  Fun.protect ~finally:(fun () -> Server.Cache.release cache entry)
  @@ fun () ->
  let compiled =
    match entry.Server.Cache.compiled with
    | Some c -> c
    | None ->
      let c = Smv.load_string source in
      entry.Server.Cache.compiled <- Some c;
      c
  in
  let m = compiled.Smv.Compile.model in
  let before = Bdd.stats m.Kripke.man in
  ignore (Kripke.reachable m);
  let specs =
    compiled.Smv.Compile.specs
    @
    match extra_spec with
    | None -> []
    | Some text -> [ (text, Smv.Compile.compile_expr compiled text) ]
  in
  let verdicts = List.map (fun (_, f) -> Ctl.Check.holds m f) specs in
  let after = Bdd.stats m.Kripke.man in
  (verdicts, warm, (Bdd.diff_stats after before).Bdd.total_nodes)

let sweep ~workload ~extra_spec src rows =
  let cache = Server.Cache.create ~capacity:4 in
  let run ?extra_spec () =
    Harness.time_once (fun () -> request cache ~source:src ?extra_spec ())
  in
  let (cold_verdicts, cold_warm, cold_nodes), t_cold = run () in
  let (warm_verdicts, warm_warm, warm_nodes), t_warm = run () in
  let (_, _, spec_nodes), t_spec = run ~extra_spec () in
  if cold_warm then failwith ("E14: first request claimed warm on " ^ workload);
  if not warm_warm then
    failwith ("E14: repeat request stayed cold on " ^ workload);
  if cold_verdicts <> warm_verdicts then
    failwith ("E14: warm reuse changed a verdict on " ^ workload);
  let speedup = t_cold /. Float.max 1e-9 t_warm in
  Harness.emit_json ~experiment:"E14"
    [
      ("workload", Harness.String workload);
      ("cold_s", Harness.Float t_cold);
      ("warm_s", Harness.Float t_warm);
      ("warm_new_spec_s", Harness.Float t_spec);
      ("speedup", Harness.Float speedup);
      ("cold_nodes", Harness.Int cold_nodes);
      ("warm_nodes", Harness.Int warm_nodes);
      ("warm_new_spec_nodes", Harness.Int spec_nodes);
    ];
  rows
  @ [
      [
        workload;
        Harness.seconds_string t_cold;
        Harness.seconds_string t_warm;
        Printf.sprintf "%.0fx" speedup;
        Harness.seconds_string t_spec;
        string_of_int cold_nodes;
        string_of_int warm_nodes;
      ];
    ]

let run ~full =
  let arb_users = if full then 10 else 8 in
  let ctr_bits = if full then 14 else 12 in
  let rows =
    sweep
      ~workload:(Printf.sprintf "arbiter%d" arb_users)
      ~extra_spec:"AG (req2 -> AF ack2)"
      (Exp_reorder.arbiter_smv arb_users)
      []
  in
  let rows =
    sweep
      ~workload:(Printf.sprintf "counter%d" ctr_bits)
      ~extra_spec:"AG EF (!b0 & !b1)"
      (Exp_reorder.counter_smv ctr_bits)
      rows
  in
  Harness.print_table
    ~title:
      "E14: check-server manager reuse — cold vs warm request latency \
       (identical verdicts enforced)"
    ~header:
      [ "workload"; "cold"; "warm"; "speedup"; "warm+spec"; "nodes cold";
        "nodes warm" ]
    rows;
  Harness.note
    "cold: compile + reachable fixpoint + all specs on a fresh manager —";
  Harness.note
    "what every one-shot CLI run pays.  warm: the identical repeat request";
  Harness.note
    "against the server's cache — hot op-caches and the memoised reachable";
  Harness.note
    "set leave (near) zero new nodes.  warm+spec: same model, new property —";
  Harness.note
    "the reachable set and order are reused, only the new spec's fixpoints run."

let bechamel =
  let cache = lazy (Server.Cache.create ~capacity:2) in
  let src = lazy (Exp_reorder.arbiter_smv 6) in
  Bechamel.Test.make ~name:"e14-arbiter6-warm-request"
    (Bechamel.Staged.stage (fun () ->
         request (Lazy.force cache) ~source:(Lazy.force src) ()))
