(* E14 — check-server warm-manager reuse: cold vs warm request latency.

   The --serve daemon keeps a pool of compiled models keyed by source
   digest; a repeat request for the same model skips parsing, BDD
   construction, variable ordering, and — via the memoised reachable
   set — the whole forward fixpoint, and starts from hot op-caches.
   This experiment measures what that buys on the two families the
   smoke tests use: the arbiter (order-sensitive, reordering pays) and
   the binary counter (deep fixpoint, the reachable-set memo pays).

   Three request shapes per workload, driven through the same
   Server.Cache the daemon uses (in-process, so the numbers isolate
   manager reuse from protocol and scheduling overhead):

     cold       first request: compile + reach + check every spec;
     warm       identical repeat request: cached everything;
     warm+spec  same model, a previously unseen spec: reuses the
                compiled model, order and reachable set, but must do
                real fixpoint work for the new property.

   Verdicts must be identical between cold and warm runs — reuse may
   only move time and node counts. *)

(* One daemon-shaped request against a shared cache: acquire the
   entry, compile on a miss, reach, check, release.  Returns verdicts
   and the per-request node delta (Bdd.diff_stats over the request
   window — the same accounting the server reports per reply). *)
let request cache ~source ?extra_spec () =
  let key =
    Server.Cache.digest ~source ~partitioned:false ~static_order:false
  in
  let entry, warm = Server.Cache.acquire cache ~key in
  Fun.protect ~finally:(fun () -> Server.Cache.release cache entry)
  @@ fun () ->
  let compiled =
    match entry.Server.Cache.compiled with
    | Some c -> c
    | None ->
      let c = Smv.load_string source in
      entry.Server.Cache.compiled <- Some c;
      c
  in
  let m = compiled.Smv.Compile.model in
  let before = Bdd.stats m.Kripke.man in
  ignore (Kripke.reachable m);
  let specs =
    compiled.Smv.Compile.specs
    @
    match extra_spec with
    | None -> []
    | Some text -> [ (text, Smv.Compile.compile_expr compiled text) ]
  in
  let verdicts = List.map (fun (_, f) -> Ctl.Check.holds m f) specs in
  let after = Bdd.stats m.Kripke.man in
  (verdicts, warm, (Bdd.diff_stats after before).Bdd.total_nodes)

let sweep ~workload ~extra_spec src rows =
  let cache = Server.Cache.create ~capacity:4 in
  let run ?extra_spec () =
    Harness.time_once (fun () -> request cache ~source:src ?extra_spec ())
  in
  let (cold_verdicts, cold_warm, cold_nodes), t_cold = run () in
  let (warm_verdicts, warm_warm, warm_nodes), t_warm = run () in
  let (_, _, spec_nodes), t_spec = run ~extra_spec () in
  if cold_warm then failwith ("E14: first request claimed warm on " ^ workload);
  if not warm_warm then
    failwith ("E14: repeat request stayed cold on " ^ workload);
  if cold_verdicts <> warm_verdicts then
    failwith ("E14: warm reuse changed a verdict on " ^ workload);
  let speedup = t_cold /. Float.max 1e-9 t_warm in
  Harness.emit_json ~experiment:"E14"
    [
      ("workload", Harness.String workload);
      ("cold_s", Harness.Float t_cold);
      ("warm_s", Harness.Float t_warm);
      ("warm_new_spec_s", Harness.Float t_spec);
      ("speedup", Harness.Float speedup);
      ("cold_nodes", Harness.Int cold_nodes);
      ("warm_nodes", Harness.Int warm_nodes);
      ("warm_new_spec_nodes", Harness.Int spec_nodes);
    ];
  rows
  @ [
      [
        workload;
        Harness.seconds_string t_cold;
        Harness.seconds_string t_warm;
        Printf.sprintf "%.0fx" speedup;
        Harness.seconds_string t_spec;
        string_of_int cold_nodes;
        string_of_int warm_nodes;
      ];
    ]

let run ~full =
  let arb_users = if full then 10 else 8 in
  let ctr_bits = if full then 14 else 12 in
  let rows =
    sweep
      ~workload:(Printf.sprintf "arbiter%d" arb_users)
      ~extra_spec:"AG (req2 -> AF ack2)"
      (Exp_reorder.arbiter_smv arb_users)
      []
  in
  let rows =
    sweep
      ~workload:(Printf.sprintf "counter%d" ctr_bits)
      ~extra_spec:"AG EF (!b0 & !b1)"
      (Exp_reorder.counter_smv ctr_bits)
      rows
  in
  Harness.print_table
    ~title:
      "E14: check-server manager reuse — cold vs warm request latency \
       (identical verdicts enforced)"
    ~header:
      [ "workload"; "cold"; "warm"; "speedup"; "warm+spec"; "nodes cold";
        "nodes warm" ]
    rows;
  Harness.note
    "cold: compile + reachable fixpoint + all specs on a fresh manager —";
  Harness.note
    "what every one-shot CLI run pays.  warm: the identical repeat request";
  Harness.note
    "against the server's cache — hot op-caches and the memoised reachable";
  Harness.note
    "set leave (near) zero new nodes.  warm+spec: same model, new property —";
  Harness.note
    "the reachable set and order are reused, only the new spec's fixpoints run."

let bechamel =
  let cache = lazy (Server.Cache.create ~capacity:2) in
  let src = lazy (Exp_reorder.arbiter_smv 6) in
  Bechamel.Test.make ~name:"e14-arbiter6-warm-request"
    (Bechamel.Staged.stage (fun () ->
         request (Lazy.force cache) ~source:(Lazy.force src) ()))

(* ================================================================== *)
(* E15 — overload protection: the cost of shedding and what a
   saturated server still completes.

   Two measurements against the same admission machinery the daemon
   uses (Parallel.Pool.try_submit + Overload + Protocol reply
   builders, in-process so the numbers isolate the mechanism from
   client I/O):

     shed reply    a gated 1-worker pool with a full pending queue —
                   every admission sheds, and we time the complete
                   rejection path the reader thread runs per refused
                   frame: admission probe, shed accounting, retry-
                   after hint, reply build.  This is the latency a
                   client sees under overload, and it must stay
                   microseconds — shedding that is slower than serving
                   defeats its purpose;
     saturation    a 2-worker pool with --max-pending 8 semantics fed
                   requests as fast as they are refused: how many warm
                   checks per second still complete while the shed
                   path absorbs the rest.  Overload must not collapse
                   goodput. *)

(* One warm daemon-shaped check, serialising on the entry lock exactly
   as the server does (two workers may race for the same model). *)
let locked_request cache ~key () =
  let entry, _ = Server.Cache.acquire cache ~key in
  Fun.protect ~finally:(fun () -> Server.Cache.release cache entry)
  @@ fun () ->
  Mutex.lock entry.Server.Cache.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock entry.Server.Cache.lock)
  @@ fun () ->
  let compiled = Option.get entry.Server.Cache.compiled in
  let m = compiled.Smv.Compile.model in
  ignore (Kripke.reachable m);
  List.iter
    (fun (_, f) -> ignore (Ctl.Check.holds m f))
    compiled.Smv.Compile.specs

let shed_reply ov pool ~workers ~sink =
  let depth = Parallel.Pool.pending pool in
  Server.Overload.shed ov Server.Overload.Queue_full;
  let reply =
    Server.Protocol.overloaded_reply ~id:"bench" ~reason:"queue"
      ~queue_depth:depth
      ~retry_after_ms:
        (Server.Overload.retry_after_ms ov ~queue_depth:depth ~workers)
  in
  sink := !sink + String.length reply

let run_overload ~full =
  let module Pool = Parallel.Pool in
  (* 1. Shed-reply latency on a wedged server. *)
  let ov = Server.Overload.create ~log:ignore () in
  let pool = Pool.create ~max_pending:4 1 in
  let gate = Atomic.make false in
  let blocker =
    Pool.submit pool (fun () ->
        while not (Atomic.get gate) do
          Domain.cpu_relax ()
        done)
  in
  while Pool.pending pool > 0 do
    Domain.cpu_relax ()
  done;
  for _ = 1 to 4 do
    ignore (Pool.try_submit pool (fun () -> ()))
  done;
  let shed_iters = if full then 200_000 else 50_000 in
  let sink = ref 0 in
  let (), t_shed =
    Harness.time_once (fun () ->
        for _ = 1 to shed_iters do
          match Pool.try_submit pool (fun () -> ()) with
          | Some _ -> failwith "E15: a saturated pool admitted a task"
          | None -> shed_reply ov pool ~workers:1 ~sink
        done)
  in
  Atomic.set gate true;
  ignore (Pool.await blocker);
  Pool.shutdown pool;
  let shed_ns = t_shed /. float_of_int shed_iters *. 1e9 in
  (* 2. Saturation goodput: flood a 2-worker pool with warm checks. *)
  let users = if full then 8 else 6 in
  let workload = Printf.sprintf "arbiter%d" users in
  let src = Exp_reorder.arbiter_smv users in
  let cache = Server.Cache.create ~capacity:2 in
  ignore (request cache ~source:src ());
  let key =
    Server.Cache.digest ~source:src ~partitioned:false ~static_order:false
  in
  let ov2 = Server.Overload.create ~log:ignore () in
  let pool2 = Pool.create ~max_pending:8 2 in
  let completed = Atomic.make 0 in
  let task () =
    locked_request cache ~key ();
    Atomic.incr completed
  in
  let admitted = ref 0 and sheds = ref 0 in
  let duration = if full then 3.0 else 1.0 in
  let t0 = Bdd.now_monotonic () in
  let deadline = t0 +. duration in
  while Bdd.now_monotonic () < deadline do
    match Pool.try_submit pool2 task with
    | Some _ -> incr admitted
    | None -> shed_reply ov2 pool2 ~workers:2 ~sink
  done;
  sheds := (Server.Overload.stats ov2).Server.Overload.shed_queue;
  Pool.shutdown pool2;
  let elapsed = Bdd.now_monotonic () -. t0 in
  let done_n = Atomic.get completed in
  if done_n <> !admitted then
    failwith "E15: an admitted check never completed";
  if done_n = 0 || !sheds = 0 then
    failwith "E15: saturation loop must both serve and shed";
  let goodput = float_of_int done_n /. elapsed in
  Harness.emit_json ~experiment:"E15"
    [
      ("workload", Harness.String workload);
      ("shed_reply_ns", Harness.Float shed_ns);
      ("saturation_s", Harness.Float elapsed);
      ("completed", Harness.Int done_n);
      ("shed", Harness.Int !sheds);
      ("completed_per_s", Harness.Float goodput);
    ];
  Harness.print_table
    ~title:
      "E15: overload protection — shed-reply latency and saturated \
       goodput (2 workers, max-pending 8)"
    ~header:
      [ "workload"; "shed reply"; "flood"; "served"; "shed"; "served/s" ]
    [
      [
        workload;
        Harness.ns_string shed_ns;
        Harness.seconds_string elapsed;
        string_of_int done_n;
        string_of_int !sheds;
        Printf.sprintf "%.1f" goodput;
      ];
    ];
  Harness.note
    "shed reply: the full refusal path per frame on a wedged server —";
  Harness.note
    "admission probe, shed accounting, retry-after hint, reply build.";
  Harness.note
    "flood: requests submitted as fast as they are refused; served is";
  Harness.note
    "warm checks completed while the queue bound sheds the excess —";
  Harness.note
    "admission control trades queue depth for goodput, never correctness."

let bechamel_overload =
  (* The pure reader-side shed path (no pool: a worker domain parked
     for the whole bechamel quota would outlive the measurement). *)
  let ov =
    lazy
      (let ov = Server.Overload.create ~log:ignore () in
       Server.Overload.finished ov 0.02;
       ov)
  in
  Bechamel.Test.make ~name:"e15-shed-reply-build"
    (Bechamel.Staged.stage (fun () ->
         let ov = Lazy.force ov in
         Server.Protocol.overloaded_reply ~id:"bench" ~reason:"queue"
           ~queue_depth:8
           ~retry_after_ms:
             (Server.Overload.retry_after_ms ov ~queue_depth:8 ~workers:2)))

(* ================================================================== *)
(* E17 — restart-to-warm latency: rehydrating a crashed server from a
   Bdd.Snapshot (via Server.Persist) vs paying the full cold recheck.

   The crash-only serving mode (--supervise + --state-dir) claims that
   a restarted child is warm within its first request because it loads
   the last snapshot instead of recompiling.  This experiment measures
   exactly that trade on the arbiter (the workload where cold is most
   expensive: reordering dominates):

     cold recheck      compile + order + reach + all specs on a fresh
                       manager — what a crashed server without durable
                       state pays on its first post-restart request;
     snapshot save     one Persist.save_entry (dump + checksum + write);
     snapshot restore  Persist.load_entry — read, validate, rebuild
                       subtables, reconstruct the compiled artifact;
     first warm check  the identical request against the rehydrated
                       entry: must report warm, reuse the reachable
                       set, allocate zero new nodes, and agree with
                       the cold verdicts byte for byte.

   restart-to-warm = restore + first check, the client-visible latency
   of the first request after a supervised restart. *)

let run_restart ~full =
  let users = if full then 10 else 8 in
  let workload = Printf.sprintf "arbiter%d" users in
  let src = Exp_reorder.arbiter_smv users in
  (* Pre-crash: one cold request warms the pool entry (this is also
     the cold-recheck baseline), then a persist write snapshots it. *)
  let cache = Server.Cache.create ~capacity:2 in
  let (cold_verdicts, _, _), t_cold =
    Harness.time_once (fun () -> request cache ~source:src ())
  in
  let key =
    Server.Cache.digest ~source:src ~partitioned:false ~static_order:false
  in
  let compiled =
    let entry, _ = Server.Cache.acquire cache ~key in
    Fun.protect ~finally:(fun () -> Server.Cache.release cache entry)
    @@ fun () -> Option.get entry.Server.Cache.compiled
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bench_e17_%d" (Unix.getpid ()))
  in
  let persist = Server.Persist.create ~dir ~debug:false in
  let saved, t_save =
    Harness.time_once (fun () ->
        Server.Persist.save_entry persist ~key ~uses:1 compiled)
  in
  if not saved then failwith "E17: snapshot write failed";
  let path = Filename.concat dir (key ^ ".warm") in
  let snapshot_bytes = (Unix.stat path).Unix.st_size in
  (* The restart: a fresh process would load the file, seed its pool,
     and serve the first request warm. *)
  let (key', restored), t_restore =
    Harness.time_once (fun () -> Server.Persist.load_entry path)
  in
  if key' <> key then failwith "E17: snapshot key mismatch";
  let cache2 = Server.Cache.create ~capacity:2 in
  if not (Server.Cache.seed cache2 ~key ~compiled:restored) then
    failwith "E17: rehydrated entry not seeded";
  let (warm_verdicts, was_warm, warm_nodes), t_first =
    Harness.time_once (fun () -> request cache2 ~source:src ())
  in
  if not was_warm then failwith "E17: rehydrated request stayed cold";
  if warm_nodes <> 0 then
    failwith
      (Printf.sprintf "E17: rehydrated request allocated %d nodes" warm_nodes);
  if warm_verdicts <> cold_verdicts then
    failwith "E17: rehydration changed a verdict";
  (try Sys.remove path with Sys_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  let restart_to_warm = t_restore +. t_first in
  let speedup = t_cold /. Float.max 1e-9 restart_to_warm in
  Harness.emit_json ~experiment:"E17"
    [
      ("workload", Harness.String workload);
      ("cold_recheck_s", Harness.Float t_cold);
      ("snapshot_save_s", Harness.Float t_save);
      ("snapshot_restore_s", Harness.Float t_restore);
      ("first_warm_check_s", Harness.Float t_first);
      ("restart_to_warm_s", Harness.Float restart_to_warm);
      ("speedup", Harness.Float speedup);
      ("snapshot_bytes", Harness.Int snapshot_bytes);
      ("warm_nodes", Harness.Int warm_nodes);
    ];
  Harness.print_table
    ~title:
      "E17: restart-to-warm — snapshot restore vs cold recheck after a \
       crash (identical verdicts enforced)"
    ~header:
      [ "workload"; "cold recheck"; "save"; "restore"; "first check";
        "restart-to-warm"; "speedup"; "bytes" ]
    [
      [
        workload;
        Harness.seconds_string t_cold;
        Harness.seconds_string t_save;
        Harness.seconds_string t_restore;
        Harness.seconds_string t_first;
        Harness.seconds_string restart_to_warm;
        Printf.sprintf "%.0fx" speedup;
        string_of_int snapshot_bytes;
      ];
    ];
  Harness.note
    "cold recheck: what a restarted server without --state-dir pays on its";
  Harness.note
    "first request.  restore: Persist.load_entry — read, checksum, rebuild";
  Harness.note
    "unique tables (re-proving canonicity per node), reconstruct the model.";
  Harness.note
    "first check: the identical request on the rehydrated entry — warm,";
  Harness.note
    "memoised reachable set, zero new nodes.  The snapshot turns a crash";
  Harness.note
    "from a full recompute into a file read."

let bechamel_restart =
  (* Snapshot dump throughput on a warm mid-size manager. *)
  let man =
    lazy
      (let cache = Server.Cache.create ~capacity:1 in
       let src = Exp_reorder.arbiter_smv 6 in
       ignore (request cache ~source:src ());
       let key =
         Server.Cache.digest ~source:src ~partitioned:false
           ~static_order:false
       in
       let entry, _ = Server.Cache.acquire cache ~key in
       let compiled = Option.get entry.Server.Cache.compiled in
       compiled.Smv.Compile.model.Kripke.man)
  in
  Bechamel.Test.make ~name:"e17-arbiter6-snapshot-dump"
    (Bechamel.Staged.stage (fun () ->
         ignore (Bdd.Snapshot.dump (Lazy.force man) : string)))
