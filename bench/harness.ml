(* Shared benchmarking utilities: Bechamel-based estimation for fast
   operations, single-shot wall-clock timing for long runs, and aligned
   table rendering for the per-experiment reports. *)

let cfg ?(quota_s = 0.5) () =
  Bechamel.Benchmark.cfg ~limit:2000
    ~quota:(Bechamel.Time.second quota_s)
    ~kde:None ~stabilize:false ()

(* Estimated nanoseconds per run, by OLS over monotonic-clock samples. *)
let estimate_ns ?quota_s f =
  let test = Bechamel.Test.make ~name:"t" (Bechamel.Staged.stage f) in
  let elt =
    match Bechamel.Test.elements test with
    | [ e ] -> e
    | _ -> assert false
  in
  let measures = [ Bechamel.Toolkit.Instance.monotonic_clock ] in
  let raw = Bechamel.Benchmark.run (cfg ?quota_s ()) measures elt in
  let ols =
    Bechamel.Analyze.ols ~r_square:false ~bootstrap:0
      ~predictors:[| Bechamel.Measure.run |]
  in
  let result =
    Bechamel.Analyze.one ols Bechamel.Toolkit.Instance.monotonic_clock raw
  in
  match Bechamel.Analyze.OLS.estimates result with
  | Some [ e ] -> e
  | Some _ | None -> Float.nan

(* One wall-clock measurement, for thunks too slow to sample. *)
let time_once f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let pp_ns ppf ns =
  if Float.is_nan ns then Format.pp_print_string ppf "-"
  else if ns < 1e3 then Format.fprintf ppf "%.0f ns" ns
  else if ns < 1e6 then Format.fprintf ppf "%.1f us" (ns /. 1e3)
  else if ns < 1e9 then Format.fprintf ppf "%.2f ms" (ns /. 1e6)
  else Format.fprintf ppf "%.2f s" (ns /. 1e9)

let ns_string ns = Format.asprintf "%a" pp_ns ns

let seconds_string s = ns_string (s *. 1e9)

(* Aligned plain-text tables. *)
let print_table ~title ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let line row =
    String.concat "  "
      (List.mapi
         (fun c cell -> Printf.sprintf "%-*s" (List.nth widths c) cell)
         row)
  in
  Format.printf "@.== %s ==@." title;
  Format.printf "%s@." (line header);
  Format.printf "%s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Format.printf "%s@." (line row)) rows

let note fmt = Format.printf ("   " ^^ fmt ^^ "@.")

(* Deterministic randomness for reproducible workloads. *)
let rng seed = Random.State.make [| 0x5eed; seed |]
