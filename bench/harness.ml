(* Shared benchmarking utilities: Bechamel-based estimation for fast
   operations, single-shot wall-clock timing for long runs, and aligned
   table rendering for the per-experiment reports. *)

let cfg ?(quota_s = 0.5) () =
  Bechamel.Benchmark.cfg ~limit:2000
    ~quota:(Bechamel.Time.second quota_s)
    ~kde:None ~stabilize:false ()

(* Estimated nanoseconds per run, by OLS over monotonic-clock samples. *)
let estimate_ns ?quota_s f =
  let test = Bechamel.Test.make ~name:"t" (Bechamel.Staged.stage f) in
  let elt =
    match Bechamel.Test.elements test with
    | [ e ] -> e
    | _ -> assert false
  in
  let measures = [ Bechamel.Toolkit.Instance.monotonic_clock ] in
  let raw = Bechamel.Benchmark.run (cfg ?quota_s ()) measures elt in
  let ols =
    Bechamel.Analyze.ols ~r_square:false ~bootstrap:0
      ~predictors:[| Bechamel.Measure.run |]
  in
  let result =
    Bechamel.Analyze.one ols Bechamel.Toolkit.Instance.monotonic_clock raw
  in
  match Bechamel.Analyze.OLS.estimates result with
  | Some [ e ] -> e
  | Some _ | None -> Float.nan

(* One wall-clock measurement, for thunks too slow to sample. *)
let time_once f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let pp_ns ppf ns =
  if Float.is_nan ns then Format.pp_print_string ppf "-"
  else if ns < 1e3 then Format.fprintf ppf "%.0f ns" ns
  else if ns < 1e6 then Format.fprintf ppf "%.1f us" (ns /. 1e3)
  else if ns < 1e9 then Format.fprintf ppf "%.2f ms" (ns /. 1e6)
  else Format.fprintf ppf "%.2f s" (ns /. 1e9)

let ns_string ns = Format.asprintf "%a" pp_ns ns

let seconds_string s = ns_string (s *. 1e9)

(* ------------------------------------------------------------------ *)
(* Machine-readable output: one JSON object per line, enabled by
   bench/main.exe --json.  Rows can be collected from a run with
   `grep '^{'` and fed to jq; values are flat scalars only.           *)

type json = Int of int | Float of float | Bool of bool | String of string

let json_enabled = ref false

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_value = function
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%.6g" f
  | Bool b -> string_of_bool b
  | String s -> json_string s

let emit_json ~experiment fields =
  if !json_enabled then begin
    let fields = ("experiment", String experiment) :: fields in
    let cells =
      List.map
        (fun (k, v) -> Printf.sprintf "%s: %s" (json_string k) (json_value v))
        fields
    in
    Format.printf "{%s}@." (String.concat ", " cells)
  end

(* The same counters `smv_check --stats` prints, as JSON fields, so
   bench rows and CLI runs report comparable columns. *)
let bdd_stat_fields man =
  let s = Bdd.stats man in
  [
    ("live_nodes", Int s.Bdd.live_nodes);
    ("peak_nodes", Int s.Bdd.peak_nodes);
    ("total_nodes", Int s.Bdd.total_nodes);
    ("cache_hits", Int (Bdd.cache_hits s));
    ("cache_misses", Int (Bdd.cache_misses s));
    ("cache_evictions", Int s.Bdd.cache_evictions);
    ("gc_runs", Int s.Bdd.gc_runs);
    ("gc_collected", Int s.Bdd.gc_collected);
  ]

let fixpoint_fields () =
  let c = Ctl.Check.fixpoint_stats () in
  let f = Ctl.Fair.fixpoint_stats () in
  [
    ("eu_iterations", Int c.Ctl.Check.eu_iterations);
    ("eg_iterations", Int c.Ctl.Check.eg_iterations);
    ("ring_layers", Int c.Ctl.Check.ring_layers);
    ("fair_outer_iterations", Int f.Ctl.Fair.outer_iterations);
    ("fair_ring_layers", Int f.Ctl.Fair.ring_layers);
  ]

let reset_fixpoint_counters () =
  Ctl.Check.reset_fixpoint_stats ();
  Ctl.Fair.reset_fixpoint_stats ()

let slug s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' -> c
      | 'A' .. 'Z' -> Char.lowercase_ascii c
      | _ -> '_')
    s

(* Aligned plain-text tables; under --json every row is also emitted as
   an object keyed by the (slugified) header. *)
let print_table ~title ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let line row =
    String.concat "  "
      (List.mapi
         (fun c cell -> Printf.sprintf "%-*s" (List.nth widths c) cell)
         row)
  in
  Format.printf "@.== %s ==@." title;
  Format.printf "%s@." (line header);
  Format.printf "%s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Format.printf "%s@." (line row)) rows;
  if !json_enabled then
    let keys = List.map slug header in
    List.iter
      (fun row ->
        emit_json ~experiment:title
          (List.map2 (fun k cell -> (k, String cell)) keys row))
      rows

let note fmt = Format.printf ("   " ^^ fmt ^^ "@.")

(* Deterministic randomness for reproducible workloads. *)
let rng seed = Random.State.make [| 0x5eed; seed |]
