(* E11 — multicore specification fan-out (--jobs scaling).

   The parallel unit is one specification: k specs fan out over a pool
   of worker domains, each worker owning a private BDD manager and a
   private clone of the model (Parallel.Specs).  There is no shared
   mutable BDD state, so the expected scaling on a multicore host is
   near-linear until the spec count or the memory bus saturates; the
   per-worker cost over a sequential run is one model clone plus the
   loss of cross-spec op-cache sharing.

   This experiment times the same spec batch checked sequentially
   (no pool) and with jobs ∈ {1, 2, 4, 8}, verifying that every run
   produces identical verdicts.  Speedup is reported against the
   sequential baseline.  On a host with fewer cores than jobs the sweep
   degenerates into an overhead measurement — the honest number is
   printed either way, alongside the core count the runtime reports. *)

(* AG (c_i -> AF c_{i+1}) around the ring: every spec needs a full
   backward AF fixpoint, so per-spec work is substantial and uniform —
   the friendliest shape for fan-out, and the paper's common case of a
   model checked against a list of response properties. *)
let specs_for ~bits ~nspecs =
  Array.init nspecs (fun i ->
      let a = Ctl.atom (Printf.sprintf "c%d" (i mod bits)) in
      let b = Ctl.atom (Printf.sprintf "c%d" ((i + 1) mod bits)) in
      Ctl.AG (Ctl.Imp (a, Ctl.AF b)))

let check_sequential m specs =
  Array.map (fun s -> Ctl.Check.holds m s) specs

let check_parallel ~jobs m specs =
  let results, _worker_stats =
    Parallel.Specs.map ~jobs
      ~f:(fun wm spec _ -> Ctl.Check.holds wm spec)
      m specs
  in
  Array.map
    (function Ok v -> v | Error e -> raise e)
    results

(* Every timed run is cold: a fresh manager and model, so the parallel
   runs cannot freeload on op-cache entries a previous run left behind
   (and vice versa). *)
let timed ~bits check =
  let m = Workloads.ring bits in
  Gc.full_major ();
  Harness.time_once (fun () -> check m)

let run ~full =
  let bits, nspecs = if full then (14, 16) else (10, 8) in
  let specs = specs_for ~bits ~nspecs in
  let baseline, seq_s = timed ~bits (fun m -> check_sequential m specs) in
  let jobs_sweep = [ 1; 2; 4; 8 ] in
  let rows =
    List.map
      (fun jobs ->
        let verdicts, wall_s =
          timed ~bits (fun m -> check_parallel ~jobs m specs)
        in
        if verdicts <> baseline then
          failwith
            (Printf.sprintf "E11: --jobs %d verdicts diverge from sequential"
               jobs);
        let speedup = seq_s /. wall_s in
        Harness.emit_json ~experiment:"E11"
          [
            ("workload", Harness.String (Printf.sprintf "ring%d" bits));
            ("specs", Harness.Int nspecs);
            ("jobs", Harness.Int jobs);
            ("wall_s", Harness.Float wall_s);
            ("speedup", Harness.Float speedup);
          ];
        [
          Printf.sprintf "%d" jobs;
          Harness.seconds_string wall_s;
          Printf.sprintf "%.2fx" speedup;
        ])
      jobs_sweep
  in
  let seq_row = [ "seq (no pool)"; Harness.seconds_string seq_s; "1.00x" ] in
  Harness.print_table
    ~title:
      (Printf.sprintf
         "E11: parallel spec fan-out, ring-%d x %d specs (verdicts checked \
          identical)"
         bits nspecs)
    ~header:[ "jobs"; "wall"; "speedup" ] (seq_row :: rows);
  Harness.note "Speedup is against the no-pool sequential run on this host;";
  Harness.note
    "Domain.recommended_domain_count reports %d core(s) here, so runs with"
    (Domain.recommended_domain_count ());
  Harness.note
    "more jobs than cores measure fan-out overhead, not parallel speedup."

let bechamel =
  let setup = lazy (Workloads.ring 6, specs_for ~bits:6 ~nspecs:4) in
  Bechamel.Test.make ~name:"e11-specs-map-jobs2"
    (Bechamel.Staged.stage (fun () ->
         let m, specs = Lazy.force setup in
         check_parallel ~jobs:2 m specs))
