(* E16 — node-store representation: what the unique-table / op-cache
   layout costs on the declared-order workloads of E13.

   The packed struct-of-arrays store (PR 8) replaces boxed node records
   behind per-level Hashtbl subtables with int-indexed columns, open
   addressing, and direct-mapped op caches.  Its claims are raw ones —
   fewer words per node, fewer major GCs, faster checks — so this
   experiment measures exactly those, with verdicts pinned:

   1. check_s and peak live nodes on arbiter-N / counter-N in plain
      declared order (no reordering, the store's own speed undiluted);
   2. OCaml-heap pressure: major collections during the check and the
      process peak RSS (VmHWM) afterwards;
   3. live heap words per BDD node, measured on a dense random-cube
      workload with everything rooted (the footprint-regression number
      test/test_store.ml asserts).

   BENCH_nodestore.json keeps one row set per store generation
   ([store_label] below): the "boxed" rows were produced by this same
   experiment compiled against the pre-PR-8 seed, the "packed" rows by
   the current tree, so the committed file is the before/after record
   the acceptance gate (>=2x check_s or >=2x RSS on arbiter-10
   declared) reads. *)

let store_label = "packed"

(* Peak resident set of this process, in kB, from the kernel's
   accounting; 0 where /proc is unavailable.  Process-wide and
   monotone, so only the first (largest) workload's row is a clean
   reading — rows are emitted largest-first. *)
let vmhwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> 0
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d" Fun.id
        else scan ()
    in
    let r = scan () in
    close_in ic;
    r

let run_workload ~workload src rows =
  let q0 = Gc.quick_stat () in
  let c = Smv.load_string src in
  let m = c.Smv.Compile.model in
  let check () =
    List.map (fun (_, f) -> Ctl.Check.holds m f) c.Smv.Compile.specs
  in
  let verdicts, t = Harness.time_once check in
  let s = Bdd.stats m.Kripke.man in
  let q1 = Gc.quick_stat () in
  let majors = q1.Gc.major_collections - q0.Gc.major_collections in
  let minors = q1.Gc.minor_collections - q0.Gc.minor_collections in
  let hwm = vmhwm_kb () in
  Harness.emit_json ~experiment:"E16"
    [
      ("workload", Harness.String workload);
      ("store", Harness.String store_label);
      ("check_s", Harness.Float t);
      ("peak_nodes", Harness.Int s.Bdd.peak_nodes);
      ("live_nodes", Harness.Int s.Bdd.live_nodes);
      ("major_collections", Harness.Int majors);
      ("minor_collections", Harness.Int minors);
      ("vmhwm_kb", Harness.Int hwm);
      ( "verdicts",
        Harness.String
          (String.concat ""
             (List.map (fun v -> if v then "T" else "F") verdicts)) );
    ];
  rows
  @ [
      [
        workload;
        store_label;
        Harness.seconds_string t;
        string_of_int s.Bdd.peak_nodes;
        string_of_int majors;
        Printf.sprintf "%d kB" hwm;
        String.concat ""
          (List.map (fun v -> if v then "T" else "F") verdicts);
      ];
    ]

(* Live heap words per BDD node: build many random cubes (linear-size
   chains, deterministic seed), keep every one rooted, and compare
   live_words around the whole build under full majors.  The cubes are
   never combined — a disjunction of random cubes explodes — so live
   nodes stay proportional to [cubes * width] and the fixed manager
   overhead (tables, caches) amortises over them; the same number is
   asserted as a regression bound by test/test_store.ml. *)
let words_per_node ~cubes ~width ~vars =
  Gc.full_major ();
  let w0 = (Gc.stat ()).Gc.live_words in
  let man = Bdd.create () in
  let st = Harness.rng 16 in
  let held = Array.make cubes (Bdd.one man) in
  for i = 0 to cubes - 1 do
    let cube = ref (Bdd.one man) in
    for _ = 1 to width do
      let v = Random.State.int st vars in
      let lit =
        if Random.State.bool st then Bdd.var man v else Bdd.nvar man v
      in
      cube := Bdd.and_ man !cube lit
    done;
    held.(i) <- !cube
  done;
  let root = Bdd.add_root man (fun () -> Array.to_list held) in
  ignore (Bdd.gc man);
  Bdd.clear_caches man;
  Gc.full_major ();
  let w1 = (Gc.stat ()).Gc.live_words in
  let live = Bdd.live_nodes man in
  Bdd.remove_root man root;
  ignore (Sys.opaque_identity held);
  ignore (Sys.opaque_identity man);
  (float_of_int (w1 - w0) /. float_of_int (max 1 live), live)

let run ~full =
  let arb_users = if full then 10 else 8 in
  let ctr_bits = if full then 14 else 10 in
  let rows =
    run_workload
      ~workload:(Printf.sprintf "arbiter%d" arb_users)
      (Exp_reorder.arbiter_smv arb_users)
      []
  in
  let rows =
    run_workload
      ~workload:(Printf.sprintf "counter%d" ctr_bits)
      (Exp_reorder.counter_smv ctr_bits)
      rows
  in
  let wpn, live = words_per_node ~cubes:20_000 ~width:10 ~vars:1000 in
  Harness.emit_json ~experiment:"E16"
    [
      ("workload", Harness.String "cubes20k");
      ("store", Harness.String store_label);
      ("words_per_node", Harness.Float wpn);
      ("live_nodes", Harness.Int live);
    ];
  let rows =
    rows
    @ [
        [
          "cubes20k";
          store_label;
          "-";
          string_of_int live;
          "-";
          Printf.sprintf "%.1f w/node" wpn;
          "-";
        ];
      ]
  in
  Harness.print_table
    ~title:
      "E16: node store — check time, GC pressure, heap words per node \
       (declared order)"
    ~header:
      [ "workload"; "store"; "check"; "peak nodes"; "majors"; "footprint";
        "verdicts" ]
    rows;
  Harness.note
    "declared order, no reordering: raw mk/ITE/relprod speed of the store.";
  Harness.note
    "majors: OCaml major collections during the check; footprint: process";
  Harness.note
    "VmHWM (monotone, so the first row is the clean reading) or, for the";
  Harness.note
    "cube workload, live heap words per rooted node.  BENCH_nodestore.json";
  Harness.note
    "keeps boxed rows from the pre-packed seed next to current packed rows."

let bechamel =
  let src = lazy (Exp_reorder.arbiter_smv 6) in
  Bechamel.Test.make ~name:"e16-arbiter6-declared"
    (Bechamel.Staged.stage (fun () ->
         let c = Smv.load_string (Lazy.force src) in
         let m = c.Smv.Compile.model in
         List.map (fun (_, f) -> Ctl.Check.holds m f) c.Smv.Compile.specs))
