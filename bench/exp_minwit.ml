(* E2 — Theorem 1: minimal finite witnesses are NP-complete.

   Exact branch-and-bound search (exponential in the number of fairness
   constraints k) against the paper's greedy heuristic (polynomial) on
   random strongly connected graphs: exact time should blow up with k
   while the heuristic stays flat, and the heuristic's witness length
   should stay close to the optimum. *)

let run ~full =
  let nstates = if full then 12 else 10 in
  let ks = if full then [ 2; 4; 6; 8; 10; 12 ] else [ 2; 4; 6; 8 ] in
  let rng = Harness.rng 42 in
  let rows =
    List.map
      (fun k ->
        let g =
          Workloads.random_fair_graph rng ~nstates ~extra_edges:nstates
            ~constraints:k
        in
        let exact, t_exact =
          Harness.time_once (fun () -> Explicit.Minwit.minimal g ~start:0)
        in
        let m, encode = Explicit.Bridge.to_kripke g in
        let start = encode 0 in
        let greedy, t_greedy =
          Harness.time_once (fun () ->
              Counterex.Witness.eg m ~f:m.Kripke.space ~start)
        in
        let min_len =
          match exact with
          | Some (p, c) -> List.length p + List.length c
          | None -> assert false
        in
        let greedy_len = Kripke.Trace.length greedy in
        [
          string_of_int k;
          string_of_int min_len;
          string_of_int greedy_len;
          Printf.sprintf "%.2f" (float_of_int greedy_len /. float_of_int min_len);
          Harness.seconds_string t_exact;
          Harness.seconds_string t_greedy;
        ])
      ks
  in
  Harness.print_table
    ~title:
      (Printf.sprintf
         "E2: minimal witness vs greedy heuristic (n=%d states, k fairness constraints)"
         nstates)
    ~header:
      [ "k"; "minimal"; "greedy"; "ratio"; "exact time"; "greedy time" ]
    rows;
  Harness.note
    "Theorem 1: finding the minimal witness is NP-complete (exact time grows";
  Harness.note
    "exponentially in k); the greedy ring-descent heuristic stays polynomial";
  Harness.note "and produces near-minimal witnesses."

let bechamel =
  let rng = Harness.rng 7 in
  let g =
    Workloads.random_fair_graph rng ~nstates:8 ~extra_edges:8 ~constraints:4
  in
  let prepared = lazy (Explicit.Bridge.to_kripke g) in
  Bechamel.Test.make_grouped ~name:"e2-minwit"
    [
      Bechamel.Test.make ~name:"exact"
        (Bechamel.Staged.stage (fun () -> Explicit.Minwit.minimal g ~start:0));
      Bechamel.Test.make ~name:"greedy"
        (Bechamel.Staged.stage (fun () ->
             let m, encode = Lazy.force prepared in
             Counterex.Witness.eg m ~f:m.Kripke.space ~start:(encode 0)));
    ]
