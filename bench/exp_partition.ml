(* E9 (ablation) — monolithic vs conjunctively partitioned transition
   relations with early quantification (the image-computation design
   choice DESIGN.md calls out; SMV's technique of Burch-Clarke-Long).

   Workload: an n-cell XOR cellular automaton with a free input cell —
   the transition relation is naturally one conjunct per cell.  Rows
   compare reachability time and the size of the relation BDDs. *)

let run ~full =
  let sizes = if full then [ 4; 8; 12; 16; 20; 24 ] else [ 4; 8; 12; 16 ] in
  let rows =
    List.map
      (fun n ->
        let mono, part = Workloads.xor_automaton n in
        let t_mono = Harness.estimate_ns (fun () -> Kripke.reachable mono) in
        let t_part = Harness.estimate_ns (fun () -> Kripke.reachable part) in
        let cluster_sizes =
          match part.Kripke.pre_schedule with
          | Some steps ->
            List.fold_left
              (fun acc s -> acc + Bdd.size part.Kripke.man s.Kripke.cluster)
              0 steps
          | None -> 0
        in
        [
          string_of_int n;
          string_of_int (Bdd.size mono.Kripke.man mono.Kripke.trans);
          string_of_int cluster_sizes;
          Harness.ns_string t_mono;
          Harness.ns_string t_part;
        ])
      sizes
  in
  Harness.print_table
    ~title:
      "E9 (ablation): monolithic vs partitioned transition relation (XOR automaton)"
    ~header:
      [ "cells"; "mono BDD"; "clusters BDD"; "reach (mono)"; "reach (part)" ]
    rows;
  Harness.note
    "early quantification conjoins one per-cell cluster at a time and";
  Harness.note
    "eliminates next-state variables as soon as no later cluster mentions";
  Harness.note
    "them, keeping intermediate products small as the model grows."

let bechamel =
  let prepared = lazy (Workloads.xor_automaton 12) in
  Bechamel.Test.make_grouped ~name:"e9-partitioning"
    [
      Bechamel.Test.make ~name:"monolithic"
        (Bechamel.Staged.stage (fun () ->
             Kripke.reachable (fst (Lazy.force prepared))));
      Bechamel.Test.make ~name:"partitioned"
        (Bechamel.Staged.stage (fun () ->
             Kripke.reachable (snd (Lazy.force prepared))));
    ]
