(* E7 — Section 5: the cost of fair EG.

   CheckFairEG evaluates a greatest fixpoint each of whose iterations
   runs one nested EU fixpoint per fairness constraint, so its cost
   grows with the number of constraints.  The ablation column measures
   eg_with_rings, which re-runs one EU per constraint after convergence
   to save the onion rings Section 6's witness construction consumes. *)

let run ~full =
  let bits = if full then 10 else 8 in
  let ks = if full then [ 1; 2; 3; 4; 6; 8 ] else [ 1; 2; 3; 4 ] in
  let base = Workloads.ring bits in
  let rows =
    List.map
      (fun k ->
        let constraints =
          List.init k (fun i ->
              Ctl.Check.sat base (Ctl.atom (Printf.sprintf "c%d" i)))
        in
        let m = Kripke.with_fairness base constraints in
        let t_eg =
          Harness.estimate_ns (fun () -> Ctl.Fair.eg m m.Kripke.space)
        in
        let t_rings =
          Harness.estimate_ns (fun () ->
              Ctl.Fair.eg_with_rings m m.Kripke.space)
        in
        [
          string_of_int k;
          Harness.ns_string t_eg;
          Harness.ns_string t_rings;
          Printf.sprintf "%.0f%%" (100.0 *. (t_rings -. t_eg) /. t_eg);
        ])
      ks
  in
  Harness.print_table
    ~title:
      (Printf.sprintf "E7: fair EG cost vs number of fairness constraints (%d-cell ring)" bits)
    ~header:[ "constraints"; "fair EG"; "EG + rings"; "ring overhead" ]
    rows;
  Harness.note
    "each outer gfp iteration runs one nested EU per constraint (Section 5);";
  Harness.note
    "saving the rings for witness generation costs one extra EU sweep per";
  Harness.note "constraint after the fixpoint converges."

let bechamel =
  let m =
    lazy
      (let base = Workloads.ring 8 in
       Kripke.with_fairness base
         (List.init 3 (fun i ->
              Ctl.Check.sat base (Ctl.atom (Printf.sprintf "c%d" i)))))
  in
  Bechamel.Test.make ~name:"e7-fair-eg-ring8-k3"
    (Bechamel.Staged.stage (fun () ->
         let m = Lazy.force m in
         Ctl.Fair.eg m m.Kripke.space))
