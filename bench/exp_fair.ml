(* E7 — Section 5: the cost of fair EG.

   CheckFairEG evaluates a greatest fixpoint each of whose iterations
   runs one nested EU fixpoint per fairness constraint, so its cost
   grows with the number of constraints.  The ablation column measures
   eg_with_rings, which re-runs one EU per constraint after convergence
   to save the onion rings Section 6's witness construction consumes. *)

(* ------------------------------------------------------------------ *)
(* Eviction ablation: op-caches only share work, never change results,
   so a bounded-cache run must produce exactly the same fair-EG verdict
   and the same greedy witness as an unbounded one, while the bounded
   run actually evicts.  One run builds its own model (and manager), so
   results are compared by state count and by the concrete witness
   trace, which are manager-independent.                               *)

let ablation_model ~bits ~k =
  let base = Workloads.ring bits in
  let constraints =
    List.init k (fun i ->
        Ctl.Check.sat base (Ctl.atom (Printf.sprintf "c%d" i)))
  in
  Kripke.with_fairness base constraints

let ablation_run ~bits ~k ~cache_limit =
  Harness.reset_fixpoint_counters ();
  let m = ablation_model ~bits ~k in
  Bdd.set_cache_limit m.Kripke.man cache_limit;
  let bman = m.Kripke.man in
  Bdd.reset_stats bman;
  let egf, secs =
    Harness.time_once (fun () -> Ctl.Fair.eg m m.Kripke.space)
  in
  let witness =
    match Kripke.pick_state m (Bdd.and_ bman m.Kripke.init egf) with
    | None -> None
    | Some start ->
      Some (Counterex.Witness.eg m ~f:m.Kripke.space ~start)
  in
  let stats = Bdd.stats bman in
  (Kripke.count_states m egf, witness, stats, secs)

let eviction_ablation ?(quiet = false) ~bits ~k ~cache_limit () =
  let count_u, wit_u, stats_u, secs_u =
    ablation_run ~bits ~k ~cache_limit:None
  in
  let count_b, wit_b, stats_b, secs_b =
    ablation_run ~bits ~k ~cache_limit:(Some cache_limit)
  in
  let ok = count_u = count_b && wit_u = wit_b in
  let row limit count (stats : Bdd.stats) secs =
    [
      limit;
      Printf.sprintf "%.0f" count;
      string_of_int (Bdd.cache_hits stats);
      string_of_int (Bdd.cache_misses stats);
      string_of_int stats.Bdd.cache_evictions;
      string_of_int stats.Bdd.peak_nodes;
      Harness.seconds_string secs;
    ]
  in
  if not quiet then begin
    Harness.print_table
      ~title:
        (Printf.sprintf
           "E7b: cache-eviction ablation (%d-cell ring, %d constraints, limit %d)"
           bits k cache_limit)
      ~header:
        [
          "cache limit"; "EG states"; "hits"; "misses"; "evictions";
          "peak nodes"; "time";
        ]
      [
        row "unbounded" count_u stats_u secs_u;
        row (string_of_int cache_limit) count_b stats_b secs_b;
      ];
    Harness.note "verdicts and witnesses %s across cache limits%s"
      (if ok then "agree" else "DISAGREE (bug!)")
      (if stats_b.Bdd.cache_evictions = 0 then
         " (warning: the bounded run never evicted)"
       else "");
    Harness.emit_json
      ~experiment:"e7b_eviction_ablation"
      ([
         ("bits", Harness.Int bits);
         ("constraints", Harness.Int k);
         ("cache_limit", Harness.Int cache_limit);
         ("verdicts_agree", Harness.Bool ok);
         ("seconds_unbounded", Harness.Float secs_u);
         ("seconds_bounded", Harness.Float secs_b);
       ]
      @ List.map
          (fun (key, v) -> ("bounded_" ^ key, v))
          (("eviction_count", Harness.Int stats_b.Bdd.cache_evictions)
          :: [
               ("cache_hits", Harness.Int (Bdd.cache_hits stats_b));
               ("cache_misses", Harness.Int (Bdd.cache_misses stats_b));
               ("peak_nodes", Harness.Int stats_b.Bdd.peak_nodes);
             ])
      @ Harness.fixpoint_fields ())
  end;
  ok

(* Tiny deterministic variant for `dune build @bench-smoke`: exercises
   bounded caches end to end and fails loudly on a verdict mismatch. *)
let smoke () =
  let ok = eviction_ablation ~bits:5 ~k:2 ~cache_limit:200 () in
  Format.printf "@.bench-smoke: eviction ablation %s@."
    (if ok then "OK (bounded and unbounded runs agree)" else "FAILED");
  ok

let run ~full =
  let bits = if full then 10 else 8 in
  let ks = if full then [ 1; 2; 3; 4; 6; 8 ] else [ 1; 2; 3; 4 ] in
  let base = Workloads.ring bits in
  let rows =
    List.map
      (fun k ->
        let constraints =
          List.init k (fun i ->
              Ctl.Check.sat base (Ctl.atom (Printf.sprintf "c%d" i)))
        in
        let m = Kripke.with_fairness base constraints in
        let t_eg =
          Harness.estimate_ns (fun () -> Ctl.Fair.eg m m.Kripke.space)
        in
        let t_rings =
          Harness.estimate_ns (fun () ->
              Ctl.Fair.eg_with_rings m m.Kripke.space)
        in
        [
          string_of_int k;
          Harness.ns_string t_eg;
          Harness.ns_string t_rings;
          Printf.sprintf "%.0f%%" (100.0 *. (t_rings -. t_eg) /. t_eg);
        ])
      ks
  in
  Harness.print_table
    ~title:
      (Printf.sprintf "E7: fair EG cost vs number of fairness constraints (%d-cell ring)" bits)
    ~header:[ "constraints"; "fair EG"; "EG + rings"; "ring overhead" ]
    rows;
  Harness.note
    "each outer gfp iteration runs one nested EU per constraint (Section 5);";
  Harness.note
    "saving the rings for witness generation costs one extra EU sweep per";
  Harness.note "constraint after the fixpoint converges.";
  ignore
    (eviction_ablation ~bits:(if full then 8 else 6) ~k:2
       ~cache_limit:(if full then 500 else 150)
       ()
      : bool)

let bechamel =
  let m =
    lazy
      (let base = Workloads.ring 8 in
       Kripke.with_fairness base
         (List.init 3 (fun i ->
              Ctl.Check.sat base (Ctl.atom (Printf.sprintf "c%d" i)))))
  in
  Bechamel.Test.make ~name:"e7-fair-eg-ring8-k3"
    (Bechamel.Staged.stage (fun () ->
         let m = Lazy.force m in
         Ctl.Fair.eg m m.Kripke.space))
