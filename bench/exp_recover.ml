(* E12 — recovery-engine overhead.

   Two questions the recovery PR must answer:

   1. What do the fault-injection hooks cost when disarmed?  The hooks
      sit on the hottest paths in the system (mk, op-cache probe, gc,
      limits step), so even one extra branch matters.  Disarmed, each
      hook is a single field load + None check; we bound the cost from
      above by also measuring the strictly more expensive armed state
      (site match + countdown decrement on every mk, counter high
      enough never to fire).  Target: armed-but-idle < 1%, disarmed is
      cheaper still.

   2. What does each ladder rung cost on a budget-starved spec?  The
      engineered counter's EF fixpoint trips a tiny step budget almost
      immediately, so a failed rung's cost is dominated by the
      remediation work (gc, cache tightening) plus ladder bookkeeping —
      exactly the marginal price of asking for one more retry. *)

let iq_mean xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  let lo = n / 4 and hi = n - (n / 4) in
  let sum = ref 0.0 in
  for i = lo to hi - 1 do
    sum := !sum +. a.(i)
  done;
  !sum /. float_of_int (hi - lo)

(* The E7-style fair-EG workload from E10, reused so the hook-overhead
   row is directly comparable with the governance-overhead row. *)
let workload ~bits ~k =
  let base = Workloads.ring bits in
  let constraints =
    List.init k (fun i ->
        Ctl.Check.sat base (Ctl.atom (Printf.sprintf "c%d" i)))
  in
  Kripke.with_fairness base constraints

(* Paired cold rounds as in E10: per-round ratio cancels drift, the
   interquartile mean resolves sub-1% effects. *)
let measure_hooks ~bits ~k ~rounds =
  let sample armed =
    let m = workload ~bits ~k in
    Gc.full_major ();
    let _, s =
      Harness.time_once (fun () ->
          let limits =
            Bdd.Limits.create ~timeout:3600.0 ~node_budget:max_int
              ~step_budget:max_int ()
          in
          if armed then
            Bdd.Fault.arm m.Kripke.man ~site:Bdd.Fault.Mk ~after:max_int;
          ignore
            (Bdd.Limits.with_attached m.Kripke.man limits (fun () ->
                 Ctl.Fair.eg ~limits m m.Kripke.space));
          Bdd.Fault.disarm m.Kripke.man)
    in
    s *. 1e9
  in
  ignore (sample false);
  ignore (sample true);
  (* alternate pair order: the second run of a pair sits on a warmer
     heap, and that bias would otherwise swamp a sub-1% effect *)
  let pairs =
    List.init rounds (fun i ->
        if i land 1 = 0 then
          let d = sample false in
          let a = sample true in
          (d, a)
        else
          let a = sample true in
          let d = sample false in
          (d, a))
  in
  ( iq_mean (List.map fst pairs),
    iq_mean (List.map snd pairs),
    iq_mean (List.map (fun (d, a) -> a /. d) pairs) )

(* The starved counter: EF(all-ones) needs ~2^bits backward iterations,
   so a step budget of a handful trips on every rung. *)
let counter bits =
  let b = Kripke.Builder.create () in
  let vs =
    List.init bits (fun i ->
        Kripke.Builder.bool_var b (Printf.sprintf "b%d" i))
  in
  let bman = Kripke.Builder.man b in
  let v = Kripke.Builder.v b and v' = Kripke.Builder.v' b in
  List.iter (fun x -> Kripke.Builder.add_init b (Bdd.not_ bman (v x))) vs;
  let rec carries acc = function
    | [] -> ()
    | x :: rest ->
      Kripke.Builder.add_trans b (Bdd.iff bman (v' x) (Bdd.xor bman (v x) acc));
      carries (Bdd.and_ bman acc (v x)) rest
  in
  carries (Bdd.one bman) vs;
  Kripke.Builder.label_all_bools b;
  Kripke.Builder.build b

(* One ladder run over the starved spec, mirroring smv_check's rungs
   (gc + cache tightening; the 26-bit space never fits the explicit
   bridge, so the last rung stays symbolic). *)
let starved_ladder m spec ~retries ~base_budget =
  let man = m.Kripke.man in
  let saved = Bdd.cache_limit man in
  let result =
    Robust.Ladder.run ~retries
      ~cancelled:(fun () -> false)
      ~fits_explicit:(fun () -> false)
      ~live_nodes:(fun () -> Bdd.live_nodes man)
      (fun ~attempt strategy ->
        let limits =
          Bdd.Limits.create ~step_budget:(base_budget * (1 lsl (attempt - 1)))
            ()
        in
        (match strategy with
        | Robust.Ladder.Gc_retry -> ignore (Bdd.gc man)
        | Robust.Ladder.Reorder -> Bdd.reorder man
        | Robust.Ladder.Degraded -> Bdd.set_cache_limit man (Some 8192)
        | Robust.Ladder.Direct | Robust.Ladder.Explicit_state
        | Robust.Ladder.Main_domain ->
          ());
        Bdd.Limits.with_attached man limits (fun () ->
            Ctl.Check.holds ~limits m spec))
  in
  Bdd.set_cache_limit man saved;
  match result with
  | Ok _ -> failwith "E12: starved spec unexpectedly decided"
  | Error (_, log) -> List.length log

let measure_ladder ~bits ~rounds ~retries =
  let spec =
    Ctl.EF
      (List.init bits (fun i -> Ctl.atom (Printf.sprintf "b%d" i))
      |> List.fold_left (fun acc a -> Ctl.And (acc, a)) Ctl.True)
  in
  let sample () =
    let m = counter bits in
    Gc.full_major ();
    let attempts = ref 0 in
    let _, s =
      Harness.time_once (fun () ->
          attempts := starved_ladder m spec ~retries ~base_budget:4)
    in
    (s *. 1e9, !attempts)
  in
  ignore (sample ());
  let runs = List.init rounds (fun _ -> sample ()) in
  (iq_mean (List.map fst runs), snd (List.hd runs))

let run ~full =
  (* Row set 1: disarmed/armed hook overhead on the E10 workload. *)
  let hook_cases =
    if full then [ (16, 4, 120); (24, 8, 60); (32, 8, 60) ]
    else [ (16, 4, 60); (24, 8, 30) ]
  in
  let hook_rows =
    List.map
      (fun (bits, k, rounds) ->
        let disarmed, armed, ratio = measure_hooks ~bits ~k ~rounds in
        let overhead = 100.0 *. (ratio -. 1.0) in
        Harness.emit_json ~experiment:"E12"
          [
            ("row", Harness.String "fault-hooks");
            ("workload", Harness.String (Printf.sprintf "ring%d-f%d" bits k));
            ("disarmed_ns", Harness.Float disarmed);
            ("armed_idle_ns", Harness.Float armed);
            ("overhead_pct", Harness.Float overhead);
          ];
        [
          Printf.sprintf "ring-%d, %d constraints" bits k;
          Harness.ns_string disarmed;
          Harness.ns_string armed;
          Printf.sprintf "%+.1f%%" overhead;
        ])
      hook_cases
  in
  Harness.print_table
    ~title:
      "E12a: fault-hook overhead on fair EG (armed-but-idle upper-bounds the \
       disarmed hooks; disarmed target < 1%)"
    ~header:[ "workload"; "hooks disarmed"; "hooks armed (idle)"; "overhead" ]
    hook_rows;
  (* Row set 2: marginal cost per ladder rung on a budget-starved spec. *)
  let bits = if full then 26 else 20 in
  let rounds = if full then 40 else 20 in
  let ladder_rows =
    let prev = ref 0.0 in
    List.map
      (fun retries ->
        let ns, attempts = measure_ladder ~bits ~rounds ~retries in
        let marginal = if retries = 0 then ns else ns -. !prev in
        prev := ns;
        Harness.emit_json ~experiment:"E12"
          [
            ("row", Harness.String "ladder-rungs");
            ("workload", Harness.String (Printf.sprintf "counter%d" bits));
            ("retries", Harness.Int retries);
            ("attempts", Harness.Int attempts);
            ("total_ns", Harness.Float ns);
            ("marginal_ns", Harness.Float marginal);
          ];
        [
          Printf.sprintf "counter-%d, --retries %d" bits retries;
          Printf.sprintf "%d" attempts;
          Harness.ns_string ns;
          Harness.ns_string marginal;
        ])
      [ 0; 1; 2 ]
  in
  Harness.print_table
    ~title:"E12b: ladder cost per rung, budget-starved EF (step budget 4)"
    ~header:[ "workload"; "attempts"; "total"; "marginal rung cost" ]
    ladder_rows;
  Harness.note
    "E12a arms the mk-site fault with an unreachable countdown: every mk";
  Harness.note
    "pays the full hook (site match + decrement), never fires.  Disarmed";
  Harness.note
    "runs pay one field check; the PR-over-baseline delta is below the";
  Harness.note
    "armed figure.  E12b: each added retry re-runs the starved fixpoint";
  Harness.note
    "under a doubled step budget after gc / cache-tightening remediation."

let bechamel =
  let m = lazy (workload ~bits:6 ~k:2) in
  Bechamel.Test.make ~name:"e12-armed-idle-fair-eg"
    (Bechamel.Staged.stage (fun () ->
         let m = Lazy.force m in
         Bdd.Fault.arm m.Kripke.man ~site:Bdd.Fault.Mk ~after:max_int;
         let limits = Bdd.Limits.create ~timeout:3600.0 () in
         let r =
           Bdd.Limits.with_attached m.Kripke.man limits (fun () ->
               Ctl.Fair.eg ~limits m m.Kripke.space)
         in
         Bdd.Fault.disarm m.Kripke.man;
         r))
