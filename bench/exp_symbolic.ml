(* E6 — symbolic vs explicit model checking (the Section 4 motivation:
   OBDDs pushed model checking past the state explosion that stopped
   explicit enumeration — the paper's arbiter itself "failed" under an
   explicit checker and needed symbolic techniques).

   Workload: the n-cell ring, whose reachable set is the full 2^n; the
   specification is the resettability property AG EF "all low".  The
   explicit side pays for enumerating the graph; past ~2^14 states it
   is not run at all. *)

let all_low m n =
  let bman = m.Kripke.man in
  Bdd.conj bman
    (List.init n (fun i ->
         Bdd.diff bman m.Kripke.space
           (Ctl.Check.sat m (Ctl.atom (Printf.sprintf "c%d" i)))))

let run ~full =
  let sizes = if full then [ 4; 6; 8; 10; 12; 14; 16; 20 ] else [ 4; 6; 8; 10; 12 ] in
  let explicit_cap = 16384.0 in
  let rows =
    List.map
      (fun n ->
        let m = Workloads.ring n in
        let states = Kripke.count_states m m.Kripke.space in
        let spec = Ctl.AG (Ctl.EF (Ctl.Pred (all_low m n))) in
        let t_sym = Harness.estimate_ns (fun () -> Ctl.Check.holds m spec) in
        let t_explicit =
          if states > explicit_cap then None
          else
            let (), t =
              Harness.time_once (fun () ->
                  let g, _, mask_of = Explicit.Bridge.of_kripke m in
                  let atom _ = mask_of (all_low m n) in
                  ignore
                    (Explicit.Ectl.holds g ~atom
                       (Ctl.AG (Ctl.EF (Ctl.atom "low")))))
            in
            Some t
        in
        [
          string_of_int n;
          Printf.sprintf "%.0f" states;
          Harness.ns_string t_sym;
          (match t_explicit with
          | Some t -> Harness.seconds_string t
          | None -> "(skipped)");
        ])
      sizes
  in
  Harness.print_table
    ~title:"E6: symbolic vs explicit checking of AG EF all-low on the n-cell ring"
    ~header:[ "cells"; "states"; "symbolic"; "explicit (incl. enumeration)" ]
    rows;
  Harness.note
    "the explicit EMC baseline enumerates the graph first and stops being";
  Harness.note
    "feasible around 2^14 states, while the symbolic checker keeps scaling —";
  Harness.note "the crossover the paper's Section 4 describes."

let bechamel =
  let m = lazy (Workloads.ring 10) in
  Bechamel.Test.make ~name:"e6-symbolic-ring10"
    (Bechamel.Staged.stage (fun () ->
         let m = Lazy.force m in
         Ctl.Check.holds m (Ctl.AG (Ctl.EF (Ctl.Pred (all_low m 10))))))
