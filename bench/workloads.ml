(* Parametric workload models shared by the experiments. *)

(* A ring of n cells: cell i may toggle when its left neighbour is high
   (cell 0 is always enabled), one cell per step.  Reachable states
   branch heavily, which is what separates symbolic from explicit
   technology. *)
let ring n =
  let b = Kripke.Builder.create () in
  let cells =
    Array.init n (fun i -> Kripke.Builder.bool_var b (Printf.sprintf "c%d" i))
  in
  let man = Kripke.Builder.man b in
  let v = Kripke.Builder.v b and v' = Kripke.Builder.v' b in
  Array.iter (fun c -> Kripke.Builder.add_init b (Bdd.not_ man (v c))) cells;
  Array.iteri
    (fun i c ->
      let enabled =
        if i = 0 then Bdd.one man else v cells.((i - 1 + n) mod n)
      in
      let toggles = Bdd.iff man (v' c) (Bdd.not_ man (v c)) in
      Kripke.Builder.add_trans_case b
        (Bdd.conj man [ enabled; toggles; Kripke.Builder.keep_all_but b [ c ] ]))
    cells;
  Kripke.Builder.label_all_bools b;
  Kripke.Builder.build b

(* n independent free-running togglers (any one cell flips per step):
   every subset of behaviours is realisable, so CTL* disjunct
   resolution is exercised in both directions. *)
let togglers n =
  let b = Kripke.Builder.create () in
  let cells =
    Array.init n (fun i -> Kripke.Builder.bool_var b (Printf.sprintf "t%d" i))
  in
  let man = Kripke.Builder.man b in
  let v = Kripke.Builder.v b and v' = Kripke.Builder.v' b in
  Array.iter (fun c -> Kripke.Builder.add_init b (Bdd.not_ man (v c))) cells;
  Array.iter
    (fun c ->
      let toggles = Bdd.iff man (v' c) (Bdd.not_ man (v c)) in
      Kripke.Builder.add_trans_case b
        (Bdd.and_ man toggles (Kripke.Builder.keep_all_but b [ c ])))
    cells;
  (* also allow stuttering so FG branches are realisable *)
  Kripke.Builder.add_trans_case b (Kripke.Builder.keep_all_but b []);
  Kripke.Builder.label_all_bools b;
  Kripke.Builder.build b

(* A chain of k strongly connected components, each a directed cycle of
   [size] states, with one forward edge between consecutive components
   (Figure 2's shape).  Returns the explicit graph; state numbering:
   component j occupies [j*size .. j*size+size-1]. *)
let scc_chain ?(fair_last = false) ~components ~size () =
  let n = components * size in
  let edges = ref [] in
  for j = 0 to components - 1 do
    let base = j * size in
    for i = 0 to size - 1 do
      edges := (base + i, base + ((i + 1) mod size)) :: !edges
    done;
    if j < components - 1 then edges := (base, base + size) :: !edges
  done;
  let fairness =
    if fair_last then [ Explicit.Egraph.mask_of_list ~nstates:n [ n - 1 ] ]
    else []
  in
  Explicit.Egraph.make ~nstates:n ~edges:!edges ~init:[ 0 ] ~fairness ()

(* Random strongly connected explicit graph with [k] random fairness
   constraints (each a random non-empty state set); the Hamiltonian
   backbone guarantees every constraint set has a covering cycle. *)
let random_fair_graph rng ~nstates ~extra_edges ~constraints =
  let edges = ref [] in
  for i = 0 to nstates - 1 do
    edges := (i, (i + 1) mod nstates) :: !edges
  done;
  for _ = 1 to extra_edges do
    edges :=
      (Random.State.int rng nstates, Random.State.int rng nstates) :: !edges
  done;
  let fairness =
    List.init constraints (fun _ ->
        let mask = Array.make nstates false in
        mask.(Random.State.int rng nstates) <- true;
        mask)
  in
  Explicit.Egraph.make ~nstates ~edges:!edges ~init:[ 0 ] ~fairness ()

(* Round-robin scheduler automaton over n processes: accepts exactly
   the round-robin schedules. *)
let round_robin n =
  let alphabet = Array.init n (fun i -> Printf.sprintf "run%d" i) in
  Automata.Streett.of_buchi ~nstates:n ~init:0 ~alphabet
    ~delta:(List.init n (fun i -> (i, i, (i + 1) mod n)))
    ~accepting:(List.init n Fun.id)

(* A scheduler free to run anything (accepts every schedule). *)
let chaotic_scheduler n =
  let alphabet = Array.init n (fun i -> Printf.sprintf "run%d" i) in
  Automata.Streett.of_buchi ~nstates:1 ~init:0 ~alphabet
    ~delta:(List.init n (fun a -> (0, a, 0)))
    ~accepting:[ 0 ]

(* Deterministic specification: process 0 is scheduled infinitely
   often. *)
let process0_fair n =
  let alphabet = Array.init n (fun i -> Printf.sprintf "run%d" i) in
  let delta =
    List.concat_map
      (fun s -> List.init n (fun a -> (s, a, if a = 0 then 0 else 1)))
      [ 0; 1 ]
  in
  Automata.Streett.make ~nstates:2 ~init:0 ~alphabet ~delta
    ~accept:[ ([], [ 0 ]) ]

(* An n-cell synchronous "XOR cellular automaton" with one
   nondeterministic input cell: every step, cell i becomes the XOR of
   its two neighbours (cell 0 reads a free input).  The relation is
   naturally one conjunct per cell, the partitioning showcase.
   Returns both the monolithic and the partitioned model. *)
let xor_automaton n =
  let build partitioned =
    let b = Kripke.Builder.create () in
    let cells =
      Array.init n (fun i -> Kripke.Builder.bool_var b (Printf.sprintf "x%d" i))
    in
    let man = Kripke.Builder.man b in
    let v = Kripke.Builder.v b and v' = Kripke.Builder.v' b in
    Array.iter (fun c -> Kripke.Builder.add_init b (Bdd.not_ man (v c))) cells;
    Array.iteri
      (fun i c ->
        if i = 0 then () (* free input: unconstrained next value *)
        else
          let left = v cells.(i - 1) in
          let right = v cells.((i + 1) mod n) in
          Kripke.Builder.add_trans b
            (Bdd.iff man (v' c) (Bdd.xor man left right)))
      cells;
    Kripke.Builder.label_all_bools b;
    if partitioned then Kripke.Builder.build_partitioned b
    else Kripke.Builder.build b
  in
  (build false, build true)

(* ------------------------------------------------------------------ *)
(* Parametric SMV sources for the fair-cycle engine comparison (E18): *)
(* scaled siblings of examples/models/{arbiter,philosophers,counter*} *)
(* built as source text and loaded through Smv.load_string, so the    *)
(* benchmark exercises the same front-end path as the CLI.            *)

(* Round-robin token arbiter with [n] users (the committed 8-user
   arbiter.smv, scaled).  With [fairness] one FAIRNESS constraint per
   token position turns fair-state computation into a real multi-
   constraint fair-cycle problem. *)
let arbiter_smv ?(fairness = false) n =
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "MODULE main\nVAR\n";
  for i = 0 to n - 1 do pf "  req%d : boolean;\n" i done;
  for i = 0 to n - 1 do pf "  ack%d : boolean;\n" i done;
  pf "  token : {%s};\n"
    (String.concat ", " (List.init n (Printf.sprintf "t%d")));
  pf "ASSIGN\n";
  for i = 0 to n - 1 do pf "  init(req%d) := FALSE;\n" i done;
  for i = 0 to n - 1 do pf "  init(ack%d) := FALSE;\n" i done;
  pf "  init(token) := t0;\n";
  pf "  next(token) := case\n";
  for i = 0 to n - 2 do pf "      token = t%d : t%d;\n" i (i + 1) done;
  pf "      TRUE : t0;\n    esac;\n";
  for i = 0 to n - 1 do
    pf "  next(ack%d) := req%d & token = t%d;\n" i i i
  done;
  for i = 0 to n - 1 do
    pf
      "  next(req%d) := case ack%d : {TRUE, FALSE}; req%d : TRUE; TRUE : \
       {TRUE, FALSE}; esac;\n"
      i i i
  done;
  if fairness then
    for i = 0 to n - 1 do pf "FAIRNESS token = t%d\n" i done;
  Buffer.contents b

(* [n] dining philosophers under scheduling fairness (the committed
   three-philosopher model, scaled): one FAIRNESS constraint per
   philosopher, so the Emerson-Lei outer fixpoint runs [n] nested EU
   sweeps per iteration. *)
let philosophers_smv n =
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "MODULE phil(go, left_free, right_free)\n";
  pf "VAR\n  st : {think, hungry, left, eat};\n";
  pf "ASSIGN\n  init(st) := think;\n";
  pf "  next(st) := case\n";
  pf "      go & st = think : {think, hungry};\n";
  pf "      go & st = hungry & left_free : left;\n";
  pf "      go & st = left & right_free : eat;\n";
  pf "      go & st = eat : think;\n";
  pf "      TRUE : st;\n    esac;\n";
  pf "DEFINE\n";
  pf "  holds_left := st = left | st = eat;\n";
  pf "  eating := st = eat;\n\n";
  pf "MODULE main\nVAR\n";
  pf "  sched : 0..%d;\n" (n - 1);
  for i = 0 to n - 1 do
    pf "  p%d : phil(sched = %d, fork%d_free, fork%d_free);\n" i i i
      ((i + 1) mod n)
  done;
  pf "DEFINE\n";
  for i = 0 to n - 1 do
    pf "  fork%d_free := !p%d.holds_left & !p%d.eating;\n" i i
      ((i - 1 + n) mod n)
  done;
  pf "ASSIGN\n  next(sched) := {%s};\n"
    (String.concat ", " (List.init n string_of_int));
  for i = 0 to n - 1 do pf "FAIRNESS sched = %d\n" i done;
  Buffer.contents b

(* A [bits]-wide binary counter (the committed counter12, scaled).
   The interesting E18 query is fair [EG (not all-ones)]: that
   subgraph is a pure 2^bits-long chain with no cycle, the
   Emerson-Lei worst case (each outer iteration peels one tail state
   and re-runs a full EU sweep — quadratic in the chain), while the
   lock-step engine's trimming deletes the whole chain in one pass. *)
let counter_smv bits =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "MODULE main\nVAR\n";
  for i = 0 to bits - 1 do pf "  b%d : boolean;\n" i done;
  pf "ASSIGN\n";
  for i = 0 to bits - 1 do pf "  init(b%d) := FALSE;\n" i done;
  pf "  next(b0) := !b0;\n";
  for i = 1 to bits - 1 do
    pf "  next(b%d) := !(b%d <-> (%s));\n" i i
      (String.concat " & " (List.init i (Printf.sprintf "b%d")))
  done;
  Buffer.contents b
