(* E4 — Section 7: checking and witnessing the restricted CTL* class
   E /\_{j<=n} (GF p_j \/ FG q_j) as the number of conjuncts grows.

   The paper notes that "the model checking algorithm may need to be
   invoked several times in order to find the witness for a CTL*
   formula" — the resolution loop performs one full check per
   disjunction.  Rows report checking time, witness time and the number
   of checker invocations. *)

(* Odd conjuncts are pure GF (the witness cycle must visit them),
   even ones offer a genuine GF/FG choice the resolution must make. *)
let conjuncts m n =
  List.init n (fun j ->
      let p = Ctl.Check.sat m (Ctl.atom (Printf.sprintf "t%d" j)) in
      let q =
        if j mod 2 = 0 then Bdd.diff m.Kripke.man m.Kripke.space p
        else Bdd.zero m.Kripke.man
      in
      { Ctlstar.Gffg.gf = p; fg = q })

let run ~full =
  let bits = if full then 8 else 6 in
  let ns = if full then [ 1; 2; 3; 4; 5; 6 ] else [ 1; 2; 3; 4 ] in
  let m = Workloads.togglers bits in
  let start =
    match Kripke.pick_state m m.Kripke.init with
    | Some st -> st
    | None -> assert false
  in
  let rows =
    List.map
      (fun n ->
        let cs = conjuncts m n in
        let t_check = Harness.estimate_ns (fun () -> Ctlstar.Gffg.check m cs) in
        let tr, t_witness =
          Harness.time_once (fun () -> Ctlstar.Gffg.witness m cs ~start)
        in
        [
          string_of_int n;
          Harness.ns_string t_check;
          Harness.seconds_string t_witness;
          (* one check up front + one per two-sided disjunction *)
          string_of_int (1 + n);
          string_of_int (Kripke.Trace.length tr);
        ])
      ns
  in
  Harness.print_table
    ~title:
      (Printf.sprintf
         "E4: restricted CTL* E /\\ (GF p \\/ FG q), %d-bit toggler model" bits)
    ~header:[ "conjuncts"; "check"; "witness"; "checks run"; "wit length" ]
    rows;
  Harness.note
    "witness construction re-invokes the checker once per disjunction to";
  Harness.note
    "resolve the GF/FG branch, then reduces to one fair-EG witness (Section 7)."

let bechamel =
  let m = lazy (Workloads.togglers 5) in
  Bechamel.Test.make ~name:"e4-ctlstar-check3"
    (Bechamel.Staged.stage (fun () ->
         let m = Lazy.force m in
         Ctlstar.Gffg.check m (conjuncts m 3)))
