(* E18 — fair-cycle engines: Emerson-Lei vs lock-step SCC decomposition.

   Both engines compute the same fair-EG fixpoint (the identity is
   asserted per row, by state count — each engine runs on its own
   freshly compiled model and manager, so wall times include no shared
   warm caches).  What differs is the symbolic-step bill:

   - Emerson-Lei pays [outer iterations x (constraints x EU sweep)];
     its worst case is an EG over a long cycle-free subgraph, where
     every outer iteration peels one tail state and re-runs a full EU
     sweep — quadratic in the chain (the counter workload below).
   - Lock-step pays [trim + one lock-step search per SCC]; its worst
     case is a single huge SCC whose diameter it walks round by round
     while Emerson-Lei converges in a couple of outer iterations (the
     arbiter workload — kept here deliberately: the flag is a choice,
     not an upgrade).

   Steps are the engines' own fixpoint counters — the same quantities
   --stats prints and Limits.step charges — so the column is the exact
   budget a governed run would burn. *)

type row = {
  states : float;  (* fair EG state count (the identity check) *)
  steps : int;  (* symbolic fixpoint steps charged *)
  peak : int;  (* peak live BDD nodes during the computation *)
  secs : float;
}

(* One engine's run: fresh model, fresh counters, cold caches. *)
let measure engine (source : string) query =
  Harness.reset_fixpoint_counters ();
  let c = Smv.load_string source in
  let m = c.Smv.Compile.model in
  let f = query m in
  Bdd.reset_stats m.Kripke.man;
  let z, secs = Harness.time_once (fun () -> Ctl.Fair.eg ~engine m f) in
  let ck = Ctl.Check.fixpoint_stats () in
  let fr = Ctl.Fair.fixpoint_stats () in
  let steps =
    ck.Ctl.Check.eu_iterations + ck.Ctl.Check.eg_iterations
    + fr.Ctl.Fair.outer_iterations + fr.Ctl.Fair.lockstep_rounds
  in
  let stats = Bdd.stats m.Kripke.man in
  {
    states = Kripke.count_states m z;
    steps;
    peak = stats.Bdd.peak_nodes;
    secs;
  }

let space m = m.Kripke.space

let not_all_ones bits m =
  Ctl.Check.sat m
    (Ctl.neg
       (List.fold_left
          (fun acc i -> Ctl.And (acc, Ctl.atom (Printf.sprintf "b%d" i)))
          Ctl.True
          (List.init bits Fun.id)))

let bench_row ~name source query =
  let el = measure Ctl.Fair.El source query in
  let ls = measure Ctl.Fair.Lockstep source query in
  if el.states <> ls.states then
    failwith
      (Printf.sprintf "E18: engines disagree on %s (%.0f vs %.0f states)" name
         el.states ls.states);
  let emit tag (r : row) =
    Harness.emit_json ~experiment:"E18"
      [
        ("workload", Harness.String name);
        ("engine", Harness.String tag);
        ("fair_eg_states", Harness.Float r.states);
        ("fixpoint_steps", Harness.Int r.steps);
        ("peak_nodes", Harness.Int r.peak);
        ("check_s", Harness.Float r.secs);
      ]
  in
  emit "el" el;
  emit "lockstep" ls;
  [
    name;
    string_of_int el.steps;
    string_of_int ls.steps;
    Harness.seconds_string el.secs;
    Harness.seconds_string ls.secs;
    string_of_int el.peak;
    string_of_int ls.peak;
  ]

let run ~full =
  let counters = if full then [ 6; 8; 10; 12 ] else [ 6; 8; 10 ] in
  let phils = if full then [ 3; 4; 5; 6 ] else [ 3; 4; 5 ] in
  let arbiters = if full then [ 4; 6; 8; 10 ] else [ 4; 6; 8 ] in
  let rows =
    List.map
      (fun bits ->
        bench_row
          ~name:(Printf.sprintf "counter%d chain" bits)
          (Workloads.counter_smv bits)
          (not_all_ones bits))
      counters
    @ List.map
        (fun n ->
          bench_row
            ~name:(Printf.sprintf "phils%d" n)
            (Workloads.philosophers_smv n)
            space)
        phils
    @ List.map
        (fun n ->
          bench_row
            ~name:(Printf.sprintf "arbiter%d" n)
            (Workloads.arbiter_smv ~fairness:true n)
            space)
        arbiters
  in
  Harness.print_table
    ~title:
      "E18: fair-cycle engines — Emerson-Lei (el) vs lock-step SCC \
       decomposition"
    ~header:
      [
        "workload"; "el steps"; "ls steps"; "el time"; "ls time"; "el peak";
        "ls peak";
      ]
    rows;
  Harness.note
    "Same fair-EG set under both engines (asserted per row); steps are the";
  Harness.note
    "fixpoint counters --stats prints, i.e. exactly what a --step-limit";
  Harness.note
    "budget charges.  The counter chain is Emerson-Lei's quadratic worst";
  Harness.note
    "case (peel one tail state, re-run a full EU sweep) and lock-step's";
  Harness.note
    "best (trimming deletes the cycle-free chain wholesale); the arbiter is";
  Harness.note
    "the reverse — one giant SCC whose diameter lock-step must walk.";
  Harness.note
    "--fair-engine is a per-workload choice, not a uniform upgrade."

let bechamel =
  let mk name engine source query =
    Bechamel.Test.make ~name
      (Bechamel.Staged.stage (fun () ->
           let c = Smv.load_string source in
           let m = c.Smv.Compile.model in
           Ctl.Fair.eg ~engine m (query m)))
  in
  let counter = Workloads.counter_smv 8 in
  let phil = Workloads.philosophers_smv 4 in
  Bechamel.Test.make_grouped ~name:"e18-fair-engines"
    [
      mk "counter8-el" Ctl.Fair.El counter (not_all_ones 8);
      mk "counter8-lockstep" Ctl.Fair.Lockstep counter (not_all_ones 8);
      mk "phils4-el" Ctl.Fair.El phil space;
      mk "phils4-lockstep" Ctl.Fair.Lockstep phil space;
    ]
