(* E10 — resource-governance overhead.

   The limits poll is one counter decrement per op-cache probe plus a
   full budget check (flag, live-node count, step count, wall clock)
   every 4096 probes, and one explicit check per fixpoint iteration.
   This experiment measures the end-to-end cost on the E7 fair-EG
   workloads: identical runs governed by generous (never-tripping)
   budgets vs ungoverned, reported as a percentage.  Target: < 2%. *)

let workload ~bits ~k =
  let base = Workloads.ring bits in
  let constraints =
    List.init k (fun i ->
        Ctl.Check.sat base (Ctl.atom (Printf.sprintf "c%d" i)))
  in
  Kripke.with_fairness base constraints

(* Every run is COLD — a fresh manager with empty op-caches — so the
   measurement reflects real verification work rather than a cache-hit
   microbenchmark (where the per-iteration clock reads would be
   artificially magnified).  A single cold run lasts tens of µs, far
   too short for one-shot timing on a shared machine (per-sample noise
   is easily ±10%), so instead of chasing a clean sample we take many:
   each round builds two fresh models and times an ungoverned and a
   governed run back to back.  The per-round ratio cancels slow drift
   (system load, frequency scaling); the interquartile mean over
   hundreds of rounds cuts the remaining noise by ~sqrt(n), which is
   what it takes to resolve a sub-1%% effect. *)
let iq_mean xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  let lo = n / 4 and hi = n - (n / 4) in
  let sum = ref 0.0 in
  for i = lo to hi - 1 do
    sum := !sum +. a.(i)
  done;
  !sum /. float_of_int (hi - lo)

let measure ~bits ~k ~rounds =
  let sample governed =
    let m = workload ~bits ~k in
    (* Start every timed region from a clean GC state; otherwise major
       collections lock onto the alternation period and charge their
       pauses to one variant systematically. *)
    Gc.full_major ();
    let _, s =
      Harness.time_once (fun () ->
          if governed then begin
            (* Generous budgets: every poll runs its full check,
               nothing trips. *)
            let limits =
              Bdd.Limits.create ~timeout:3600.0 ~node_budget:max_int
                ~step_budget:max_int ()
            in
            ignore
              (Bdd.Limits.with_attached m.Kripke.man limits (fun () ->
                   Ctl.Fair.eg ~limits m m.Kripke.space))
          end
          else ignore (Ctl.Fair.eg m m.Kripke.space))
    in
    s *. 1e9
  in
  (* One discarded warmup pair grows the OCaml heap to working size;
     without it the first variant measured pays that cost alone. *)
  ignore (sample false);
  ignore (sample true);
  let pairs =
    List.init rounds (fun _ ->
        let u = sample false in
        let g = sample true in
        (u, g))
  in
  let ungoverned = iq_mean (List.map fst pairs) in
  let governed = iq_mean (List.map snd pairs) in
  let ratio = iq_mean (List.map (fun (u, g) -> g /. u) pairs) in
  (ungoverned, governed, ratio)

let run ~full =
  let cases =
    if full then [ (16, 4, 120); (24, 8, 60); (32, 8, 60) ]
    else [ (16, 4, 60); (24, 8, 30) ]
  in
  let rows =
    List.map
      (fun (bits, k, rounds) ->
        let ungoverned, governed, ratio = measure ~bits ~k ~rounds in
        let overhead = 100.0 *. (ratio -. 1.0) in
        Harness.emit_json ~experiment:"E10"
          [
            ("workload", Harness.String (Printf.sprintf "ring%d-f%d" bits k));
            ("ungoverned_ns", Harness.Float ungoverned);
            ("governed_ns", Harness.Float governed);
            ("overhead_pct", Harness.Float overhead);
          ];
        [
          Printf.sprintf "ring-%d, %d constraints" bits k;
          Harness.ns_string ungoverned;
          Harness.ns_string governed;
          Printf.sprintf "%+.1f%%" overhead;
        ])
      cases
  in
  Harness.print_table
    ~title:"E10: limits poll-point overhead on fair EG (target < 2%)"
    ~header:[ "workload"; "ungoverned"; "governed"; "overhead" ]
    rows;
  Harness.note
    "Governed runs attach never-tripping wall-clock/node/step budgets, so";
  Harness.note
    "every poll point executes its full check; the delta is pure";
  Harness.note "governance overhead (sampling noise can make it negative)."

let bechamel =
  let m = lazy (workload ~bits:6 ~k:2) in
  Bechamel.Test.make ~name:"e10-governed-fair-eg"
    (Bechamel.Staged.stage (fun () ->
         let m = Lazy.force m in
         let limits = Bdd.Limits.create ~timeout:3600.0 () in
         Bdd.Limits.with_attached m.Kripke.man limits (fun () ->
             Ctl.Fair.eg ~limits m m.Kripke.space)))
