(* E5 — Section 8: Streett language containment with counterexample
   words, as the system automaton grows.

   Two sweeps: a round-robin scheduler against "process 0 runs
   infinitely often" (containment holds — the check must prove it), and
   a chaotic scheduler against the same specification (containment
   fails — a counterexample schedule is extracted and validated). *)

let run ~full =
  let sizes = if full then [ 2; 4; 8; 16; 24 ] else [ 2; 4; 8 ] in
  let rows =
    List.map
      (fun n ->
        let spec = Workloads.process0_fair n in
        let rr = Workloads.round_robin n in
        let chaos = Workloads.chaotic_scheduler n in
        let ok_verdict, t_holds =
          Harness.time_once (fun () ->
              Automata.Containment.contains ~sys:rr ~spec ())
        in
        assert (ok_verdict = Ok ());
        let result, t_fails =
          Harness.time_once (fun () ->
              Automata.Containment.contains ~sys:chaos ~spec ())
        in
        let word_len, valid =
          match result with
          | Error ce ->
            ( List.length ce.Automata.Containment.word_prefix
              + List.length ce.Automata.Containment.word_cycle,
              Automata.Containment.check_counterexample ~sys:chaos ~spec ce )
          | Ok () -> (0, false)
        in
        [
          string_of_int n;
          Harness.seconds_string t_holds;
          Harness.seconds_string t_fails;
          string_of_int word_len;
          string_of_bool valid;
        ])
      sizes
  in
  Harness.print_table
    ~title:"E5: Streett language containment (scheduler vs process-0 fairness)"
    ~header:
      [ "processes"; "holds time"; "fails time"; "ce word"; "validated" ]
    rows;
  Harness.note
    "containment is decided on the product via the Section 7 class formulas;";
  Harness.note
    "failing checks also extract a lasso word accepted by the system and";
  Harness.note "rejected by the deterministic specification."

let bechamel =
  let spec = Workloads.process0_fair 4 in
  let chaos = Workloads.chaotic_scheduler 4 in
  Bechamel.Test.make ~name:"e5-containment4"
    (Bechamel.Staged.stage (fun () ->
         Automata.Containment.contains ~sys:chaos ~spec ()))
