(* E8 — the Section 9 observation: "finding a counterexample can
   sometimes take most of the execution time required for model
   checking".

   For each workload: time to decide the specification vs time to
   produce the counterexample / witness trace, and the latter's share
   of the total. *)

let row name ~check ~trace =
  let _, t_check = Harness.time_once check in
  let _, t_trace = Harness.time_once trace in
  [
    name;
    Harness.seconds_string t_check;
    Harness.seconds_string t_trace;
    Printf.sprintf "%.0f%%" (100.0 *. t_trace /. (t_check +. t_trace));
  ]

let run ~full =
  let rows = ref [] in
  let add r = rows := r :: !rows in
  (* Arbiter liveness counterexample. *)
  let arb_users = if full then 3 else 2 in
  let arb = Circuit.Arbiter.model arb_users in
  let arb_spec = Circuit.Arbiter.liveness_spec arb_users in
  add
    (row
       (Printf.sprintf "arbiter-%d liveness" arb_users)
       ~check:(fun () -> ignore (Ctl.Fair.holds arb arb_spec))
       ~trace:(fun () ->
         ignore (Counterex.Explain.counterexample arb arb_spec)));
  (* Fair EG witness on the SCC chain. *)
  let chain =
    Workloads.scc_chain ~fair_last:true ~components:(if full then 10 else 6)
      ~size:4 ()
  in
  let cm, encode = Explicit.Bridge.to_kripke chain in
  let cstart = encode 0 in
  add
    (row "scc-chain EG true"
       ~check:(fun () -> ignore (Ctl.Fair.eg cm cm.Kripke.space))
       ~trace:(fun () ->
         ignore (Counterex.Witness.eg cm ~f:cm.Kripke.space ~start:cstart)));
  (* CTL* witness. *)
  let tog = Workloads.togglers (if full then 7 else 5) in
  let cs =
    List.init 3 (fun j ->
        let p = Ctl.Check.sat tog (Ctl.atom (Printf.sprintf "t%d" j)) in
        { Ctlstar.Gffg.gf = p; fg = Bdd.diff tog.Kripke.man tog.Kripke.space p })
  in
  let tstart =
    match Kripke.pick_state tog tog.Kripke.init with
    | Some st -> st
    | None -> assert false
  in
  add
    (row "ctlstar 3 conjuncts"
       ~check:(fun () -> ignore (Ctlstar.Gffg.check tog cs))
       ~trace:(fun () -> ignore (Ctlstar.Gffg.witness tog cs ~start:tstart)));
  Harness.print_table
    ~title:"E8: counterexample generation as a share of total verification time"
    ~header:[ "workload"; "check"; "trace"; "trace share" ]
    (List.rev !rows);
  Harness.note
    "Section 9: \"finding a counterexample can sometimes take most of the";
  Harness.note
    "execution time required for model checking\" — witness construction";
  Harness.note
    "re-runs nested fixpoints (rings, closure sets), so its share is large."

let bechamel =
  let m = lazy (Circuit.Arbiter.model 2) in
  Bechamel.Test.make ~name:"e8-arbiter2-counterexample"
    (Bechamel.Staged.stage (fun () ->
         let m = Lazy.force m in
         Counterex.Explain.counterexample m (Circuit.Arbiter.liveness_spec 2)))
