(* Explicit-state witness construction: what EMC-style checkers do with
   BFS and SCCs instead of onion rings.  Serves as the baseline (and a
   cross-check) for the symbolic Section 6 algorithms. *)

let ex (g : Egraph.t) ~f ~start =
  let succ = g.succ.(start) in
  match Array.find_opt (fun w -> f.(w)) succ with
  | Some w -> Some [ start; w ]
  | None -> None

(* Shortest path from [start] to a [g]-state moving only through
   [f]-states (except possibly the final one). *)
let eu (graph : Egraph.t) ~f ~g ~start =
  if g.(start) then Some [ start ]
  else if not f.(start) then None
  else begin
    let parent = Array.make graph.nstates (-2) in
    parent.(start) <- -1;
    let queue = Queue.create () in
    Queue.add start queue;
    let found = ref None in
    while !found = None && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iter
        (fun w ->
          if parent.(w) = -2 then begin
            parent.(w) <- v;
            if !found = None && g.(w) then found := Some w
            else if f.(w) then Queue.add w queue
          end)
        graph.succ.(v)
    done;
    match !found with
    | None -> None
    | Some final ->
      let rec build acc v =
        if v = start then v :: acc else build (v :: acc) parent.(v)
      in
      Some (build [] final)
  end

let rec last_of = function
  | [ x ] -> x
  | _ :: rest -> last_of rest
  | [] -> invalid_arg "last_of"

(* The fair strongly connected components of the f-subgraph: nontrivial
   components that intersect every fairness constraint. *)
let fair_component_mask (graph : Egraph.t) f =
  let n = graph.nstates in
  let edges = ref [] in
  for v = 0 to n - 1 do
    if f.(v) then
      Array.iter
        (fun w -> if f.(w) then edges := (v, w) :: !edges)
        graph.succ.(v)
  done;
  let sub = Egraph.make ~nstates:n ~edges:!edges ~init:[] () in
  let comp = Egraph.sccs sub in
  let ncomp = 1 + Array.fold_left max (-1) comp in
  let fair_comp = Array.make ncomp false in
  List.iter
    (fun (v, w) -> if comp.(v) = comp.(w) then fair_comp.(comp.(v)) <- true)
    !edges;
  List.iter
    (fun h ->
      let hits = Array.make ncomp false in
      for v = 0 to n - 1 do
        if f.(v) && h.(v) then hits.(comp.(v)) <- true
      done;
      for c = 0 to ncomp - 1 do
        fair_comp.(c) <- fair_comp.(c) && hits.(c)
      done)
    graph.fairness;
  (comp, Array.init n (fun v -> f.(v) && fair_comp.(comp.(v))))

let fair_eg (graph : Egraph.t) ~f ~start =
  let n = graph.nstates in
  let comp, seeds = fair_component_mask graph f in
  match eu graph ~f ~g:seeds ~start with
  | None -> None
  | Some path_to_scc ->
    let entry = last_of path_to_scc in
    let inside = Array.init n (fun v -> f.(v) && comp.(v) = comp.(entry)) in
    (* Walk within the component from [current] to the target set,
       extending the cycle (which starts as [entry]). *)
    let walk (acc, current) target =
      let masked = Array.mapi (fun i b -> b && inside.(i)) target in
      match eu graph ~f:inside ~g:masked ~start:current with
      | Some (_first :: rest) ->
        (acc @ rest, (match rest with [] -> current | _ :: _ -> last_of rest))
      | Some [] | None -> assert false
    in
    let acc, current =
      List.fold_left walk ([ entry ], entry) graph.fairness
    in
    let has_self_loop v = Array.exists (fun w -> w = v) graph.succ.(v) in
    let cycle =
      if current = entry && List.length acc = 1 then
        if has_self_loop entry then [ entry ]
        else begin
          (* force one step out, then come back *)
          let w =
            match
              Array.find_opt (fun w -> inside.(w)) graph.succ.(entry)
            with
            | Some w -> w
            | None -> assert false (* nontrivial SCC has internal edges *)
          in
          let back =
            match
              eu graph ~f:inside
                ~g:(Array.init n (fun v -> v = entry))
                ~start:w
            with
            | Some p -> p
            | None -> assert false
          in
          (* back = w .. entry; drop the final entry (the cycle wraps) *)
          entry :: List.filteri (fun i _ -> i < List.length back - 1) back
        end
      else if current = entry then
        (* the constraint walk returned to the entry by itself: the
           accumulated list ends with entry; drop it to wrap *)
        List.filteri (fun i _ -> i < List.length acc - 1) acc
      else begin
        let back =
          match
            eu graph ~f:inside
              ~g:(Array.init n (fun v -> v = entry))
              ~start:current
          with
          | Some p -> p
          | None -> assert false
        in
        (* back = current .. entry: append its middle states *)
        acc @ List.filteri (fun i _ -> i > 0 && i < List.length back - 1) back
      end
    in
    let prefix =
      List.filteri (fun i _ -> i < List.length path_to_scc - 1) path_to_scc
    in
    Some (prefix, cycle)
