(** Explicit state-transition graphs.

    The representation the pre-BDD EMC model checker worked on
    (Section 4): states are integers [0 .. nstates-1], the transition
    relation is an adjacency array, fairness constraints and state sets
    are boolean masks. *)

type t = private {
  nstates : int;
  succ : int array array;   (** successors, per state *)
  pred : int array array;   (** predecessors, per state *)
  init : int list;
  fairness : bool array list;
}

val make :
  nstates:int ->
  edges:(int * int) list ->
  init:int list ->
  ?fairness:bool array list ->
  unit ->
  t
(** Build a graph; edges and initial states must be in range, fairness
    masks must have length [nstates] ([Invalid_argument] otherwise).
    Duplicate edges are collapsed. *)

val mask_of_list : nstates:int -> int list -> bool array
(** Convenience: the mask with exactly these states set. *)

val complete : t -> bool
(** Does every state have at least one successor? *)

val sccs : t -> int array
(** Tarjan: maps each state to the id of its strongly connected
    component; ids are assigned in reverse topological order (a
    component's id is greater than the ids of components it can
    reach). *)

val bfs_path : t -> from:int -> target:bool array -> int list option
(** Shortest path (as a state list including both endpoints) from a
    state to any state of the target set; [Some [from]] when [from]
    itself is in the target. *)
