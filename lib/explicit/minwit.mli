(** Exact minimal finite witnesses (Theorem 1).

    Finding the minimal-length finite witness — a shortest prefix +
    cycle such that the cycle visits every fairness constraint — is
    NP-complete (reduction from Hamiltonian cycle), so this exact
    branch-and-bound-over-masks search is exponential in the number of
    fairness constraints.  It exists to quantify how close the paper's
    greedy heuristic gets (experiment E2), and is only feasible on
    small explicit graphs. *)

val minimal : Egraph.t -> start:int -> (int list * int list) option
(** [minimal g ~start] — a minimum-total-length witness for
    [EG true] under [g]'s fairness constraints, starting at [start]:
    [(prefix, cycle)] where [prefix] begins with [start] (and is empty
    when the cycle starts at [start] itself), the last prefix state has
    an edge to the cycle head, consecutive cycle states are edges, the
    last cycle state closes back to the head, and every fairness
    constraint holds somewhere on the cycle.  [None] when no fair
    cycle is reachable from [start].

    The search is exact: no witness of total length
    [|prefix| + |cycle|] smaller than the returned one exists.
    Complexity O(n^2 · 2^k) states for [k] constraints. *)

val minimal_length : Egraph.t -> start:int -> int option
(** Total length of {!minimal}, without reconstructing the paths. *)
