exception Too_large of int

let of_kripke ?(max_states = 65536) (m : Kripke.t) =
  let count = Kripke.count_states m m.Kripke.space in
  if count > float_of_int max_states then
    raise (Too_large (int_of_float count));
  let states = Array.of_list (Kripke.states_in m m.Kripke.space) in
  let n = Array.length states in
  let index = Hashtbl.create (2 * n) in
  Array.iteri (fun i st -> Hashtbl.replace index st i) states;
  let idx st =
    match Hashtbl.find_opt index st with
    | Some i -> i
    | None -> invalid_arg "Bridge.of_kripke: state outside the space"
  in
  let edges = ref [] in
  Array.iteri
    (fun i st ->
      let succ = Kripke.post m (Kripke.state_to_bdd m st) in
      List.iter
        (fun st' -> edges := (i, idx st') :: !edges)
        (Kripke.states_in m succ))
    states;
  let mask_of_set set =
    Array.map (fun st -> Kripke.eval_in_state m set st) states
  in
  let init =
    Array.to_list
      (Array.of_seq
         (Seq.filter_map
            (fun i ->
              if Kripke.eval_in_state m m.Kripke.init states.(i) then Some i
              else None)
            (Seq.init n Fun.id)))
  in
  let fairness = List.map mask_of_set m.Kripke.fairness in
  let g = Egraph.make ~nstates:n ~edges:!edges ~init ~fairness () in
  (g, states, mask_of_set)

let to_kripke ?(labels = []) (g : Egraph.t) =
  let b = Kripke.Builder.create () in
  let n = g.Egraph.nstates in
  let sv = Kripke.Builder.range_var b "s" 0 (n - 1) in
  let at i = Kripke.Builder.is b sv (Kripke.I i) in
  let at' i = Kripke.Builder.is' b sv (Kripke.I i) in
  let bman = Kripke.Builder.man b in
  Array.iteri
    (fun i succ ->
      Array.iter
        (fun j -> Kripke.Builder.add_trans_case b (Bdd.and_ bman (at i) (at' j)))
        succ)
    g.Egraph.succ;
  (* A graph with no edge at all still needs a (false) relation. *)
  if Array.for_all (fun ss -> Array.length ss = 0) g.Egraph.succ then
    Kripke.Builder.add_trans b (Bdd.zero bman);
  Kripke.Builder.add_init b
    (Bdd.disj bman (List.map at g.Egraph.init));
  List.iter
    (fun mask ->
      let states = ref [] in
      Array.iteri (fun i hit -> if hit then states := at i :: !states) mask;
      Kripke.Builder.add_fairness b (Bdd.disj bman !states))
    g.Egraph.fairness;
  List.iter
    (fun (name, states) ->
      Kripke.Builder.add_label b name (Bdd.disj bman (List.map at states)))
    labels;
  let m = Kripke.Builder.build b in
  let encode i =
    match Kripke.pick_state m (at i) with
    | Some st -> st
    | None -> assert false
  in
  (m, encode)
