(** Explicit-state witness construction — the EMC-style baseline for
    the paper's symbolic Section 6 algorithms: shortest paths by BFS,
    fair cycles by SCC analysis.

    All functions return [None] exactly when the start state does not
    satisfy the corresponding formula. *)

val ex : Egraph.t -> f:bool array -> start:int -> int list option
(** Two-state witness for [EX f]. *)

val eu : Egraph.t -> f:bool array -> g:bool array -> start:int -> int list option
(** Shortest witness for [E[f U g]]: a path through [f]-states ending
    in a [g]-state. *)

val fair_eg :
  Egraph.t -> f:bool array -> start:int -> (int list * int list) option
(** Witness for [EG f] under the graph's fairness constraints:
    [(prefix, cycle)] where [prefix] starts at [start] (empty when the
    cycle starts there), all states satisfy [f], consecutive states are
    edges (including the wrap from the last cycle state to the first),
    and every fairness constraint holds somewhere on the cycle.
    Construction: BFS into a fair SCC, then visit each constraint
    inside it and close the loop. *)
