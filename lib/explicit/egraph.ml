type t = {
  nstates : int;
  succ : int array array;
  pred : int array array;
  init : int list;
  fairness : bool array list;
}

let make ~nstates ~edges ~init ?(fairness = []) () =
  let check_state s =
    if s < 0 || s >= nstates then
      invalid_arg (Printf.sprintf "Egraph.make: state %d out of range" s)
  in
  List.iter
    (fun (a, b) ->
      check_state a;
      check_state b)
    edges;
  List.iter check_state init;
  List.iter
    (fun mask ->
      if Array.length mask <> nstates then
        invalid_arg "Egraph.make: fairness mask of wrong length")
    fairness;
  let edges = List.sort_uniq Stdlib.compare edges in
  let out = Array.make nstates [] and inc = Array.make nstates [] in
  List.iter
    (fun (a, b) ->
      out.(a) <- b :: out.(a);
      inc.(b) <- a :: inc.(b))
    edges;
  {
    nstates;
    succ = Array.map (fun l -> Array.of_list (List.rev l)) out;
    pred = Array.map (fun l -> Array.of_list (List.rev l)) inc;
    init = List.sort_uniq Stdlib.compare init;
    fairness;
  }

let mask_of_list ~nstates states =
  let mask = Array.make nstates false in
  List.iter (fun s -> mask.(s) <- true) states;
  mask

let complete g = Array.for_all (fun ss -> Array.length ss > 0) g.succ

(* Iterative Tarjan (explicit stack, so million-state graphs do not
   blow the OCaml stack). *)
let sccs g =
  let n = g.nstates in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  (* Call-stack frames: (state, next successor position). *)
  let visit v0 =
    let frames = ref [ (v0, ref 0) ] in
    index.(v0) <- !next_index;
    lowlink.(v0) <- !next_index;
    incr next_index;
    stack := v0 :: !stack;
    on_stack.(v0) <- true;
    while !frames <> [] do
      match !frames with
      | [] -> ()
      | (v, pos) :: rest ->
        if !pos < Array.length g.succ.(v) then begin
          let w = g.succ.(v).(!pos) in
          incr pos;
          if index.(w) = -1 then begin
            index.(w) <- !next_index;
            lowlink.(w) <- !next_index;
            incr next_index;
            stack := w :: !stack;
            on_stack.(w) <- true;
            frames := (w, ref 0) :: !frames
          end
          else if on_stack.(w) then
            lowlink.(v) <- min lowlink.(v) index.(w)
        end
        else begin
          if lowlink.(v) = index.(v) then begin
            let rec pop () =
              match !stack with
              | [] -> ()
              | w :: rest_stack ->
                stack := rest_stack;
                on_stack.(w) <- false;
                comp.(w) <- !next_comp;
                if w <> v then pop ()
            in
            pop ();
            incr next_comp
          end;
          frames := rest;
          (match rest with
          | (parent, _) :: _ ->
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          | [] -> ())
        end
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  comp

let bfs_path g ~from ~target =
  let n = g.nstates in
  if Array.length target <> n then invalid_arg "Egraph.bfs_path: bad mask";
  let parent = Array.make n (-2) in
  let queue = Queue.create () in
  parent.(from) <- -1;
  Queue.add from queue;
  let found = ref None in
  (if target.(from) then found := Some from);
  while !found = None && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun w ->
        if parent.(w) = -2 then begin
          parent.(w) <- v;
          if !found = None && target.(w) then found := Some w;
          Queue.add w queue
        end)
      g.succ.(v)
  done;
  match !found with
  | None -> None
  | Some last ->
    let rec build acc v = if v = from then v :: acc else build (v :: acc) parent.(v) in
    Some (build [] last)
