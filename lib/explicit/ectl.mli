(** Explicit-state CTL model checking — the EMC baseline of Section 4
    and the independent oracle the symbolic checker is tested against.

    Satisfaction sets are boolean masks over the graph's states.  The
    fair [EG] here is computed from strongly connected components (an
    SCC of [f]-states that is non-trivial and intersects every fairness
    constraint, reached backwards through [f]-states), deliberately
    *not* the fixpoint characterisation the symbolic checker uses, so
    the two implementations cross-validate each other. *)

val ex : Egraph.t -> bool array -> bool array
val eu : Egraph.t -> bool array -> bool array -> bool array
val eg : Egraph.t -> bool array -> bool array

val fair_eg : Egraph.t -> bool array -> bool array
(** [EG f] over the graph's fairness constraints, via fair SCCs. *)

val fair_states : Egraph.t -> bool array
(** [fair_eg true]. *)

val sat :
  Egraph.t ->
  atom:(string -> bool array) ->
  ?pred:(Bdd.t -> bool array) ->
  Ctl.t ->
  bool array
(** Evaluate a CTL formula, resolving atoms with [atom] (which should
    raise for unknown names).  [pred] resolves symbolic [Ctl.Pred]
    leaves to state masks (e.g. the mask function of
    {!Bridge.of_kripke}, when the formula was compiled against the
    symbolic model the graph was extracted from); without it a [Pred]
    raises [Invalid_argument].  No fairness. *)

val sat_fair :
  Egraph.t ->
  atom:(string -> bool array) ->
  ?pred:(Bdd.t -> bool array) ->
  Ctl.t ->
  bool array
(** Evaluate over fair paths (the graph's fairness constraints). *)

val holds :
  Egraph.t ->
  atom:(string -> bool array) ->
  ?pred:(Bdd.t -> bool array) ->
  Ctl.t ->
  bool
(** All initial states satisfy the formula (no fairness). *)

val holds_fair :
  Egraph.t ->
  atom:(string -> bool array) ->
  ?pred:(Bdd.t -> bool array) ->
  Ctl.t ->
  bool
