(** Conversions between symbolic and explicit models.

    Used by the cross-validation tests (symbolic checker vs the EMC
    oracle on the same model) and by the benchmarks that compare the
    two technologies on one workload. *)

exception Too_large of int
(** Raised by {!of_kripke} when the state space exceeds the bound. *)

val of_kripke :
  ?max_states:int ->
  Kripke.t ->
  Egraph.t * Kripke.state array * (Bdd.t -> bool array)
(** Enumerate a symbolic model into an explicit graph.  Returns the
    graph, the concrete state of each graph node, and a function
    converting a symbolic state set into an explicit mask (used to
    resolve atoms).  [max_states] defaults to [65536]. *)

val to_kripke :
  ?labels:(string * int list) list ->
  Egraph.t ->
  Kripke.t * (int -> Kripke.state)
(** Encode an explicit graph symbolically: one [Range]-typed variable
    [s] holds the state index; edges become cubes of the transition
    relation; fairness masks become state sets.  Returns the model and
    the encoding of each graph node.  [labels] attaches atomic
    propositions given as state lists. *)
