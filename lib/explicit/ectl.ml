let ex (g : Egraph.t) set =
  Array.init g.nstates (fun v ->
      Array.exists (fun w -> set.(w)) g.succ.(v))

(* Backward closure: lfp Z. g \/ (f /\ EX Z), by worklist. *)
let eu (g : Egraph.t) f target =
  let result = Array.copy target in
  let queue = Queue.create () in
  Array.iteri (fun v b -> if b then Queue.add v queue) target;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun u ->
        if f.(u) && not result.(u) then begin
          result.(u) <- true;
          Queue.add u queue
        end)
      g.pred.(v)
  done;
  result

(* gfp Z. f /\ EX Z: repeatedly delete states that lost all their
   successors inside the candidate set. *)
let eg (g : Egraph.t) f =
  let live = Array.copy f in
  let count = Array.make g.nstates 0 in
  Array.iteri
    (fun v ss ->
      if live.(v) then
        count.(v) <-
          Array.fold_left (fun k w -> if live.(w) then k + 1 else k) 0 ss)
    g.succ;
  let queue = Queue.create () in
  Array.iteri (fun v b -> if b && count.(v) = 0 then Queue.add v queue) live;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if live.(v) then begin
      live.(v) <- false;
      Array.iter
        (fun u ->
          if live.(u) then begin
            count.(u) <- count.(u) - 1;
            if count.(u) = 0 then Queue.add u queue
          end)
        g.pred.(v)
    end
  done;
  live

(* Fair EG via SCC analysis: keep the subgraph of f-states, find its
   SCCs, call an SCC fair when it contains an internal edge (or a
   self-loop) and intersects every fairness constraint, then close
   backwards through f-states. *)
let fair_eg (g : Egraph.t) f =
  let n = g.nstates in
  (* Subgraph restricted to f. *)
  let edges = ref [] in
  for v = 0 to n - 1 do
    if f.(v) then
      Array.iter (fun w -> if f.(w) then edges := (v, w) :: !edges) g.succ.(v)
  done;
  let sub =
    Egraph.make ~nstates:n ~edges:!edges ~init:[] ~fairness:g.fairness ()
  in
  let comp = Egraph.sccs sub in
  let ncomp = 1 + Array.fold_left max (-1) comp in
  let nontrivial = Array.make ncomp false in
  List.iter
    (fun (v, w) -> if comp.(v) = comp.(w) then nontrivial.(comp.(v)) <- true)
    !edges;
  (* Only components made of f-states count; a state outside f is its
     own (ignored) component in [sub]. *)
  let eligible = Array.make ncomp false in
  for v = 0 to n - 1 do
    if f.(v) then eligible.(comp.(v)) <- true
  done;
  let fair_comp = Array.make ncomp false in
  for c = 0 to ncomp - 1 do
    fair_comp.(c) <- eligible.(c) && nontrivial.(c)
  done;
  List.iter
    (fun h ->
      let hits = Array.make ncomp false in
      for v = 0 to n - 1 do
        if f.(v) && h.(v) then hits.(comp.(v)) <- true
      done;
      for c = 0 to ncomp - 1 do
        fair_comp.(c) <- fair_comp.(c) && hits.(c)
      done)
    g.fairness;
  let seeds = Array.init n (fun v -> f.(v) && fair_comp.(comp.(v))) in
  eu g f seeds

let fair_states (g : Egraph.t) =
  fair_eg g (Array.make g.nstates true)

let mask_and a b = Array.map2 ( && ) a b
let mask_or a b = Array.map2 ( || ) a b
let mask_not a = Array.map not a

let sat_gen (g : Egraph.t) ~atom ~pred ~fair formula =
  let top = Array.make g.nstates true in
  let fair_mask = match fair with Some mask -> mask | None -> top in
  let rec go = function
    | Ctl.True -> top
    | Ctl.False -> Array.make g.nstates false
    | Ctl.Atom name -> atom name
    | Ctl.Pred p -> (
      match pred with
      | Some resolve -> resolve p
      | None -> invalid_arg "Ectl.sat: Pred has no explicit-state meaning")
    | Ctl.Not f -> mask_not (go f)
    | Ctl.And (a, b) -> mask_and (go a) (go b)
    | Ctl.Or (a, b) -> mask_or (go a) (go b)
    | Ctl.EX f -> ex g (mask_and (go f) fair_mask)
    | Ctl.EU (a, b) -> eu g (go a) (mask_and (go b) fair_mask)
    | Ctl.EG f -> (
      match fair with
      | None -> eg g (go f)
      | Some _ -> fair_eg g (go f))
    | Ctl.Imp _ | Ctl.Iff _ | Ctl.EF _ | Ctl.AX _ | Ctl.AF _ | Ctl.AG _
    | Ctl.AU _ ->
      assert false
  in
  go (Ctl.enf formula)

let sat g ~atom ?pred formula = sat_gen g ~atom ~pred ~fair:None formula

let sat_fair g ~atom ?pred formula =
  sat_gen g ~atom ~pred ~fair:(Some (fair_states g)) formula

let holds_with sat_fn g ~atom ?pred formula =
  let result = sat_fn g ~atom ?pred formula in
  List.for_all (fun v -> result.(v)) g.Egraph.init

let holds g ~atom ?pred formula = holds_with sat g ~atom ?pred formula

let holds_fair g ~atom ?pred formula =
  holds_with sat_fair g ~atom ?pred formula
