(* Exact minimal witness search.

   For each candidate cycle head [c]: the shortest covering cycle from
   [c] back to [c] is a shortest path in the product graph
   (state, set-of-constraints-hit), which BFS solves exactly; adding
   the shortest plain path from [start] to [c] gives the best witness
   anchored at [c].  Minimising over anchors is exact because every
   finite witness has *some* cycle head. *)

let constraint_masks (g : Egraph.t) =
  let k = List.length g.fairness in
  let at = Array.make g.nstates 0 in
  List.iteri
    (fun bit mask ->
      Array.iteri (fun v hit -> if hit then at.(v) <- at.(v) lor (1 lsl bit)) mask)
    g.fairness;
  (k, at)

(* Shortest covering cycle from [c]: BFS over (state, mask).  Returns
   (length, cycle states starting at c) or None. *)
let covering_cycle (g : Egraph.t) ~k ~(at : int array) c =
  let n = g.nstates in
  let full = (1 lsl k) - 1 in
  let nmasks = full + 1 in
  let dist = Array.make (n * nmasks) (-1) in
  let parent = Array.make (n * nmasks) (-1) in
  let id v mask = (v * nmasks) + mask in
  let queue = Queue.create () in
  let start_mask = at.(c) in
  dist.(id c start_mask) <- 0;
  Queue.add (c, start_mask) queue;
  let answer = ref None in
  while !answer = None && not (Queue.is_empty queue) do
    let v, mask = Queue.pop queue in
    let d = dist.(id v mask) in
    Array.iter
      (fun w ->
        if !answer = None then begin
          let mask' = mask lor at.(w) in
          if w = c && mask' = full then begin
            (* Close the cycle: record the final hop's provenance. *)
            answer := Some (d + 1, id v mask)
          end
          else if dist.(id w mask') = -1 then begin
            dist.(id w mask') <- d + 1;
            parent.(id w mask') <- id v mask;
            Queue.add (w, mask') queue
          end
        end)
      g.succ.(v)
  done;
  match !answer with
  | None -> None
  | Some (len, last_id) ->
    (* Reconstruct c .. last (the closing edge back to c is implicit). *)
    let rec build acc node =
      let v = node / nmasks in
      let p = parent.(node) in
      if p = -1 then v :: acc else build (v :: acc) p
    in
    Some (len, build [] last_id)

let minimal (g : Egraph.t) ~start =
  let k, at = constraint_masks g in
  let n = g.nstates in
  (* Shortest plain distances from start, with parents. *)
  let dist0 = Array.make n (-1) in
  let parent0 = Array.make n (-1) in
  dist0.(start) <- 0;
  let queue = Queue.create () in
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun w ->
        if dist0.(w) = -1 then begin
          dist0.(w) <- dist0.(v) + 1;
          parent0.(w) <- v;
          Queue.add w queue
        end)
      g.succ.(v)
  done;
  let best = ref None in
  for c = 0 to n - 1 do
    if dist0.(c) >= 0 then
      match covering_cycle g ~k ~at c with
      | None -> ()
      | Some (clen, cycle) ->
        let total = dist0.(c) + clen in
        (match !best with
        | Some (t, _, _) when t <= total -> ()
        | Some _ | None -> best := Some (total, c, cycle))
  done;
  match !best with
  | None -> None
  | Some (_, c, cycle) ->
    let rec prefix acc v =
      if v = start then v :: acc else prefix (v :: acc) parent0.(v)
    in
    let prefix_states =
      if c = start then [] else
        (* start .. predecessor of c *)
        match prefix [] c with
        | _ :: _ as p -> List.filteri (fun i _ -> i < List.length p - 1) p
        | [] -> []
    in
    Some (prefix_states, cycle)

let minimal_length g ~start =
  match minimal g ~start with
  | None -> None
  | Some (prefix, cycle) -> Some (List.length prefix + List.length cycle)
