(** Explicit-state model checking: the {!Egraph} representation, the
    EMC-style {!Ectl} checker (test oracle and benchmark baseline),
    exact {!Minwit} minimal-witness search (Theorem 1), and the
    symbolic/explicit {!Bridge}. *)

module Egraph = Egraph
module Ectl = Ectl
module Minwit = Minwit
module Ewitness = Ewitness
module Bridge = Bridge
