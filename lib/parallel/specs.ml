exception Cancelled

(* Per-worker state: the private manager and model clone.  Keyed by
   domain-local storage so it is built lazily, once per worker domain,
   on the worker's first task — a pool worker that never gets a task
   never pays for a clone.  The key is created per [map] call, so pools
   from successive calls cannot see each other's state. *)

let map ~jobs ?cancel ?chaos_crash ?on_result ~f (m : Kripke.t) specs =
  let n = Array.length specs in
  let jobs = max 1 (min jobs n) in
  (* Worker managers are registered here as they are created; the list
     is read only after the pool is shut down (workers joined), so the
     mutex covers just the concurrent registrations. *)
  let reg_mutex = Mutex.create () in
  let managers = ref [] in
  let ctx =
    Domain.DLS.new_key (fun () ->
        let dst = Bdd.create ?cache_limit:(Bdd.cache_limit m.Kripke.man) () in
        let wm = Kripke.clone_into dst m in
        Mutex.lock reg_mutex;
        managers := dst :: !managers;
        Mutex.unlock reg_mutex;
        wm)
  in
  let cancelled () =
    match cancel with Some c -> Atomic.get c | None -> false
  in
  let task i () =
    if cancelled () then raise Cancelled;
    let wm = Domain.DLS.get ctx in
    let spec = Ctl.map_pred (Bdd.transfer ~src:m.Kripke.man ~dst:wm.Kripke.man) specs.(i) in
    f wm spec i
  in
  let pool = Pool.create jobs in
  (match chaos_crash with
  | Some n -> Pool.chaos_crash_after pool n
  | None -> ());
  let results =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        let futures = Array.init n (fun i -> Pool.submit pool (task i)) in
        (* Await in submission order; [on_result] therefore fires in
           spec order even though completions interleave freely. *)
        Array.mapi
          (fun i fut ->
            let r = Pool.await fut in
            (match on_result with Some k -> k i r | None -> ());
            r)
          futures)
  in
  (results, List.rev_map Bdd.stats !managers)
