(** Shared-nothing parallel specification checking.

    The unit of parallelism is one specification: PR 2 made specs fully
    independent (fresh budgets, fault isolation), so k specs can run on
    k worker domains with no coordination beyond the fan-out itself.
    BDD managers stay strictly single-domain — instead of locking the
    hot hash-consing paths, every worker clones what it needs into a
    private manager:

    - on its first task, a worker builds a private [Bdd.man] (inheriting
      the source manager's cache limit) and a private model via
      [Kripke.clone_into] (per-domain state, built once per worker and
      reused across the specs it checks);
    - each task then moves its specification onto the worker manager
      with [Ctl.map_pred (Bdd.transfer ~dst ...)] and runs the caller's
      function against the private model.

    Cloning reads only immutable node structure, so workers clone from
    the shared source model concurrently without synchronisation.
    Since every choice the checking and witness layers make is semantic
    (canonical cubes, fixpoints), per-worker results — verdicts, traces,
    printed output — are bit-identical to a sequential run's. *)

exception Cancelled
(** A task skipped because the shared cancel flag was already set when
    it was picked up (its [f] never ran). *)

val map :
  jobs:int ->
  ?cancel:bool Atomic.t ->
  ?chaos_crash:int ->
  ?on_result:(int -> ('r, exn) result -> unit) ->
  f:(Kripke.t -> Ctl.t -> int -> 'r) ->
  Kripke.t ->
  Ctl.t array ->
  ('r, exn) result array * Bdd.stats list
(** [map ~jobs ~f m specs] checks every [specs.(i)] as [f wm spec i]
    where [wm] is the calling worker's private clone of [m] and [spec]
    its private copy of [specs.(i)], distributing tasks over a pool of
    [min jobs (Array.length specs)] worker domains (at least 1).

    Result [i] is [Ok r] when [f] returned [r], [Error Cancelled] when
    the task was skipped because [cancel] was set before it started,
    and [Error e] when [f] (or the worker's model clone) raised [e] —
    one crashing spec never affects the others.

    [cancel] is the cooperative stop flag: set it (from a signal
    handler, another domain, or a breach policy) and queued tasks skip;
    to also interrupt tasks already running, share the same flag with
    the [Bdd.Limits] bundles [f] attaches (see [Bdd.Limits.create]).

    [chaos_crash] arms [Pool.chaos_crash_after] on the freshly created
    pool: the n-th dequeued task's worker dies, its result becomes
    [Error Pool.Worker_crashed], and the worker is respawned — the CI
    handle for exercising crash recovery deterministically.

    [on_result] is invoked in the calling domain, in specification
    order, as each result becomes available — the hook for printing a
    parallel run's output in deterministic order without waiting for
    the whole batch.

    Returns the results plus one [Bdd.stats] snapshot per worker
    manager (taken after all workers have been joined), for merging
    into a single report with [Bdd.merge_stats]. *)
