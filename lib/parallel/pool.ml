(* Fixed-size domain pool: a mutex-and-condition protected FIFO of
   tasks, n worker domains looping pop-run-repeat, and one condition
   per future for the await side.  No spinning anywhere: workers block
   on [nonempty] when the queue is dry, awaiters block on the future's
   own condition until the worker fills it.

   A task carries both its [run] thunk and an [abort] continuation so
   that a worker dying *between* dequeue and completion can still fail
   the task's future — otherwise an awaiter would block forever on a
   task no surviving worker holds.  Workers that die (only via the
   chaos hook today; the [run] wrapper built by [submit] cannot raise)
   are respawned so the pool keeps its configured width. *)

exception Worker_crashed

type task = { run : unit -> unit; abort : exn -> unit }

type t = {
  queue : task Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;  (* signalled on submit and on shutdown *)
  max_pending : int option;
      (* admission bound: [try_submit] sheds once this many tasks are
         queued (running tasks don't count); [None] = unbounded *)
  mutable closed : bool;
  mutable domains : unit Domain.t list;
      (* every domain ever spawned, dead ones included: shutdown joins
         them all (a dead domain joins instantly) *)
  workers : int;  (* configured width *)
  mutable chaos_countdown : int;
      (* > 0: the countdown-th dequeue kills its worker (deterministic
         crash injection); <= 0: disarmed *)
  mutable respawned : int;
}

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = {
  fmutex : Mutex.t;
  fcond : Condition.t;
  mutable state : 'a state;
}

(* Pop the next task, blocking while the queue is empty and the pool
   open; [None] means shutdown with an empty queue, i.e. exit.  The
   boolean is the chaos verdict: [true] tells the worker to die with
   this task (decided here, under the mutex, so exactly one worker
   crashes no matter how dequeues interleave). *)
let next_task pool =
  Mutex.lock pool.mutex;
  let rec go () =
    if not (Queue.is_empty pool.queue) then begin
      let job = Queue.pop pool.queue in
      let crash =
        pool.chaos_countdown > 0
        && begin
             pool.chaos_countdown <- pool.chaos_countdown - 1;
             pool.chaos_countdown = 0
           end
      in
      Some (job, crash)
    end
    else if pool.closed then None
    else begin
      Condition.wait pool.nonempty pool.mutex;
      go ()
    end
  in
  let job = go () in
  Mutex.unlock pool.mutex;
  job

(* Replace a dead (or dying) worker, keeping the pool at its
   configured width so queued tasks still drain.  [closed] is read
   under the pool mutex — shutdown sets it under the same mutex, so a
   dying worker either respawns before shutdown snapshots the domain
   list or sees [closed] and stays down; either way no replacement
   outlives the join loop. *)
let rec respawn pool =
  Mutex.lock pool.mutex;
  if not pool.closed then begin
    pool.respawned <- pool.respawned + 1;
    pool.domains <- spawn_worker pool :: pool.domains
  end;
  Mutex.unlock pool.mutex

and worker_loop pool =
  match next_task pool with
  | None -> ()
  | Some (job, crash) ->
    if crash then begin
      (* Respawn bookkeeping *before* failing the future: the abort
         wakes the awaiter, who may immediately [shutdown] the pool or
         read [respawns] — both must find the replacement recorded.
         (Failing the future first opened exactly that race: a fast
         awaiter's shutdown flipped [closed] before this domain's
         wrapper ran, and the respawn was silently skipped.)  The
         domain then ends here — dying by return, with the replacement
         already running, rather than by an exception the wrapper
         below would double-count. *)
      respawn pool;
      job.abort Worker_crashed
    end
    else begin
      (* [job.run] is a [submit] wrapper and cannot raise; the guard is
         belt-and-braces so a worker never dies silently. *)
      (try job.run () with _ -> ());
      worker_loop pool
    end

(* The spawn wrapper: guards the loop against escapes that are not
   chaos crashes (those respawn inline above) — nothing today, but a
   worker must never die silently and leave the pool under width. *)
and spawn_worker pool =
  Domain.spawn (fun () ->
      try worker_loop pool with _ -> respawn pool)

let create ?max_pending n =
  if n < 1 then invalid_arg "Parallel.Pool.create: need at least one worker";
  (match max_pending with
  | Some m when m < 1 ->
    invalid_arg "Parallel.Pool.create: max_pending must be >= 1"
  | Some _ | None -> ());
  let pool =
    {
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      max_pending;
      closed = false;
      domains = [];
      workers = n;
      chaos_countdown = 0;
      respawned = 0;
    }
  in
  pool.domains <- List.init n (fun _ -> spawn_worker pool);
  pool

let size pool = pool.workers

let pending pool =
  Mutex.lock pool.mutex;
  let n = Queue.length pool.queue in
  Mutex.unlock pool.mutex;
  n

let respawns pool =
  Mutex.lock pool.mutex;
  let r = pool.respawned in
  Mutex.unlock pool.mutex;
  r

let chaos_crash_after pool n =
  if n < 1 then
    invalid_arg "Parallel.Pool.chaos_crash_after: non-positive count";
  Mutex.lock pool.mutex;
  pool.chaos_countdown <- n;
  Mutex.unlock pool.mutex

(* [bounded] is the admission-control switch: [submit] always
   enqueues (the parallel checker's fan-out was sized by its caller),
   [try_submit] sheds when the pending queue is at [max_pending]. *)
let enqueue pool ~bounded f =
  let fut = { fmutex = Mutex.create (); fcond = Condition.create ();
              state = Pending }
  in
  let fill outcome =
    Mutex.lock fut.fmutex;
    fut.state <- outcome;
    Condition.broadcast fut.fcond;
    Mutex.unlock fut.fmutex
  in
  let task =
    {
      run =
        (fun () ->
          fill (match f () with v -> Done v | exception e -> Failed e));
      abort = (fun e -> fill (Failed e));
    }
  in
  Mutex.lock pool.mutex;
  if pool.closed then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Parallel.Pool.submit: pool is shut down"
  end;
  let full =
    bounded
    && (match pool.max_pending with
       | Some m -> Queue.length pool.queue >= m
       | None -> false)
  in
  if full then begin
    Mutex.unlock pool.mutex;
    None
  end
  else begin
    Queue.push task pool.queue;
    Condition.signal pool.nonempty;
    Mutex.unlock pool.mutex;
    Some fut
  end

let submit pool f =
  match enqueue pool ~bounded:false f with
  | Some fut -> fut
  | None -> assert false (* unbounded enqueue never sheds *)

let try_submit pool f = enqueue pool ~bounded:true f

let await fut =
  Mutex.lock fut.fmutex;
  let rec go () =
    match fut.state with
    | Pending ->
      Condition.wait fut.fcond fut.fmutex;
      go ()
    | Done v -> Ok v
    | Failed e -> Error e
  in
  let r = go () in
  Mutex.unlock fut.fmutex;
  r

let await_exn fut = match await fut with Ok v -> v | Error e -> raise e

let is_settled fut =
  Mutex.lock fut.fmutex;
  let settled = match fut.state with Pending -> false | Done _ | Failed _ -> true in
  Mutex.unlock fut.fmutex;
  settled

let shutdown pool =
  Mutex.lock pool.mutex;
  let domains = pool.domains in
  pool.closed <- true;
  pool.domains <- [];
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  List.iter Domain.join domains
