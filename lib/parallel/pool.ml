(* Fixed-size domain pool: a mutex-and-condition protected FIFO of
   thunks, n worker domains looping pop-run-repeat, and one condition
   per future for the await side.  No spinning anywhere: workers block
   on [nonempty] when the queue is dry, awaiters block on the future's
   own condition until the worker fills it. *)

type task = unit -> unit

type t = {
  queue : task Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;  (* signalled on submit and on shutdown *)
  mutable closed : bool;
  mutable domains : unit Domain.t list;
}

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = {
  fmutex : Mutex.t;
  fcond : Condition.t;
  mutable state : 'a state;
}

(* Pop the next task, blocking while the queue is empty and the pool
   open; [None] means shutdown with an empty queue, i.e. exit. *)
let next_task pool =
  Mutex.lock pool.mutex;
  let rec go () =
    if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
    else if pool.closed then None
    else begin
      Condition.wait pool.nonempty pool.mutex;
      go ()
    end
  in
  let job = go () in
  Mutex.unlock pool.mutex;
  job

let rec worker_loop pool =
  match next_task pool with
  | None -> ()
  | Some job ->
    (* [job] is a [submit] wrapper and cannot raise; the guard is
       belt-and-braces so a worker never dies silently. *)
    (try job () with _ -> ());
    worker_loop pool

let create n =
  if n < 1 then invalid_arg "Parallel.Pool.create: need at least one worker";
  let pool =
    {
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
      domains = [];
    }
  in
  pool.domains <-
    List.init n (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = List.length pool.domains

let submit pool f =
  let fut = { fmutex = Mutex.create (); fcond = Condition.create ();
              state = Pending }
  in
  let task () =
    let outcome = match f () with v -> Done v | exception e -> Failed e in
    Mutex.lock fut.fmutex;
    fut.state <- outcome;
    Condition.broadcast fut.fcond;
    Mutex.unlock fut.fmutex
  in
  Mutex.lock pool.mutex;
  if pool.closed then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Parallel.Pool.submit: pool is shut down"
  end;
  Queue.push task pool.queue;
  Condition.signal pool.nonempty;
  Mutex.unlock pool.mutex;
  fut

let await fut =
  Mutex.lock fut.fmutex;
  let rec go () =
    match fut.state with
    | Pending ->
      Condition.wait fut.fcond fut.fmutex;
      go ()
    | Done v -> Ok v
    | Failed e -> Error e
  in
  let r = go () in
  Mutex.unlock fut.fmutex;
  r

let await_exn fut = match await fut with Ok v -> v | Error e -> raise e

let shutdown pool =
  Mutex.lock pool.mutex;
  let domains = pool.domains in
  pool.closed <- true;
  pool.domains <- [];
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  List.iter Domain.join domains
