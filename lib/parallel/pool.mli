(** A fixed-size pool of worker domains.

    Hand-rolled over [Domain] / [Mutex] / [Condition] (no external
    scheduler dependency): [create n] spawns [n] domains that block on
    a shared FIFO task queue; [submit] enqueues a thunk and returns a
    future; [await] blocks the calling domain until the thunk has run.
    Tasks never run on the submitting domain, so the submitter is free
    to await in any order (the ordered-output pattern of the parallel
    model checker: await futures in submission order, print each result
    as it arrives).

    Exceptions raised by a task are caught in the worker and carried to
    the awaiting domain through the future — a crashing task never
    takes a worker (or the pool) down.

    The pool itself holds no domain-unsafe state beyond its own queue;
    whether the {e tasks} are safe to run concurrently is the caller's
    contract.  The intended discipline is shared-nothing: each worker
    touches only state it created itself (see [Check]).

    Workers that die are {e respawned}: a domain whose loop escapes with
    an exception fails the task it held (its awaiter sees
    {!Worker_crashed} rather than blocking forever) and is replaced, so
    the pool keeps its configured width and queued tasks still drain.
    The only way to kill a worker today is the deterministic
    {!chaos_crash_after} hook — the submit wrapper confines ordinary
    task exceptions to the future — which is exactly what lets CI
    exercise the respawn path on demand. *)

exception Worker_crashed
(** Carried by the future of a task whose worker domain died while
    holding it. *)

type t

type 'a future
(** The pending result of a submitted task. *)

val create : ?max_pending:int -> int -> t
(** Spawn a pool of [n >= 1] worker domains (raises [Invalid_argument]
    otherwise).  Remember that domains are not threads: creating more
    of them than cores buys nothing, and every pool must be
    {!shutdown}.

    [max_pending] ([>= 1] when given) is the admission bound consulted
    by {!try_submit}: once that many tasks are queued (tasks already
    running on a worker do not count), further [try_submit] calls shed
    instead of enqueueing.  Plain {!submit} ignores the bound, so
    callers that sized their own fan-out (the parallel spec checker)
    are unaffected.  Default: unbounded. *)

val size : t -> int
(** Configured number of worker domains (stable across respawns). *)

val pending : t -> int
(** Tasks currently queued and not yet picked up by a worker — the
    queue depth that {!try_submit} admissions are measured against. *)

val respawns : t -> int
(** How many crashed workers have been replaced so far. *)

val chaos_crash_after : t -> int -> unit
(** [chaos_crash_after pool n] arms deterministic crash injection: the
    [n]-th subsequently dequeued task ([n >= 1]; raises
    [Invalid_argument] otherwise) kills the worker that picked it up —
    the task's future fails with {!Worker_crashed} and the domain dies
    and is respawned.  One-shot: the countdown disarms as it fires.
    Chaos testing only. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task.  Raises [Invalid_argument] if the pool has been
    shut down. *)

val try_submit : t -> (unit -> 'a) -> 'a future option
(** {!submit} with admission control: [None] — immediately, without
    blocking — when the pool was created with [max_pending] and that
    many tasks are already queued.  The caller owns the shed response
    (the check server answers with a structured [overloaded] reply).
    Raises [Invalid_argument] if the pool has been shut down. *)

val is_settled : 'a future -> bool
(** Whether the task has finished (completed, failed or aborted) — a
    non-blocking probe, so long-lived submitters can prune settled
    futures instead of accumulating them forever. *)

val await : 'a future -> ('a, exn) result
(** Block until the task has run; [Error e] if it raised [e].  May be
    called from any domain, any number of times. *)

val await_exn : 'a future -> 'a
(** {!await}, re-raising the task's exception. *)

val shutdown : t -> unit
(** Drain: workers finish every already-submitted task, then exit; the
    calling domain joins them all.  Idempotent.  After shutdown the
    results of all submitted tasks are visible to the caller (the joins
    establish the happens-before edge). *)
