(** Parallel checking over worker domains (OCaml 5 shared-nothing
    parallelism): the fixed-size domain {!Pool} and the per-spec
    fan-out {!Specs} built on it.

    Design rule: a BDD manager is owned by exactly one domain for its
    whole life.  Parallelism comes from cloning — [Bdd.transfer] /
    [Kripke.clone_into] copy shared immutable structure into private
    managers — never from locking the hash-consing hot paths. *)

module Pool = Pool
module Specs = Specs

let default_jobs () = Domain.recommended_domain_count ()
(** The runtime's recommendation for how many domains this machine can
    usefully run — the meaning of [--jobs 0]. *)
