(** A minimal JSON value type with printer and parser.

    The check-server protocol speaks JSON over length-prefixed frames;
    nothing in the container provides a JSON library, and the protocol
    needs only the data model — no streaming, no schemas — so this is
    a small self-contained implementation.  The printer emits compact
    single-line documents (no insignificant whitespace); the parser
    accepts any RFC 8259 text, including [\uXXXX] escapes (surrogate
    pairs are decoded to UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering.  Numbers with an integral value in the 53-bit
    safely-representable range print without a fractional part (so
    request ids and counters round-trip as written). *)

val of_string : string -> (t, string) result
(** Parse one JSON document (surrounding whitespace allowed; trailing
    garbage is an error).  [Error msg] carries a byte offset. *)

(** {1 Accessors}

    Total accessors for picking apart parsed requests: each returns
    [None] on a type mismatch rather than raising, so protocol
    validation is explicit at the call site. *)

val member : string -> t -> t option
(** Field of an object ([None] on missing field or non-object). *)

val to_str : t -> string option
val to_num : t -> float option
val to_int : t -> int option
(** {!to_num} truncated; [None] when not numeric. *)

val to_bool : t -> bool option
val to_list : t -> t list option

val obj_or_empty : t option -> (string * t) list
(** The fields of [Some (Obj _)]; [[]] for anything else — the shape
    of an optional options object. *)
