(* Minimal JSON: compact printer, recursive-descent parser.  See the
   interface for why this exists at all. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* 2^53: beyond it a float no longer represents every integer, so the
   integral-looking rendering would lie about the stored value. *)
let max_exact_int = 9007199254740992.0

let number_string f =
  if not (Float.is_finite f) then
    (* NaN / infinities have no JSON spelling; null is the least-wrong
       total answer for a printer that must not raise. *)
    "null"
  else if Float.is_integer f && Float.abs f <= max_exact_int then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_string f)
  | Str s -> escape_string buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        render buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        render buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  render buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Parse_error of int * string

let parse_fail pos msg = raise (Parse_error (pos, msg))

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> parse_fail c.pos (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.text
    && String.sub c.text c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_fail c.pos (Printf.sprintf "expected %s" word)

let hex_digit c ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> parse_fail c.pos "invalid hex escape"

let parse_hex4 c =
  let v = ref 0 in
  for _ = 1 to 4 do
    match peek c with
    | Some ch ->
      v := (!v * 16) + hex_digit c ch;
      advance c
    | None -> parse_fail c.pos "truncated \\u escape"
  done;
  !v

(* Encode one Unicode scalar value as UTF-8. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_fail c.pos "unterminated string"
    | Some '"' ->
      advance c;
      Buffer.contents buf
    | Some '\\' -> (
      advance c;
      match peek c with
      | None -> parse_fail c.pos "truncated escape"
      | Some ch ->
        advance c;
        (match ch with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let hi = parse_hex4 c in
          if hi >= 0xD800 && hi <= 0xDBFF then begin
            (* high surrogate: a low surrogate must follow *)
            expect c '\\';
            expect c 'u';
            let lo = parse_hex4 c in
            if lo < 0xDC00 || lo > 0xDFFF then
              parse_fail c.pos "unpaired surrogate";
            add_utf8 buf
              (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
          end
          else if hi >= 0xDC00 && hi <= 0xDFFF then
            parse_fail c.pos "unpaired surrogate"
          else add_utf8 buf hi
        | _ -> parse_fail (c.pos - 1) "unknown escape");
        go ())
    | Some ch when Char.code ch < 0x20 ->
      parse_fail c.pos "unescaped control character"
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let consume_while pred =
    let rec go () =
      match peek c with
      | Some ch when pred ch ->
        advance c;
        go ()
      | _ -> ()
    in
    go ()
  in
  (match peek c with Some '-' -> advance c | _ -> ());
  consume_while (function '0' .. '9' -> true | _ -> false);
  (match peek c with
  | Some '.' ->
    advance c;
    consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  (match peek c with
  | Some ('e' | 'E') ->
    advance c;
    (match peek c with Some ('+' | '-') -> advance c | _ -> ());
    consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let s = String.sub c.text start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> parse_fail start "invalid number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_fail c.pos "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((k, v) :: acc)
        | _ -> parse_fail c.pos "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> parse_fail c.pos "expected ',' or ']'"
      in
      Arr (items [])
    end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> parse_fail c.pos (Printf.sprintf "unexpected %C" ch)

let of_string text =
  let c = { text; pos = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length text then
      parse_fail c.pos "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Parse_error (pos, msg) ->
    Error (Printf.sprintf "JSON error at byte %d: %s" pos msg)

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_num = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= max_exact_int ->
    Some (int_of_float f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr items -> Some items | _ -> None

let obj_or_empty = function Some (Obj fields) -> fields | _ -> []
