(** Durable warm state: crash-only persistence for the manager pool.

    With [--state-dir DIR] the daemon keeps one file per pooled model
    under [DIR] — [<digest>.warm], where the digest is the existing
    {!Cache.digest} pool key.  Each file wraps a {!Bdd.Snapshot} of
    the model's manager (columns, order, roots — everything that makes
    it warm) together with the marshalled pure-data shadow of the
    compiled artifact, the whole body checksummed so a torn write or a
    flipped bit is rejected before unmarshalling.

    The discipline is crash-only:

    - writes happen on the daemon's idle-pressure watchdog tick
      ({!tick}, skipping entries unchanged since the last write) and
      on graceful shutdown ({!flush}); both are best-effort — a failed
      write logs a warning and the server keeps serving;
    - every write is atomic (temp file + rename), so the directory
      always holds complete files from {e some} point in time;
    - on startup {!rehydrate} seeds the pool from whatever valid files
      exist; anything stale, truncated, corrupt or version-mismatched
      is renamed to [*.quarantined] and counted, never fatal. *)

type t

type counters = {
  snapshots : int;    (** warm-state files successfully written *)
  restores : int;     (** pool entries rehydrated at startup *)
  quarantines : int;  (** bad files quarantined (never fatal) *)
}

val create : dir:string -> debug:bool -> t
(** Use [dir] as the state directory, creating it if missing (raises
    [Invalid_argument] if the path exists and is not a directory, or
    cannot be created).  [debug] enables warning logs on stderr. *)

val counters : t -> counters
(** Current counters (thread-safe; reported by the [Status] reply). *)

val tick : t -> Cache.t -> unit
(** Snapshot every idle pooled model whose use count changed since its
    last write.  Called from the daemon's watchdog on low-pressure
    ticks: snapshotting is pure reading (under the pool lock, so no
    holder can appear mid-dump), and skipping busy entries means a
    long check is never stalled by persistence. *)

val flush : t -> Cache.t -> unit
(** {!tick} unconditionally on shutdown paths (after a drain the whole
    pool is idle, so this persists everything). *)

val rehydrate : t -> Cache.t -> int
(** Scan the state directory and seed the pool with every valid warm
    file; returns how many entries were restored.  Invalid files are
    quarantined and counted.  Intended at daemon startup, before the
    socket starts accepting. *)

(**/**)

val save_entry :
  t -> key:string -> uses:int -> Smv.Compile.compiled -> bool
(** Write one entry now (bench / test hook); true on success. *)

val load_entry : string -> string * Smv.Compile.compiled
(** Read one warm file (bench / test hook): [(key, compiled)].
    Raises on any validation failure. *)
