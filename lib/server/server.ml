(** Check-server mode: the warm-manager request loop behind
    [smv_check --serve], plus the per-spec checking {!Engine} it
    shares with the one-shot CLI.

    {!Json} and {!Frame} are the wire, {!Protocol} the message
    shapes, {!Cache} the warm manager pool, {!Overload} the admission
    counters and memory watchdog, {!Daemon} the serve loop itself. *)

module Json = Json
module Frame = Frame
module Protocol = Protocol
module Cache = Cache
module Engine = Engine
module Overload = Overload
module Persist = Persist
module Daemon = Daemon
module Supervise = Supervise
