(** Length-prefixed framing over a file descriptor.

    Each frame is a 4-byte big-endian payload length followed by the
    payload bytes.  Reads and writes operate on raw [Unix.file_descr]
    (not channels) so a signal can interrupt a blocked read: the serve
    loop's SIGINT handler sets a flag, the blocked [read] wakes with
    [EINTR], consults [should_stop], and returns as if at end of
    input — that is what turns SIGINT into "drain and shut down"
    rather than "kill the connection mid-frame". *)

exception Closed
(** The peer is gone: raised by {!write} on [EPIPE]/[ECONNRESET], and
    by {!read} when the stream ends in the middle of a frame. *)

exception Oversized of int
(** A frame header announced more than {!max_frame} bytes — treat the
    stream as corrupt. *)

val max_frame : int
(** Upper bound on accepted payload size (64 MiB).  Guards the server
    against allocating unbounded buffers on a garbage header. *)

val read : ?should_stop:(unit -> bool) -> Unix.file_descr -> string option
(** Read one frame.  [None] at a clean end of stream (EOF on the
    header boundary) or when [should_stop ()] becomes true while the
    read is parked in [EINTR].  Restarts interrupted reads otherwise. *)

val write : Unix.file_descr -> string -> unit
(** Write one frame (header + payload), looping over partial writes.
    @raise Closed when the peer has disconnected. *)
