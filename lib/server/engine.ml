(* The per-spec checking engine, extracted from bin/smv_check.ml so
   the one-shot CLI and the check server run the same code — and
   therefore print the same bytes.  See the interface for the two
   behaviour fixes (per-check cancellation, spec-pred rooting) that
   came with the move. *)

type verdict = Holds | Fails | Undetermined of string
type report = { verdict : verdict; cert_failed : bool }

type opts = {
  fair : bool;
  fair_engine : Ctl.Fair.engine;
  traces : bool;
  stats : bool;
  certify : bool;
  debug : bool;
  timeout : float option;
  node_limit : int option;
  step_limit : int option;
  retries : int;
  retry_factor : float;
  cancel : bool Atomic.t;
}

let mk_limits opts =
  Bdd.Limits.create ?timeout:opts.timeout ?node_budget:opts.node_limit
    ?step_budget:opts.step_limit ~cancel:opts.cancel ()

let exit_code ~interrupted reports =
  let verdicts = List.map (fun r -> r.verdict) reports in
  let some_cert_failed = List.exists (fun r -> r.cert_failed) reports in
  let some_undetermined =
    List.exists (function Undetermined _ -> true | _ -> false) verdicts
  in
  let some_false = List.exists (( = ) Fails) verdicts in
  if some_cert_failed then 3
  else if interrupted || some_undetermined then 2
  else if some_false then 1
  else 0

(* The paper: a true existential specification gets a witness, a false
   universal one gets a counterexample. *)
let rec existential = function
  | Ctl.EX _ | Ctl.EF _ | Ctl.EG _ | Ctl.EU _ -> true
  | Ctl.Not f -> not (existential f)
  | Ctl.True | Ctl.False | Ctl.Atom _ | Ctl.Pred _ | Ctl.And _ | Ctl.Or _
  | Ctl.Imp _ | Ctl.Iff _ | Ctl.AX _ | Ctl.AF _ | Ctl.AG _ | Ctl.AU _ ->
    false

let describe_breach (info : Bdd.Limits.info) =
  Format.asprintf "%a" Bdd.Limits.pp_breach info.Bdd.Limits.breach

let print_breach_progress ppf (info : Bdd.Limits.info) =
  let p = info.Bdd.Limits.progress in
  Format.fprintf ppf
    "--   progress before the limit: %d fixpoint iterations, %d ring segments%s@."
    p.Bdd.Limits.iterations p.Bdd.Limits.rings
    (match p.Bdd.Limits.witness_prefix with
    | [] -> ""
    | states -> Printf.sprintf ", %d witness states" (List.length states))

(* Build — and, when [emit], print (byte-identical to the pre-recovery
   checker) — the trace for a determined verdict.  A resource breach
   here is reported as a note but keeps the verdict: the answer was
   already computed, only its explanation ran out of budget.
   [fallback] switches the source of the trace to the explicit-state
   bridge (the ladder's last rung); the surrounding text stays the
   same, so downstream tooling parses both alike. *)
let trace_for ppf m ~limits ~engine ~emit ~holds ~fallback spec =
  let emitf fmt =
    if emit then Format.fprintf ppf fmt else Format.ifprintf ppf fmt
  in
  let show tr =
    emitf "-- as demonstrated by the following execution sequence@.";
    emitf "%a@." (Kripke.Trace.pp m) tr
  in
  let show_fail tr =
    show tr;
    emitf "-- trace length: %d states%s@." (Kripke.Trace.length tr)
      (if Kripke.Trace.is_lasso tr then
         Printf.sprintf " (cycle of length %d)"
           (List.length tr.Kripke.Trace.cycle)
       else "")
  in
  match fallback with
  | Some fb ->
    if holds then begin
      if not (existential spec) then None
      else
        match Robust.Fallback.witness fb spec with
        | Some tr ->
          show tr;
          Some tr
        | None -> None
    end
    else begin
      match Robust.Fallback.counterexample fb spec with
      | Some tr ->
        show_fail tr;
        Some tr
      | None ->
        emitf "-- (no explicit-state trace for this formula shape)@.";
        None
    end
  | None ->
    if holds then begin
      if not (existential spec) then None
      else
        match Counterex.Explain.witness ~limits ~engine m spec with
        | Some tr ->
          show tr;
          Some tr
        | None -> None
        | exception Counterex.Explain.Cannot_explain _ -> None
        | exception Bdd.Limits.Exhausted info ->
          emitf "-- (witness construction hit a resource limit: %s)@."
            (describe_breach info);
          None
    end
    else begin
      (* Counterexamples always use fair semantics when constraints are
         declared, as SMV does. *)
      match Counterex.Explain.counterexample ~limits ~engine m spec with
      | Some tr ->
        show_fail tr;
        Some tr
      | None ->
        emitf
          "-- (no initial-state counterexample: the formula fails only under plain semantics)@.";
        None
      | exception Counterex.Explain.Cannot_explain msg ->
        emitf "-- (could not build a linear counterexample: %s)@." msg;
        None
      | exception Bdd.Limits.Exhausted info ->
        emitf "-- (counterexample construction hit a resource limit: %s)@."
          (describe_breach info);
        None
    end

(* What one ladder attempt produced: the verdict, the model it was
   decided on (the degraded rung may swap in a partitioned variant),
   the budget bundle it ran under (trace construction keeps charging
   it), and the explicit bridge when the verdict came from the
   explicit-state rung. *)
type attempt_result = {
  ar_holds : bool;
  ar_model : Kripke.t;
  ar_limits : Bdd.Limits.t;
  ar_fallback : Robust.Fallback.t option;
  ar_engine : Ctl.Fair.engine;
      (* the fair engine the verdict (and hence any trace) ran under:
         the requested one on attempt 1, the classical Emerson-Lei
         engine on every retry (the ladder's engine-fallback rung) *)
}

let check_one ppf m ~opts ~clusters ?inject ?prior (name, spec) =
  let man = m.Kripke.man in
  (* Monotonic, not calendar, time: the retry pool arithmetic below
     must not jump when NTP steps the clock mid-spec. *)
  let spec_started = Bdd.now_monotonic () in
  let saved_cache_limit = Bdd.cache_limit man in
  let max_attempts = opts.retries + 1 in
  (* Exponential budget backoff: attempt 1 runs under exactly the base
     budgets (the --retries 0 identity); retry k multiplies node/step
     budgets by factor^(k-1) and gives the remaining share of a
     (timeout * attempts)-sized wall-clock pool. *)
  let backoff k = function
    | None -> None
    | Some n ->
      let scaled = float_of_int n *. (opts.retry_factor ** float_of_int (k - 1)) in
      Some (if scaled >= 1e18 then max_int else int_of_float scaled)
  in
  let timeout_for k =
    match opts.timeout with
    | None -> None
    | Some t ->
      if k = 1 then Some t
      else
        let total = t *. float_of_int max_attempts in
        let elapsed = Bdd.now_monotonic () -. spec_started in
        let left = max 1 (max_attempts - k + 1) in
        Some (Float.max 0.05 ((total -. elapsed) /. float_of_int left))
  in
  let limits_for k =
    if k = 1 then mk_limits opts
    else
      Bdd.Limits.create ?timeout:(timeout_for k)
        ?node_budget:(backoff k opts.node_limit)
        ?step_budget:(backoff k opts.step_limit) ~cancel:opts.cancel ()
  in
  (* Engine fallback (see Robust.Ladder): attempt 1 honours the
     requested fair engine; any breach or crash retries on the
     battle-tested Emerson-Lei engine before the ladder trades away
     fidelity, so a lock-step pathology can never make a verdict
     *less* available than the default engine would. *)
  let engine_for ~attempt =
    if attempt = 1 then opts.fair_engine else Ctl.Fair.El
  in
  let run_symbolic model limits ~engine =
    (* Checkpoints on: the verdict phase runs only rooted fixpoints, so
       a pending auto-reorder may fire between iterations.  Witness and
       certification phases below never enable them. *)
    Bdd.Limits.with_attached model.Kripke.man limits (fun () ->
        Bdd.Reorder.with_checkpoints model.Kripke.man (fun () ->
            if opts.fair then Ctl.Fair.holds ~limits ~engine model spec
            else Ctl.Check.holds ~limits model spec))
  in
  (* The degraded representation, built once per spec: partitioned
     transition relation (from the compiler's clusters) when the model
     is not already partitioned. *)
  let dmodel = ref None in
  let degraded_model () =
    match !dmodel with
    | Some dm -> dm
    | None ->
      let dm =
        if Kripke.partitioned m then m
        else
          match clusters () with
          | [] -> m
          | cs -> ( try Kripke.with_partition m cs with Invalid_argument _ -> m)
      in
      dmodel := Some dm;
      dm
  in
  let attempt_fn ~attempt strategy =
    let limits = limits_for attempt in
    let engine = engine_for ~attempt in
    match strategy with
    | Robust.Ladder.Direct | Robust.Ladder.Main_domain ->
      { ar_holds = run_symbolic m limits ~engine; ar_model = m;
        ar_limits = limits; ar_fallback = None; ar_engine = engine }
    | Robust.Ladder.Gc_retry ->
      (* Reclaim the breached computation's intermediate nodes and drop
         the op-caches, then re-run plainly under backed-off budgets. *)
      ignore (Bdd.gc man);
      { ar_holds = run_symbolic m limits ~engine; ar_model = m;
        ar_limits = limits; ar_fallback = None; ar_engine = engine }
    | Robust.Ladder.Reorder ->
      (* Shrink the tables with a sifting sweep before giving up any
         fidelity.  The sweep runs under this attempt's limits, so a
         deadline aborts it at a swap boundary; a failure inside it
         (including an injected reorder fault) is classified by the
         ladder like any other and climbs to the next rung. *)
      Bdd.Limits.with_attached man limits (fun () -> Bdd.reorder man);
      { ar_holds = run_symbolic m limits ~engine; ar_model = m;
        ar_limits = limits; ar_fallback = None; ar_engine = engine }
    | Robust.Ladder.Degraded ->
      (* Trade speed for footprint: tight op-caches plus a partitioned
         relation with early quantification. *)
      let tightened =
        match Bdd.cache_limit man with
        | Some n -> min n 8192
        | None -> 8192
      in
      Bdd.set_cache_limit man (Some tightened);
      let dm = degraded_model () in
      { ar_holds = run_symbolic dm limits ~engine; ar_model = dm;
        ar_limits = limits; ar_fallback = None; ar_engine = engine }
    | Robust.Ladder.Explicit_state ->
      (* Abandon the symbolic representation: enumerate the (small)
         state space and decide explicitly.  Deadline and cancellation
         still apply (the enumeration's symbolic steps poll them);
         node/step budgets do not — they measure symbolic work. *)
      let limits =
        Bdd.Limits.create ?timeout:(timeout_for attempt) ~cancel:opts.cancel ()
      in
      let fb =
        Bdd.Limits.with_attached man limits (fun () ->
            Robust.Fallback.build m)
      in
      {
        ar_holds = Robust.Fallback.holds fb ~fair:opts.fair spec;
        ar_model = m;
        ar_limits = limits;
        ar_fallback = Some fb;
        ar_engine = engine;
      }
  in
  (* The spec's embedded Pred state sets live on [man] but are not
     reachable from the model's roots; a ladder gc between attempts
     (or a concurrent request's gc on a warm server) must not sweep
     them out from under the remaining attempts. *)
  let spec_preds =
    let acc = ref [] in
    ignore (Ctl.map_pred (fun b -> acc := b :: !acc; b) spec);
    !acc
  in
  (* Arm the injected fault (chaos testing) for this specification;
     one-shot, and disarmed on every exit path so a fault armed for
     spec k can never leak into spec k+1. *)
  (match inject with
  | Some (site, n) -> Bdd.Fault.arm man ~site ~after:n
  | None -> ());
  Bdd.with_root man (fun () -> spec_preds) @@ fun () ->
  Fun.protect
    ~finally:(fun () ->
      Bdd.Fault.disarm man;
      Bdd.set_cache_limit man saved_cache_limit)
    (fun () ->
      let outcome =
        match
          Robust.Ladder.run ~retries:opts.retries
            ~cancelled:(fun () -> Atomic.get opts.cancel)
            ~fits_explicit:(fun () -> Robust.Fallback.fits m)
            ~live_nodes:(fun () -> Bdd.live_nodes man)
            ?prior attempt_fn
        with
        | r -> r
        | exception Bdd.Limits.Exhausted info ->
          (* Only [Interrupted] breaches reach here (the ladder retries
             the others): report like any breach and stop cleanly. *)
          Format.fprintf ppf "-- specification %s is UNDETERMINED (%s)@."
            name (describe_breach info);
          print_breach_progress ppf info;
          ignore (Bdd.gc man);
          Error (Robust.Ladder.Breach info, [])
        | exception e when not opts.debug ->
          Format.fprintf ppf
            "-- specification %s is UNDETERMINED (internal error: %s)@."
            name (Printexc.to_string e);
          Error
            ( Robust.Ladder.Crashed (Printexc.to_string e),
              [] )
      in
      let print_attempt_log log =
        if opts.stats && List.length log > 1 then
          List.iter
            (fun a ->
              Format.fprintf ppf "--   %a@." Robust.Ladder.pp_attempt a)
            log
      in
      match outcome with
      | Error (failure, log) ->
        (* The ladder is out of rungs (or was never given any): report
           the last failure.  For --retries 0 these prints are exactly
           the pre-recovery checker's. *)
        (match (failure, log) with
        | Robust.Ladder.Breach info, _ :: _ ->
          Format.fprintf ppf "-- specification %s is UNDETERMINED (%s)@."
            name (describe_breach info);
          print_breach_progress ppf info;
          ignore (Bdd.gc man)
        | Robust.Ladder.Oom, _ :: _ ->
          if opts.debug && opts.retries = 0 then raise Out_of_memory;
          Format.fprintf ppf
            "-- specification %s is UNDETERMINED (internal error: %s)@." name
            (Printexc.to_string Out_of_memory)
        | Robust.Ladder.Crashed msg, _ :: _ ->
          Format.fprintf ppf
            "-- specification %s is UNDETERMINED (worker failed: %s)@." name
            msg
        | _, [] ->
          (* the failure was already reported (interrupt / internal
             error paths above) *)
          ());
        print_attempt_log log;
        { verdict = Undetermined (Robust.Ladder.failure_name failure);
          cert_failed = false }
      | Ok (ar, log) ->
        let holds = ar.ar_holds in
        let final =
          match List.rev log with a :: _ -> a | [] -> assert false
        in
        let recovered = final.Robust.Ladder.index > 1 in
        Format.fprintf ppf "-- specification %s is %s%s@." name
          (if holds then "true" else "false")
          (if recovered then
             Printf.sprintf " (recovered: attempt %d via %s)"
               final.Robust.Ladder.index
               (Robust.Ladder.strategy_name final.Robust.Ladder.strategy)
           else "");
        print_attempt_log log;
        let need_cert = opts.certify || recovered in
        let tr =
          if opts.traces || need_cert then begin
            match
              Bdd.Limits.with_attached ar.ar_model.Kripke.man ar.ar_limits
                (fun () ->
                  trace_for ppf ar.ar_model ~limits:ar.ar_limits
                    ~engine:ar.ar_engine ~emit:opts.traces ~holds
                    ~fallback:ar.ar_fallback spec)
            with
            | tr -> tr
            | exception e when not opts.debug ->
              Format.fprintf ppf "-- (trace construction failed: %s)@."
                (Printexc.to_string e);
              None
          end
          else None
        in
        let cert_failed =
          match tr with
          | Some tr when need_cert -> (
            (* Certification runs uncapped but cancellable: the trace
               is already in hand, only cancellation may stop its
               re-validation. *)
            let climits = Bdd.Limits.create ~cancel:opts.cancel () in
            let cert =
              if holds then
                Robust.Certify.witness ~limits:climits ~engine:ar.ar_engine m
                  spec tr
              else
                Robust.Certify.counterexample ~limits:climits
                  ~engine:ar.ar_engine m spec tr
            in
            match
              Bdd.Limits.with_attached man climits (fun () -> cert)
            with
            | Ok () ->
              Format.fprintf ppf
                "-- certificate: trace independently validated (%d states)@."
                (Kripke.Trace.length tr);
              false
            | Error msg ->
              Format.fprintf ppf "-- CERTIFICATION FAILED: %s@." msg;
              Format.fprintf ppf
                "-- specification %s verdict withdrawn (uncertified trace)@."
                name;
              true
            | exception Bdd.Limits.Exhausted info ->
              Format.fprintf ppf "-- (certification interrupted: %s)@."
                (describe_breach info);
              false)
          | Some _ | None -> false
        in
        if cert_failed then
          { verdict = Undetermined "certification failed"; cert_failed = true }
        else { verdict = (if holds then Holds else Fails); cert_failed = false })
