(* The crash-only supervisor.  The parent does almost nothing — that
   is the point: it binds the socket once, forks the serve loop, and
   from then on only reaps, restarts, and forwards signals.  Holding
   the listening fd in the parent means a crashed child never
   unbinds the endpoint: clients connecting during a restart queue in
   the socket backlog instead of seeing ECONNREFUSED.

   The parent must fork {e before} the child builds its worker pool —
   forking a process that already has domains and threads is undefined
   behaviour territory — so everything expensive (pool, cache,
   rehydration) happens on the child side of the fork, inside
   [Daemon.serve_fd]. *)

type config = {
  max_crashes : int;
  window_s : float;
  backoff0_ms : float;
  backoff_max_ms : float;
}

(* Environment overrides exist so the smoke tests can tighten the
   windows without waiting out production defaults. *)
let default () =
  let env_int name d =
    match Option.bind (Sys.getenv_opt name) int_of_string_opt with
    | Some n when n > 0 -> n
    | Some _ | None -> d
  in
  let env_float name d =
    match Option.bind (Sys.getenv_opt name) float_of_string_opt with
    | Some x when x > 0. -> x
    | Some _ | None -> d
  in
  {
    max_crashes = env_int "SMV_SUPERVISE_MAX_CRASHES" 5;
    window_s = env_float "SMV_SUPERVISE_WINDOW_S" 30.0;
    backoff0_ms = env_float "SMV_SUPERVISE_BACKOFF0_MS" 100.0;
    backoff_max_ms = env_float "SMV_SUPERVISE_BACKOFF_MAX_MS" 5000.0;
  }

let log fmt = Format.eprintf ("smv_check --supervise: " ^^ fmt ^^ "@.")

(* OCaml signal numbers are negative internals; name the ones an
   operator will actually meet in a crash report. *)
let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigbus then "SIGBUS"
  else if s = Sys.sigill then "SIGILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else Printf.sprintf "signal %d" s

let describe_status = function
  | Unix.WEXITED n -> Printf.sprintf "exited with code %d" n
  | Unix.WSIGNALED s -> Printf.sprintf "killed by %s" (signal_name s)
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by %s" (signal_name s)

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let run ?(cfg = default ()) (dcfg : Daemon.config) =
  match dcfg.Daemon.socket with
  | None ->
    log "supervision requires --socket (stdio has no endpoint to hold)";
    3
  | Some path -> (
    match Daemon.bind_socket ~path with
    | Error msg ->
      log "%s" msg;
      3
    | Ok listen_fd ->
      let child = Atomic.make (-1) in
      let stopping = Atomic.make false in
      let forward signal _ =
        Atomic.set stopping true;
        let pid = Atomic.get child in
        if pid > 0 then
          match Unix.kill pid signal with
          | () -> ()
          | exception Unix.Unix_error _ -> ()
      in
      let try_install s h =
        match Sys.set_signal s h with
        | () -> ()
        | exception (Invalid_argument _ | Sys_error _) -> ()
      in
      try_install Sys.sigint (Sys.Signal_handle (forward Sys.sigint));
      try_install Sys.sigterm (Sys.Signal_handle (forward Sys.sigterm));
      try_install Sys.sigpipe Sys.Signal_ignore;
      Random.self_init ();
      let cleanup () =
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        match Unix.unlink path with
        | () -> ()
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
        | exception Unix.Unix_error (e, _, _) ->
          log "warning: cannot remove socket %s: %s" path
            (Unix.error_message e)
      in
      let crashes = ref [] in
      let backoff = ref cfg.backoff0_ms in
      let restarts = ref 0 in
      let rec spawn () =
        let spawned_at = Bdd.now_monotonic () in
        match Unix.fork () with
        | exception Unix.Unix_error (e, _, _) ->
          log "fork failed: %s" (Unix.error_message e);
          crashed spawned_at (Unix.WEXITED 127)
        | 0 ->
          (* The child: everything heavy lives here, after the fork. *)
          exit
            (Daemon.serve_fd
               { dcfg with Daemon.restarts = !restarts }
               ~path ~listen_fd)
        | pid -> (
          Atomic.set child pid;
          if !restarts > 0 then
            log "child %d serving (restart %d)" pid !restarts;
          let status = waitpid_retry pid in
          Atomic.set child (-1);
          match status with
          | Unix.WEXITED 0 ->
            cleanup ();
            0
          | Unix.WEXITED 3 ->
            (* The child refused its own config / socket: restarting
               cannot help. *)
            log "child setup failed; not restarting";
            cleanup ();
            3
          | status when Atomic.get stopping ->
            (* We asked it to stop and it died un-gracefully; honour
               the shutdown rather than restart against the operator. *)
            log "child %s during shutdown" (describe_status status);
            cleanup ();
            1
          | status -> crashed spawned_at status)
      and crashed spawned_at status =
        let now = Bdd.now_monotonic () in
        crashes :=
          now :: List.filter (fun t -> now -. t <= cfg.window_s) !crashes;
        log "child %s (%d crash%s in the last %.0fs window)"
          (describe_status status)
          (List.length !crashes)
          (if List.length !crashes = 1 then "" else "es")
          cfg.window_s;
        if List.length !crashes >= cfg.max_crashes then begin
          log
            "crash loop: %d crashes within %.0fs (limit %d); giving up — \
             last child %s"
            (List.length !crashes) cfg.window_s cfg.max_crashes
            (describe_status status);
          cleanup ();
          3
        end
        else begin
          (* A child that outlived the crash window was healthy:
             start the backoff ladder over. *)
          if now -. spawned_at > cfg.window_s then
            backoff := cfg.backoff0_ms;
          let jitter = Random.float (0.25 *. !backoff) in
          let delay_s = (!backoff +. jitter) /. 1000. in
          backoff := Float.min (2. *. !backoff) cfg.backoff_max_ms;
          (try Unix.sleepf delay_s
           with Unix.Unix_error (Unix.EINTR, _, _) -> ());
          incr restarts;
          if Atomic.get stopping then begin
            cleanup ();
            1
          end
          else spawn ()
        end
      in
      spawn ())
