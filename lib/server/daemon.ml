(* The serve loop.  Structure:

     main thread          reader threads           pool workers
     ------------         --------------           ------------
     bind + accept   -->  one per connection  -->  one task per check
     (select tick)        Frame.read loop          Engine.check_one
     watchdog + reap      parse + dispatch         write reply frame

   Stdio mode is the same picture minus accept: the main thread is the
   single reader (and a timer thread ticks the watchdog when a
   high-water mark is set).  Replies are written by whoever produced
   them (reader for ping/cancel/status/shed, worker for checks) under
   a per-connection write mutex, so frames never interleave.

   Admission discipline: a check is either queued or shed {e from the
   reader thread} — the reader never parks waiting for room.  Shed
   paths (duplicate id, in-flight cap, cold model under memory
   pressure, full pending queue) each answer immediately with a
   structured reply, so the one-reply-per-frame contract holds at any
   load.

   Drain discipline: SIGINT / SIGTERM / the shutdown op set one [stop]
   atomic.  Readers wake (signal-interrupted reads return through
   [Frame.read]'s [should_stop]; socket readers are woken by a
   [shutdown SHUTDOWN_RECEIVE] from the main loop), stop reading,
   await their in-flight futures so every accepted request still gets
   its reply, and exit.  Nothing sets the per-request cancel flags on
   drain — that path is reserved for the cancel op and for client
   disconnects. *)

type config = {
  socket : string option;
  jobs : int;
  capacity : int;
  debug : bool;
  max_pending : int option;
  max_inflight : int option;
  default_timeout : float option;
  default_node_limit : int option;
  max_timeout : float option;
  mem_high_water : int option;
  state_dir : string option;
  crash_after : int option;
  restarts : int;
}

(* The [child-crash:K] fault site: after the [K]-th check reply has
   been written, the process SIGKILLs itself — no handlers, no
   cleanup, exactly the crash the supervisor must absorb.  One armed
   countdown per process ([min_int] = disarmed); [serve] arms it from
   the config. *)
let crash_countdown = Atomic.make min_int

let crash_tick () =
  if Atomic.get crash_countdown <> min_int then begin
    let before = Atomic.fetch_and_add crash_countdown (-1) in
    if before = 1 then Unix.kill (Unix.getpid ()) Sys.sigkill
  end

(* One client connection: its fds, write lock, and the cancellation
   flags of its in-flight checks (ids are client-chosen and scoped to
   the connection). *)
type conn = {
  fd_in : Unix.file_descr;
  fd_out : Unix.file_descr;
  write_lock : Mutex.t;
  inflight_lock : Mutex.t;
  inflight : (string, bool Atomic.t) Hashtbl.t;
  mutable futures : unit Parallel.Pool.future list;
}

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* Best-effort reply: a client that vanished mid-check loses its reply
   and nothing else. *)
let send conn payload =
  with_lock conn.write_lock @@ fun () ->
  match Frame.write conn.fd_out payload with
  | () -> ()
  | exception Frame.Closed -> ()

(* Server-side budget defaults: a request that names no timeout /
   node-limit gets the server's, and whatever timeout wins is clamped
   to the ceiling.  A request budget below the ceiling is honoured
   as-is — the ceiling caps, it never extends. *)
let apply_defaults cfg (o : Protocol.options) =
  let timeout =
    let requested =
      match o.Protocol.timeout with
      | None -> cfg.default_timeout
      | some -> some
    in
    match (requested, cfg.max_timeout) with
    | Some t, Some ceiling -> Some (Float.min t ceiling)
    | None, Some ceiling -> Some ceiling
    | t, None -> t
  in
  let node_limit =
    match o.Protocol.node_limit with
    | None -> cfg.default_node_limit
    | some -> some
  in
  { o with Protocol.timeout; node_limit }

(* ------------------------------------------------------------------ *)
(* Request processing (runs on a pool worker) *)

let engine_opts (o : Protocol.options) ~cancel =
  {
    Engine.fair = o.Protocol.fair;
    fair_engine = o.Protocol.fair_engine;
    traces = o.Protocol.traces;
    stats = o.Protocol.stats;
    certify = o.Protocol.certify;
    debug = false (* exceptions must become replies, never crashes *);
    timeout = o.Protocol.timeout;
    node_limit = o.Protocol.node_limit;
    step_limit = o.Protocol.step_limit;
    retries = o.Protocol.retries;
    retry_factor = o.Protocol.retry_factor;
    cancel;
  }

let describe_compile_error = function
  | Smv.Lexer.Error (msg, pos) ->
    Format.asprintf "model: lexical error at %a: %s" Smv.Ast.pp_pos pos msg
  | Smv.Parser.Error (msg, pos) ->
    Format.asprintf "model: syntax error at %a: %s" Smv.Ast.pp_pos pos msg
  | Smv.Compile.Error (msg, pos) | Smv.Flatten.Error (msg, pos) ->
    let where =
      match pos with
      | Some p -> Format.asprintf " at %a" Smv.Ast.pp_pos p
      | None -> ""
    in
    Printf.sprintf "model: error%s: %s" where msg
  | e -> raise e

(* Compile into the (locked) cache entry; clusters are rooted for the
   entry's whole life, exactly as the one-shot CLI roots them for the
   run. *)
let build_entry (entry : Cache.entry) ~partitioned ~static_order source =
  match entry.Cache.compiled with
  | Some c -> Ok (c, true)
  | None -> (
    match Smv.load_string ~partitioned ~static_order source with
    | compiled ->
      let m = compiled.Smv.Compile.model in
      let (_ : Bdd.root) =
        Bdd.add_root m.Kripke.man (fun () -> compiled.Smv.Compile.clusters)
      in
      entry.Cache.compiled <- Some compiled;
      Ok (compiled, false)
    | exception
        (( Smv.Lexer.Error _ | Smv.Parser.Error _ | Smv.Compile.Error _
         | Smv.Flatten.Error _ ) as e) ->
      Error (describe_compile_error e))

(* Check one request on its (locked) warm entry.  Returns the reply
   payload; never raises. *)
let process cache ~id ~model ~specs ~(options : Protocol.options) ~cancel =
  let t0 = Bdd.now_monotonic () in
  let static_order = options.Protocol.reorder <> `None in
  let key =
    Cache.digest ~source:model ~partitioned:options.Protocol.partitioned
      ~static_order
  in
  let entry, _ = Cache.acquire cache ~key in
  Fun.protect ~finally:(fun () -> Cache.release cache entry) @@ fun () ->
  with_lock entry.Cache.lock @@ fun () ->
  match
    build_entry entry ~partitioned:options.Protocol.partitioned ~static_order
      model
  with
  | Error msg -> Protocol.error_reply ~id msg
  | Ok (compiled, warm) -> (
    let m = compiled.Smv.Compile.model in
    let man = m.Kripke.man in
    let opts = engine_opts options ~cancel in
    (* Request-scoped manager state: a previous request must leak
       nothing into this one.  The engine already disarms its own
       faults on every exit path; disarming again here is the
       belt-and-braces for a worker that died mid-request. *)
    Bdd.Fault.disarm man;
    let fired_before = Bdd.Fault.fired man in
    let stats_before = Bdd.stats man in
    Bdd.reset_peak man;
    (match options.Protocol.reorder with
    | `None | `Once -> ()
    | `Auto ->
      Bdd.Reorder.set_auto man (Some options.Protocol.reorder_threshold));
    Fun.protect ~finally:(fun () -> Bdd.Reorder.set_auto man None)
    @@ fun () ->
    match
      (* An initial sweep for a cold `once entry; a warm one is
         already sifted and a repeat sweep is a cheap no-op settle. *)
      (match options.Protocol.reorder with
      | `Once when not warm -> (
        match Bdd.reorder man with () -> () | exception Out_of_memory -> ())
      | _ -> ());
      (* Warm the reachability memo (and observe whether it already
         was): this is the fixpoint a spec-only change gets for free
         on the next request.  Budgeted — a breach leaves the memo
         unset and the specs still run. *)
      let reach_reused = Kripke.reach_memo m <> None in
      let reach_states =
        let limits = Engine.mk_limits opts in
        match
          Bdd.Limits.with_attached man limits (fun () ->
              Kripke.reachable ~limits m)
        with
        | reach -> Some (Kripke.count_states m reach)
        | exception Bdd.Limits.Exhausted _ -> None
      in
      (* Extra specs are request data, and a request must never be
         able to raise on a worker: each one compiles to [Ok] or to a
         structured error naming the offending spec text, and the
         first error becomes this request's (only) reply. *)
      let extra_results =
        List.map
          (fun text ->
            match Smv.Compile.compile_expr compiled text with
            | f -> Ok (text, f)
            | exception
                ( Smv.Lexer.Error (msg, _)
                | Smv.Parser.Error (msg, _)
                | Smv.Compile.Error (msg, _) ) ->
              Error (Printf.sprintf "spec %S: %s" text msg))
          specs
      in
      match
        List.find_map
          (function Error msg -> Some msg | Ok _ -> None)
          extra_results
      with
      | Some msg -> Error msg
      | None ->
        let extra =
          List.filter_map
            (function Ok sp -> Some sp | Error _ -> None)
            extra_results
        in
        let all_specs = compiled.Smv.Compile.specs @ extra in
        let buf = Buffer.create 512 in
        let ppf = Format.formatter_of_buffer buf in
        let reports =
          if all_specs = [] then begin
            Format.fprintf ppf "no specifications to check@.";
            []
          end
          else
            List.filter_map
              (fun spec ->
                if Atomic.get cancel then None
                else
                  Some
                    (Protocol.
                       {
                         sv_name = fst spec;
                         sv_report =
                           Engine.check_one ppf m ~opts
                             ~clusters:(fun () ->
                               compiled.Smv.Compile.clusters)
                             ?inject:options.Protocol.inject spec;
                       }))
              all_specs
        in
        Format.pp_print_flush ppf ();
        Ok (reach_reused, reach_states, reports, Buffer.contents buf)
    with
    | Ok (reach_reused, reach_states, verdicts, output) ->
      let stats =
        if options.Protocol.stats then
          Some (Bdd.diff_stats (Bdd.stats man) stats_before)
        else None
      in
      let faults_fired = Bdd.Fault.fired man - fired_before in
      let exit_code =
        Engine.exit_code ~interrupted:(Atomic.get cancel)
          (List.map (fun sv -> sv.Protocol.sv_report) verdicts)
      in
      Protocol.check_reply ~id ~exit_code ~verdicts ~output ~warm
        ~reach_reused ?reach_states ?stats ~faults_fired
        ~time_ms:((Bdd.now_monotonic () -. t0) *. 1000.) ()
    | Error msg -> Protocol.error_reply ~id msg)

(* The never-raise wrapper around [process]: whatever escapes the
   engine's own isolation becomes an error reply, and the server
   lives on. *)
let process_safe cache ~debug ~id ~model ~specs ~options ~cancel =
  match process cache ~id ~model ~specs ~options ~cancel with
  | reply -> reply
  | exception e ->
    let msg = Printf.sprintf "internal error: %s" (Printexc.to_string e) in
    let msg =
      if debug then msg ^ "\n" ^ Printexc.get_backtrace () else msg
    in
    Protocol.error_reply ~id msg

(* ------------------------------------------------------------------ *)
(* Connection handling (reader side) *)

(* The status reply is assembled (and sent) inline on the reader
   thread — a health probe must answer promptly even when every worker
   is busy and the queue is full. *)
let send_status cfg cache pool ov persist conn =
  let s = Overload.stats ov in
  let pc =
    match persist with
    | Some p -> Persist.counters p
    | None ->
      { Persist.snapshots = 0; restores = 0; quarantines = 0 }
  in
  let infos = Cache.snapshot cache in
  let mem_live =
    List.fold_left (fun acc i -> acc + i.Cache.i_live) 0 infos
  in
  let faults =
    List.fold_left (fun acc i -> acc + i.Cache.i_faults) 0 infos
  in
  let models =
    List.map
      (fun (i : Cache.info) ->
        Protocol.
          {
            ms_key = i.Cache.i_key;
            ms_busy = i.Cache.i_busy;
            ms_uses = i.Cache.i_uses;
            ms_warm = i.Cache.i_warm;
            ms_live_nodes = i.Cache.i_live;
            ms_clamped = i.Cache.i_clamped;
          })
      infos
  in
  send conn
    (Protocol.status_reply
       Protocol.
         {
           ss_uptime_s = s.Overload.uptime_s;
           ss_workers = cfg.jobs;
           ss_queue_depth = Parallel.Pool.pending pool;
           ss_max_pending = cfg.max_pending;
           ss_inflight = s.Overload.inflight;
           ss_shed_queue = s.Overload.shed_queue;
           ss_shed_inflight = s.Overload.shed_inflight;
           ss_shed_cold = s.Overload.shed_cold;
           ss_watchdog_evictions = s.Overload.evictions;
           ss_cache_clamps = s.Overload.clamps;
           ss_level_transitions = s.Overload.transitions;
           ss_pressure_level = s.Overload.level;
           ss_mem_live_nodes = mem_live;
           ss_mem_high_water = cfg.mem_high_water;
           ss_respawns = Parallel.Pool.respawns pool;
           ss_avg_check_ms =
             Option.map (fun t -> t *. 1000.) s.Overload.avg_check_s;
           ss_faults_fired = faults;
           ss_snapshots = pc.Persist.snapshots;
           ss_restores = pc.Persist.restores;
           ss_quarantines = pc.Persist.quarantines;
           ss_restarts = cfg.restarts;
           ss_checks_el = s.Overload.checks_el;
           ss_checks_lockstep = s.Overload.checks_lockstep;
           ss_cache_capacity = Cache.capacity cache;
           ss_models = models;
         })

let handle_request cfg cache pool ov persist conn stop payload =
  match Protocol.parse_request payload with
  | Error msg -> send conn (Protocol.error_reply msg)
  | Ok Protocol.Ping -> send conn Protocol.pong_reply
  | Ok Protocol.Status -> send_status cfg cache pool ov persist conn
  | Ok Protocol.Shutdown ->
    send conn Protocol.shutdown_reply;
    Atomic.set stop true
  | Ok (Protocol.Cancel { id }) ->
    let found =
      with_lock conn.inflight_lock @@ fun () ->
      match Hashtbl.find_opt conn.inflight id with
      | Some cancel ->
        Atomic.set cancel true;
        true
      | None -> false
    in
    send conn (Protocol.cancel_reply ~id ~found)
  | Ok (Protocol.Check { id; model; specs; options }) -> (
    let overloaded reason =
      Overload.shed ov reason;
      let queue_depth = Parallel.Pool.pending pool in
      send conn
        (Protocol.overloaded_reply ~id
           ~reason:(Overload.reason_string reason)
           ~queue_depth
           ~retry_after_ms:
             (Overload.retry_after_ms ov ~queue_depth ~workers:cfg.jobs))
    in
    let cancel = Atomic.make false in
    (* Duplicate test, cap test and registration are one atomic step —
       two racing frames with the same id cannot both register. *)
    let admission =
      with_lock conn.inflight_lock @@ fun () ->
      if Hashtbl.mem conn.inflight id then `Duplicate
      else
        match cfg.max_inflight with
        | Some cap when Hashtbl.length conn.inflight >= cap ->
          `Shed Overload.Inflight_cap
        | Some _ | None ->
          Hashtbl.add conn.inflight id cancel;
          `Admitted
    in
    let drop_id () =
      with_lock conn.inflight_lock (fun () -> Hashtbl.remove conn.inflight id)
    in
    match admission with
    | `Duplicate ->
      (* The live check keeps the id: answering the duplicate with its
         reply would leave one of the two frames reply-less. *)
      send conn
        (Protocol.error_reply ~id
           (Printf.sprintf "duplicate in-flight id %S" id))
    | `Shed reason -> overloaded reason
    | `Admitted ->
      let refuse_cold =
        (not (Overload.admit_cold ov))
        &&
        let static_order = options.Protocol.reorder <> `None in
        let key =
          Cache.digest ~source:model
            ~partitioned:options.Protocol.partitioned ~static_order
        in
        not (Cache.is_warm cache ~key)
      in
      if refuse_cold then begin
        drop_id ();
        overloaded Overload.Memory_pressure
      end
      else begin
        let options = apply_defaults cfg options in
        let task () =
          let t0 = Bdd.now_monotonic () in
          let reply =
            process_safe cache ~debug:cfg.debug ~id ~model ~specs ~options
              ~cancel
          in
          drop_id ();
          send conn reply;
          crash_tick ();
          Overload.checked_engine ov
            ~lockstep:(options.Protocol.fair_engine = Ctl.Fair.Lockstep);
          Overload.finished ov (Bdd.now_monotonic () -. t0)
        in
        (* Count the admission before queueing so [inflight] can never
           under-report a queued check; a lost queue-slot race retracts
           it. *)
        Overload.admitted ov;
        match Parallel.Pool.try_submit pool task with
        | None ->
          Overload.retract ov;
          drop_id ();
          overloaded Overload.Queue_full
        | Some future ->
          (* Prune settled futures as we append — a long-lived
             connection must not accumulate one closure per request
             served. *)
          with_lock conn.inflight_lock (fun () ->
              conn.futures <-
                future
                :: List.filter
                     (fun f -> not (Parallel.Pool.is_settled f))
                     conn.futures)
      end)

(* Read frames until EOF or drain; then settle the connection's
   in-flight checks.  A client that disconnected (EOF while the server
   is not draining) cancels its own in-flight requests — nobody is
   listening for those replies. *)
let reader_loop cfg cache pool ov persist conn stop =
  let rec loop () =
    match Frame.read ~should_stop:(fun () -> Atomic.get stop) conn.fd_in with
    | Some payload ->
      handle_request cfg cache pool ov persist conn stop payload;
      if not (Atomic.get stop) then loop ()
    | None -> ()
    | exception Frame.Closed -> ()
    | exception Frame.Oversized n ->
      send conn
        (Protocol.error_reply
           (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n
              Frame.max_frame))
      (* framing is lost beyond this point: drop the connection *)
  in
  loop ();
  if not (Atomic.get stop) then
    with_lock conn.inflight_lock (fun () ->
        Hashtbl.iter (fun _ c -> Atomic.set c true) conn.inflight);
  let futures = with_lock conn.inflight_lock (fun () -> conn.futures) in
  List.iter (fun f -> ignore (Parallel.Pool.await f)) futures

let make_conn fd_in fd_out =
  {
    fd_in;
    fd_out;
    write_lock = Mutex.create ();
    inflight_lock = Mutex.create ();
    inflight = Hashtbl.create 8;
    futures = [];
  }

(* ------------------------------------------------------------------ *)
(* Entry point *)

let install_signals stop =
  let handle _ = Atomic.set stop true in
  let try_install s h =
    match Sys.set_signal s h with
    | () -> ()
    | exception (Invalid_argument _ | Sys_error _) -> ()
  in
  (* EPIPE must surface as a write error (handled per-connection), not
     kill the process. *)
  try_install Sys.sigpipe Sys.Signal_ignore;
  try_install Sys.sigint (Sys.Signal_handle handle);
  try_install Sys.sigterm (Sys.Signal_handle handle)

(* Unlink a socket path, logging (never raising) on failure: a path
   we cannot remove means the next bind will fail mysteriously, so the
   errno belongs in the log, not in a swallowed exception.  ENOENT is
   the expected case on crash paths (nothing to clean) and stays
   silent. *)
let unlink_socket ~what path =
  match Unix.unlink path with
  | () -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | exception Unix.Unix_error (e, _, _) ->
    Format.eprintf
      "smv_check --serve: warning: cannot remove %s socket %s: %s@." what
      path (Unix.error_message e)

(* Claim [path] and return a listening fd.  A stale socket file from a
   previous run (or a SIGKILLed child) would make bind fail; replacing
   it is the conventional daemon behaviour — but only a socket.
   Unlinking whatever else sits at the path (a model file passed by
   mistake, say) would destroy user data on a typo. *)
let bind_socket ~path =
  let path_ok =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } ->
      unlink_socket ~what:"stale" path;
      true
    | { Unix.st_kind = _; _ } -> false
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> true
    | exception Unix.Unix_error _ -> true (* let bind report it *)
  in
  if not path_ok then
    Error
      (Printf.sprintf "%s exists and is not a socket; refusing to replace it"
         path)
  else begin
    let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match
      Unix.bind listen_fd (Unix.ADDR_UNIX path);
      Unix.listen listen_fd 64
    with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot listen on %s: %s" path (Unix.error_message e))
    | () -> Ok listen_fd
  end

(* The idle-pressure persistence tick, shared by both serve modes:
   snapshot dirty idle models, but only when the overload ladder is
   at level 0 (low water) — under pressure the watchdog is busy
   evicting, and adding disk writes would help nothing — and at most
   once a second, so a hot model is not re-dumped 4x per second. *)
let persist_ticker ov cache persist =
  let last = ref (Bdd.now_monotonic ()) in
  fun () ->
    match persist with
    | Some p when Overload.level ov = 0 ->
      let now = Bdd.now_monotonic () in
      if now -. !last >= 1.0 then begin
        last := now;
        Persist.tick p cache
      end
    | Some _ | None -> ()

let serve_stdio cfg cache pool ov persist stop =
  let conn = make_conn Unix.stdin Unix.stdout in
  (* No accept loop to piggyback the watchdog on: give it a timer
     thread, but only when a high-water mark (or a state dir) makes
     it do anything. *)
  let ptick = persist_ticker ov cache persist in
  let watchdog_stop = Atomic.make false in
  let watchdog_thread =
    match (cfg.mem_high_water, persist) with
    | None, None -> None
    | Some _, _ | _, Some _ ->
      Some
        (Thread.create
           (fun () ->
             while not (Atomic.get watchdog_stop) do
               Thread.delay 0.25;
               if not (Atomic.get watchdog_stop) then begin
                 Overload.watchdog ov cache;
                 ptick ()
               end
             done)
           ())
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set watchdog_stop true;
      Option.iter Thread.join watchdog_thread)
    (fun () -> reader_loop cfg cache pool ov persist conn stop);
  0

(* The accept loop proper, over an already-listening fd.  [owns_path]
   says whether this process should unlink the socket path on exit:
   true for a standalone daemon, false for a supervised child (the
   supervisor owns the path and the fd; a child that unlinked it
   would tear the endpoint out from under its own successor). *)
let serve_listening cfg cache pool ov persist stop ~path ~listen_fd
    ~owns_path =
  Format.eprintf "smv_check: serving on %s (%d worker%s)@." path cfg.jobs
    (if cfg.jobs = 1 then "" else "s");
  let ptick = persist_ticker ov cache persist in
  let conns_lock = Mutex.create () in
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 8 in
  let next_id = ref 0 in
  (* Reader threads are tracked in a table and reaped as they
     finish: each pushes itself onto [finished] on exit, and the
     accept loop joins and drops it on the next tick.  Both the
     registration and the reap run on the main thread, so a thread
     can never be reaped before it is registered. *)
  let threads : (int, Thread.t) Hashtbl.t = Hashtbl.create 8 in
  let finished : Thread.t list ref = ref [] in
  let reap () =
    let fin =
      with_lock conns_lock @@ fun () ->
      let f = !finished in
      finished := [];
      f
    in
    List.iter
      (fun t ->
        Thread.join t;
        with_lock conns_lock (fun () -> Hashtbl.remove threads (Thread.id t)))
      fin
  in
  let accept_one fd =
    let conn = make_conn fd fd in
    let id =
      with_lock conns_lock @@ fun () ->
      incr next_id;
      Hashtbl.replace conns !next_id conn;
      !next_id
    in
    let thread =
      Thread.create
        (fun () ->
          Fun.protect
            ~finally:(fun () ->
              with_lock conns_lock (fun () ->
                  Hashtbl.remove conns id;
                  finished := Thread.self () :: !finished);
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () -> reader_loop cfg cache pool ov persist conn stop))
        ()
    in
    with_lock conns_lock (fun () ->
        Hashtbl.replace threads (Thread.id thread) thread)
  in
  (* Accept with a select tick so the loop notices [stop] promptly
     even when no connection ever arrives; the same tick drives
     the watchdog, the thread reaper and the persistence layer,
     throttled to the tick period even when accepts keep select from
     timing out. *)
  let last_tick = ref (Bdd.now_monotonic ()) in
  let tick () =
    let now = Bdd.now_monotonic () in
    if now -. !last_tick >= 0.25 then begin
      last_tick := now;
      reap ();
      Overload.watchdog ov cache;
      ptick ()
    end
  in
  let rec accept_loop () =
    if not (Atomic.get stop) then begin
      (match Unix.select [ listen_fd ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept listen_fd with
        | fd, _ -> accept_one fd
        | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _)
          ->
          ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      tick ();
      accept_loop ()
    end
  in
  accept_loop ();
  (* Drain: wake readers parked in [read] by shutting their receive
     sides, then join them (each settles its in-flight futures
     before exiting). *)
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  with_lock conns_lock (fun () ->
      Hashtbl.iter
        (fun _ c ->
          try Unix.shutdown c.fd_in Unix.SHUTDOWN_RECEIVE
          with Unix.Unix_error _ -> ())
        conns);
  reap ();
  let remaining =
    with_lock conns_lock (fun () ->
        Hashtbl.fold (fun _ t acc -> t :: acc) threads [])
  in
  List.iter Thread.join remaining;
  if owns_path then unlink_socket ~what:"served" path;
  0

let validate cfg =
  let bad_opt name = function
    | Some n when n < 1 -> Some (name ^ " must be >= 1")
    | _ -> None
  in
  let bad_time name = function
    | Some t when t <= 0. -> Some (name ^ " must be > 0")
    | _ -> None
  in
  List.find_map Fun.id
    [
      (if cfg.jobs < 1 then Some "jobs must be >= 1" else None);
      (if cfg.capacity < 1 then Some "cache capacity must be >= 1" else None);
      bad_opt "max-pending" cfg.max_pending;
      bad_opt "max-inflight" cfg.max_inflight;
      bad_opt "default-node-limit" cfg.default_node_limit;
      bad_opt "mem-high-water" cfg.mem_high_water;
      bad_opt "child-crash" cfg.crash_after;
      bad_time "default-timeout" cfg.default_timeout;
      bad_time "max-timeout" cfg.max_timeout;
    ]

(* Shared server setup + teardown around a mode-specific [run]: arm
   the crash fault site, build pool / cache / overload state, rehydrate
   warm models from the state dir, and on a {e graceful} exit flush
   them back.  A crash by definition skips the flush — that is what
   the watchdog ticks and the rehydrate path are for. *)
let serve_with cfg run =
  let invalid msg =
    Format.eprintf "smv_check --serve: %s@." msg;
    3
  in
  match validate cfg with
  | Some msg -> invalid msg
  | None -> (
    match
      Option.map
        (fun dir -> Persist.create ~dir ~debug:cfg.debug)
        cfg.state_dir
    with
    | exception Invalid_argument msg -> invalid msg
    | persist ->
      (match cfg.crash_after with
      | Some k -> Atomic.set crash_countdown k
      | None -> Atomic.set crash_countdown min_int);
      let stop = Atomic.make false in
      install_signals stop;
      let cache = Cache.create ~capacity:cfg.capacity in
      Option.iter
        (fun p ->
          let restored = Persist.rehydrate p cache in
          if restored > 0 && cfg.debug then
            Format.eprintf "smv_check --serve: rehydrated %d warm model%s@."
              restored
              (if restored = 1 then "" else "s"))
        persist;
      let pool = Parallel.Pool.create ?max_pending:cfg.max_pending cfg.jobs in
      let ov = Overload.create ?mem_high_water:cfg.mem_high_water () in
      Fun.protect
        ~finally:(fun () -> Parallel.Pool.shutdown pool)
        (fun () ->
          let code = run cfg cache pool ov persist stop in
          Option.iter (fun p -> Persist.flush p cache) persist;
          code))

let serve cfg =
  serve_with cfg (fun cfg cache pool ov persist stop ->
      match cfg.socket with
      | None -> serve_stdio cfg cache pool ov persist stop
      | Some path -> (
        match bind_socket ~path with
        | Error msg ->
          Format.eprintf "smv_check --serve: %s@." msg;
          3
        | Ok listen_fd ->
          serve_listening cfg cache pool ov persist stop ~path ~listen_fd
            ~owns_path:true))

(* A supervised child: the parent already holds the listening fd (so
   clients never see ECONNREFUSED across a restart) and owns the
   socket path. *)
let serve_fd cfg ~path ~listen_fd =
  serve_with cfg (fun cfg cache pool ov persist stop ->
      serve_listening cfg cache pool ov persist stop ~path ~listen_fd
        ~owns_path:false)

(* ------------------------------------------------------------------ *)
(* The one-shot status client (--status) *)

let status_client ~socket:path =
  let fail fmt =
    Format.kasprintf
      (fun msg ->
        Format.eprintf "smv_check --status: %s@." msg;
        3)
      fmt
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    fail "cannot connect to %s: %s" path (Unix.error_message e)
  | () -> (
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    match
      Frame.write fd {|{"op":"status"}|};
      Frame.read fd
    with
    | Some payload ->
      print_endline payload;
      0
    | None | (exception Frame.Closed) ->
      fail "connection closed without a reply"
    | exception Frame.Oversized n ->
      fail "oversized status reply (%d bytes)" n)
