(* The serve loop.  Structure:

     main thread          reader threads           pool workers
     ------------         --------------           ------------
     bind + accept   -->  one per connection  -->  one task per check
     (select tick)        Frame.read loop          Engine.check_one
                          parse + dispatch         write reply frame

   Stdio mode is the same picture minus accept: the main thread is the
   single reader.  Replies are written by whoever produced them
   (reader for ping/cancel, worker for checks) under a per-connection
   write mutex, so frames never interleave.

   Drain discipline: SIGINT / SIGTERM / the shutdown op set one [stop]
   atomic.  Readers wake (signal-interrupted reads return through
   [Frame.read]'s [should_stop]; socket readers are woken by a
   [shutdown SHUTDOWN_RECEIVE] from the main loop), stop reading,
   await their in-flight futures so every accepted request still gets
   its reply, and exit.  Nothing sets the per-request cancel flags on
   drain — that path is reserved for the cancel op and for client
   disconnects. *)

type config = {
  socket : string option;
  jobs : int;
  capacity : int;
  debug : bool;
}

(* One client connection: its fds, write lock, and the cancellation
   flags of its in-flight checks (ids are client-chosen and scoped to
   the connection). *)
type conn = {
  fd_in : Unix.file_descr;
  fd_out : Unix.file_descr;
  write_lock : Mutex.t;
  inflight_lock : Mutex.t;
  inflight : (string, bool Atomic.t) Hashtbl.t;
  mutable futures : unit Parallel.Pool.future list;
}

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* Best-effort reply: a client that vanished mid-check loses its reply
   and nothing else. *)
let send conn payload =
  with_lock conn.write_lock @@ fun () ->
  match Frame.write conn.fd_out payload with
  | () -> ()
  | exception Frame.Closed -> ()

(* ------------------------------------------------------------------ *)
(* Request processing (runs on a pool worker) *)

let engine_opts (o : Protocol.options) ~cancel =
  {
    Engine.fair = o.Protocol.fair;
    traces = o.Protocol.traces;
    stats = o.Protocol.stats;
    certify = o.Protocol.certify;
    debug = false (* exceptions must become replies, never crashes *);
    timeout = o.Protocol.timeout;
    node_limit = o.Protocol.node_limit;
    step_limit = o.Protocol.step_limit;
    retries = o.Protocol.retries;
    retry_factor = o.Protocol.retry_factor;
    cancel;
  }

let describe_compile_error = function
  | Smv.Lexer.Error (msg, pos) ->
    Format.asprintf "model: lexical error at %a: %s" Smv.Ast.pp_pos pos msg
  | Smv.Parser.Error (msg, pos) ->
    Format.asprintf "model: syntax error at %a: %s" Smv.Ast.pp_pos pos msg
  | Smv.Compile.Error (msg, pos) | Smv.Flatten.Error (msg, pos) ->
    let where =
      match pos with
      | Some p -> Format.asprintf " at %a" Smv.Ast.pp_pos p
      | None -> ""
    in
    Printf.sprintf "model: error%s: %s" where msg
  | e -> raise e

(* Compile into the (locked) cache entry; clusters are rooted for the
   entry's whole life, exactly as the one-shot CLI roots them for the
   run. *)
let build_entry (entry : Cache.entry) ~partitioned ~static_order source =
  match entry.Cache.compiled with
  | Some c -> Ok (c, true)
  | None -> (
    match Smv.load_string ~partitioned ~static_order source with
    | compiled ->
      let m = compiled.Smv.Compile.model in
      let (_ : Bdd.root) =
        Bdd.add_root m.Kripke.man (fun () -> compiled.Smv.Compile.clusters)
      in
      entry.Cache.compiled <- Some compiled;
      Ok (compiled, false)
    | exception
        (( Smv.Lexer.Error _ | Smv.Parser.Error _ | Smv.Compile.Error _
         | Smv.Flatten.Error _ ) as e) ->
      Error (describe_compile_error e))

(* Check one request on its (locked) warm entry.  Returns the reply
   payload; never raises. *)
let process cache ~id ~model ~specs ~(options : Protocol.options) ~cancel =
  let t0 = Bdd.now_monotonic () in
  let static_order = options.Protocol.reorder <> `None in
  let key =
    Cache.digest ~source:model ~partitioned:options.Protocol.partitioned
      ~static_order
  in
  let entry, _ = Cache.acquire cache ~key in
  Fun.protect ~finally:(fun () -> Cache.release cache entry) @@ fun () ->
  with_lock entry.Cache.lock @@ fun () ->
  match
    build_entry entry ~partitioned:options.Protocol.partitioned ~static_order
      model
  with
  | Error msg -> Protocol.error_reply ~id msg
  | Ok (compiled, warm) -> (
    let m = compiled.Smv.Compile.model in
    let man = m.Kripke.man in
    let opts = engine_opts options ~cancel in
    (* Request-scoped manager state: a previous request must leak
       nothing into this one.  The engine already disarms its own
       faults on every exit path; disarming again here is the
       belt-and-braces for a worker that died mid-request. *)
    Bdd.Fault.disarm man;
    let fired_before = Bdd.Fault.fired man in
    let stats_before = Bdd.stats man in
    Bdd.reset_peak man;
    (match options.Protocol.reorder with
    | `None | `Once -> ()
    | `Auto ->
      Bdd.Reorder.set_auto man (Some options.Protocol.reorder_threshold));
    Fun.protect ~finally:(fun () -> Bdd.Reorder.set_auto man None)
    @@ fun () ->
    match
      (* An initial sweep for a cold `once entry; a warm one is
         already sifted and a repeat sweep is a cheap no-op settle. *)
      (match options.Protocol.reorder with
      | `Once when not warm -> (
        match Bdd.reorder man with () -> () | exception Out_of_memory -> ())
      | _ -> ());
      (* Warm the reachability memo (and observe whether it already
         was): this is the fixpoint a spec-only change gets for free
         on the next request.  Budgeted — a breach leaves the memo
         unset and the specs still run. *)
      let reach_reused = Kripke.reach_memo m <> None in
      let reach_states =
        let limits = Engine.mk_limits opts in
        match
          Bdd.Limits.with_attached man limits (fun () ->
              Kripke.reachable ~limits m)
        with
        | reach -> Some (Kripke.count_states m reach)
        | exception Bdd.Limits.Exhausted _ -> None
      in
      let extra =
        List.map
          (fun text ->
            match Smv.Compile.compile_expr compiled text with
            | f -> (text, f)
            | exception
                ( Smv.Lexer.Error (msg, _)
                | Smv.Parser.Error (msg, _)
                | Smv.Compile.Error (msg, _) ) ->
              failwith (Printf.sprintf "spec %S: %s" text msg))
          specs
      in
      let all_specs = compiled.Smv.Compile.specs @ extra in
      let buf = Buffer.create 512 in
      let ppf = Format.formatter_of_buffer buf in
      let reports =
        if all_specs = [] then begin
          Format.fprintf ppf "no specifications to check@.";
          []
        end
        else
          List.filter_map
            (fun spec ->
              if Atomic.get cancel then None
              else
                Some
                  (Protocol.
                     {
                       sv_name = fst spec;
                       sv_report =
                         Engine.check_one ppf m ~opts
                           ~clusters:(fun () -> compiled.Smv.Compile.clusters)
                           ?inject:options.Protocol.inject spec;
                     }))
            all_specs
      in
      Format.pp_print_flush ppf ();
      (reach_reused, reach_states, reports, Buffer.contents buf)
    with
    | reach_reused, reach_states, verdicts, output ->
      let stats =
        if options.Protocol.stats then
          Some (Bdd.diff_stats (Bdd.stats man) stats_before)
        else None
      in
      let faults_fired = Bdd.Fault.fired man - fired_before in
      let exit_code =
        Engine.exit_code ~interrupted:(Atomic.get cancel)
          (List.map (fun sv -> sv.Protocol.sv_report) verdicts)
      in
      Protocol.check_reply ~id ~exit_code ~verdicts ~output ~warm
        ~reach_reused ?reach_states ?stats ~faults_fired
        ~time_ms:((Bdd.now_monotonic () -. t0) *. 1000.) ()
    | exception Failure msg -> Protocol.error_reply ~id msg)

(* The never-raise wrapper around [process]: whatever escapes the
   engine's own isolation becomes an error reply, and the server
   lives on. *)
let process_safe cache ~debug ~id ~model ~specs ~options ~cancel =
  match process cache ~id ~model ~specs ~options ~cancel with
  | reply -> reply
  | exception e ->
    let msg = Printf.sprintf "internal error: %s" (Printexc.to_string e) in
    let msg =
      if debug then msg ^ "\n" ^ Printexc.get_backtrace () else msg
    in
    Protocol.error_reply ~id msg

(* ------------------------------------------------------------------ *)
(* Connection handling (reader side) *)

let handle_request cfg cache pool conn stop payload =
  match Protocol.parse_request payload with
  | Error msg -> send conn (Protocol.error_reply msg)
  | Ok Protocol.Ping -> send conn Protocol.pong_reply
  | Ok Protocol.Shutdown ->
    send conn Protocol.shutdown_reply;
    Atomic.set stop true
  | Ok (Protocol.Cancel { id }) ->
    let found =
      with_lock conn.inflight_lock @@ fun () ->
      match Hashtbl.find_opt conn.inflight id with
      | Some cancel ->
        Atomic.set cancel true;
        true
      | None -> false
    in
    send conn (Protocol.cancel_reply ~id ~found)
  | Ok (Protocol.Check { id; model; specs; options }) ->
    let cancel = Atomic.make false in
    with_lock conn.inflight_lock (fun () ->
        Hashtbl.replace conn.inflight id cancel);
    let task () =
      let reply =
        process_safe cache ~debug:cfg.debug ~id ~model ~specs ~options
          ~cancel
      in
      with_lock conn.inflight_lock (fun () -> Hashtbl.remove conn.inflight id);
      send conn reply
    in
    let future = Parallel.Pool.submit pool task in
    with_lock conn.inflight_lock (fun () ->
        conn.futures <- future :: conn.futures)

(* Read frames until EOF or drain; then settle the connection's
   in-flight checks.  A client that disconnected (EOF while the server
   is not draining) cancels its own in-flight requests — nobody is
   listening for those replies. *)
let reader_loop cfg cache pool conn stop =
  let rec loop () =
    match Frame.read ~should_stop:(fun () -> Atomic.get stop) conn.fd_in with
    | Some payload ->
      handle_request cfg cache pool conn stop payload;
      if not (Atomic.get stop) then loop ()
    | None -> ()
    | exception Frame.Closed -> ()
    | exception Frame.Oversized n ->
      send conn
        (Protocol.error_reply
           (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n
              Frame.max_frame))
      (* framing is lost beyond this point: drop the connection *)
  in
  loop ();
  if not (Atomic.get stop) then
    with_lock conn.inflight_lock (fun () ->
        Hashtbl.iter (fun _ c -> Atomic.set c true) conn.inflight);
  let futures = with_lock conn.inflight_lock (fun () -> conn.futures) in
  List.iter (fun f -> ignore (Parallel.Pool.await f)) futures

let make_conn fd_in fd_out =
  {
    fd_in;
    fd_out;
    write_lock = Mutex.create ();
    inflight_lock = Mutex.create ();
    inflight = Hashtbl.create 8;
    futures = [];
  }

(* ------------------------------------------------------------------ *)
(* Entry point *)

let install_signals stop =
  let handle _ = Atomic.set stop true in
  let try_install s h =
    match Sys.set_signal s h with
    | () -> ()
    | exception (Invalid_argument _ | Sys_error _) -> ()
  in
  (* EPIPE must surface as a write error (handled per-connection), not
     kill the process. *)
  try_install Sys.sigpipe Sys.Signal_ignore;
  try_install Sys.sigint (Sys.Signal_handle handle);
  try_install Sys.sigterm (Sys.Signal_handle handle)

let serve_stdio cfg cache pool stop =
  let conn = make_conn Unix.stdin Unix.stdout in
  reader_loop cfg cache pool conn stop;
  0

let serve_socket cfg cache pool stop path =
  (* A stale socket file from a previous run would make bind fail;
     replacing it is the conventional daemon behaviour. *)
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.bind listen_fd (Unix.ADDR_UNIX path);
    Unix.listen listen_fd 64
  with
  | exception Unix.Unix_error (e, _, _) ->
    Unix.close listen_fd;
    Format.eprintf "smv_check --serve: cannot listen on %s: %s@." path
      (Unix.error_message e);
    3
  | () ->
    Format.eprintf "smv_check: serving on %s (%d worker%s)@." path cfg.jobs
      (if cfg.jobs = 1 then "" else "s");
    let conns_lock = Mutex.create () in
    let conns : (int, conn) Hashtbl.t = Hashtbl.create 8 in
    let next_id = ref 0 in
    let threads = ref [] in
    let accept_one fd =
      let conn = make_conn fd fd in
      let id =
        with_lock conns_lock @@ fun () ->
        incr next_id;
        Hashtbl.replace conns !next_id conn;
        !next_id
      in
      let thread =
        Thread.create
          (fun () ->
            Fun.protect
              ~finally:(fun () ->
                with_lock conns_lock (fun () -> Hashtbl.remove conns id);
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () -> reader_loop cfg cache pool conn stop))
          ()
      in
      threads := thread :: !threads
    in
    (* Accept with a select tick so the loop notices [stop] promptly
       even when no connection ever arrives. *)
    let rec accept_loop () =
      if not (Atomic.get stop) then begin
        (match Unix.select [ listen_fd ] [] [] 0.25 with
        | [], _, _ -> ()
        | _ :: _, _, _ -> (
          match Unix.accept listen_fd with
          | fd, _ -> accept_one fd
          | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _)
            ->
            ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        accept_loop ()
      end
    in
    accept_loop ();
    (* Drain: wake readers parked in [read] by shutting their receive
       sides, then join them (each settles its in-flight futures
       before exiting). *)
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    with_lock conns_lock (fun () ->
        Hashtbl.iter
          (fun _ c ->
            try Unix.shutdown c.fd_in Unix.SHUTDOWN_RECEIVE
            with Unix.Unix_error _ -> ())
          conns);
    List.iter Thread.join !threads;
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    0

let serve cfg =
  if cfg.jobs < 1 then begin
    Format.eprintf "smv_check --serve: jobs must be >= 1@.";
    3
  end
  else if cfg.capacity < 1 then begin
    Format.eprintf "smv_check --serve: cache capacity must be >= 1@.";
    3
  end
  else begin
    let stop = Atomic.make false in
    install_signals stop;
    let cache = Cache.create ~capacity:cfg.capacity in
    let pool = Parallel.Pool.create cfg.jobs in
    Fun.protect
      ~finally:(fun () -> Parallel.Pool.shutdown pool)
      (fun () ->
        match cfg.socket with
        | None -> serve_stdio cfg cache pool stop
        | Some path -> serve_socket cfg cache pool stop path)
  end
