(** The check-server wire protocol: JSON documents, one per frame.

    {2 Requests}

    Every request is an object with an ["op"] field:
    {ul
    {- [{"op":"check","id":ID,"model":SRC,"specs":[F,...],
        "options":{...}}] — compile the SMV source [SRC], check its
       SPEC declarations plus the extra CTL formulas [F...], reply
       with verdicts.  [id] is an arbitrary client-chosen string
       echoed in the reply; ["specs"] and ["options"] are optional.}
    {- [{"op":"cancel","id":ID}] — cancel the in-flight check with
       that id (sets its private cancellation flag; the check winds
       down at its next poll point and still sends its own reply,
       with UNDETERMINED verdicts for whatever was cut short).}
    {- [{"op":"ping"}] — liveness probe.}
    {- [{"op":"status"}] — health introspection: answered inline by
       the reader (never queued behind checks) with uptime, queue
       depth, in-flight count, shed/eviction/degradation counters,
       per-model cache occupancy, worker-pool state and fault
       counters.  The probe load balancers and CI poll.}
    {- [{"op":"shutdown"}] — stop accepting requests, drain, exit.}}

    Option fields (all optional; defaults in {!default_options} match
    the one-shot CLI's defaults so an option-less request behaves
    exactly like [smv_check MODEL]): booleans [fair], [traces],
    [stats], [certify], [partitioned]; integers [retries],
    [node_limit], [step_limit], [reorder_threshold]; numbers
    [timeout], [retry_factor]; strings [inject] ("SITE:COUNT" as on
    the CLI, minus "worker"), [reorder] ("none"/"once"/"auto") and
    [fair_engine] ("el"/"lockstep", the CLI's [--fair-engine]).

    {2 Replies}

    One reply frame per request, always an object with ["id"] (echoed,
    or [null] when unparseable), ["status"] ("ok"/"error"/
    "overloaded").  A shed check is answered immediately with
    [{"id":ID,"status":"overloaded","reason":R,"queue_depth":N,
    "retry_after_ms":X}] where [R] is ["queue"] (pool pending queue at
    its bound), ["inflight"] (connection at its in-flight cap) or
    ["memory"] (watchdog refusing cold models) and [X] estimates when
    a retry would find room (rolling mean of recent check durations
    scaled by the queue ahead).  Check replies add ["exit_code"] (the one-shot CLI's exit code for the
    same run), ["verdicts"] (array of [{"spec","verdict","reason"?,
    "cert_failed"}]), ["output"] (the complete one-shot CLI text,
    byte-identical), ["warm"] (manager reused from the pool),
    ["reach_reused"] (memoised reachable set reused), ["time_ms"],
    and — when requested with [stats] — ["stats"] (this request's own
    BDD work: snapshot-diffed manager counters, so concurrent
    requests don't bleed into each other) and ["reach_states"]. *)

type options = {
  fair : bool;
  fair_engine : Ctl.Fair.engine;
  traces : bool;
  stats : bool;
  certify : bool;
  partitioned : bool;
  retries : int;
  retry_factor : float;
  timeout : float option;
  node_limit : int option;
  step_limit : int option;
  inject : (Bdd.Fault.site * int) option;
  reorder : [ `None | `Once | `Auto ];
  reorder_threshold : int;
}

val default_options : options

type request =
  | Check of {
      id : string;
      model : string;
      specs : string list;  (** extra formulas, after the model's SPECs *)
      options : options;
    }
  | Cancel of { id : string }
  | Ping
  | Status
  | Shutdown

val parse_request : string -> (request, string) result
(** Decode one frame payload.  [Error] carries a human-readable
    message suitable for an error reply. *)

(** {2 Reply builders} — each returns the frame payload. *)

type spec_verdict = {
  sv_name : string;
  sv_report : Engine.report;
}

val check_reply :
  id:string ->
  exit_code:int ->
  verdicts:spec_verdict list ->
  output:string ->
  warm:bool ->
  reach_reused:bool ->
  ?reach_states:float ->
  ?stats:Bdd.stats ->
  ?faults_fired:int ->
  time_ms:float ->
  unit ->
  string

val error_reply : ?id:string -> string -> string
val pong_reply : string
val cancel_reply : id:string -> found:bool -> string
val shutdown_reply : string

val overloaded_reply :
  id:string ->
  reason:string ->
  queue_depth:int ->
  retry_after_ms:float ->
  string
(** The shed reply for a check refused at admission; [reason] is a
    {!Overload.reason_string}. *)

(** One pooled model's row in the status reply. *)
type model_status = {
  ms_key : string;
  ms_busy : int;
  ms_uses : int;
  ms_warm : bool;
  ms_live_nodes : int;
  ms_clamped : bool;
}

(** Everything the ["status"] op reports; the daemon assembles it from
    the pool, the cache and the {!Overload} counters. *)
type server_status = {
  ss_uptime_s : float;
  ss_workers : int;
  ss_queue_depth : int;
  ss_max_pending : int option;
  ss_inflight : int;
  ss_shed_queue : int;
  ss_shed_inflight : int;
  ss_shed_cold : int;
  ss_watchdog_evictions : int;
  ss_cache_clamps : int;
  ss_level_transitions : int;
  ss_pressure_level : int;
  ss_mem_live_nodes : int;
  ss_mem_high_water : int option;
  ss_respawns : int;
  ss_avg_check_ms : float option;
  ss_faults_fired : int;
  ss_snapshots : int;
  ss_restores : int;
  ss_quarantines : int;
  ss_restarts : int;
  ss_checks_el : int;      (** checks served by the Emerson-Lei engine *)
  ss_checks_lockstep : int;  (** checks served by the lock-step engine *)
  ss_cache_capacity : int;
  ss_models : model_status list;
}

val status_reply : server_status -> string
(** Render the status reply frame; [null] for absent optional limits,
    and a ["cache"] object with ["entries"]/["warm"] totals plus one
    ["models"] row per pooled entry. *)
