(* Wire protocol: parse request frames, build reply frames.  All JSON
   shapes are documented in the interface. *)

let ( let* ) = Result.bind

type options = {
  fair : bool;
  fair_engine : Ctl.Fair.engine;
  traces : bool;
  stats : bool;
  certify : bool;
  partitioned : bool;
  retries : int;
  retry_factor : float;
  timeout : float option;
  node_limit : int option;
  step_limit : int option;
  inject : (Bdd.Fault.site * int) option;
  reorder : [ `None | `Once | `Auto ];
  reorder_threshold : int;
}

(* Defaults mirror the one-shot CLI flag defaults: an option-less
   check request must behave exactly like `smv_check MODEL`. *)
let default_options =
  {
    fair = true;
    fair_engine = Ctl.Fair.El;
    traces = true;
    stats = false;
    certify = false;
    partitioned = false;
    retries = 0;
    retry_factor = 2.0;
    timeout = None;
    node_limit = None;
    step_limit = None;
    inject = None;
    reorder = `None;
    reorder_threshold = 4096;
  }

type request =
  | Check of {
      id : string;
      model : string;
      specs : string list;
      options : options;
    }
  | Cancel of { id : string }
  | Ping
  | Status
  | Shutdown

type spec_verdict = {
  sv_name : string;
  sv_report : Engine.report;
}

(* ------------------------------------------------------------------ *)
(* Request parsing *)

let field_error name kind = Error (Printf.sprintf "%S must be %s" name kind)

let opt_field fields name decode kind =
  match List.assoc_opt name fields with
  | None | Some Json.Null -> Ok None
  | Some v -> (
    match decode v with
    | Some x -> Ok (Some x)
    | None -> field_error name kind)

let with_default default = Result.map (Option.value ~default)

let parse_inject s =
  match String.index_opt s ':' with
  | None -> Error "\"inject\" must be SITE:COUNT (e.g. mk:1000)"
  | Some i -> (
    let site = String.sub s 0 i in
    let count = String.sub s (i + 1) (String.length s - i - 1) in
    let* n =
      match int_of_string_opt count with
      | Some n when n >= 1 -> Ok n
      | Some _ | None -> Error "\"inject\": COUNT must be a positive integer"
    in
    match Bdd.Fault.site_of_string site with
    | Some fs -> Ok (fs, n)
    | None ->
      Error
        (Printf.sprintf
           "\"inject\": unknown site %S (expected mk, probe, gc, step or \
            reorder)"
           site))

let parse_reorder = function
  | "none" -> Ok `None
  | "once" -> Ok `Once
  | "auto" -> Ok `Auto
  | s ->
    Error
      (Printf.sprintf "\"reorder\": unknown mode %S (none, once or auto)" s)

let parse_options json =
  let fields = Json.obj_or_empty json in
  let d = default_options in
  let bool_f name default =
    with_default default (opt_field fields name Json.to_bool "a boolean")
  in
  let int_f name default =
    with_default default (opt_field fields name Json.to_int "an integer")
  in
  let* fair = bool_f "fair" d.fair in
  let* traces = bool_f "traces" d.traces in
  let* stats = bool_f "stats" d.stats in
  let* certify = bool_f "certify" d.certify in
  let* partitioned = bool_f "partitioned" d.partitioned in
  let* retries = int_f "retries" d.retries in
  let* retry_factor =
    with_default d.retry_factor
      (opt_field fields "retry_factor" Json.to_num "a number")
  in
  let* timeout = opt_field fields "timeout" Json.to_num "a number" in
  let* node_limit = opt_field fields "node_limit" Json.to_int "an integer" in
  let* step_limit = opt_field fields "step_limit" Json.to_int "an integer" in
  let* reorder_threshold = int_f "reorder_threshold" d.reorder_threshold in
  let* inject_s = opt_field fields "inject" Json.to_str "a string" in
  let* inject =
    match inject_s with
    | None -> Ok None
    | Some s -> Result.map Option.some (parse_inject s)
  in
  let* reorder_s = opt_field fields "reorder" Json.to_str "a string" in
  let* reorder =
    match reorder_s with None -> Ok d.reorder | Some s -> parse_reorder s
  in
  let* engine_s = opt_field fields "fair_engine" Json.to_str "a string" in
  let* fair_engine =
    match engine_s with
    | None -> Ok d.fair_engine
    | Some s -> (
      match Ctl.Fair.engine_of_string s with
      | Some e -> Ok e
      | None ->
        Error
          (Printf.sprintf "\"fair_engine\": unknown engine %S (el or lockstep)"
             s))
  in
  (* The same sanity checks the CLI's [validate] performs, so a bad
     option is a request error, not a mid-check surprise. *)
  let* () =
    if retries < 0 then Error "\"retries\" must be >= 0" else Ok ()
  in
  let* () =
    if retry_factor < 1.0 then Error "\"retry_factor\" must be >= 1.0"
    else Ok ()
  in
  let* () =
    match timeout with
    | Some t when t <= 0.0 -> Error "\"timeout\" must be positive"
    | _ -> Ok ()
  in
  let* () =
    match node_limit with
    | Some n when n <= 0 -> Error "\"node_limit\" must be positive"
    | _ -> Ok ()
  in
  let* () =
    match step_limit with
    | Some n when n <= 0 -> Error "\"step_limit\" must be positive"
    | _ -> Ok ()
  in
  let* () =
    if reorder_threshold <= 0 then
      Error "\"reorder_threshold\" must be positive"
    else Ok ()
  in
  Ok
    {
      fair; fair_engine; traces; stats; certify; partitioned; retries;
      retry_factor; timeout; node_limit; step_limit; inject; reorder;
      reorder_threshold;
    }

let parse_request payload =
  let* json =
    Result.map_error (fun e -> "bad frame: " ^ e) (Json.of_string payload)
  in
  let str_field name =
    match Option.bind (Json.member name json) Json.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing or non-string %S field" name)
  in
  let* op = str_field "op" in
  match op with
  | "ping" -> Ok Ping
  | "status" -> Ok Status
  | "shutdown" -> Ok Shutdown
  | "cancel" ->
    let* id = str_field "id" in
    Ok (Cancel { id })
  | "check" ->
    let* id = str_field "id" in
    let* model = str_field "model" in
    let* specs =
      match Json.member "specs" json with
      | None | Some Json.Null -> Ok []
      | Some v -> (
        match Json.to_list v with
        | None -> field_error "specs" "an array of strings"
        | Some items ->
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              match Json.to_str item with
              | Some s -> Ok (s :: acc)
              | None -> field_error "specs" "an array of strings")
            (Ok []) items
          |> Result.map List.rev)
    in
    let* options = parse_options (Json.member "options" json) in
    Ok (Check { id; model; specs; options })
  | other -> Error (Printf.sprintf "unknown op %S" other)

(* ------------------------------------------------------------------ *)
(* Reply building *)

let verdict_fields (r : Engine.report) =
  let open Json in
  match r.Engine.verdict with
  | Engine.Holds -> [ ("verdict", Str "true") ]
  | Engine.Fails -> [ ("verdict", Str "false") ]
  | Engine.Undetermined reason ->
    [ ("verdict", Str "undetermined"); ("reason", Str reason) ]

let op_stats_json (o : Bdd.op_stats) =
  let open Json in
  Obj
    [
      ("calls", Num (float_of_int o.Bdd.calls));
      ("hits", Num (float_of_int o.Bdd.hits));
      ("misses", Num (float_of_int o.Bdd.misses));
    ]

let stats_json (s : Bdd.stats) =
  let open Json in
  Obj
    [
      ("ite", op_stats_json s.Bdd.ite);
      ("exists", op_stats_json s.Bdd.exists);
      ("forall", op_stats_json s.Bdd.forall);
      ("relprod", op_stats_json s.Bdd.relprod);
      ("constrain", op_stats_json s.Bdd.constrain);
      ("live_nodes", Num (float_of_int s.Bdd.live_nodes));
      ("peak_nodes", Num (float_of_int s.Bdd.peak_nodes));
      ("total_nodes", Num (float_of_int s.Bdd.total_nodes));
      ("cache_evictions", Num (float_of_int s.Bdd.cache_evictions));
      ("gc_runs", Num (float_of_int s.Bdd.gc_runs));
      ("gc_collected", Num (float_of_int s.Bdd.gc_collected));
      ("reorders", Num (float_of_int s.Bdd.reorders));
      ("reorder_ms", Num s.Bdd.reorder_ms);
      ("reorder_saved", Num (float_of_int s.Bdd.reorder_saved));
    ]

let check_reply ~id ~exit_code ~verdicts ~output ~warm ~reach_reused
    ?reach_states ?stats ?faults_fired ~time_ms () =
  let open Json in
  let verdicts_json =
    Arr
      (List.map
         (fun sv ->
           Obj
             (( "spec", Str sv.sv_name )
              :: verdict_fields sv.sv_report
             @ [ ("cert_failed", Bool sv.sv_report.Engine.cert_failed) ]))
         verdicts)
  in
  let optional =
    (match reach_states with
    | Some n -> [ ("reach_states", Num n) ]
    | None -> [])
    @ (match stats with Some s -> [ ("stats", stats_json s) ] | None -> [])
    @
    match faults_fired with
    | Some n when n > 0 -> [ ("faults_fired", Num (float_of_int n)) ]
    | _ -> []
  in
  to_string
    (Obj
       ([
          ("id", Str id);
          ("status", Str "ok");
          ("exit_code", Num (float_of_int exit_code));
          ("verdicts", verdicts_json);
          ("output", Str output);
          ("warm", Bool warm);
          ("reach_reused", Bool reach_reused);
        ]
       @ optional
       @ [ ("time_ms", Num time_ms) ]))

let overloaded_reply ~id ~reason ~queue_depth ~retry_after_ms =
  let open Json in
  to_string
    (Obj
       [
         ("id", Str id);
         ("status", Str "overloaded");
         ("reason", Str reason);
         ("queue_depth", Num (float_of_int queue_depth));
         ("retry_after_ms", Num retry_after_ms);
       ])

type model_status = {
  ms_key : string;
  ms_busy : int;
  ms_uses : int;
  ms_warm : bool;
  ms_live_nodes : int;
  ms_clamped : bool;
}

type server_status = {
  ss_uptime_s : float;
  ss_workers : int;
  ss_queue_depth : int;
  ss_max_pending : int option;
  ss_inflight : int;
  ss_shed_queue : int;
  ss_shed_inflight : int;
  ss_shed_cold : int;
  ss_watchdog_evictions : int;
  ss_cache_clamps : int;
  ss_level_transitions : int;
  ss_pressure_level : int;
  ss_mem_live_nodes : int;
  ss_mem_high_water : int option;
  ss_respawns : int;
  ss_avg_check_ms : float option;
  ss_faults_fired : int;
  ss_snapshots : int;
  ss_restores : int;
  ss_quarantines : int;
  ss_restarts : int;
  ss_checks_el : int;
  ss_checks_lockstep : int;
  ss_cache_capacity : int;
  ss_models : model_status list;
}

let status_reply s =
  let open Json in
  let opt_int = function
    | Some n -> Num (float_of_int n)
    | None -> Null
  in
  let models =
    Arr
      (List.map
         (fun m ->
           Obj
             [
               ("key", Str m.ms_key);
               ("busy", Num (float_of_int m.ms_busy));
               ("uses", Num (float_of_int m.ms_uses));
               ("warm", Bool m.ms_warm);
               ("live_nodes", Num (float_of_int m.ms_live_nodes));
               ("clamped", Bool m.ms_clamped);
             ])
         s.ss_models)
  in
  let warm =
    List.length (List.filter (fun m -> m.ms_warm) s.ss_models)
  in
  to_string
    (Obj
       [
         ("status", Str "ok");
         ("op", Str "status");
         ("uptime_s", Num s.ss_uptime_s);
         ("workers", Num (float_of_int s.ss_workers));
         ("queue_depth", Num (float_of_int s.ss_queue_depth));
         ("max_pending", opt_int s.ss_max_pending);
         ("inflight", Num (float_of_int s.ss_inflight));
         ( "counters",
           Obj
             [
               ("shed_queue", Num (float_of_int s.ss_shed_queue));
               ("shed_inflight", Num (float_of_int s.ss_shed_inflight));
               ("shed_cold", Num (float_of_int s.ss_shed_cold));
               ( "watchdog_evictions",
                 Num (float_of_int s.ss_watchdog_evictions) );
               ("cache_clamps", Num (float_of_int s.ss_cache_clamps));
               ( "level_transitions",
                 Num (float_of_int s.ss_level_transitions) );
               ("snapshots", Num (float_of_int s.ss_snapshots));
               ("restores", Num (float_of_int s.ss_restores));
               ("quarantines", Num (float_of_int s.ss_quarantines));
               ("restarts", Num (float_of_int s.ss_restarts));
               ("checks_el", Num (float_of_int s.ss_checks_el));
               ("checks_lockstep", Num (float_of_int s.ss_checks_lockstep));
             ] );
         ("pressure_level", Num (float_of_int s.ss_pressure_level));
         ("mem_live_nodes", Num (float_of_int s.ss_mem_live_nodes));
         ("mem_high_water", opt_int s.ss_mem_high_water);
         ("pool_respawns", Num (float_of_int s.ss_respawns));
         ( "avg_check_ms",
           match s.ss_avg_check_ms with Some x -> Num x | None -> Null );
         ("faults_fired", Num (float_of_int s.ss_faults_fired));
         ( "cache",
           Obj
             [
               ("capacity", Num (float_of_int s.ss_cache_capacity));
               ("entries", Num (float_of_int (List.length s.ss_models)));
               ("warm", Num (float_of_int warm));
               ("models", models);
             ] );
       ])

let error_reply ?id msg =
  let open Json in
  to_string
    (Obj
       [
         ("id", match id with Some s -> Str s | None -> Null);
         ("status", Str "error");
         ("error", Str msg);
       ])

let pong_reply =
  Json.to_string
    (Json.Obj [ ("status", Json.Str "ok"); ("op", Json.Str "pong") ])

let cancel_reply ~id ~found =
  let open Json in
  to_string
    (Obj
       [
         ("id", Str id);
         ("status", Str "ok");
         ("op", Str "cancel");
         ("found", Bool found);
       ])

let shutdown_reply =
  Json.to_string
    (Json.Obj [ ("status", Json.Str "ok"); ("op", Json.Str "shutdown") ])
