(** Overload protection for the check server.

    The serving contract this module exists to keep: {e every} frame
    the server reads gets exactly one reply, promptly — under burst
    load, under memory pressure, and while degraded.  Three mechanisms
    share the state held here:

    {ul
    {- {b Admission accounting.}  The daemon sheds a [check] request —
       immediately, from the reader thread, never parking it — when
       the pool's pending queue is at its bound, when the connection's
       in-flight cap is reached, or when the watchdog is refusing cold
       models.  Each shed is counted by reason, and the shed reply's
       [retry_after_ms] hint comes from {!retry_after_ms}: a rolling
       mean of recent check durations scaled by how many queue slots
       stand in front of a retry.}
    {- {b The memory watchdog.}  {!watchdog} runs on the daemon's
       periodic tick and compares the warm pool's total live BDD nodes
       against the high-water mark.  Over the mark it walks a
       degradation ladder at server granularity — mirroring the
       per-request [Robust.Ladder], but trading {e warmth} instead of
       fidelity: (1) evict idle LRU cache entries, (2) clamp idle
       managers' op-caches and gc them, (3) refuse cold-model
       admissions (warm models, [ping] and [status] are still served).
       Every level transition is logged and counted; when pressure
       clears the clamps are restored and the level returns to 0.}
    {- {b Introspection.}  {!stats} snapshots every counter for the
       [status] reply, so load balancers and CI can see queue depth,
       shed totals and the current degradation level from outside.}}

    All operations are thread-safe (one internal mutex); {!watchdog}
    additionally assumes it is called from a single thread at a time,
    which the daemon guarantees (the accept loop's select tick, or the
    stdio mode's timer thread). *)

type t

val create :
  ?mem_high_water:int -> ?log:(string -> unit) -> unit -> t
(** Fresh state.  [mem_high_water] ([>= 1]; raises [Invalid_argument]
    otherwise) enables the watchdog: total live nodes across the warm
    pool beyond this mark triggers the degradation ladder.  Omitted,
    {!watchdog} is a no-op.  [log] receives one line per level
    transition (default: stderr). *)

(** {2 Admission accounting} *)

type shed_reason =
  | Queue_full        (** pool pending queue at [max_pending] *)
  | Inflight_cap      (** connection at its in-flight cap *)
  | Memory_pressure   (** watchdog level 3 refused a cold model *)

val reason_string : shed_reason -> string
(** The wire name: ["queue"], ["inflight"], ["memory"]. *)

val shed : t -> shed_reason -> unit
(** Count one shed reply. *)

val admitted : t -> unit
(** A check passed admission (before it is queued). *)

val retract : t -> unit
(** Undo {!admitted} for a check that lost the queue-slot race and was
    shed after all. *)

val finished : t -> float -> unit
(** A check replied; the argument is its duration in seconds, fed to
    the rolling window behind {!retry_after_ms}. *)

val checked_engine : t -> lockstep:bool -> unit
(** Count one completed check against the fair engine that served it;
    surfaced as the [checks_el] / [checks_lockstep] status counters. *)

val inflight : t -> int
(** Checks admitted and not yet replied (queued or running). *)

val avg_check_s : t -> float option
(** Rolling mean of the last check durations; [None] before the first
    completion. *)

val retry_after_ms : t -> queue_depth:int -> workers:int -> float
(** When a shed client should retry: roughly the time for the queue
    ahead of it to clear at the rolling mean check duration —
    [mean * ceil((queue_depth+1)/workers)], in milliseconds, at least
    1.  Before any completion a 50 ms default mean is used. *)

(** {2 The memory watchdog} *)

val watchdog : t -> Cache.t -> unit
(** One tick: measure pressure, walk the ladder (see module doc).
    No-op without [mem_high_water].  Call from one thread at a time. *)

val admit_cold : t -> bool
(** False exactly at degradation level 3: a check for a model that is
    not already warm must be shed with {!Memory_pressure}. *)

val level : t -> int
(** Current degradation level, 0–3. *)

(** {2 Introspection} *)

type stats = {
  uptime_s : float;          (** since {!create} (monotonic) *)
  inflight : int;
  level : int;
  shed_queue : int;
  shed_inflight : int;
  shed_cold : int;
  evictions : int;           (** watchdog cache-entry evictions *)
  clamps : int;              (** managers whose op-caches were clamped *)
  unclamps : int;            (** clamps restored after pressure cleared *)
  transitions : int;         (** watchdog level changes *)
  checks_el : int;           (** checks served by the Emerson-Lei engine *)
  checks_lockstep : int;     (** checks served by the lock-step engine *)
  avg_check_s : float option;
}

val stats : t -> stats
(** A consistent snapshot of every counter. *)
