(* Warm manager pool.  See the interface for the design; the
   implementation is a mutex-guarded hashtable with LRU eviction of
   idle entries. *)

type entry = {
  key : string;
  lock : Mutex.t;
  mutable compiled : Smv.Compile.compiled option;
  mutable busy : int;
  mutable uses : int;
  mutable last_used : float;
}

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  pool_lock : Mutex.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  { capacity; table = Hashtbl.create 16; pool_lock = Mutex.create () }

let digest ~source ~partitioned ~static_order =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%b|%b|%s" partitioned static_order source))

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* Under the pool lock: drop least-recently-used idle entries until we
   are back at capacity.  Evicted managers are reclaimed by the GC —
   nothing outside the entry references them once it leaves the
   table. *)
let evict_over_capacity t =
  let excess = Hashtbl.length t.table - t.capacity in
  if excess > 0 then begin
    let idle =
      Hashtbl.fold
        (fun _ e acc -> if e.busy = 0 then e :: acc else acc)
        t.table []
      |> List.sort (fun a b -> Float.compare a.last_used b.last_used)
    in
    List.iteri
      (fun i e -> if i < excess then Hashtbl.remove t.table e.key)
      idle
  end

let acquire t ~key =
  with_lock t.pool_lock @@ fun () ->
  let entry, warm =
    match Hashtbl.find_opt t.table key with
    | Some e -> (e, e.compiled <> None)
    | None ->
      let e =
        {
          key;
          lock = Mutex.create ();
          compiled = None;
          busy = 0;
          uses = 0;
          last_used = Bdd.now_monotonic ();
        }
      in
      Hashtbl.replace t.table key e;
      (e, false)
  in
  (* Mark busy *before* evicting: a fresh insert at capacity must evict
     some idle entry, never the one being handed out. *)
  entry.busy <- entry.busy + 1;
  entry.uses <- entry.uses + 1;
  evict_over_capacity t;
  (entry, warm)

let release t entry =
  with_lock t.pool_lock @@ fun () ->
  entry.busy <- max 0 (entry.busy - 1);
  entry.last_used <- Bdd.now_monotonic ()

let size t = with_lock t.pool_lock @@ fun () -> Hashtbl.length t.table
