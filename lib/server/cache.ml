(* Warm manager pool.  See the interface for the design; the
   implementation is a mutex-guarded hashtable with LRU eviction of
   idle entries. *)

type entry = {
  key : string;
  lock : Mutex.t;
  mutable compiled : Smv.Compile.compiled option;
  mutable busy : int;
  mutable uses : int;
  mutable last_used : float;
  mutable clamped : bool;
}

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  pool_lock : Mutex.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  { capacity; table = Hashtbl.create 16; pool_lock = Mutex.create () }

let digest ~source ~partitioned ~static_order =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%b|%b|%s" partitioned static_order source))

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* Under the pool lock: drop least-recently-used idle entries until we
   are back at capacity.  Evicted managers are reclaimed by the GC —
   nothing outside the entry references them once it leaves the
   table. *)
let evict_over_capacity t =
  let excess = Hashtbl.length t.table - t.capacity in
  if excess > 0 then begin
    let idle =
      Hashtbl.fold
        (fun _ e acc -> if e.busy = 0 then e :: acc else acc)
        t.table []
      |> List.sort (fun a b -> Float.compare a.last_used b.last_used)
    in
    List.iteri
      (fun i e -> if i < excess then Hashtbl.remove t.table e.key)
      idle
  end

let acquire t ~key =
  with_lock t.pool_lock @@ fun () ->
  let entry, warm =
    match Hashtbl.find_opt t.table key with
    | Some e -> (e, e.compiled <> None)
    | None ->
      let e =
        {
          key;
          lock = Mutex.create ();
          compiled = None;
          busy = 0;
          uses = 0;
          last_used = Bdd.now_monotonic ();
          clamped = false;
        }
      in
      Hashtbl.replace t.table key e;
      (e, false)
  in
  (* Mark busy *before* evicting: a fresh insert at capacity must evict
     some idle entry, never the one being handed out. *)
  entry.busy <- entry.busy + 1;
  entry.uses <- entry.uses + 1;
  evict_over_capacity t;
  (entry, warm)

let release t entry =
  with_lock t.pool_lock @@ fun () ->
  entry.busy <- max 0 (entry.busy - 1);
  entry.last_used <- Bdd.now_monotonic ()

let size t = with_lock t.pool_lock @@ fun () -> Hashtbl.length t.table
let capacity t = t.capacity

(* ------------------------------------------------------------------ *)
(* Memory-pressure hooks (the daemon's watchdog) and introspection
   (the Status op).

   Node counts are plain int-field reads on the entries' managers:
   reading one while a worker domain mutates the manager is benign
   (ints don't tear in OCaml) and the numbers are pressure heuristics,
   not accounting.  Everything that *mutates* a manager below touches
   only idle entries while holding the pool lock — an entry with
   [busy = 0] has no holder, and [acquire] (the only way to gain one)
   also takes the pool lock, so nothing can start using the manager
   under our feet. *)

let entry_live e =
  match e.compiled with
  | Some c -> Bdd.live_nodes c.Smv.Compile.model.Kripke.man
  | None -> 0

let entry_faults e =
  match e.compiled with
  | Some c -> Bdd.Fault.fired c.Smv.Compile.model.Kripke.man
  | None -> 0

let live_nodes t =
  with_lock t.pool_lock @@ fun () ->
  Hashtbl.fold (fun _ e acc -> acc + entry_live e) t.table 0

let is_warm t ~key =
  with_lock t.pool_lock @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some e -> e.compiled <> None
  | None -> false

let evict_idle_until t ~target =
  with_lock t.pool_lock @@ fun () ->
  let idle =
    Hashtbl.fold
      (fun _ e acc -> if e.busy = 0 then e :: acc else acc)
      t.table []
    |> List.sort (fun a b -> Float.compare a.last_used b.last_used)
  in
  let total () =
    Hashtbl.fold (fun _ e acc -> acc + entry_live e) t.table 0
  in
  let evicted = ref 0 in
  List.iter
    (fun e ->
      if total () > target && entry_live e > 0 then begin
        Hashtbl.remove t.table e.key;
        incr evicted
      end)
    idle;
  !evicted

let clamp_idle t ~limit =
  with_lock t.pool_lock @@ fun () ->
  Hashtbl.fold
    (fun _ e acc ->
      match e.compiled with
      | Some c when e.busy = 0 && not e.clamped ->
        let man = c.Smv.Compile.model.Kripke.man in
        Bdd.set_cache_limit man (Some limit);
        ignore (Bdd.gc man);
        e.clamped <- true;
        acc + 1
      | _ -> acc)
    t.table 0

let unclamp_idle t =
  with_lock t.pool_lock @@ fun () ->
  Hashtbl.fold
    (fun _ e acc ->
      match e.compiled with
      | Some c when e.busy = 0 && e.clamped ->
        Bdd.set_cache_limit c.Smv.Compile.model.Kripke.man None;
        e.clamped <- false;
        acc + 1
      | _ -> acc)
    t.table 0

(* ------------------------------------------------------------------ *)
(* Warm-state persistence hooks (Persist). *)

let with_idle t f =
  with_lock t.pool_lock @@ fun () ->
  Hashtbl.fold
    (fun _ e acc ->
      match e.compiled with
      | Some c when e.busy = 0 ->
        f ~key:e.key ~uses:e.uses c;
        acc + 1
      | _ -> acc)
    t.table 0

let seed t ~key ~compiled =
  with_lock t.pool_lock @@ fun () ->
  if Hashtbl.mem t.table key then false
  else begin
    Hashtbl.replace t.table key
      {
        key;
        lock = Mutex.create ();
        compiled = Some compiled;
        busy = 0;
        uses = 0;
        last_used = Bdd.now_monotonic ();
        clamped = false;
      };
    evict_over_capacity t;
    true
  end

type info = {
  i_key : string;
  i_busy : int;
  i_uses : int;
  i_warm : bool;
  i_live : int;
  i_faults : int;
  i_clamped : bool;
}

let snapshot t =
  with_lock t.pool_lock @@ fun () ->
  Hashtbl.fold
    (fun _ e acc ->
      {
        i_key = e.key;
        i_busy = e.busy;
        i_uses = e.uses;
        i_warm = e.compiled <> None;
        i_live = entry_live e;
        i_faults = entry_faults e;
        i_clamped = e.clamped;
      }
      :: acc)
    t.table []
  |> List.sort (fun a b -> compare a.i_key b.i_key)
