(* Overload protection state for the check server: admission counters,
   a rolling window of check durations (the retry-after hint), and the
   memory watchdog's degradation ladder.  See the interface for the
   design contract. *)

type shed_reason = Queue_full | Inflight_cap | Memory_pressure

let reason_string = function
  | Queue_full -> "queue"
  | Inflight_cap -> "inflight"
  | Memory_pressure -> "memory"

type stats = {
  uptime_s : float;
  inflight : int;
  level : int;
  shed_queue : int;
  shed_inflight : int;
  shed_cold : int;
  evictions : int;
  clamps : int;
  unclamps : int;
  transitions : int;
  checks_el : int;
  checks_lockstep : int;
  avg_check_s : float option;
}

let window = 32

type t = {
  lock : Mutex.t;
  mem_high_water : int option;
  log : string -> unit;
  started : float;
  durations : float array;  (* ring of the last [window] check times *)
  mutable dcount : int;
  mutable dnext : int;
  mutable dsum : float;
  mutable inflight_n : int;
  mutable level_n : int;  (* 0 normal … 3 refusing cold admissions *)
  mutable shed_queue_n : int;
  mutable shed_inflight_n : int;
  mutable shed_cold_n : int;
  mutable evictions_n : int;
  mutable clamps_n : int;
  mutable unclamps_n : int;
  mutable transitions_n : int;
  (* Per-fair-engine check counts, so `status` shows how much traffic
     each engine actually serves on a warm server. *)
  mutable checks_el_n : int;
  mutable checks_lockstep_n : int;
}

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let create ?mem_high_water
    ?(log = fun s -> Format.eprintf "smv_check --serve: %s@." s) () =
  (match mem_high_water with
  | Some n when n < 1 ->
    invalid_arg "Overload.create: mem_high_water must be >= 1"
  | Some _ | None -> ());
  {
    lock = Mutex.create ();
    mem_high_water;
    log;
    started = Bdd.now_monotonic ();
    durations = Array.make window 0.;
    dcount = 0;
    dnext = 0;
    dsum = 0.;
    inflight_n = 0;
    level_n = 0;
    shed_queue_n = 0;
    shed_inflight_n = 0;
    shed_cold_n = 0;
    evictions_n = 0;
    clamps_n = 0;
    unclamps_n = 0;
    transitions_n = 0;
    checks_el_n = 0;
    checks_lockstep_n = 0;
  }

let admitted t =
  with_lock t.lock @@ fun () -> t.inflight_n <- t.inflight_n + 1

let retract t =
  with_lock t.lock @@ fun () -> t.inflight_n <- max 0 (t.inflight_n - 1)

let finished t dur =
  with_lock t.lock @@ fun () ->
  t.inflight_n <- max 0 (t.inflight_n - 1);
  (* Ring update: subtract the overwritten slot so [dsum] tracks the
     window, not the whole history. *)
  if t.dcount = window then t.dsum <- t.dsum -. t.durations.(t.dnext)
  else t.dcount <- t.dcount + 1;
  t.durations.(t.dnext) <- dur;
  t.dsum <- t.dsum +. dur;
  t.dnext <- (t.dnext + 1) mod window

let checked_engine t ~lockstep =
  with_lock t.lock @@ fun () ->
  if lockstep then t.checks_lockstep_n <- t.checks_lockstep_n + 1
  else t.checks_el_n <- t.checks_el_n + 1

let inflight t = with_lock t.lock @@ fun () -> t.inflight_n

let avg_check_s t =
  with_lock t.lock @@ fun () ->
  if t.dcount = 0 then None else Some (t.dsum /. float_of_int t.dcount)

(* A queue of depth d in front of w workers clears in roughly
   ceil((d+1)/w) mean check times; that is when a retried request
   would next find room.  No history yet -> a 50 ms guess. *)
let retry_after_ms t ~queue_depth ~workers =
  let base = Option.value (avg_check_s t) ~default:0.05 in
  let slots = float_of_int (max 0 queue_depth + 1) in
  let w = float_of_int (max 1 workers) in
  Float.max 1. (Float.round (base *. 1000. *. ceil (slots /. w)))

let shed t reason =
  with_lock t.lock @@ fun () ->
  match reason with
  | Queue_full -> t.shed_queue_n <- t.shed_queue_n + 1
  | Inflight_cap -> t.shed_inflight_n <- t.shed_inflight_n + 1
  | Memory_pressure -> t.shed_cold_n <- t.shed_cold_n + 1

let admit_cold t = with_lock t.lock @@ fun () -> t.level_n < 3

let level t = with_lock t.lock @@ fun () -> t.level_n

let clamp_limit = 8192

let level_name = function
  | 0 -> "normal"
  | 1 -> "evicting idle models"
  | 2 -> "op-caches clamped"
  | _ -> "refusing cold admissions"

let set_level t ~live ~hw level' =
  let prev = with_lock t.lock (fun () -> t.level_n) in
  if level' <> prev then begin
    with_lock t.lock (fun () ->
        t.level_n <- level';
        t.transitions_n <- t.transitions_n + 1);
    t.log
      (Printf.sprintf
         "memory watchdog: %d live nodes (high water %d): level %d -> %d (%s)"
         live hw prev level' (level_name level'))
  end

(* One watchdog tick.  Rung order under pressure: evict idle LRU
   entries, then clamp + gc idle op-caches, and only if the pool is
   still over water refuse cold-model admissions.  When pressure
   clears the clamps are undone and the level drops back to 0.  The
   caller guarantees single-threaded ticks (the accept loop or the
   stdio timer thread); this function only ever blocks other threads
   for the duration of one Cache operation. *)
let watchdog t cache =
  match t.mem_high_water with
  | None -> ()
  | Some hw ->
    let live = Cache.live_nodes cache in
    if live <= hw then begin
      if with_lock t.lock (fun () -> t.level_n >= 2) then begin
        let n = Cache.unclamp_idle cache in
        with_lock t.lock (fun () -> t.unclamps_n <- t.unclamps_n + n)
      end;
      set_level t ~live ~hw 0
    end
    else begin
      let evicted = Cache.evict_idle_until cache ~target:hw in
      if evicted > 0 then begin
        with_lock t.lock (fun () ->
            t.evictions_n <- t.evictions_n + evicted);
        (* The table no longer references the evicted managers; a major
           collection returns their memory now, while we are the ones
           under pressure. *)
        Gc.full_major ()
      end;
      let live1 = Cache.live_nodes cache in
      let clamped =
        if live1 > hw then Cache.clamp_idle cache ~limit:clamp_limit else 0
      in
      if clamped > 0 then
        with_lock t.lock (fun () -> t.clamps_n <- t.clamps_n + clamped);
      let live2 = if clamped > 0 then Cache.live_nodes cache else live1 in
      let level' =
        if live2 > hw then 3
        else if clamped > 0 || with_lock t.lock (fun () -> t.level_n >= 2)
        then 2
        else 1
      in
      set_level t ~live:live2 ~hw level'
    end

let stats t =
  with_lock t.lock @@ fun () ->
  {
    uptime_s = Bdd.now_monotonic () -. t.started;
    inflight = t.inflight_n;
    level = t.level_n;
    shed_queue = t.shed_queue_n;
    shed_inflight = t.shed_inflight_n;
    shed_cold = t.shed_cold_n;
    evictions = t.evictions_n;
    clamps = t.clamps_n;
    unclamps = t.unclamps_n;
    transitions = t.transitions_n;
    checks_el = t.checks_el_n;
    checks_lockstep = t.checks_lockstep_n;
    avg_check_s =
      (if t.dcount = 0 then None else Some (t.dsum /. float_of_int t.dcount));
  }
