(* Durable warm state for the check server.  See the interface for the
   contract; the short version: one file per pooled model under the
   state directory, each carrying a [Bdd.Snapshot] of the manager plus
   the marshalled pure-data shadow of the compiled artifact
   ([Kripke.skeleton], specs, defines, clusters — all of whose [Bdd.t]
   handles the snapshot preserves bit-for-bit).  Everything here is
   best-effort: a failed write is a logged warning, a bad file on
   rehydrate is quarantined and counted, and neither ever takes the
   server down — that is the crash-only discipline. *)

(* The marshalled body.  The snapshot blob carries its own magic and
   checksum; the wrapper checksums the whole body (below) so a torn or
   bit-flipped file is rejected before [Marshal.from_string] ever sees
   it — unmarshalling untrusted bytes is the one genuinely unsafe
   operation in this file. *)
type payload = {
  p_key : string;
  p_snap : string;
  p_skel : Kripke.skeleton;
  p_specs : (string * Ctl.t) list;
  p_defines : (string * Smv.Ast.expr) list;
  p_clusters : Bdd.t list;
}

type t = {
  dir : string;
  debug : bool;
  persisted_uses : (string, int) Hashtbl.t;
      (* key -> [Cache] use count at the last successful write: the
         cheap dirty check that keeps the watchdog tick from rewriting
         identical snapshots forever *)
  lock : Mutex.t;
  mutable snapshots : int;
  mutable restores : int;
  mutable quarantines : int;
}

type counters = { snapshots : int; restores : int; quarantines : int }

(* Bumped whenever the marshalled payload shape changes ("SMVWARM1"
   predates the engine-tagged fair memo in [Kripke.skeleton]); a
   mismatch quarantines the stale file instead of unmarshalling it as
   garbage. *)
let magic = "SMVWARM2"
let suffix = ".warm"

let warn t fmt =
  Format.kasprintf
    (fun s -> if t.debug then Format.eprintf "smv_check --serve: %s@." s)
    fmt

let create ~dir ~debug =
  (try Unix.mkdir dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (match Unix.stat dir with
  | { Unix.st_kind = Unix.S_DIR; _ } -> ()
  | _ -> invalid_arg (Printf.sprintf "Persist.create: %s is not a directory" dir)
  | exception Unix.Unix_error (e, _, _) ->
    invalid_arg
      (Printf.sprintf "Persist.create: cannot use %s: %s" dir
         (Unix.error_message e)));
  {
    dir;
    debug;
    persisted_uses = Hashtbl.create 16;
    lock = Mutex.create ();
    snapshots = 0;
    restores = 0;
    quarantines = 0;
  }

let counters t =
  Mutex.lock t.lock;
  let c =
    {
      snapshots = t.snapshots;
      restores = t.restores;
      quarantines = t.quarantines;
    }
  in
  Mutex.unlock t.lock;
  c

let path_of t key = Filename.concat t.dir (key ^ suffix)

(* ------------------------------------------------------------------ *)
(* Writing. *)

let encode ~key (compiled : Smv.Compile.compiled) =
  let man = compiled.Smv.Compile.model.Kripke.man in
  let payload =
    {
      p_key = key;
      p_snap = Bdd.Snapshot.dump man;
      p_skel = Kripke.skeleton compiled.Smv.Compile.model;
      p_specs = compiled.Smv.Compile.specs;
      p_defines = compiled.Smv.Compile.defines;
      p_clusters = compiled.Smv.Compile.clusters;
    }
  in
  let body = Marshal.to_string payload [] in
  magic ^ Digest.string body ^ body

let write_atomic t ~path blob =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     output_string oc blob;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  ignore t

let save_entry t ~key ~uses compiled =
  match
    let blob = encode ~key compiled in
    write_atomic t ~path:(path_of t key) blob
  with
  | () ->
    Mutex.lock t.lock;
    t.snapshots <- t.snapshots + 1;
    Hashtbl.replace t.persisted_uses key uses;
    Mutex.unlock t.lock;
    true
  | exception ((Sys_error _ | Unix.Unix_error _ | Out_of_memory) as e) ->
    warn t "warm-state write for %s failed: %s" key (Printexc.to_string e);
    false

let dirty t ~key ~uses =
  Mutex.lock t.lock;
  let d =
    match Hashtbl.find_opt t.persisted_uses key with
    | Some u -> u <> uses
    | None -> true
  in
  Mutex.unlock t.lock;
  d

let tick t cache =
  Cache.with_idle cache (fun ~key ~uses compiled ->
      if dirty t ~key ~uses then ignore (save_entry t ~key ~uses compiled))
  |> ignore

let flush t cache = tick t cache

(* ------------------------------------------------------------------ *)
(* Rehydration. *)

exception Bad of string

let decode blob =
  let len = String.length blob in
  if len < 24 then raise (Bad (Printf.sprintf "too short (%d bytes)" len));
  if String.sub blob 0 8 <> magic then
    raise (Bad (Printf.sprintf "bad magic %S" (String.sub blob 0 8)));
  if String.sub blob 8 16 <> Digest.string (String.sub blob 24 (len - 24))
  then raise (Bad "checksum mismatch");
  (Marshal.from_string blob 24 : payload)

let load_entry path =
  let ic = open_in_bin path in
  let blob =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let payload = decode blob in
  let man = Bdd.Snapshot.load payload.p_snap in
  let model = Kripke.of_skeleton ~man payload.p_skel in
  let compiled =
    {
      Smv.Compile.model;
      specs = payload.p_specs;
      defines = payload.p_defines;
      clusters = payload.p_clusters;
    }
  in
  (* Mirror the compile-time rooting of the artifact's own diagrams
     (spec [Pred] sets and partition clusters): the snapshot's static
     root pins them today, but a later re-snapshot of this manager
     must keep pinning them through any number of [Bdd.gc] runs. *)
  let spec_preds =
    List.concat_map
      (fun (_, spec) ->
        let acc = ref [] in
        ignore (Ctl.map_pred (fun b -> acc := b :: !acc; b) spec);
        !acc)
      compiled.Smv.Compile.specs
  in
  ignore
    (Bdd.add_root man (fun () -> spec_preds @ compiled.Smv.Compile.clusters)
      : Bdd.root);
  (payload.p_key, compiled)

let quarantine t path reason =
  let dest = path ^ ".quarantined" in
  (match Sys.rename path dest with
  | () -> ()
  | exception Sys_error e ->
    warn t "cannot quarantine %s: %s" path e);
  Mutex.lock t.lock;
  t.quarantines <- t.quarantines + 1;
  Mutex.unlock t.lock;
  warn t "quarantined warm-state file %s: %s" path reason

let rehydrate t cache =
  let files =
    match Sys.readdir t.dir with
    | files -> Array.to_list files
    | exception Sys_error e ->
      warn t "cannot scan state dir %s: %s" t.dir e;
      []
  in
  List.iter
    (fun name ->
      if Filename.check_suffix name suffix then begin
        let path = Filename.concat t.dir name in
        let key_of_name = Filename.chop_suffix name suffix in
        match load_entry path with
        | key, compiled when key = key_of_name ->
          if Cache.seed cache ~key ~compiled then begin
            Mutex.lock t.lock;
            t.restores <- t.restores + 1;
            (* Seeded entries start at [uses = 0]; recording 0 keeps
               the first watchdog tick from rewriting an identical
               snapshot. *)
            Hashtbl.replace t.persisted_uses key 0;
            Mutex.unlock t.lock
          end
        | _, _ -> quarantine t path "key does not match file name"
        | exception Bad reason -> quarantine t path reason
        | exception Bdd.Snapshot.Corrupt reason ->
          quarantine t path (Printf.sprintf "corrupt snapshot: %s" reason)
        | exception (Sys_error _ | Failure _ | Invalid_argument _) ->
          quarantine t path "unreadable or malformed"
      end)
    files;
  let c = counters t in
  c.restores
