exception Closed
exception Oversized of int

let max_frame = 64 * 1024 * 1024

let closed_errors = [ Unix.EPIPE; Unix.ECONNRESET; Unix.EBADF ]

(* Read exactly [len] bytes into [buf] starting at [off].  Returns the
   number of bytes actually read before a clean EOF (so callers can
   tell "EOF on a frame boundary" from "EOF mid-frame"). *)
let really_read ?(should_stop = fun () -> false) fd buf off len =
  let rec go off remaining =
    if remaining = 0 then len
    else
      match Unix.read fd buf off remaining with
      | 0 -> len - remaining
      | n -> go (off + n) (remaining - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        if should_stop () then len - remaining else go off remaining
      | exception Unix.Unix_error (e, _, _) when List.mem e closed_errors ->
        raise Closed
  in
  go off len

let read ?should_stop fd =
  let stop = Option.value should_stop ~default:(fun () -> false) in
  let header = Bytes.create 4 in
  match really_read ~should_stop:stop fd header 0 4 with
  | 0 -> None (* clean EOF, or should_stop tripped before any byte *)
  | 4 ->
    let len =
      (Char.code (Bytes.get header 0) lsl 24)
      lor (Char.code (Bytes.get header 1) lsl 16)
      lor (Char.code (Bytes.get header 2) lsl 8)
      lor Char.code (Bytes.get header 3)
    in
    if len > max_frame then raise (Oversized len);
    let payload = Bytes.create len in
    let got = really_read ~should_stop:stop fd payload 0 len in
    if got < len then
      if stop () then None else raise Closed
    else Some (Bytes.unsafe_to_string payload)
  | _ -> if stop () then None else raise Closed

let write fd payload =
  let len = String.length payload in
  if len > max_frame then raise (Oversized len);
  let msg = Bytes.create (4 + len) in
  Bytes.set msg 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set msg 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set msg 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set msg 3 (Char.chr (len land 0xff));
  Bytes.blit_string payload 0 msg 4 len;
  let total = 4 + len in
  let rec go off =
    if off < total then
      match Unix.write fd msg off (total - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) when List.mem e closed_errors ->
        raise Closed
  in
  go 0
