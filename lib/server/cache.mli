(** The warm manager pool: compiled models keyed by source hash.

    The whole point of serve mode is that the second request for a
    model skips everything expensive: parsing and compilation, BDD
    construction, the sifted variable order the first request paid
    for, the hot operation caches, and — via [Kripke.reach_memo] —
    the reachable-set fixpoint.  The pool maps a digest of
    [(source, partitioned, static_order)] to a compiled model whose
    manager carries all of that accumulated warmth.

    Compilation options are part of the key because they change the
    manager's contents: a partitioned compile builds different
    transition structure, and a static-order compile seeds a
    different variable order.  Keeping them distinct preserves the
    byte-identity guarantee — a request with [reorder = none] must
    see declaration order, never an order some earlier [reorder =
    auto] request sifted to.

    Concurrency: a BDD manager is single-domain (hash-consing is not
    thread-safe), so each entry has a lock and requests for the same
    model serialise on it; requests for different models proceed in
    parallel on their own managers.  Entries are built {e under} the
    entry lock, not the pool lock, so a slow compile of one model
    never blocks requests for others.

    Eviction is LRU over idle entries: when the pool exceeds its
    capacity, the least-recently-released entries with no holder are
    dropped (their managers become garbage).  Busy entries are never
    evicted. *)

type t

type entry = {
  key : string;
  lock : Mutex.t;  (** hold while compiling into or checking on the entry *)
  mutable compiled : Smv.Compile.compiled option;
      (** [None] until the first holder builds it (or after a failed
          build — the next holder simply retries) *)
  mutable busy : int;       (** current holders (acquired, not released) *)
  mutable uses : int;       (** total acquisitions, for the reply stats *)
  mutable last_used : float; (** monotonic time of last release *)
  mutable clamped : bool;
      (** op-caches clamped by the memory watchdog; {!unclamp_idle}
          restores them when pressure clears *)
}

val create : capacity:int -> t
(** A pool evicting down to [capacity] idle entries
    (raises [Invalid_argument] when [capacity < 1]). *)

val digest : source:string -> partitioned:bool -> static_order:bool -> string
(** The pool key for a check request. *)

val acquire : t -> key:string -> entry * bool
(** Find or insert the entry for [key]; the flag is [true] when the
    entry already held a compiled model (a {e warm} hit).  Bumps the
    holder count; the caller must lock [entry.lock] before touching
    [compiled] and must {!release} when done. *)

val release : t -> entry -> unit
(** Drop the holder count and stamp [last_used]. *)

val size : t -> int
(** Entries currently pooled (busy or idle). *)

val capacity : t -> int
(** The configured LRU capacity. *)

(** {2 Memory-pressure hooks}

    The daemon's watchdog calls these from its periodic tick.  All of
    them take the pool lock; the mutating ones additionally touch only
    {e idle} entries (no holder, and none can appear while the pool
    lock is held), so they are safe to run concurrently with checks on
    other entries. *)

val live_nodes : t -> int
(** Total live BDD nodes across all pooled managers — the watchdog's
    pressure measure.  Busy entries are read racily (a plain int
    field), which is fine for a heuristic. *)

val is_warm : t -> key:string -> bool
(** Whether a compiled model for [key] is already pooled (the
    degraded-mode admission test: cold models are refused under
    memory pressure, warm ones still served). *)

val evict_idle_until : t -> target:int -> int
(** Evict idle compiled entries, least-recently-used first, until the
    pool's total live nodes drop to [target] or no idle entry remains;
    returns how many were evicted.  Busy entries are never touched. *)

val clamp_idle : t -> limit:int -> int
(** Clamp the op-caches of every idle, not-yet-clamped manager to
    [limit] entries and run a gc on it (reclaiming dead nodes and the
    oversized caches now, not at the next insert); returns how many
    managers were clamped.  Verdict-neutral: bounded caches change
    speed and memory, never results. *)

val unclamp_idle : t -> int
(** Undo {!clamp_idle} on idle entries (restore unbounded op-caches)
    once pressure has cleared; returns how many were restored. *)

(** {2 Warm-state persistence hooks} — used by [Persist]. *)

val with_idle :
  t -> (key:string -> uses:int -> Smv.Compile.compiled -> unit) -> int
(** Call [f] on every idle, compiled entry under the pool lock (so no
    holder can appear while [f] reads the manager); returns how many
    entries were visited.  [uses] is the entry's acquisition count —
    the persistence layer's cheap dirty check.  [f] must not call back
    into the pool. *)

val seed : t -> key:string -> compiled:Smv.Compile.compiled -> bool
(** Insert a pre-compiled model (a rehydrated snapshot) under [key] if
    no entry exists yet; returns whether it was inserted.  Respects
    capacity (may evict older idle entries, like {!acquire}). *)

(** {2 Introspection} — the [Status] reply's cache section. *)

type info = {
  i_key : string;     (** pool key (digest) *)
  i_busy : int;       (** current holders *)
  i_uses : int;       (** total acquisitions *)
  i_warm : bool;      (** compiled model present *)
  i_live : int;       (** live nodes on the entry's manager *)
  i_faults : int;     (** injected faults fired on this manager *)
  i_clamped : bool;   (** op-caches currently clamped by the watchdog *)
}

val snapshot : t -> info list
(** One {!info} per pooled entry, sorted by key. *)
