(** The per-specification checking engine, shared by the one-shot CLI
    and the check server.

    This is the code that used to live inside [bin/smv_check.ml]:
    recovery-ladder-driven checking of one specification, trace
    construction, certification, and the exact output text.  Factoring
    it here is what makes the server's byte-identity guarantee
    checkable at all — both entry points call the very same
    [check_one], so a server reply's [output] field and a one-shot
    run's stdout are the same bytes by construction, not by parallel
    maintenance of two printers.

    Two deliberate behaviour fixes ride along with the extraction:
    {ul
    {- cancellation is an explicit [opts.cancel] atomic rather than a
       process global, so every server request carries its own flag
       and cancelling one request cannot abort another;}
    {- the spec's embedded [Pred] state sets are rooted for the
       duration of the check — a ladder-triggered [Bdd.gc] between
       attempts used to be able to sweep them (compiled specs are not
       reachable from the model's roots), which mattered rarely for a
       one-shot run but constantly for a warm server re-checking
       long-lived compiled specs.}} *)

(** Per-spec verdicts; [Undetermined] covers resource breaches and
    (without [debug]) unexpected exceptions, so one bad specification
    never takes down the rest of the run. *)
type verdict = Holds | Fails | Undetermined of string

(** What {!check_one} hands back: the verdict plus whether a produced
    trace failed certification (which forces exit code 3). *)
type report = { verdict : verdict; cert_failed : bool }

(** Checking options — the subset of the CLI's flags that govern one
    specification's check, plus the cancellation flag it must obey. *)
type opts = {
  fair : bool;          (** honour FAIRNESS constraints *)
  fair_engine : Ctl.Fair.engine;
      (** which fair-cycle engine decides fair [EG] fixpoints on the
          first attempt; retries always fall back to the classical
          Emerson-Lei engine (see [Robust.Ladder]) *)
  traces : bool;        (** print witness / counterexample traces *)
  stats : bool;         (** print per-spec attempt logs on retries *)
  certify : bool;       (** re-validate every emitted trace *)
  debug : bool;         (** let unexpected exceptions escape *)
  timeout : float option;
  node_limit : int option;
  step_limit : int option;
  retries : int;
  retry_factor : float;
  cancel : bool Atomic.t;  (** set to true to cancel this check *)
}

val mk_limits : opts -> Bdd.Limits.t
(** A fresh budget bundle carrying [opts]' budgets, cancellable
    through [opts.cancel]. *)

val exit_code :
  interrupted:bool -> report list -> int
(** Aggregate per-spec reports into the CLI exit-code contract:
    3 when any trace failed certification, 2 when interrupted or any
    verdict is undetermined, 1 when any specification is false,
    else 0. *)

val check_one :
  Format.formatter ->
  Kripke.t ->
  opts:opts ->
  clusters:(unit -> Bdd.t list) ->
  ?inject:Bdd.Fault.site * int ->
  ?prior:Robust.Ladder.attempt list ->
  string * Ctl.t ->
  report
(** Check one specification.  Budgets are per-spec so one hard
    specification cannot starve the rest; the bundle is also the
    cancellation point.  With [retries = 0] this reduces to exactly
    one [Direct] attempt whose behaviour (prints included) matches
    the pre-recovery checker byte for byte.  All output goes to the
    formatter: the sequential CLI passes the standard formatter, the
    parallel CLI and the server a buffer.

    [clusters] supplies the transition clusters for the degraded rung
    (a thunk: workers transfer them onto their own manager lazily);
    [inject] arms the manager's fault before the first attempt, and is
    always disarmed again on exit; [prior] carries a crashed worker
    attempt so the local re-run resumes the ladder instead of
    restarting it. *)
