(** Crash-only supervision for [--serve]: fork the serve loop, hold
    the listening socket in the parent, restart on crashes.

    The parent binds the socket {e once} (cleaning a stale path left
    by a SIGKILLed predecessor) and keeps the listening fd open across
    every child generation, so a crash never unbinds the endpoint —
    clients connecting mid-restart wait in the backlog instead of
    seeing [ECONNREFUSED].  The child inherits the fd across the fork
    and runs {!Daemon.serve_fd}; all the heavy state (worker pool,
    warm cache, state-dir rehydration) lives on the child side, which
    is what makes restarts safe {e and} cheap: with [--state-dir] the
    replacement child rehydrates the crashed child's last snapshots
    and is warm within its first request.

    Restart policy: exponential backoff with jitter, reset after a
    child survives the crash window; a circuit breaker turns [N]
    crashes within [W] seconds into exit code [3] with a report
    (restarting a deterministic crasher forever helps nobody).
    SIGINT / SIGTERM are forwarded to the child and its graceful exit
    (code 0) becomes the supervisor's. *)

type config = {
  max_crashes : int;     (** the circuit breaker's [N] *)
  window_s : float;      (** the sliding window [W], seconds *)
  backoff0_ms : float;   (** first restart delay *)
  backoff_max_ms : float; (** backoff ceiling *)
}

val default : unit -> config
(** [N = 5] crashes in [W = 30s], backoff 100ms doubling to 5s — each
    overridable via [SMV_SUPERVISE_MAX_CRASHES] / [..._WINDOW_S] /
    [..._BACKOFF0_MS] / [..._BACKOFF_MAX_MS] (used by the smoke tests
    to tighten the windows). *)

val run : ?cfg:config -> Daemon.config -> int
(** Supervise [Daemon.serve_fd] on the daemon config's socket.  Exit
    codes: [0] after the child drains gracefully, [3] on setup
    failure, a child setup failure (the child's own exit 3), or a
    tripped circuit breaker, [1] when a child dies un-gracefully
    during an operator-requested shutdown.  Requires a socket path —
    stdio mode has no endpoint for the parent to hold. *)
