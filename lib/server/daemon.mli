(** The check server: a long-running request loop over warm managers.

    [serve] accepts framed {!Protocol} requests on standard input /
    output or a Unix-domain socket, schedules each check on a
    {!Parallel.Pool} worker domain, and writes one reply frame per
    request.  Models are compiled once into the warm {!Cache} pool
    and reused across requests, so a repeat check skips parsing, BDD
    construction, variable sifting and (via the model's memoised
    reachable set) the reachability fixpoint.

    Isolation guarantees:
    {ul
    {- every request carries its own cancellation atomic — a
       ["cancel"] frame or a client disconnect stops {e that} request
       at its next poll point and nothing else;}
    {- every request runs inside the {!Engine}'s recovery ladder with
       its own [Bdd.Limits] bundle, so a tripped budget or an
       injected fault yields an UNDETERMINED verdict in the reply —
       never a dead server;}
    {- requests for the same model serialise on the model's cache
       entry (BDD managers are single-domain); requests for different
       models run concurrently on different workers;}
    {- SIGINT / SIGTERM and the ["shutdown"] op mean {e drain}: stop
       reading, let in-flight checks finish and reply, then exit —
       in-flight work is not cancelled.}} *)

type config = {
  socket : string option;
      (** listen on this Unix-domain socket path; [None] serves one
          connection on stdin/stdout *)
  jobs : int;      (** worker domains checking requests, [>= 1] *)
  capacity : int;  (** warm models kept in the pool, [>= 1] *)
  debug : bool;    (** include backtraces in error replies *)
}

val serve : config -> int
(** Run until shutdown; the returned exit code is [0] after a clean
    drain, [3] on a setup failure (unusable socket path, bad
    config). *)
