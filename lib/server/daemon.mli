(** The check server: a long-running request loop over warm managers.

    [serve] accepts framed {!Protocol} requests on standard input /
    output or a Unix-domain socket, schedules each check on a
    {!Parallel.Pool} worker domain, and writes one reply frame per
    request.  Models are compiled once into the warm {!Cache} pool
    and reused across requests, so a repeat check skips parsing, BDD
    construction, variable sifting and (via the model's memoised
    reachable set) the reachability fixpoint.

    Isolation guarantees:
    {ul
    {- every request carries its own cancellation atomic — a
       ["cancel"] frame or a client disconnect stops {e that} request
       at its next poll point and nothing else;}
    {- every request runs inside the {!Engine}'s recovery ladder with
       its own [Bdd.Limits] bundle, so a tripped budget or an
       injected fault yields an UNDETERMINED verdict in the reply —
       never a dead server;}
    {- requests for the same model serialise on the model's cache
       entry (BDD managers are single-domain); requests for different
       models run concurrently on different workers;}
    {- SIGINT / SIGTERM and the ["shutdown"] op mean {e drain}: stop
       reading, let in-flight checks finish and reply, then exit —
       in-flight work is not cancelled.}}

    Overload protection (all off by default — an option-less config
    behaves exactly like the pre-protection server):
    {ul
    {- [max_pending] bounds the pool's task queue and [max_inflight]
       caps one connection's concurrent checks; past either bound a
       check is shed {e immediately} from the reader thread with a
       structured ["overloaded"] reply carrying the queue depth and a
       [retry_after_ms] hint — every frame still gets exactly one
       reply, at any load;}
    {- [default_timeout] / [default_node_limit] give budget-less
       requests the server's budgets, and [max_timeout] clamps
       whatever timeout wins (request budgets below the ceiling are
       honoured as-is);}
    {- [mem_high_water] arms the {!Overload} memory watchdog: on the
       daemon's periodic tick it measures total live BDD nodes across
       the warm pool and, over the mark, evicts idle models, clamps
       idle op-caches, and finally refuses cold-model admissions;}
    {- the ["status"] op (and the {!status_client} one-shot) reports
       all of it — answered inline by the reader, never queued behind
       checks.}} *)

type config = {
  socket : string option;
      (** listen on this Unix-domain socket path; [None] serves one
          connection on stdin/stdout *)
  jobs : int;      (** worker domains checking requests, [>= 1] *)
  capacity : int;  (** warm models kept in the pool, [>= 1] *)
  debug : bool;    (** include backtraces in error replies *)
  max_pending : int option;
      (** bound on queued (not yet running) checks, [>= 1]; [None] =
          unbounded, the pre-protection behaviour *)
  max_inflight : int option;
      (** per-connection cap on concurrent checks, [>= 1]; [None] =
          uncapped *)
  default_timeout : float option;
      (** seconds, applied to requests that name no [timeout] *)
  default_node_limit : int option;
      (** applied to requests that name no [node_limit] *)
  max_timeout : float option;
      (** ceiling clamping every request's timeout, its own or the
          default *)
  mem_high_water : int option;
      (** live-node mark arming the memory watchdog; [None] = off *)
  state_dir : string option;
      (** directory for durable warm-state snapshots ({!Persist});
          [None] = no persistence *)
  crash_after : int option;
      (** the [child-crash:K] fault site: SIGKILL this process after
          the [K]-th check reply (supervision testing); [None] = off *)
  restarts : int;
      (** how many times the supervisor has restarted this serve loop
          (reported by the status op); [0] when unsupervised *)
}

val apply_defaults : config -> Protocol.options -> Protocol.options
(** The server-side budget rule, exposed for tests: fill in
    [default_timeout] / [default_node_limit] where the request named
    none, then clamp the winning timeout to [max_timeout]. *)

val serve : config -> int
(** Run until shutdown; the returned exit code is [0] after a clean
    drain, [3] on a setup failure (unusable socket path — including a
    path occupied by a non-socket file, which is {e not} replaced —
    or bad config).  With [state_dir] set, warm models are rehydrated
    before serving, snapshotted on idle watchdog ticks, and flushed on
    graceful exit. *)

val bind_socket : path:string -> (Unix.file_descr, string) result
(** Claim [path] and return a listening fd: unlink a stale socket left
    by a dead process (logging, never silently swallowing, an unlink
    failure), refuse to replace a non-socket, then bind + listen.
    Used directly by the {!Supervise}d parent, which must hold the fd
    across child restarts. *)

val serve_fd : config -> path:string -> listen_fd:Unix.file_descr -> int
(** Run the serve loop on an already-listening fd (a supervised
    child).  Identical to the socket branch of {!serve} except that
    the fd is inherited and the socket path is {e not} unlinked on
    exit — the supervisor owns both. *)

val status_client : socket:string -> int
(** One-shot health probe: connect to a serving daemon's socket, send
    [{"op":"status"}], print the reply payload on stdout.  Exit code
    [0], or [3] when the daemon cannot be reached. *)
