type 'a word = {
  word_prefix : 'a list;
  word_cycle : 'a list;
  sys_run_prefix : int list;
  sys_run_cycle : int list;
  spec_pair : int;
}

type t = {
  model : Kripke.t;
  decode : Kripke.state -> int * int;
  sys_in : int list -> Bdd.t;
  spec_in : int list -> Bdd.t;
}

let build (sys : 'a Streett.t) (spec : 'a Streett.t) =
  let b = Kripke.Builder.create () in
  let sv = Kripke.Builder.range_var b "sys" 0 (sys.Streett.nstates - 1) in
  let pv = Kripke.Builder.range_var b "spec" 0 (spec.Streett.nstates - 1) in
  let bman = Kripke.Builder.man b in
  let s_at i = Kripke.Builder.is b sv (Kripke.I i) in
  let s_at' i = Kripke.Builder.is' b sv (Kripke.I i) in
  let p_at i = Kripke.Builder.is b pv (Kripke.I i) in
  let p_at' i = Kripke.Builder.is' b pv (Kripke.I i) in
  let nletters = Array.length sys.Streett.alphabet in
  for a = 0 to nletters - 1 do
    let sys_moves = ref [] in
    Array.iteri
      (fun s row ->
        List.iter
          (fun t -> sys_moves := Bdd.and_ bman (s_at s) (s_at' t) :: !sys_moves)
          row.(a))
      sys.Streett.trans;
    let spec_moves = ref [] in
    Array.iteri
      (fun s row ->
        List.iter
          (fun t ->
            spec_moves := Bdd.and_ bman (p_at s) (p_at' t) :: !spec_moves)
          row.(a))
      spec.Streett.trans;
    Kripke.Builder.add_trans_case b
      (Bdd.and_ bman (Bdd.disj bman !sys_moves) (Bdd.disj bman !spec_moves))
  done;
  Kripke.Builder.add_init b
    (Bdd.and_ bman (s_at sys.Streett.init) (p_at spec.Streett.init));
  let model = Kripke.Builder.build b in
  let decode st =
    let i =
      match Kripke.value_of_state sv st with
      | Kripke.I i -> i
      | Kripke.B _ | Kripke.S _ -> assert false
    in
    let j =
      match Kripke.value_of_state pv st with
      | Kripke.I j -> j
      | Kripke.B _ | Kripke.S _ -> assert false
    in
    (i, j)
  in
  let sys_in states = Bdd.disj bman (List.map s_at states) in
  let spec_in states = Bdd.disj bman (List.map p_at states) in
  { model; decode; sys_in; spec_in }

let initial_state prod =
  match Kripke.pick_state prod.model prod.model.Kripke.init with
  | Some st -> st
  | None -> assert false

(* Recover a letter connecting two consecutive product states. *)
let connecting_letter (sys : 'a Streett.t) (spec : 'a Streett.t) (s, p) (t, q)
    =
  let nletters = Array.length sys.Streett.alphabet in
  let rec find a =
    if a >= nletters then None
    else if
      List.mem t (Streett.successors sys s a)
      && List.mem q (Streett.successors spec p a)
    then Some a
    else find (a + 1)
  in
  find 0

let extract_word sys spec prod (tr : Kripke.Trace.t) ~spec_pair =
  let prefix_pairs = List.map prod.decode tr.Kripke.Trace.prefix in
  let cycle_pairs = List.map prod.decode tr.Kripke.Trace.cycle in
  let all = prefix_pairs @ cycle_pairs in
  let rec letters acc = function
    | a :: (b :: _ as rest) -> (
      match connecting_letter sys spec a b with
      | Some l -> letters (l :: acc) rest
      | None -> assert false)
    | [ _ ] | [] -> List.rev acc
  in
  let path_letters = letters [] all in
  let closing =
    match (List.rev cycle_pairs, cycle_pairs) with
    | last :: _, first :: _ -> (
      match connecting_letter sys spec last first with
      | Some l -> l
      | None -> assert false)
    | _, _ -> assert false
  in
  (* The word prefix drives the run from the initial state into the
     cycle head: all prefix-internal edges plus the entry edge; the
     word cycle is the cycle-internal edges plus the closing edge. *)
  let np = List.length prefix_pairs in
  let word_prefix_idx = List.filteri (fun i _ -> i < np) path_letters in
  let word_cycle_idx =
    List.filteri (fun i _ -> i >= np) path_letters @ [ closing ]
  in
  let letter i = sys.Streett.alphabet.(i) in
  {
    word_prefix = List.map letter word_prefix_idx;
    word_cycle = List.map letter word_cycle_idx;
    sys_run_prefix = List.map fst prefix_pairs;
    sys_run_cycle = List.map fst cycle_pairs;
    spec_pair;
  }

let run_matches (sys : 'a Streett.t) ce =
  let letter_idx l = Streett.letter_index sys l in
  match List.map letter_idx (ce.word_prefix @ ce.word_cycle) with
  | exception Not_found -> false
  | word ->
    if ce.word_cycle = [] || ce.sys_run_cycle = [] then false
    else
      let run = ce.sys_run_prefix @ ce.sys_run_cycle in
      let rec follows states letters =
        match (states, letters) with
        | [ _last ], [] -> true
        | s :: (t :: _ as rest), a :: more ->
          List.mem t (Streett.successors sys s a) && follows rest more
        | _, _ -> false
      in
      let closing_ok =
        match
          (List.rev ce.sys_run_cycle, ce.sys_run_cycle,
           List.rev (List.map letter_idx ce.word_cycle))
        with
        | last :: _, first :: _, closing :: _ ->
          List.mem first (Streett.successors sys last closing)
        | _, _, _ -> false
      in
      let start_ok =
        match run with s :: _ -> s = sys.Streett.init | [] -> false
      in
      let body_word =
        List.filteri (fun i _ -> i < List.length word - 1) word
      in
      start_ok && follows run body_word && closing_ok
