(** Rabin ω-automata and language containment — the paper's closing
    remark of Section 8: "Counterexamples for the language inclusion
    problems of Büchi, Muller, Rabin, and L automata can be found in
    essentially the same way."

    A Rabin automaton shares the structure of a {!Streett.t}; the
    acceptance condition is the dual: a run [r] is accepting when for
    {e some} pair [(E_i, F_i)], [inf(r) ∩ E_i = ∅] and
    [inf(r) ∩ F_i ≠ ∅].  As a path formula:
    [\/_i (FG ¬E_i /\ GF F_i)] — so the containment formula
    [E (φ_F /\ ¬φ_{F'})] again expands into a disjunction of the
    Section 7 class formulas, one per (system pair, spec pair). *)

type 'a t = private {
  automaton : 'a Streett.t;
      (** the underlying structure; its [accept] field is read with
          Rabin semantics *)
}

val make :
  nstates:int ->
  init:int ->
  alphabet:'a array ->
  delta:(int * int * int) list ->
  accept:(int list * int list) list ->
  'a t
(** Pairs are [(E_i, F_i)]: avoid [E_i] from some point on, visit
    [F_i] infinitely often. *)

val is_deterministic : 'a t -> bool
val is_complete : 'a t -> bool

val complete : 'a t -> 'a t
(** Language-preserving completion (the fresh sink joins every [E_i],
    so runs through it are rejected; an automaton with an empty pair
    list rejects everything and needs no adjustment). *)

val run_inf_accepts : 'a t -> int list -> bool
(** Does a run with this infinitely-repeated state set accept? *)

val accepts_lasso_det : 'a t -> prefix:int list -> cycle:int list -> bool
(** For deterministic complete automata (letters as alphabet
    indices). *)

val contains :
  ?limits:Bdd.Limits.t ->
  sys:'a t ->
  spec:'a t ->
  unit ->
  (unit, 'a Containment.counterexample) result
(** [L(sys) ⊆ L(spec)] for a nondeterministic system and a
    {e deterministic} specification; [Error] carries a separating lasso
    word.  Raises {!Containment.Spec_not_deterministic} /
    [Invalid_argument] like the Streett version.  [limits] bounds the
    underlying product-model fixpoints. *)

val check_counterexample :
  sys:'a t -> spec:'a t -> 'a Containment.counterexample -> bool
(** Independent validation under Rabin acceptance semantics. *)
