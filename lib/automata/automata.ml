(** ω-automata and language containment (Section 8): {!Streett}
    automata (Büchi as a special case) and the {!Containment} check
    with counterexample words. *)

module Streett = Streett
module Product = Product
module Containment = Containment
module Rabin = Rabin
module Muller = Muller
