type 'a t = {
  nstates : int;
  init : int;
  alphabet : 'a array;
  trans : int list array array;
  accept : (int list * int list) list;
}

let make ~nstates ~init ~alphabet ~delta ~accept =
  if Array.length alphabet = 0 then
    invalid_arg "Streett.make: empty alphabet";
  let nletters = Array.length alphabet in
  let check_state s =
    if s < 0 || s >= nstates then
      invalid_arg (Printf.sprintf "Streett.make: state %d out of range" s)
  in
  check_state init;
  let trans = Array.init nstates (fun _ -> Array.make nletters []) in
  List.iter
    (fun (s, a, s') ->
      check_state s;
      check_state s';
      if a < 0 || a >= nletters then
        invalid_arg (Printf.sprintf "Streett.make: letter %d out of range" a);
      if not (List.mem s' trans.(s).(a)) then
        trans.(s).(a) <- s' :: trans.(s).(a))
    delta;
  Array.iter (fun row -> Array.iteri (fun a ss -> row.(a) <- List.sort compare ss) row) trans;
  let accept =
    List.map
      (fun (u, v) ->
        List.iter check_state u;
        List.iter check_state v;
        (List.sort_uniq compare u, List.sort_uniq compare v))
      accept
  in
  { nstates; init; alphabet; trans; accept }

let of_buchi ~nstates ~init ~alphabet ~delta ~accepting =
  make ~nstates ~init ~alphabet ~delta ~accept:[ ([], accepting) ]

let is_deterministic k =
  Array.for_all
    (fun row -> Array.for_all (fun ss -> List.length ss <= 1) row)
    k.trans

let is_complete k =
  Array.for_all (fun row -> Array.for_all (fun ss -> ss <> []) row) k.trans

let complete k =
  if is_complete k then k
  else
    let sink = k.nstates in
    let nletters = Array.length k.alphabet in
    let delta = ref [] in
    Array.iteri
      (fun s row ->
        Array.iteri
          (fun a ss ->
            if ss = [] then delta := (s, a, sink) :: !delta
            else List.iter (fun s' -> delta := (s, a, s') :: !delta) ss)
          row)
      k.trans;
    for a = 0 to nletters - 1 do
      delta := (sink, a, sink) :: !delta
    done;
    let accept =
      match k.accept with
      | [] -> [ (List.init k.nstates Fun.id, []) ]
      | pairs -> pairs
    in
    make ~nstates:(k.nstates + 1) ~init:k.init ~alphabet:k.alphabet
      ~delta:!delta ~accept

let successors k s a = k.trans.(s).(a)

let run_inf_accepts k inf =
  let inf = List.sort_uniq compare inf in
  List.for_all
    (fun (u, v) ->
      List.for_all (fun s -> List.mem s u) inf
      || List.exists (fun s -> List.mem s v) inf)
    k.accept

let lasso_inf k ~prefix ~cycle =
  if not (is_deterministic k) then
    invalid_arg "Streett.lasso_inf: nondeterministic automaton";
  if not (is_complete k) then
    invalid_arg "Streett.lasso_inf: incomplete automaton";
  if cycle = [] then invalid_arg "Streett.lasso_inf: empty cycle";
  let step s a =
    match k.trans.(s).(a) with
    | [ s' ] -> s'
    | [] | _ :: _ -> assert false
  in
  let s = List.fold_left step k.init prefix in
  (* Iterate the cycle until the state at the cycle head repeats; the
     automaton state after each full cycle traversal eventually loops
     (at most nstates distinct values). *)
  let rec find_loop seen s =
    if List.mem s seen then (s, seen) else
      find_loop (s :: seen) (List.fold_left step s cycle)
  in
  let entry, _ = find_loop [] s in
  (* States visited while repeating the cycle from [entry]. *)
  let rec collect acc s remaining =
    match remaining with
    | [] -> (acc, s)
    | a :: rest ->
      let s' = step s a in
      collect (s' :: acc) s' rest
  in
  let rec full_inf acc s =
    let acc', s' = collect acc s cycle in
    if s' = entry then acc' else full_inf acc' s'
  in
  full_inf [ entry ] entry

let accepts_lasso_det k ~prefix ~cycle =
  run_inf_accepts k (lasso_inf k ~prefix ~cycle)

let letter_index k letter =
  let rec find i =
    if i >= Array.length k.alphabet then raise Not_found
    else if k.alphabet.(i) = letter then i
    else find (i + 1)
  in
  find 0
