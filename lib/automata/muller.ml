type 'a t = {
  automaton : 'a Streett.t;
  family : int list list;
}

exception Spec_too_large of int

let make ~nstates ~init ~alphabet ~delta ~family =
  let family = List.map (List.sort_uniq compare) family in
  List.iter
    (List.iter (fun s ->
         if s < 0 || s >= nstates then
           invalid_arg "Muller.make: family state out of range"))
    family;
  {
    automaton = Streett.make ~nstates ~init ~alphabet ~delta ~accept:[];
    family = List.sort_uniq compare family;
  }

let is_deterministic m = Streett.is_deterministic m.automaton
let is_complete m = Streett.is_complete m.automaton

let complete m = { m with automaton = Streett.complete m.automaton }

let run_inf_accepts m inf =
  let inf = List.sort_uniq compare inf in
  List.mem inf m.family

let accepts_lasso_det m ~prefix ~cycle =
  run_inf_accepts m (Streett.lasso_inf m.automaton ~prefix ~cycle)

(* "inf(run of automaton [side]) = S" as class conjuncts over the
   product: GF(at s) for each s in S, plus FG(inside S). *)
let exact_inf_conjuncts (prod : Product.t) ~side states =
  let bman = prod.Product.model.Kripke.man in
  let zero = Bdd.zero bman in
  let in_set =
    match side with
    | `Sys -> prod.Product.sys_in states
    | `Spec -> prod.Product.spec_in states
  in
  let at s =
    match side with
    | `Sys -> prod.Product.sys_in [ s ]
    | `Spec -> prod.Product.spec_in [ s ]
  in
  { Ctlstar.Gffg.gf = zero; fg = in_set }
  :: List.map (fun s -> { Ctlstar.Gffg.gf = at s; fg = zero }) states

(* All non-empty subsets of 0..n-1 (inf sets are never empty for a
   complete automaton). *)
let all_subsets n =
  if n > 16 then raise (Spec_too_large n);
  let rec go bits =
    if bits >= 1 lsl n then []
    else
      let set =
        List.filter (fun s -> bits land (1 lsl s) <> 0) (List.init n Fun.id)
      in
      set :: go (bits + 1)
  in
  List.filter (fun s -> s <> []) (go 1)

let contains ?limits ~sys ~spec () =
  Containment.check_preconditions ~sys:sys.automaton ~spec:spec.automaton;
  let sys = complete sys and spec = complete spec in
  (* Disjuncts: (system inf-set S in F_sys) x (spec subset T not in
     F_spec). *)
  let bad_spec_sets =
    List.filter
      (fun t -> not (List.mem t spec.family))
      (all_subsets spec.automaton.Streett.nstates)
  in
  let disjuncts =
    List.concat_map
      (fun s -> List.map (fun t -> (s, t)) bad_spec_sets)
      sys.family
  in
  let disjuncts = Array.of_list disjuncts in
  Containment.search ?limits ~sys:sys.automaton ~spec:spec.automaton
    ~npairs:(Array.length disjuncts)
    ~conjuncts:(fun prod j ->
      let s, t = disjuncts.(j) in
      exact_inf_conjuncts prod ~side:`Sys s
      @ exact_inf_conjuncts prod ~side:`Spec t)
    ()

let check_counterexample ~sys ~spec ce =
  let sys = complete sys and spec = complete spec in
  Product.run_matches sys.automaton ce
  && run_inf_accepts sys ce.Containment.sys_run_cycle
  &&
  let letter_idx l = Streett.letter_index spec.automaton l in
  let word_prefix = List.map letter_idx ce.Containment.word_prefix in
  let word_cycle = List.map letter_idx ce.Containment.word_cycle in
  not (accepts_lasso_det spec ~prefix:word_prefix ~cycle:word_cycle)
