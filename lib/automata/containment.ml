type 'a counterexample = 'a Product.word = {
  word_prefix : 'a list;
  word_cycle : 'a list;
  sys_run_prefix : int list;
  sys_run_cycle : int list;
  spec_pair : int;
}

exception Spec_not_deterministic

let check_preconditions ~sys ~spec =
  if
    Array.length sys.Streett.alphabet <> Array.length spec.Streett.alphabet
    || not (Array.for_all2 ( = ) sys.Streett.alphabet spec.Streett.alphabet)
  then invalid_arg "Containment.contains: different alphabets";
  if not (Streett.is_deterministic spec) then raise Spec_not_deterministic

(* phi_F /\ ¬(FG U'_j \/ GF V'_j) as restricted-class conjuncts over the
   product: for every system pair, FG(U) \/ GF(V); plus GF(not U'_j)
   and FG(not V'_j). *)
let conjuncts_for (sys : 'a Streett.t) (spec : 'a Streett.t)
    (prod : Product.t) j =
  let bman = prod.Product.model.Kripke.man in
  let space = prod.Product.model.Kripke.space in
  let zero = Bdd.zero bman in
  let sys_pairs =
    List.map
      (fun (u, v) ->
        { Ctlstar.Gffg.gf = prod.Product.sys_in v; fg = prod.Product.sys_in u })
      sys.Streett.accept
  in
  let u', v' = List.nth spec.Streett.accept j in
  let not_u' = Bdd.diff bman space (prod.Product.spec_in u') in
  let not_v' = Bdd.diff bman space (prod.Product.spec_in v') in
  sys_pairs
  @ [
      { Ctlstar.Gffg.gf = not_u'; fg = zero };
      { Ctlstar.Gffg.gf = zero; fg = not_v' };
    ]

(* Shared search loop: one restricted-class check per specification
   acceptance pair; the first satisfiable one yields the word. *)
let search ?limits ~sys ~spec ~npairs ~conjuncts () =
  let prod = Product.build sys spec in
  let m = prod.Product.model in
  let init_state = Product.initial_state prod in
  let rec try_pair j =
    if j >= npairs then Ok ()
    else
      let cs = conjuncts prod j in
      let sat = Ctlstar.Gffg.check ?limits m cs in
      if not (Kripke.eval_in_state m sat init_state) then try_pair (j + 1)
      else
        let tr = Ctlstar.Gffg.witness ?limits m cs ~start:init_state in
        Error (Product.extract_word sys spec prod tr ~spec_pair:j)
  in
  try_pair 0

let contains ?limits ~sys ~spec () =
  check_preconditions ~sys ~spec;
  let sys = Streett.complete sys and spec = Streett.complete spec in
  search ?limits ~sys ~spec
    ~npairs:(List.length spec.Streett.accept)
    ~conjuncts:(fun prod j -> conjuncts_for sys spec prod j)
    ()

let check_counterexample ~sys ~spec ce =
  let sys = Streett.complete sys and spec = Streett.complete spec in
  Product.run_matches sys ce
  (* the system run is accepting (inf = cycle states) *)
  && Streett.run_inf_accepts sys ce.sys_run_cycle
  (* the (unique) specification run over the word rejects *)
  &&
  let letter_idx l = Streett.letter_index spec l in
  let word_prefix = List.map letter_idx ce.word_prefix in
  let word_cycle = List.map letter_idx ce.word_cycle in
  not (Streett.accepts_lasso_det spec ~prefix:word_prefix ~cycle:word_cycle)
