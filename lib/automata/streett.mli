(** Streett ω-automata (Section 8).

    A (nondeterministic) ω-automaton [K = (S, s0, Σ, Δ, F)] with the
    Streett acceptance condition [F = {(U_1,V_1), ..., (U_n,V_n)}]:
    a run [r] is accepting when for every pair, [inf(r) ⊆ U_i] or
    [inf(r) ∩ V_i ≠ ∅].  States are integers [0 .. nstates-1]; letters
    are indices into the [alphabet] array. *)

type 'a t = private {
  nstates : int;
  init : int;
  alphabet : 'a array;
  trans : int list array array;
      (** [trans.(s).(a)] — successors of state [s] on letter [a] *)
  accept : (int list * int list) list;
      (** pairs [(U_i, V_i)], as sorted state lists *)
}

val make :
  nstates:int ->
  init:int ->
  alphabet:'a array ->
  delta:(int * int * int) list ->
  accept:(int list * int list) list ->
  'a t
(** Build an automaton from transition triples [(s, letter, s')].
    Raises [Invalid_argument] for out-of-range states or letters, or an
    empty alphabet. *)

val of_buchi :
  nstates:int ->
  init:int ->
  alphabet:'a array ->
  delta:(int * int * int) list ->
  accepting:int list ->
  'a t
(** A Büchi automaton (visit [accepting] infinitely often) as the
    Streett automaton with the single pair [(∅, accepting)] — since
    [inf(r)] is never empty, the acceptance degenerates to
    [inf(r) ∩ accepting ≠ ∅]. *)

val is_deterministic : 'a t -> bool
(** At most one successor per state and letter. *)

val is_complete : 'a t -> bool
(** At least one successor per state and letter. *)

val complete : 'a t -> 'a t
(** Language-preserving completion: missing transitions are directed to
    a fresh rejecting sink (if the automaton is already complete it is
    returned unchanged).  When the acceptance list is empty — accepting
    everything — the pair [(original states, ∅)] is added so that
    sink runs are still rejected. *)

val successors : 'a t -> int -> int -> int list
(** [successors k s a] = [trans.(s).(a)]. *)

val lasso_inf : 'a t -> prefix:int list -> cycle:int list -> int list
(** For a {e deterministic, complete} automaton: the set of states the
    unique run on [prefix . cycle^ω] visits infinitely often (letters
    as alphabet indices).  Raises [Invalid_argument] on
    nondeterministic or incomplete automata, or an empty cycle. *)

val accepts_lasso_det :
  'a t -> prefix:int list -> cycle:int list -> bool
(** For a {e deterministic, complete} automaton: does the (unique) run
    on the word [prefix . cycle^ω] — letters given as alphabet
    indices — accept?  Raises [Invalid_argument] on nondeterministic
    or incomplete automata, or an empty cycle. *)

val run_inf_accepts : 'a t -> int list -> bool
(** Does a run whose infinitely-repeated state set is exactly the given
    list satisfy the acceptance condition?  (Used to validate the
    system run of a containment counterexample.) *)

val letter_index : 'a t -> 'a -> int
(** Index of a letter in the alphabet (physical/structural equality);
    raises [Not_found]. *)
