(** The product state-transition system [M(K, K')] of Section 8 and
    counterexample-word extraction, shared by the {!Containment}
    checkers for the different acceptance types (Streett, Rabin). *)

type 'a word = {
  word_prefix : 'a list;
  word_cycle : 'a list;  (** never empty *)
  sys_run_prefix : int list;
      (** system-automaton states along the prefix, starting at the
          initial state; one state per prefix letter *)
  sys_run_cycle : int list;
      (** system states along the cycle, aligned with [word_cycle] *)
  spec_pair : int;
      (** index of the specification acceptance pair the run violates *)
}
(** A lasso word separating the two languages, together with the
    accepting system run that the product witness exhibits. *)

type t = private {
  model : Kripke.t;
  decode : Kripke.state -> int * int;  (** product state to (sys, spec) *)
  sys_in : int list -> Bdd.t;
      (** product states whose system component is in the list *)
  spec_in : int list -> Bdd.t;
}

val build : 'a Streett.t -> 'a Streett.t -> t
(** [(s,s') -> (t,t')] iff some letter moves both automata; initial
    state is the pair of initial states.  Acceptance conditions are
    ignored here — the checkers encode them as CTL* class formulas over
    [sys_in]/[spec_in] sets. *)

val initial_state : t -> Kripke.state

val extract_word :
  'a Streett.t -> 'a Streett.t -> t -> Kripke.Trace.t -> spec_pair:int -> 'a word
(** Turn a product lasso (a {!Ctlstar.Gffg} witness) into a word: one
    connecting letter per edge, the entry edge into the cycle belonging
    to the word prefix and the closing edge to the word cycle. *)

val run_matches : 'a Streett.t -> 'a word -> bool
(** Structural validation (acceptance not considered): the recorded
    system run starts at the initial state and follows the word's
    letters, including the closing edge back to the cycle head. *)
