type 'a t = {
  automaton : 'a Streett.t;
}

let make ~nstates ~init ~alphabet ~delta ~accept =
  { automaton = Streett.make ~nstates ~init ~alphabet ~delta ~accept }

let is_deterministic r = Streett.is_deterministic r.automaton
let is_complete r = Streett.is_complete r.automaton

(* Streett.complete's sink joins no E_i or F_i, so sink runs satisfy no
   Rabin pair and are rejected — exactly language preservation.  (The
   pair it adds when the list is empty mentions no F states, hence
   never fires under Rabin semantics.) *)
let complete r = { automaton = Streett.complete r.automaton }

let run_inf_accepts r inf =
  let inf = List.sort_uniq compare inf in
  List.exists
    (fun (e, f) ->
      (not (List.exists (fun s -> List.mem s e) inf))
      && List.exists (fun s -> List.mem s f) inf)
    r.automaton.Streett.accept

let accepts_lasso_det r ~prefix ~cycle =
  run_inf_accepts r (Streett.lasso_inf r.automaton ~prefix ~cycle)

(* E (phi_F /\ ¬phi_F'): phi_F = \/_i (FG ¬E_i /\ GF F_i) distributes
   over the disjunction — one restricted-class formula per system
   pair; ¬phi_F' = /\_j (GF E'_j \/ FG ¬F'_j). *)
let conjuncts_for (sys : 'a Streett.t) (spec : 'a Streett.t)
    (prod : Product.t) i =
  let bman = prod.Product.model.Kripke.man in
  let space = prod.Product.model.Kripke.space in
  let zero = Bdd.zero bman in
  let e_i, f_i = List.nth sys.Streett.accept i in
  let not_e = Bdd.diff bman space (prod.Product.sys_in e_i) in
  let sys_conjuncts =
    [
      { Ctlstar.Gffg.gf = zero; fg = not_e };
      { Ctlstar.Gffg.gf = prod.Product.sys_in f_i; fg = zero };
    ]
  in
  let spec_conjuncts =
    List.map
      (fun (e', f') ->
        {
          Ctlstar.Gffg.gf = prod.Product.spec_in e';
          fg = Bdd.diff bman space (prod.Product.spec_in f');
        })
      spec.Streett.accept
  in
  sys_conjuncts @ spec_conjuncts

let contains ?limits ~sys ~spec () =
  Containment.check_preconditions ~sys:sys.automaton ~spec:spec.automaton;
  let sys = complete sys and spec = complete spec in
  Containment.search ?limits ~sys:sys.automaton ~spec:spec.automaton
    ~npairs:(List.length sys.automaton.Streett.accept)
    ~conjuncts:(fun prod i -> conjuncts_for sys.automaton spec.automaton prod i)
    ()

let check_counterexample ~sys ~spec ce =
  let sys = complete sys and spec = complete spec in
  Product.run_matches sys.automaton ce
  && run_inf_accepts sys ce.Containment.sys_run_cycle
  &&
  let letter_idx l = Streett.letter_index spec.automaton l in
  let word_prefix = List.map letter_idx ce.Containment.word_prefix in
  let word_cycle = List.map letter_idx ce.Containment.word_cycle in
  not (accepts_lasso_det spec ~prefix:word_prefix ~cycle:word_cycle)
