(** Language containment between Streett automata, with counterexample
    words (Section 8).

    [L(K_sys) ⊆ L(K_spec)] is decided — for a nondeterministic system
    automaton and a {e deterministic} specification automaton — by
    building the product state-transition system [M(K, K')] and
    checking [¬ E (φ_F ∧ ¬φ_{F'})], where the path formula
    [φ_F ∧ ¬φ_{F'}] expands into a disjunction of restricted-class
    CTL* formulas (one per specification acceptance pair); when the
    check fails, the Section 7 witness machinery yields an infinite
    word accepted by the system but rejected by the specification,
    presented as a lasso. *)

type 'a counterexample = 'a Product.word = {
  word_prefix : 'a list;
  word_cycle : 'a list;  (** never empty *)
  sys_run_prefix : int list;
      (** system-automaton states along the prefix, starting at the
          initial state; one longer than [word_prefix] *)
  sys_run_cycle : int list;
      (** system states along the cycle, aligned with [word_cycle] *)
  spec_pair : int;
      (** index of the specification acceptance pair the run violates *)
}

exception Spec_not_deterministic
(** The reduction requires a deterministic specification (checking
    containment against a nondeterministic ω-automaton is
    PSPACE-hard). *)

val check_preconditions : sys:'a Streett.t -> spec:'a Streett.t -> unit
(** Equal alphabets and deterministic specification (shared with the
    {!Rabin} checker). *)

val search :
  ?limits:Bdd.Limits.t ->
  sys:'a Streett.t ->
  spec:'a Streett.t ->
  npairs:int ->
  conjuncts:(Product.t -> int -> Ctlstar.Gffg.conjunct list) ->
  unit ->
  (unit, 'a counterexample) result
(** The shared containment loop: build the product, then for each
    disjunct index [0 <= j < npairs] check the restricted-class formula
    [conjuncts prod j] at the product's initial state; the first
    satisfiable one yields a witness, turned into a word.  Used by both
    the Streett checker here and the {!Rabin} checker. *)

val contains :
  ?limits:Bdd.Limits.t ->
  sys:'a Streett.t ->
  spec:'a Streett.t ->
  unit ->
  (unit, 'a counterexample) result
(** [contains ~sys ~spec] — [Ok ()] when [L(sys) ⊆ L(spec)], otherwise
    a counterexample word.  Both automata are completed internally
    (language-preserving); the specification must be deterministic.
    The alphabets must be equal ([Invalid_argument] otherwise).
    [limits] is threaded through every product-model fixpoint and
    witness construction; a breach raises [Bdd.Limits.Exhausted]. *)

val check_counterexample :
  sys:'a Streett.t -> spec:'a Streett.t -> 'a counterexample -> bool
(** Independent validation: the system run is a real run over the word
    and is accepting, and the (unique) specification run over the word
    rejects. *)
