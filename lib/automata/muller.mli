(** Muller ω-automata — with Rabin and Büchi, part of the paper's
    Section 8 closing list of acceptance types handled "in essentially
    the same way".

    A Muller condition is a family [F] of state sets: a run [r] is
    accepting when [inf(r)] is {e exactly} one of the sets.  As a path
    formula, "[inf(r) = S]" is
    [(/\_{s∈S} GF s) /\ FG (\/_{s∈S} s)] (every [S]-state recurs, and
    eventually the run never leaves [S]) — a Section 7 class formula —
    so [φ_F] is a disjunction of class formulas.

    The complement needed for the specification side,
    [¬φ_{F'} = \/_{T ∉ F'} "inf = T"], ranges over all state subsets
    not in the family; the checker enumerates them, which is
    exponential in the {e specification} automaton's size (the check is
    guarded; Muller specifications are typically tiny). *)

type 'a t = private {
  automaton : 'a Streett.t;
      (** underlying structure; its [accept] field is unused *)
  family : int list list;  (** the accepting infinity sets, sorted *)
}

val make :
  nstates:int ->
  init:int ->
  alphabet:'a array ->
  delta:(int * int * int) list ->
  family:int list list ->
  'a t

val is_deterministic : 'a t -> bool
val is_complete : 'a t -> bool

val complete : 'a t -> 'a t
(** Language-preserving completion: sink runs have [inf = {sink}],
    which is never in the (sink-free) family. *)

val run_inf_accepts : 'a t -> int list -> bool
val accepts_lasso_det : 'a t -> prefix:int list -> cycle:int list -> bool

exception Spec_too_large of int
(** Raised by {!contains} when the specification automaton has more
    states than the subset-enumeration bound (16). *)

val contains :
  ?limits:Bdd.Limits.t ->
  sys:'a t ->
  spec:'a t ->
  unit ->
  (unit, 'a Containment.counterexample) result
(** [L(sys) ⊆ L(spec)] for a nondeterministic system and a
    {e deterministic} specification Muller automaton.  [limits] bounds
    the underlying product-model fixpoints. *)

val check_counterexample :
  sys:'a t -> spec:'a t -> 'a Containment.counterexample -> bool
