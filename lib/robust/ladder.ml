(* Note on fair-engine fallback: the ladder itself is engine-agnostic —
   rungs change *how much* budget and fidelity an attempt gets, not
   which algorithm decides fair cycles.  The engine dimension is
   handled by the caller (Server.Engine): attempt 1 honours the
   requested --fair-engine, and every retry (any rung, index > 1) runs
   the classical Emerson-Lei engine, so a lock-step breach or crash
   retries on the battle-tested engine before any fidelity is traded
   away.  Both engines are verdict-identical, so the switch can never
   change an answer — only recover one. *)
type strategy =
  | Direct
  | Gc_retry
  | Reorder
  | Degraded
  | Explicit_state
  | Main_domain

type failure =
  | Breach of Bdd.Limits.info
  | Oom
  | Crashed of string

type attempt = {
  index : int;
  strategy : strategy;
  failure : failure option;
  live_nodes : int;
  duration : float;
}

let strategy_name = function
  | Direct -> "direct"
  | Gc_retry -> "gc-retry"
  | Reorder -> "reorder"
  | Degraded -> "degraded"
  | Explicit_state -> "explicit-state"
  | Main_domain -> "main-domain"

let failure_name = function
  | Breach { Bdd.Limits.breach = Bdd.Limits.Deadline _; _ } -> "deadline"
  | Breach { Bdd.Limits.breach = Bdd.Limits.Node_budget _; _ } -> "node-budget"
  | Breach { Bdd.Limits.breach = Bdd.Limits.Step_budget _; _ } -> "step-budget"
  | Breach { Bdd.Limits.breach = Bdd.Limits.Interrupted; _ } -> "interrupted"
  | Oom -> "out-of-memory"
  | Crashed _ -> "worker-crashed"

let pp_attempt ppf a =
  Format.fprintf ppf "attempt %d [%s]: %s after %.2fs (%d nodes)" a.index
    (strategy_name a.strategy)
    (match a.failure with None -> "ok" | Some f -> failure_name f)
    a.duration a.live_nodes

let classify = function
  | Bdd.Limits.Exhausted info -> (
    match info.Bdd.Limits.breach with
    | Bdd.Limits.Interrupted -> None
    | Bdd.Limits.Deadline _ | Bdd.Limits.Node_budget _
    | Bdd.Limits.Step_budget _ ->
      Some (Breach info))
  | Out_of_memory -> Some Oom
  | _ -> None

(* Which rung handles attempt [index]?  Crashes re-run plainly in the
   calling domain; resource failures climb gc-retry → reorder →
   degraded (a sifted order often shrinks the tables enough that no
   fidelity need be given up), with the explicit bridge reserved for
   the final attempt (it abandons the symbolic representation
   entirely, so it is the rung of last resort). *)
let pick_strategy ~index ~is_last ~fits_explicit ~prev_failure =
  match prev_failure with
  | None -> Direct
  | Some (Crashed _) -> Main_domain
  | Some (Breach _ | Oom) ->
    if is_last && fits_explicit () then Explicit_state
    else if index = 2 then Gc_retry
    else if index = 3 then Reorder
    else Degraded

let run ~retries ~cancelled ~fits_explicit ~live_nodes ?(prior = [])
    attempt_fn =
  if retries < 0 then invalid_arg "Ladder.run: negative retries";
  let max_attempts = retries + 1 in
  let log = ref (List.rev prior) in
  let record index strategy failure t0 =
    {
      index;
      strategy;
      failure;
      live_nodes = live_nodes ();
      duration = Bdd.now_monotonic () -. t0;
    }
  in
  let rec go index prev_failure =
    match prev_failure with
    | Some f when cancelled () || index > max_attempts ->
      Error (f, List.rev !log)
    | _ -> (
      let strategy =
        pick_strategy ~index ~is_last:(index >= max_attempts) ~fits_explicit
          ~prev_failure
      in
      let t0 = Bdd.now_monotonic () in
      match attempt_fn ~attempt:index strategy with
      | v ->
        log := record index strategy None t0 :: !log;
        Ok (v, List.rev !log)
      | exception e -> (
        match classify e with
        | None ->
          (* SIGINT ([Interrupted] breaches) and programming errors:
             neither is retriable, so the ladder steps out of the way. *)
          raise e
        | Some failure ->
          log := record index strategy (Some failure) t0 :: !log;
          go (index + 1) (Some failure)))
  in
  let prev_failure =
    match List.rev prior with [] -> None | last :: _ -> last.failure
  in
  go (List.length prior + 1) prev_failure
