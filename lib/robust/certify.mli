(** Certified verdicts: independent re-validation of emitted traces.

    A printed witness or counterexample is an artifact; under
    [--certify] (and always after a recovered attempt) it is re-checked
    against path semantics by [Counterex.Validate] before the verdict
    ships: the whole trace is a real path of the model
    ([Validate.path_ok]), it starts in an initial state
    ([Validate.starts_at]), and it demonstrates the formula — the
    trace is split along the formula's existential structure exactly as
    [Counterex.Explain] builds it, applying the matching validator to
    each segment ([Validate.eg_witness] for [EG], [Validate.eu_witness]
    / [Validate.ex_witness] for [EU] / [EX] into propositional
    operands, recursion at the junction state for temporal
    continuations).  Satisfaction sets for operands are recomputed
    from scratch under fair semantics, so the certificate shares only
    the model with the generator that produced the trace.

    A certification failure means the checker was about to present a
    bogus trace — the caller downgrades the verdict and exits
    non-zero. *)

val witness :
  ?limits:Bdd.Limits.t ->
  ?engine:Ctl.Fair.engine ->
  Kripke.t ->
  Ctl.t ->
  Kripke.Trace.t ->
  (unit, string) result
(** [witness m f tr] — certify that [tr] demonstrates the formula [f]
    (as printed for a {e true existential} specification) from an
    initial state.  [Error msg] pinpoints the first violated
    requirement.  [limits] governs the satisfaction-set fixpoints (at
    minimum pass a cancellable bundle so SIGINT interrupts
    certification too).  [engine] selects the fair-cycle engine for
    those fixpoints — both engines compute identical sets, so the
    choice affects only cost (and keeps a warm model's fair-states
    memo keyed to the engine the caller requested). *)

val counterexample :
  ?limits:Bdd.Limits.t ->
  ?engine:Ctl.Fair.engine ->
  Kripke.t ->
  Ctl.t ->
  Kripke.Trace.t ->
  (unit, string) result
(** [counterexample m f tr] — certify that [tr] demonstrates the
    {e negation} of [f] (as printed for a failed specification) from an
    initial state. *)
