let ( let* ) = Result.bind

(* Lift a [Validate] verdict into the string-error world, naming the
   requirement that was being checked. *)
let v label = function
  | Ok () -> Ok ()
  | Error e ->
    Error (Format.asprintf "%s: %a" label Counterex.Validate.pp_error e)

(* Does the boolean skeleton expose a temporal operator (the question
   [Counterex.Explain] asks to decide which conjunct a path follows)?
   Anything explanation treats as opaque — negations, and the
   constructors push_neg eliminates — counts as non-temporal here and
   is certified semantically at its anchor state. *)
let rec is_temporal = function
  | Ctl.EX _ | Ctl.EU _ | Ctl.EG _ -> true
  | Ctl.And (a, b) | Ctl.Or (a, b) -> is_temporal a || is_temporal b
  | Ctl.True | Ctl.False | Ctl.Atom _ | Ctl.Pred _ | Ctl.Not _
  | Ctl.Imp _ | Ctl.Iff _ | Ctl.EF _ | Ctl.AX _ | Ctl.AF _ | Ctl.AG _
  | Ctl.AU _ ->
    false

let rec drop k l =
  if k <= 0 then l else match l with [] -> [] | _ :: rest -> drop (k - 1) rest

(* The sub-trace from position [k] of the prefix on ([k] may equal the
   prefix length, yielding the pure-cycle lasso). *)
let suffix (tr : Kripke.Trace.t) k =
  Kripke.Trace.lasso ~prefix:(drop k tr.Kripke.Trace.prefix)
    ~cycle:tr.Kripke.Trace.cycle

(* Certify that [tr] demonstrates the push_neg-normalised [f], by the
   same decomposition [Counterex.Explain] used to build it.  Operand
   satisfaction sets are recomputed here under fair semantics — the
   certificate shares only the model with the generator. *)
let demonstrates ?limits ?engine m f tr =
  let satf g = Ctl.Fair.sat ?limits ?engine m g in
  let anchor label g tr =
    v label (Counterex.Validate.starts_at m (satf g) tr)
  in
  let rec go f tr =
    match f with
    | Ctl.EG a -> v "EG witness" (Counterex.Validate.eg_witness m ~f:(satf a) tr)
    | Ctl.EU (a, b) when not (is_temporal b) ->
      v "EU witness"
        (Counterex.Validate.eu_witness m ~f:(satf a) ~g:(satf b) tr)
    | Ctl.EU (a, b) ->
      (* The junction — where the path stops showing [a U .] and starts
         showing [b] — is not recorded in the trace, so search for it:
         every position before it must satisfy [a], the junction must
         satisfy [b], and the rest of the trace must demonstrate [b].
         Junctions live in the prefix (or at the cycle head, when the
         continuation's own cycle starts right at the junction). *)
      let prefix = tr.Kripke.Trace.prefix in
      let sat_a = satf a and sat_b = satf b in
      let candidates =
        prefix
        @ (match tr.Kripke.Trace.cycle with [] -> [] | st :: _ -> [ st ])
      in
      let rec try_k k = function
        | [] ->
          Error "EU witness: no junction state satisfies the continuation"
        | st :: rest ->
          if Kripke.eval_in_state m sat_b st then
            match go b (suffix tr k) with
            | Ok () -> Ok ()
            | Error _ when rest <> [] && Kripke.eval_in_state m sat_a st ->
              try_k (k + 1) rest
            | Error e -> Error e
          else if Kripke.eval_in_state m sat_a st then try_k (k + 1) rest
          else
            Error
              (Printf.sprintf
                 "EU witness: position %d satisfies neither operand" k)
      in
      try_k 0 candidates
    | Ctl.EX a ->
      let* () = v "EX witness" (Counterex.Validate.ex_witness m ~f:(satf a) tr) in
      if is_temporal a then go a (suffix tr 1) else Ok ()
    | Ctl.And (a, b) ->
      (* The whole conjunction must hold at the start; the path then
         demonstrates the first temporal conjunct (a single path cannot
         exhibit two temporal facts — Explain's documented limit). *)
      let* () = anchor "conjunction at the start state" f tr in
      if is_temporal a then go a tr
      else if is_temporal b then go b tr
      else Ok ()
    | Ctl.Or (a, b) ->
      let first_holds g =
        match Counterex.Validate.starts_at m (satf g) tr with
        | Ok () -> true
        | Error _ -> false
      in
      if first_holds a then go a tr
      else if first_holds b then go b tr
      else Error "disjunction: neither disjunct holds at the start state"
    | Ctl.True | Ctl.False | Ctl.Atom _ | Ctl.Pred _ | Ctl.Not _
    | Ctl.Imp _ | Ctl.Iff _ | Ctl.EF _ | Ctl.AX _ | Ctl.AF _ | Ctl.AG _
    | Ctl.AU _ ->
      anchor "the formula at the start state" f tr
  in
  go f tr

let certify ?limits ?engine m formula tr =
  let* () = v "path" (Counterex.Validate.path_ok m tr) in
  let* () =
    v "start" (Counterex.Validate.starts_at m m.Kripke.init tr)
  in
  demonstrates ?limits ?engine m (Ctl.push_neg formula) tr

let witness ?limits ?engine m f tr = certify ?limits ?engine m f tr

let counterexample ?limits ?engine m f tr =
  certify ?limits ?engine m (Ctl.Not f) tr
