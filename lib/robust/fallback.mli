(** Explicit-state fallback — the ladder's last rung.

    When the symbolic attempt keeps blowing its budgets but the state
    space is small, the spec is re-checked on the explicit graph
    extracted by [Explicit.Bridge.of_kripke]: the EMC-style worklist /
    SCC algorithms ([Explicit.Ectl]) need memory linear in the state
    count, not in diagram shape, so a formula whose fixpoints explode
    symbolically can still be decided.  Symbolic [Ctl.Pred] leaves are
    resolved through the bridge's mask function, so the very same
    compiled formula is checked — no re-elaboration against a second
    frontend.

    Traces come from [Explicit.Ewitness] (BFS paths, SCC fair cycles)
    mapped back through the bridge's state array into an ordinary
    [Kripke.Trace.t] over the original model — so the standard
    validator certifies them exactly like symbolic ones.  The
    explanation recursion mirrors [Counterex.Explain] (fair path
    semantics, first temporal conjunct, opaque negations); [None] when
    the shape cannot be explained by a single path. *)

type t
(** A bridged model: the explicit graph, the concrete state of each
    node, and the symbolic-set → mask function. *)

val default_threshold : int
(** 65536 — the bridge's own default bound. *)

val fits : ?threshold:int -> Kripke.t -> bool
(** Does the model's state space fit the explicit bridge?  Decided on
    [count_states] of the model's [space] — an over-approximation of
    the reachable set, so a [true] answer is conservative, and the
    check costs one weighted BDD count, no fixpoint (the whole point
    is deciding this while the symbolic engine is drowning). *)

val build : ?max_states:int -> Kripke.t -> t
(** Enumerate the model ([Explicit.Bridge.of_kripke]).  Raises
    [Explicit.Bridge.Too_large] past the bound; symbolic operations
    during enumeration still poll any attached [Bdd.Limits], so a
    deadline or SIGINT interrupts it. *)

val nstates : t -> int

val holds : t -> fair:bool -> Ctl.t -> bool
(** The verdict: every initial state satisfies the formula, under fair
    semantics when [fair] (pass the same choice the symbolic path
    made, so verdicts are comparable). *)

val witness : t -> Ctl.t -> Kripke.Trace.t option
(** A trace demonstrating the (existential) formula from some initial
    state; [None] when no initial state satisfies it or the shape has
    no single-path explanation. *)

val counterexample : t -> Ctl.t -> Kripke.Trace.t option
(** A trace demonstrating the negation from some initial state;
    [None] when the formula holds everywhere initial or no single-path
    explanation exists. *)
