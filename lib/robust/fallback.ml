type t = {
  model : Kripke.t;
  graph : Explicit.Egraph.t;
  states : Kripke.state array;
  mask : Bdd.t -> bool array;
}

let default_threshold = 65536

let fits ?(threshold = default_threshold) (m : Kripke.t) =
  Kripke.count_states m m.Kripke.space <= float_of_int threshold

let build ?max_states m =
  let graph, states, mask = Explicit.Bridge.of_kripke ?max_states m in
  { model = m; graph; states; mask }

let nstates t = t.graph.Explicit.Egraph.nstates

let atom t name = t.mask (Kripke.label t.model name)

let holds t ~fair formula =
  if fair then
    Explicit.Ectl.holds_fair t.graph ~atom:(atom t) ~pred:t.mask formula
  else Explicit.Ectl.holds t.graph ~atom:(atom t) ~pred:t.mask formula

(* ------------------------------------------------------------------ *)
(* Trace construction, mirroring [Counterex.Explain]: fair path
   semantics throughout, conjunctions explain their first temporal
   conjunct, negated temporal subformulas are opaque state sets.  The
   recursion works on graph-node indices and is lifted to concrete
   states only at the very end. *)

exception Unexplained

(* Same question as Explain's [is_temporal]: does the boolean skeleton
   expose a temporal operator a path can exhibit? *)
let rec is_temporal = function
  | Ctl.EX _ | Ctl.EU _ | Ctl.EG _ -> true
  | Ctl.And (a, b) | Ctl.Or (a, b) -> is_temporal a || is_temporal b
  | Ctl.True | Ctl.False | Ctl.Atom _ | Ctl.Pred _ | Ctl.Not _ -> false
  | Ctl.Imp _ | Ctl.Iff _ | Ctl.EF _ | Ctl.AX _ | Ctl.AF _ | Ctl.AG _
  | Ctl.AU _ ->
    (* the recursion below runs on push_neg-normalised formulas *)
    raise Unexplained

type itrace = { ipre : int list; icyc : int list }

let mask_and = Array.map2 ( && )

let explain t formula ~start =
  let g = t.graph in
  let fair_mask = Explicit.Ectl.fair_states g in
  let satm f = Explicit.Ectl.sat_fair g ~atom:(atom t) ~pred:t.mask f in
  let rec go f i =
    if not (satm f).(i) then raise Unexplained;
    match f with
    | Ctl.True | Ctl.False | Ctl.Atom _ | Ctl.Pred _ | Ctl.Not _ ->
      { ipre = [ i ]; icyc = [] }
    | Ctl.And (a, b) ->
      if is_temporal a then go a i
      else if is_temporal b then go b i
      else { ipre = [ i ]; icyc = [] }
    | Ctl.Or (a, b) -> if (satm a).(i) then go a i else go b i
    | Ctl.EX a -> (
      let target = mask_and (satm a) fair_mask in
      match Explicit.Ewitness.ex g ~f:target ~start:i with
      | None -> raise Unexplained
      | Some path -> continue path a)
    | Ctl.EU (a, b) -> (
      let target = mask_and (satm b) fair_mask in
      match Explicit.Ewitness.eu g ~f:(satm a) ~g:target ~start:i with
      | None -> raise Unexplained
      | Some path -> continue path b)
    | Ctl.EG a -> (
      match Explicit.Ewitness.fair_eg g ~f:(satm a) ~start:i with
      | None -> raise Unexplained
      | Some (p, c) -> { ipre = p; icyc = c })
    | Ctl.Imp _ | Ctl.Iff _ | Ctl.EF _ | Ctl.AX _ | Ctl.AF _ | Ctl.AG _
    | Ctl.AU _ ->
      raise Unexplained
  (* Extend a finite path by explaining [f] at its final node. *)
  and continue path f =
    if not (is_temporal f) then { ipre = path; icyc = [] }
    else
      match List.rev path with
      | [] -> raise Unexplained
      | last :: _ -> (
        let tb = go f last in
        match tb.ipre with
        | first :: rest ->
          assert (first = last);
          { ipre = path @ rest; icyc = tb.icyc }
        | [] ->
          (* The continuation is a pure cycle beginning at the junction
             node; keep the junction only in the cycle so the lasso does
             not duplicate it. *)
          {
            ipre = List.filteri (fun k _ -> k < List.length path - 1) path;
            icyc = tb.icyc;
          })
  in
  go (Ctl.push_neg formula) start

let to_trace t { ipre; icyc } =
  Kripke.Trace.lasso
    ~prefix:(List.map (fun i -> t.states.(i)) ipre)
    ~cycle:(List.map (fun i -> t.states.(i)) icyc)

let witness t formula =
  let sat =
    Explicit.Ectl.sat_fair t.graph ~atom:(atom t) ~pred:t.mask formula
  in
  match List.find_opt (fun i -> sat.(i)) t.graph.Explicit.Egraph.init with
  | None -> None
  | Some start -> (
    match explain t formula ~start with
    | it -> Some (to_trace t it)
    | exception Unexplained -> None)

let counterexample t formula =
  let sat =
    Explicit.Ectl.sat_fair t.graph ~atom:(atom t) ~pred:t.mask formula
  in
  match
    List.find_opt (fun i -> not sat.(i)) t.graph.Explicit.Egraph.init
  with
  | None -> None
  | Some start -> (
    match explain t (Ctl.Not formula) ~start with
    | it -> Some (to_trace t it)
    | exception Unexplained -> None)
