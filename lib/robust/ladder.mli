(** The recovery ladder: classify → remediate → retry.

    A breach or crash no longer ends a specification: the ladder
    re-runs it with escalating remediation until an attempt succeeds,
    the attempt budget ([--retries]) is spent, or the run is
    cancelled.  The ladder itself is policy only — {e what} each rung
    does (collect garbage, tighten caches, partition the relation,
    drop to explicit state) is the caller's attempt function; the
    ladder decides {e which} rung comes next and keeps the attempt
    log.

    Rung order for resource failures (breach / out-of-memory):
    {ol
    {- [Direct] — the plain symbolic attempt (always attempt 1, so a
       run with [--retries 0] is byte-identical to one without a
       ladder);}
    {- [Gc_retry] — same algorithm after a full [Bdd.gc] and op-cache
       purge, with backed-off budgets;}
    {- [Reorder] — same algorithm after a sifting sweep
       ([Bdd.reorder]) shrinks the tables, before any fidelity is
       given up;}
    {- [Degraded] — tightened cache limit plus a partitioned
       transition relation;}
    {- [Explicit_state] — the final attempt, taken only when the state
       space fits the explicit bridge.}}

    A worker-domain crash is not a resource failure: the next rung is
    [Main_domain] (a plain re-run in the calling domain), after which
    any further failures climb the resource rungs above. *)

type strategy =
  | Direct          (** plain symbolic attempt *)
  | Gc_retry        (** after [Bdd.gc] + op-cache purge *)
  | Reorder         (** after a [Bdd.reorder] sifting sweep *)
  | Degraded        (** tightened cache limit + partitioned relation *)
  | Explicit_state  (** explicit-state fallback via the bridge *)
  | Main_domain     (** re-run of a crashed worker's spec locally *)

type failure =
  | Breach of Bdd.Limits.info  (** a budget tripped (never [Interrupted]) *)
  | Oom                        (** [Out_of_memory] escaped the attempt *)
  | Crashed of string          (** a worker domain died (parallel runs) *)

type attempt = {
  index : int;                (** 1-based, counting prior attempts too *)
  strategy : strategy;
  failure : failure option;   (** [None] means the attempt succeeded *)
  live_nodes : int;           (** manager size when the attempt ended *)
  duration : float;           (** seconds *)
}

val strategy_name : strategy -> string
(** ["direct"] / ["gc-retry"] / ["reorder"] / ["degraded"] /
    ["explicit-state"] / ["main-domain"]. *)

val failure_name : failure -> string
(** Short tag: ["deadline"], ["node-budget"], ["step-budget"],
    ["out-of-memory"], ["worker-crashed"]. *)

val pp_attempt : Format.formatter -> attempt -> unit
(** One log line, e.g.
    ["attempt 2 [gc-retry]: step-budget after 0.41s (102 nodes)"]. *)

val classify : exn -> failure option
(** Is this exception a recoverable failure?  [Limits.Exhausted] with a
    [Deadline] / [Node_budget] / [Step_budget] breach and
    [Out_of_memory] are; an [Interrupted] breach is {e deliberately
    not} (SIGINT must short-circuit the ladder, not ride it), and any
    other exception is a programming error to surface, not retry. *)

val run :
  retries:int ->
  cancelled:(unit -> bool) ->
  fits_explicit:(unit -> bool) ->
  live_nodes:(unit -> int) ->
  ?prior:attempt list ->
  (attempt:int -> strategy -> 'a) ->
  ('a * attempt list, failure * attempt list) result
(** [run ~retries ... attempt_fn] drives up to [retries + 1] attempts
    (numbered from 1), calling [attempt_fn ~attempt strategy] for
    each.  An attempt that returns yields [Ok (value, log)]; one that
    raises a {!classify}-recoverable exception is logged and retried
    on the next rung.  [Error (failure, log)] is the last failure once
    attempts are spent — or as soon as [cancelled ()] turns true,
    which is checked {e between} attempts so a SIGINT during attempt
    [k] (surfacing as a non-recoverable [Interrupted] breach inside
    it, re-raised here) or just after it never starts attempt [k+1].
    Unclassifiable exceptions propagate to the caller untouched.

    [fits_explicit] gates the [Explicit_state] rung (it is consulted
    only for the final attempt); [live_nodes] samples the manager size
    for the log.  [prior] seeds the log with attempts that already
    happened elsewhere — the parallel path passes the crashed worker's
    attempt, so the local re-run resumes numbering at 2 with the
    [Main_domain] strategy. *)
