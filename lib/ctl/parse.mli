(** Concrete syntax for CTL formulas.

    Grammar (loosest to tightest binding):

    {v
      f ::= f <-> f | f -> f | f | f | f & f | unary
      unary ::= !unary | EX unary | EF unary | EG unary
              | AX unary | AF unary | AG unary
              | E [ f U f ] | A [ f U f ]
              | true | false | ident | ( f )
    v}

    [->] is right-associative; [&] and [|] are left-associative.
    Identifiers start with a letter or underscore and may contain
    letters, digits, [_], [.] and [-] (gate and signal names). *)

exception Error of string
(** Parse failure, with a human-readable message including position. *)

val formula : string -> Syntax.t
(** Parse a formula; raises {!Error}. *)

val formula_opt : string -> (Syntax.t, string) result
