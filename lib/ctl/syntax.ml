type t =
  | True
  | False
  | Atom of string
  | Pred of Bdd.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | Iff of t * t
  | EX of t
  | EF of t
  | EG of t
  | EU of t * t
  | AX of t
  | AF of t
  | AG of t
  | AU of t * t

let atom s = Atom s
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let ( ==> ) a b = Imp (a, b)
let neg f = Not f

(* Rebuild a formula with every embedded [Pred] state set rewritten —
   the hook that moves a compiled formula onto another BDD manager
   ([Bdd.transfer] as [fn]) for shared-nothing parallel checking. *)
let rec map_pred fn = function
  | (True | False | Atom _) as f -> f
  | Pred b -> Pred (fn b)
  | Not f -> Not (map_pred fn f)
  | And (a, b) -> And (map_pred fn a, map_pred fn b)
  | Or (a, b) -> Or (map_pred fn a, map_pred fn b)
  | Imp (a, b) -> Imp (map_pred fn a, map_pred fn b)
  | Iff (a, b) -> Iff (map_pred fn a, map_pred fn b)
  | EX f -> EX (map_pred fn f)
  | EF f -> EF (map_pred fn f)
  | EG f -> EG (map_pred fn f)
  | EU (a, b) -> EU (map_pred fn a, map_pred fn b)
  | AX f -> AX (map_pred fn f)
  | AF f -> AF (map_pred fn f)
  | AG f -> AG (map_pred fn f)
  | AU (a, b) -> AU (map_pred fn a, map_pred fn b)

let rec enf = function
  | (True | False | Atom _ | Pred _) as f -> f
  | Not f -> Not (enf f)
  | And (a, b) -> And (enf a, enf b)
  | Or (a, b) -> Or (enf a, enf b)
  | Imp (a, b) -> Or (Not (enf a), enf b)
  | Iff (a, b) ->
    let a = enf a and b = enf b in
    Or (And (a, b), And (Not a, Not b))
  | EX f -> EX (enf f)
  | EF f -> EU (True, enf f)
  | EG f -> EG (enf f)
  | EU (a, b) -> EU (enf a, enf b)
  | AX f -> Not (EX (Not (enf f)))
  | AF f -> Not (EG (Not (enf f)))
  | AG f -> Not (EU (True, Not (enf f)))
  | AU (a, b) ->
    let a = enf a and b = enf b in
    And (Not (EU (Not b, And (Not a, Not b))), Not (EG (Not b)))

(* After [enf] only True/False/Atom/Pred/Not/And/Or/EX/EU/EG remain;
   push negations through the boolean skeleton.  Negated temporal
   operators are left in place (they have no positive existential
   equivalent) — the explainer treats them as opaque state sets. *)
let rec push_neg f =
  let rec pos = function
    | (True | False | Atom _ | Pred _) as f -> f
    | Not f -> neg_ f
    | And (a, b) -> And (pos a, pos b)
    | Or (a, b) -> Or (pos a, pos b)
    | EX f -> EX (pos f)
    | EU (a, b) -> EU (pos a, pos b)
    | EG f -> EG (pos f)
    | (Imp _ | Iff _ | EF _ | AX _ | AF _ | AG _ | AU _) as f ->
      invalid_arg ("Syntax.push_neg: not in ENF: " ^ to_string f)
  and neg_ = function
    | True -> False
    | False -> True
    | (Atom _ | Pred _) as f -> Not f
    | Not f -> pos f
    | And (a, b) -> Or (neg_ a, neg_ b)
    | Or (a, b) -> And (neg_ a, neg_ b)
    | (EX _ | EU _ | EG _) as f -> Not (pos_inside f)
    | (Imp _ | Iff _ | EF _ | AX _ | AF _ | AG _ | AU _) as f ->
      invalid_arg ("Syntax.push_neg: not in ENF: " ^ to_string f)
  and pos_inside = function
    | EX f -> EX (pos f)
    | EU (a, b) -> EU (pos a, pos b)
    | EG f -> EG (pos f)
    | True | False | Atom _ | Pred _ | Not _ | And _ | Or _ | Imp _ | Iff _
    | EF _ | AX _ | AF _ | AG _ | AU _ ->
      assert false
  in
  pos (enf f)

and size = function
  | True | False | Atom _ | Pred _ -> 1
  | Not f | EX f | EF f | EG f | AX f | AF f | AG f -> 1 + size f
  | And (a, b) | Or (a, b) | Imp (a, b) | Iff (a, b) | EU (a, b) | AU (a, b) ->
    1 + size a + size b

and atoms f =
  let rec go acc = function
    | True | False | Pred _ -> acc
    | Atom s -> s :: acc
    | Not f | EX f | EF f | EG f | AX f | AF f | AG f -> go acc f
    | And (a, b) | Or (a, b) | Imp (a, b) | Iff (a, b) | EU (a, b) | AU (a, b)
      ->
      go (go acc a) b
  in
  go [] f |> List.sort_uniq String.compare

(* Precedence climbing for printing: 0 = iff, 1 = imp, 2 = or, 3 = and,
   4 = unary. *)
and pp ppf f =
  let rec go prec ppf f =
    let paren p body =
      if p < prec then Format.fprintf ppf "(%t)" body else body ppf
    in
    match f with
    | True -> Format.pp_print_string ppf "true"
    | False -> Format.pp_print_string ppf "false"
    | Atom s -> Format.pp_print_string ppf s
    | Pred b -> Format.fprintf ppf "{%a}" Bdd.pp b
    | Not g -> paren 4 (fun ppf -> Format.fprintf ppf "!%a" (go 4) g)
    | And (a, b) ->
      paren 3 (fun ppf -> Format.fprintf ppf "%a & %a" (go 3) a (go 4) b)
    | Or (a, b) ->
      paren 2 (fun ppf -> Format.fprintf ppf "%a | %a" (go 2) a (go 3) b)
    | Imp (a, b) ->
      paren 1 (fun ppf -> Format.fprintf ppf "%a -> %a" (go 2) a (go 1) b)
    | Iff (a, b) ->
      paren 0 (fun ppf -> Format.fprintf ppf "%a <-> %a" (go 1) a (go 1) b)
    | EX g -> paren 4 (fun ppf -> Format.fprintf ppf "EX %a" (go 4) g)
    | EF g -> paren 4 (fun ppf -> Format.fprintf ppf "EF %a" (go 4) g)
    | EG g -> paren 4 (fun ppf -> Format.fprintf ppf "EG %a" (go 4) g)
    | AX g -> paren 4 (fun ppf -> Format.fprintf ppf "AX %a" (go 4) g)
    | AF g -> paren 4 (fun ppf -> Format.fprintf ppf "AF %a" (go 4) g)
    | AG g -> paren 4 (fun ppf -> Format.fprintf ppf "AG %a" (go 4) g)
    | EU (a, b) ->
      Format.fprintf ppf "E [%a U %a]" (go 0) a (go 0) b
    | AU (a, b) ->
      Format.fprintf ppf "A [%a U %a]" (go 0) a (go 0) b
  in
  go 0 ppf f

and to_string f = Format.asprintf "%a" pp f
