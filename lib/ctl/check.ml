exception Unknown_atom of string

(* Observability counters: global (per-process, not per-model), updated
   by every fixpoint below and snapshotted by [fixpoint_stats].
   Atomic, because parallel spec checking runs these fixpoints from
   several domains at once and a merged stats report must not lose
   increments (a plain ref would). *)
type fixpoint_stats = {
  eu_iterations : int;
  eg_iterations : int;
  ring_layers : int;
}

let eu_iters = Atomic.make 0
let eg_iters = Atomic.make 0
let rings_built = Atomic.make 0

let fixpoint_stats () =
  {
    eu_iterations = Atomic.get eu_iters;
    eg_iterations = Atomic.get eg_iters;
    ring_layers = Atomic.get rings_built;
  }

let reset_fixpoint_stats () =
  Atomic.set eu_iters 0;
  Atomic.set eg_iters 0;
  Atomic.set rings_built 0

(* Charge one fixpoint iteration against the optional resource limits
   (shared by every fixpoint loop below).  Also a reorder checkpoint:
   every loop roots its frontier, so a pending auto-reorder may run
   here safely — and only does when the driver opted the region in via
   [Bdd.Reorder.with_checkpoints]. *)
let tick (m : Kripke.t) limits =
  Bdd.Reorder.checkpoint m.Kripke.man;
  match limits with
  | None -> ()
  | Some l -> Bdd.Limits.step m.Kripke.man l

let ex (m : Kripke.t) s = Kripke.pre m s

let eu ?limits (m : Kripke.t) f g =
  let bman = m.Kripke.man in
  let frontier = ref g in
  Bdd.with_root bman
    (fun () -> [ f; g; !frontier ])
    (fun () ->
      let rec go q =
        Atomic.incr eu_iters;
        tick m limits;
        let q' = Bdd.or_ bman q (Bdd.and_ bman f (ex m q)) in
        if Bdd.equal q q' then q
        else begin
          frontier := q';
          go q'
        end
      in
      go g)

let eu_rings ?limits (m : Kripke.t) f g =
  let bman = m.Kripke.man in
  let layers = ref [ g ] in
  Bdd.with_root bman
    (fun () -> f :: !layers)
    (fun () ->
      let rec go acc q =
        Atomic.incr eu_iters;
        tick m limits;
        let q' = Bdd.or_ bman q (Bdd.and_ bman f (ex m q)) in
        if Bdd.equal q q' then List.rev acc
        else begin
          layers := q' :: !layers;
          go (q' :: acc) q'
        end
      in
      let rings = Array.of_list (go [ g ] g) in
      ignore (Atomic.fetch_and_add rings_built (Array.length rings) : int);
      rings)

let eg ?limits (m : Kripke.t) f =
  let bman = m.Kripke.man in
  let frontier = ref f in
  Bdd.with_root bman
    (fun () -> [ f; !frontier ])
    (fun () ->
      let rec go z =
        Atomic.incr eg_iters;
        tick m limits;
        let z' = Bdd.and_ bman z (Bdd.and_ bman f (ex m z)) in
        if Bdd.equal z z' then z
        else begin
          frontier := z';
          go z'
        end
      in
      go (Bdd.and_ bman f m.Kripke.space))

(* Interpret a formula with the three basic operators supplied, so that
   the plain and fair checkers share one traversal. *)
let sat_with ~ex ~eu ~eg (m : Kripke.t) formula =
  let bman = m.Kripke.man in
  let space = m.Kripke.space in
  let atom_set name =
    match Kripke.label m name with
    | set -> Bdd.and_ bman set space
    | exception Not_found -> raise (Unknown_atom name)
  in
  (* Root every subformula's satisfaction set for the duration of the
     traversal: a sibling subtree's fixpoint may hit a reorder
     checkpoint (which, like gc, reclaims unrooted diagrams) while an
     earlier result is only held in this recursion's frames. *)
  let keep = ref [] in
  Bdd.with_root bman
    (fun () -> !keep)
    (fun () ->
      let rec go f =
        let r =
          match f with
          | Syntax.True -> space
          | Syntax.False -> Bdd.zero bman
          | Syntax.Atom name -> atom_set name
          | Syntax.Pred set -> Bdd.and_ bman set space
          | Syntax.Not f -> Bdd.diff bman space (go f)
          | Syntax.And (a, b) ->
            let sa = go a in
            Bdd.and_ bman sa (go b)
          | Syntax.Or (a, b) ->
            let sa = go a in
            Bdd.or_ bman sa (go b)
          | Syntax.EX f -> ex m (go f)
          | Syntax.EU (a, b) ->
            let sa = go a in
            eu m sa (go b)
          | Syntax.EG f -> eg m (go f)
          | (Syntax.Imp _ | Syntax.Iff _ | Syntax.EF _ | Syntax.AX _
            | Syntax.AF _ | Syntax.AG _ | Syntax.AU _) as f ->
            (* [enf] leaves none of these behind. *)
            ignore f;
            assert false
        in
        keep := r :: !keep;
        r
      in
      go (Syntax.enf formula))

let sat ?limits m formula =
  sat_with ~ex ~eu:(eu ?limits) ~eg:(eg ?limits) m formula

let holds ?limits m formula =
  Bdd.subset m.Kripke.man m.Kripke.init (sat ?limits m formula)
