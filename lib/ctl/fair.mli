(** CTL model checking under fairness constraints (Section 5).

    The model's [fairness] field lists state sets [H = {h_1, ..., h_n}];
    path quantifiers range over paths along which every [h_k] holds
    infinitely often.  A model with an empty list behaves as if it had
    the single trivial constraint [true], which makes the witness
    machinery uniform (a plain [EG] witness is a fair [EG] witness for
    [H = {true}]). *)

type rings = {
  constr : Bdd.t;  (** the fairness constraint [h] *)
  layers : Bdd.t array;
      (** the saved approximations [Q^h_i] of [E[f U (Z /\ h)]] from the
          final outer iteration, [Q^h_0 = Z /\ h] *)
}
(** The "onion rings" Section 6's witness construction descends. *)

type engine =
  | El  (** the paper's Emerson-Lei nested fixpoint (the default) *)
  | Lockstep
      (** lock-step symbolic SCC decomposition restricted to
          fairness-intersecting SCCs (Chatterjee et al., arXiv
          1804.00206) *)
(** Which fair-cycle algorithm runs the [EG] fixpoint.  The two are
    verdict-identical by construction — they compute the same state
    set, and BDDs are canonical — and witness rings are extracted by
    shared code after either engine converges, so traces and
    certificates are byte-identical too.  Only the symbolic-step cost
    (and the {!fixpoint_stats} counters that expose it) differs. *)

val engine_name : engine -> string
(** ["el"] or ["lockstep"] — the tag stored in [Kripke.fair_memo] and
    accepted by the CLI/server selectors. *)

val engine_of_string : string -> engine option
(** Inverse of {!engine_name}. *)

type fixpoint_stats = {
  outer_iterations : int;
      (** iterations of the fair-[EG] outer greatest fixpoint
          (Emerson-Lei engine) *)
  ring_layers : int;
      (** layers saved by {!eg_with_rings} for witness generation *)
  lockstep_rounds : int;
      (** lock-step image rounds (lock-step engine) *)
  lockstep_sccs_examined : int;
      (** SCCs the lock-step engine isolated and tested for fairness *)
  lockstep_sccs_skipped : int;
      (** regions the lock-step engine dropped for missing a fairness
          constraint *)
}
(** Counters accumulated process-wide since the last
    {!reset_fixpoint_stats}; the nested [EU] sweeps the outer fixpoint
    runs are counted by [Check.fixpoint_stats]. *)

val fixpoint_stats : unit -> fixpoint_stats
(** Snapshot the counters. *)

val reset_fixpoint_stats : unit -> unit
(** Zero the counters. *)

val constraints : Kripke.t -> Bdd.t list
(** The effective fairness constraints: the model's list, or [[true]]
    when it is empty. *)

val eg : ?limits:Bdd.Limits.t -> ?engine:engine -> Kripke.t -> Bdd.t -> Bdd.t
(** [CheckFairEG] — with [El] (the default) the greatest fixpoint
    [gfp Z. f /\ /\_k EX (E[f U (Z /\ h_k)])], with [Lockstep] the
    equivalent [E[f U hull]] over the lock-step SCC hull.  Every
    function below accepts [?limits]: outer iterations (resp. lock-step
    rounds) and nested fixpoint iterations each charge one step against
    the budget (raising [Bdd.Limits.Exhausted] on a breach); limits
    never change results, only whether the computation is allowed to
    finish. *)

val eg_with_rings :
  ?limits:Bdd.Limits.t ->
  ?engine:engine ->
  Kripke.t ->
  Bdd.t ->
  Bdd.t * rings list
(** Fair [EG] together with the ring sequences, one per effective
    constraint.  The rings are extracted by engine-independent code
    from the converged fixpoint ([Check.eu_rings] against [Z /\ h_k]),
    so both engines yield byte-identical rings — and hence witnesses. *)

val fair_states : ?limits:Bdd.Limits.t -> ?engine:engine -> Kripke.t -> Bdd.t
(** [fair = CheckFairEG true]: states at the start of some fair path.
    Memoised on the model ([Kripke.fair_memo]) together with the
    producing engine's name; a call under the other engine recomputes
    and retags rather than silently reusing the cached diagram. *)

val ex : ?limits:Bdd.Limits.t -> ?engine:engine -> Kripke.t -> Bdd.t -> Bdd.t
(** [CheckFairEX f = CheckEX (f /\ fair)]. *)

val eu :
  ?limits:Bdd.Limits.t -> ?engine:engine -> Kripke.t -> Bdd.t -> Bdd.t -> Bdd.t
(** [CheckFairEU f g = CheckEU f (g /\ fair)]. *)

val sat : ?limits:Bdd.Limits.t -> ?engine:engine -> Kripke.t -> Syntax.t -> Bdd.t
(** Full CTL over fair paths ([CheckFair]). *)

val holds : ?limits:Bdd.Limits.t -> ?engine:engine -> Kripke.t -> Syntax.t -> bool
(** Does every initial state satisfy the formula over fair paths? *)
