(** CTL model checking under fairness constraints (Section 5).

    The model's [fairness] field lists state sets [H = {h_1, ..., h_n}];
    path quantifiers range over paths along which every [h_k] holds
    infinitely often.  A model with an empty list behaves as if it had
    the single trivial constraint [true], which makes the witness
    machinery uniform (a plain [EG] witness is a fair [EG] witness for
    [H = {true}]). *)

type rings = {
  constr : Bdd.t;  (** the fairness constraint [h] *)
  layers : Bdd.t array;
      (** the saved approximations [Q^h_i] of [E[f U (Z /\ h)]] from the
          final outer iteration, [Q^h_0 = Z /\ h] *)
}
(** The "onion rings" Section 6's witness construction descends. *)

type fixpoint_stats = {
  outer_iterations : int;
      (** iterations of the fair-[EG] outer greatest fixpoint *)
  ring_layers : int;
      (** layers saved by {!eg_with_rings} for witness generation *)
}
(** Counters accumulated process-wide since the last
    {!reset_fixpoint_stats}; the nested [EU] sweeps the outer fixpoint
    runs are counted by [Check.fixpoint_stats]. *)

val fixpoint_stats : unit -> fixpoint_stats
(** Snapshot the counters. *)

val reset_fixpoint_stats : unit -> unit
(** Zero the counters. *)

val constraints : Kripke.t -> Bdd.t list
(** The effective fairness constraints: the model's list, or [[true]]
    when it is empty. *)

val eg : ?limits:Bdd.Limits.t -> Kripke.t -> Bdd.t -> Bdd.t
(** [CheckFairEG]: greatest fixpoint
    [gfp Z. f /\ /\_k EX (E[f U (Z /\ h_k)])].  Every function below
    accepts [?limits]: outer and nested fixpoint iterations each charge
    one step against the budget (raising [Bdd.Limits.Exhausted] on a
    breach); limits never change results, only whether the computation
    is allowed to finish. *)

val eg_with_rings :
  ?limits:Bdd.Limits.t -> Kripke.t -> Bdd.t -> Bdd.t * rings list
(** Fair [EG] together with the ring sequences saved in the last outer
    iteration, one per effective constraint. *)

val fair_states : ?limits:Bdd.Limits.t -> Kripke.t -> Bdd.t
(** [fair = CheckFairEG true]: states at the start of some fair path. *)

val ex : ?limits:Bdd.Limits.t -> Kripke.t -> Bdd.t -> Bdd.t
(** [CheckFairEX f = CheckEX (f /\ fair)]. *)

val eu : ?limits:Bdd.Limits.t -> Kripke.t -> Bdd.t -> Bdd.t -> Bdd.t
(** [CheckFairEU f g = CheckEU f (g /\ fair)]. *)

val sat : ?limits:Bdd.Limits.t -> Kripke.t -> Syntax.t -> Bdd.t
(** Full CTL over fair paths ([CheckFair]). *)

val holds : ?limits:Bdd.Limits.t -> Kripke.t -> Syntax.t -> bool
(** Does every initial state satisfy the formula over fair paths? *)
