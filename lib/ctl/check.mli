(** Symbolic CTL model checking without fairness (Section 4).

    Every function returns state sets as subsets of the model's valid
    encoding [space], so boolean negation behaves like set complement
    within the state space. *)

exception Unknown_atom of string
(** Raised when a formula mentions an atom the model does not label. *)

type fixpoint_stats = {
  eu_iterations : int;
      (** [EU] fixpoint steps, {!eu_rings} sweeps included *)
  eg_iterations : int;  (** plain [EG] fixpoint steps *)
  ring_layers : int;    (** layers saved by {!eu_rings} *)
}
(** Iteration counters, accumulated process-wide (across all models)
    since the last {!reset_fixpoint_stats}. *)

val fixpoint_stats : unit -> fixpoint_stats
(** Snapshot the counters. *)

val reset_fixpoint_stats : unit -> unit
(** Zero the counters. *)

val sat : ?limits:Bdd.Limits.t -> Kripke.t -> Syntax.t -> Bdd.t
(** [sat m f] — the set of states of [m] satisfying [f] (the [Check]
    procedure of Section 4).  Every fixpoint below accepts [?limits]:
    each iteration charges one step against the budget (raising
    [Bdd.Limits.Exhausted] on a breach); limits never change results,
    only whether the computation is allowed to finish. *)

val holds : ?limits:Bdd.Limits.t -> Kripke.t -> Syntax.t -> bool
(** Does every initial state satisfy the formula? *)

val ex : Kripke.t -> Bdd.t -> Bdd.t
(** [CheckEX]: states with a successor in the argument set. *)

val eu : ?limits:Bdd.Limits.t -> Kripke.t -> Bdd.t -> Bdd.t -> Bdd.t
(** [CheckEU f g]: least fixpoint [lfp Z. g \/ (f /\ EX Z)]. *)

val eg : ?limits:Bdd.Limits.t -> Kripke.t -> Bdd.t -> Bdd.t
(** [CheckEG f]: greatest fixpoint [gfp Z. f /\ EX Z]. *)

val sat_with :
  ex:(Kripke.t -> Bdd.t -> Bdd.t) ->
  eu:(Kripke.t -> Bdd.t -> Bdd.t -> Bdd.t) ->
  eg:(Kripke.t -> Bdd.t -> Bdd.t) ->
  Kripke.t ->
  Syntax.t ->
  Bdd.t
(** Generic traversal with the three basic operators supplied; the fair
    checker instantiates it with [CheckFairEX/EU/EG] (Section 5). *)

val eu_rings : ?limits:Bdd.Limits.t -> Kripke.t -> Bdd.t -> Bdd.t -> Bdd.t array
(** The increasing approximation sequence [Q_0 = g, Q_{i+1} = Q_i \/ (f
    /\ EX Q_i)] up to (and including) the fixpoint — the "onion rings"
    that witness construction walks down.  [Q_i] is the set of states
    that can reach [g] in [i] or fewer steps through [f]-states. *)
