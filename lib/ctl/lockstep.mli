(** Lock-step symbolic fair-cycle detection (Chatterjee et al., arXiv
    1804.00206): fair [EG] via symbolic SCC decomposition restricted to
    fairness-constraint-intersecting SCCs, an asymptotically cheaper
    alternative to the Emerson-Lei nested fixpoint.  Library-internal:
    callers select it through [Fair.engine]. *)

type stats = {
  rounds : int;
      (** lock-step image rounds (forward+backward pairs and trailing
          completion sweeps) *)
  sccs_examined : int;  (** SCCs isolated and tested for fairness *)
  sccs_skipped : int;
      (** regions dropped because they miss some fairness constraint *)
}

val stats : unit -> stats
(** Snapshot the process-wide counters. *)

val reset_stats : unit -> unit
(** Zero the counters. *)

val eg : ?limits:Bdd.Limits.t -> Kripke.t -> Bdd.t -> Bdd.t
(** Fair [EG f] as [E[f U hull]] where [hull] is the union of the
    nontrivial SCCs of the [f]-subgraph intersecting every fairness
    constraint.  Returns the same set — hence, BDDs being canonical,
    the same diagram — as [Fair.eg]'s Emerson-Lei fixpoint.  Each
    lock-step round polls [Bdd.Reorder.checkpoint] and charges one
    [?limits] step, the same funnel discipline as the classical
    engine. *)
