type rings = {
  constr : Bdd.t;
  layers : Bdd.t array;
}

(* Two interchangeable fair-cycle engines: the paper's Emerson-Lei
   nested fixpoint, and the lock-step SCC decomposition of [Lockstep].
   Both compute the same state set, so dispatch never changes verdicts
   or witnesses — only how many symbolic steps the fixpoint costs. *)
type engine =
  | El
  | Lockstep

let engine_name = function
  | El -> "el"
  | Lockstep -> "lockstep"

let engine_of_string = function
  | "el" -> Some El
  | "lockstep" -> Some Lockstep
  | _ -> None

(* Observability counters, process-wide like [Check]'s (and atomic for
   the same reason: several checking domains may increment them at
   once); the nested EU sweeps of the fair fixpoint land in
   [Check.fixpoint_stats], the lock-step rounds in [Lockstep.stats]
   (re-exported here so callers see one record). *)
type fixpoint_stats = {
  outer_iterations : int;
  ring_layers : int;
  lockstep_rounds : int;
  lockstep_sccs_examined : int;
  lockstep_sccs_skipped : int;
}

let outer_iters = Atomic.make 0
let rings_saved = Atomic.make 0

let fixpoint_stats () =
  let ls = Lockstep.stats () in
  { outer_iterations = Atomic.get outer_iters;
    ring_layers = Atomic.get rings_saved;
    lockstep_rounds = ls.Lockstep.rounds;
    lockstep_sccs_examined = ls.Lockstep.sccs_examined;
    lockstep_sccs_skipped = ls.Lockstep.sccs_skipped }

let reset_fixpoint_stats () =
  Atomic.set outer_iters 0;
  Atomic.set rings_saved 0;
  Lockstep.reset_stats ()

let constraints (m : Kripke.t) =
  match m.Kripke.fairness with
  | [] -> [ m.Kripke.space ]
  | hs -> hs

(* One step of the outer greatest fixpoint:
   z |-> f /\ /\_k EX (E[f U (z /\ h_k)]).
   [scratch] roots the fold's running conjunction and [z] across the
   nested EU sweeps, whose reorder checkpoints reclaim unrooted
   diagrams. *)
let eg_step ?limits m f hs ~scratch z =
  let bman = m.Kripke.man in
  List.fold_left
    (fun acc h ->
      scratch := [ acc; z ];
      let target = Bdd.and_ bman z h in
      let reach = Check.eu ?limits m f target in
      Bdd.and_ bman acc (Check.ex m reach))
    f hs

let eg_el ?limits (m : Kripke.t) f =
  let bman = m.Kripke.man in
  let hs = constraints m in
  let f = Bdd.and_ bman f m.Kripke.space in
  let frontier = ref f in
  let scratch = ref [] in
  Bdd.with_root bman
    (fun () -> (f :: !frontier :: hs) @ !scratch)
    (fun () ->
      let rec go z =
        Atomic.incr outer_iters;
        Bdd.Reorder.checkpoint bman;
        (match limits with
        | Some l -> Bdd.Limits.step bman l
        | None -> ());
        let z' = eg_step ?limits m f hs ~scratch z in
        if Bdd.equal z z' then z
        else begin
          frontier := z';
          go z'
        end
      in
      go f)

let eg ?limits ?(engine = El) m f =
  match engine with
  | El -> eg_el ?limits m f
  | Lockstep -> Lockstep.eg ?limits m f

(* Ring extraction is engine-independent by design: whichever engine
   converged the fair-EG hull [z], the onion rings are the cheap
   per-constraint [E[f U (z /\ h)]] approximation sequences re-run
   against [z] — so [Counterex.Witness] and [--certify] never see the
   engine, and lock-step witnesses are byte-identical to Emerson-Lei
   ones. *)
let eg_with_rings ?limits ?engine (m : Kripke.t) f =
  let bman = m.Kripke.man in
  let z = eg ?limits ?engine m f in
  let f = Bdd.and_ bman f m.Kripke.space in
  let saved = ref [ z; f ] in
  Bdd.with_root bman
    (fun () -> !saved)
    (fun () ->
      let ring h =
        let layers = Check.eu_rings ?limits m f (Bdd.and_ bman z h) in
        ignore (Atomic.fetch_and_add rings_saved (Array.length layers) : int);
        saved := Array.to_list layers @ !saved;
        { constr = h; layers }
      in
      (z, List.map ring (constraints m)))

(* The fair-states set depends only on (model, fairness), and models
   are checked many formulas at a time, so the fixpoint-over-fixpoints
   is cached on the model itself: [Kripke.with_fairness] resets the
   slot, [Kripke.roots] keeps the cached diagram alive across gc and
   reordering, and [Kripke.clone_into] transfers it to worker
   managers.  The memo is tagged with the producing engine's name:
   both engines compute the same set, but a stale tag would let a
   warm server silently serve engine A's diagram while reporting
   engine B's stats, so a mismatch recomputes (and retags). *)
let fair_states ?limits ?(engine = El) (m : Kripke.t) =
  let tag = engine_name engine in
  match Kripke.fair_memo m with
  | Some (z, t) when String.equal t tag -> z
  | Some _ | None ->
    let z = eg ?limits ~engine m m.Kripke.space in
    Kripke.set_fair_memo m (Some (z, tag));
    z

let ex_with ~fair m f = Check.ex m (Bdd.and_ m.Kripke.man f fair)

let eu_with ?limits ~fair m f g =
  Check.eu ?limits m f (Bdd.and_ m.Kripke.man g fair)

let ex ?limits ?engine m f =
  ex_with ~fair:(fair_states ?limits ?engine m) m f

let eu ?limits ?engine m f g =
  eu_with ?limits ~fair:(fair_states ?limits ?engine m) m f g

let sat ?limits ?engine m formula =
  let fair = fair_states ?limits ?engine m in
  Check.sat_with ~ex:(fun m f -> ex_with ~fair m f)
    ~eu:(fun m f g -> eu_with ?limits ~fair m f g)
    ~eg:(fun m f -> eg ?limits ?engine m f)
    m formula

let holds ?limits ?engine m formula =
  Bdd.subset m.Kripke.man m.Kripke.init (sat ?limits ?engine m formula)
