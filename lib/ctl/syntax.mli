(** CTL formulas (Section 3 of the paper).

    The existential operators [EX], [EU], [EG] are primitive for the
    checker; universal operators are kept in the AST for faithful
    printing and are rewritten by {!enf} using the dualities of
    Section 3.  [Pred] embeds a raw BDD state set, which is how the
    witness algorithms name concrete states (e.g. [{s'} /\ EX E[f U {t}]]
    in Section 6). *)

type t =
  | True
  | False
  | Atom of string  (** looked up in the model's labels *)
  | Pred of Bdd.t   (** a literal state set *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | Iff of t * t
  | EX of t
  | EF of t
  | EG of t
  | EU of t * t
  | AX of t
  | AF of t
  | AG of t
  | AU of t * t

(** {1 Convenience constructors} *)

val atom : string -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val ( ==> ) : t -> t -> t
val neg : t -> t

val map_pred : (Bdd.t -> Bdd.t) -> t -> t
(** Rewrite every embedded [Pred] state set, leaving the formula
    skeleton untouched.  With [Bdd.transfer ~dst] as the function this
    moves a compiled specification onto another manager — how each
    worker domain of a parallel run obtains a private copy of a shared
    specification. *)

(** {1 Normal form} *)

val enf : t -> t
(** Existential normal form: eliminate [Imp]/[Iff] and rewrite the
    universal operators so only [True], [False], [Atom], [Pred], [Not],
    [And], [Or], [EX], [EU], [EG] remain:

    - [AX f  = !EX !f]
    - [EF f  = E[true U f]]
    - [AG f  = !E[true U !f]]
    - [AF f  = !EG !f]
    - [A[f U g] = !E[!g U (!f /\ !g)] /\ !EG !g]  *)

val push_neg : t -> t
(** {!enf} followed by pushing negations inward until they guard only
    atoms / predicates (temporal operators are never negated in the
    result except through the residual [Not] introduced by [EG]/[EU]
    duals, which this function removes by construction).  Used by the
    counterexample explainer. *)

val size : t -> int
(** Number of AST nodes. *)

val atoms : t -> string list
(** Atom names occurring in the formula, sorted, without duplicates. *)

val pp : Format.formatter -> t -> unit
(** Concrete syntax compatible with {!Parse.formula}. *)

val to_string : t -> string
