exception Error of string

type token =
  | Tident of string
  | Ttrue
  | Tfalse
  | Tnot
  | Tand
  | Tor
  | Timp
  | Tiff
  | Tlpar
  | Trpar
  | Tlbrack
  | Trbrack
  | Tex
  | Tef
  | Teg
  | Tax
  | Taf
  | Tag
  | Te
  | Ta
  | Tu
  | Teof

let describe = function
  | Tident s -> Printf.sprintf "identifier %S" s
  | Ttrue -> "'true'"
  | Tfalse -> "'false'"
  | Tnot -> "'!'"
  | Tand -> "'&'"
  | Tor -> "'|'"
  | Timp -> "'->'"
  | Tiff -> "'<->'"
  | Tlpar -> "'('"
  | Trpar -> "')'"
  | Tlbrack -> "'['"
  | Trbrack -> "']'"
  | Tex -> "'EX'"
  | Tef -> "'EF'"
  | Teg -> "'EG'"
  | Tax -> "'AX'"
  | Taf -> "'AF'"
  | Tag -> "'AG'"
  | Te -> "'E'"
  | Ta -> "'A'"
  | Tu -> "'U'"
  | Teof -> "end of input"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '.' || c = '-'

let keyword = function
  | "true" -> Ttrue
  | "false" -> Tfalse
  | "EX" -> Tex
  | "EF" -> Tef
  | "EG" -> Teg
  | "AX" -> Tax
  | "AF" -> Taf
  | "AG" -> Tag
  | "E" -> Te
  | "A" -> Ta
  | "U" -> Tu
  | s -> Tident s

let tokenize input =
  let n = String.length input in
  let rec go i acc =
    if i >= n then List.rev ((Teof, i) :: acc)
    else
      let c = input.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1) acc
      else if c = '!' then go (i + 1) ((Tnot, i) :: acc)
      else if c = '&' then go (i + 1) ((Tand, i) :: acc)
      else if c = '|' then go (i + 1) ((Tor, i) :: acc)
      else if c = '(' then go (i + 1) ((Tlpar, i) :: acc)
      else if c = ')' then go (i + 1) ((Trpar, i) :: acc)
      else if c = '[' then go (i + 1) ((Tlbrack, i) :: acc)
      else if c = ']' then go (i + 1) ((Trbrack, i) :: acc)
      else if c = '-' && i + 1 < n && input.[i + 1] = '>' then
        go (i + 2) ((Timp, i) :: acc)
      else if c = '<' && i + 2 < n && input.[i + 1] = '-' && input.[i + 2] = '>'
      then go (i + 3) ((Tiff, i) :: acc)
      else if is_ident_start c then begin
        let j = ref (i + 1) in
        (* '-' is allowed inside identifiers (signal names) but must not
           swallow a following "->". *)
        while
          !j < n
          && is_ident_char input.[!j]
          && not (input.[!j] = '-' && !j + 1 < n && input.[!j + 1] = '>')
        do
          incr j
        done;
        let word = String.sub input i (!j - i) in
        go !j ((keyword word, i) :: acc)
      end
      else raise (Error (Printf.sprintf "unexpected character %C at %d" c i))
  in
  go 0 []

(* Recursive-descent parser over the token list. *)
type stream = { mutable toks : (token * int) list }

let peek s = match s.toks with [] -> (Teof, 0) | t :: _ -> t

let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let expect s tok =
  let got, pos = peek s in
  if got = tok then advance s
  else
    raise
      (Error
         (Printf.sprintf "expected %s but found %s at %d" (describe tok)
            (describe got) pos))

let rec p_iff s =
  let a = p_imp s in
  match peek s with
  | Tiff, _ ->
    advance s;
    Syntax.Iff (a, p_iff s)
  | _ -> a

and p_imp s =
  let a = p_or s in
  match peek s with
  | Timp, _ ->
    advance s;
    Syntax.Imp (a, p_imp s)
  | _ -> a

and p_or s =
  let rec loop a =
    match peek s with
    | Tor, _ ->
      advance s;
      loop (Syntax.Or (a, p_and s))
    | _ -> a
  in
  loop (p_and s)

and p_and s =
  let rec loop a =
    match peek s with
    | Tand, _ ->
      advance s;
      loop (Syntax.And (a, p_unary s))
    | _ -> a
  in
  loop (p_unary s)

and p_unary s =
  let tok, pos = peek s in
  match tok with
  | Tnot ->
    advance s;
    Syntax.Not (p_unary s)
  | Tex ->
    advance s;
    Syntax.EX (p_unary s)
  | Tef ->
    advance s;
    Syntax.EF (p_unary s)
  | Teg ->
    advance s;
    Syntax.EG (p_unary s)
  | Tax ->
    advance s;
    Syntax.AX (p_unary s)
  | Taf ->
    advance s;
    Syntax.AF (p_unary s)
  | Tag ->
    advance s;
    Syntax.AG (p_unary s)
  | Te ->
    advance s;
    let a, b = p_until s in
    Syntax.EU (a, b)
  | Ta ->
    advance s;
    let a, b = p_until s in
    Syntax.AU (a, b)
  | Ttrue ->
    advance s;
    Syntax.True
  | Tfalse ->
    advance s;
    Syntax.False
  | Tident name ->
    advance s;
    Syntax.Atom name
  | Tlpar ->
    advance s;
    let f = p_iff s in
    expect s Trpar;
    f
  | Tand | Tor | Timp | Tiff | Trpar | Tlbrack | Trbrack | Tu | Teof ->
    raise
      (Error (Printf.sprintf "unexpected %s at %d" (describe tok) pos))

and p_until s =
  expect s Tlbrack;
  let a = p_iff s in
  expect s Tu;
  let b = p_iff s in
  expect s Trbrack;
  (a, b)

let formula input =
  let s = { toks = tokenize input } in
  let f = p_iff s in
  (match peek s with
  | Teof, _ -> ()
  | tok, pos ->
    raise
      (Error (Printf.sprintf "trailing %s at %d" (describe tok) pos)));
  f

let formula_opt input =
  match formula input with
  | f -> Ok f
  | exception Error msg -> Stdlib.Error msg
