(** CTL: syntax ({!Syntax}, re-exported), concrete-syntax {!Parse}r,
    the symbolic {!Check}er of Section 4 and the {!Fair} checker of
    Section 5. *)

include Syntax
module Parse = Parse
module Check = Check
module Fair = Fair
