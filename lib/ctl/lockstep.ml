(* Lock-step symbolic fair-cycle detection (Chatterjee-Henzinger-
   Loitzenbauer-Oraee-Toman, arXiv 1804.00206; the lock-step SCC search
   itself is Bloem-Gabow-Somenzi).

   Fair [EG f] asks for states with an [f]-path along which every
   fairness constraint holds infinitely often.  Such a path eventually
   dwells inside one nontrivial SCC of the [f]-subgraph that intersects
   every constraint, so

     fair EG f  =  E[f U hull],   hull = union of those SCCs.

   The SCCs are found by symbolic decomposition: pick a seed state [v],
   grow its forward set [F] and backward set [B] within the current
   region one image per round *in lock step*, and stop growing both as
   soon as either converges — the smaller side bounds the SCC, giving
   the O(n sqrt n) symbolic-step bound instead of the Emerson-Lei
   O(n^2) worst case.  [SCC(v) = F /\ B]; because the converged side is
   closed within the region, no SCC straddles the split, so the two
   remainders recurse independently (an explicit worklist, no stack).
   Regions that miss some fairness constraint cannot contain a fair SCC
   and are dropped without a search.

   The Emerson-Lei engine in [Fair] and this one are verdict-identical
   by construction: both compute the same set of states, and BDDs are
   canonical per manager.  Witness extraction is shared — [Fair]
   re-runs the cheap per-constraint [Check.eu_rings] against the
   converged hull, so onion rings (and everything downstream:
   [Counterex], [--certify]) never see which engine produced the
   fixpoint. *)

type stats = {
  rounds : int;  (** lock-step image rounds (forward+backward pairs and
                     trailing completion sweeps) *)
  sccs_examined : int;  (** SCCs isolated and tested for fairness *)
  sccs_skipped : int;
      (** regions dropped because they miss some fairness constraint *)
}

let rounds_c = Atomic.make 0
let examined_c = Atomic.make 0
let skipped_c = Atomic.make 0

let stats () =
  { rounds = Atomic.get rounds_c;
    sccs_examined = Atomic.get examined_c;
    sccs_skipped = Atomic.get skipped_c }

let reset_stats () =
  Atomic.set rounds_c 0;
  Atomic.set examined_c 0;
  Atomic.set skipped_c 0

(* Mirrors [Fair.constraints]; duplicated to keep the dependency
   pointing Fair -> Lockstep only. *)
let constraints (m : Kripke.t) =
  match m.Kripke.fairness with
  | [] -> [ m.Kripke.space ]
  | hs -> hs

let eg ?limits (m : Kripke.t) f =
  let bman = m.Kripke.man in
  let hs = constraints m in
  let f = Bdd.and_ bman f m.Kripke.space in
  let zero = Bdd.zero bman in
  (* Mutable state of the decomposition, all rooted below so the
     reorder checkpoints and gcs fired from [poll] never sweep a live
     intermediate. *)
  let hull = ref zero in
  let work = ref [ f ] in
  let fwd = ref zero and bwd = ref zero in
  let ffront = ref zero and bfront = ref zero in
  let region = ref zero in
  Bdd.with_root bman
    (fun () ->
      f :: !hull :: !fwd :: !bwd :: !ffront :: !bfront :: !region
      :: (!work @ hs))
    (fun () ->
      (* Same funnel discipline as the Emerson-Lei loop: every round
         offers the manager a reorder checkpoint (where [--inject]
         faults also fire) and charges one step against the budget. *)
      let poll () =
        Bdd.Reorder.checkpoint bman;
        match limits with
        | Some l -> Bdd.Limits.step bman l
        | None -> ()
      in
      let round () =
        Atomic.incr rounds_c;
        poll ()
      in
      let post_in s x = Bdd.and_ bman (Kripke.post m x) s in
      let pre_in s x = Bdd.and_ bman (Kripke.pre m x) s in
      let note_scc c =
        Atomic.incr examined_c;
        (* Nontrivial: some edge stays inside [c] (a singleton counts
           only with a self-loop).  [c] is within the [f]-subgraph, so
           any internal edge is an [f]-edge. *)
        let nontrivial =
          not (Bdd.is_zero (Bdd.and_ bman c (Kripke.pre m c)))
        in
        if
          nontrivial
          && List.for_all
               (fun h -> not (Bdd.is_zero (Bdd.and_ bman c h)))
               hs
        then hull := Bdd.or_ bman !hull c
      in
      (* Trim: the greatest subset of [s] closed under both [pre] and
         [post] — every remaining state has a successor and a
         predecessor inside the set.  Dead chains (and with them every
         trivial SCC not strictly between two cycles — e.g. the
         unreachable source states that dominate a model's raw
         encoding space) vanish in bulk, one image per chain layer,
         instead of costing one lock-step search each.  Nontrivial
         SCCs survive whole (each of their states has a successor and
         a predecessor in the SCC itself, so the SCC is a post-fixpoint
         of the trim operator), hence the hull is unchanged. *)
      let trim s =
        region := s;
        let stable = ref false in
        while not !stable do
          round ();
          let nxt = Bdd.and_ bman !region (Kripke.pre m !region) in
          let nxt = Bdd.and_ bman nxt (Kripke.post m nxt) in
          stable := Bdd.equal nxt !region;
          region := nxt
        done;
        !region
      in
      let miss_constraint s =
        List.exists (fun h -> Bdd.is_zero (Bdd.and_ bman s h)) hs
      in
      let decompose s =
        region := s;
        if miss_constraint s then
          (* No fair SCC fits here; drop the whole region unsearched. *)
          Atomic.incr skipped_c
        else begin
          let s = trim s in
          if Bdd.is_zero s then ()
          else if miss_constraint s then Atomic.incr skipped_c
          else begin
          let seed =
            (* Deterministic: [pick_state] takes the least encoding.
               Seeding from the first constraint is complete — every
               fair SCC intersects it, and unfair SCCs isolated on the
               way are rejected by [note_scc]. *)
            let candidates = Bdd.and_ bman s (List.hd hs) in
            match Kripke.pick_state m candidates with
            | Some st -> Kripke.state_to_bdd m st
            | None -> assert false (* nonzero by the skip test *)
          in
          fwd := seed;
          bwd := seed;
          ffront := seed;
          bfront := seed;
          (* Lock step: one forward and one backward image per round,
             until either side has converged within [s]. *)
          while
            (not (Bdd.is_zero !ffront)) && not (Bdd.is_zero !bfront)
          do
            round ();
            ffront := Bdd.diff bman (post_in s !ffront) !fwd;
            fwd := Bdd.or_ bman !fwd !ffront;
            bfront := Bdd.diff bman (pre_in s !bfront) !bwd;
            bwd := Bdd.or_ bman !bwd !bfront
          done;
          if Bdd.is_zero !ffront then begin
            (* [fwd] is the full forward set of the seed within [s]
               (forward-closed, so no SCC straddles it).  Finish the
               backward sweep only until its frontier leaves [fwd]:
               any SCC state both lies in [fwd] and reaches the seed
               through [fwd], so it is collected before this stops. *)
            while not (Bdd.is_zero (Bdd.and_ bman !bfront !fwd)) do
              round ();
              bfront := Bdd.diff bman (pre_in s !bfront) !bwd;
              bwd := Bdd.or_ bman !bwd !bfront
            done;
            let c = Bdd.and_ bman !fwd !bwd in
            note_scc c;
            work := Bdd.diff bman !fwd c :: Bdd.diff bman s !fwd :: !work
          end
          else begin
            (* Symmetric: the backward set converged first. *)
            while not (Bdd.is_zero (Bdd.and_ bman !ffront !bwd)) do
              round ();
              ffront := Bdd.diff bman (post_in s !ffront) !fwd;
              fwd := Bdd.or_ bman !fwd !ffront
            done;
            let c = Bdd.and_ bman !fwd !bwd in
            note_scc c;
            work := Bdd.diff bman !bwd c :: Bdd.diff bman s !bwd :: !work
          end
          end
        end
      in
      let rec drain () =
        match !work with
        | [] -> ()
        | s :: rest ->
          work := rest;
          poll ();
          if not (Bdd.is_zero s) then decompose s;
          drain ()
      in
      drain ();
      if Bdd.is_zero !hull then zero else Check.eu ?limits m f !hull)
