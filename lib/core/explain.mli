(** Recursive counterexample / witness explanation for full CTL.

    This is the user-facing facility of Section 6: when a universally
    quantified specification fails, produce an execution trace that
    demonstrates the negated, existentially quantified formula — e.g.
    for [AG (r -> AF a)] a path from an initial state to a state where
    [r] holds, continued by a fair lasso on which [a] never holds (the
    arbiter counterexample of the case study).

    Explanation recurses through the existential structure: [EU]
    prefixes are extended by explaining the target formula at the
    reached state, [EX] steps are extended by explaining the operand,
    [EG] produces a fair lasso.  Conjunctions explain their first
    temporal conjunct (a single path cannot in general demonstrate two
    temporal facts at once — the classic limitation of linear
    counterexamples); disjunctions explain a disjunct that actually
    holds.  Negated temporal subformulas are treated as opaque state
    sets.  All path quantifiers range over fair paths. *)

exception Cannot_explain of string

val explain :
  ?limits:Bdd.Limits.t ->
  ?engine:Ctl.Fair.engine ->
  Kripke.t -> Ctl.t -> start:Kripke.state -> Kripke.Trace.t
(** [explain m f ~start] — a trace demonstrating [f] at [start]; the
    formula must hold there under fair semantics (raises
    {!Cannot_explain} otherwise).  The trace is finite when no temporal
    continuation is required (purely propositional facts, [EU] into a
    propositional target), and a lasso when an [EG] is involved.
    [limits] is threaded to every fixpoint and ring descent involved; a
    breach raises [Bdd.Limits.Exhausted]. *)

val witness :
  ?limits:Bdd.Limits.t ->
  ?engine:Ctl.Fair.engine ->
  Kripke.t -> Ctl.t -> Kripke.Trace.t option
(** A trace from some initial state demonstrating the (existential)
    formula; [None] when no initial state satisfies it. *)

val counterexample :
  ?limits:Bdd.Limits.t ->
  ?engine:Ctl.Fair.engine ->
  Kripke.t -> Ctl.t -> Kripke.Trace.t option
(** A trace from some initial state demonstrating the *negation* of the
    formula; [None] when the formula holds on every initial state
    (i.e. the specification is true and there is nothing to show). *)
