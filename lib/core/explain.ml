exception Cannot_explain of string

(* Does the formula contain a temporal operator reachable through the
   boolean skeleton only (i.e. one a path explanation can exhibit)?
   Negated temporal operators are opaque: a single path cannot refute a
   path quantifier. *)
let rec is_temporal = function
  | Ctl.EX _ | Ctl.EU _ | Ctl.EG _ -> true
  | Ctl.And (a, b) | Ctl.Or (a, b) -> is_temporal a || is_temporal b
  | Ctl.True | Ctl.False | Ctl.Atom _ | Ctl.Pred _ | Ctl.Not _
    ->
    false
  | Ctl.Imp _ | Ctl.Iff _ | Ctl.EF _ | Ctl.AX _ | Ctl.AF _
  | Ctl.AG _ | Ctl.AU _ ->
    (* explain works on push_neg-normalised formulas *)
    assert false

let explain ?limits ?engine m formula ~start =
  let bman = m.Kripke.man in
  let fair = Ctl.Fair.fair_states ?limits ?engine m in
  let satf f = Ctl.Fair.sat ?limits ?engine m f in
  let holds_at f st = Kripke.eval_in_state m (satf f) st in
  let rec go f st =
    if not (holds_at f st) then
      raise
        (Cannot_explain
           (Printf.sprintf "formula %s does not hold at the start state"
              (Ctl.to_string f)));
    match f with
    | Ctl.True | Ctl.False | Ctl.Atom _ | Ctl.Pred _
    | Ctl.Not _ ->
      Kripke.Trace.finite [ st ]
    | Ctl.And (a, b) ->
      if is_temporal a then go a st
      else if is_temporal b then go b st
      else Kripke.Trace.finite [ st ]
    | Ctl.Or (a, b) -> if holds_at a st then go a st else go b st
    | Ctl.EX a ->
      let target = Bdd.and_ bman (satf a) fair in
      let step = Witness.ex ?limits m ~f:target ~start:st in
      continue step a
    | Ctl.EU (a, b) ->
      let target = Bdd.and_ bman (satf b) fair in
      let prefix = Witness.eu ?limits m ~f:(satf a) ~g:target ~start:st in
      continue prefix b
    | Ctl.EG a -> Witness.eg ?limits ?engine m ~f:(satf a) ~start:st
    | Ctl.Imp _ | Ctl.Iff _ | Ctl.EF _ | Ctl.AX _ | Ctl.AF _
    | Ctl.AG _ | Ctl.AU _ ->
      assert false
  (* Extend a finite trace by explaining [f] at its final state (only
     when [f] still has something to show). *)
  and continue prefix f =
    if not (is_temporal f) then prefix
    else
      match List.rev (Kripke.Trace.states prefix) with
      | [] -> assert false
      | last :: _ -> Kripke.Trace.append prefix (go f last)
  in
  go (Ctl.push_neg formula) start

let witness ?limits ?engine m formula =
  let sat = Ctl.Fair.sat ?limits ?engine m formula in
  let good = Bdd.and_ m.Kripke.man m.Kripke.init sat in
  match Kripke.pick_state m good with
  | None -> None
  | Some st -> Some (explain ?limits ?engine m formula ~start:st)

let counterexample ?limits ?engine m formula =
  let sat = Ctl.Fair.sat ?limits ?engine m formula in
  let bad = Bdd.diff m.Kripke.man m.Kripke.init sat in
  match Kripke.pick_state m bad with
  | None -> None
  | Some st -> Some (explain ?limits ?engine m (Ctl.Not formula) ~start:st)
