exception No_witness of string

type strategy = Restart | Precompute

type stats = {
  restarts : int;
  rounds : int;
}

exception
  Restart_bound_exceeded of {
    restarts : int;
    rounds : int;
    prefix : Kripke.state list;
  }

let in_set m set st = Kripke.eval_in_state m set st

(* Charge one ring-descent segment against the optional resource
   limits (shared by every descent below). *)
let ring_tick (m : Kripke.t) = function
  | None -> ()
  | Some l -> Bdd.Limits.ring_step m.Kripke.man l

let note_progress limits prefix_rev =
  match limits with
  | None -> ()
  | Some l -> Bdd.Limits.note_witness l (List.rev prefix_rev)

let succ_set m st = Kripke.post m (Kripke.state_to_bdd m st)

let pick m set =
  match Kripke.pick_state m set with
  | Some st -> st
  | None -> raise (No_witness "internal: empty pick")

(* Smallest ring index below [limit] whose intersection with [set] is
   non-empty, together with a representative state; scanning from 0
   yields the shortest continuation. *)
let min_layer m ?limit (layers : Bdd.t array) set =
  let bman = m.Kripke.man in
  let bound =
    match limit with Some j -> j | None -> Array.length layers
  in
  let rec scan i =
    if i >= bound then None
    else
      let inter = Bdd.and_ bman layers.(i) set in
      if Bdd.is_zero inter then scan (i + 1) else Some (i, pick m inter)
  in
  scan 0

(* Walk from [start] (a member of [layers.(j0)]) down to a layer-0
   state; returns the states strictly after [start], in order.  The
   strictly-descending scan is expressed as an index bound on
   [min_layer] — copying a ring-array prefix per step ([Array.sub])
   would make each descent quadratic in the ring count. *)
let descend ?limits m layers ~start ~level:j0 =
  let rec go acc st j =
    if j = 0 then List.rev acc
    else begin
      ring_tick m limits;
      match min_layer m ~limit:j layers (succ_set m st) with
      | Some (j', next) -> go (next :: acc) next j'
      | None -> raise (No_witness "internal: ring descent stuck")
    end
  in
  go [] start j0

let level_of m layers st =
  let rec scan i =
    if i >= Array.length layers then None
    else if in_set m layers.(i) st then Some i
    else scan (i + 1)
  in
  scan 0

(* ------------------------------------------------------------------ *)
(* EX and EU (no fairness).                                            *)

let ex ?limits m ~f ~start =
  let bman = m.Kripke.man in
  ring_tick m limits;
  let target = Bdd.and_ bman (succ_set m start) f in
  match Kripke.pick_state m target with
  | Some next -> Kripke.Trace.finite [ start; next ]
  | None -> raise (No_witness "EX: start state has no successor in f")

let eu ?limits m ~f ~g ~start =
  let rings = Ctl.Check.eu_rings ?limits m f g in
  match level_of m rings start with
  | None -> raise (No_witness "EU: start state does not satisfy E[f U g]")
  | Some j ->
    Kripke.Trace.finite (start :: descend ?limits m rings ~start ~level:j)

(* ------------------------------------------------------------------ *)
(* Fair EG: the algorithm of Section 6.                                *)

(* One constraint-visiting round from [s].  Returns the round's states
   (strictly after [s], in order) and, on success, the closing path
   (from the first successor of [s'] up to and including [t]).  The
   caller appends and, on failure, restarts from the last state. *)
type round_outcome =
  | Closed of Kripke.state list * Kripke.state list
      (** (round states [t .. s'], closing states [u .. t]) *)
  | Failed of Kripke.state list
      (** round states walked before giving up; restart at their last
          (or at [s] if empty — impossible, rounds always move) *)

let run_round ?limits m ~strategy ~f ~egf ~(rings : Ctl.Fair.rings list) s =
  let exception Early_exit of Kripke.state list in
  (* Precompute strategy: set once [t] is known. *)
  let reach_t = ref None in
  let emit acc st =
    (match !reach_t with
    | Some r when not (in_set m r st) -> raise (Early_exit (st :: acc))
    | Some _ | None -> ());
    st :: acc
  in
  let visit_constraint (acc, current) (r : Ctl.Fair.rings) =
    ring_tick m limits;
    match min_layer m r.Ctl.Fair.layers (succ_set m current) with
    | None -> raise (No_witness "EG: no fairness constraint reachable")
    | Some (j, first) ->
      let acc = emit acc first in
      (match (!reach_t, strategy) with
      | None, Precompute ->
        reach_t :=
          Some (Ctl.Check.eu ?limits m egf (Kripke.state_to_bdd m first))
      | None, Restart | Some _, (Restart | Precompute) -> ());
      let rest = descend ?limits m r.Ctl.Fair.layers ~start:first ~level:j in
      let acc = List.fold_left emit acc rest in
      let current = match acc with st :: _ -> st | [] -> assert false in
      (acc, current)
  in
  (* Visit the nearest constraint first: order rings by the distance
     from [s] to their nearest layer containing a successor of [s];
     recomputing the greedy choice before every segment follows the
     paper ("we choose the first fairness constraint that can be
     reached"), so segments re-sort dynamically. *)
  let rec rounds acc current remaining =
    match remaining with
    | [] -> (acc, current)
    | first_r :: _ ->
      let dist r =
        match min_layer m r.Ctl.Fair.layers (succ_set m current) with
        | Some (j, _) -> j
        | None -> max_int
      in
      let best, best_d =
        List.fold_left
          (fun (br, bd) r ->
            let d = dist r in
            if d < bd then (r, d) else (br, bd))
          (first_r, dist first_r)
          (List.tl remaining)
      in
      if best_d = max_int then
        raise (No_witness "EG: no fairness constraint reachable");
      let acc, current = visit_constraint (acc, current) best in
      let remaining' =
        List.filter
          (fun r' -> not (Bdd.equal r'.Ctl.Fair.constr best.Ctl.Fair.constr))
          remaining
      in
      rounds acc current remaining'
  in
  match rounds [] s rings with
  | exception Early_exit acc -> Failed (List.rev acc)
  | acc, s' ->
    let round_states = List.rev acc in
    let t = match round_states with t :: _ -> t | [] -> s (* no constraints: impossible, rings non-empty *) in
    (* Close the cycle: a non-trivial path s' -> t through f-states:
       {s'} /\ EX E[f U {t}]. *)
    let t_set = Kripke.state_to_bdd m t in
    let closing_rings = Ctl.Check.eu_rings ?limits m f t_set in
    (match min_layer m closing_rings (succ_set m s') with
    | Some (j, u) ->
      let closing = u :: descend ?limits m closing_rings ~start:u ~level:j in
      Closed (round_states, closing)
    | None -> Failed round_states)

let eg_stats ?limits ?engine ?(strategy = Restart) ?(max_restarts = 1_000_000)
    m ~f ~start =
  let f = Bdd.and_ m.Kripke.man f m.Kripke.space in
  let egf, rings = Ctl.Fair.eg_with_rings ?limits ?engine m f in
  if not (in_set m egf start) then
    raise (No_witness "EG: start state does not satisfy fair EG f");
  (* Each failed round strictly descends the DAG of strongly connected
     components, so the number of restarts is bounded by the number of
     states; [max_restarts] is a hard backstop against implementation
     bugs.  On exhaustion the collected prefix and round counts are
     preserved in the exception so the failure is diagnosable. *)
  let rec loop prefix_rev s restarts =
    if restarts > max_restarts then
      raise
        (Restart_bound_exceeded
           { restarts; rounds = restarts; prefix = List.rev prefix_rev });
    note_progress limits prefix_rev;
    match run_round ?limits m ~strategy ~f ~egf ~rings s with
    | Closed (round_states, closing) ->
      let prefix = List.rev prefix_rev in
      (* closing = u .. t ; drop the final t (it opens the cycle). *)
      let closing_body =
        match List.rev closing with
        | _t :: rev_rest -> List.rev rev_rest
        | [] -> []
      in
      let cycle = round_states @ closing_body in
      (Kripke.Trace.lasso ~prefix ~cycle, { restarts; rounds = restarts + 1 })
    | Failed round_states ->
      let s' =
        match List.rev round_states with
        | last :: _ -> last
        | [] -> raise (No_witness "EG: empty round")
      in
      loop (List.rev_append round_states prefix_rev) s' (restarts + 1)
  in
  loop [ start ] start 0

let eg ?limits ?engine ?strategy m ~f ~start =
  fst (eg_stats ?limits ?engine ?strategy m ~f ~start)

(* ------------------------------------------------------------------ *)
(* Fair EX / EU: reduce to the unfair operator against [g /\ fair] and
   extend to an infinite fair path with an [EG true] witness.          *)

let extend_fair ?limits ?engine m trace =
  match List.rev (Kripke.Trace.states trace) with
  | [] -> raise (No_witness "internal: empty trace")
  | last :: _ ->
    let tail = eg ?limits ?engine m ~f:m.Kripke.space ~start:last in
    Kripke.Trace.append trace tail

let ex_fair ?limits ?engine m ~f ~start =
  let bman = m.Kripke.man in
  let fair = Ctl.Fair.fair_states ?limits ?engine m in
  extend_fair ?limits ?engine m (ex ?limits m ~f:(Bdd.and_ bman f fair) ~start)

let eu_fair ?limits ?engine m ~f ~g ~start =
  let bman = m.Kripke.man in
  let fair = Ctl.Fair.fair_states ?limits ?engine m in
  extend_fair ?limits ?engine m
    (eu ?limits m ~f ~g:(Bdd.and_ bman g fair) ~start)
