type error =
  | Empty_trace
  | Broken_transition of int
  | Broken_loop
  | State_outside of int * string
  | Missing_fairness of int

let pp_error ppf = function
  | Empty_trace -> Format.pp_print_string ppf "empty trace"
  | Broken_transition i ->
    Format.fprintf ppf "no transition between positions %d and %d" i (i + 1)
  | Broken_loop -> Format.pp_print_string ppf "cycle does not close"
  | State_outside (i, what) ->
    Format.fprintf ppf "state at position %d violates %s" i what
  | Missing_fairness k ->
    Format.fprintf ppf "cycle misses fairness constraint #%d" k

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let has_edge m a b =
  let bman = m.Kripke.man in
  let a_set = Kripke.state_to_bdd m a in
  let b_next = Kripke.prime m (Kripke.state_to_bdd m b) in
  not (Bdd.is_zero (Bdd.conj bman [ m.Kripke.trans; a_set; b_next ]))

let all_states_in m set ~what states =
  let rec go i = function
    | [] -> Ok ()
    | st :: rest ->
      if Kripke.eval_in_state m set st then go (i + 1) rest
      else Error (State_outside (i, what))
  in
  go 0 states

let path_ok m tr =
  let states = Kripke.Trace.states tr in
  match states with
  | [] -> Error Empty_trace
  | _ :: _ ->
    let* () = all_states_in m m.Kripke.space ~what:"the state space" states in
    let rec edges i = function
      | a :: (b :: _ as rest) ->
        if has_edge m a b then edges (i + 1) rest
        else Error (Broken_transition i)
      | [ _ ] | [] -> Ok ()
    in
    let* () = edges 0 states in
    if not (Kripke.Trace.is_lasso tr) then Ok ()
    else
      let first_of_cycle =
        match tr.Kripke.Trace.cycle with st :: _ -> st | [] -> assert false
      in
      let last =
        match List.rev tr.Kripke.Trace.cycle with st :: _ -> st | [] -> assert false
      in
      if has_edge m last first_of_cycle then Ok () else Error Broken_loop

let eg_witness m ~f tr =
  let* () = path_ok m tr in
  if not (Kripke.Trace.is_lasso tr) then Error Broken_loop
  else
    let* () =
      all_states_in m f ~what:"the invariant f of EG f" (Kripke.Trace.states tr)
    in
    let hit h = List.exists (Kripke.eval_in_state m h) tr.Kripke.Trace.cycle in
    let rec check k = function
      | [] -> Ok ()
      | h :: rest -> if hit h then check (k + 1) rest else Error (Missing_fairness k)
    in
    check 0 m.Kripke.fairness

let eu_witness m ~f ~g tr =
  let* () = path_ok m tr in
  if Kripke.Trace.is_lasso tr then Error Broken_loop
  else
    match List.rev (Kripke.Trace.states tr) with
    | [] -> Error Empty_trace
    | last :: before_rev ->
      let* () =
        all_states_in m f ~what:"the left operand of EU" (List.rev before_rev)
      in
      if Kripke.eval_in_state m g last then Ok ()
      else
        Error
          (State_outside (List.length before_rev, "the right operand of EU"))

let ex_witness m ~f tr =
  let* () = path_ok m tr in
  match Kripke.Trace.states tr with
  | _ :: second :: _ ->
    if Kripke.eval_in_state m f second then Ok ()
    else Error (State_outside (1, "the operand of EX"))
  | [ _ ] | [] -> Error (State_outside (0, "a two-state EX witness"))

let starts_at m set tr =
  match Kripke.Trace.states tr with
  | [] -> Error Empty_trace
  | first :: _ ->
    if Kripke.eval_in_state m set first then Ok ()
    else Error (State_outside (0, "the required start set"))
