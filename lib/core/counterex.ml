(** The paper's contribution: generation of counterexamples and
    witnesses for symbolic model checking (Section 6), trace
    {!Validate}-ion, and the recursive {!Explain}er that turns a failed
    universal specification into a printable execution trace. *)

module Witness = Witness
module Explain = Explain
module Validate = Validate
