(** Witness construction for the basic CTL operators (Section 6).

    All functions take state sets that must come from the corresponding
    checker ({!Ctl.Check} / {!Ctl.Fair}) on the same model, and a
    concrete start state satisfying the formula; they return an
    execution trace demonstrating it.  [EG] witnesses are lassos whose
    cycle visits every fairness constraint of the model at least once —
    the "finite witness" of Section 6; by Theorem 1 finding a
    minimal-length one is NP-complete, so the construction is the
    paper's greedy heuristic: repeatedly descend the saved onion rings
    to the nearest not-yet-visited fairness constraint, then close the
    cycle. *)

exception No_witness of string
(** Raised when the start state does not satisfy the formula the
    witness is requested for (i.e. the caller did not check first), or
    when an internal invariant is broken. *)

(** How to complete the cycle of a fair [EG] witness (Section 6). *)
type strategy =
  | Restart
      (** the simple strategy: try to close the cycle after visiting
          all constraints; on failure restart the construction from the
          path's final state (descending the SCC DAG, Figure 2) *)
  | Precompute
      (** the "slightly more sophisticated" strategy: after fixing the
          cycle-start state [t], precompute [E[(EG f) U {t}]] and
          restart as soon as the path first leaves that set *)

type stats = {
  restarts : int;  (** completed constraint rounds that failed to close *)
  rounds : int;    (** total constraint-visiting rounds (restarts + 1) *)
}

exception
  Restart_bound_exceeded of {
    restarts : int;             (** failed rounds completed *)
    rounds : int;               (** rounds attempted *)
    prefix : Kripke.state list; (** path collected before giving up *)
  }
(** Raised by {!eg_stats} / {!eg} when the construction exceeds its
    restart bound, preserving the work done so far for diagnosis
    (unlike {!No_witness}, which reports contract violations). *)

val ex :
  ?limits:Bdd.Limits.t ->
  Kripke.t -> f:Bdd.t -> start:Kripke.state -> Kripke.Trace.t
(** Two-state witness for [EX f] (no fairness): [start] followed by a
    successor in [f].  Every function below accepts [?limits]: each
    ring-descent segment charges one step against the budget (raising
    [Bdd.Limits.Exhausted] on a breach), and the fair-[EG] construction
    records its best-so-far path prefix in the limits' progress so a
    breach still reports partial work.  Limits never change the
    witness, only whether the construction is allowed to finish. *)

val eu :
  ?limits:Bdd.Limits.t ->
  Kripke.t -> f:Bdd.t -> g:Bdd.t -> start:Kripke.state -> Kripke.Trace.t
(** Finite witness for [E[f U g]] (no fairness): a shortest-via-rings
    path from [start] through [f]-states to a [g]-state. *)

val eg :
  ?limits:Bdd.Limits.t ->
  ?engine:Ctl.Fair.engine ->
  ?strategy:strategy ->
  Kripke.t -> f:Bdd.t -> start:Kripke.state -> Kripke.Trace.t
(** Lasso witness for [EG f] under the model's fairness constraints
    (all of Section 6).  With no declared constraints this degenerates
    to a plain [EG] witness.  [engine] selects the fair-cycle engine
    used to converge the hull; the rings the construction walks are
    extracted by engine-independent code, so the witness is
    byte-identical under either. *)

val eg_stats :
  ?limits:Bdd.Limits.t ->
  ?engine:Ctl.Fair.engine ->
  ?strategy:strategy ->
  ?max_restarts:int ->
  Kripke.t ->
  f:Bdd.t ->
  start:Kripke.state ->
  Kripke.Trace.t * stats
(** Like {!eg} but also reports how many rounds the construction
    needed — the quantity the strategy ablation (experiment E3)
    measures.  [max_restarts] (default one million, a backstop far
    above the state-count bound on legitimate restarts) caps the failed
    rounds; exceeding it raises {!Restart_bound_exceeded} with the
    collected prefix and counts. *)

val ex_fair :
  ?limits:Bdd.Limits.t ->
  ?engine:Ctl.Fair.engine ->
  Kripke.t -> f:Bdd.t -> start:Kripke.state -> Kripke.Trace.t
(** Witness for [EX f] under fairness: a step into [f /\ fair],
    extended to an infinite fair path by an [EG true] witness. *)

val eu_fair :
  ?limits:Bdd.Limits.t ->
  ?engine:Ctl.Fair.engine ->
  Kripke.t -> f:Bdd.t -> g:Bdd.t -> start:Kripke.state -> Kripke.Trace.t
(** Witness for [E[f U g]] under fairness: a finite prefix to
    [g /\ fair], extended to an infinite fair path. *)
