(** Independent validation of produced traces.

    The witness generator and this validator share only the model: the
    validator re-checks traces against path semantics directly (state
    membership, transition-relation membership, fairness hits on the
    cycle), so a passing validation is evidence of soundness of the
    construction, not merely of internal consistency. *)

type error =
  | Empty_trace
  | Broken_transition of int  (** no edge between positions i and i+1 *)
  | Broken_loop  (** last cycle state has no edge back to the first *)
  | State_outside of int * string
      (** position i violates the named requirement *)
  | Missing_fairness of int  (** cycle misses fairness constraint #k *)

val pp_error : Format.formatter -> error -> unit

val path_ok : Kripke.t -> Kripke.Trace.t -> (unit, error) result
(** Consecutive states (and the loop edge, for lassos) are transitions
    of the model, and every state lies in the model's state space. *)

val eg_witness : Kripke.t -> f:Bdd.t -> Kripke.Trace.t -> (unit, error) result
(** The trace is a valid lasso, every state satisfies [f], and every
    fairness constraint of the model holds somewhere on the cycle —
    i.e. it is a finite witness for fair [EG f] (Section 6). *)

val eu_witness : Kripke.t -> f:Bdd.t -> g:Bdd.t -> Kripke.Trace.t -> (unit, error) result
(** The trace is a valid finite path, its last state satisfies [g] and
    all earlier states satisfy [f]. *)

val ex_witness : Kripke.t -> f:Bdd.t -> Kripke.Trace.t -> (unit, error) result
(** The trace is a valid path of at least two states whose second state
    satisfies [f]. *)

val starts_at : Kripke.t -> Bdd.t -> Kripke.Trace.t -> (unit, error) result
(** The first state belongs to the given set (e.g. the initial states,
    for counterexamples). *)
