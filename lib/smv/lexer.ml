type token =
  | MODULE
  | VAR
  | ASSIGN
  | INIT
  | TRANS
  | INVAR
  | FAIRNESS
  | DEFINE
  | SPEC
  | KW_init
  | KW_next
  | CASE
  | ESAC
  | BOOLEAN
  | TRUE
  | FALSE
  | EX
  | EF
  | EG
  | AX
  | AF
  | AG
  | BIG_E
  | BIG_A
  | BIG_U
  | IDENT of string
  | INT of int
  | COLON
  | SEMI
  | BECOMES
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | COMMA
  | DOTDOT
  | PLUS
  | MINUS
  | KW_mod
  | KW_in
  | KW_process
  | NOT
  | AND
  | OR
  | IMP
  | IFF
  | EOF

exception Error of string * Ast.pos

let keyword = function
  | "MODULE" -> Some MODULE
  | "VAR" -> Some VAR
  | "ASSIGN" -> Some ASSIGN
  | "INIT" -> Some INIT
  | "TRANS" -> Some TRANS
  | "INVAR" -> Some INVAR
  | "FAIRNESS" -> Some FAIRNESS
  | "DEFINE" -> Some DEFINE
  | "SPEC" -> Some SPEC
  | "init" -> Some KW_init
  | "next" -> Some KW_next
  | "case" -> Some CASE
  | "esac" -> Some ESAC
  | "mod" -> Some KW_mod
  | "in" -> Some KW_in
  | "process" -> Some KW_process
  | "boolean" -> Some BOOLEAN
  | "TRUE" -> Some TRUE
  | "FALSE" -> Some FALSE
  | "EX" -> Some EX
  | "EF" -> Some EF
  | "EG" -> Some EG
  | "AX" -> Some AX
  | "AF" -> Some AF
  | "AG" -> Some AG
  | "E" -> Some BIG_E
  | "A" -> Some BIG_A
  | "U" -> Some BIG_U
  | _ -> None

let describe = function
  | MODULE -> "'MODULE'"
  | VAR -> "'VAR'"
  | ASSIGN -> "'ASSIGN'"
  | INIT -> "'INIT'"
  | TRANS -> "'TRANS'"
  | INVAR -> "'INVAR'"
  | FAIRNESS -> "'FAIRNESS'"
  | DEFINE -> "'DEFINE'"
  | SPEC -> "'SPEC'"
  | KW_init -> "'init'"
  | KW_next -> "'next'"
  | CASE -> "'case'"
  | ESAC -> "'esac'"
  | BOOLEAN -> "'boolean'"
  | TRUE -> "'TRUE'"
  | FALSE -> "'FALSE'"
  | EX -> "'EX'"
  | EF -> "'EF'"
  | EG -> "'EG'"
  | AX -> "'AX'"
  | AF -> "'AF'"
  | AG -> "'AG'"
  | BIG_E -> "'E'"
  | BIG_A -> "'A'"
  | BIG_U -> "'U'"
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | COLON -> "':'"
  | SEMI -> "';'"
  | BECOMES -> "':='"
  | EQ -> "'='"
  | NEQ -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACK -> "'['"
  | RBRACK -> "']'"
  | COMMA -> "','"
  | DOTDOT -> "'..'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | KW_mod -> "'mod'"
  | KW_in -> "'in'"
  | KW_process -> "'process'"
  | NOT -> "'!'"
  | AND -> "'&'"
  | OR -> "'|'"
  | IMP -> "'->'"
  | IFF -> "'<->'"
  | EOF -> "end of input"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '.' || c = '-'

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let line = ref 1 and bol = ref 0 in
  let pos i = { Ast.line = !line; col = i - !bol + 1 } in
  let rec go i acc =
    if i >= n then List.rev ((EOF, pos i) :: acc)
    else
      let c = input.[i] in
      if c = '\n' then begin
        incr line;
        bol := i + 1;
        go (i + 1) acc
      end
      else if c = ' ' || c = '\t' || c = '\r' then go (i + 1) acc
      else if c = '-' && i + 1 < n && input.[i + 1] = '-' then begin
        (* comment to end of line *)
        let rec skip j = if j < n && input.[j] <> '\n' then skip (j + 1) else j in
        go (skip (i + 2)) acc
      end
      else if c = '-' && i + 1 < n && input.[i + 1] = '>' then
        go (i + 2) ((IMP, pos i) :: acc)
      else if c = '-' then go (i + 1) ((MINUS, pos i) :: acc)
      else if c = '+' then go (i + 1) ((PLUS, pos i) :: acc)
      else if c = '<' && i + 2 < n && input.[i + 1] = '-' && input.[i + 2] = '>'
      then go (i + 3) ((IFF, pos i) :: acc)
      else if c = '<' && i + 1 < n && input.[i + 1] = '=' then
        go (i + 2) ((LE, pos i) :: acc)
      else if c = '<' then go (i + 1) ((LT, pos i) :: acc)
      else if c = '>' && i + 1 < n && input.[i + 1] = '=' then
        go (i + 2) ((GE, pos i) :: acc)
      else if c = '>' then go (i + 1) ((GT, pos i) :: acc)
      else if c = '!' && i + 1 < n && input.[i + 1] = '=' then
        go (i + 2) ((NEQ, pos i) :: acc)
      else if c = '!' then go (i + 1) ((NOT, pos i) :: acc)
      else if c = ':' && i + 1 < n && input.[i + 1] = '=' then
        go (i + 2) ((BECOMES, pos i) :: acc)
      else if c = ':' then go (i + 1) ((COLON, pos i) :: acc)
      else if c = ';' then go (i + 1) ((SEMI, pos i) :: acc)
      else if c = '=' then go (i + 1) ((EQ, pos i) :: acc)
      else if c = '{' then go (i + 1) ((LBRACE, pos i) :: acc)
      else if c = '}' then go (i + 1) ((RBRACE, pos i) :: acc)
      else if c = '(' then go (i + 1) ((LPAREN, pos i) :: acc)
      else if c = ')' then go (i + 1) ((RPAREN, pos i) :: acc)
      else if c = '[' then go (i + 1) ((LBRACK, pos i) :: acc)
      else if c = ']' then go (i + 1) ((RBRACK, pos i) :: acc)
      else if c = ',' then go (i + 1) ((COMMA, pos i) :: acc)
      else if c = '&' then go (i + 1) ((AND, pos i) :: acc)
      else if c = '|' then go (i + 1) ((OR, pos i) :: acc)
      else if c = '.' && i + 1 < n && input.[i + 1] = '.' then
        go (i + 2) ((DOTDOT, pos i) :: acc)
      else if is_digit c then begin
        let j = ref i in
        while !j < n && is_digit input.[!j] do incr j done;
        let text = String.sub input i (!j - i) in
        match int_of_string_opt text with
        | Some value -> go !j ((INT value, pos i) :: acc)
        | None ->
          raise
            (Error (Printf.sprintf "integer literal out of range: %s" text,
                    pos i))
      end
      else if is_ident_start c then begin
        let j = ref (i + 1) in
        (* Identifiers may contain '.' (hierarchical names) and '-'
           (signal names) but must not swallow "->" or "..". *)
        while
          !j < n
          && is_ident_char input.[!j]
          && not (input.[!j] = '-' && !j + 1 < n && input.[!j + 1] = '>')
          && not (input.[!j] = '-' && !j + 1 < n && input.[!j + 1] = '-')
          && not (input.[!j] = '.' && !j + 1 < n && input.[!j + 1] = '.')
        do
          incr j
        done;
        let word = String.sub input i (!j - i) in
        let tok = match keyword word with Some t -> t | None -> IDENT word in
        go !j ((tok, pos i) :: acc)
      end
      else
        raise (Error (Printf.sprintf "unexpected character %C" c, pos i))
  in
  go 0 []
