(** The SMV-like input language: {!Ast}, {!Lexer}, {!Parser},
    {!Compile}, and convenience entry points. *)

module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Flatten = Flatten
module Compile = Compile

(** Parse and compile an SMV source text. *)
let load_string ?partitioned ?static_order source =
  Compile.compile ?partitioned ?static_order (Parser.program source)

(** Parse and compile an SMV file. *)
let load_file ?partitioned ?static_order path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let source = really_input_string ic n in
  close_in ic;
  load_string ?partitioned ?static_order source
