exception Error of string * Ast.pos option

type compiled = {
  model : Kripke.t;
  specs : (string * Ctl.t) list;
  defines : (string * Ast.expr) list;
  clusters : Bdd.t list;
}

let err ?pos fmt = Format.kasprintf (fun msg -> raise (Error (msg, pos))) fmt

(* Compilation environment. *)
type env = {
  builder : Kripke.Builder.b;
  bman : Bdd.man;
  vars : (string, Kripke.var) Hashtbl.t;
  consts : (string, unit) Hashtbl.t;  (* enumeration constants *)
  defines : (string, Ast.expr) Hashtbl.t;
  expanding : (string, unit) Hashtbl.t;  (* DEFINE cycle detection *)
}

let find_var env pos name =
  match Hashtbl.find_opt env.vars name with
  | Some v -> v
  | None -> err ~pos "undeclared variable %s" name

(* The domain of a variable, as values. *)
let domain (v : Kripke.var) =
  match v.Kripke.vtype with
  | Kripke.Bool -> [ Kripke.B false; Kripke.B true ]
  | Kripke.Enum names -> List.map (fun s -> Kripke.S s) names
  | Kripke.Range (lo, hi) -> List.init (hi - lo + 1) (fun i -> Kripke.I (lo + i))

let value_kind = function
  | Kripke.B _ -> "boolean"
  | Kripke.S _ -> "symbolic"
  | Kripke.I _ -> "integer"

(* Guarded-value denotation of deterministic expressions: a list of
   (value, condition) pairs whose conditions partition true.  [primed]
   selects the next-state copy for variable reads; [allow_next] permits
   [next(...)] (TRANS only). *)
let rec guarded env ~primed ~allow_next (e : Ast.expr) =
  let bool_pairs f =
    [ (Kripke.B true, f); (Kripke.B false, Bdd.not_ env.bman f) ]
  in
  match e.Ast.desc with
  | Ast.Etrue -> bool_pairs (Bdd.one env.bman)
  | Ast.Efalse -> bool_pairs (Bdd.zero env.bman)
  | Ast.Eint n -> [ (Kripke.I n, Bdd.one env.bman) ]
  | Ast.Eident name -> (
    match Hashtbl.find_opt env.defines name with
    | Some body ->
      if Hashtbl.mem env.expanding name then
        err ~pos:e.Ast.pos "cyclic DEFINE %s" name;
      Hashtbl.replace env.expanding name ();
      let result =
        (* [next] is not allowed inside a definition body itself. *)
        guarded env ~primed ~allow_next:false body
      in
      Hashtbl.remove env.expanding name;
      result
    | None ->
      if Hashtbl.mem env.consts name && not (Hashtbl.mem env.vars name) then
        [ (Kripke.S name, Bdd.one env.bman) ]
      else
        let v = find_var env e.Ast.pos name in
        let read value =
          if primed then Kripke.Builder.is' env.builder v value
          else Kripke.Builder.is env.builder v value
        in
        List.map (fun value -> (value, read value)) (domain v))
  | Ast.Enext inner ->
    if not allow_next then
      err ~pos:e.Ast.pos "next(...) is only allowed in TRANS constraints";
    if primed then err ~pos:e.Ast.pos "nested next(...)";
    guarded env ~primed:true ~allow_next:false inner
  | Ast.Enot _ | Ast.Eand _ | Ast.Eor _ | Ast.Eimp _ | Ast.Eiff _
  | Ast.Eeq _ | Ast.Eneq _ | Ast.Elt _ | Ast.Ele _ | Ast.Egt _ | Ast.Ege _
  | Ast.Ein _ ->
    bool_pairs (as_bool env ~primed ~allow_next e)
  | Ast.Eadd (a, b) -> arith env ~primed ~allow_next ~pos:e.Ast.pos "+" ( + ) a b
  | Ast.Esub (a, b) -> arith env ~primed ~allow_next ~pos:e.Ast.pos "-" ( - ) a b
  | Ast.Emod (a, b) ->
    let safe_mod x y =
      if y = 0 then err ~pos:e.Ast.pos "modulo by zero" else ((x mod y) + y) mod y
    in
    arith env ~primed ~allow_next ~pos:e.Ast.pos "mod" safe_mod a b
  | Ast.Ecase branches ->
    let rec flatten not_prior = function
      | [] -> []
      | (g, value) :: rest ->
        let gset = as_bool env ~primed ~allow_next g in
        let here = Bdd.and_ env.bman not_prior gset in
        let pairs =
          List.map
            (fun (v, cond) -> (v, Bdd.and_ env.bman here cond))
            (guarded env ~primed ~allow_next value)
        in
        pairs
        @ flatten (Bdd.and_ env.bman not_prior (Bdd.not_ env.bman gset)) rest
    in
    flatten (Bdd.one env.bman) branches
  | Ast.Eset _ ->
    err ~pos:e.Ast.pos
      "a set is only allowed on the right-hand side of an assignment"
  | Ast.Eex _ | Ast.Eef _ | Ast.Eeg _ | Ast.Eax _ | Ast.Eaf _ | Ast.Eag _
  | Ast.Eeu _ | Ast.Eau _ ->
    err ~pos:e.Ast.pos "a temporal operator is only allowed in SPEC"

(* Integer arithmetic over guarded values; conditions of equal results
   are merged so domains stay small. *)
and arith env ~primed ~allow_next ~pos what op a b =
  let as_int = function
    | Kripke.I i, cond -> (i, cond)
    | (Kripke.B _ | Kripke.S _), _ ->
      err ~pos "%s requires integer operands" what
  in
  let ga = List.map as_int (guarded env ~primed ~allow_next a) in
  let gb = List.map as_int (guarded env ~primed ~allow_next b) in
  let table = Hashtbl.create 16 in
  List.iter
    (fun (va, ca) ->
      List.iter
        (fun (vb, cb) ->
          let v = op va vb in
          let cond = Bdd.and_ env.bman ca cb in
          let prev =
            match Hashtbl.find_opt table v with
            | Some c -> c
            | None -> Bdd.zero env.bman
          in
          Hashtbl.replace table v (Bdd.or_ env.bman prev cond))
        gb)
    ga;
  Hashtbl.fold (fun v cond acc -> (Kripke.I v, cond) :: acc) table []

and as_bool env ~primed ~allow_next (e : Ast.expr) =
  let recur = as_bool env ~primed ~allow_next in
  let compare_values ~pos ~what op a b =
    let ga = guarded env ~primed ~allow_next a in
    let gb = guarded env ~primed ~allow_next b in
    (match (ga, gb) with
    | (va, _) :: _, (vb, _) :: _
      when value_kind va <> value_kind vb ->
      err ~pos "cannot compare %s and %s values with %s" (value_kind va)
        (value_kind vb) what
    | _, _ -> ());
    let hits =
      List.concat_map
        (fun (va, ca) ->
          List.filter_map
            (fun (vb, cb) ->
              if op va vb then Some (Bdd.and_ env.bman ca cb) else None)
            gb)
        ga
    in
    Bdd.disj env.bman hits
  in
  let int_cmp ~pos ~what cmp a b =
    let as_int ~pos v =
      match v with
      | Kripke.I i -> i
      | Kripke.B _ | Kripke.S _ ->
        err ~pos "%s requires integer operands" what
    in
    compare_values ~pos ~what
      (fun va vb -> cmp (as_int ~pos va) (as_int ~pos vb))
      a b
  in
  match e.Ast.desc with
  | Ast.Etrue -> Bdd.one env.bman
  | Ast.Efalse -> Bdd.zero env.bman
  | Ast.Enot a -> Bdd.not_ env.bman (recur a)
  | Ast.Eand (a, b) -> Bdd.and_ env.bman (recur a) (recur b)
  | Ast.Eor (a, b) -> Bdd.or_ env.bman (recur a) (recur b)
  | Ast.Eimp (a, b) -> Bdd.imp env.bman (recur a) (recur b)
  | Ast.Eiff (a, b) -> Bdd.iff env.bman (recur a) (recur b)
  | Ast.Eeq (a, b) -> compare_values ~pos:e.Ast.pos ~what:"=" ( = ) a b
  | Ast.Eneq (a, b) ->
    Bdd.not_ env.bman (compare_values ~pos:e.Ast.pos ~what:"!=" ( = ) a b)
  | Ast.Ein (a, b) ->
    let members =
      match b.Ast.desc with Ast.Eset elems -> elems | _ -> [ b ]
    in
    Bdd.disj env.bman
      (List.map
         (fun elem ->
           compare_values ~pos:e.Ast.pos ~what:"in" ( = ) a elem)
         members)
  | Ast.Elt (a, b) -> int_cmp ~pos:e.Ast.pos ~what:"<" ( < ) a b
  | Ast.Ele (a, b) -> int_cmp ~pos:e.Ast.pos ~what:"<=" ( <= ) a b
  | Ast.Egt (a, b) -> int_cmp ~pos:e.Ast.pos ~what:">" ( > ) a b
  | Ast.Ege (a, b) -> int_cmp ~pos:e.Ast.pos ~what:">=" ( >= ) a b
  | Ast.Eident _ | Ast.Enext _ | Ast.Eint _ | Ast.Ecase _
  | Ast.Eadd _ | Ast.Esub _ | Ast.Emod _ -> (
    let pairs = guarded env ~primed ~allow_next e in
    (* A deterministic value used as a boolean must be boolean-kinded. *)
    let trues =
      List.filter_map
        (fun (v, cond) ->
          match v with
          | Kripke.B true -> Some cond
          | Kripke.B false -> None
          | Kripke.S _ | Kripke.I _ ->
            err ~pos:e.Ast.pos "expected a boolean expression")
        pairs
    in
    Bdd.disj env.bman trues)
  | Ast.Eset _ ->
    err ~pos:e.Ast.pos "a set cannot be used as a boolean expression"
  | Ast.Eex _ | Ast.Eef _ | Ast.Eeg _ | Ast.Eax _ | Ast.Eaf _ | Ast.Eag _
  | Ast.Eeu _ | Ast.Eau _ ->
    err ~pos:e.Ast.pos "a temporal operator is only allowed in SPEC"

(* Relation "target(copy) = e": handles nondeterministic sets and case
   expressions with set-valued branches.  [guard] is the context
   condition accumulated from enclosing case branches: values outside
   the target's domain are only an error when they can actually occur
   under it. *)
let rec assign_relation env ~guard ~target ~target_primed ~rhs_primed
    (e : Ast.expr) =
  let self = assign_relation env ~guard ~target ~target_primed ~rhs_primed in
  match e.Ast.desc with
  | Ast.Eset elems -> Bdd.disj env.bman (List.map self elems)
  | Ast.Ecase branches ->
    let rec flatten not_prior = function
      | [] -> Bdd.zero env.bman
      | (g, value) :: rest ->
        let gset = as_bool env ~primed:rhs_primed ~allow_next:false g in
        let here = Bdd.and_ env.bman not_prior gset in
        let guard = Bdd.and_ env.bman guard here in
        Bdd.or_ env.bman
          (Bdd.and_ env.bman here
             (assign_relation env ~guard ~target ~target_primed ~rhs_primed
                value))
          (flatten (Bdd.and_ env.bman not_prior (Bdd.not_ env.bman gset)) rest)
    in
    flatten (Bdd.one env.bman) branches
  | Ast.Etrue | Ast.Efalse | Ast.Eint _ | Ast.Eident _ | Ast.Enext _
  | Ast.Enot _ | Ast.Eand _ | Ast.Eor _ | Ast.Eimp _ | Ast.Eiff _ | Ast.Eeq _
  | Ast.Eneq _ | Ast.Elt _ | Ast.Ele _ | Ast.Egt _ | Ast.Ege _ | Ast.Eadd _
  | Ast.Esub _ | Ast.Emod _ | Ast.Ein _ ->
    let pairs = guarded env ~primed:rhs_primed ~allow_next:false e in
    let dom = domain target in
    let write value =
      if target_primed then Kripke.Builder.is' env.builder target value
      else Kripke.Builder.is env.builder target value
    in
    let hits =
      List.filter_map
        (fun (v, cond) ->
          if List.mem v dom then Some (Bdd.and_ env.bman cond (write v))
          else if Bdd.is_zero (Bdd.and_ env.bman guard cond) then None
          else
            err ~pos:e.Ast.pos "value %s outside the domain of %s"
              (Format.asprintf "%a" Kripke.pp_value v)
              target.Kripke.var_name)
        pairs
    in
    Bdd.disj env.bman hits
  | Ast.Eex _ | Ast.Eef _ | Ast.Eeg _ | Ast.Eax _ | Ast.Eaf _ | Ast.Eag _
  | Ast.Eeu _ | Ast.Eau _ ->
    err ~pos:e.Ast.pos "a temporal operator is only allowed in SPEC"

(* SPEC expressions to CTL: temporal and boolean structure is kept,
   propositional leaves become Pred state sets. *)
let rec to_ctl env (e : Ast.expr) =
  let leaf () = Ctl.Pred (as_bool env ~primed:false ~allow_next:false e) in
  match e.Ast.desc with
  | Ast.Enot a -> Ctl.Not (to_ctl env a)
  | Ast.Eand (a, b) -> Ctl.And (to_ctl env a, to_ctl env b)
  | Ast.Eor (a, b) -> Ctl.Or (to_ctl env a, to_ctl env b)
  | Ast.Eimp (a, b) -> Ctl.Imp (to_ctl env a, to_ctl env b)
  | Ast.Eiff (a, b) -> Ctl.Iff (to_ctl env a, to_ctl env b)
  | Ast.Eex a -> Ctl.EX (to_ctl env a)
  | Ast.Eef a -> Ctl.EF (to_ctl env a)
  | Ast.Eeg a -> Ctl.EG (to_ctl env a)
  | Ast.Eax a -> Ctl.AX (to_ctl env a)
  | Ast.Eaf a -> Ctl.AF (to_ctl env a)
  | Ast.Eag a -> Ctl.AG (to_ctl env a)
  | Ast.Eeu (a, b) -> Ctl.EU (to_ctl env a, to_ctl env b)
  | Ast.Eau (a, b) -> Ctl.AU (to_ctl env a, to_ctl env b)
  | Ast.Etrue -> Ctl.True
  | Ast.Efalse -> Ctl.False
  | Ast.Eint _ | Ast.Eident _ | Ast.Enext _ | Ast.Eeq _ | Ast.Eneq _
  | Ast.Elt _ | Ast.Ele _ | Ast.Egt _ | Ast.Ege _ | Ast.Eset _ | Ast.Ecase _
  | Ast.Eadd _ | Ast.Esub _ | Ast.Emod _ | Ast.Ein _ ->
    leaf ()

let declare_vars env decls =
  List.iter
    (function
      | Ast.Dvar entries ->
        List.iter
          (fun (name, dtype) ->
            if Hashtbl.mem env.vars name then
              err "duplicate variable %s" name;
            if Hashtbl.mem env.consts name then
              err "variable %s collides with an enumeration constant" name;
            let v =
              match dtype with
              | Ast.Tbool -> Kripke.Builder.bool_var env.builder name
              | Ast.Tenum consts ->
                List.iter
                  (fun c ->
                    if Hashtbl.mem env.vars c then
                      err "enumeration constant %s collides with a variable" c)
                  consts;
                List.iter (fun c -> Hashtbl.replace env.consts c ()) consts;
                Kripke.Builder.enum_var env.builder name consts
              | Ast.Trange (lo, hi) ->
                if lo > hi then err "empty range for %s" name;
                Kripke.Builder.range_var env.builder name lo hi
              | Ast.Tinstance (mod_name, _) | Ast.Tprocess (mod_name, _) ->
                (* flattening eliminates instances *)
                err "unexpanded module instance %s (internal)" mod_name
            in
            Hashtbl.replace env.vars name v)
          entries
      | Ast.Dassign _ | Ast.Dinit _ | Ast.Dtrans _ | Ast.Dinvar _
      | Ast.Dfairness _ | Ast.Ddefine _ | Ast.Dspec _ ->
        ())
    decls

let declare_defines env decls =
  List.iter
    (function
      | Ast.Ddefine entries ->
        List.iter
          (fun (name, body, pos) ->
            if
              Hashtbl.mem env.vars name
              || Hashtbl.mem env.consts name
              || Hashtbl.mem env.defines name
            then err ~pos "DEFINE %s collides with an existing name" name;
            Hashtbl.replace env.defines name body)
          entries
      | Ast.Dvar _ | Ast.Dassign _ | Ast.Dinit _ | Ast.Dtrans _
      | Ast.Dinvar _ | Ast.Dfairness _ | Ast.Dspec _ ->
        ())
    decls

(* ------------------------------------------------------------------ *)
(* Static variable ordering: a dependency-graph proximity heuristic.
   Every constraint (assignment, TRANS, INVAR, INIT, FAIRNESS) yields
   the set of model variables it mentions (DEFINEs expanded); variables
   co-occurring in small constraints attract each other with weight
   1/(k-1) for a k-variable set, and a greedy max-adjacency placement
   turns the weighted graph into an order.  Interleaving of each
   variable's current/next bit pairs is [Kripke.Builder.seed_order]'s
   job; this chooses only the relative order of the model variables. *)

let expr_var_names env (e : Ast.expr) =
  let hits = Hashtbl.create 8 in
  let expanding = Hashtbl.create 8 in
  let rec go (e : Ast.expr) =
    match e.Ast.desc with
    | Ast.Eident name -> (
      if Hashtbl.mem env.vars name then Hashtbl.replace hits name ()
      else
        match Hashtbl.find_opt env.defines name with
        | Some body ->
          if not (Hashtbl.mem expanding name) then begin
            Hashtbl.replace expanding name ();
            go body
          end
        | None -> ())
    | Ast.Etrue | Ast.Efalse | Ast.Eint _ -> ()
    | Ast.Enext a | Ast.Enot a
    | Ast.Eex a | Ast.Eef a | Ast.Eeg a
    | Ast.Eax a | Ast.Eaf a | Ast.Eag a ->
      go a
    | Ast.Eand (a, b) | Ast.Eor (a, b) | Ast.Eimp (a, b) | Ast.Eiff (a, b)
    | Ast.Eeq (a, b) | Ast.Eneq (a, b) | Ast.Elt (a, b) | Ast.Ele (a, b)
    | Ast.Egt (a, b) | Ast.Ege (a, b) | Ast.Ein (a, b)
    | Ast.Eadd (a, b) | Ast.Esub (a, b) | Ast.Emod (a, b)
    | Ast.Eeu (a, b) | Ast.Eau (a, b) ->
      go a;
      go b
    | Ast.Ecase branches ->
      List.iter
        (fun (g, v) ->
          go g;
          go v)
        branches
    | Ast.Eset elems -> List.iter go elems
  in
  go e;
  Hashtbl.fold (fun name () acc -> name :: acc) hits []

(* Variable sets contributing proximity, one per constraint. *)
let proximity_sets env decls =
  let sets = ref [] in
  let add_expr ?with_target e =
    let names = expr_var_names env e in
    let names =
      match with_target with
      | Some t when not (List.mem t names) -> t :: names
      | Some _ | None -> names
    in
    if List.length names >= 2 then sets := names :: !sets
  in
  List.iter
    (function
      | Ast.Dassign assigns ->
        List.iter
          (fun (_kind, name, rhs, _pos) -> add_expr ~with_target:name rhs)
          assigns
      | Ast.Dinit e | Ast.Dtrans e | Ast.Dinvar e | Ast.Dfairness e ->
        add_expr e
      | Ast.Dvar _ | Ast.Ddefine _ | Ast.Dspec _ -> ())
    decls;
  !sets

(* Greedy max-adjacency placement over the declared variables
   (declaration order breaks every tie, so the heuristic is
   deterministic and degrades to declaration order on an empty
   dependency graph). *)
let proximity_order env decls =
  let declared =
    Hashtbl.fold (fun _ v acc -> v :: acc) env.vars []
    |> List.sort (fun a b ->
           Stdlib.compare a.Kripke.bits.(0) b.Kripke.bits.(0))
  in
  let n = List.length declared in
  if n <= 2 then declared
  else begin
    let names = Array.of_list (List.map (fun v -> v.Kripke.var_name) declared) in
    let index = Hashtbl.create n in
    Array.iteri (fun i name -> Hashtbl.replace index name i) names;
    let adj = Array.make_matrix n n 0.0 in
    List.iter
      (fun set ->
        let is =
          List.filter_map (Hashtbl.find_opt index) set
          |> List.sort_uniq Stdlib.compare
        in
        let k = List.length is in
        (* Huge constraints say little about proximity; skip them. *)
        if k >= 2 && k <= 20 then begin
          let w = 1.0 /. float_of_int (k - 1) in
          List.iter
            (fun i ->
              List.iter
                (fun j ->
                  if i <> j then adj.(i).(j) <- adj.(i).(j) +. w)
                is)
            is
        end)
      (proximity_sets env decls);
    let placed = Array.make n false in
    (* Attraction of each unplaced variable to the placed prefix,
       maintained incrementally. *)
    let pull = Array.make n 0.0 in
    let totals =
      Array.init n (fun i -> Array.fold_left ( +. ) 0.0 adj.(i))
    in
    let best score =
      let bi = ref (-1) in
      for i = n - 1 downto 0 do
        if not placed.(i) && (!bi < 0 || score i >= score !bi -. 1e-12) then
          bi := i
      done;
      !bi
    in
    let order = ref [] in
    let place i =
      placed.(i) <- true;
      order := i :: !order;
      for j = 0 to n - 1 do
        if not placed.(j) then pull.(j) <- pull.(j) +. adj.(i).(j)
      done
    in
    place (best (fun i -> totals.(i)));
    for _ = 2 to n do
      place (best (fun i -> pull.(i)))
    done;
    List.rev_map (fun i -> List.nth declared i) !order
  end

(* The name of the scheduler variable of process semantics, and the
   enumeration constant naming a unit. *)
let selector = "_process"

let unit_const (u : Flatten.unit_decls) =
  if String.equal u.Flatten.upath "" then "main" else u.Flatten.upath

let running_name (u : Flatten.unit_decls) =
  if String.equal u.Flatten.upath "" then "running"
  else u.Flatten.upath ^ ".running"

let compile ?(partitioned = false) ?(static_order = false)
    (program : Ast.program) =
  let units = Flatten.flatten_units program in
  let with_processes = List.length units > 1 in
  let decls = List.concat_map (fun u -> u.Flatten.udecls) units in
  let builder = Kripke.Builder.create () in
  let env =
    {
      builder;
      bman = Kripke.Builder.man builder;
      vars = Hashtbl.create 16;
      consts = Hashtbl.create 16;
      defines = Hashtbl.create 16;
      expanding = Hashtbl.create 8;
    }
  in
  (* With process instances, a scheduler variable records which unit
     runs; [<path>.running] defines expand to selector tests. *)
  let no_pos = { Ast.line = 0; col = 0 } in
  if with_processes then begin
    let consts = List.map unit_const units in
    let v = Kripke.Builder.enum_var builder selector consts in
    Hashtbl.replace env.vars selector v;
    List.iter (fun c -> Hashtbl.replace env.consts c ()) consts;
    List.iter
      (fun u ->
        Hashtbl.replace env.defines (running_name u)
          {
            Ast.desc =
              Ast.Eeq
                ( { Ast.desc = Ast.Eident selector; pos = no_pos },
                  { Ast.desc = Ast.Eident (unit_const u); pos = no_pos } );
            pos = no_pos;
          })
      units
  end;
  declare_vars env decls;
  declare_defines env decls;
  (* All variables and macros are known and no constraint has built a
     BDD yet: the manager is still empty, so seeding the static order
     is a free permutation install. *)
  if static_order then
    Kripke.Builder.seed_order builder (proximity_order env decls);
  let assigned : (string * Ast.assign_kind, Ast.pos) Hashtbl.t =
    Hashtbl.create 16
  in
  let add_invariant f =
    (* holds in every state: restrict the state space itself *)
    Kripke.Builder.add_space builder f
  in
  let specs = ref [] in
  (* Per-unit transition contributions and variable ownership (the
     unit whose text next-assigns the variable). *)
  let nunits = List.length units in
  let unit_rels = Array.make (max 1 nunits) [] in
  let owner : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let add_unit_trans ui rel =
    if with_processes then unit_rels.(ui) <- rel :: unit_rels.(ui)
    else Kripke.Builder.add_trans builder rel
  in
  let do_assign ui (kind, name, rhs, pos) =
    if Hashtbl.mem env.defines name then
      err ~pos "cannot assign to DEFINE %s" name;
    let target = find_var env pos name in
    (match kind with
    | Ast.Acurrent ->
      if
        Hashtbl.mem assigned (name, Ast.Ainit)
        || Hashtbl.mem assigned (name, Ast.Anext)
        || Hashtbl.mem assigned (name, Ast.Acurrent)
      then err ~pos "conflicting assignments to %s" name
    | Ast.Ainit | Ast.Anext ->
      if
        Hashtbl.mem assigned (name, kind)
        || Hashtbl.mem assigned (name, Ast.Acurrent)
      then err ~pos "conflicting assignments to %s" name);
    Hashtbl.replace assigned (name, kind) pos;
    match kind with
    | Ast.Ainit ->
      Kripke.Builder.add_init builder
        (assign_relation env ~guard:(Bdd.one env.bman) ~target
           ~target_primed:false ~rhs_primed:false rhs)
    | Ast.Anext ->
      Hashtbl.replace owner name ui;
      add_unit_trans ui
        (assign_relation env ~guard:(Bdd.one env.bman) ~target
           ~target_primed:true ~rhs_primed:false rhs)
    | Ast.Acurrent ->
      add_invariant
        (assign_relation env ~guard:(Bdd.one env.bman) ~target
           ~target_primed:false ~rhs_primed:false rhs)
  in
  List.iteri
    (fun ui u ->
      List.iter
        (function
          | Ast.Dvar _ -> ()
          | Ast.Dassign assigns -> List.iter (do_assign ui) assigns
          | Ast.Dinit e ->
            Kripke.Builder.add_init builder
              (as_bool env ~primed:false ~allow_next:false e)
          | Ast.Dtrans e ->
            add_unit_trans ui (as_bool env ~primed:false ~allow_next:true e)
          | Ast.Dinvar e ->
            add_invariant (as_bool env ~primed:false ~allow_next:false e)
          | Ast.Ddefine _ -> ()
          | Ast.Dfairness e ->
            Kripke.Builder.add_fairness builder
              (as_bool env ~primed:false ~allow_next:false e)
          | Ast.Dspec e ->
            specs := (Ast.expr_to_string e, to_ctl env e) :: !specs)
        u.Flatten.udecls)
    units;
  (* Process semantics: at each step the selected unit's relations
     apply while the variables owned by the other units stay frozen. *)
  if with_processes then
    List.iteri
      (fun ui u ->
        let selected =
          Kripke.Builder.is builder
            (Hashtbl.find env.vars selector)
            (Kripke.S (unit_const u))
        in
        let frozen =
          Hashtbl.fold
            (fun name owner_ui acc ->
              if owner_ui <> ui then
                Kripke.Builder.unchanged builder (Hashtbl.find env.vars name)
                :: acc
              else acc)
            owner []
        in
        Kripke.Builder.add_trans_case builder
          (Bdd.conj env.bman ((selected :: frozen) @ unit_rels.(ui))))
      units;
  Kripke.Builder.label_all_bools builder;
  let model =
    if partitioned then Kripke.Builder.build_partitioned builder
    else Kripke.Builder.build builder
  in
  let compiled =
    {
      model;
      specs = List.rev !specs;
      defines = Hashtbl.fold (fun k v acc -> (k, v) :: acc) env.defines [];
      clusters = Kripke.Builder.clusters builder;
    }
  in
  (* The compiled artifact outlives any single check: a warm server
     keeps it across requests, and recovery ladders run [Bdd.gc]
     between attempts.  Its embedded diagrams — the Pred state sets
     inside the spec formulas and the partition clusters — are not
     reachable from the model's own roots, so register them here for
     the artifact's lifetime; otherwise a gc would sweep them and any
     later use of the compiled specs would dangle. *)
  let spec_preds =
    List.concat_map
      (fun (_, spec) ->
        let acc = ref [] in
        ignore (Ctl.map_pred (fun b -> acc := b :: !acc; b) spec);
        !acc)
      compiled.specs
  in
  ignore
    (Bdd.add_root model.Kripke.man (fun () -> spec_preds @ compiled.clusters)
      : Bdd.root);
  compiled

let compile_expr compiled source =
  (* Rebuild a read-only environment over the existing model: variable
     reads go through the model's variable table. *)
  let m = compiled.model in
  let builder = Kripke.Builder.create ~man:m.Kripke.man () in
  let env =
    {
      builder;
      bman = m.Kripke.man;
      vars = Hashtbl.create 16;
      consts = Hashtbl.create 16;
      defines = Hashtbl.create 16;
      expanding = Hashtbl.create 8;
    }
  in
  Array.iter
    (fun (v : Kripke.var) ->
      Hashtbl.replace env.vars v.Kripke.var_name v;
      match v.Kripke.vtype with
      | Kripke.Enum consts ->
        List.iter (fun c -> Hashtbl.replace env.consts c ()) consts
      | Kripke.Bool | Kripke.Range _ -> ())
    m.Kripke.vars;
  List.iter
    (fun (name, body) -> Hashtbl.replace env.defines name body)
    compiled.defines;
  to_ctl env (Parser.expression source)
