(** Abstract syntax of the SMV input language subset.

    The supported fragment covers what the paper's case studies need:
    one [MODULE main] with [VAR] declarations over booleans,
    enumerations and integer ranges; [ASSIGN] sections with
    [init(x) :=] / [next(x) :=] / [x :=] assignments (the last is an
    invariant definition); raw [INIT] / [TRANS] / [INVAR] constraints;
    [FAIRNESS] constraints; and CTL [SPEC]s.  Module instantiation and
    [DEFINE] are not supported. *)

type pos = { line : int; col : int }

(** Expressions; temporal operators are only legal inside [SPEC]. *)
type expr = { desc : desc; pos : pos }

and desc =
  | Etrue
  | Efalse
  | Eint of int
  | Eident of string  (** variable or enumeration constant *)
  | Enext of expr     (** [next(x)] — only in TRANS / SPEC-free contexts *)
  | Enot of expr
  | Eand of expr * expr
  | Eor of expr * expr
  | Eimp of expr * expr
  | Eiff of expr * expr
  | Eeq of expr * expr
  | Eneq of expr * expr
  | Elt of expr * expr
  | Ele of expr * expr
  | Egt of expr * expr
  | Ege of expr * expr
  | Eadd of expr * expr
  | Esub of expr * expr
  | Emod of expr * expr
  | Ein of expr * expr  (** set membership: [e in {a, b}] *)
  | Eset of expr list  (** [{a, b, c}] — nondeterministic choice *)
  | Ecase of (expr * expr) list  (** [case g1 : e1; ... esac] *)
  | Eex of expr
  | Eef of expr
  | Eeg of expr
  | Eax of expr
  | Eaf of expr
  | Eag of expr
  | Eeu of expr * expr
  | Eau of expr * expr

type dtype =
  | Tbool
  | Tenum of string list
  | Trange of int * int
  | Tinstance of string * expr list
      (** a submodule instance: module name and actual parameters *)
  | Tprocess of string * expr list
      (** an asynchronously interleaved instance: at each step one
          process (or the top level) runs while the variables owned by
          the others stay frozen *)

type assign_kind = Ainit | Anext | Acurrent

type decl =
  | Dvar of (string * dtype) list
  | Dassign of (assign_kind * string * expr * pos) list
  | Dinit of expr
  | Dtrans of expr
  | Dinvar of expr
  | Dfairness of expr
  | Ddefine of (string * expr * pos) list
  | Dspec of expr

type module_decl = {
  mod_name : string;
  params : string list;
  decls : decl list;
  mod_pos : pos;
}

type program = {
  modules : module_decl list;  (** [main] must be among them *)
}

val pp_pos : Format.formatter -> pos -> unit

val pp_expr : Format.formatter -> expr -> unit
(** Source-like rendering (used to name SPECs in reports). *)

val expr_to_string : expr -> string
