exception Error of string * Ast.pos option

let err ?pos fmt = Format.kasprintf (fun msg -> raise (Error (msg, pos))) fmt

(* The first dotted segment of a hierarchical name. *)
let head name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

(* Local names (variables, instances, defines) declared by a module. *)
let locals_of decls =
  let table = Hashtbl.create 16 in
  List.iter
    (function
      | Ast.Dvar entries ->
        List.iter (fun (name, _) -> Hashtbl.replace table name ()) entries
      | Ast.Ddefine entries ->
        List.iter (fun (name, _, _) -> Hashtbl.replace table name ()) entries
      | Ast.Dassign _ | Ast.Dinit _ | Ast.Dtrans _ | Ast.Dinvar _
      | Ast.Dfairness _ | Ast.Dspec _ ->
        ())
    decls;
  table

(* Rename an identifier of the instantiated module: formal parameters
   become their (already renamed) actual expressions; local names — and
   the implicit [running] of process semantics — get the instance
   prefix; anything else (enumeration constants) is left untouched. *)
let rename_ident ~subst ~locals ~prefix name =
  match Hashtbl.find_opt subst name with
  | Some arg -> arg.Ast.desc
  | None ->
    if Hashtbl.mem locals (head name) || String.equal name "running" then
      Ast.Eident (prefix ^ name)
    else Ast.Eident name

let rec rename_expr ~subst ~locals ~prefix (e : Ast.expr) =
  let r = rename_expr ~subst ~locals ~prefix in
  let desc =
    match e.Ast.desc with
    | Ast.Eident name -> rename_ident ~subst ~locals ~prefix name
    | (Ast.Etrue | Ast.Efalse | Ast.Eint _) as d -> d
    | Ast.Enext a -> Ast.Enext (r a)
    | Ast.Enot a -> Ast.Enot (r a)
    | Ast.Eand (a, b) -> Ast.Eand (r a, r b)
    | Ast.Eor (a, b) -> Ast.Eor (r a, r b)
    | Ast.Eimp (a, b) -> Ast.Eimp (r a, r b)
    | Ast.Eiff (a, b) -> Ast.Eiff (r a, r b)
    | Ast.Eeq (a, b) -> Ast.Eeq (r a, r b)
    | Ast.Eneq (a, b) -> Ast.Eneq (r a, r b)
    | Ast.Elt (a, b) -> Ast.Elt (r a, r b)
    | Ast.Ele (a, b) -> Ast.Ele (r a, r b)
    | Ast.Egt (a, b) -> Ast.Egt (r a, r b)
    | Ast.Ege (a, b) -> Ast.Ege (r a, r b)
    | Ast.Eadd (a, b) -> Ast.Eadd (r a, r b)
    | Ast.Esub (a, b) -> Ast.Esub (r a, r b)
    | Ast.Emod (a, b) -> Ast.Emod (r a, r b)
    | Ast.Ein (a, b) -> Ast.Ein (r a, r b)
    | Ast.Eset elems -> Ast.Eset (List.map r elems)
    | Ast.Ecase branches ->
      Ast.Ecase (List.map (fun (g, v) -> (r g, r v)) branches)
    | Ast.Eex a -> Ast.Eex (r a)
    | Ast.Eef a -> Ast.Eef (r a)
    | Ast.Eeg a -> Ast.Eeg (r a)
    | Ast.Eax a -> Ast.Eax (r a)
    | Ast.Eaf a -> Ast.Eaf (r a)
    | Ast.Eag a -> Ast.Eag (r a)
    | Ast.Eeu (a, b) -> Ast.Eeu (r a, r b)
    | Ast.Eau (a, b) -> Ast.Eau (r a, r b)
  in
  { e with Ast.desc = desc }

(* Rename an assignment head: a formal parameter cannot be assigned;
   locals (possibly dotted into a sub-instance) get the prefix. *)
let rename_target ~subst ~locals ~prefix name pos =
  if Hashtbl.mem subst name then
    err ~pos "cannot assign to formal parameter %s" name;
  if Hashtbl.mem locals (head name) then prefix ^ name else name

type unit_decls = {
  upath : string;
  udecls : Ast.decl list;
}

(* Instantiate a module: returns the declarations owned by the
   enclosing interleaving unit, and the separate units spawned by
   [process] instances inside it. *)
let rec instantiate ~modules ~stack ~prefix ~subst (md : Ast.module_decl) =
  let locals = locals_of md.Ast.decls in
  let r = rename_expr ~subst ~locals ~prefix in
  let find_module mod_name =
    match
      List.find_opt (fun m -> String.equal m.Ast.mod_name mod_name) modules
    with
    | Some m -> m
    | None -> err ~pos:md.Ast.mod_pos "unknown module %s" mod_name
  in
  let enter name mod_name args =
    let sub_md = find_module mod_name in
    if List.mem mod_name stack then
      err ~pos:sub_md.Ast.mod_pos "recursive instantiation of module %s"
        mod_name;
    if List.length args <> List.length sub_md.Ast.params then
      err ~pos:md.Ast.mod_pos "module %s expects %d parameter(s), got %d"
        mod_name
        (List.length sub_md.Ast.params)
        (List.length args);
    let sub_subst = Hashtbl.create 8 in
    List.iter2
      (fun formal actual -> Hashtbl.replace sub_subst formal (r actual))
      sub_md.Ast.params args;
    instantiate ~modules ~stack:(mod_name :: stack)
      ~prefix:(prefix ^ name ^ ".")
      ~subst:sub_subst sub_md
  in
  List.fold_left
    (fun (own, units) decl ->
      match decl with
      | Ast.Dvar entries ->
        let plain = ref [] and merged = ref [] and spawned = ref [] in
        List.iter
          (fun (name, dtype) ->
            match dtype with
            | Ast.Tinstance (mod_name, args) ->
              let sub_own, sub_units = enter name mod_name args in
              merged := !merged @ sub_own;
              spawned := !spawned @ sub_units
            | Ast.Tprocess (mod_name, args) ->
              let sub_own, sub_units = enter name mod_name args in
              spawned :=
                !spawned
                @ ({ upath = prefix ^ name; udecls = sub_own } :: sub_units)
            | Ast.Tbool | Ast.Tenum _ | Ast.Trange _ ->
              plain := (prefix ^ name, dtype) :: !plain)
          entries;
        let own_vars =
          match List.rev !plain with [] -> [] | vs -> [ Ast.Dvar vs ]
        in
        (own @ own_vars @ !merged, units @ !spawned)
      | Ast.Dassign assigns ->
        let d =
          Ast.Dassign
            (List.map
               (fun (kind, name, rhs, pos) ->
                 (kind, rename_target ~subst ~locals ~prefix name pos, r rhs,
                  pos))
               assigns)
        in
        (own @ [ d ], units)
      | Ast.Dinit e -> (own @ [ Ast.Dinit (r e) ], units)
      | Ast.Dtrans e -> (own @ [ Ast.Dtrans (r e) ], units)
      | Ast.Dinvar e -> (own @ [ Ast.Dinvar (r e) ], units)
      | Ast.Dfairness e -> (own @ [ Ast.Dfairness (r e) ], units)
      | Ast.Dspec e -> (own @ [ Ast.Dspec (r e) ], units)
      | Ast.Ddefine entries ->
        let d =
          Ast.Ddefine
            (List.map
               (fun (name, body, pos) -> (prefix ^ name, r body, pos))
               entries)
        in
        (own @ [ d ], units))
    ([], []) md.Ast.decls

let flatten_units (program : Ast.program) =
  let modules = program.Ast.modules in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun m ->
      if Hashtbl.mem seen m.Ast.mod_name then
        err ~pos:m.Ast.mod_pos "duplicate module %s" m.Ast.mod_name;
      Hashtbl.replace seen m.Ast.mod_name ())
    modules;
  match
    List.find_opt (fun m -> String.equal m.Ast.mod_name "main") modules
  with
  | None -> err "program has no module main"
  | Some main ->
    if main.Ast.params <> [] then
      err ~pos:main.Ast.mod_pos "module main takes no parameters";
    let own, units =
      instantiate ~modules ~stack:[ "main" ] ~prefix:""
        ~subst:(Hashtbl.create 1) main
    in
    { upath = ""; udecls = own } :: units

let flatten program =
  List.concat_map (fun u -> u.udecls) (flatten_units program)
