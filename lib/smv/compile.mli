(** Compilation of SMV programs to symbolic Kripke structures.

    Semantics:
    - declared variables whose [next] is unassigned evolve freely;
    - [next(x) := e] contributes the relation [\/_v (e = v /\ x' = v)];
      nondeterministic sets make the disjuncts overlap;
    - [x := e] is an invariant definition ([x = e] in every state);
    - [INVAR phi] constrains every state ([phi] is conjoined into the
      initial states and both endpoints of the transition relation);
    - [TRANS] may mention [next(x)]; other sections may not;
    - [SPEC] formulas become {!Ctl.t} values whose atoms are the
      [Pred] state sets of their propositional subexpressions;
    - every boolean variable is also exported as a label, so the CLI
      can accept plain CTL formulas over variable names. *)

exception Error of string * Ast.pos option
(** A type or semantic error, with its source position if known. *)

type compiled = {
  model : Kripke.t;
  specs : (string * Ctl.t) list;
      (** each [SPEC], with its source-like rendering *)
  defines : (string * Ast.expr) list;
      (** the [DEFINE] macros, for {!compile_expr} *)
  clusters : Bdd.t list;
      (** the transition clusters ({!Kripke.Builder.clusters}), kept so
          a later degraded retry can install a partitioned relation
          ({!Kripke.with_partition}) without recompiling.  Callers that
          hold a [compiled] across a [Bdd.gc] must root them. *)
}

val compile : ?partitioned:bool -> ?static_order:bool -> Ast.program -> compiled
(** With [~partitioned:true] the model uses a conjunctively partitioned
    transition relation with early quantification (one cluster per
    [next] assignment / [TRANS] constraint) — see
    {!Kripke.with_partition}.

    With [~static_order:true] the BDD variable order is seeded by a
    dependency-graph proximity heuristic instead of declaration order:
    variables co-occurring in small constraints are placed adjacently
    (greedy max-adjacency over co-occurrence weights [1/(k-1)]),
    current/next bit pairs stay interleaved
    ({!Kripke.Builder.seed_order}).  Off by default — the default
    output stays bit-identical to declaration order. *)

val compile_expr : compiled -> string -> Ctl.t
(** Parse and compile an additional specification against a compiled
    model (the CLI's [--spec] flag).  Raises {!Error}, {!Parser.Error}
    or {!Lexer.Error}. *)
