(** Tokenizer for the SMV input language.

    Comments run from [--] to end of line.  Keywords (including the
    temporal operators [EX], [AG], ..., and the single letters [A],
    [E], [U]) are reserved and cannot be used as identifiers. *)

type token =
  | MODULE
  | VAR
  | ASSIGN
  | INIT
  | TRANS
  | INVAR
  | FAIRNESS
  | DEFINE
  | SPEC
  | KW_init  (** lowercase [init], the assignment head *)
  | KW_next
  | CASE
  | ESAC
  | BOOLEAN
  | TRUE
  | FALSE
  | EX
  | EF
  | EG
  | AX
  | AF
  | AG
  | BIG_E
  | BIG_A
  | BIG_U
  | IDENT of string
  | INT of int
  | COLON
  | SEMI
  | BECOMES  (** [:=] *)
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | COMMA
  | DOTDOT
  | PLUS
  | MINUS
  | KW_mod
  | KW_in
  | KW_process
  | NOT
  | AND
  | OR
  | IMP
  | IFF
  | EOF

exception Error of string * Ast.pos

val tokenize : string -> (token * Ast.pos) list
(** Raises {!Error} on an unrecognised character. *)

val describe : token -> string
